// CI benchmark guard: re-runs the pinned BenchmarkIndexMatch tier and fails
// when it regresses more than 25% against the committed BENCH_index.json
// baseline. Gated behind MM_BENCH_GUARD=1 because wall-clock comparisons
// are meaningless under -race or on loaded developer machines.
package mmprofile_test

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"mmprofile/internal/index"
)

// benchBaseline mirrors the slice of BENCH_index.json the guard reads.
type benchBaseline struct {
	Benchmarks map[string]struct {
		After struct {
			NsPerOp float64 `json:"ns_per_op"`
		} `json:"after"`
	} `json:"benchmarks"`
}

// TestIndexMatchBenchGuard replays the vectors=100000 match benchmark and
// compares ns/op against the "after" column recorded in BENCH_index.json.
// Run it with MM_BENCH_GUARD=1 go test -run TestIndexMatchBenchGuard .
func TestIndexMatchBenchGuard(t *testing.T) {
	if os.Getenv("MM_BENCH_GUARD") != "1" {
		t.Skip("set MM_BENCH_GUARD=1 to run the wall-clock benchmark guard")
	}
	raw, err := os.ReadFile("BENCH_index.json")
	if err != nil {
		t.Fatalf("read baseline: %v", err)
	}
	var base benchBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("parse baseline: %v", err)
	}
	const key = "BenchmarkIndexMatch/vectors=100000"
	pinned := base.Benchmarks[key].After.NsPerOp
	if pinned <= 0 {
		t.Fatalf("baseline %s missing from BENCH_index.json", key)
	}

	ds := harness.Dataset()
	const n = 100_000
	ix := index.New()
	users := n / 5
	for i := 0; i < n; i++ {
		d := ds.Docs[i%len(ds.Docs)]
		ix.Upsert(fmt.Sprintf("user%05d", i%users), i/users, d.Vec)
	}
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = ix.Match(ds.Docs[i%len(ds.Docs)].Vec, 0.25)
		}
	})
	got := float64(res.NsPerOp())
	limit := pinned * 1.25
	t.Logf("%s: measured %.0f ns/op, baseline %.0f ns/op (limit %.0f)", key, got, pinned, limit)
	if got > limit {
		t.Errorf("index match regressed: %.0f ns/op exceeds 1.25x baseline %.0f ns/op", got, pinned)
	}
}
