// CI benchmark guards: re-run the pinned BenchmarkIndexMatch tier and the
// sharded-journal fsync-amplification comparison, failing when they regress
// against the committed BENCH_index.json / BENCH_store.json baselines.
// Gated behind MM_BENCH_GUARD=1 because wall-clock comparisons are
// meaningless under -race or on loaded developer machines.
package mmprofile_test

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"

	"mmprofile/internal/filter"
	"mmprofile/internal/index"
	"mmprofile/internal/metrics"
	"mmprofile/internal/store"
	"mmprofile/internal/vsm"
)

// benchBaseline mirrors the slice of BENCH_index.json the guard reads.
type benchBaseline struct {
	Benchmarks map[string]struct {
		After struct {
			NsPerOp float64 `json:"ns_per_op"`
		} `json:"after"`
	} `json:"benchmarks"`
}

// TestIndexMatchBenchGuard replays the vectors=100000 match benchmark and
// compares ns/op against the "after" column recorded in BENCH_index.json.
// Run it with MM_BENCH_GUARD=1 go test -run TestIndexMatchBenchGuard .
func TestIndexMatchBenchGuard(t *testing.T) {
	if os.Getenv("MM_BENCH_GUARD") != "1" {
		t.Skip("set MM_BENCH_GUARD=1 to run the wall-clock benchmark guard")
	}
	raw, err := os.ReadFile("BENCH_index.json")
	if err != nil {
		t.Fatalf("read baseline: %v", err)
	}
	var base benchBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("parse baseline: %v", err)
	}
	const key = "BenchmarkIndexMatch/vectors=100000"
	pinned := base.Benchmarks[key].After.NsPerOp
	if pinned <= 0 {
		t.Fatalf("baseline %s missing from BENCH_index.json", key)
	}

	ds := harness.Dataset()
	const n = 100_000
	ix := index.New()
	users := n / 5
	for i := 0; i < n; i++ {
		d := ds.Docs[i%len(ds.Docs)]
		ix.Upsert(fmt.Sprintf("user%05d", i%users), i/users, d.Vec)
	}
	res := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = ix.Match(ds.Docs[i%len(ds.Docs)].Vec, 0.25)
		}
	})
	got := float64(res.NsPerOp())
	limit := pinned * 1.25
	t.Logf("%s: measured %.0f ns/op, baseline %.0f ns/op (limit %.0f)", key, got, pinned, limit)
	if got > limit {
		t.Errorf("index match regressed: %.0f ns/op exceeds 1.25x baseline %.0f ns/op", got, pinned)
	}
}

// storeBaseline mirrors the slice of BENCH_store.json the lane guard reads.
type storeBaseline struct {
	Benchmarks map[string]struct {
		FsyncsPerAppend float64 `json:"fsyncs_per_append"`
	} `json:"benchmarks"`
	Lanes map[string]struct {
		FsyncsPerAppend float64 `json:"fsyncs_per_append"`
	} `json:"lanes"`
}

// measureLaneAmplification runs 64 concurrent writers (one user each, so
// user-id hashing spreads them over every lane) against a durable store
// with the given lane count and returns the observed fsyncs/append.
func measureLaneAmplification(t *testing.T, lanes int) float64 {
	t.Helper()
	reg := metrics.NewRegistry()
	st, err := store.Open(t.TempDir(), store.Options{Durable: true, Lanes: lanes, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	doc := vsm.FromMap(map[string]float64{"cat": 1, "dog": 0.5}).Normalized()
	const writers, perWriter = 64, 96
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			user := fmt.Sprintf("w%03d", w)
			for i := 0; i < perWriter; i++ {
				if err := st.AppendFeedback(user, doc, filter.Relevant); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	snap := reg.Snapshot()
	fsyncs := snap["mm_store_fsyncs_total"].(int64)
	appends := snap["mm_store_appends_total"].(int64)
	if appends == 0 {
		t.Fatal("no appends recorded")
	}
	return float64(fsyncs) / float64(appends)
}

// TestStoreLanesBenchGuard replays the 64-writer durable-append workload on
// the default multi-lane journal and checks its fsync amplification against
// BENCH_store.json: it must stay at or below the single-lane baseline PR 4
// measured at the same writer count (the acceptance row), and within 1.5x
// of its own pinned lanes=4 figure. Run it with
// MM_BENCH_GUARD=1 go test -run TestStoreLanesBenchGuard .
func TestStoreLanesBenchGuard(t *testing.T) {
	if os.Getenv("MM_BENCH_GUARD") != "1" {
		t.Skip("set MM_BENCH_GUARD=1 to run the wall-clock benchmark guard")
	}
	raw, err := os.ReadFile("BENCH_store.json")
	if err != nil {
		t.Fatalf("read baseline: %v", err)
	}
	var base storeBaseline
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("parse baseline: %v", err)
	}
	singleLane := base.Benchmarks["BenchmarkDurableAppend/workers=64"].FsyncsPerAppend
	pinnedMulti := base.Lanes["BenchmarkDurableAppendLanes/lanes=4"].FsyncsPerAppend
	if singleLane <= 0 || pinnedMulti <= 0 {
		t.Fatal("BENCH_store.json missing single-lane workers=64 or lanes=4 baseline rows")
	}

	got := measureLaneAmplification(t, store.DefaultLanes)
	t.Logf("lanes=%d at 64 writers: measured %.4f fsyncs/append (single-lane baseline %.4f, pinned multi-lane %.4f)",
		store.DefaultLanes, got, singleLane, pinnedMulti)
	if got > singleLane {
		t.Errorf("multi-lane group commit amplification %.4f exceeds single-lane baseline %.4f fsyncs/append", got, singleLane)
	}
	if got > pinnedMulti*1.5 {
		t.Errorf("multi-lane amplification %.4f regressed past 1.5x its pinned baseline %.4f", got, pinnedMulti)
	}
}
