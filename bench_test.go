// Per-figure benchmark suite: one testing.B benchmark per reproduced table/
// figure (see DESIGN.md's experiment index), each regenerating its figure
// on the scaled-down QuickConfig collection and reporting the headline
// numbers as custom metrics, plus micro-benchmarks for the system's hot
// paths. Run the full paper-scale reproduction with cmd/mmbench.
package mmprofile_test

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"mmprofile/internal/bench"
	"mmprofile/internal/core"
	"mmprofile/internal/corpus"
	"mmprofile/internal/filter"
	"mmprofile/internal/index"
	"mmprofile/internal/pubsub"
	"mmprofile/internal/sim"
	"mmprofile/internal/text"
	"mmprofile/internal/vsm"
)

// harness is shared across benchmarks: the dataset build is not what any
// individual benchmark measures.
var harness = bench.NewHarness(bench.QuickConfig())

func reportSeries(b *testing.B, fig bench.Figure) {
	for _, s := range fig.Series {
		b.ReportMetric(s.Y[len(s.Y)-1], "final-"+s.Label)
	}
}

// BenchmarkFig04TopLevelEffectiveness regenerates Figure 4 (E1): niap of
// RI, RG(10), and MM over top-level interest workloads.
func BenchmarkFig04TopLevelEffectiveness(b *testing.B) {
	harness.Dataset()
	b.ResetTimer()
	var fig bench.Figure
	for i := 0; i < b.N; i++ {
		fig = harness.Fig4()
	}
	reportSeries(b, fig)
}

// BenchmarkFig05SecondLevelEffectiveness regenerates Figure 5 (E2).
func BenchmarkFig05SecondLevelEffectiveness(b *testing.B) {
	harness.Dataset()
	b.ResetTimer()
	var fig bench.Figure
	for i := 0; i < b.N; i++ {
		fig = harness.Fig5()
	}
	reportSeries(b, fig)
}

// BenchmarkFig06ThresholdPrecision and BenchmarkFig07ThresholdProfileSize
// regenerate the θ sweep (E3, E4).
func BenchmarkFig06ThresholdPrecision(b *testing.B) {
	harness.Dataset()
	b.ResetTimer()
	var prec bench.Figure
	for i := 0; i < b.N; i++ {
		prec, _ = harness.ThresholdFigures()
	}
	reportSeries(b, prec)
}

func BenchmarkFig07ThresholdProfileSize(b *testing.B) {
	harness.Dataset()
	b.ResetTimer()
	var size bench.Figure
	for i := 0; i < b.N; i++ {
		_, size = harness.ThresholdFigures()
	}
	reportSeries(b, size)
}

// BenchmarkFig08PartialShift .. BenchmarkFig11DeleteInterest regenerate the
// Section 5.5 adaptability curves (E5–E8).
func BenchmarkFig08PartialShift(b *testing.B) {
	harness.Dataset()
	b.ResetTimer()
	var fig bench.Figure
	for i := 0; i < b.N; i++ {
		fig = harness.Fig8()
	}
	reportSeries(b, fig)
}

func BenchmarkFig09CompleteShift(b *testing.B) {
	harness.Dataset()
	b.ResetTimer()
	var fig bench.Figure
	for i := 0; i < b.N; i++ {
		fig = harness.Fig9()
	}
	reportSeries(b, fig)
}

func BenchmarkFig10AddInterest(b *testing.B) {
	harness.Dataset()
	b.ResetTimer()
	var fig bench.Figure
	for i := 0; i < b.N; i++ {
		fig = harness.Fig10()
	}
	reportSeries(b, fig)
}

func BenchmarkFig11DeleteInterest(b *testing.B) {
	harness.Dataset()
	b.ResetTimer()
	var fig bench.Figure
	for i := 0; i < b.N; i++ {
		fig = harness.Fig11()
	}
	reportSeries(b, fig)
}

// BenchmarkTextBatchRocchio regenerates the Section 5.2 in-text batch
// comparison (E9).
func BenchmarkTextBatchRocchio(b *testing.B) {
	harness.Dataset()
	b.ResetTimer()
	var fig bench.Figure
	for i := 0; i < b.N; i++ {
		fig = harness.BatchFigure()
	}
	reportSeries(b, fig)
}

// BenchmarkTextLearningRate regenerates the Section 5.1 in-text learning-
// rate observation (E10).
func BenchmarkTextLearningRate(b *testing.B) {
	harness.Dataset()
	b.ResetTimer()
	var fig bench.Figure
	for i := 0; i < b.N; i++ {
		fig = harness.LearningRateFigure()
	}
	reportSeries(b, fig)
}

// ---------------------------------------------------------------------------
// Ablations and extensions (see DESIGN.md §6 and EXPERIMENTS.md).

// BenchmarkAblationEtaSweep sweeps MM's adaptability η.
func BenchmarkAblationEtaSweep(b *testing.B) {
	harness.Dataset()
	b.ResetTimer()
	var fig bench.Figure
	for i := 0; i < b.N; i++ {
		fig = harness.EtaSweepFigure()
	}
	reportSeries(b, fig)
}

// BenchmarkAblationGroupSize sweeps Rocchio's group size (Allan's claim).
func BenchmarkAblationGroupSize(b *testing.B) {
	harness.Dataset()
	b.ResetTimer()
	var fig bench.Figure
	for i := 0; i < b.N; i++ {
		fig = harness.GroupSizeFigure()
	}
	reportSeries(b, fig)
}

// BenchmarkAblationMerge compares MM with and without the merge operation.
func BenchmarkAblationMerge(b *testing.B) {
	harness.Dataset()
	b.ResetTimer()
	var size bench.Figure
	for i := 0; i < b.N; i++ {
		_, size = harness.MergeAblationFigure()
	}
	reportSeries(b, size)
}

// BenchmarkAblationDecayVariant compares strength-decay instantiations.
func BenchmarkAblationDecayVariant(b *testing.B) {
	harness.Dataset()
	b.ResetTimer()
	var fig bench.Figure
	for i := 0; i < b.N; i++ {
		fig = harness.DecayVariantFigure()
	}
	reportSeries(b, fig)
}

// BenchmarkAblationNoise measures robustness to flipped judgments.
func BenchmarkAblationNoise(b *testing.B) {
	harness.Dataset()
	b.ResetTimer()
	var fig bench.Figure
	for i := 0; i < b.N; i++ {
		fig = harness.NoiseFigure()
	}
	reportSeries(b, fig)
}

// BenchmarkAblationBatchCluster compares single-pass MM clustering with
// offline spherical k-means at equal cluster budgets.
func BenchmarkAblationBatchCluster(b *testing.B) {
	harness.Dataset()
	b.ResetTimer()
	var prec bench.Figure
	for i := 0; i < b.N; i++ {
		prec, _ = harness.BatchClusterFigure()
	}
	reportSeries(b, prec)
}

// BenchmarkExtensionLSI compares keyword-space and LSI-space learners.
func BenchmarkExtensionLSI(b *testing.B) {
	harness.Dataset()
	b.ResetTimer()
	var fig bench.Figure
	for i := 0; i < b.N; i++ {
		fig = harness.LSIFigure()
	}
	reportSeries(b, fig)
}

// ---------------------------------------------------------------------------
// Micro-benchmarks: the hot paths behind the figures.

// BenchmarkPipeline measures raw page → term-list throughput.
func BenchmarkPipeline(b *testing.B) {
	coll := corpus.Generate(harness.Cfg.Corpus)
	pipe := text.NewPipeline()
	var total int64
	for _, p := range coll.Pages {
		total += int64(len(p.HTML))
	}
	b.SetBytes(total / int64(len(coll.Pages)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pipe.Terms(coll.Pages[i%len(coll.Pages)].HTML)
	}
}

// BenchmarkPorterStem measures the stemmer alone.
func BenchmarkPorterStem(b *testing.B) {
	words := []string{"relational", "computing", "adjustments", "profiles", "dissemination", "adaptively"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = text.Stem(words[i%len(words)])
	}
}

// BenchmarkCosine measures similarity between two 100-term vectors.
func BenchmarkCosine(b *testing.B) {
	ds := harness.Dataset()
	a, c := ds.Docs[0].Vec, ds.Docs[1].Vec
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = vsm.Cosine(a, c)
	}
}

// BenchmarkMMObserve measures one MM feedback step on a trained profile.
func BenchmarkMMObserve(b *testing.B) {
	ds := harness.Dataset()
	u := sim.NewUser(corpus.Category{Top: 0, Sub: -1}, corpus.Category{Top: 1, Sub: -1})
	mm := core.NewDefault()
	for _, d := range ds.Docs[:100] {
		mm.Observe(d.Vec, u.Feedback(d))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := ds.Docs[i%len(ds.Docs)]
		mm.Observe(d.Vec, u.Feedback(d))
	}
}

// BenchmarkMMScore measures scoring one document against a trained
// multi-vector profile.
func BenchmarkMMScore(b *testing.B) {
	ds := harness.Dataset()
	u := sim.NewUser(corpus.Category{Top: 0, Sub: -1})
	mm := core.NewDefault()
	for _, d := range ds.Docs {
		mm.Observe(d.Vec, u.Feedback(d))
	}
	b.ReportMetric(float64(mm.ProfileSize()), "profile-vectors")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = mm.Score(ds.Docs[i%len(ds.Docs)].Vec)
	}
}

// matchTier lazily builds the match-tier collection (bench.MatchTierConfig):
// 10k distinct pages, so the 1M-vector population below is ~100 copies of
// each page rather than ~7000. Only the 1M case pays the build.
var matchTier = bench.NewHarness(bench.MatchTierConfig())

// BenchmarkIndexMatch measures matching one document against n indexed
// profile vectors via the inverted index — the paper's argument that
// "filtering cost is not linearly proportional to the number of vectors".
// The 10k and 100k sizes are the dissemination hot path at scale, probed
// at the broker's default θ = 0.25 on the quick corpus; the 1M size is the
// tier the threshold-aware pruning (DESIGN.md §12) targets, built from the
// match-tier collection (10k distinct pages — cycling 144 pages to a
// million vectors would make ~0.7% of the index an exact duplicate of
// every probe) and probed at the tier's θ = 0.5 after Optimize() commits
// the staged tails. Before/after numbers are recorded in BENCH_index.json;
// MM_PRUNE=off in the environment disables pruning for the "before" column
// of an A/B run.
func BenchmarkIndexMatch(b *testing.B) {
	for _, n := range []int{1000, 10_000, 100_000, 1_000_000} {
		ds, theta := harness.Dataset(), 0.25
		if n == 1_000_000 {
			ds, theta = matchTier.Dataset(), 0.5
		}
		b.Run(fmt.Sprintf("vectors=%d", n), func(b *testing.B) {
			ix := index.New()
			ix.SetPruning(os.Getenv("MM_PRUNE") != "off")
			users := n / 5
			for i := 0; i < n; i++ {
				d := ds.Docs[i%len(ds.Docs)]
				ix.Upsert(fmt.Sprintf("user%05d", i%users), i/users, d.Vec)
			}
			ix.Optimize()
			// Building the 1M tier leaves a multi-GB heap behind; collect it
			// now so a GC cycle doesn't land inside the timed loop (on one
			// core a mark phase over that heap dwarfs a single match).
			runtime.GC()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = ix.Match(ds.Docs[i%len(ds.Docs)].Vec, theta)
			}
		})
	}
}

// BenchmarkIndexVsBruteForce contrasts inverted-index matching with the
// naive every-profile scan at increasing subscriber counts, demonstrating
// the paper's §4.3 claim that "the filtering cost is not linearly
// proportional to the number of vectors since well-known indexing
// techniques are applicable".
func BenchmarkIndexVsBruteForce(b *testing.B) {
	ds := harness.Dataset()
	for _, users := range []int{100, 1000} {
		vecsPerUser := 5
		ix := index.New()
		var flat []vsm.Vector
		for u := 0; u < users; u++ {
			for v := 0; v < vecsPerUser; v++ {
				d := ds.Docs[(u*vecsPerUser+v)%len(ds.Docs)]
				ix.Upsert(fmt.Sprintf("user%04d", u), v, d.Vec)
				flat = append(flat, d.Vec)
			}
		}
		b.Run(fmt.Sprintf("index/users=%d", users), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = ix.Match(ds.Docs[i%len(ds.Docs)].Vec, 0.25)
			}
		})
		b.Run(fmt.Sprintf("brute/users=%d", users), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				doc := ds.Docs[i%len(ds.Docs)].Vec
				hits := 0
				for _, pv := range flat {
					if vsm.Cosine(pv, doc) >= 0.25 {
						hits++
					}
				}
				_ = hits
			}
		})
	}
}

// brokerWithVectors builds a broker whose subscriber population carries
// roughly n indexed profile vectors (two seeded MM vectors per subscriber).
func brokerWithVectors(b *testing.B, n int) *pubsub.Broker {
	b.Helper()
	ds := harness.Dataset()
	broker := pubsub.New(pubsub.Options{Threshold: 0.25, QueueSize: 16})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n/2; i++ {
		u := sim.NewUser(sim.RandomTopInterests(rng, ds, 2)...)
		mm := core.NewDefault()
		// Two judged documents from distinct interests give ~2 vectors
		// without the cost of a full training stream per subscriber.
		seen := 0
		for _, d := range ds.Docs[rng.Intn(len(ds.Docs)):] {
			if u.Feedback(d) == filter.Relevant {
				mm.Observe(d.Vec, filter.Relevant)
				if seen++; seen == 2 {
					break
				}
			}
		}
		if _, err := broker.Subscribe(fmt.Sprintf("user%06d", i), mm); err != nil {
			b.Fatal(err)
		}
	}
	return broker
}

// BenchmarkBrokerPublish measures the full dissemination path: publish a
// pre-vectorized page to a broker whose population holds ~n indexed profile
// vectors. The 10k and 100k sizes back BENCH_index.json.
func BenchmarkBrokerPublish(b *testing.B) {
	ds := harness.Dataset()
	for _, n := range []int{100, 10_000, 100_000} {
		b.Run(fmt.Sprintf("vectors=%d", n), func(b *testing.B) {
			broker := brokerWithVectors(b, n)
			b.ReportMetric(float64(broker.IndexStats().Vectors), "indexed-vectors")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				broker.PublishVector(ds.Docs[i%len(ds.Docs)].Vec)
			}
		})
	}
}

// BenchmarkBrokerPublishParallel measures publish throughput with many
// goroutines pushing simultaneously — the broker's fine-grained locking at
// work (compare ns/op with the sequential BenchmarkBrokerPublish).
func BenchmarkBrokerPublishParallel(b *testing.B) {
	ds := harness.Dataset()
	broker := pubsub.New(pubsub.Options{Threshold: 0.25, QueueSize: 16})
	for i := 0; i < 100; i++ {
		u := sim.NewUser(sim.RandomTopInterests(rand.New(rand.NewSource(int64(i))), ds, 1)...)
		mm := core.NewDefault()
		for _, d := range ds.Docs[:60] {
			mm.Observe(d.Vec, u.Feedback(d))
		}
		if _, err := broker.Subscribe(fmt.Sprintf("user%03d", i), mm); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			broker.PublishVector(ds.Docs[i%len(ds.Docs)].Vec)
			i++
		}
	})
}

// BenchmarkBrokerPublishBatch measures concurrent batch-publish throughput
// of pre-vectorized documents at several worker-pool widths — the broker's
// internal sharding at work (a single-lock broker flattens as workers grow;
// a sharded one should hold or improve). Before/after numbers are recorded
// in BENCH_pubsub.json.
func BenchmarkBrokerPublishBatch(b *testing.B) {
	ds := harness.Dataset()
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			broker := pubsub.New(pubsub.Options{
				Threshold:      0.25,
				QueueSize:      16,
				PublishWorkers: workers,
			})
			rng := rand.New(rand.NewSource(11))
			for i := 0; i < 500; i++ {
				u := sim.NewUser(sim.RandomTopInterests(rng, ds, 2)...)
				mm := core.NewDefault()
				seen := 0
				for _, d := range ds.Docs[rng.Intn(len(ds.Docs)):] {
					if u.Feedback(d) == filter.Relevant {
						mm.Observe(d.Vec, filter.Relevant)
						if seen++; seen == 2 {
							break
						}
					}
				}
				if _, err := broker.Subscribe(fmt.Sprintf("user%04d", i), mm); err != nil {
					b.Fatal(err)
				}
			}
			batch := make([]vsm.Vector, 512)
			for i := range batch {
				batch[i] = ds.Docs[i%len(ds.Docs)].Vec
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				broker.PublishVectorBatch(batch)
			}
			b.StopTimer()
			b.ReportMetric(float64(len(batch))*float64(b.N)/b.Elapsed().Seconds(), "docs/s")
		})
	}
}

// BenchmarkBrokerFeedback measures the feedback path including reindexing.
func BenchmarkBrokerFeedback(b *testing.B) {
	ds := harness.Dataset()
	broker := pubsub.New(pubsub.Options{Threshold: 0.25})
	sub, err := broker.Subscribe("alice", core.NewDefault())
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]int64, len(ds.Docs))
	for i, d := range ds.Docs {
		ids[i], _ = broker.PublishVector(d.Vec)
	}
	u := sim.NewUser(corpus.Category{Top: 0, Sub: -1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(ds.Docs)
		if err := sub.Feedback(ids[j], u.Feedback(ds.Docs[j])); err != nil {
			b.Fatal(err)
		}
	}
}
