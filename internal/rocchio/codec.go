package rocchio

import (
	"encoding/binary"
	"fmt"

	"mmprofile/internal/vsm"
)

const (
	rocchioCodecVersion = 1
	nrnCodecVersion     = 1
)

// MarshalBinary implements encoding.BinaryMarshaler: the profile vector,
// group configuration, and any buffered (not yet applied) judgments, so a
// restored learner resumes mid-group exactly where it stopped.
func (r *Rocchio) MarshalBinary() ([]byte, error) {
	buf := []byte{rocchioCodecVersion}
	buf = binary.AppendUvarint(buf, uint64(len(r.name)))
	buf = append(buf, r.name...)
	buf = binary.AppendUvarint(buf, uint64(r.groupSize))
	buf = binary.AppendUvarint(buf, uint64(r.maxTerms))
	buf = binary.AppendUvarint(buf, uint64(r.updates))
	buf = vsm.AppendVector(buf, r.profile)
	buf = binary.AppendUvarint(buf, uint64(len(r.rel)))
	for _, v := range r.rel {
		buf = vsm.AppendVector(buf, v)
	}
	buf = binary.AppendUvarint(buf, uint64(len(r.nonRel)))
	for _, v := range r.nonRel {
		buf = vsm.AppendVector(buf, v)
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (r *Rocchio) UnmarshalBinary(data []byte) error {
	if len(data) < 1 || data[0] != rocchioCodecVersion {
		return fmt.Errorf("rocchio: bad snapshot version")
	}
	buf := data[1:]
	read := func() (uint64, error) {
		v, k := binary.Uvarint(buf)
		if k <= 0 {
			return 0, fmt.Errorf("rocchio: truncated snapshot")
		}
		buf = buf[k:]
		return v, nil
	}
	n, err := read()
	if err != nil {
		return err
	}
	if uint64(len(buf)) < n {
		return fmt.Errorf("rocchio: truncated name")
	}
	name := string(buf[:n])
	buf = buf[n:]
	group, err := read()
	if err != nil {
		return err
	}
	maxTerms, err := read()
	if err != nil {
		return err
	}
	updates, err := read()
	if err != nil {
		return err
	}
	profile, rest, err := vsm.DecodeVector(buf)
	if err != nil {
		return fmt.Errorf("rocchio: profile vector: %w", err)
	}
	buf = rest
	readVecs := func() ([]vsm.Vector, error) {
		count, err := read()
		if err != nil {
			return nil, err
		}
		if count > 1<<20 {
			return nil, fmt.Errorf("rocchio: implausible buffer size %d", count)
		}
		out := make([]vsm.Vector, 0, count)
		for i := uint64(0); i < count; i++ {
			v, rest, err := vsm.DecodeVector(buf)
			if err != nil {
				return nil, fmt.Errorf("rocchio: buffered vector %d: %w", i, err)
			}
			buf = rest
			out = append(out, v)
		}
		return out, nil
	}
	rel, err := readVecs()
	if err != nil {
		return err
	}
	nonRel, err := readVecs()
	if err != nil {
		return err
	}
	if len(buf) != 0 {
		return fmt.Errorf("rocchio: %d trailing bytes", len(buf))
	}
	r.name = name
	r.groupSize = int(group)
	r.maxTerms = int(maxTerms)
	r.updates = int(updates)
	r.profile = profile
	r.norm = profile.Norm()
	r.rel = rel
	r.nonRel = nonRel
	return nil
}

// MarshalBinary implements encoding.BinaryMarshaler for NRN.
func (n *NRN) MarshalBinary() ([]byte, error) {
	buf := []byte{nrnCodecVersion}
	buf = binary.AppendUvarint(buf, uint64(len(n.vectors)))
	for _, v := range n.vectors {
		buf = vsm.AppendVector(buf, v)
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler for NRN.
func (n *NRN) UnmarshalBinary(data []byte) error {
	if len(data) < 1 || data[0] != nrnCodecVersion {
		return fmt.Errorf("rocchio: bad NRN snapshot version")
	}
	buf := data[1:]
	count, k := binary.Uvarint(buf)
	if k <= 0 || count > 1<<20 {
		return fmt.Errorf("rocchio: bad NRN vector count")
	}
	buf = buf[k:]
	vectors := make([]vsm.Vector, 0, count)
	for i := uint64(0); i < count; i++ {
		v, rest, err := vsm.DecodeVector(buf)
		if err != nil {
			return fmt.Errorf("rocchio: NRN vector %d: %w", i, err)
		}
		buf = rest
		vectors = append(vectors, v)
	}
	if len(buf) != 0 {
		return fmt.Errorf("rocchio: %d trailing bytes in NRN snapshot", len(buf))
	}
	n.vectors = vectors
	return nil
}
