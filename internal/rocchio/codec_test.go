package rocchio

import (
	"math"
	"testing"

	"mmprofile/internal/filter"
)

func TestRocchioCodecRoundTrip(t *testing.T) {
	orig := NewRG(10)
	orig.Observe(vec("cat", 0.7, "dog", 0.3), filter.Relevant)
	orig.Observe(vec("stock", 0.9), filter.NotRelevant)
	// ... leaves 2 judgments pending (group of 10).
	blob, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewRI() // wrong shape on purpose; Unmarshal must fix it
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if restored.Name() != "RG10" || restored.GroupSize() != 10 {
		t.Errorf("identity: %s/%d", restored.Name(), restored.GroupSize())
	}
	if restored.Pending() != orig.Pending() || restored.Updates() != orig.Updates() {
		t.Errorf("buffer state: pending %d/%d updates %d/%d",
			restored.Pending(), orig.Pending(), restored.Updates(), orig.Updates())
	}
	// Behavioral equivalence: complete the group identically on both.
	for i := 0; i < 8; i++ {
		v := vec("cat", 1.0, "extra", 0.2)
		orig.Observe(v, filter.Relevant)
		restored.Observe(v, filter.Relevant)
	}
	if orig.Updates() != 1 || restored.Updates() != 1 {
		t.Fatalf("group did not complete: %d/%d", orig.Updates(), restored.Updates())
	}
	probe := vec("cat", 1.0, "dog", 1.0)
	if math.Abs(orig.Score(probe)-restored.Score(probe)) > 1e-12 {
		t.Errorf("scores diverge: %v vs %v", orig.Score(probe), restored.Score(probe))
	}
}

func TestRocchioCodecAppliedProfile(t *testing.T) {
	orig := NewRI()
	orig.Observe(vec("cat", 0.5, "dog", 0.5), filter.Relevant)
	blob, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewRI()
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if got, want := restored.Profile().ToMap(), orig.Profile().ToMap(); len(got) != len(want) {
		t.Errorf("profile: %v vs %v", got, want)
	}
}

func TestRocchioCodecRejectsCorruption(t *testing.T) {
	orig := NewRG(5)
	orig.Observe(vec("cat", 1.0), filter.Relevant)
	blob, _ := orig.MarshalBinary()
	fresh := NewRI()
	if err := fresh.UnmarshalBinary(nil); err == nil {
		t.Error("empty blob accepted")
	}
	for cut := 1; cut < len(blob); cut += 5 {
		if err := fresh.UnmarshalBinary(blob[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if err := fresh.UnmarshalBinary(append(append([]byte{}, blob...), 1)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestNRNCodecRoundTrip(t *testing.T) {
	orig := NewNRN()
	orig.Observe(vec("cat", 1.0), filter.Relevant)
	orig.Observe(vec("stock", 1.0, "bond", 0.5), filter.Relevant)
	blob, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := NewNRN()
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if restored.ProfileSize() != 2 {
		t.Fatalf("size = %d", restored.ProfileSize())
	}
	probe := vec("stock", 1.0)
	if math.Abs(orig.Score(probe)-restored.Score(probe)) > 1e-12 {
		t.Error("scores diverge")
	}
}

func TestNRNCodecRejectsCorruption(t *testing.T) {
	orig := NewNRN()
	orig.Observe(vec("cat", 1.0), filter.Relevant)
	blob, _ := orig.MarshalBinary()
	fresh := NewNRN()
	for cut := 1; cut < len(blob); cut += 3 {
		if err := fresh.UnmarshalBinary(blob[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}
