package rocchio

import (
	"math"
	"testing"

	"mmprofile/internal/filter"
	"mmprofile/internal/vsm"
)

func vec(pairs ...any) vsm.Vector {
	m := map[string]float64{}
	for i := 0; i < len(pairs); i += 2 {
		m[pairs[i].(string)] = pairs[i+1].(float64)
	}
	return vsm.FromMap(m)
}

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestRIUpdateArithmetic(t *testing.T) {
	r := NewRI()
	r.Observe(vec("cat", 0.5, "dog", 0.5), filter.Relevant)
	// w = 0 + 2·0.5 = 1.0 for both terms.
	p := r.Profile()
	if !almostEqual(p.Weight("cat"), 1.0) || !almostEqual(p.Weight("dog"), 1.0) {
		t.Fatalf("profile after one relevant doc: %v", p.ToMap())
	}
	// Non-relevant doc sharing "cat": w(cat) = 1 − 0.5·0.8 = 0.6.
	r.Observe(vec("cat", 0.8, "stock", 0.6), filter.NotRelevant)
	p = r.Profile()
	if !almostEqual(p.Weight("cat"), 0.6) {
		t.Errorf("w(cat) = %v, want 0.6", p.Weight("cat"))
	}
	if p.Weight("stock") != 0 {
		t.Errorf("negative-only term entered profile: %v", p.ToMap())
	}
	if p.Weight("dog") != 1.0 {
		t.Errorf("untouched term changed: %v", p.Weight("dog"))
	}
}

func TestRIClampsNegativeWeights(t *testing.T) {
	r := NewRI()
	r.Observe(vec("cat", 0.1), filter.Relevant) // w(cat) = 0.2
	r.Observe(vec("cat", 1.0), filter.NotRelevant)
	// w(cat) = 0.2 − 0.5 = −0.3 → clamped out.
	if got := r.Profile().Weight("cat"); got != 0 {
		t.Errorf("w(cat) = %v, want clamped to 0", got)
	}
}

func TestRGBuffersUntilGroupFull(t *testing.T) {
	r := NewRG(3)
	r.Observe(vec("a", 1.0), filter.Relevant)
	r.Observe(vec("b", 1.0), filter.Relevant)
	if r.Updates() != 0 || r.ProfileSize() != 0 {
		t.Fatal("RG applied an update before the group was full")
	}
	if r.Pending() != 2 {
		t.Errorf("Pending = %d", r.Pending())
	}
	r.Observe(vec("c", 1.0), filter.NotRelevant)
	if r.Updates() != 1 || r.Pending() != 0 {
		t.Fatalf("RG did not apply the full group: updates=%d pending=%d", r.Updates(), r.Pending())
	}
	// w = 2·mean({a:1},{b:1}) = {a:1, b:1}; c only in NR → clamped.
	p := r.Profile()
	if !almostEqual(p.Weight("a"), 1.0) || !almostEqual(p.Weight("b"), 1.0) || p.Weight("c") != 0 {
		t.Errorf("profile after group: %v", p.ToMap())
	}
}

func TestRGGroupAveraging(t *testing.T) {
	// Two relevant docs sharing a term: w_{t,R} is the mean, not the sum.
	r := NewRG(2)
	r.Observe(vec("cat", 0.4), filter.Relevant)
	r.Observe(vec("cat", 0.8), filter.Relevant)
	want := 2 * (0.4 + 0.8) / 2
	if got := r.Profile().Weight("cat"); !almostEqual(got, want) {
		t.Errorf("w(cat) = %v, want %v", got, want)
	}
}

func TestBatchOnlyFlushManually(t *testing.T) {
	b := NewBatch()
	for i := 0; i < 50; i++ {
		b.Observe(vec("cat", 1.0), filter.Relevant)
	}
	if b.Updates() != 0 {
		t.Fatal("batch mode auto-flushed")
	}
	b.Flush()
	if b.Updates() != 1 {
		t.Fatal("Flush did not apply")
	}
	if got := b.Profile().Weight("cat"); !almostEqual(got, 2.0) {
		t.Errorf("batch w(cat) = %v, want 2.0 (mean of identical docs × 2)", got)
	}
	b.Flush() // empty flush is a no-op
	if b.Updates() != 1 {
		t.Error("empty Flush counted as an update")
	}
}

func TestRocchioScoreIsCosine(t *testing.T) {
	r := NewRI()
	r.Observe(vec("cat", 1.0, "dog", 1.0), filter.Relevant)
	probe := vec("cat", 1.0)
	want := vsm.Cosine(r.Profile(), probe)
	if got := r.Score(probe); !almostEqual(got, want) {
		t.Errorf("Score = %v, want %v", got, want)
	}
	if NewRI().Score(probe) != 0 {
		t.Error("empty profile should score 0")
	}
}

func TestRocchioTruncation(t *testing.T) {
	r := NewRI()
	m := map[string]float64{}
	for i := 0; i < 150; i++ {
		m["term"+string(rune('a'+i%26))+string(rune('a'+(i/26)%26))] = 1 + float64(i)/1000
	}
	r.Observe(vsm.FromMap(m), filter.Relevant)
	if got := r.Profile().Len(); got > vsm.MaxDocumentTerms {
		t.Errorf("profile has %d terms, cap %d", got, vsm.MaxDocumentTerms)
	}
}

func TestRocchioIgnoresZeroVector(t *testing.T) {
	r := NewRI()
	r.Observe(vsm.Vector{}, filter.Relevant)
	if r.ProfileSize() != 0 || r.Pending() != 0 {
		t.Error("zero vector was buffered or applied")
	}
}

func TestRocchioReset(t *testing.T) {
	r := NewRG(5)
	r.Observe(vec("a", 1.0), filter.Relevant)
	r.Reset()
	if r.Pending() != 0 || r.ProfileSize() != 0 || r.Updates() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestNewRGRejectsDegenerateSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRG(1) did not panic")
		}
	}()
	NewRG(1)
}

func TestNRNStoresRelevantOnly(t *testing.T) {
	n := NewNRN()
	n.Observe(vec("cat", 1.0), filter.Relevant)
	n.Observe(vec("dog", 1.0), filter.NotRelevant)
	n.Observe(vec("fish", 1.0), filter.Relevant)
	if n.ProfileSize() != 2 {
		t.Errorf("ProfileSize = %d, want 2", n.ProfileSize())
	}
	// Duplicate relevant documents are not stored twice.
	n.Observe(vec("cat", 1.0), filter.Relevant)
	if n.ProfileSize() != 2 {
		t.Errorf("duplicate stored: ProfileSize = %d", n.ProfileSize())
	}
}

func TestNRNScoreIsNearestNeighbour(t *testing.T) {
	n := NewNRN()
	n.Observe(vec("cat", 1.0), filter.Relevant)
	n.Observe(vec("stock", 1.0), filter.Relevant)
	// Score's contract (like every learner's) assumes unit-normalized
	// documents.
	probe := vec("stock", 1.0, "bond", 1.0).Normalized()
	want := vsm.Cosine(vec("stock", 1.0), probe)
	if got := n.Score(probe); !almostEqual(got, want) {
		t.Errorf("Score = %v, want %v", got, want)
	}
}

func TestNRNReset(t *testing.T) {
	n := NewNRN()
	n.Observe(vec("cat", 1.0), filter.Relevant)
	n.Reset()
	if n.ProfileSize() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestRegisteredBaselines(t *testing.T) {
	for _, name := range []string{"RI", "RG10", "RG100", "Batch", "NRN"} {
		l, err := filter.New(name)
		if err != nil {
			t.Fatalf("New(%s): %v", name, err)
		}
		if l.Name() != name {
			t.Errorf("learner %s reports name %s", name, l.Name())
		}
	}
	if _, err := filter.New("nope"); err == nil {
		t.Error("unknown learner did not error")
	}
}
