// Package rocchio implements the baseline learners the paper compares MM
// against (Section 5.1): purely incremental Rocchio (RI), group Rocchio
// (RG) after Allan, batch Rocchio, and the nearest-relevant-neighbour
// method (NRN) of Foltz and Dumais.
package rocchio

import (
	"fmt"

	"mmprofile/internal/filter"
	"mmprofile/internal/vsm"
)

// Feedback parameters of Allan's Rocchio formulation used by the paper:
// w(t)_{i+1} = w(t)_i + 2·w_{t,R} − ½·w_{t,NR}.
const (
	betaRelevant     = 2.0
	gammaNonRelevant = 0.5
)

// Rocchio is a single-vector relevance-feedback learner. Judged documents
// are buffered into groups of GroupSize and each full group applied as one
// Rocchio update; GroupSize 1 is the paper's RI, larger sizes its RG. A
// GroupSize of 0 buffers indefinitely (batch mode) until Flush is called.
// Not safe for concurrent use.
type Rocchio struct {
	name      string
	groupSize int
	maxTerms  int

	profile vsm.Vector
	norm    float64 // cached ‖profile‖, maintained by Flush/Reset/restore
	rel     []vsm.Vector
	nonRel  []vsm.Vector
	updates int
}

// NewRI returns purely incremental Rocchio (group size 1).
func NewRI() *Rocchio { return newRocchio("RI", 1) }

// NewRG returns group Rocchio with the given group size (the paper uses 10
// and 100); it panics on sizes < 2, which would silently be RI.
func NewRG(groupSize int) *Rocchio {
	if groupSize < 2 {
		panic(fmt.Sprintf("rocchio: RG group size %d < 2; use NewRI", groupSize))
	}
	return newRocchio(fmt.Sprintf("RG%d", groupSize), groupSize)
}

// NewBatch returns batch Rocchio: judgments accumulate until Flush applies
// them all in a single update, the non-incremental best case of Section 5.2.
func NewBatch() *Rocchio { return newRocchio("Batch", 0) }

func newRocchio(name string, groupSize int) *Rocchio {
	return &Rocchio{name: name, groupSize: groupSize, maxTerms: vsm.MaxDocumentTerms}
}

// Name implements filter.Learner.
func (r *Rocchio) Name() string { return r.name }

// GroupSize returns the configured group size (0 for batch).
func (r *Rocchio) GroupSize() int { return r.groupSize }

// Updates returns how many group updates have been applied.
func (r *Rocchio) Updates() int { return r.updates }

// Pending returns the number of buffered, not yet applied judgments.
func (r *Rocchio) Pending() int { return len(r.rel) + len(r.nonRel) }

// ProfileSize implements filter.Learner; a Rocchio profile is always a
// single vector (0 before any update).
func (r *Rocchio) ProfileSize() int {
	if r.profile.IsZero() {
		return 0
	}
	return 1
}

// Profile returns a copy of the current profile vector.
func (r *Rocchio) Profile() vsm.Vector { return r.profile.Clone() }

// ProfileVectors implements filter.VectorSource: the single profile vector,
// unit-normalized (cosine scoring is scale-invariant, so the normalized
// copy scores identically to Score).
func (r *Rocchio) ProfileVectors() []vsm.Vector {
	if r.profile.IsZero() {
		return nil
	}
	return []vsm.Vector{r.profile.Normalized()}
}

// Reset implements filter.Learner.
func (r *Rocchio) Reset() {
	r.profile = vsm.Vector{}
	r.norm = 0
	r.rel = nil
	r.nonRel = nil
	r.updates = 0
}

// Observe implements filter.Learner: the judgment joins the current group;
// a full group is applied immediately.
func (r *Rocchio) Observe(v vsm.Vector, fd filter.Feedback) {
	if v.IsZero() {
		return
	}
	if fd == filter.Relevant {
		r.rel = append(r.rel, v)
	} else {
		r.nonRel = append(r.nonRel, v)
	}
	if r.groupSize > 0 && r.Pending() >= r.groupSize {
		r.Flush()
	}
}

// Flush applies all buffered judgments as one Rocchio update. It is the
// group boundary for RG and the single update of batch mode; the evaluator
// calls it when training completes.
func (r *Rocchio) Flush() {
	if r.Pending() == 0 {
		return
	}
	// Accumulate in a map so the −½·w_{t,NR} term can subtract from
	// existing profile weights before the final non-negativity clamp.
	m := r.profile.ToMap()
	for t, w := range centroid(r.rel).ToMap() {
		m[t] += betaRelevant * w
	}
	for t, w := range centroid(r.nonRel).ToMap() {
		m[t] -= gammaNonRelevant * w
	}
	r.profile = vsm.FromMap(m).Truncated(r.maxTerms)
	r.norm = r.profile.Norm()
	r.rel = nil
	r.nonRel = nil
	r.updates++
}

// Score implements filter.Learner. The profile vector is not kept
// unit-length (Rocchio updates accumulate raw weights), but its norm only
// changes on Flush, so Score divides by the cached norm instead of
// recomputing it per call; v is unit-normalized as all document vectors in
// this system are.
func (r *Rocchio) Score(v vsm.Vector) float64 {
	if r.norm == 0 {
		return 0
	}
	return vsm.Dot(r.profile, v) / r.norm
}

// centroid returns the mean of the vectors (the w_{t,R} / w_{t,NR} terms of
// Allan's formula); the zero vector when the set is empty.
func centroid(vs []vsm.Vector) vsm.Vector {
	if len(vs) == 0 {
		return vsm.Vector{}
	}
	sum := vs[0]
	for _, v := range vs[1:] {
		sum = vsm.Combine(sum, 1, v, 1)
	}
	return sum.Scaled(1 / float64(len(vs)))
}

func init() {
	filter.Register("RI", func() filter.Learner { return NewRI() })
	filter.Register("RG10", func() filter.Learner { return NewRG(10) })
	filter.Register("RG100", func() filter.Learner { return NewRG(100) })
	filter.Register("Batch", func() filter.Learner { return NewBatch() })
}
