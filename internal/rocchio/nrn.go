package rocchio

import (
	"mmprofile/internal/filter"
	"mmprofile/internal/vsm"
)

// NRN is the nearest-relevant-neighbour learner of Foltz and Dumais: every
// relevant document becomes its own profile vector and a document is scored
// by its similarity to the closest one. It is the θ = 1.0 degenerate case
// of MM (paper Section 5.4) and is included as the fine-granularity extreme
// of the quality/size trade-off. Negative feedback is ignored. Not safe
// for concurrent use.
type NRN struct {
	vectors []vsm.Vector
}

// NewNRN returns an empty NRN learner.
func NewNRN() *NRN { return &NRN{} }

// Name implements filter.Learner.
func (n *NRN) Name() string { return "NRN" }

// Observe implements filter.Learner: relevant documents are stored
// unit-normalized (duplicates of an already-stored vector are skipped,
// matching the paper's "all (distinct) relevant documents" reading).
// Documents arrive unit-normalized anyway; normalizing on store makes the
// invariant local so Score can use the vsm.DotUnit fast path.
func (n *NRN) Observe(v vsm.Vector, fd filter.Feedback) {
	if fd != filter.Relevant || v.IsZero() {
		return
	}
	v = v.Normalized()
	for _, p := range n.vectors {
		if vsm.DotUnit(p, v) >= 1-1e-12 {
			return
		}
	}
	n.vectors = append(n.vectors, v)
}

// Score implements filter.Learner; v must be unit-normalized, as all
// document vectors in this system are.
func (n *NRN) Score(v vsm.Vector) float64 {
	best := 0.0
	for _, p := range n.vectors {
		if s := vsm.DotUnit(p, v); s > best {
			best = s
		}
	}
	return best
}

// ProfileSize implements filter.Learner: one vector per stored document.
func (n *NRN) ProfileSize() int { return len(n.vectors) }

// ProfileVectors implements filter.VectorSource.
func (n *NRN) ProfileVectors() []vsm.Vector {
	out := make([]vsm.Vector, len(n.vectors))
	for i, v := range n.vectors {
		out[i] = v.Clone()
	}
	return out
}

// Reset implements filter.Learner.
func (n *NRN) Reset() { n.vectors = nil }

func init() {
	filter.Register("NRN", func() filter.Learner { return NewNRN() })
}
