package rocchio

import (
	"mmprofile/internal/filter"
	"mmprofile/internal/vsm"
)

// NRN is the nearest-relevant-neighbour learner of Foltz and Dumais: every
// relevant document becomes its own profile vector and a document is scored
// by its similarity to the closest one. It is the θ = 1.0 degenerate case
// of MM (paper Section 5.4) and is included as the fine-granularity extreme
// of the quality/size trade-off. Negative feedback is ignored. Not safe
// for concurrent use.
type NRN struct {
	vectors []vsm.Vector
}

// NewNRN returns an empty NRN learner.
func NewNRN() *NRN { return &NRN{} }

// Name implements filter.Learner.
func (n *NRN) Name() string { return "NRN" }

// Observe implements filter.Learner: relevant documents are stored
// verbatim (duplicates of an already-stored vector are skipped, matching
// the paper's "all (distinct) relevant documents" reading).
func (n *NRN) Observe(v vsm.Vector, fd filter.Feedback) {
	if fd != filter.Relevant || v.IsZero() {
		return
	}
	for _, p := range n.vectors {
		if vsm.Cosine(p, v) >= 1-1e-12 {
			return
		}
	}
	n.vectors = append(n.vectors, v.Clone())
}

// Score implements filter.Learner.
func (n *NRN) Score(v vsm.Vector) float64 {
	best := 0.0
	for _, p := range n.vectors {
		if s := vsm.Cosine(p, v); s > best {
			best = s
		}
	}
	return best
}

// ProfileSize implements filter.Learner: one vector per stored document.
func (n *NRN) ProfileSize() int { return len(n.vectors) }

// ProfileVectors implements filter.VectorSource.
func (n *NRN) ProfileVectors() []vsm.Vector {
	out := make([]vsm.Vector, len(n.vectors))
	for i, v := range n.vectors {
		out[i] = v.Clone()
	}
	return out
}

// Reset implements filter.Learner.
func (n *NRN) Reset() { n.vectors = nil }

func init() {
	filter.Register("NRN", func() filter.Learner { return NewNRN() })
}
