// Package metrics is the zero-dependency, low-overhead observability layer
// of the dissemination pipeline (DESIGN.md §8): sharded atomic counters,
// float gauges, and log-bucketed latency histograms, collected in a
// Registry that exposes Prometheus text format and JSON snapshots.
//
// Design goals:
//
//   - a counter increment or histogram observation costs a handful of
//     nanoseconds: no locks, no maps, no allocation on the hot path;
//   - nil instruments are safe no-ops, so instrumented code never branches
//     on "is monitoring configured";
//   - registration is idempotent (same name + same kind returns the same
//     instrument), so independently instrumented components — the broker,
//     its index, the profile store — can share one registry;
//   - reads are weakly consistent: a snapshot taken during concurrent
//     writes may tear across instruments, never within a single counter.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// ---------------------------------------------------------------------------
// Counter

// counterStripes is the number of independently updated cache lines a
// Counter spreads its increments over; a power of two.
const counterStripes = 8

type counterStripe struct {
	n atomic.Int64
	_ [56]byte // pad to a 64-byte cache line to prevent false sharing
}

// Counter is a monotonically increasing counter, sharded across cache
// lines so concurrent publishers do not serialize on one atomic word.
// The zero value is ready to use; a nil *Counter is a no-op.
type Counter struct {
	stripes [counterStripes]counterStripe
}

// stripeIdx picks a stripe from the address of a stack variable: every
// goroutine has its own stack, so concurrent writers spread across stripes
// without any per-goroutine state or allocation.
func stripeIdx() uint32 {
	var b byte
	p := uintptr(unsafe.Pointer(&b))
	return uint32((p>>6)*2654435761) >> 29 // top 3 bits: 0..7
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d (d must be ≥ 0 to keep the counter monotone).
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.stripes[stripeIdx()].n.Add(d)
}

// Value returns the current total across stripes.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.stripes {
		total += c.stripes[i].n.Load()
	}
	return total
}

// ---------------------------------------------------------------------------
// Gauge

// Gauge is an instantaneous float64 value. The zero value is ready to use;
// a nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add moves the gauge by d (negative d decreases it).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// FuncGauge is a gauge whose value is computed at read time by a callback
// (e.g. "current subscriber count"). The callback must be safe to call
// from any goroutine and should be cheap: it runs on every scrape.
type FuncGauge struct {
	fn atomic.Value // func() float64
}

// Value evaluates the callback.
func (g *FuncGauge) Value() float64 {
	if g == nil {
		return 0
	}
	fn, _ := g.fn.Load().(func() float64)
	if fn == nil {
		return 0
	}
	return fn()
}

// ---------------------------------------------------------------------------
// Histogram

// Histogram buckets are powers of two: bucket i counts observations in
// (2^(histMinExp+i-1), 2^(histMinExp+i)]. For latencies recorded in
// seconds this spans ~1 ns to ~12 days with ≤ 2× relative error per
// bucket — ample for p50/p95/p99 monitoring — while keeping Observe at a
// Frexp plus two uncontended atomic adds.
const (
	histMinExp  = -30 // first bucket: v ≤ 2^-30 (≈ 0.93 ns in seconds)
	histMaxExp  = 20  // last finite bucket: v ≤ 2^20 (≈ 12 days in seconds)
	histBuckets = histMaxExp - histMinExp + 1
)

// Histogram is a log₂-bucketed distribution of non-negative float64
// observations (latencies in seconds, profile-vector strengths, …). The
// zero value is ready to use; a nil *Histogram is a no-op.
type Histogram struct {
	// counts[histBuckets] is the overflow bucket (> 2^histMaxExp); it has
	// no finite upper bound and surfaces only in _count/+Inf.
	counts [histBuckets + 1]atomic.Int64
	// sumNanos accumulates observations scaled by 1e9, so the sum is a
	// single atomic add instead of a CAS loop on float bits. The ~1e-9
	// absolute granularity is far below bucket resolution.
	sumNanos atomic.Int64

	// Exemplar table, lazily allocated on the first ObserveExemplar: one
	// slot per bucket holding the slowest observation that carried a
	// trace id, so a histogram bucket can be joined back to the concrete
	// request (/tracez) that produced it. Exemplar updates happen only
	// for sampled requests, so a mutex is fine here.
	exMu sync.Mutex
	ex   *[histBuckets + 1]exemplarSlot
}

// exemplarSlot is one bucket's worst-case witness.
type exemplarSlot struct {
	value float64
	trace uint64
	set   bool
}

// bucketOf maps an observation to its bucket index.
func bucketOf(v float64) int {
	if v <= 0 {
		return 0
	}
	frac, exp := math.Frexp(v) // v = frac · 2^exp, frac ∈ [0.5, 1)
	if frac == 0.5 {
		exp-- // exact powers of two belong to their own ≤-bucket
	}
	switch {
	case exp < histMinExp:
		return 0
	case exp > histMaxExp:
		return histBuckets
	}
	return exp - histMinExp
}

// upperBound returns bucket i's inclusive upper bound.
func upperBound(i int) float64 { return math.Ldexp(1, histMinExp+i) }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.counts[bucketOf(v)].Add(1)
	h.sumNanos.Add(int64(v * 1e9))
}

// ObserveSince records the elapsed time since t, in seconds — the idiom
// for latency instrumentation: t := time.Now(); ...; h.ObserveSince(t).
func (h *Histogram) ObserveSince(t time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(t).Seconds())
}

// ObserveExemplar records a value like Observe and, when traceID is
// non-zero, remembers it as the bucket's exemplar if it is the slowest
// such observation seen for that bucket — linking the histogram to the
// trace (internal/trace) that produced its tail. Call it only on sampled
// requests: unlike Observe, it takes a mutex and may allocate once.
func (h *Histogram) ObserveExemplar(v float64, traceID uint64) {
	if h == nil {
		return
	}
	h.Observe(v)
	if traceID == 0 {
		return
	}
	i := bucketOf(v)
	h.exMu.Lock()
	if h.ex == nil {
		h.ex = new([histBuckets + 1]exemplarSlot)
	}
	if s := &h.ex[i]; !s.set || v >= s.value {
		*s = exemplarSlot{value: v, trace: traceID, set: true}
	}
	h.exMu.Unlock()
}

// ExemplarSnapshot is one bucket's exemplar: the bucket's inclusive upper
// bound ("+Inf" for the overflow bucket), the slowest traced observation
// that landed in it, and that observation's trace id in /tracez hex form.
type ExemplarSnapshot struct {
	LE    string  `json:"le"`
	Value float64 `json:"value"`
	Trace string  `json:"trace"`
}

// HistogramSnapshot is a point-in-time summary of a histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
	// Exemplars lists, per bucket that ever received a traced
	// observation, the slowest such observation and its trace id.
	Exemplars []ExemplarSnapshot `json:"exemplars,omitempty"`
}

// Snapshot summarizes the histogram: total count, sum, interpolated
// p50/p95/p99, and any per-bucket trace exemplars.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	var counts [histBuckets + 1]int64
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	s := HistogramSnapshot{Count: total, Sum: float64(h.sumNanos.Load()) / 1e9}
	if total > 0 {
		s.P50 = quantile(&counts, total, 0.50)
		s.P95 = quantile(&counts, total, 0.95)
		s.P99 = quantile(&counts, total, 0.99)
	}
	s.Exemplars = h.exemplars()
	return s
}

// exemplars snapshots the exemplar table (nil when none were recorded).
func (h *Histogram) exemplars() []ExemplarSnapshot {
	h.exMu.Lock()
	defer h.exMu.Unlock()
	if h.ex == nil {
		return nil
	}
	var out []ExemplarSnapshot
	for i := range h.ex {
		s := h.ex[i]
		if !s.set {
			continue
		}
		le := "+Inf"
		if i < histBuckets {
			le = strconv.FormatFloat(upperBound(i), 'g', -1, 64)
		}
		out = append(out, ExemplarSnapshot{
			LE:    le,
			Value: s.value,
			Trace: fmt.Sprintf("%016x", s.trace),
		})
	}
	return out
}

// Quantile returns the interpolated q-quantile (0 < q < 1) of the
// observations so far, 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	var counts [histBuckets + 1]int64
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	return quantile(&counts, total, q)
}

// NumBuckets is the number of histogram buckets including the overflow
// bucket, sized for BucketCounts arrays.
const NumBuckets = histBuckets + 1

// BucketCounts returns the cumulative per-bucket observation counts as a
// fixed-size array (by value: no heap allocation, safe to diff between
// samples). Bucket i covers (BucketBound(i-1), BucketBound(i)]; the last
// slot is the overflow bucket. A nil histogram returns all zeros.
func (h *Histogram) BucketCounts() [NumBuckets]int64 {
	var counts [NumBuckets]int64
	if h == nil {
		return counts
	}
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts
}

// BucketBound returns bucket i's inclusive upper bound in seconds;
// i = NumBuckets-1 (the overflow bucket) reports +Inf.
func BucketBound(i int) float64 {
	if i >= histBuckets {
		return math.Inf(1)
	}
	return upperBound(i)
}

// CountsQuantile interpolates the q-quantile from an externally-assembled
// bucket-count array — typically the delta of two BucketCounts samples,
// which yields a quantile over just the observations between them.
// Returns 0 when the counts are empty.
func CountsQuantile(counts *[NumBuckets]int64, q float64) float64 {
	var total int64
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return 0
	}
	return quantile(counts, total, q)
}

// quantile interpolates linearly inside the bucket containing the target
// rank; the first bucket's lower bound is 0, the overflow bucket reports
// its lower bound (the best available answer).
//
// Interpolation is well-defined even when every sample lands in a single
// log₂ bucket (lo, hi]: the q-quantile is then lo + (hi−lo)·q exactly —
// the rank fraction distributes the samples uniformly across the bucket.
// Because rank q·total is nondecreasing in q and the cumulative scan
// resolves ranks left to right, reported quantiles are monotone:
// p50 ≤ p95 ≤ p99 always holds, single bucket or not (pinned by
// TestQuantileSingleBucketMonotone).
func quantile(counts *[histBuckets + 1]int64, total int64, q float64) float64 {
	rank := q * float64(total)
	var cum float64
	for i, n := range counts {
		if n == 0 {
			continue
		}
		if cum+float64(n) >= rank {
			if i == histBuckets {
				return upperBound(histBuckets - 1) // overflow: lower bound
			}
			lo := 0.0
			if i > 0 {
				lo = upperBound(i - 1)
			}
			hi := upperBound(i)
			frac := (rank - cum) / float64(n)
			return lo + (hi-lo)*frac
		}
		cum += float64(n)
	}
	return upperBound(histBuckets - 1)
}

// ---------------------------------------------------------------------------
// Registry

// Registry is a named collection of instruments with Prometheus and JSON
// exposition. Registration is idempotent: asking for an existing name of
// the same kind returns the existing instrument (a FuncGauge's callback is
// replaced, last writer wins); a kind collision panics, being always a
// programming error.
type Registry struct {
	mu     sync.RWMutex
	order  []string
	byName map[string]*entry
}

type entry struct {
	name, help string
	m          instrument
}

// instrument is the exposition contract each metric kind implements.
type instrument interface {
	kind() string       // "counter" | "gauge" | "histogram"
	snapshotValue() any // JSON-marshalable value
}

func (c *Counter) kind() string       { return "counter" }
func (c *Counter) snapshotValue() any { return c.Value() }

func (g *Gauge) kind() string       { return "gauge" }
func (g *Gauge) snapshotValue() any { return g.Value() }

func (g *FuncGauge) kind() string       { return "gauge" }
func (g *FuncGauge) snapshotValue() any { return g.Value() }

func (h *Histogram) kind() string       { return "histogram" }
func (h *Histogram) snapshotValue() any { return h.Snapshot() }

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*entry)}
}

// register implements the idempotent-name, panic-on-kind-clash protocol.
func (r *Registry) register(name, help string, fresh instrument) instrument {
	checkName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.byName[name]; ok {
		if e.m.kind() != fresh.kind() {
			panic(fmt.Sprintf("metrics: %q already registered as a %s", name, e.m.kind()))
		}
		if _, isFunc := e.m.(*FuncGauge); isFunc != isFuncGauge(fresh) {
			panic(fmt.Sprintf("metrics: %q already registered as a different gauge flavor", name))
		}
		return e.m
	}
	r.byName[name] = &entry{name: name, help: help, m: fresh}
	r.order = append(r.order, name)
	return fresh
}

func isFuncGauge(m instrument) bool {
	_, ok := m.(*FuncGauge)
	return ok
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, new(Counter)).(*Counter)
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, new(Gauge)).(*Gauge)
}

// GaugeFunc registers (or re-points: last writer wins) a callback-backed
// gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) *FuncGauge {
	g := r.register(name, help, new(FuncGauge)).(*FuncGauge)
	g.fn.Store(fn)
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.register(name, help, new(Histogram)).(*Histogram)
}

// checkName enforces the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]* so exposition can never emit an invalid line.
func checkName(name string) {
	if name == "" {
		panic("metrics: empty name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9' && i > 0:
		default:
			panic(fmt.Sprintf("metrics: invalid name %q", name))
		}
	}
}

// Export is one instrument's name, help, kind, and snapshot value —
// int64 for counters, float64 for gauges, HistogramSnapshot for
// histograms — in registration order.
type Export struct {
	Name string
	Help string
	Kind string
	// Value is int64, float64, or HistogramSnapshot.
	Value any
}

// Exports snapshots every instrument in registration order.
func (r *Registry) Exports() []Export {
	r.mu.RLock()
	entries := make([]*entry, 0, len(r.order))
	for _, name := range r.order {
		entries = append(entries, r.byName[name])
	}
	r.mu.RUnlock()
	out := make([]Export, len(entries))
	for i, e := range entries {
		out[i] = Export{Name: e.name, Help: e.help, Kind: e.m.kind(), Value: e.m.snapshotValue()}
	}
	return out
}

// Snapshot returns every instrument's current value keyed by name,
// suitable for JSON encoding (and for expvar publication).
func (r *Registry) Snapshot() map[string]any {
	exports := r.Exports()
	out := make(map[string]any, len(exports))
	for _, e := range exports {
		out[e.Name] = e.Value
	}
	return out
}

// sortedEntries returns entries by name, for deterministic exposition.
func (r *Registry) sortedEntries() []*entry {
	r.mu.RLock()
	entries := make([]*entry, 0, len(r.byName))
	for _, e := range r.byName {
		entries = append(entries, e)
	}
	r.mu.RUnlock()
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })
	return entries
}
