package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	const goroutines, perG = 16, 10_000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("Value = %d, want %d", got, goroutines*perG)
	}
}

func TestCounterHotPathDoesNotAllocate(t *testing.T) {
	var c Counter
	if n := testing.AllocsPerRun(1000, func() { c.Add(2) }); n != 0 {
		t.Fatalf("Counter.Add allocates %v times per op", n)
	}
	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.001) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v times per op", n)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(3.5)
	g.Add(1.25)
	g.Add(-0.75)
	if got := g.Value(); got != 4.0 {
		t.Fatalf("Value = %v, want 4", got)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var (
		c *Counter
		g *Gauge
		f *FuncGauge
		h *Histogram
	)
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || f.Value() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil instruments returned non-zero values")
	}
	if s := h.Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram snapshot non-empty")
	}
}

func TestHistogramBuckets(t *testing.T) {
	// Exact powers of two land in their own ≤-bucket.
	if got, want := bucketOf(1.0), -histMinExp; got != want {
		t.Errorf("bucketOf(1) = %d, want %d", got, want)
	}
	if upperBound(bucketOf(1.0)) != 1.0 {
		t.Errorf("upper bound of bucketOf(1) = %v, want 1", upperBound(bucketOf(1.0)))
	}
	// Values just above a power of two move to the next bucket.
	if bucketOf(1.0001) != bucketOf(1.0)+1 {
		t.Error("1.0001 should fall in the bucket above 1.0")
	}
	// Non-positive and subnormal-tiny values land in the first bucket.
	if bucketOf(0) != 0 || bucketOf(-3) != 0 || bucketOf(1e-300) != 0 {
		t.Error("tiny/non-positive values must land in bucket 0")
	}
	// Huge values overflow.
	if bucketOf(math.Ldexp(1, histMaxExp+3)) != histBuckets {
		t.Error("huge value must land in the overflow bucket")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1000 observations uniform over (0, 1]: quantiles should be within a
	// bucket width (≤ 2× relative) of the true values.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 1000)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("Count = %d, want 1000", s.Count)
	}
	if s.Sum < 499 || s.Sum > 502 {
		t.Errorf("Sum = %v, want ≈ 500.5", s.Sum)
	}
	checks := []struct {
		got, want float64
	}{{s.P50, 0.5}, {s.P95, 0.95}, {s.P99, 0.99}}
	for _, c := range checks {
		if c.got < c.want/2 || c.got > c.want*2 {
			t.Errorf("quantile = %v, want within 2x of %v", c.got, c.want)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				h.Observe(float64(g+1) * 0.001)
			}
		}(g)
	}
	wg.Wait()
	if s := h.Snapshot(); s.Count != 40000 {
		t.Fatalf("Count = %d, want 40000", s.Count)
	}
}

func TestRegistryIdempotentAndKindClash(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("reqs_total", "requests")
	c2 := r.Counter("reqs_total", "ignored duplicate help")
	if c1 != c2 {
		t.Fatal("re-registering a counter must return the same instance")
	}
	h1 := r.Histogram("lat_seconds", "latency")
	if h2 := r.Histogram("lat_seconds", ""); h1 != h2 {
		t.Fatal("re-registering a histogram must return the same instance")
	}
	// GaugeFunc re-registration replaces the callback (last writer wins).
	r.GaugeFunc("depth", "", func() float64 { return 1 })
	g := r.GaugeFunc("depth", "", func() float64 { return 2 })
	if g.Value() != 2 {
		t.Fatal("GaugeFunc re-registration must replace the callback")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind clash must panic")
		}
	}()
	r.Gauge("reqs_total", "")
}

func TestRegistryRejectsBadNames(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "1abc", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q must be rejected", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("mm_test_ops_total", "ops so far").Add(7)
	r.Gauge("mm_test_depth", "queue depth").Set(2.5)
	r.GaugeFunc("mm_test_live", "live items", func() float64 { return 3 })
	h := r.Histogram("mm_test_lat_seconds", "latency")
	h.Observe(0.001)
	h.Observe(0.002)
	h.Observe(0.004)
	r.Histogram("mm_test_empty_seconds", "no observations yet")

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP mm_test_ops_total ops so far",
		"# TYPE mm_test_ops_total counter",
		"mm_test_ops_total 7",
		"# TYPE mm_test_depth gauge",
		"mm_test_depth 2.5",
		"mm_test_live 3",
		"# TYPE mm_test_lat_seconds histogram",
		`mm_test_lat_seconds_bucket{le="+Inf"} 3`,
		"mm_test_lat_seconds_count 3",
		// Empty histograms still expose their series.
		`mm_test_empty_seconds_bucket{le="+Inf"} 0`,
		"mm_test_empty_seconds_count 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Bucket lines must be cumulative and monotone.
	var last int64 = -1
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "mm_test_lat_seconds_bucket") {
			continue
		}
		var n int64
		if _, err := fmtSscanSuffix(line, &n); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		if n < last {
			t.Fatalf("non-monotone cumulative buckets:\n%s", out)
		}
		last = n
	}
}

// fmtSscanSuffix parses the trailing integer of an exposition line.
func fmtSscanSuffix(line string, n *int64) (int, error) {
	i := strings.LastIndexByte(line, ' ')
	v, err := json.Number(line[i+1:]).Int64()
	*n = v
	return 1, err
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "").Add(4)
	r.Gauge("g", "").Set(1.5)
	r.Histogram("h_seconds", "").Observe(0.5)

	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded["c_total"].(float64) != 4 || decoded["g"].(float64) != 1.5 {
		t.Fatalf("snapshot = %v", decoded)
	}
	hist := decoded["h_seconds"].(map[string]any)
	if hist["count"].(float64) != 1 {
		t.Fatalf("histogram snapshot = %v", hist)
	}
}

func TestExportsOrdered(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "")
	r.Gauge("a", "")
	ex := r.Exports()
	if len(ex) != 2 || ex[0].Name != "z_total" || ex[1].Name != "a" {
		t.Fatalf("Exports = %+v, want registration order", ex)
	}
	if ex[0].Kind != "counter" || ex[1].Kind != "gauge" {
		t.Fatalf("kinds = %s/%s", ex[0].Kind, ex[1].Kind)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(0.000123)
		}
	})
}

// TestQuantileSingleBucketMonotone pins the interpolation contract when
// every observation lands in one log₂ bucket: quantiles interpolate
// linearly across that bucket and p50 ≤ p95 ≤ p99 holds.
func TestQuantileSingleBucketMonotone(t *testing.T) {
	var h Histogram
	// 0.3 lands in the (0.25, 0.5] bucket; all samples identical, so the
	// whole distribution occupies a single bucket.
	for i := 0; i < 1000; i++ {
		h.Observe(0.3)
	}
	s := h.Snapshot()
	if !(s.P50 <= s.P95 && s.P95 <= s.P99) {
		t.Fatalf("quantiles not monotone: p50=%v p95=%v p99=%v", s.P50, s.P95, s.P99)
	}
	lo, hi := 0.25, 0.5
	for q, v := range map[float64]float64{0.50: s.P50, 0.95: s.P95, 0.99: s.P99} {
		if v <= lo || v > hi {
			t.Fatalf("q%v=%v escapes the (%v,%v] bucket", q, v, lo, hi)
		}
		want := lo + (hi-lo)*q
		if diff := v - want; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("q%v=%v, want exact linear interpolation %v", q, v, want)
		}
	}
	// A single observation is the degenerate single-bucket case.
	var one Histogram
	one.Observe(0.3)
	s1 := one.Snapshot()
	if !(s1.P50 <= s1.P95 && s1.P95 <= s1.P99) {
		t.Fatalf("single-sample quantiles not monotone: %+v", s1)
	}
}

// TestQuantileMonotoneAcrossBuckets sweeps a multi-bucket distribution
// and requires the quantile function itself to be nondecreasing in q.
func TestQuantileMonotoneAcrossBuckets(t *testing.T) {
	var h Histogram
	for i := 1; i <= 2000; i++ {
		h.Observe(float64(i) / 500) // spans several buckets
	}
	prev := 0.0
	for q := 0.01; q < 1; q += 0.01 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantile(%v)=%v < quantile(prev)=%v", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramExemplars(t *testing.T) {
	var h Histogram
	h.ObserveExemplar(0.3, 0xabc)  // (0.25, 0.5]
	h.ObserveExemplar(0.4, 0xdef)  // same bucket, slower: replaces
	h.ObserveExemplar(0.26, 0x123) // same bucket, faster: kept out
	h.ObserveExemplar(3.0, 0x456)  // (2,4] bucket
	h.ObserveExemplar(5.0, 0)      // no trace id: counted, no exemplar

	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count %d, want 5 (exemplar observes must count)", s.Count)
	}
	if len(s.Exemplars) != 2 {
		t.Fatalf("exemplars %+v, want 2 buckets", s.Exemplars)
	}
	first := s.Exemplars[0]
	if first.Value != 0.4 || first.Trace != "0000000000000def" {
		t.Fatalf("bucket exemplar %+v, want slowest (0.4, ...def)", first)
	}
	if first.LE != "0.5" {
		t.Fatalf("exemplar le %q, want 0.5", first.LE)
	}
	if s.Exemplars[1].Trace != "0000000000000456" {
		t.Fatalf("second exemplar %+v", s.Exemplars[1])
	}

	// Plain snapshots without exemplars must omit the field entirely.
	var plain Histogram
	plain.Observe(1)
	if ex := plain.Snapshot().Exemplars; ex != nil {
		t.Fatalf("plain histogram has exemplars %+v", ex)
	}

	// Overflow bucket renders +Inf.
	var of Histogram
	of.ObserveExemplar(1e10, 0x9)
	if got := of.Snapshot().Exemplars[0].LE; got != "+Inf" {
		t.Fatalf("overflow exemplar le %q", got)
	}

	// Nil histogram stays a no-op.
	var nilH *Histogram
	nilH.ObserveExemplar(1, 2)
}

func TestHistogramExemplarConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.ObserveExemplar(float64(i%7)+0.1, uint64(w*1000+i+1))
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 4000 {
		t.Fatalf("count %d", s.Count)
	}
	for _, ex := range s.Exemplars {
		if ex.Trace == "" || ex.Value <= 0 {
			t.Fatalf("bad exemplar %+v", ex)
		}
	}
}

func TestBucketCountsDelta(t *testing.T) {
	h := NewRegistry().Histogram("t_seconds", "")
	h.Observe(0.001)
	h.Observe(0.001)
	before := h.BucketCounts()
	// Quantile over the delta of two samples sees only the observations
	// between them — the windowed-quantile building block.
	h.Observe(1.0)
	h.Observe(1.0)
	h.Observe(1.0)
	after := h.BucketCounts()
	var delta [NumBuckets]int64
	var total int64
	for i := range after {
		delta[i] = after[i] - before[i]
		total += delta[i]
	}
	if total != 3 {
		t.Fatalf("delta total %d, want 3", total)
	}
	q := CountsQuantile(&delta, 0.5)
	if q < 0.5 || q > 1.0 {
		t.Fatalf("windowed p50 %v should reflect only the 1.0s observations", q)
	}
	if got := CountsQuantile(&before, 0.5); got > 0.01 {
		t.Fatalf("pre-window p50 %v should reflect only the 1ms observations", got)
	}
	var zero [NumBuckets]int64
	if CountsQuantile(&zero, 0.99) != 0 {
		t.Fatal("empty counts should report 0")
	}
	var nilH *Histogram
	if nilH.BucketCounts() != zero {
		t.Fatal("nil histogram should report zero counts")
	}
}

func TestBucketBound(t *testing.T) {
	if !math.IsInf(BucketBound(NumBuckets-1), 1) {
		t.Fatal("overflow bucket bound should be +Inf")
	}
	if BucketBound(0) >= BucketBound(1) {
		t.Fatal("bounds should increase")
	}
}
