package metrics

import (
	"bufio"
	"encoding/json"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus writes every instrument in the Prometheus text format
// (version 0.0.4), sorted by name. Histograms emit cumulative ≤-buckets
// (only non-empty ones, plus the mandatory +Inf), _sum, and _count; an
// empty histogram still emits its +Inf/_sum/_count triple so dashboards
// can discover the series before traffic arrives.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range r.sortedEntries() {
		if e.help != "" {
			bw.WriteString("# HELP ")
			bw.WriteString(e.name)
			bw.WriteByte(' ')
			bw.WriteString(escapeHelp(e.help))
			bw.WriteByte('\n')
		}
		bw.WriteString("# TYPE ")
		bw.WriteString(e.name)
		bw.WriteByte(' ')
		bw.WriteString(e.m.kind())
		bw.WriteByte('\n')
		switch m := e.m.(type) {
		case *Counter:
			bw.WriteString(e.name)
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatInt(m.Value(), 10))
			bw.WriteByte('\n')
		case *Gauge:
			writeGaugeLine(bw, e.name, m.Value())
		case *FuncGauge:
			writeGaugeLine(bw, e.name, m.Value())
		case *Histogram:
			writePromHistogram(bw, e.name, m)
		}
	}
	return bw.Flush()
}

func writeGaugeLine(bw *bufio.Writer, name string, v float64) {
	bw.WriteString(name)
	bw.WriteByte(' ')
	bw.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	bw.WriteByte('\n')
}

func writePromHistogram(bw *bufio.Writer, name string, h *Histogram) {
	var cum int64
	for i := 0; i < histBuckets; i++ {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		cum += n
		bw.WriteString(name)
		bw.WriteString(`_bucket{le="`)
		bw.WriteString(strconv.FormatFloat(upperBound(i), 'g', -1, 64))
		bw.WriteString(`"} `)
		bw.WriteString(strconv.FormatInt(cum, 10))
		bw.WriteByte('\n')
	}
	cum += h.counts[histBuckets].Load() // overflow counts only toward +Inf
	bw.WriteString(name)
	bw.WriteString(`_bucket{le="+Inf"} `)
	bw.WriteString(strconv.FormatInt(cum, 10))
	bw.WriteByte('\n')
	bw.WriteString(name)
	bw.WriteString("_sum ")
	bw.WriteString(strconv.FormatFloat(float64(h.sumNanos.Load())/1e9, 'g', -1, 64))
	bw.WriteByte('\n')
	bw.WriteString(name)
	bw.WriteString("_count ")
	bw.WriteString(strconv.FormatInt(cum, 10))
	bw.WriteByte('\n')
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// WriteJSON writes the Snapshot as JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	return json.NewEncoder(w).Encode(r.Snapshot())
}
