package obs

import (
	"testing"
	"time"

	mm "mmprofile/internal/metrics"
)

// TestWindowRatesInjectedClock drives the ring with an explicit clock and
// checks deltas and rates over spans shorter and longer than the history.
func TestWindowRatesInjectedClock(t *testing.T) {
	w := NewWindow(120)
	var v float64
	w.RegisterCounter("c", func() float64 { return v })
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	// 61 ticks, 1s apart, counter grows by 10 per tick.
	for i := 0; i <= 60; i++ {
		v = float64(i * 10)
		w.Tick(base.Add(time.Duration(i) * time.Second))
	}
	for _, tc := range []struct {
		span  time.Duration
		delta float64
	}{
		{time.Second, 10},
		{10 * time.Second, 100},
		{60 * time.Second, 600},
	} {
		d, actual, ok := w.Delta("c", tc.span)
		if !ok || d != tc.delta {
			t.Fatalf("delta over %v: got %v (ok=%v), want %v", tc.span, d, ok, tc.delta)
		}
		if actual != tc.span {
			t.Fatalf("actual span over %v: got %v", tc.span, actual)
		}
		r, ok := w.Rate("c", tc.span)
		if !ok || r != 10 {
			t.Fatalf("rate over %v: got %v (ok=%v), want 10", tc.span, r, ok)
		}
	}
	// Asking beyond the retained history falls back to the oldest row.
	if _, actual, ok := w.Delta("c", time.Hour); !ok || actual != 60*time.Second {
		t.Fatalf("fallback span: got %v", actual)
	}
	if _, _, ok := w.Delta("nope", time.Second); ok {
		t.Fatal("unknown counter should not be ok")
	}
}

// TestWindowRingWraps fills the ring past capacity and checks old rows
// are really gone.
func TestWindowRingWraps(t *testing.T) {
	w := NewWindow(4)
	var v float64
	w.RegisterCounter("c", func() float64 { return v })
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 10; i++ {
		v = float64(i)
		w.Tick(base.Add(time.Duration(i) * time.Second))
	}
	// Ring of 4 keeps ticks 6..9: the widest delta is 9-6 over 3s.
	d, actual, ok := w.Delta("c", time.Hour)
	if !ok || d != 3 || actual != 3*time.Second {
		t.Fatalf("wrapped delta: got %v over %v (ok=%v)", d, actual, ok)
	}
	pts := w.Series("c", 0)
	if len(pts) != 4 || pts[0].Value != 6 || pts[3].Value != 9 {
		t.Fatalf("series after wrap: %v", pts)
	}
}

// TestWindowQuantileDelta checks that windowed quantiles see only the
// observations inside the span.
func TestWindowQuantileDelta(t *testing.T) {
	reg := mm.NewRegistry()
	h := reg.Histogram("lat_seconds", "")
	w := NewWindow(120)
	w.RegisterHistogram("lat_seconds", h)
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	// 60 ticks of fast observations, then 10 ticks of slow ones.
	for i := 0; i < 60; i++ {
		h.Observe(0.001)
		w.Tick(base.Add(time.Duration(i) * time.Second))
	}
	for i := 60; i < 70; i++ {
		h.Observe(1.0)
		w.Tick(base.Add(time.Duration(i) * time.Second))
	}
	p99short, n, ok := w.Quantile("lat_seconds", 9*time.Second, 0.99)
	if !ok || n != 9 {
		t.Fatalf("short quantile: n=%d ok=%v", n, ok)
	}
	if p99short < 0.5 {
		t.Fatalf("short-window p99 %v should only see the slow observations", p99short)
	}
	// The cumulative histogram is still dominated by the fast phase.
	if all := h.Quantile(0.5); all > 0.01 {
		t.Fatalf("cumulative p50 %v should still be fast", all)
	}
}

// TestBurnRule exercises the multi-window rule: a short burst alone must
// not fire, sustained badness across both windows must.
func TestBurnRule(t *testing.T) {
	reg := mm.NewRegistry()
	h := reg.Histogram("lat_seconds", "")
	w := NewWindow(120)
	w.RegisterHistogram("lat_seconds", h)
	rule := BurnRule{Hist: "lat_seconds", Limit: 0.1, Objective: 0.99, Short: 10 * time.Second, Long: 60 * time.Second}
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	tick := 0
	step := func(v float64, times int) {
		for i := 0; i < times; i++ {
			h.Observe(v)
			w.Tick(base.Add(time.Duration(tick) * time.Second))
			tick++
		}
	}
	// Healthy minute: nothing burns.
	step(0.001, 60)
	if st := w.Burn(rule); st.Breached || st.LongBurn != 0 {
		t.Fatalf("healthy window breached: %+v", st)
	}
	// A short 5s burst of slowness: short window burns hot, but the long
	// window (5 bad of 60) burns 5/60/0.01 ≈ 8.3 — still over. Use a
	// 2-sample burst instead: long bad fraction 2/60 ≈ 3.3% → burn 3.3;
	// to prove the sustain requirement we need Factor above the blip's
	// long burn but below its short burn.
	blipRule := rule
	blipRule.Factor = 10 // short blip: shortBurn ≈ 20, longBurn ≈ 3.3
	step(1.0, 2)
	st := w.Burn(blipRule)
	if st.ShortBurn < 10 {
		t.Fatalf("blip should burn the short window hot: %+v", st)
	}
	if st.Breached {
		t.Fatalf("short blip alone breached the multi-window rule: %+v", st)
	}
	// Sustained badness: a full minute of slow observations fires.
	step(1.0, 60)
	st = w.Burn(rule)
	if !st.Breached || st.ShortCount == 0 {
		t.Fatalf("sustained badness did not breach: %+v", st)
	}
}

// TestWindowBadFraction pins the interpolation behavior.
func TestWindowBadFraction(t *testing.T) {
	reg := mm.NewRegistry()
	h := reg.Histogram("lat_seconds", "")
	w := NewWindow(16)
	w.RegisterHistogram("lat_seconds", h)
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	w.Tick(base)
	for i := 0; i < 10; i++ {
		h.Observe(0.001) // fast
	}
	for i := 0; i < 10; i++ {
		h.Observe(10.0) // slow, well above limit
	}
	w.Tick(base.Add(time.Second))
	frac, n, ok := w.BadFraction("lat_seconds", time.Second, 0.1)
	if !ok || n != 20 {
		t.Fatalf("bad fraction: n=%d ok=%v", n, ok)
	}
	if frac < 0.45 || frac > 0.55 {
		t.Fatalf("bad fraction %v, want ≈0.5", frac)
	}
}

// TestWindowSnapshot checks the /tsz projection shape.
func TestWindowSnapshot(t *testing.T) {
	reg := mm.NewRegistry()
	h := reg.Histogram("lat_seconds", "")
	w := NewWindow(16)
	var v float64
	w.RegisterCounter("c", func() float64 { return v })
	w.RegisterHistogram("lat_seconds", h)
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		v = float64(i)
		h.Observe(0.01)
		w.Tick(base.Add(time.Duration(i) * time.Second))
	}
	snap := w.Snapshot(3)
	if !snap.Enabled || snap.Samples != 5 {
		t.Fatalf("snapshot: %+v", snap)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Name != "c" || snap.Counters[0].Value != 4 {
		t.Fatalf("counters: %+v", snap.Counters)
	}
	if len(snap.Counters[0].Serie) != 3 {
		t.Fatalf("series should be capped at 3: %+v", snap.Counters[0].Serie)
	}
	if len(snap.Histograms) != 1 || len(snap.Histograms[0].Windows) != 3 {
		t.Fatalf("histograms: %+v", snap.Histograms)
	}
	var nilW *Window
	if nilW.Snapshot(0).Enabled {
		t.Fatal("nil window should report disabled")
	}
}
