package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log/slog"
	"strings"
	"testing"

	"mmprofile/internal/trace"
)

func TestLoggerJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(LogOptions{Format: "json", Output: &buf, Level: LevelDebug})
	if err != nil {
		t.Fatal(err)
	}
	l.Info("wire: accept", slog.String("remote_addr", "127.0.0.1:9"), slog.Int("n", 3))
	line := strings.TrimSpace(buf.String())
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, line)
	}
	if rec["msg"] != "wire: accept" {
		t.Errorf("msg = %v", rec["msg"])
	}
	if rec["remote_addr"] != "127.0.0.1:9" {
		t.Errorf("remote_addr = %v", rec["remote_addr"])
	}
	if rec["n"] != float64(3) {
		t.Errorf("n = %v", rec["n"])
	}
	if rec["level"] != "INFO" {
		t.Errorf("level = %v", rec["level"])
	}
}

func TestLoggerLevelFilterAndSetLevel(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(LogOptions{Format: "text", Output: &buf, Level: LevelWarn})
	if err != nil {
		t.Fatal(err)
	}
	l.Debug("dropped")
	l.Info("dropped too")
	if buf.Len() != 0 {
		t.Fatalf("below-level records emitted: %q", buf.String())
	}
	if l.Enabled(LevelInfo) {
		t.Error("Enabled(info) = true at warn level")
	}
	if !l.Enabled(LevelError) {
		t.Error("Enabled(error) = false at warn level")
	}
	l.SetLevel(LevelDebug)
	l.Debug("now visible")
	if !strings.Contains(buf.String(), "now visible") {
		t.Errorf("record missing after SetLevel: %q", buf.String())
	}
}

func TestNilLoggerNoOps(t *testing.T) {
	var l *Logger
	if l.Enabled(LevelError) {
		t.Error("nil logger Enabled = true")
	}
	// Must not panic.
	l.Debug("x")
	l.Info("x")
	l.Warn("x")
	l.Error("x")
	l.SetLevel(LevelDebug)
	if l.Ring() != nil {
		t.Error("nil logger Ring != nil")
	}
}

func TestLoggerRingTap(t *testing.T) {
	ring := NewEventRing(8)
	var buf bytes.Buffer
	l, err := NewLogger(LogOptions{Format: "json", Output: &buf, Level: LevelInfo, Ring: ring})
	if err != nil {
		t.Fatal(err)
	}
	l.Debug("below level — must not reach ring")
	l.Warn("store: sync failed", slog.String("err", "disk full"))
	evs := ring.Snapshot()
	if len(evs) != 1 {
		t.Fatalf("ring holds %d events, want 1", len(evs))
	}
	e := evs[0]
	if e.Msg != "store: sync failed" || e.Level != "WARN" {
		t.Errorf("event = %+v", e)
	}
	if e.Attrs["err"] != "disk full" {
		t.Errorf("attrs = %v", e.Attrs)
	}
	if e.TimeUnixNano == 0 {
		t.Error("event has zero timestamp")
	}
}

func TestNewLogfLoggerAdapter(t *testing.T) {
	var lines []string
	ring := NewEventRing(4)
	l := NewLogfLogger(func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}, ring)
	l.Info("wire: decode", slog.String("remote_addr", "10.0.0.1:5"), slog.String("err", "bad json"))
	if len(lines) != 1 {
		t.Fatalf("logf called %d times, want 1", len(lines))
	}
	want := "wire: decode remote_addr=10.0.0.1:5 err=bad json"
	if lines[0] != want {
		t.Errorf("logf line = %q, want %q", lines[0], want)
	}
	if got := len(ring.Snapshot()); got != 1 {
		t.Errorf("ring events = %d, want 1 (logf path must feed the recorder)", got)
	}
	// Debug is below the adapter's fixed Info level.
	l.Debug("hidden")
	if len(lines) != 1 {
		t.Errorf("debug leaked through logf adapter: %v", lines)
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": LevelDebug, "info": LevelInfo, "": LevelInfo,
		"warn": LevelWarn, "warning": LevelWarn, "ERROR": LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel(loud) accepted")
	}
	if _, err := NewLogger(LogOptions{Format: "xml"}); err == nil {
		t.Error("NewLogger(format=xml) accepted")
	}
}

func TestTraceAttr(t *testing.T) {
	if a := TraceAttr(nil); a.Key != "trace_id" || a.Value.String() != "" {
		t.Errorf("TraceAttr(nil) = %v", a)
	}
	tr := trace.New(trace.Options{SampleRate: 1, Capacity: 4})
	sp := tr.Root("req", trace.Remote{})
	a := TraceAttr(sp)
	ctx := a.Value.String()
	if len(ctx) != 33 || ctx[16] != '-' {
		t.Errorf("trace_id = %q, want 16hex-16hex", ctx)
	}
	sp.End()
}

// TestDisabledLogZeroAllocs pins the package's core promise: an
// Enabled-guarded call site at a disabled level performs zero
// allocations. This is the pattern the publish hot path uses.
func TestDisabledLogZeroAllocs(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(LogOptions{Format: "json", Output: &buf, Level: LevelInfo})
	if err != nil {
		t.Fatal(err)
	}
	docID := int64(42)
	allocs := testing.AllocsPerRun(1000, func() {
		if l.Enabled(LevelDebug) {
			l.Debug("pubsub: publish", slog.Int64("doc", docID))
		}
	})
	if allocs != 0 {
		t.Errorf("guarded disabled-level call allocates %.1f/op, want 0", allocs)
	}
	// The nil logger must be free even without the guard idiom's branch.
	var nilLog *Logger
	allocs = testing.AllocsPerRun(1000, func() {
		if nilLog.Enabled(LevelDebug) {
			nilLog.Debug("pubsub: publish", slog.Int64("doc", docID))
		}
	})
	if allocs != 0 {
		t.Errorf("nil logger guarded call allocates %.1f/op, want 0", allocs)
	}
	if buf.Len() != 0 {
		t.Errorf("disabled calls produced output: %q", buf.String())
	}
}
