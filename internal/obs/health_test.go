package obs

import (
	"errors"
	"testing"
	"time"
)

func TestHealthEmptyAndNil(t *testing.T) {
	var nilH *Health
	if s := nilH.Snapshot(); s.Status != "ready" || !s.Ready() {
		t.Errorf("nil health snapshot = %+v", s)
	}
	// All mutators must be nil-safe.
	nilH.RegisterCheck("x", func() error { return nil })
	nilH.RegisterHeartbeat("y", time.Second)
	nilH.Beat("y")
	nilH.Set("z", StatusReady, "")
	nilH.StartDrain()
	if nilH.Draining() {
		t.Error("nil health Draining = true")
	}
	if s := NewHealth().Snapshot(); s.Status != "ready" || len(s.Components) != 0 {
		t.Errorf("empty health snapshot = %+v", s)
	}
}

func TestHealthCheckPrecedence(t *testing.T) {
	h := NewHealth()
	h.RegisterCheck("store_wal", func() error { return nil })
	h.RegisterCheck("index", func() error { return nil })
	s := h.Snapshot()
	if s.Status != "ready" {
		t.Fatalf("status = %s, want ready", s.Status)
	}

	// One degraded component → overall degraded, still serving.
	h.RegisterCheck("index", func() error { return Degraded("compaction backlog") })
	s = h.Snapshot()
	if s.Status != "degraded" || !s.Ready() {
		t.Fatalf("status = %s Ready=%v, want degraded/serving", s.Status, s.Ready())
	}
	if c := s.Components["index"]; c.Status != "degraded" || c.Reason != "compaction backlog" {
		t.Errorf("index component = %+v", c)
	}

	// One hard-failed component → overall not_ready, wins over degraded.
	h.RegisterCheck("store_wal", func() error { return errors.New("wal: read-only") })
	s = h.Snapshot()
	if s.Status != "not_ready" || s.Ready() {
		t.Fatalf("status = %s Ready=%v, want not_ready/refusing", s.Status, s.Ready())
	}
	if c := s.Components["store_wal"]; c.Status != "not_ready" || c.Reason != "wal: read-only" {
		t.Errorf("store_wal component = %+v", c)
	}
}

func TestHealthPushComponents(t *testing.T) {
	h := NewHealth()
	h.Set("server", StatusNotReady, "starting")
	if s := h.Snapshot(); s.Status != "not_ready" || s.Components["server"].Reason != "starting" {
		t.Fatalf("startup snapshot = %+v", s)
	}
	h.Set("server", StatusReady, "")
	if s := h.Snapshot(); s.Status != "ready" {
		t.Fatalf("post-start snapshot = %+v", s)
	}
}

func TestHealthHeartbeatStaleness(t *testing.T) {
	h := NewHealth()
	now := time.Unix(1000, 0)
	h.now = func() time.Time { return now }
	h.RegisterHeartbeat("publish_loop", 2*time.Second)

	if s := h.Snapshot(); s.Status != "ready" {
		t.Fatalf("fresh heartbeat snapshot = %+v", s)
	}
	now = now.Add(1500 * time.Millisecond)
	if s := h.Snapshot(); s.Status != "ready" {
		t.Fatalf("within-age snapshot = %+v", s)
	}
	if got := h.Snapshot().Components["publish_loop"].LastBeatAgoMS; got != 1500 {
		t.Errorf("LastBeatAgoMS = %d, want 1500", got)
	}

	now = now.Add(3 * time.Second)
	s := h.Snapshot()
	if s.Status != "degraded" {
		t.Fatalf("stale heartbeat status = %s, want degraded", s.Status)
	}
	if c := s.Components["publish_loop"]; c.Reason == "" {
		t.Error("stale heartbeat has no reason")
	}

	h.Beat("publish_loop")
	if s := h.Snapshot(); s.Status != "ready" {
		t.Fatalf("post-beat snapshot = %+v", s)
	}
}

func TestHealthDrainOverridesEverything(t *testing.T) {
	h := NewHealth()
	h.RegisterCheck("store_wal", func() error { return nil })
	h.StartDrain()
	s := h.Snapshot()
	if s.Status != "draining" || !s.Draining || s.Ready() {
		t.Fatalf("draining snapshot = %+v", s)
	}
	// Components keep reporting their own state underneath.
	if c := s.Components["store_wal"]; c.Status != "ready" {
		t.Errorf("component under drain = %+v", c)
	}
}
