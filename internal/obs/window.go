package obs

import (
	"sort"
	"sync"
	"time"

	mm "mmprofile/internal/metrics"
)

// Window is a fixed-size ring of periodic metric snapshots: every Tick
// samples each registered counter source (a float64 func, monotone by
// convention) and histogram (its full bucket-count array), so rates,
// deltas, and quantiles can be asked over any span the ring still covers
// — "deliveries/s over the last 10s", "p99 match latency over the last
// minute" — without the instruments themselves keeping history.
//
// Spans are measured backwards from the newest sample, not from the wall
// clock, which makes reads deterministic under an injected test clock and
// correct when ticks arrive late. Ring rows are allocated once on the
// first lap and reused forever: steady-state Tick allocates nothing.
//
// Tick is meant to be driven from one goroutine (the RuntimeSampler's
// onTick); reads may come from any goroutine.
type Window struct {
	mu   sync.Mutex
	size int

	counters []winCounter
	hists    []winHist

	rows  []winRow
	next  int // rows[next] is written by the next Tick
	count int // rows populated (≤ size)
}

type winCounter struct {
	name string
	fn   func() float64
}

type winHist struct {
	name string
	h    *mm.Histogram
}

type winRow struct {
	at   time.Time
	vals []float64
	hb   [][mm.NumBuckets]int64
}

// NewWindow builds a ring holding size samples. With the sampler's 1s
// interval, size 120 covers the 60s long window twice over.
func NewWindow(size int) *Window {
	if size < 2 {
		size = 2
	}
	return &Window{size: size, rows: make([]winRow, size)}
}

// RegisterCounter adds a monotone float64 source sampled at each tick.
// Register before the first Tick; names must be unique.
func (w *Window) RegisterCounter(name string, fn func() float64) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.counters = append(w.counters, winCounter{name: name, fn: fn})
}

// RegisterHistogram adds a histogram whose bucket counts are sampled at
// each tick, enabling windowed quantiles and bad-fraction queries.
func (w *Window) RegisterHistogram(name string, h *mm.Histogram) {
	if w == nil || h == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.hists = append(w.hists, winHist{name: name, h: h})
}

// Tick samples every registered source, stamping the row with now.
func (w *Window) Tick(now time.Time) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	row := &w.rows[w.next]
	row.at = now
	if cap(row.vals) < len(w.counters) {
		row.vals = make([]float64, len(w.counters))
	}
	row.vals = row.vals[:len(w.counters)]
	for i, c := range w.counters {
		row.vals[i] = c.fn()
	}
	if cap(row.hb) < len(w.hists) {
		row.hb = make([][mm.NumBuckets]int64, len(w.hists))
	}
	row.hb = row.hb[:len(w.hists)]
	for i, h := range w.hists {
		row.hb[i] = h.h.BucketCounts()
	}
	w.next = (w.next + 1) % w.size
	if w.count < w.size {
		w.count++
	}
}

// rowAt returns the i-th most recent row (0 = newest). Caller holds w.mu.
func (w *Window) rowAt(i int) *winRow {
	return &w.rows[((w.next-1-i)%w.size+w.size)%w.size]
}

// baseRow locates the newest row at least span older than the newest
// sample (falling back to the oldest row the ring holds), the comparison
// point for every windowed delta. Caller holds w.mu. Returns nil when
// fewer than two rows exist.
func (w *Window) baseRow(span time.Duration) (newest, base *winRow) {
	if w.count < 2 {
		return nil, nil
	}
	newest = w.rowAt(0)
	cutoff := newest.at.Add(-span)
	for i := 1; i < w.count; i++ {
		r := w.rowAt(i)
		base = r
		if !r.at.After(cutoff) {
			break
		}
	}
	return newest, base
}

// counterIdx finds the registered counter index. Caller holds w.mu.
func (w *Window) counterIdx(name string) int {
	for i, c := range w.counters {
		if c.name == name {
			return i
		}
	}
	return -1
}

// histIdx finds the registered histogram index. Caller holds w.mu.
func (w *Window) histIdx(name string) int {
	for i, h := range w.hists {
		if h.name == name {
			return i
		}
	}
	return -1
}

// Delta returns how much counter name grew over the trailing span (newest
// sample minus the base row) and the actual span between those samples.
// ok is false when the counter is unknown or fewer than two ticks exist.
func (w *Window) Delta(name string, span time.Duration) (delta float64, actual time.Duration, ok bool) {
	if w == nil {
		return 0, 0, false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	i := w.counterIdx(name)
	if i < 0 {
		return 0, 0, false
	}
	newest, base := w.baseRow(span)
	if newest == nil || i >= len(newest.vals) || i >= len(base.vals) {
		return 0, 0, false
	}
	return newest.vals[i] - base.vals[i], newest.at.Sub(base.at), true
}

// Rate returns counter name's growth per second over the trailing span.
func (w *Window) Rate(name string, span time.Duration) (perSec float64, ok bool) {
	d, actual, ok := w.Delta(name, span)
	if !ok || actual <= 0 {
		return 0, false
	}
	return d / actual.Seconds(), true
}

// histDelta computes the bucket-count delta for histogram index i over
// span. Caller holds w.mu.
func (w *Window) histDelta(i int, span time.Duration) (delta [mm.NumBuckets]int64, total int64, ok bool) {
	newest, base := w.baseRow(span)
	if newest == nil || i >= len(newest.hb) || i >= len(base.hb) {
		return delta, 0, false
	}
	for b := range delta {
		delta[b] = newest.hb[i][b] - base.hb[i][b]
		total += delta[b]
	}
	return delta, total, true
}

// Quantile returns the interpolated q-quantile of histogram name over
// just the observations recorded in the trailing span, plus how many
// observations that window held. ok is false when the histogram is
// unknown, fewer than two ticks exist, or the window saw no observations.
func (w *Window) Quantile(name string, span time.Duration, q float64) (v float64, n int64, ok bool) {
	if w == nil {
		return 0, 0, false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	i := w.histIdx(name)
	if i < 0 {
		return 0, 0, false
	}
	delta, total, ok := w.histDelta(i, span)
	if !ok || total <= 0 {
		return 0, total, false
	}
	return mm.CountsQuantile(&delta, q), total, true
}

// BadFraction returns the fraction of histogram name's observations in
// the trailing span whose value exceeded limit, interpolating inside the
// boundary bucket (observations in the overflow bucket always count as
// bad — its lower bound, ~12 days, exceeds any realistic SLO).
func (w *Window) BadFraction(name string, span time.Duration, limit float64) (frac float64, n int64, ok bool) {
	if w == nil {
		return 0, 0, false
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	i := w.histIdx(name)
	if i < 0 {
		return 0, 0, false
	}
	delta, total, ok := w.histDelta(i, span)
	if !ok || total <= 0 {
		return 0, total, false
	}
	var bad float64
	for b, cnt := range delta {
		if cnt == 0 {
			continue
		}
		lo := 0.0
		if b > 0 {
			lo = mm.BucketBound(b - 1)
		}
		hi := mm.BucketBound(b)
		switch {
		case lo >= limit:
			bad += float64(cnt) // entire bucket above the limit
		case hi > limit && b < mm.NumBuckets-1:
			// Boundary bucket: distribute observations uniformly.
			bad += float64(cnt) * (hi - limit) / (hi - lo)
		case b == mm.NumBuckets-1:
			bad += float64(cnt)
		}
	}
	return bad / float64(total), total, true
}

// Point is one sampled value in a counter's series.
type Point struct {
	UnixMS int64   `json:"t_unix_ms"`
	Value  float64 `json:"v"`
}

// Series returns up to max (≤ 0 means all) of counter name's sampled
// values, oldest first.
func (w *Window) Series(name string, max int) []Point {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	i := w.counterIdx(name)
	if i < 0 {
		return nil
	}
	n := w.count
	if max > 0 && n > max {
		n = max
	}
	out := make([]Point, 0, n)
	for j := n - 1; j >= 0; j-- {
		r := w.rowAt(j)
		if i >= len(r.vals) {
			continue
		}
		out = append(out, Point{UnixMS: r.at.UnixMilli(), Value: r.vals[i]})
	}
	return out
}

// BurnRule is a multi-window latency-SLO alerting rule. The objective
// "fraction Objective of observations complete under Limit seconds"
// defines an error budget of (1 − Objective); the burn rate of a window
// is its observed bad fraction divided by that budget (burn 1.0 = exactly
// spending the budget). The rule fires only when BOTH the short and the
// long window burn at ≥ Factor — the short window proves the problem is
// happening now (a stale tail can't trip it), the long window proves it
// is sustained (a single slow sample can't trip it). This replaces the
// earlier single-sample watermark gate on -match-slo.
type BurnRule struct {
	Hist      string        // registered histogram name
	Limit     float64       // SLO latency bound, seconds
	Objective float64       // e.g. 0.99: target fraction under Limit
	Short     time.Duration // fast window, e.g. 10s
	Long      time.Duration // sustain window, e.g. 60s
	Factor    float64       // burn-rate trigger threshold; 0 means 1.0
}

// BurnStatus reports one evaluation of a BurnRule.
type BurnStatus struct {
	Breached   bool    `json:"breached"`
	ShortBurn  float64 `json:"short_burn"`
	LongBurn   float64 `json:"long_burn"`
	ShortCount int64   `json:"short_count"`
	LongCount  int64   `json:"long_count"`
}

// Burn evaluates rule against the window's current history.
func (w *Window) Burn(rule BurnRule) BurnStatus {
	var st BurnStatus
	if w == nil || rule.Limit <= 0 {
		return st
	}
	budget := 1 - rule.Objective
	if budget <= 0 {
		return st
	}
	factor := rule.Factor
	if factor <= 0 {
		factor = 1
	}
	sf, sn, sok := w.BadFraction(rule.Hist, rule.Short, rule.Limit)
	lf, ln, lok := w.BadFraction(rule.Hist, rule.Long, rule.Limit)
	st.ShortCount, st.LongCount = sn, ln
	if sok {
		st.ShortBurn = sf / budget
	}
	if lok {
		st.LongBurn = lf / budget
	}
	st.Breached = sok && lok && sn > 0 &&
		st.ShortBurn >= factor && st.LongBurn >= factor
	return st
}

// CounterWindow is one counter's /tsz projection.
type CounterWindow struct {
	Name  string             `json:"name"`
	Value float64            `json:"value"`
	Rates map[string]float64 `json:"rates_per_second"`
	Serie []Point            `json:"series,omitempty"`
}

// HistSpan is one histogram's stats over one span.
type HistSpan struct {
	Span  string  `json:"span"`
	Count int64   `json:"count"`
	P50   float64 `json:"p50_seconds"`
	P99   float64 `json:"p99_seconds"`
}

// HistWindow is one histogram's /tsz projection.
type HistWindow struct {
	Name    string     `json:"name"`
	Windows []HistSpan `json:"windows"`
}

// WindowSnapshot is the full /tsz payload.
type WindowSnapshot struct {
	Enabled         bool            `json:"enabled"`
	IntervalSeconds float64         `json:"interval_seconds,omitempty"`
	Samples         int             `json:"samples"`
	Counters        []CounterWindow `json:"counters,omitempty"`
	Histograms      []HistWindow    `json:"histograms,omitempty"`
}

// StandardSpans are the windows every rate/quantile is reported over.
var StandardSpans = []time.Duration{time.Second, 10 * time.Second, 60 * time.Second}

// Snapshot projects the whole window for /tsz and the flight recorder:
// every counter with its standard-span rates and (up to seriesMax points
// of) raw series, every histogram with windowed p50/p99.
func (w *Window) Snapshot(seriesMax int) WindowSnapshot {
	if w == nil {
		return WindowSnapshot{}
	}
	w.mu.Lock()
	names := make([]string, len(w.counters))
	for i, c := range w.counters {
		names[i] = c.name
	}
	hnames := make([]string, len(w.hists))
	for i, h := range w.hists {
		hnames[i] = h.name
	}
	samples := w.count
	var interval float64
	if w.count >= 2 {
		interval = w.rowAt(0).at.Sub(w.rowAt(1).at).Seconds()
	}
	w.mu.Unlock()

	snap := WindowSnapshot{Enabled: true, Samples: samples, IntervalSeconds: interval}
	sort.Strings(names)
	sort.Strings(hnames)
	for _, name := range names {
		cw := CounterWindow{Name: name, Rates: make(map[string]float64, len(StandardSpans))}
		if pts := w.Series(name, seriesMax); len(pts) > 0 {
			cw.Value = pts[len(pts)-1].Value
			cw.Serie = pts
		}
		for _, span := range StandardSpans {
			if r, ok := w.Rate(name, span); ok {
				cw.Rates[span.String()] = r
			}
		}
		snap.Counters = append(snap.Counters, cw)
	}
	for _, name := range hnames {
		hw := HistWindow{Name: name}
		for _, span := range StandardSpans {
			hs := HistSpan{Span: span.String()}
			if p50, n, ok := w.Quantile(name, span, 0.50); ok {
				hs.P50, hs.Count = p50, n
			}
			if p99, _, ok := w.Quantile(name, span, 0.99); ok {
				hs.P99 = p99
			}
			hw.Windows = append(hw.Windows, hs)
		}
		snap.Histograms = append(snap.Histograms, hw)
	}
	return snap
}
