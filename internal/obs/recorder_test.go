package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	mm "mmprofile/internal/metrics"
	"mmprofile/internal/trace"
)

// readBundle decodes a bundle file, failing the test on invalid JSON.
func readBundle(t *testing.T, path string) map[string]any {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var b map[string]any
	if err := json.Unmarshal(data, &b); err != nil {
		t.Fatalf("bundle is not valid JSON: %v", err)
	}
	return b
}

func fullRecorder(t *testing.T) (*Recorder, *EventRing) {
	t.Helper()
	reg := mm.NewRegistry()
	reg.Counter("mm_test_total", "test").Inc()
	tr := trace.New(trace.Options{SampleRate: 1, Capacity: 4})
	sp := tr.Root("req", trace.Remote{})
	sp.End()
	h := NewHealth()
	h.RegisterCheck("store_wal", func() error { return nil })
	ring := NewEventRing(16)
	ring.Push(Event{TimeUnixNano: 1, Level: "INFO", Msg: "boot"})
	rec := NewRecorder(t.TempDir(), ring, BundleSources{
		Metrics: reg,
		Tracer:  tr,
		Health:  h,
		WALInfo: func() (any, error) {
			return map[string]any{"generation": 3, "committed": 4096}, nil
		},
	})
	return rec, ring
}

// TestDumpBundleSections is the crash-path coverage satellite: the bundle
// must contain all five required sections — goroutines, metrics, traces,
// store, events — and be valid JSON.
func TestDumpBundleSections(t *testing.T) {
	rec, _ := fullRecorder(t)
	path, err := rec.Dump("test")
	if err != nil {
		t.Fatal(err)
	}
	b := readBundle(t, path)
	for _, section := range []string{"goroutines", "metrics", "traces", "store", "events"} {
		if _, ok := b[section]; !ok {
			t.Errorf("bundle missing section %q", section)
		}
	}
	if !strings.Contains(b["goroutines"].(string), "goroutine") {
		t.Error("goroutines section does not look like a stack dump")
	}
	if b["reason"] != "test" {
		t.Errorf("reason = %v", b["reason"])
	}
	metricsSec := b["metrics"].(map[string]any)
	if metricsSec["mm_test_total"] == nil {
		t.Errorf("metrics section missing registered counter: %v", metricsSec)
	}
	traces := b["traces"].(map[string]any)
	if n := len(traces["recent"].([]any)); n != 1 {
		t.Errorf("traces.recent has %d entries, want 1", n)
	}
	store := b["store"].(map[string]any)
	if store["generation"] != float64(3) {
		t.Errorf("store section = %v", store)
	}
	events := b["events"].([]any)
	if len(events) != 1 || events[0].(map[string]any)["msg"] != "boot" {
		t.Errorf("events section = %v", events)
	}
	if b["health"].(map[string]any)["status"] != "ready" {
		t.Errorf("health section = %v", b["health"])
	}
	if b["time_unix_nano"] == nil || b["pid"] == nil || b["go_version"] == nil {
		t.Error("bundle missing envelope fields")
	}
	// Atomicity: no temp files left behind.
	entries, _ := os.ReadDir(rec.Dir())
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("temp file left behind: %s", e.Name())
		}
	}
}

func TestDumpWithoutSourcesStillComplete(t *testing.T) {
	rec := NewRecorder(t.TempDir(), nil, BundleSources{})
	path, err := rec.Dump("bare")
	if err != nil {
		t.Fatal(err)
	}
	b := readBundle(t, path)
	for _, section := range []string{"goroutines", "metrics", "traces", "store", "events"} {
		if _, ok := b[section]; !ok {
			t.Errorf("bare bundle missing section %q", section)
		}
	}
	if en := b["metrics"].(map[string]any)["enabled"]; en != false {
		t.Errorf("unwired metrics section = %v", b["metrics"])
	}
	if b["events"] == nil {
		t.Error("events section must be [] not null")
	}
}

func TestDumpCooldown(t *testing.T) {
	rec, _ := fullRecorder(t)
	p1, skipped, err := rec.DumpCooldown("match_slo", time.Hour)
	if err != nil || skipped || p1 == "" {
		t.Fatalf("first dump: path=%q skipped=%v err=%v", p1, skipped, err)
	}
	p2, skipped, err := rec.DumpCooldown("match_slo", time.Hour)
	if err != nil || !skipped || p2 != "" {
		t.Fatalf("second dump within cooldown: path=%q skipped=%v err=%v", p2, skipped, err)
	}
	// Different reasons have independent cooldowns.
	p3, skipped, err := rec.DumpCooldown("sigquit", time.Hour)
	if err != nil || skipped || p3 == "" {
		t.Fatalf("other-reason dump: path=%q skipped=%v err=%v", p3, skipped, err)
	}
	// Zero cooldown never skips.
	p4, skipped, err := rec.DumpCooldown("match_slo", 0)
	if err != nil || skipped || p4 == "" {
		t.Fatalf("zero-cooldown dump: path=%q skipped=%v err=%v", p4, skipped, err)
	}
}

func TestRecoverRepanicWritesBundleAndPreservesValue(t *testing.T) {
	rec, ring := fullRecorder(t)
	func() {
		defer func() {
			v := recover()
			if v != "boom" {
				t.Errorf("re-panic value = %v, want boom", v)
			}
		}()
		defer rec.RecoverRepanic()
		panic("boom")
	}()
	entries, err := os.ReadDir(rec.Dir())
	if err != nil {
		t.Fatal(err)
	}
	var bundlePath string
	for _, e := range entries {
		if strings.Contains(e.Name(), "panic") && strings.HasSuffix(e.Name(), ".json") {
			bundlePath = filepath.Join(rec.Dir(), e.Name())
		}
	}
	if bundlePath == "" {
		t.Fatalf("no panic bundle in %v", entries)
	}
	b := readBundle(t, bundlePath)
	if b["reason"] != "panic" {
		t.Errorf("reason = %v", b["reason"])
	}
	// The panic value itself must be the final ring event.
	evs := ring.Snapshot()
	last := evs[len(evs)-1]
	if last.Msg != "panic" || last.Attrs["value"] != "boom" {
		t.Errorf("last ring event = %+v", last)
	}
}

func TestRecoverRepanicNoPanicIsNoOp(t *testing.T) {
	rec, _ := fullRecorder(t)
	func() {
		defer rec.RecoverRepanic()
	}()
	entries, _ := os.ReadDir(rec.Dir())
	if len(entries) != 0 {
		t.Errorf("bundle written without a panic: %v", entries)
	}
	var nilRec *Recorder
	func() {
		defer nilRec.RecoverRepanic() // must not panic on its own
	}()
}

func TestNilRecorder(t *testing.T) {
	var r *Recorder
	if _, err := r.Dump("x"); err == nil {
		t.Error("nil recorder Dump succeeded")
	}
	if _, _, err := r.DumpCooldown("x", time.Second); err == nil {
		t.Error("nil recorder DumpCooldown succeeded")
	}
	if r.Dir() != "" {
		t.Error("nil recorder Dir != \"\"")
	}
}

func TestSanitizeReason(t *testing.T) {
	if got := sanitizeReason("p99 over SLO!"); got != "p99_over_SLO_" {
		t.Errorf("sanitizeReason = %q", got)
	}
	if got := sanitizeReason(""); got != "manual" {
		t.Errorf("sanitizeReason(\"\") = %q", got)
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := NewEventRing(3)
	for i := 0; i < 5; i++ {
		r.Push(Event{TimeUnixNano: int64(i)})
	}
	evs := r.Snapshot()
	if len(evs) != 3 {
		t.Fatalf("len = %d, want 3", len(evs))
	}
	for i, e := range evs {
		if e.TimeUnixNano != int64(i+2) {
			t.Errorf("evs[%d] = %d, want %d (oldest-first)", i, e.TimeUnixNano, i+2)
		}
	}
	if r.Total() != 5 {
		t.Errorf("Total = %d, want 5", r.Total())
	}
	var nilRing *EventRing
	nilRing.Push(Event{})
	if nilRing.Snapshot() != nil || nilRing.Total() != 0 {
		t.Error("nil ring not a no-op")
	}
}
