package obs

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	mm "mmprofile/internal/metrics"
	"mmprofile/internal/topk"
	"mmprofile/internal/trace"
)

// BundleSources names what a diagnostic bundle snapshots. Every field is
// optional; missing sources appear in the bundle as explicitly disabled
// rather than silently absent, so a reader can tell "not wired" from
// "empty". WALInfo is a closure (not a *store.Store) to keep obs free of
// a store dependency.
type BundleSources struct {
	Metrics *mm.Registry
	Tracer  *trace.Tracer
	Health  *Health
	// WALInfo returns the store's journal summary (store.WALInfo); it
	// may be slow (it reads the WAL file), which is acceptable at dump
	// frequency.
	WALInfo func() (any, error)
	// Runtime, when non-nil, supplies the latest sampler reading so the
	// bundle matches the gauges; otherwise the recorder samples fresh.
	Runtime func() RuntimeStats
	// Top, when non-nil, contributes the hot-key attribution sketches
	// (who was hot at crash time is usually the first triage question).
	Top *topk.Registry
	// Window, when non-nil, contributes the windowed time-series ring so
	// a bundle carries the last minute of rates, not just point totals.
	Window *Window
}

// Recorder is the flight recorder: it holds the event ring and, on
// trigger, writes a self-contained diagnostic bundle to dir. Triggers in
// this codebase: panic (RecoverRepanic), SIGQUIT, the p99-over-SLO match
// watermark, and POST /debugz/dump. A nil *Recorder no-ops every method.
type Recorder struct {
	dir  string
	ring *EventRing
	src  BundleSources

	mu   sync.Mutex
	last map[string]time.Time // reason → last dump, for cooldowns
}

// NewRecorder builds a recorder writing bundles under dir (created on
// first dump).
func NewRecorder(dir string, ring *EventRing, src BundleSources) *Recorder {
	return &Recorder{dir: dir, ring: ring, src: src, last: make(map[string]time.Time)}
}

// Dir returns the bundle directory.
func (r *Recorder) Dir() string {
	if r == nil {
		return ""
	}
	return r.dir
}

// bundle is the on-disk document. The required sections — goroutines,
// metrics, traces, store, events, top, window — are always present
// (possibly as disabled/error placeholders) so bundle readers and the CI
// jq validation can rely on the shape.
type bundle struct {
	Reason       string         `json:"reason"`
	TimeUnixNano int64          `json:"time_unix_nano"`
	Time         string         `json:"time"`
	PID          int            `json:"pid"`
	GoVersion    string         `json:"go_version"`
	Runtime      RuntimeStats   `json:"runtime"`
	Health       HealthSnapshot `json:"health"`
	Goroutines   string         `json:"goroutines"`
	Metrics      any            `json:"metrics"`
	Traces       any            `json:"traces"`
	Store        any            `json:"store"`
	Top          any            `json:"top"`
	Window       any            `json:"window"`
	Events       []Event        `json:"events"`
}

// Dump writes a diagnostic bundle for reason and returns its path. The
// write is atomic (temp file + fsync + rename + directory fsync) so a
// crash mid-dump never leaves a half bundle under the final name.
func (r *Recorder) Dump(reason string) (string, error) {
	if r == nil {
		return "", fmt.Errorf("obs: no recorder configured")
	}
	now := time.Now()
	b := bundle{
		Reason:       reason,
		TimeUnixNano: now.UnixNano(),
		Time:         now.UTC().Format(time.RFC3339Nano),
		PID:          os.Getpid(),
		GoVersion:    runtime.Version(),
		Goroutines:   goroutineDump(),
		Health:       r.src.Health.Snapshot(),
		Events:       r.ring.Snapshot(),
	}
	if b.Events == nil {
		b.Events = []Event{}
	}
	if r.src.Runtime != nil {
		b.Runtime = r.src.Runtime()
	} else {
		b.Runtime = ReadRuntimeStats()
	}
	if r.src.Metrics != nil {
		b.Metrics = r.src.Metrics.Snapshot()
	} else {
		b.Metrics = map[string]any{"enabled": false}
	}
	if r.src.Tracer != nil {
		b.Traces = r.src.Tracer.Snapshot()
	} else {
		b.Traces = map[string]any{"enabled": false}
	}
	if r.src.WALInfo != nil {
		if info, err := r.src.WALInfo(); err != nil {
			b.Store = map[string]any{"error": err.Error()}
		} else {
			b.Store = info
		}
	} else {
		b.Store = map[string]any{"enabled": false}
	}
	if r.src.Top != nil {
		b.Top = map[string]any{"enabled": true, "dimensions": r.src.Top.Snapshot(10)}
	} else {
		b.Top = map[string]any{"enabled": false}
	}
	if r.src.Window != nil {
		b.Window = r.src.Window.Snapshot(60)
	} else {
		b.Window = map[string]any{"enabled": false}
	}

	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return "", fmt.Errorf("obs: encode bundle: %w", err)
	}
	if err := os.MkdirAll(r.dir, 0o755); err != nil {
		return "", fmt.Errorf("obs: create dump dir: %w", err)
	}
	name := fmt.Sprintf("flight-%s-%s.json", now.UTC().Format("20060102T150405.000000000Z"), sanitizeReason(reason))
	final := filepath.Join(r.dir, name)
	tmp := final + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return "", fmt.Errorf("obs: create bundle: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", fmt.Errorf("obs: write bundle: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return "", fmt.Errorf("obs: sync bundle: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("obs: close bundle: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("obs: publish bundle: %w", err)
	}
	if d, err := os.Open(r.dir); err == nil {
		d.Sync()
		d.Close()
	}
	r.mu.Lock()
	r.last[reason] = now
	r.mu.Unlock()
	return final, nil
}

// DumpCooldown dumps unless a bundle for the same reason was written
// within cooldown; skipped=true means the trigger fired but was
// rate-limited (the watermark trigger fires every sampler tick while p99
// stays over SLO — one bundle a minute is evidence, sixty are a disk
// filler).
func (r *Recorder) DumpCooldown(reason string, cooldown time.Duration) (path string, skipped bool, err error) {
	if r == nil {
		return "", false, fmt.Errorf("obs: no recorder configured")
	}
	r.mu.Lock()
	if t, ok := r.last[reason]; ok && time.Since(t) < cooldown {
		r.mu.Unlock()
		return "", true, nil
	}
	// Reserve the slot before the (slow) dump so concurrent triggers
	// for the same reason collapse to one bundle.
	r.last[reason] = time.Now()
	r.mu.Unlock()
	path, err = r.Dump(reason)
	return path, false, err
}

// RecoverRepanic is deferred at the top of request handlers and main:
// on panic it writes a "panic" bundle (with the panic value as a final
// ring event) and then re-panics with the original value so crash
// semantics — stack trace, non-zero exit — are preserved. Nil recorders
// and non-panic exits cost one recover() call.
func (r *Recorder) RecoverRepanic() {
	v := recover()
	if v == nil {
		return
	}
	if r != nil {
		r.ring.Push(Event{
			TimeUnixNano: time.Now().UnixNano(),
			Level:        LevelError.String(),
			Msg:          "panic",
			Attrs:        map[string]any{"value": fmt.Sprint(v)},
		})
		if path, err := r.Dump("panic"); err == nil {
			fmt.Fprintf(os.Stderr, "obs: panic bundle written to %s\n", path)
		}
	}
	panic(v)
}

func goroutineDump() string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return string(buf[:n])
		}
		if len(buf) >= 64<<20 {
			return string(buf[:n])
		}
		buf = make([]byte, len(buf)*2)
	}
}

func sanitizeReason(reason string) string {
	if reason == "" {
		return "manual"
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		}
		return '_'
	}, reason)
}
