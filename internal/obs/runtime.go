package obs

import (
	"runtime/metrics"
	"sync"
	"time"

	mm "mmprofile/internal/metrics"
)

// The runtime/metrics samples the sampler projects. Names are looked up
// defensively (KindBad on older/newer runtimes just zeroes the stat) so
// the sampler never panics across Go versions.
const (
	smGoroutines  = "/sched/goroutines:goroutines"
	smHeapLive    = "/gc/heap/live:bytes"
	smHeapGoal    = "/gc/heap/goal:bytes"
	smTotalMemory = "/memory/classes/total:bytes"
	smGCCycles    = "/gc/cycles/total:gc-cycles"
	smGCPauses    = "/gc/pauses:seconds"
	smSchedLat    = "/sched/latencies:seconds"
)

// RuntimeStats is one projection of the Go runtime's own telemetry: the
// numbers you want in front of you when the broker is slow and the
// question is "is it us or the runtime".
type RuntimeStats struct {
	Goroutines        int64   `json:"goroutines"`
	HeapLiveBytes     uint64  `json:"heap_live_bytes"`
	HeapGoalBytes     uint64  `json:"heap_goal_bytes"`
	TotalMemoryBytes  uint64  `json:"total_memory_bytes"`
	GCCycles          uint64  `json:"gc_cycles"`
	GCPauseP50Seconds float64 `json:"gc_pause_p50_seconds"`
	GCPauseP99Seconds float64 `json:"gc_pause_p99_seconds"`
	SchedLatP99Secs   float64 `json:"sched_latency_p99_seconds"`
}

// ReadRuntimeStats samples runtime/metrics once.
func ReadRuntimeStats() RuntimeStats {
	samples := []metrics.Sample{
		{Name: smGoroutines},
		{Name: smHeapLive},
		{Name: smHeapGoal},
		{Name: smTotalMemory},
		{Name: smGCCycles},
		{Name: smGCPauses},
		{Name: smSchedLat},
	}
	metrics.Read(samples)
	var rs RuntimeStats
	for _, s := range samples {
		switch s.Name {
		case smGoroutines:
			rs.Goroutines = int64(sampleUint64(s))
		case smHeapLive:
			rs.HeapLiveBytes = sampleUint64(s)
		case smHeapGoal:
			rs.HeapGoalBytes = sampleUint64(s)
		case smTotalMemory:
			rs.TotalMemoryBytes = sampleUint64(s)
		case smGCCycles:
			rs.GCCycles = sampleUint64(s)
		case smGCPauses:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				h := s.Value.Float64Histogram()
				rs.GCPauseP50Seconds = histQuantile(h, 0.50)
				rs.GCPauseP99Seconds = histQuantile(h, 0.99)
			}
		case smSchedLat:
			if s.Value.Kind() == metrics.KindFloat64Histogram {
				rs.SchedLatP99Secs = histQuantile(s.Value.Float64Histogram(), 0.99)
			}
		}
	}
	return rs
}

func sampleUint64(s metrics.Sample) uint64 {
	if s.Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return s.Value.Uint64()
}

// histQuantile interpolates quantile q from a cumulative-count
// runtime/metrics histogram. Buckets are [Buckets[i], Buckets[i+1]) with
// Counts[i] observations; -Inf/+Inf bounds clamp to the adjacent finite
// edge.
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if float64(seen) >= target && c > 0 {
			lo, hi := h.Buckets[i], h.Buckets[i+1]
			if lo < 0 || lo != lo { // -Inf underflow bucket
				lo = hi
			}
			if hi != hi || hi > 1e300 { // +Inf overflow bucket
				hi = lo
			}
			return (lo + hi) / 2
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// RuntimeSampler periodically projects ReadRuntimeStats into an
// internal/metrics registry as mm_runtime_* gauges and runs an optional
// per-tick hook (mmserver hangs the p99-over-SLO flight-recorder
// watermark off it).
type RuntimeSampler struct {
	onTick func(RuntimeStats)
	stop   chan struct{}
	done   chan struct{}
	once   sync.Once

	mu   sync.Mutex
	last RuntimeStats

	gGoroutines *mm.Gauge
	gHeapLive   *mm.Gauge
	gHeapGoal   *mm.Gauge
	gTotalMem   *mm.Gauge
	gGCCycles   *mm.Gauge
	gGCPauseP99 *mm.Gauge
	gSchedP99   *mm.Gauge
}

// StartRuntimeSampler registers the mm_runtime_* gauges on reg (nil is
// fine — gauges become no-ops), takes an immediate sample so the gauges
// are live before the first tick, then samples every interval (default
// 5s) until Stop. onTick (optional) runs after each sample with the
// fresh stats.
func StartRuntimeSampler(reg *mm.Registry, interval time.Duration, onTick func(RuntimeStats)) *RuntimeSampler {
	if interval <= 0 {
		interval = 5 * time.Second
	}
	s := &RuntimeSampler{
		onTick: onTick,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	if reg != nil {
		s.gGoroutines = reg.Gauge("mm_runtime_goroutines", "Live goroutine count.")
		s.gHeapLive = reg.Gauge("mm_runtime_heap_live_bytes", "Heap memory occupied by live objects at last GC.")
		s.gHeapGoal = reg.Gauge("mm_runtime_heap_goal_bytes", "Heap size target for the end of the current GC cycle.")
		s.gTotalMem = reg.Gauge("mm_runtime_total_memory_bytes", "All memory mapped by the Go runtime.")
		s.gGCCycles = reg.Gauge("mm_runtime_gc_cycles", "Completed GC cycles.")
		s.gGCPauseP99 = reg.Gauge("mm_runtime_gc_pause_p99_seconds", "p99 stop-the-world GC pause.")
		s.gSchedP99 = reg.Gauge("mm_runtime_sched_latency_p99_seconds", "p99 goroutine scheduling latency.")
	}
	s.SampleNow()
	go s.loop(interval)
	return s
}

func (s *RuntimeSampler) loop(interval time.Duration) {
	defer close(s.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.SampleNow()
		}
	}
}

// SampleNow takes one sample synchronously (also the per-tick body);
// exported so tests and dump paths can refresh without waiting.
func (s *RuntimeSampler) SampleNow() RuntimeStats {
	rs := ReadRuntimeStats()
	s.gGoroutines.Set(float64(rs.Goroutines))
	s.gHeapLive.Set(float64(rs.HeapLiveBytes))
	s.gHeapGoal.Set(float64(rs.HeapGoalBytes))
	s.gTotalMem.Set(float64(rs.TotalMemoryBytes))
	s.gGCCycles.Set(float64(rs.GCCycles))
	s.gGCPauseP99.Set(rs.GCPauseP99Seconds)
	s.gSchedP99.Set(rs.SchedLatP99Secs)
	s.mu.Lock()
	s.last = rs
	s.mu.Unlock()
	if s.onTick != nil {
		s.onTick(rs)
	}
	return rs
}

// Last returns the most recent sample.
func (s *RuntimeSampler) Last() RuntimeStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// Stop halts the sampler and waits for the loop to exit.
func (s *RuntimeSampler) Stop() {
	s.once.Do(func() { close(s.stop) })
	<-s.done
}
