package obs

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Status is a component readiness state. The overall server state is the
// worst component state, with draining overriding everything: a draining
// server is deliberately refusing new work even though its components may
// all be healthy.
type Status int

const (
	// Ready: the component is serving normally.
	StatusReady Status = iota
	// Degraded: serving, but with reduced guarantees (e.g. a stale
	// heartbeat, or the store fell back to read-only). /readyz still
	// returns 200 so load balancers keep routing, but the reason is
	// surfaced.
	StatusDegraded
	// NotReady: the component cannot serve; /readyz returns 503.
	StatusNotReady
)

func (s Status) String() string {
	switch s {
	case StatusReady:
		return "ready"
	case StatusDegraded:
		return "degraded"
	case StatusNotReady:
		return "not_ready"
	}
	return "unknown"
}

// degradedError marks a check failure as degraded-not-dead; see Degraded.
type degradedError struct{ msg string }

func (e *degradedError) Error() string { return e.msg }

// Degraded wraps a reason so a health check can report "serving with
// reduced guarantees" instead of hard not-ready. Checks returning an
// error produced by Degraded map to the Degraded status; any other
// non-nil error maps to NotReady.
func Degraded(reason string) error { return &degradedError{msg: reason} }

// IsDegraded reports whether err was produced by Degraded.
func IsDegraded(err error) bool {
	var de *degradedError
	return errors.As(err, &de)
}

// component is one tracked readiness unit, in exactly one of three
// modes: pull (check func), push (explicit Set), or heartbeat (Beat
// within maxBeatAge).
type component struct {
	check      func() error
	maxBeatAge time.Duration
	lastBeat   time.Time
	status     Status
	reason     string
}

// Health tracks per-component readiness and the server-wide drain flag
// that mmserver flips before it stops accepting work. A nil *Health
// snapshot reports ready with no components, so the /readyz handler
// works unconfigured. Safe for concurrent use.
type Health struct {
	mu       sync.Mutex
	order    []string // registration order, for stable snapshots
	comps    map[string]*component
	draining atomic.Bool
	now      func() time.Time // test hook; defaults to time.Now
}

// NewHealth builds an empty health model.
func NewHealth() *Health {
	return &Health{comps: make(map[string]*component), now: time.Now}
}

func (h *Health) comp(name string) *component {
	c, ok := h.comps[name]
	if !ok {
		c = &component{}
		h.comps[name] = c
		h.order = append(h.order, name)
	}
	return c
}

// RegisterCheck adds a pull component: check runs at snapshot time; nil →
// ready, Degraded(...) → degraded, other error → not_ready. Checks must
// be cheap and non-blocking — /readyz is polled.
func (h *Health) RegisterCheck(name string, check func() error) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	c := h.comp(name)
	*c = component{check: check}
}

// RegisterHeartbeat adds a push-liveness component: some background
// goroutine must call Beat(name) at least every maxBeatAge or the
// component reports degraded with a staleness reason. This keeps /readyz
// responsive even when the monitored loop is wedged on a lock — the
// handler never touches the loop itself, it only looks at the clock.
func (h *Health) RegisterHeartbeat(name string, maxBeatAge time.Duration) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	c := h.comp(name)
	*c = component{maxBeatAge: maxBeatAge, lastBeat: h.now()}
}

// Beat records a liveness proof for a heartbeat component.
func (h *Health) Beat(name string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if c, ok := h.comps[name]; ok {
		c.lastBeat = h.now()
	}
}

// Set records the state of a push component (also usable to override a
// previously registered one, e.g. "server" flipping starting → ready).
func (h *Health) Set(name string, status Status, reason string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	c := h.comp(name)
	*c = component{status: status, reason: reason}
}

// StartDrain flips the server-wide draining flag. Graceful shutdown
// calls this BEFORE closing listeners or flushing state, so load
// balancers watching /readyz stop routing new work while in-flight
// requests finish.
func (h *Health) StartDrain() {
	if h == nil {
		return
	}
	h.draining.Store(true)
}

// Draining reports whether StartDrain has been called.
func (h *Health) Draining() bool { return h != nil && h.draining.Load() }

// ComponentHealth is one component's state in a snapshot.
type ComponentHealth struct {
	Status        string `json:"status"`
	Reason        string `json:"reason,omitempty"`
	LastBeatAgoMS int64  `json:"last_beat_ago_ms,omitempty"`
}

// HealthSnapshot is the /readyz JSON document.
type HealthSnapshot struct {
	Status     string                     `json:"status"` // ready | degraded | not_ready | draining
	Draining   bool                       `json:"draining"`
	Components map[string]ComponentHealth `json:"components,omitempty"`
}

// Ready reports whether the snapshot should answer 200: serving states
// (ready, degraded) do; refusing states (not_ready, draining) do not.
func (s HealthSnapshot) Ready() bool {
	return s.Status == "ready" || s.Status == "degraded"
}

// Snapshot evaluates every component and rolls them up. Precedence for
// the overall status: draining > not_ready > degraded > ready.
func (h *Health) Snapshot() HealthSnapshot {
	if h == nil {
		return HealthSnapshot{Status: StatusReady.String()}
	}
	h.mu.Lock()
	now := h.now()
	type evaluated struct {
		name string
		c    component // copied state
	}
	evs := make([]evaluated, 0, len(h.order))
	for _, name := range h.order {
		evs = append(evs, evaluated{name: name, c: *h.comps[name]})
	}
	h.mu.Unlock()

	snap := HealthSnapshot{Draining: h.draining.Load()}
	if len(evs) > 0 {
		snap.Components = make(map[string]ComponentHealth, len(evs))
	}
	worst := StatusReady
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].name < evs[j].name })
	for _, ev := range evs {
		ch := ComponentHealth{Status: ev.c.status.String(), Reason: ev.c.reason}
		switch {
		case ev.c.check != nil:
			// Checks run outside h.mu so a slow check cannot block
			// Beat/Set writers.
			switch err := ev.c.check(); {
			case err == nil:
				ch = ComponentHealth{Status: StatusReady.String()}
			case IsDegraded(err):
				ch = ComponentHealth{Status: StatusDegraded.String(), Reason: err.Error()}
			default:
				ch = ComponentHealth{Status: StatusNotReady.String(), Reason: err.Error()}
			}
		case ev.c.maxBeatAge > 0:
			age := now.Sub(ev.c.lastBeat)
			ch = ComponentHealth{Status: StatusReady.String(), LastBeatAgoMS: age.Milliseconds()}
			if age > ev.c.maxBeatAge {
				ch.Status = StatusDegraded.String()
				ch.Reason = "heartbeat stale: last beat " + age.Truncate(time.Millisecond).String() + " ago (max " + ev.c.maxBeatAge.String() + ")"
			}
		}
		snap.Components[ev.name] = ch
		if s := statusOf(ch.Status); s > worst {
			worst = s
		}
	}
	snap.Status = worst.String()
	if snap.Draining {
		snap.Status = "draining"
	}
	return snap
}

func statusOf(s string) Status {
	switch s {
	case "degraded":
		return StatusDegraded
	case "not_ready":
		return StatusNotReady
	}
	return StatusReady
}
