package obs

import (
	"log/slog"
	"sync"
	"time"
)

// Event is one flight-recorder entry: a structured log record flattened
// into a JSON-friendly shape. Attr values are rendered via
// slog.Value.Resolve().Any(), so LogValuers are resolved at capture time.
type Event struct {
	TimeUnixNano int64          `json:"time_unix_nano"`
	Level        string         `json:"level"`
	Msg          string         `json:"msg"`
	Attrs        map[string]any `json:"attrs,omitempty"`
}

// DefaultRingCapacity is the event-ring size when NewEventRing is given a
// non-positive capacity: enough to cover the seconds before a crash
// without holding a meaningful share of heap.
const DefaultRingCapacity = 512

// EventRing is a bounded ring of recent Events — the flight recorder's
// memory. Writers overwrite the oldest entry once full; Snapshot returns
// oldest-first. A nil *EventRing is a no-op sink. Safe for concurrent
// use.
type EventRing struct {
	mu    sync.Mutex
	buf   []Event
	pos   int    // next write slot
	total uint64 // lifetime pushes, for drop accounting
}

// NewEventRing builds a ring holding up to capacity events
// (DefaultRingCapacity when capacity <= 0).
func NewEventRing(capacity int) *EventRing {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &EventRing{buf: make([]Event, 0, capacity)}
}

// Push appends an event, evicting the oldest when full.
func (r *EventRing) Push(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.pos] = e
		r.pos = (r.pos + 1) % len(r.buf)
	}
	r.total++
	r.mu.Unlock()
}

// Snapshot returns the buffered events oldest-first.
func (r *EventRing) Snapshot() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.pos:]...)
	out = append(out, r.buf[:r.pos]...)
	return out
}

// Total returns the lifetime number of pushed events; Total() minus
// len(Snapshot()) is how many the ring has already forgotten.
func (r *EventRing) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

func eventFrom(now time.Time, level slog.Level, msg string, attrs []slog.Attr) Event {
	e := Event{TimeUnixNano: now.UnixNano(), Level: level.String(), Msg: msg}
	if len(attrs) > 0 {
		e.Attrs = make(map[string]any, len(attrs))
		for _, a := range attrs {
			e.Attrs[a.Key] = a.Value.Resolve().Any()
		}
	}
	return e
}
