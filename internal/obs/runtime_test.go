package obs

import (
	"runtime/metrics"
	"testing"
	"time"

	mm "mmprofile/internal/metrics"
)

func TestReadRuntimeStatsSane(t *testing.T) {
	rs := ReadRuntimeStats()
	if rs.Goroutines < 1 {
		t.Errorf("Goroutines = %d, want >= 1", rs.Goroutines)
	}
	if rs.TotalMemoryBytes == 0 {
		t.Error("TotalMemoryBytes = 0")
	}
	if rs.HeapGoalBytes == 0 {
		t.Error("HeapGoalBytes = 0")
	}
	if rs.GCPauseP99Seconds < 0 || rs.SchedLatP99Secs < 0 {
		t.Errorf("negative quantile: %+v", rs)
	}
}

func TestRuntimeSamplerProjectsGauges(t *testing.T) {
	reg := mm.NewRegistry()
	var ticks int
	s := StartRuntimeSampler(reg, time.Hour, func(RuntimeStats) { ticks++ })
	defer s.Stop()

	// StartRuntimeSampler samples synchronously before returning.
	snap := reg.Snapshot()
	g, ok := snap["mm_runtime_goroutines"].(float64)
	if !ok || g < 1 {
		t.Errorf("mm_runtime_goroutines = %v (%T)", snap["mm_runtime_goroutines"], snap["mm_runtime_goroutines"])
	}
	if v, ok := snap["mm_runtime_total_memory_bytes"].(float64); !ok || v <= 0 {
		t.Errorf("mm_runtime_total_memory_bytes = %v", snap["mm_runtime_total_memory_bytes"])
	}
	if ticks != 1 {
		t.Errorf("onTick ran %d times after start, want 1", ticks)
	}
	rs := s.SampleNow()
	if ticks != 2 {
		t.Errorf("onTick ran %d times after SampleNow, want 2", ticks)
	}
	if got := s.Last(); got != rs {
		t.Errorf("Last() = %+v, want %+v", got, rs)
	}
}

func TestRuntimeSamplerNilRegistry(t *testing.T) {
	s := StartRuntimeSampler(nil, time.Hour, nil)
	s.SampleNow() // must not panic with no gauges
	s.Stop()
	s.Stop() // idempotent
}

func TestHistQuantile(t *testing.T) {
	// 10 observations in [1,2), 90 in [2,3): p50 and p99 land in the
	// second bucket, p05 in the first.
	h := &metrics.Float64Histogram{
		Counts:  []uint64{10, 90},
		Buckets: []float64{1, 2, 3},
	}
	if got := histQuantile(h, 0.05); got != 1.5 {
		t.Errorf("p05 = %v, want 1.5", got)
	}
	if got := histQuantile(h, 0.50); got != 2.5 {
		t.Errorf("p50 = %v, want 2.5", got)
	}
	if got := histQuantile(h, 0.99); got != 2.5 {
		t.Errorf("p99 = %v, want 2.5", got)
	}
	if got := histQuantile(nil, 0.5); got != 0 {
		t.Errorf("nil hist = %v, want 0", got)
	}
	if got := histQuantile(&metrics.Float64Histogram{Counts: []uint64{0}, Buckets: []float64{0, 1}}, 0.5); got != 0 {
		t.Errorf("empty hist = %v, want 0", got)
	}
}
