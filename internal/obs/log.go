// Package obs is the black-box diagnostics substrate of the dissemination
// engine (DESIGN.md §13): structured logging with trace-id correlation,
// runtime health telemetry, a component readiness model, and a flight
// recorder that turns a crashing or overloaded broker into an on-disk
// diagnostic bundle.
//
// It composes the two earlier observability layers rather than replacing
// them: internal/metrics holds the numbers, internal/trace holds the span
// trees, and obs correlates both with the event stream and records the
// moment things go wrong.
//
// # The zero-alloc logging contract
//
// Logging follows the same cost discipline as metrics and tracing: the
// publish hot path may carry Debug-level log statements, but a disabled
// level must cost zero allocations and zero clock reads. Two rules make
// that hold:
//
//   - every method on a nil *Logger is a total no-op, so instrumented code
//     never branches on "is logging configured";
//
//   - hot-path call sites guard attribute construction behind Enabled,
//     which is one atomic load:
//
//     if log.Enabled(obs.LevelDebug) {
//     log.Debug("pubsub: publish", slog.Int64("doc", id), ...)
//     }
//
// The guard matters: a bare variadic call builds its attribute slice at
// the call site before the level check can reject it. Enabled-guarded
// sites are pinned allocation-free by TestPublishUnsampledAddsNoAllocs
// (the PR 5 trace guard, extended here) and TestDisabledLogZeroAllocs.
//
// Events emitted inside a sampled request span carry the span's
// "16hex-16hex" wire context under the "trace_id" key (TraceAttr), so a
// log line, its /tracez span tree, and its histogram exemplar all join on
// the same id.
package obs

import (
	"context"
	"fmt"
	"io"
	"log"
	"log/slog"
	"os"
	"strings"
	"time"

	"mmprofile/internal/trace"
)

// Levels re-exported so call sites need only the obs import for guards.
const (
	LevelDebug = slog.LevelDebug
	LevelInfo  = slog.LevelInfo
	LevelWarn  = slog.LevelWarn
	LevelError = slog.LevelError
)

// LogOptions configures a Logger. The zero value logs text at Info to
// stderr with no flight-recorder tap.
type LogOptions struct {
	// Format selects the output encoding: "text" (default) or "json".
	Format string
	// Output receives the encoded records; default os.Stderr.
	Output io.Writer
	// Level is the minimum level emitted; records below it are dropped
	// before any encoding. Default LevelInfo. Adjustable later via
	// SetLevel.
	Level slog.Level
	// Ring, when non-nil, receives a copy of every emitted record — the
	// flight recorder's event stream. Dropped (disabled-level) records
	// never reach the ring.
	Ring *EventRing
}

// ParseLevel maps the -log-level flag grammar onto slog levels.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (debug|info|warn|error)", s)
}

// Logger is a levelled structured logger: slog handlers underneath, a
// level gate in front, and an optional event-ring tap for the flight
// recorder. A nil *Logger is a fully disabled no-op. Safe for concurrent
// use.
type Logger struct {
	h     slog.Handler
	level *slog.LevelVar
	ring  *EventRing
}

// NewLogger builds a logger; see LogOptions for the zero-value defaults.
func NewLogger(o LogOptions) (*Logger, error) {
	out := o.Output
	if out == nil {
		out = os.Stderr
	}
	lv := new(slog.LevelVar)
	lv.Set(o.Level)
	ho := &slog.HandlerOptions{Level: lv}
	var h slog.Handler
	switch strings.ToLower(o.Format) {
	case "", "text":
		h = slog.NewTextHandler(out, ho)
	case "json":
		h = slog.NewJSONHandler(out, ho)
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (text|json)", o.Format)
	}
	return &Logger{h: h, level: lv, ring: o.Ring}, nil
}

// NewLogfLogger adapts a legacy printf-style sink (wire.NewServer's logf
// parameter) into the structured pipeline: records render as
// "msg key=value ..." through logf, and still reach the ring, so even a
// logf-configured server feeds the flight recorder. A nil logf defaults
// to log.Printf, matching the old wire.NewServer behaviour.
func NewLogfLogger(logf func(string, ...any), ring *EventRing) *Logger {
	if logf == nil {
		logf = log.Printf
	}
	lv := new(slog.LevelVar)
	lv.Set(LevelInfo)
	return &Logger{h: &logfHandler{logf: logf, level: lv}, level: lv, ring: ring}
}

// Enabled reports whether records at the given level would be emitted.
// One nil check and one atomic load: this is the hot-path guard the
// zero-alloc contract is built on.
func (l *Logger) Enabled(level slog.Level) bool {
	return l != nil && level >= l.level.Level()
}

// SetLevel adjusts the minimum emitted level at runtime.
func (l *Logger) SetLevel(level slog.Level) {
	if l == nil {
		return
	}
	l.level.Set(level)
}

// Ring returns the flight-recorder tap (nil when none is attached).
func (l *Logger) Ring() *EventRing {
	if l == nil {
		return nil
	}
	return l.ring
}

// Debug emits a debug record. Hot paths must guard with Enabled first —
// see the package comment.
func (l *Logger) Debug(msg string, attrs ...slog.Attr) { l.log(LevelDebug, msg, attrs) }

// Info emits an informational record.
func (l *Logger) Info(msg string, attrs ...slog.Attr) { l.log(LevelInfo, msg, attrs) }

// Warn emits a warning record.
func (l *Logger) Warn(msg string, attrs ...slog.Attr) { l.log(LevelWarn, msg, attrs) }

// Error emits an error record.
func (l *Logger) Error(msg string, attrs ...slog.Attr) { l.log(LevelError, msg, attrs) }

// Log emits a record at an arbitrary level.
func (l *Logger) Log(level slog.Level, msg string, attrs ...slog.Attr) { l.log(level, msg, attrs) }

func (l *Logger) log(level slog.Level, msg string, attrs []slog.Attr) {
	if !l.Enabled(level) {
		return
	}
	// The clock is read only past the level gate: a disabled call costs
	// no time.Now(), honouring the "no extra clock reads" contract.
	now := time.Now()
	rec := slog.NewRecord(now, level, msg, 0)
	rec.AddAttrs(attrs...)
	_ = l.h.Handle(context.Background(), rec)
	if l.ring != nil {
		l.ring.Push(eventFrom(now, level, msg, attrs))
	}
}

// TraceAttr renders a span's wire context ("16hex-16hex") as the
// "trace_id" attribute, the join key between log events, /tracez span
// trees, and histogram exemplars. A nil or unsampled span yields an empty
// value, which readers treat as "untraced".
func TraceAttr(sp *trace.Span) slog.Attr {
	return slog.String("trace_id", sp.Context())
}

// logfHandler renders records through a printf-style sink, for the legacy
// wire.NewServer logf path.
type logfHandler struct {
	logf   func(string, ...any)
	level  *slog.LevelVar
	prefix []slog.Attr // accumulated WithAttrs
}

func (h *logfHandler) Enabled(_ context.Context, level slog.Level) bool {
	return level >= h.level.Level()
}

func (h *logfHandler) Handle(_ context.Context, rec slog.Record) error {
	var b strings.Builder
	b.WriteString(rec.Message)
	emit := func(a slog.Attr) {
		b.WriteByte(' ')
		b.WriteString(a.Key)
		b.WriteByte('=')
		fmt.Fprintf(&b, "%v", a.Value.Any())
	}
	for _, a := range h.prefix {
		emit(a)
	}
	rec.Attrs(func(a slog.Attr) bool {
		emit(a)
		return true
	})
	h.logf("%s", b.String())
	return nil
}

func (h *logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	n := *h
	n.prefix = append(append([]slog.Attr{}, h.prefix...), attrs...)
	return &n
}

func (h *logfHandler) WithGroup(string) slog.Handler { return h }
