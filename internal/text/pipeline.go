package text

// Pipeline converts raw pages into term lists following the paper's
// Figure 3: remove HTML tags → tokenize plain text → remove non-words →
// remove stop words → stem. Each step can be disabled for experimentation;
// the zero value is not usable, construct with NewPipeline.
type Pipeline struct {
	// StripMarkup controls the HTML-tag-removal stage. Disable when the
	// input is already plain text.
	StripMarkup bool
	// RemoveStopWords controls stop-list removal.
	RemoveStopWords bool
	// StemTerms controls Porter stemming.
	StemTerms bool
}

// NewPipeline returns the full pipeline of Figure 3 with every stage
// enabled.
func NewPipeline() *Pipeline {
	return &Pipeline{StripMarkup: true, RemoveStopWords: true, StemTerms: true}
}

// Terms runs the pipeline over one page and returns its terms in document
// order (duplicates preserved; term frequencies are counted downstream by
// the vector-space layer).
func (p *Pipeline) Terms(page string) []string {
	body := page
	if p.StripMarkup {
		body = StripHTML(page)
	}
	toks := Tokenize(body)
	terms := toks[:0]
	for _, tok := range toks {
		if !IsWord(tok) {
			continue
		}
		if p.RemoveStopWords && IsStopWord(tok) {
			continue
		}
		if p.StemTerms {
			tok = Stem(tok)
		}
		if tok == "" {
			continue
		}
		terms = append(terms, tok)
	}
	return terms
}
