package text

import (
	"strings"
	"unicode"
)

// Tokenize splits plain text into lower-cased word tokens. A token is a
// maximal run of letters; digits and punctuation act as separators, which
// implements the "remove non-words" step of the paper's pipeline. Embedded
// apostrophes are dropped ("user's" tokenizes to "users") so that
// possessives stem together with their noun.
func Tokenize(s string) []string {
	tokens := make([]string, 0, len(s)/6)
	var cur strings.Builder
	flush := func() {
		if cur.Len() > 0 {
			tokens = append(tokens, cur.String())
			cur.Reset()
		}
	}
	for _, r := range s {
		switch {
		case unicode.IsLetter(r):
			cur.WriteRune(unicode.ToLower(r))
		case r == '\'':
			// skip: joins the surrounding letters
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// IsWord reports whether a token passes the non-word filter: between 2 and
// 25 letters. One-letter tokens are markup noise ("a" is a stop word
// anyway) and very long tokens are almost always artifacts such as
// concatenated URLs.
func IsWord(tok string) bool {
	return len(tok) >= 2 && len(tok) <= 25
}
