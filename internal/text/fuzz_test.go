package text

import (
	"strings"
	"testing"
	"unicode"
)

func FuzzStripHTML(f *testing.F) {
	seeds := []string{
		"",
		"plain text",
		"<html><head><title>t</title></head><body>x</body></html>",
		"<script>evil()</script>ok",
		"<!-- comment -->tail",
		"&amp;&lt;&gt;&#65;",
		"<unclosed",
		"a<b>c</b",
		"<ScRiPt>X</sCrIpT>done",
		strings.Repeat("<p>word</p>", 50),
		"&amp",
		"<><><>",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		out := StripHTML(in) // must not panic or hang
		// The output never grows beyond the input plus entity expansion
		// slack (every entity is ≥ its replacement, so no growth at all).
		if len(out) > len(in) {
			t.Fatalf("output grew: %d > %d", len(out), len(in))
		}
		// Tokenizing the output must also be safe.
		for _, tok := range Tokenize(out) {
			for _, r := range tok {
				if !unicode.IsLower(r) && !unicode.IsLetter(r) {
					t.Fatalf("bad token %q", tok)
				}
			}
		}
	})
}

func FuzzStem(f *testing.F) {
	for _, s := range []string{"", "a", "running", "caresses", "sky", "yyyy", "eeee", "lll", "bbbbbbb"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, in string) {
		// The stemmer's contract is lower-case ASCII words; filter the
		// fuzz input down to that domain.
		var b strings.Builder
		for _, r := range in {
			if r >= 'a' && r <= 'z' {
				b.WriteRune(r)
			}
		}
		w := b.String()
		if len(w) > 50 {
			w = w[:50]
		}
		out := Stem(w) // must not panic
		if len(out) > len(w)+1 {
			t.Fatalf("Stem(%q) grew to %q", w, out)
		}
	})
}
