package text

// Stem reduces an English word to its stem using Porter's algorithm
// (M. F. Porter, "An algorithm for suffix stripping", Program 14(3), 1980).
// The input must be a lower-cased word; words shorter than three letters
// are returned unchanged, as in the original definition.
func Stem(word string) string {
	if len(word) < 3 {
		return word
	}
	s := stemmer{b: []byte(word)}
	s.step1a()
	s.step1b()
	s.step1c()
	s.step2()
	s.step3()
	s.step4()
	s.step5a()
	s.step5b()
	return string(s.b)
}

// stemmer holds the word being stemmed. b is mutated in place; j marks the
// end of the stem during condition evaluation (Porter's convention).
type stemmer struct {
	b []byte
	j int
}

// isConsonant reports whether b[i] is a consonant in Porter's sense:
// a letter other than a/e/i/o/u, with 'y' consonant only when it follows a
// vowel position (i.e. TOY has consonant y, SYZYGY has vowel y's).
func (s *stemmer) isConsonant(i int) bool {
	switch s.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !s.isConsonant(i - 1)
	}
	return true
}

// measure computes m, the number of VC sequences in b[0:j+1], where the
// word form is C?(VC){m}V?.
func (s *stemmer) measure() int {
	n := 0
	i := 0
	for {
		if i > s.j {
			return n
		}
		if !s.isConsonant(i) {
			break
		}
		i++
	}
	i++
	for {
		for {
			if i > s.j {
				return n
			}
			if s.isConsonant(i) {
				break
			}
			i++
		}
		i++
		n++
		for {
			if i > s.j {
				return n
			}
			if !s.isConsonant(i) {
				break
			}
			i++
		}
		i++
	}
}

// vowelInStem reports whether b[0:j+1] contains a vowel.
func (s *stemmer) vowelInStem() bool {
	for i := 0; i <= s.j; i++ {
		if !s.isConsonant(i) {
			return true
		}
	}
	return false
}

// doubleConsonant reports whether b[i-1:i+1] is a double consonant.
func (s *stemmer) doubleConsonant(i int) bool {
	if i < 1 {
		return false
	}
	if s.b[i] != s.b[i-1] {
		return false
	}
	return s.isConsonant(i)
}

// cvc reports whether b[i-2:i+1] is consonant-vowel-consonant with the
// second consonant not w, x or y. Used to restore a final e (cav(e),
// lov(e), hop(e)).
func (s *stemmer) cvc(i int) bool {
	if i < 2 || !s.isConsonant(i) || s.isConsonant(i-1) || !s.isConsonant(i-2) {
		return false
	}
	switch s.b[i] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// ends checks whether the word ends with suffix and, if so, sets j to mark
// the stem preceding it.
func (s *stemmer) ends(suffix string) bool {
	n := len(s.b)
	l := len(suffix)
	if l > n {
		return false
	}
	if string(s.b[n-l:]) != suffix {
		return false
	}
	s.j = n - l - 1
	return true
}

// setTo replaces the suffix found by ends with rep.
func (s *stemmer) setTo(rep string) {
	s.b = append(s.b[:s.j+1], rep...)
}

// replace performs setTo only when the measure of the stem is positive.
func (s *stemmer) replace(rep string) {
	if s.measure() > 0 {
		s.setTo(rep)
	}
}

// step1a handles plurals: sses→ss, ies→i, ss→ss, s→"".
func (s *stemmer) step1a() {
	if s.b[len(s.b)-1] != 's' {
		return
	}
	switch {
	case s.ends("sses"):
		s.setTo("ss")
	case s.ends("ies"):
		s.setTo("i")
	case s.ends("ss"):
		// unchanged
	case s.ends("s"):
		s.setTo("")
	}
}

// step1b handles -eed, -ed, -ing: feed→feed, agreed→agree, plastered→
// plaster, motoring→motor with the at/bl/iz / double-consonant / cvc
// cleanup rules.
func (s *stemmer) step1b() {
	if s.ends("eed") {
		if s.measure() > 0 {
			s.b = s.b[:len(s.b)-1]
		}
		return
	}
	stripped := false
	if s.ends("ed") {
		if s.vowelInStem() {
			s.b = s.b[:s.j+1]
			stripped = true
		}
	} else if s.ends("ing") {
		if s.vowelInStem() {
			s.b = s.b[:s.j+1]
			stripped = true
		}
	}
	if !stripped {
		return
	}
	switch {
	case s.ends("at"):
		s.setTo("ate")
	case s.ends("bl"):
		s.setTo("ble")
	case s.ends("iz"):
		s.setTo("ize")
	case s.doubleConsonant(len(s.b) - 1):
		switch s.b[len(s.b)-1] {
		case 'l', 's', 'z':
			// keep the double consonant (fall, hiss, fizz)
		default:
			s.b = s.b[:len(s.b)-1]
		}
	default:
		s.j = len(s.b) - 1
		if s.measure() == 1 && s.cvc(len(s.b)-1) {
			s.b = append(s.b, 'e')
		}
	}
}

// step1c turns terminal y to i when there is a vowel in the stem
// (happy→happi, sky→sky).
func (s *stemmer) step1c() {
	if s.ends("y") && s.vowelInStem() {
		s.b[len(s.b)-1] = 'i'
	}
}

// pair is one suffix rewrite rule for steps 2–4.
type pair struct{ suffix, rep string }

var step2Rules = []pair{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"},
	{"anci", "ance"}, {"izer", "ize"}, {"abli", "able"},
	{"alli", "al"}, {"entli", "ent"}, {"eli", "e"}, {"ousli", "ous"},
	{"ization", "ize"}, {"ation", "ate"}, {"ator", "ate"},
	{"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"},
	{"biliti", "ble"},
}

var step3Rules = []pair{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

// applyRules applies the first matching rule whose stem has m > 0.
func (s *stemmer) applyRules(rules []pair) {
	for _, r := range rules {
		if s.ends(r.suffix) {
			s.replace(r.rep)
			return
		}
	}
}

func (s *stemmer) step2() { s.applyRules(step2Rules) }
func (s *stemmer) step3() { s.applyRules(step3Rules) }

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

// step4 removes residual suffixes when the measure of the stem exceeds 1;
// -ion is removed only after s or t.
func (s *stemmer) step4() {
	for _, suf := range step4Suffixes {
		if !s.ends(suf) {
			continue
		}
		if suf == "ion" {
			if s.j < 0 || (s.b[s.j] != 's' && s.b[s.j] != 't') {
				continue
			}
		}
		if s.measure() > 1 {
			s.setTo("")
		}
		return
	}
}

// step5a removes a final e when m > 1, or when m == 1 and the stem does
// not end cvc (probate→probat, rate→rate).
func (s *stemmer) step5a() {
	if s.b[len(s.b)-1] != 'e' {
		return
	}
	s.j = len(s.b) - 2
	m := s.measure()
	if m > 1 || (m == 1 && !s.cvc(len(s.b)-2)) {
		s.b = s.b[:len(s.b)-1]
	}
}

// step5b reduces a final double l when m > 1 (controll→control).
func (s *stemmer) step5b() {
	n := len(s.b)
	if n < 2 || s.b[n-1] != 'l' || !s.doubleConsonant(n-1) {
		return
	}
	s.j = n - 1
	if s.measure() > 1 {
		s.b = s.b[:n-1]
	}
}
