package text

import (
	"testing"
	"testing/quick"
)

// TestStemKnownVectors checks the stemmer against examples taken directly
// from Porter's 1980 paper and from the reference implementation's
// vocabulary.
func TestStemKnownVectors(t *testing.T) {
	cases := map[string]string{
		// plurals / step 1a
		"caresses": "caress",
		"ponies":   "poni",
		"ties":     "ti",
		"caress":   "caress",
		"cats":     "cat",
		// step 1b
		"feed":      "feed",
		"agreed":    "agre",
		"plastered": "plaster",
		"bled":      "bled",
		"motoring":  "motor",
		"sing":      "sing",
		"conflated": "conflat",
		"troubled":  "troubl",
		"sized":     "size",
		"hopping":   "hop",
		"tanned":    "tan",
		"falling":   "fall",
		"hissing":   "hiss",
		"fizzed":    "fizz",
		"failing":   "fail",
		"filing":    "file",
		// step 1c
		"happy": "happi",
		"sky":   "sky",
		// step 2
		"relational":     "relat",
		"conditional":    "condit",
		"rational":       "ration",
		"valenci":        "valenc",
		"hesitanci":      "hesit",
		"digitizer":      "digit",
		"conformabli":    "conform",
		"radicalli":      "radic",
		"differentli":    "differ",
		"vileli":         "vile",
		"analogousli":    "analog",
		"vietnamization": "vietnam",
		"predication":    "predic",
		"operator":       "oper",
		"feudalism":      "feudal",
		"decisiveness":   "decis",
		"hopefulness":    "hope",
		"callousness":    "callous",
		"formaliti":      "formal",
		"sensitiviti":    "sensit",
		"sensibiliti":    "sensibl",
		// step 3
		"triplicate":  "triplic",
		"formative":   "form",
		"formalize":   "formal",
		"electriciti": "electr",
		"electrical":  "electr",
		"hopeful":     "hope",
		"goodness":    "good",
		// step 4
		"revival":     "reviv",
		"allowance":   "allow",
		"inference":   "infer",
		"airliner":    "airlin",
		"gyroscopic":  "gyroscop",
		"adjustable":  "adjust",
		"defensible":  "defens",
		"irritant":    "irrit",
		"replacement": "replac",
		"adjustment":  "adjust",
		"dependent":   "depend",
		"adoption":    "adopt",
		"homologou":   "homolog",
		"communism":   "commun",
		"activate":    "activ",
		"angulariti":  "angular",
		"homologous":  "homolog",
		"effective":   "effect",
		"bowdlerize":  "bowdler",
		// step 5
		"probate":  "probat",
		"rate":     "rate",
		"cease":    "ceas",
		"controll": "control",
		"roll":     "roll",
		// whole-word sanity
		"computers":    "comput",
		"computation":  "comput",
		"computing":    "comput",
		"university":   "univers",
		"universities": "univers",
		"profiles":     "profil",
		"profiling":    "profil",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestStemShortWords verifies that words shorter than three letters are
// untouched.
func TestStemShortWords(t *testing.T) {
	for _, w := range []string{"", "a", "is", "by"} {
		if got := Stem(w); got != w {
			t.Errorf("Stem(%q) = %q, want unchanged", w, got)
		}
	}
}

// TestStemIdempotent checks the practical property that re-stemming a stem
// of common morphological families is stable. (Porter is not idempotent on
// all of English, but conflation families used by the corpus must be.)
func TestStemIdempotent(t *testing.T) {
	words := []string{
		"computers", "running", "nationalization", "adjustments",
		"happiness", "libraries", "profiles", "delivering",
	}
	for _, w := range words {
		once := Stem(w)
		twice := Stem(once)
		if once != twice {
			t.Errorf("Stem not stable on %q: %q -> %q", w, once, twice)
		}
	}
}

// TestStemConflatesFamilies checks that morphological variants conflate to
// a single stem — the property the vector space model relies on.
func TestStemConflatesFamilies(t *testing.T) {
	families := [][]string{
		{"connect", "connected", "connecting", "connection", "connections"},
		{"compute", "computing", "computation", "computer", "computers"},
		{"adapt", "adapted", "adapting", "adaptation"},
	}
	for _, fam := range families {
		want := Stem(fam[0])
		for _, w := range fam[1:] {
			if got := Stem(w); got != want {
				t.Errorf("family %v: Stem(%q) = %q, want %q", fam, w, got, want)
			}
		}
	}
}

// TestStemNeverGrows property-tests that stemming never lengthens a word by
// more than one letter (the only growth case is restoring a final 'e') and
// always returns lower-case letters when fed lower-case letters.
func TestStemNeverGrows(t *testing.T) {
	f := func(raw []byte) bool {
		// Build a lower-case word from the fuzz input.
		w := make([]byte, 0, len(raw))
		for _, b := range raw {
			w = append(w, 'a'+b%26)
		}
		if len(w) > 30 {
			w = w[:30]
		}
		out := Stem(string(w))
		if len(out) > len(w)+1 {
			return false
		}
		for i := 0; i < len(out); i++ {
			if out[i] < 'a' || out[i] > 'z' {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
