package text

import (
	"strings"
	"testing"
)

func TestStripHTMLBasic(t *testing.T) {
	in := `<html><head><title>ignored</title></head><body><h1>Data Delivery</h1><p>user profiles</p></body></html>`
	out := StripHTML(in)
	if strings.Contains(out, "ignored") {
		t.Errorf("head content not removed: %q", out)
	}
	for _, want := range []string{"Data Delivery", "user profiles"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in %q", want, out)
		}
	}
	if strings.ContainsAny(out, "<>") {
		t.Errorf("markup left in output: %q", out)
	}
}

func TestStripHTMLScriptStyle(t *testing.T) {
	in := `<p>keep</p><script type="text/javascript">var hidden = 1;</script><style>.x{color:red}</style><p>also keep</p>`
	out := StripHTML(in)
	for _, banned := range []string{"hidden", "color", "red"} {
		if strings.Contains(out, banned) {
			t.Errorf("script/style content leaked: %q in %q", banned, out)
		}
	}
	if !strings.Contains(out, "keep") || !strings.Contains(out, "also keep") {
		t.Errorf("visible text lost: %q", out)
	}
}

func TestStripHTMLComments(t *testing.T) {
	out := StripHTML(`before<!-- secret comment -->after`)
	if strings.Contains(out, "secret") {
		t.Errorf("comment content leaked: %q", out)
	}
	if !strings.Contains(out, "before") || !strings.Contains(out, "after") {
		t.Errorf("surrounding text lost: %q", out)
	}
}

func TestStripHTMLEntities(t *testing.T) {
	out := StripHTML(`fish &amp; chips &lt;tag&gt; caf&#233;`)
	if !strings.Contains(out, "fish & chips") {
		t.Errorf("&amp; not decoded: %q", out)
	}
	if !strings.Contains(out, "<tag>") {
		t.Errorf("&lt;/&gt; not decoded: %q", out)
	}
}

func TestStripHTMLWordBoundaries(t *testing.T) {
	// Tags must not fuse adjacent words.
	out := StripHTML(`<td>alpha</td><td>beta</td>`)
	toks := Tokenize(out)
	want := []string{"alpha", "beta"}
	if len(toks) != 2 || toks[0] != want[0] || toks[1] != want[1] {
		t.Errorf("Tokenize(StripHTML) = %v, want %v", toks, want)
	}
}

func TestStripHTMLMalformed(t *testing.T) {
	// Unterminated tags and comments must not panic or loop.
	for _, in := range []string{"<unclosed", "text<!-- never closed", "<>", "a<b", "&amp"} {
		_ = StripHTML(in) // must terminate
	}
	if got := StripHTML("tail<unclosed tag"); !strings.Contains(got, "tail") {
		t.Errorf("text before unterminated tag lost: %q", got)
	}
}

func TestTokenize(t *testing.T) {
	toks := Tokenize("The user's 42 Pro-files, DELIVERED!")
	want := []string{"the", "users", "pro", "files", "delivered"}
	if len(toks) != len(want) {
		t.Fatalf("Tokenize = %v, want %v", toks, want)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Errorf("token %d = %q, want %q", i, toks[i], want[i])
		}
	}
}

func TestIsWord(t *testing.T) {
	cases := map[string]bool{
		"a":                     false,
		"ab":                    true,
		"information":           true,
		strings.Repeat("x", 25): true,
		strings.Repeat("x", 26): false,
	}
	for in, want := range cases {
		if got := IsWord(in); got != want {
			t.Errorf("IsWord(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestIsStopWord(t *testing.T) {
	for _, w := range []string{"the", "and", "of", "www"} {
		if !IsStopWord(w) {
			t.Errorf("expected %q to be a stop word", w)
		}
	}
	for _, w := range []string{"profile", "delivery", "cluster"} {
		if IsStopWord(w) {
			t.Errorf("did not expect %q to be a stop word", w)
		}
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	p := NewPipeline()
	page := `<html><head><title>x</title></head><body>
	<h1>Adaptive Profiles</h1>
	<p>The system adapts user profiles using relevance feedback.</p>
	<script>ignore();</script></body></html>`
	terms := p.Terms(page)
	if len(terms) == 0 {
		t.Fatal("pipeline produced no terms")
	}
	counts := map[string]int{}
	for _, tm := range terms {
		counts[tm]++
	}
	// "Profiles" and "profiles" stem to the same term and occur twice.
	if counts[Stem("profiles")] != 2 {
		t.Errorf("expected stemmed 'profiles' twice, got counts %v", counts)
	}
	if counts["the"] != 0 {
		t.Errorf("stop word survived: %v", counts)
	}
	if counts["ignore"] != 0 {
		t.Errorf("script content survived: %v", counts)
	}
}

func TestPipelineStagesToggle(t *testing.T) {
	p := &Pipeline{StripMarkup: false, RemoveStopWords: false, StemTerms: false}
	terms := p.Terms("the running dogs")
	want := []string{"the", "running", "dogs"}
	if len(terms) != len(want) {
		t.Fatalf("terms = %v, want %v", terms, want)
	}
	for i := range want {
		if terms[i] != want[i] {
			t.Errorf("term %d = %q, want %q", i, terms[i], want[i])
		}
	}
}
