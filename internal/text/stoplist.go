package text

// stopWords is a classic English stop list (van Rijsbergen's list with a few
// web-era additions such as "www" and "http"). Stop-list removal happens
// after tokenization and before stemming, per the paper's Figure 3.
var stopWords = map[string]bool{}

func init() {
	for _, w := range stopWordList {
		stopWords[w] = true
	}
}

// IsStopWord reports whether tok appears on the stop list. The check is
// case-sensitive and expects the lower-cased tokens produced by Tokenize.
func IsStopWord(tok string) bool {
	return stopWords[tok]
}

var stopWordList = []string{
	"a", "about", "above", "across", "after", "afterwards", "again",
	"against", "all", "almost", "alone", "along", "already", "also",
	"although", "always", "am", "among", "amongst", "an", "and", "another",
	"any", "anyhow", "anyone", "anything", "anyway", "anywhere", "are",
	"around", "as", "at", "back", "be", "became", "because", "become",
	"becomes", "becoming", "been", "before", "beforehand", "behind",
	"being", "below", "beside", "besides", "between", "beyond", "both",
	"but", "by", "can", "cannot", "could", "did", "do", "does", "doing",
	"done", "down", "during", "each", "eg", "eight", "either", "else",
	"elsewhere", "enough", "etc", "even", "ever", "every", "everyone",
	"everything", "everywhere", "except", "few", "fifteen", "fifty",
	"first", "five", "for", "former", "formerly", "forty", "four", "from",
	"front", "full", "further", "get", "give", "go", "had", "has", "have",
	"he", "hence", "her", "here", "hereafter", "hereby", "herein",
	"hereupon", "hers", "herself", "him", "himself", "his", "how",
	"however", "hundred", "ie", "if", "in", "inc", "indeed", "into", "is",
	"it", "its", "itself", "last", "latter", "latterly", "least", "less",
	"ltd", "made", "many", "may", "me", "meanwhile", "might", "mine",
	"more", "moreover", "most", "mostly", "much", "must", "my", "myself",
	"namely", "neither", "never", "nevertheless", "next", "nine", "no",
	"nobody", "none", "noone", "nor", "not", "nothing", "now", "nowhere",
	"of", "off", "often", "on", "once", "one", "only", "onto", "or",
	"other", "others", "otherwise", "our", "ours", "ourselves", "out",
	"over", "own", "per", "perhaps", "please", "put", "rather", "re",
	"same", "seem", "seemed", "seeming", "seems", "several", "she",
	"should", "since", "six", "sixty", "so", "some", "somehow", "someone",
	"something", "sometime", "sometimes", "somewhere", "still", "such",
	"ten", "than", "that", "the", "their", "theirs", "them", "themselves",
	"then", "thence", "there", "thereafter", "thereby", "therefore",
	"therein", "thereupon", "these", "they", "third", "this", "those",
	"though", "three", "through", "throughout", "thru", "thus", "to",
	"together", "too", "toward", "towards", "twelve", "twenty", "two",
	"under", "until", "up", "upon", "us", "very", "via", "was", "we",
	"well", "were", "what", "whatever", "when", "whence", "whenever",
	"where", "whereafter", "whereas", "whereby", "wherein", "whereupon",
	"wherever", "whether", "which", "while", "whither", "who", "whoever",
	"whole", "whom", "whose", "why", "will", "with", "within", "without",
	"would", "yet", "you", "your", "yours", "yourself", "yourselves",
	// Web-era additions: navigation chrome that survives HTML stripping.
	"www", "http", "https", "html", "htm", "com", "org", "net", "edu",
	"click", "page", "home", "site", "web",
}
