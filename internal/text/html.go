// Package text implements the web-page processing pipeline of the paper's
// Figure 3: HTML tag removal, tokenization, non-word removal, stop-list
// removal, and Porter stemming. The pipeline converts a raw page into the
// list of terms that internal/vsm turns into a weighted document vector.
package text

import "strings"

// htmlVoidContent lists elements whose textual content is not document text
// and must be dropped entirely, not merely untagged.
var htmlVoidContent = map[string]bool{
	"script": true,
	"style":  true,
	"head":   true,
}

// StripHTML removes markup from an HTML page and returns the visible text.
// Tags are replaced by spaces (so adjacent words never fuse), the contents
// of <script>, <style> and <head> elements are dropped, comments are
// removed, and a small set of common character entities is decoded. The
// implementation is a single forward scan; it is deliberately tolerant of
// the malformed markup that is typical of web pages.
func StripHTML(page string) string {
	var b strings.Builder
	b.Grow(len(page))

	i := 0
	n := len(page)
	skipUntil := "" // closing tag name whose content we are skipping

	for i < n {
		c := page[i]
		if c == '<' {
			// Comment?
			if strings.HasPrefix(page[i:], "<!--") {
				end := strings.Index(page[i+4:], "-->")
				if end < 0 {
					break // unterminated comment: drop the rest
				}
				i += 4 + end + 3
				b.WriteByte(' ')
				continue
			}
			// Find the end of the tag.
			end := strings.IndexByte(page[i:], '>')
			if end < 0 {
				break // unterminated tag: drop the rest
			}
			tag := page[i+1 : i+end]
			i += end + 1
			b.WriteByte(' ')

			name, closing := tagName(tag)
			if skipUntil != "" {
				if closing && name == skipUntil {
					skipUntil = ""
				}
				continue
			}
			if !closing && htmlVoidContent[name] {
				skipUntil = name
			}
			continue
		}
		if skipUntil != "" {
			i++
			continue
		}
		if c == '&' {
			if rep, adv := decodeEntity(page[i:]); adv > 0 {
				b.WriteString(rep)
				i += adv
				continue
			}
		}
		b.WriteByte(c)
		i++
	}
	return b.String()
}

// tagName extracts the lower-cased element name from the inside of a tag
// and reports whether the tag is a closing tag.
func tagName(tag string) (name string, closing bool) {
	tag = strings.TrimSpace(tag)
	if strings.HasPrefix(tag, "/") {
		closing = true
		tag = strings.TrimSpace(tag[1:])
	}
	end := 0
	for end < len(tag) {
		c := tag[end]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '/' || c == '>' {
			break
		}
		end++
	}
	return strings.ToLower(tag[:end]), closing
}

// entities maps the character references that occur frequently enough on web
// pages to matter for term extraction. Unknown references are left intact
// and later discarded by the tokenizer as non-words.
var entities = map[string]string{
	"amp":    "&",
	"lt":     "<",
	"gt":     ">",
	"quot":   `"`,
	"apos":   "'",
	"nbsp":   " ",
	"mdash":  " ",
	"ndash":  " ",
	"hellip": " ",
	"copy":   " ",
	"reg":    " ",
	"trade":  " ",
}

// decodeEntity decodes a character reference at the start of s. It returns
// the replacement text and the number of input bytes consumed, or adv == 0
// if s does not start with a recognizable reference.
func decodeEntity(s string) (rep string, adv int) {
	if len(s) < 3 || s[0] != '&' {
		return "", 0
	}
	semi := strings.IndexByte(s[:min(len(s), 12)], ';')
	if semi < 0 {
		return "", 0
	}
	body := s[1:semi]
	if len(body) > 1 && body[0] == '#' {
		// Numeric references decode to a space: they are almost never part
		// of an indexable term.
		return " ", semi + 1
	}
	if rep, ok := entities[strings.ToLower(body)]; ok {
		return rep, semi + 1
	}
	return "", 0
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
