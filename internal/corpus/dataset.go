package corpus

import (
	"math/rand"

	"mmprofile/internal/text"
	"mmprofile/internal/vsm"
)

// Document is one collection member after vectorization: the unit consumed
// by learners, the evaluator, and the dissemination engine.
type Document struct {
	ID  int
	Cat Category
	Vec vsm.Vector
}

// Dataset is a vectorized collection together with the collection
// statistics used to weight it.
type Dataset struct {
	Docs  []Document
	Stats *vsm.Stats
}

// Vectorize runs every page through the Figure-3 pipeline and converts it
// to a weighted document vector. Following the paper (Section 5.1,
// footnote 4), collection statistics are computed by a first pass over the
// whole collection and then used to weight each document with Allan's bel
// scheme, keeping the 100 highest-weighted terms, length-normalized.
func (c *Collection) Vectorize(p *text.Pipeline) *Dataset {
	terms := make([][]string, len(c.Pages))
	stats := vsm.NewStats()
	for i, page := range c.Pages {
		terms[i] = p.Terms(page.HTML)
		stats.Add(terms[i])
	}
	w := vsm.Bel{Stats: stats}
	ds := &Dataset{Stats: stats, Docs: make([]Document, len(c.Pages))}
	for i, page := range c.Pages {
		ds.Docs[i] = Document{ID: page.ID, Cat: page.Cat, Vec: vsm.DocumentVector(terms[i], w)}
	}
	return ds
}

// Split shuffles the dataset with the given seed and partitions it into a
// training set of nTrain documents and a test set of the remainder, the
// paper's protocol (500 training / 400 test by default).
func (d *Dataset) Split(seed int64, nTrain int) (train, test []Document) {
	docs := append([]Document(nil), d.Docs...)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(docs), func(i, j int) { docs[i], docs[j] = docs[j], docs[i] })
	if nTrain > len(docs) {
		nTrain = len(docs)
	}
	return docs[:nTrain], docs[nTrain:]
}

// TopCategories returns the list of top-level categories in the dataset's
// configuration-independent form (derived from the documents themselves).
func (d *Dataset) TopCategories() []Category {
	seen := map[int]bool{}
	var out []Category
	for _, doc := range d.Docs {
		if !seen[doc.Cat.Top] {
			seen[doc.Cat.Top] = true
			out = append(out, Category{Top: doc.Cat.Top, Sub: -1})
		}
	}
	return out
}

// SubCategories returns every second-level category present in the dataset.
func (d *Dataset) SubCategories() []Category {
	seen := map[Category]bool{}
	var out []Category
	for _, doc := range d.Docs {
		if !seen[doc.Cat] {
			seen[doc.Cat] = true
			out = append(out, doc.Cat)
		}
	}
	return out
}
