package corpus

import (
	"strings"
	"testing"

	"mmprofile/internal/text"
	"mmprofile/internal/vsm"
)

// smallConfig keeps tests fast: 4 top categories × 3 subs × 4 pages.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.TopCategories = 4
	cfg.SubPerTop = 3
	cfg.PagesPerSub = 4
	cfg.MinWords = 80
	cfg.MaxWords = 160
	return cfg
}

func TestCategoryString(t *testing.T) {
	if got := (Category{Top: 3, Sub: -1}).String(); got != "C3" {
		t.Errorf("top-level String = %q", got)
	}
	if got := (Category{Top: 3, Sub: 7}).String(); got != "C37" {
		t.Errorf("second-level String = %q", got)
	}
	if got := (Category{Top: 3, Sub: 7}).TopLevel(); got != (Category{Top: 3, Sub: -1}) {
		t.Errorf("TopLevel = %v", got)
	}
}

func TestParseCategory(t *testing.T) {
	good := map[string]Category{
		"C0":   {Top: 0, Sub: -1},
		"c3":   {Top: 3, Sub: -1},
		" C9 ": {Top: 9, Sub: -1},
		"C37":  {Top: 3, Sub: 7},
		"c05":  {Top: 0, Sub: 5},
	}
	for in, want := range good {
		got, err := ParseCategory(in)
		if err != nil || got != want {
			t.Errorf("ParseCategory(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "C", "X3", "C1234", "Cx", "C3y", "37"} {
		if _, err := ParseCategory(bad); err == nil {
			t.Errorf("ParseCategory(%q) accepted", bad)
		}
	}
	// Round trip with String.
	for _, c := range []Category{{Top: 4, Sub: -1}, {Top: 4, Sub: 8}} {
		got, err := ParseCategory(c.String())
		if err != nil || got != c {
			t.Errorf("round trip %v: %v, %v", c, got, err)
		}
	}
}

// TestGenerateDistributions checks the generator's statistical contract:
// document lengths stay within [MinWords, MaxWords] content words, and
// topical (non-background) terms make up a substantial share of the
// pipeline output.
func TestGenerateDistributions(t *testing.T) {
	cfg := smallConfig()
	ds := Generate(cfg).Vectorize(text.NewPipeline())
	for _, d := range ds.Docs {
		if d.Vec.IsZero() {
			t.Fatalf("doc %d empty", d.ID)
		}
	}
	if avg := ds.Stats.AvgLen(); avg < 40 || avg > float64(cfg.MaxWords) {
		t.Errorf("avg pipeline length %v implausible for %d–%d content words",
			avg, cfg.MinWords, cfg.MaxWords)
	}
	// Vocabulary must be dominated by synthetic stems, not leftovers of
	// markup (which would indicate the pipeline is leaking chrome).
	if v := ds.Stats.VocabularySize(); v < 500 {
		t.Errorf("vocabulary %d suspiciously small", v)
	}
}

func TestGenerateShape(t *testing.T) {
	cfg := smallConfig()
	coll := Generate(cfg)
	if len(coll.Pages) != cfg.NumPages() {
		t.Fatalf("pages = %d, want %d", len(coll.Pages), cfg.NumPages())
	}
	counts := map[Category]int{}
	for i, pg := range coll.Pages {
		if pg.ID != i {
			t.Errorf("page %d has ID %d", i, pg.ID)
		}
		counts[pg.Cat]++
		if !strings.Contains(pg.HTML, "<html>") {
			t.Fatalf("page %d is not HTML", i)
		}
	}
	for cat, n := range counts {
		if n != cfg.PagesPerSub {
			t.Errorf("category %v has %d pages, want %d", cat, n, cfg.PagesPerSub)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := smallConfig()
	a := Generate(cfg)
	b := Generate(cfg)
	for i := range a.Pages {
		if a.Pages[i].HTML != b.Pages[i].HTML {
			t.Fatalf("page %d differs between identically-seeded runs", i)
		}
	}
	cfg2 := cfg
	cfg2.Seed = 99
	c := Generate(cfg2)
	same := 0
	for i := range a.Pages {
		if a.Pages[i].HTML == c.Pages[i].HTML {
			same++
		}
	}
	if same == len(a.Pages) {
		t.Error("different seeds produced identical collections")
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.TopCategories != 10 || cfg.SubPerTop != 10 || cfg.NumPages() != 900 {
		t.Errorf("default layout %dx%dx%d does not match the paper's 900 pages",
			cfg.TopCategories, cfg.SubPerTop, cfg.PagesPerSub)
	}
}

// TestOffTopicBlocksRaiseConfusion verifies the generator knob that makes
// ranking hard: with concentrated off-topic blocks enabled, cross-category
// page pairs become more similar than in a clean collection.
func TestOffTopicBlocksRaiseConfusion(t *testing.T) {
	base := smallConfig()
	base.OffTopicProb = 0
	noisy := smallConfig()
	noisy.OffTopicProb = 1
	noisy.OffTopicMaxFrac = 0.4

	crossSim := func(cfg Config) float64 {
		ds := Generate(cfg).Vectorize(text.NewPipeline())
		var sum float64
		var n int
		for i := 0; i < len(ds.Docs); i++ {
			for j := i + 1; j < len(ds.Docs); j++ {
				if ds.Docs[i].Cat.Top != ds.Docs[j].Cat.Top {
					sum += vsm.Cosine(ds.Docs[i].Vec, ds.Docs[j].Vec)
					n++
				}
			}
		}
		return sum / float64(n)
	}
	clean, confused := crossSim(base), crossSim(noisy)
	if confused <= clean {
		t.Errorf("off-topic blocks did not raise cross-category similarity: %v vs %v", confused, clean)
	}
}

func TestWordForUniqueAcrossVocabularies(t *testing.T) {
	seen := map[string][2]int{}
	for vocab := 0; vocab < 120; vocab++ {
		for k := 0; k < 200; k++ {
			w := wordFor(vocab, k)
			if prev, dup := seen[w]; dup {
				t.Fatalf("word %q generated for both %v and [%d %d]", w, prev, vocab, k)
			}
			seen[w] = [2]int{vocab, k}
		}
	}
}

func TestStemCollisionsRare(t *testing.T) {
	// Distinct synthetic words must map to distinct Porter stems almost
	// always, or category vocabularies would bleed into each other.
	stems := map[string]string{}
	collisions, total := 0, 0
	for vocab := 0; vocab < 120; vocab++ {
		for k := 0; k < 120; k++ {
			w := wordFor(vocab, k)
			s := text.Stem(w)
			total++
			if prev, ok := stems[s]; ok && prev != w {
				collisions++
			} else {
				stems[s] = w
			}
		}
	}
	if frac := float64(collisions) / float64(total); frac > 0.02 {
		t.Errorf("stem collision rate %.3f exceeds 2%%", frac)
	}
}

func TestVocabularyZipfSkew(t *testing.T) {
	v := newVocabulary(0, 100, 1.0)
	// The CDF must be monotone and rank 0 must dominate.
	if v.cdf[0] <= 1.0/100 {
		t.Errorf("rank 0 mass %v not Zipf-skewed", v.cdf[0])
	}
	for i := 1; i < len(v.cdf); i++ {
		if v.cdf[i] < v.cdf[i-1] {
			t.Fatal("CDF not monotone")
		}
	}
	if got := v.cdf[len(v.cdf)-1]; got < 0.999999 {
		t.Errorf("CDF does not reach 1: %v", got)
	}
	// Boundary samples.
	if v.sample(0) != v.words[0] {
		t.Error("sample(0) is not the top-ranked word")
	}
	if v.sample(0.9999999) != v.words[len(v.words)-1] && v.sample(0.9999999) == "" {
		t.Error("sample near 1 out of range")
	}
}
