// Package corpus generates the document collection for the experiments.
//
// The paper evaluates on 900 web pages drawn from the top two levels of the
// 1999 Yahoo! category hierarchy — a resource that no longer exists. As a
// substitution (documented in DESIGN.md) the package synthesizes a
// collection with the same shape: ten top-level categories C0..C9, ten
// second-level categories Ci0..Ci9 under each, and a configurable number of
// HTML pages per second-level category (nine by default, 900 pages total).
// Every page mixes a shared background vocabulary, a vocabulary specific to
// its top-level category, a vocabulary specific to its second-level
// category, and cross-category noise, each sampled Zipfian — so that pages
// within a category are lexically similar, sibling sub-categories overlap
// through their shared top-level vocabulary, and everything is wrapped in
// the noisy HTML the paper's Figure 3 pipeline was built for.
package corpus

import (
	"math"
	"strings"
)

// syllables are the building blocks for synthetic words. They avoid common
// English suffix fragments so that Porter stemming maps distinct words to
// distinct stems almost always (verified by a test).
var syllables = []string{
	"ba", "ke", "di", "fo", "gu", "ha", "jo", "ku", "lo", "ma",
	"ne", "po", "qua", "ro", "sa", "tu", "va", "wo", "xa", "zo",
	"bri", "cra", "dro", "fla", "gri", "klo", "pla", "sku", "tra", "vru",
	"bem", "cof", "dag", "fid", "gop", "hun", "jil", "kam", "lev", "mog",
}

const numSyllables = 40

// wordFor deterministically constructs the k-th word of vocabulary vocab.
// The first two syllables encode the vocabulary, so words from different
// vocabularies never collide; the remaining syllables encode k.
func wordFor(vocab, k int) string {
	var b strings.Builder
	b.WriteString(syllables[vocab%numSyllables])
	b.WriteString(syllables[(vocab/numSyllables)%numSyllables])
	b.WriteString(syllables[k%numSyllables])
	if k >= numSyllables {
		b.WriteString(syllables[(k/numSyllables)%numSyllables])
	}
	if k >= numSyllables*numSyllables {
		b.WriteString(syllables[(k/(numSyllables*numSyllables))%numSyllables])
	}
	return b.String()
}

// vocabulary is a list of words with a Zipfian cumulative distribution over
// their ranks.
type vocabulary struct {
	words []string
	cdf   []float64
}

// functionWords occupy the head ranks of the background vocabulary. Like
// the most frequent words of real English, they are stop words: the
// pipeline removes them, so — exactly as on real web pages — the bulk of
// the background distribution's mass never reaches the document vectors.
// Without this, ubiquitous synthetic head words (which Allan's bel formula
// floors at weight 0.4) would give every pair of documents a large
// similarity floor that real, stop-listed text does not have.
var functionWords = []string{
	"the", "of", "and", "a", "to", "in", "is", "you", "that", "it",
	"he", "was", "for", "on", "are", "as", "with", "his", "they", "at",
	"be", "this", "have", "from", "or", "one", "had", "by", "but",
	"not", "what", "all", "were", "we", "when", "your", "can", "said",
	"there", "use", "an", "each", "which", "she", "do", "how", "their",
	"if", "will", "up", "other", "about", "out", "many", "then", "them",
	"these", "so", "some", "her", "would", "make", "him", "into",
	"time", "has", "two", "more", "go", "no", "way", "could", "my",
	"than", "first", "been", "who", "its", "now", "did", "get",
}

// newVocabulary builds vocabulary number id with size words distributed
// Zipf(s): P(rank r) ∝ 1/(r+1)^s. Vocabulary 0 (the shared background) has
// its head ranks overlaid with real English function words.
func newVocabulary(id, size int, s float64) *vocabulary {
	v := &vocabulary{
		words: make([]string, size),
		cdf:   make([]float64, size),
	}
	var total float64
	for r := 0; r < size; r++ {
		if id == 0 && r < len(functionWords) {
			v.words[r] = functionWords[r]
		} else {
			v.words[r] = wordFor(id, r)
		}
		total += 1 / math.Pow(float64(r+1), s)
		v.cdf[r] = total
	}
	for r := range v.cdf {
		v.cdf[r] /= total
	}
	return v
}

// sample draws one word using u ∈ [0,1).
func (v *vocabulary) sample(u float64) string {
	lo, hi := 0, len(v.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if v.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return v.words[lo]
}
