package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// Category identifies a node of the two-level hierarchy: top-level category
// C<Top> and, when Sub >= 0, second-level category C<Top><Sub>.
type Category struct {
	Top int
	Sub int
}

// String renders the paper's Ci / Cij notation.
func (c Category) String() string {
	if c.Sub < 0 {
		return fmt.Sprintf("C%d", c.Top)
	}
	return fmt.Sprintf("C%d%d", c.Top, c.Sub)
}

// TopLevel returns the top-level ancestor of c.
func (c Category) TopLevel() Category { return Category{Top: c.Top, Sub: -1} }

// ParseCategory parses the paper's Ci / Cij notation ("C3" is top-level
// category 3; "C37" is second-level category 7 under it). Parsing is
// case-insensitive.
func ParseCategory(s string) (Category, error) {
	s = strings.ToUpper(strings.TrimSpace(s))
	if len(s) < 2 || len(s) > 3 || s[0] != 'C' {
		return Category{}, fmt.Errorf("corpus: bad category %q (want C<i> or C<i><j>)", s)
	}
	digit := func(b byte) (int, error) {
		if b < '0' || b > '9' {
			return 0, fmt.Errorf("corpus: bad category %q (non-digit %q)", s, string(b))
		}
		return int(b - '0'), nil
	}
	top, err := digit(s[1])
	if err != nil {
		return Category{}, err
	}
	if len(s) == 2 {
		return Category{Top: top, Sub: -1}, nil
	}
	sub, err := digit(s[2])
	if err != nil {
		return Category{}, err
	}
	return Category{Top: top, Sub: sub}, nil
}

// Page is one generated web page with its ground-truth category labels.
type Page struct {
	ID   int
	Cat  Category // second-level category (Sub >= 0)
	HTML string
}

// Config parameterizes collection generation. The zero value is not usable;
// start from DefaultConfig.
type Config struct {
	TopCategories int // number of top-level categories (paper: 10)
	SubPerTop     int // second-level categories per top-level one (paper: 10)
	PagesPerSub   int // pages per second-level category (paper: 9 → 900 total)

	BackgroundVocab int // size of the shared background vocabulary
	TopVocab        int // size of each top-level category vocabulary
	SubVocab        int // size of each second-level category vocabulary

	// Mixture proportions for sampling each content word; they need not sum
	// to one (they are normalized). MixNoise draws from a uniformly random
	// other category's vocabulary, modelling off-topic material on a page.
	MixBackground float64
	MixTop        float64
	MixSub        float64
	MixNoise      float64

	// OffTopicProb is the probability that a page carries a concentrated
	// off-topic block — a fraction of its words drawn from one other,
	// randomly chosen second-level category (mixed-topic pages, link lists,
	// ads). OffTopicMaxFrac bounds that fraction; the actual fraction is
	// uniform in [OffTopicMaxFrac/3, OffTopicMaxFrac]. These blocks are
	// what makes ranking genuinely hard: diffuse noise only raises the
	// similarity floor, concentrated blocks create confusable pages.
	OffTopicProb    float64
	OffTopicMaxFrac float64

	// TopicJitter perturbs each page's category-signal share: the MixTop
	// and MixSub proportions are scaled by a per-page factor uniform in
	// [1−TopicJitter, 1+TopicJitter], so some pages are only weakly about
	// their topic.
	TopicJitter float64

	MinWords int // minimum content words per page
	MaxWords int // maximum content words per page

	ZipfExponent float64 // skew of every vocabulary's rank distribution

	Seed int64
}

// DefaultConfig returns the configuration used by the experiments: the
// paper's 10×10×9 layout with web-page-like vocabulary mixing.
func DefaultConfig() Config {
	return Config{
		TopCategories:   10,
		SubPerTop:       10,
		PagesPerSub:     9,
		BackgroundVocab: 1200,
		TopVocab:        150,
		SubVocab:        300,
		MixBackground:   0.47,
		MixTop:          0.07,
		MixSub:          0.28,
		MixNoise:        0.18,
		OffTopicProb:    0.5,
		OffTopicMaxFrac: 0.30,
		TopicJitter:     0.5,
		MinWords:        80,
		MaxWords:        420,
		ZipfExponent:    0.90,
		Seed:            1,
	}
}

// NumPages returns the total collection size for the configuration.
func (c Config) NumPages() int { return c.TopCategories * c.SubPerTop * c.PagesPerSub }

// Collection is a generated document collection.
type Collection struct {
	Cfg   Config
	Pages []Page
}

// vocabulary ids: 0 = background, 1..T = top-level, T+1.. = second-level.
func (c Config) topVocabID(top int) int      { return 1 + top }
func (c Config) subVocabID(top, sub int) int { return 1 + c.TopCategories + top*c.SubPerTop + sub }

// Generate builds the full collection deterministically from cfg.Seed.
// Pages are generated independently (each from a seed derived from the
// collection seed and the page id), so the collection is reproducible
// regardless of iteration order.
func Generate(cfg Config) *Collection {
	coll := &Collection{Cfg: cfg}
	background := newVocabulary(0, cfg.BackgroundVocab, cfg.ZipfExponent)
	topVocabs := make([]*vocabulary, cfg.TopCategories)
	for i := range topVocabs {
		topVocabs[i] = newVocabulary(cfg.topVocabID(i), cfg.TopVocab, cfg.ZipfExponent)
	}
	subVocabs := make([][]*vocabulary, cfg.TopCategories)
	for i := range subVocabs {
		subVocabs[i] = make([]*vocabulary, cfg.SubPerTop)
		for j := range subVocabs[i] {
			subVocabs[i][j] = newVocabulary(cfg.subVocabID(i, j), cfg.SubVocab, cfg.ZipfExponent)
		}
	}

	id := 0
	for top := 0; top < cfg.TopCategories; top++ {
		for sub := 0; sub < cfg.SubPerTop; sub++ {
			for k := 0; k < cfg.PagesPerSub; k++ {
				rng := rand.New(rand.NewSource(cfg.Seed*1_000_003 + int64(id)))
				cat := Category{Top: top, Sub: sub}
				words := cfg.sampleWords(rng, background, topVocabs, subVocabs, cat)
				coll.Pages = append(coll.Pages, Page{
					ID:   id,
					Cat:  cat,
					HTML: renderHTML(rng, cat, words),
				})
				id++
			}
		}
	}
	return coll
}

// sampleWords draws the content words of one page from the mixture.
func (cfg Config) sampleWords(rng *rand.Rand, background *vocabulary,
	topVocabs []*vocabulary, subVocabs [][]*vocabulary, cat Category) []string {

	n := cfg.MinWords
	if cfg.MaxWords > cfg.MinWords {
		n += rng.Intn(cfg.MaxWords - cfg.MinWords)
	}

	// Per-page jitter: some pages are only weakly about their category.
	jitter := 1.0
	if cfg.TopicJitter > 0 {
		jitter = 1 - cfg.TopicJitter + 2*cfg.TopicJitter*rng.Float64()
	}
	mixTop := cfg.MixTop * jitter
	mixSub := cfg.MixSub * jitter

	// Concentrated off-topic block from one other second-level category.
	offFrac := 0.0
	offTop, offSub := 0, 0
	if cfg.OffTopicProb > 0 && rng.Float64() < cfg.OffTopicProb {
		offFrac = cfg.OffTopicMaxFrac * (1 + 2*rng.Float64()) / 3
		offTop = rng.Intn(cfg.TopCategories)
		offSub = rng.Intn(cfg.SubPerTop)
	}

	total := cfg.MixBackground + mixTop + mixSub + cfg.MixNoise
	pBack := cfg.MixBackground / total
	pTop := pBack + mixTop/total
	pSub := pTop + mixSub/total

	words := make([]string, 0, n)
	for w := 0; w < n; w++ {
		if offFrac > 0 && rng.Float64() < offFrac {
			words = append(words, subVocabs[offTop][offSub].sample(rng.Float64()))
			continue
		}
		u := rng.Float64()
		switch {
		case u < pBack:
			words = append(words, background.sample(rng.Float64()))
		case u < pTop:
			words = append(words, topVocabs[cat.Top].sample(rng.Float64()))
		case u < pSub:
			words = append(words, subVocabs[cat.Top][cat.Sub].sample(rng.Float64()))
		default:
			// Diffuse noise: a word from a uniformly random second-level
			// vocabulary anywhere in the hierarchy (possibly this page's own).
			t := rng.Intn(cfg.TopCategories)
			s := rng.Intn(cfg.SubPerTop)
			words = append(words, subVocabs[t][s].sample(rng.Float64()))
		}
	}
	return words
}

// renderHTML wraps content words in web-page markup: a head that must be
// stripped, navigation chrome built from stop words, paragraphs, the odd
// comment and script block — the raw material of the paper's Figure 3.
func renderHTML(rng *rand.Rand, cat Category, words []string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "<html><head><title>%s index</title>", cat)
	b.WriteString("<style>body { font-family: serif; }</style></head><body>\n")
	b.WriteString("<!-- generated page -->\n")
	fmt.Fprintf(&b, "<h1>%s &amp; more</h1>\n", strings.Join(words[:min(4, len(words))], " "))
	b.WriteString("<p>the home page for this and that, with links to other sites</p>\n")
	i := min(4, len(words))
	para := 0
	for i < len(words) {
		n := 30 + rng.Intn(50)
		if i+n > len(words) {
			n = len(words) - i
		}
		if para%4 == 3 {
			fmt.Fprintf(&b, "<h2>%s</h2>\n", strings.Join(words[i:i+min(3, n)], " "))
		}
		fmt.Fprintf(&b, "<p>%s</p>\n", sentenceCase(words[i:i+n]))
		i += n
		para++
	}
	b.WriteString("<script>var tracker = 1;</script>\n")
	b.WriteString("<p>copyright 1999, all rights reserved</p>\n</body></html>\n")
	return b.String()
}

// sentenceCase joins words with spaces and periodically inserts sentence
// punctuation, so pages look like prose rather than a word list.
func sentenceCase(words []string) string {
	var b strings.Builder
	for i, w := range words {
		if i > 0 {
			if i%12 == 0 {
				b.WriteString(". ")
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteString(w)
	}
	b.WriteByte('.')
	return b.String()
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
