package corpus

import (
	"os"
	"path/filepath"
	"testing"

	"mmprofile/internal/text"
	"mmprofile/internal/vsm"
)

func vectorizeSmall(t *testing.T) *Dataset {
	t.Helper()
	ds := Generate(smallConfig()).Vectorize(text.NewPipeline())
	if len(ds.Docs) == 0 {
		t.Fatal("empty dataset")
	}
	return ds
}

func TestVectorizeBasics(t *testing.T) {
	ds := vectorizeSmall(t)
	for _, d := range ds.Docs {
		if d.Vec.IsZero() {
			t.Fatalf("doc %d has zero vector", d.ID)
		}
		if d.Vec.Len() > vsm.MaxDocumentTerms {
			t.Fatalf("doc %d has %d terms", d.ID, d.Vec.Len())
		}
		if n := d.Vec.Norm(); n < 0.999 || n > 1.001 {
			t.Fatalf("doc %d not normalized: %v", d.ID, n)
		}
	}
	if ds.Stats.N() != len(ds.Docs) {
		t.Errorf("stats N = %d, docs = %d", ds.Stats.N(), len(ds.Docs))
	}
}

// TestCategorySeparability is the load-bearing property of the substitution:
// pages must be more similar within a second-level category than across
// top-level categories, with siblings in between.
func TestCategorySeparability(t *testing.T) {
	ds := vectorizeSmall(t)
	var sameSub, sameTop, cross float64
	var nSub, nTop, nCross int
	for i := 0; i < len(ds.Docs); i++ {
		for j := i + 1; j < len(ds.Docs); j++ {
			a, b := ds.Docs[i], ds.Docs[j]
			sim := vsm.Cosine(a.Vec, b.Vec)
			switch {
			case a.Cat == b.Cat:
				sameSub += sim
				nSub++
			case a.Cat.Top == b.Cat.Top:
				sameTop += sim
				nTop++
			default:
				cross += sim
				nCross++
			}
		}
	}
	avgSub := sameSub / float64(nSub)
	avgTop := sameTop / float64(nTop)
	avgCross := cross / float64(nCross)
	t.Logf("avg cosine: same-sub %.3f, same-top %.3f, cross %.3f", avgSub, avgTop, avgCross)
	if !(avgSub > avgTop && avgTop > avgCross) {
		t.Errorf("separability violated: sub %.3f, top %.3f, cross %.3f", avgSub, avgTop, avgCross)
	}
	if avgSub < avgCross+0.05 {
		t.Errorf("within-category similarity too close to cross-category: %.3f vs %.3f", avgSub, avgCross)
	}
}

func TestSplit(t *testing.T) {
	ds := vectorizeSmall(t)
	train, test := ds.Split(42, 30)
	if len(train) != 30 || len(test) != len(ds.Docs)-30 {
		t.Fatalf("split sizes %d/%d", len(train), len(test))
	}
	seen := map[int]bool{}
	for _, d := range append(append([]Document{}, train...), test...) {
		if seen[d.ID] {
			t.Fatalf("doc %d appears twice", d.ID)
		}
		seen[d.ID] = true
	}
	// Deterministic given the seed.
	train2, _ := ds.Split(42, 30)
	for i := range train {
		if train[i].ID != train2[i].ID {
			t.Fatal("split not deterministic")
		}
	}
	// Oversized nTrain is clamped.
	all, none := ds.Split(1, len(ds.Docs)+10)
	if len(all) != len(ds.Docs) || len(none) != 0 {
		t.Errorf("clamped split sizes %d/%d", len(all), len(none))
	}
}

func TestCategoryEnumeration(t *testing.T) {
	ds := vectorizeSmall(t)
	cfg := smallConfig()
	tops := ds.TopCategories()
	if len(tops) != cfg.TopCategories {
		t.Errorf("TopCategories = %d, want %d", len(tops), cfg.TopCategories)
	}
	for _, c := range tops {
		if c.Sub != -1 {
			t.Errorf("top category %v has Sub set", c)
		}
	}
	subs := ds.SubCategories()
	if len(subs) != cfg.TopCategories*cfg.SubPerTop {
		t.Errorf("SubCategories = %d, want %d", len(subs), cfg.TopCategories*cfg.SubPerTop)
	}
}

func TestLoadDirectory(t *testing.T) {
	root := t.TempDir()
	write := func(rel, content string) {
		path := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("arts/painting1.html", "<html><body>painting museum gallery exhibition canvas</body></html>")
	write("arts/painting2.html", "<html><body>museum gallery sculpture exhibition artist</body></html>")
	write("sports/modern/soccer.txt", "soccer football goal match league players")
	write("sports/modern/tennis.txt", "tennis racket court match tournament players")
	write("sports/ignored.bin", "not a document")

	ds, err := LoadDirectory(root, text.NewPipeline())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Docs) != 4 {
		t.Fatalf("loaded %d docs, want 4", len(ds.Docs))
	}
	tops := map[int]int{}
	for _, d := range ds.Docs {
		tops[d.Cat.Top]++
		if d.Vec.IsZero() {
			t.Errorf("doc %d has zero vector", d.ID)
		}
	}
	if tops[0] != 2 || tops[1] != 2 {
		t.Errorf("category distribution %v", tops)
	}
}

func TestLoadDirectoryErrors(t *testing.T) {
	if _, err := LoadDirectory(filepath.Join(t.TempDir(), "missing"), text.NewPipeline()); err == nil {
		t.Error("expected error for missing root")
	}
	empty := t.TempDir()
	if _, err := LoadDirectory(empty, text.NewPipeline()); err == nil {
		t.Error("expected error for empty root")
	}
}
