package corpus

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"mmprofile/internal/text"
	"mmprofile/internal/vsm"
)

// LoadDirectory builds a dataset from real documents on disk, so the
// library can be used beyond the synthetic benchmark. Each immediate
// sub-directory of root is treated as one top-level category and every
// .html/.htm/.txt file beneath it as one page of that category (nested
// sub-directories of a category directory become its second-level
// categories). Category labels are assigned in lexicographic directory
// order for determinism.
func LoadDirectory(root string, p *text.Pipeline) (*Dataset, error) {
	catDirs, err := sortedSubdirs(root)
	if err != nil {
		return nil, err
	}
	if len(catDirs) == 0 {
		return nil, fmt.Errorf("corpus: no category directories under %s", root)
	}

	var termLists [][]string
	var cats []Category
	stats := vsm.NewStats()

	for top, dir := range catDirs {
		subDirs, err := sortedSubdirs(filepath.Join(root, dir))
		if err != nil {
			return nil, err
		}
		// Files directly in the category directory belong to sub-category 0;
		// each nested directory gets its own sub-category id after that.
		groups := append([]string{""}, subDirs...)
		for gi, g := range groups {
			files, err := docFiles(filepath.Join(root, dir, g))
			if err != nil {
				return nil, err
			}
			for _, f := range files {
				raw, err := os.ReadFile(f)
				if err != nil {
					return nil, fmt.Errorf("corpus: reading %s: %w", f, err)
				}
				terms := p.Terms(string(raw))
				if len(terms) == 0 {
					continue
				}
				stats.Add(terms)
				termLists = append(termLists, terms)
				cats = append(cats, Category{Top: top, Sub: gi})
			}
		}
	}
	if len(termLists) == 0 {
		return nil, fmt.Errorf("corpus: no documents found under %s", root)
	}

	w := vsm.Bel{Stats: stats}
	ds := &Dataset{Stats: stats, Docs: make([]Document, len(termLists))}
	for i, terms := range termLists {
		ds.Docs[i] = Document{ID: i, Cat: cats[i], Vec: vsm.DocumentVector(terms, w)}
	}
	return ds, nil
}

func sortedSubdirs(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("corpus: reading %s: %w", dir, err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

func docFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("corpus: reading %s: %w", dir, err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		switch strings.ToLower(filepath.Ext(e.Name())) {
		case ".html", ".htm", ".txt":
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(out)
	return out, nil
}
