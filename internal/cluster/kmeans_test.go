package cluster

import (
	"math/rand"
	"testing"

	"mmprofile/internal/filter"
	"mmprofile/internal/vsm"
)

func vec(pairs ...any) vsm.Vector {
	m := map[string]float64{}
	for i := 0; i < len(pairs); i += 2 {
		m[pairs[i].(string)] = pairs[i+1].(float64)
	}
	return vsm.FromMap(m).Normalized()
}

// threeTopics builds documents in three clean lexical groups with noise.
func threeTopics(rng *rand.Rand, perTopic int) []vsm.Vector {
	topics := [][]string{
		{"cat", "dog", "pet", "fur"},
		{"stock", "bond", "market", "yield"},
		{"guitar", "piano", "chord", "melody"},
	}
	var docs []vsm.Vector
	for _, vocab := range topics {
		for i := 0; i < perTopic; i++ {
			m := map[string]float64{}
			for _, w := range vocab {
				if rng.Float64() < 0.8 {
					m[w] = 0.5 + rng.Float64()
				}
			}
			m["noise"+string(rune('a'+rng.Intn(6)))] = 0.2 * rng.Float64()
			docs = append(docs, vsm.FromMap(m).Normalized())
		}
	}
	return docs
}

func TestKMeansFindsTopics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	km := NewKMeans(KMeansOptions{K: 3, Seed: 1})
	for _, d := range threeTopics(rng, 15) {
		km.Observe(d, filter.Relevant)
	}
	km.Flush()
	if km.ProfileSize() != 3 {
		t.Fatalf("centroids = %d", km.ProfileSize())
	}
	// Each topic probe must hit some centroid strongly, and the three
	// probes must prefer three distinct centroids.
	probes := []vsm.Vector{
		vec("cat", 1.0, "dog", 1.0),
		vec("stock", 1.0, "bond", 1.0),
		vec("guitar", 1.0, "piano", 1.0),
	}
	seen := map[int]bool{}
	for _, p := range probes {
		if s := km.Score(p); s < 0.6 {
			t.Errorf("probe scored only %v", s)
		}
		best, bestIdx := -1.0, -1
		for j, c := range km.ProfileVectors() {
			if s := vsm.Cosine(c, p); s > best {
				best, bestIdx = s, j
			}
		}
		seen[bestIdx] = true
	}
	if len(seen) != 3 {
		t.Errorf("probes mapped to %d distinct centroids", len(seen))
	}
}

func TestKMeansIgnoresNegativesAndZero(t *testing.T) {
	km := NewKMeans(KMeansOptions{Seed: 1})
	km.Observe(vec("cat", 1.0), filter.NotRelevant)
	km.Observe(vsm.Vector{}, filter.Relevant)
	km.Flush()
	if km.ProfileSize() != 0 {
		t.Errorf("profile = %d from negatives only", km.ProfileSize())
	}
	if km.Score(vec("cat", 1.0)) != 0 {
		t.Error("empty profile scored non-zero")
	}
}

func TestKMeansAutoK(t *testing.T) {
	cases := map[int]int{1: 1, 2: 1, 8: 2, 50: 5, 200: 10}
	for n, want := range cases {
		if got := autoK(n); got != want {
			t.Errorf("autoK(%d) = %d, want %d", n, got, want)
		}
	}
	rng := rand.New(rand.NewSource(2))
	km := NewKMeans(KMeansOptions{Seed: 2}) // K auto
	docs := threeTopics(rng, 10)
	for _, d := range docs {
		km.Observe(d, filter.Relevant)
	}
	km.Flush()
	if km.ProfileSize() < 1 || km.ProfileSize() > len(docs) {
		t.Errorf("auto K produced %d centroids", km.ProfileSize())
	}
}

func TestKMeansKLargerThanData(t *testing.T) {
	km := NewKMeans(KMeansOptions{K: 10, Seed: 3})
	km.Observe(vec("cat", 1.0), filter.Relevant)
	km.Observe(vec("dog", 1.0), filter.Relevant)
	km.Flush()
	if km.ProfileSize() > 2 {
		t.Errorf("more centroids (%d) than documents", km.ProfileSize())
	}
}

func TestKMeansDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	docs := threeTopics(rng, 12)
	build := func() []vsm.Vector {
		km := NewKMeans(KMeansOptions{K: 3, Seed: 9})
		for _, d := range docs {
			km.Observe(d, filter.Relevant)
		}
		km.Flush()
		return km.ProfileVectors()
	}
	a, b := build(), build()
	for i := range a {
		if vsm.Cosine(a[i], b[i]) < 1-1e-12 {
			t.Fatal("same seed produced different centroids")
		}
	}
}

func TestKMeansReset(t *testing.T) {
	km := NewKMeans(KMeansOptions{Seed: 1})
	km.Observe(vec("cat", 1.0), filter.Relevant)
	km.Flush()
	km.Reset()
	if km.ProfileSize() != 0 {
		t.Error("Reset incomplete")
	}
}
