// Package cluster implements offline (batch) profile construction by
// spherical k-means, the style of clustering the paper rules out for
// filtering environments because it "requires all data to be stored and
// available" (Section 1.2). It exists as an upper-bound baseline: MM
// builds its clusters in one incremental pass; k-means sees every judged
// document at once and iterates to convergence. Comparing the two
// quantifies what MM's single-pass operation actually costs.
package cluster

import (
	"math/rand"

	"mmprofile/internal/filter"
	"mmprofile/internal/vsm"
)

// KMeansOptions configures batch profile construction.
type KMeansOptions struct {
	// K is the number of centroids. K ≤ 0 selects K automatically as
	// ⌈√(n/2)⌉ (a standard rule of thumb), capped at n.
	K int
	// MaxIter bounds Lloyd iterations (default 25).
	MaxIter int
	// MaxTerms caps each centroid's term count (default 100, the paper's
	// vector size).
	MaxTerms int
	// Seed makes initialization deterministic.
	Seed int64
}

// KMeans is a batch-built profile: it buffers every judged document and
// clusters the relevant ones with spherical k-means when Flush is called
// (the evaluator calls Flush when training completes, the same hook batch
// Rocchio uses). Negative documents are ignored — like NRN, the batch
// profile models only relevant concepts. Implements filter.Learner and
// eval.Flusher.
type KMeans struct {
	opts      KMeansOptions
	buffered  []vsm.Vector
	centroids []vsm.Vector
}

func init() {
	filter.Register("KMeans", func() filter.Learner {
		return NewKMeans(KMeansOptions{Seed: 1})
	})
}

// NewKMeans returns an empty batch-clustering profile.
func NewKMeans(opts KMeansOptions) *KMeans {
	if opts.MaxIter <= 0 {
		opts.MaxIter = 25
	}
	if opts.MaxTerms <= 0 {
		opts.MaxTerms = vsm.MaxDocumentTerms
	}
	return &KMeans{opts: opts}
}

// Name implements filter.Learner.
func (k *KMeans) Name() string { return "KMeans" }

// Observe implements filter.Learner: relevant documents are buffered for
// the batch pass.
func (k *KMeans) Observe(v vsm.Vector, fd filter.Feedback) {
	if fd != filter.Relevant || v.IsZero() {
		return
	}
	k.buffered = append(k.buffered, v.Clone())
}

// Flush runs the clustering over everything buffered so far and replaces
// the centroid set. Buffered documents are retained (batch algorithms
// keep all data — that is exactly their cost).
func (k *KMeans) Flush() {
	if len(k.buffered) == 0 {
		return
	}
	kk := k.opts.K
	if kk <= 0 {
		kk = autoK(len(k.buffered))
	}
	if kk > len(k.buffered) {
		kk = len(k.buffered)
	}
	k.centroids = sphericalKMeans(k.buffered, kk, k.opts.MaxIter, k.opts.MaxTerms, k.opts.Seed)
}

// autoK is the ⌈√(n/2)⌉ rule of thumb.
func autoK(n int) int {
	k := 1
	for k*k < n/2 {
		k++
	}
	return k
}

// Score implements filter.Learner: max cosine over centroids.
func (k *KMeans) Score(v vsm.Vector) float64 {
	best := 0.0
	for _, c := range k.centroids {
		if s := vsm.Cosine(c, v); s > best {
			best = s
		}
	}
	return best
}

// ProfileSize implements filter.Learner.
func (k *KMeans) ProfileSize() int { return len(k.centroids) }

// ProfileVectors implements filter.VectorSource.
func (k *KMeans) ProfileVectors() []vsm.Vector {
	out := make([]vsm.Vector, len(k.centroids))
	for i, c := range k.centroids {
		out[i] = c.Clone()
	}
	return out
}

// Reset implements filter.Learner.
func (k *KMeans) Reset() {
	k.buffered = nil
	k.centroids = nil
}

// sphericalKMeans clusters unit vectors by cosine similarity: k-means++-
// style seeding, then Lloyd iterations with centroid renormalization.
func sphericalKMeans(docs []vsm.Vector, k, maxIter, maxTerms int, seed int64) []vsm.Vector {
	rng := rand.New(rand.NewSource(seed))

	// Seeding: first centroid uniform, then proportional to (1 − best
	// similarity) — the spherical analogue of k-means++ distance weighting.
	centroids := make([]vsm.Vector, 0, k)
	centroids = append(centroids, docs[rng.Intn(len(docs))].Clone())
	for len(centroids) < k {
		weights := make([]float64, len(docs))
		var total float64
		for i, d := range docs {
			best := 0.0
			for _, c := range centroids {
				if s := vsm.Cosine(c, d); s > best {
					best = s
				}
			}
			w := 1 - best
			if w < 0 {
				w = 0
			}
			weights[i] = w
			total += w
		}
		if total == 0 {
			// All documents identical to some centroid; duplicate one.
			centroids = append(centroids, docs[rng.Intn(len(docs))].Clone())
			continue
		}
		u := rng.Float64() * total
		for i, w := range weights {
			u -= w
			if u <= 0 {
				centroids = append(centroids, docs[i].Clone())
				break
			}
		}
	}

	assign := make([]int, len(docs))
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, d := range docs {
			best, bestIdx := -1.0, 0
			for j, c := range centroids {
				if s := vsm.Cosine(c, d); s > best {
					best, bestIdx = s, j
				}
			}
			if assign[i] != bestIdx {
				assign[i] = bestIdx
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids as normalized member sums.
		sums := make([]vsm.Vector, len(centroids))
		counts := make([]int, len(centroids))
		for i, d := range docs {
			j := assign[i]
			sums[j] = vsm.Combine(sums[j], 1, d, 1)
			counts[j]++
		}
		for j := range centroids {
			if counts[j] == 0 {
				// Empty cluster: reseed on a random document.
				centroids[j] = docs[rng.Intn(len(docs))].Clone()
				continue
			}
			centroids[j] = sums[j].Truncated(maxTerms).Normalized()
		}
	}
	return centroids
}
