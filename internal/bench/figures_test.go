package bench

import (
	"strings"
	"testing"
)

// fullHarness runs at the paper's scale (900 pages, 500 training docs,
// 4 seeded runs); shared across shape tests because the dataset dominates
// setup cost.
var fullHarness = NewHarness(DefaultConfig())

// quickHarness runs the scaled-down configuration for the expensive
// curve-based experiments.
var quickHarness = NewHarness(QuickConfig())

func TestFig4Shape(t *testing.T) {
	fig := fullHarness.Fig4()
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	// The paper's headline result: MM > RG > RI on average, and the MM
	// advantage grows with the number of interest categories.
	mm, rg, ri := fig.MeanY("MM"), fig.MeanY("RG10"), fig.MeanY("RI")
	if !(mm > rg && rg > ri) {
		t.Errorf("ordering violated: MM=%.3f RG=%.3f RI=%.3f", mm, rg, ri)
	}
	mmS, rgS := fig.SeriesByLabel("MM"), fig.SeriesByLabel("RG10")
	gapNarrow := mmS.Y[0] - rgS.Y[0]
	gapWide := mmS.Y[2] - rgS.Y[2]
	if gapWide <= gapNarrow {
		t.Errorf("MM advantage did not grow with interest breadth: %0.3f -> %0.3f", gapNarrow, gapWide)
	}
	for _, s := range fig.Series {
		for i, y := range s.Y {
			if y <= 0 || y > 1 {
				t.Errorf("series %s point %d out of range: %v", s.Label, i, y)
			}
		}
	}
}

func TestFig5Shape(t *testing.T) {
	fig := fullHarness.Fig5()
	mm, rg, ri := fig.MeanY("MM"), fig.MeanY("RG10"), fig.MeanY("RI")
	if !(mm > rg && rg > ri) {
		t.Errorf("second-level ordering violated: MM=%.3f RG=%.3f RI=%.3f", mm, rg, ri)
	}
	// MM must suffer the smallest drop from the top-level workload.
	top := fullHarness.Fig4()
	mmDrop := (top.MeanY("MM") - mm) / top.MeanY("MM")
	rgDrop := (top.MeanY("RG10") - rg) / top.MeanY("RG10")
	if mmDrop >= rgDrop {
		t.Errorf("MM relative drop %.3f not below RG's %.3f", mmDrop, rgDrop)
	}
}

func TestThresholdFiguresShape(t *testing.T) {
	prec, size := fullHarness.ThresholdFigures()
	for _, s := range size.Series {
		// Profile size grows monotonically with θ.
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1] {
				t.Errorf("size series %s not monotone at θ=%v: %v < %v",
					s.Label, s.X[i], s.Y[i], s.Y[i-1])
			}
		}
	}
	// At fixed θ=0.15, size grows with interest breadth.
	i15 := 3 // index of θ=0.15 in the sweep
	if !(size.Series[0].Y[i15] < size.Series[1].Y[i15] &&
		size.Series[1].Y[i15] < size.Series[2].Y[i15]) {
		t.Errorf("size at θ=0.15 not increasing with breadth: %v %v %v",
			size.Series[0].Y[i15], size.Series[1].Y[i15], size.Series[2].Y[i15])
	}
	// Precision at the paper's default θ=0.15 clearly beats θ=0, and the
	// curve levels out (no large gain from 0.15 to 0.2).
	for _, s := range prec.Series {
		if s.Y[i15] <= s.Y[0] {
			t.Errorf("precision series %s: θ=0.15 (%v) not above θ=0 (%v)", s.Label, s.Y[i15], s.Y[0])
		}
		if s.Y[4]-s.Y[i15] > 0.05 {
			t.Errorf("precision series %s still rising sharply past 0.15: %v -> %v",
				s.Label, s.Y[i15], s.Y[4])
		}
	}
}

func TestBatchShape(t *testing.T) {
	fig := fullHarness.BatchFigure()
	batch, ri, mm := fig.MeanY("Batch"), fig.MeanY("RI"), fig.MeanY("MM")
	if batch <= ri {
		t.Errorf("batch Rocchio (%.3f) not above RI (%.3f)", batch, ri)
	}
	if mm <= batch {
		t.Errorf("MM (%.3f) not above batch Rocchio (%.3f) on average", mm, batch)
	}
}

func TestLearningRateShape(t *testing.T) {
	fig := fullHarness.LearningRateFigure()
	mm := fig.SeriesByLabel("MM")
	if mm.Y[len(mm.Y)-1] <= mm.Y[0] {
		t.Error("MM did not learn")
	}
	// Levels off: the second half of training gains far less than the
	// first half.
	half := len(mm.Y) / 2
	firstHalfGain := mm.Y[half] - mm.Y[0]
	secondHalfGain := mm.Y[len(mm.Y)-1] - mm.Y[half]
	if secondHalfGain > firstHalfGain/2 {
		t.Errorf("no level-off: first-half gain %.3f, second-half %.3f", firstHalfGain, secondHalfGain)
	}
	if fig.FinalY("MM") <= fig.FinalY("RI") {
		t.Errorf("MM final (%.3f) not above RI final (%.3f)", fig.FinalY("MM"), fig.FinalY("RI"))
	}
}

func TestShiftFigureStructure(t *testing.T) {
	fig := quickHarness.Fig8()
	if len(fig.Series) != 4 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	cfg := quickHarness.Cfg
	wantPoints := cfg.ShiftStream/cfg.CurveEvery + 1
	for _, s := range fig.Series {
		if len(s.X) != wantPoints {
			t.Errorf("series %s has %d points, want %d", s.Label, len(s.X), wantPoints)
		}
		if s.X[0] != 0 || s.X[len(s.X)-1] != float64(cfg.ShiftStream) {
			t.Errorf("series %s x-range [%v,%v]", s.Label, s.X[0], s.X[len(s.X)-1])
		}
	}
	// MM's precision drops at the shift and recovers: the final value must
	// clearly exceed the first post-shift checkpoint.
	mm := fig.SeriesByLabel("MM")
	shiftIdx := cfg.ShiftAt/cfg.CurveEvery + 1
	if mm.Y[len(mm.Y)-1] <= mm.Y[shiftIdx] {
		t.Errorf("MM did not recover after shift: %.3f -> %.3f", mm.Y[shiftIdx], mm.Y[len(mm.Y)-1])
	}
}

func TestCompleteShiftDecayHelps(t *testing.T) {
	// The paper's core adaptability claim (Figure 9): with every past
	// judgment invalidated, MM with decay ends clearly above MMND.
	fig := quickHarness.Fig9()
	if fig.FinalY("MM") <= fig.FinalY("MMND") {
		t.Errorf("decay did not help on complete shift: MM %.3f vs MMND %.3f",
			fig.FinalY("MM"), fig.FinalY("MMND"))
	}
}

func TestAddInterestDecayHarmless(t *testing.T) {
	// Figure 10: when no interest is dropped, decay costs nothing — MM and
	// MMND must track each other closely.
	fig := quickHarness.Fig10()
	mm, mmnd := fig.SeriesByLabel("MM"), fig.SeriesByLabel("MMND")
	var maxGap float64
	for i := range mm.Y {
		if gap := mmnd.Y[i] - mm.Y[i]; gap > maxGap {
			maxGap = gap
		}
	}
	if maxGap > 0.08 {
		t.Errorf("decay hurt the add-interest scenario by up to %.3f", maxGap)
	}
}

func TestWriteTextAndCSV(t *testing.T) {
	fig := Figure{
		ID: "figX", Title: "demo", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Label: "a", X: []float64{1, 2}, Y: []float64{0.5, 0.75}},
			{Label: "b", X: []float64{1, 2}, Y: []float64{0.25}},
		},
	}
	var txt strings.Builder
	fig.WriteText(&txt)
	for _, want := range []string{"figX", "demo", "a", "b", "0.7500", "-"} {
		if !strings.Contains(txt.String(), want) {
			t.Errorf("WriteText missing %q in:\n%s", want, txt.String())
		}
	}
	var csv strings.Builder
	fig.WriteCSV(&csv)
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 || lines[0] != "x,a,b" {
		t.Errorf("WriteCSV:\n%s", csv.String())
	}
	if !strings.HasPrefix(lines[2], "2,0.750000,") {
		t.Errorf("CSV row: %q", lines[2])
	}
}

func TestFigureAccessors(t *testing.T) {
	fig := Figure{Series: []Series{{Label: "a", X: []float64{1, 2}, Y: []float64{0.2, 0.4}}}}
	if fig.SeriesByLabel("missing") != nil {
		t.Error("SeriesByLabel returned a phantom series")
	}
	if got := fig.FinalY("a"); got != 0.4 {
		t.Errorf("FinalY = %v", got)
	}
	if got := fig.MeanY("a"); got < 0.299 || got > 0.301 {
		t.Errorf("MeanY = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("FinalY on missing series did not panic")
		}
	}()
	fig.FinalY("missing")
}

func TestInterestCount(t *testing.T) {
	h := NewHarness(DefaultConfig())
	if got := h.interestCount(10, true); got != 1 {
		t.Errorf("10%% of 10 top categories = %d", got)
	}
	if got := h.interestCount(30, true); got != 3 {
		t.Errorf("30%% = %d", got)
	}
	if got := h.interestCount(20, false); got != 20 {
		t.Errorf("20%% of 100 sub categories = %d", got)
	}
	if got := h.interestCount(1, true); got != 1 {
		t.Errorf("rounding floor = %d", got)
	}
}

func TestNewLearnerPanicsOnUnknown(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	fullHarness.newLearner("bogus")
}
