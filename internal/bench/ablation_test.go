package bench

import (
	"strings"
	"testing"
)

func TestEtaSweepShape(t *testing.T) {
	fig := fullHarness.EtaSweepFigure()
	s := fig.SeriesByLabel("MM")
	if s == nil || len(s.Y) != 8 {
		t.Fatalf("series: %+v", fig.Series)
	}
	// The paper's observation: η in [0.1, 0.3] performs well with little
	// difference; the memoryless extreme (η = 1) is worse than the paper's
	// default.
	var def float64
	for i, x := range s.X {
		if x == 0.2 {
			def = s.Y[i]
		}
	}
	if s.Y[len(s.Y)-1] >= def {
		t.Errorf("memoryless η=1 (%v) not below η=0.2 (%v)", s.Y[len(s.Y)-1], def)
	}
	lo, hi := s.Y[2], s.Y[2] // η ∈ {0.1, 0.2, 0.3} band
	for i := 2; i <= 4; i++ {
		if s.Y[i] < lo {
			lo = s.Y[i]
		}
		if s.Y[i] > hi {
			hi = s.Y[i]
		}
	}
	if hi-lo > 0.06 {
		t.Errorf("η band [0.1,0.3] not flat: spread %v", hi-lo)
	}
}

func TestGroupSizeShape(t *testing.T) {
	fig := fullHarness.GroupSizeFigure()
	s := fig.SeriesByLabel("Rocchio")
	if s == nil || len(s.Y) < 3 {
		t.Fatalf("series: %+v", fig.Series)
	}
	// Allan's claim at the granularity our corpus supports: group sizes
	// ≥ 10 beat purely incremental (size 1).
	ri := s.Y[0]
	var rg10 float64
	for i, x := range s.X {
		if x == 10 {
			rg10 = s.Y[i]
		}
	}
	if rg10 <= ri {
		t.Errorf("RG(10) (%v) not above RI (%v)", rg10, ri)
	}
	// The final point is batch (group = whole training set).
	if s.X[len(s.X)-1] != float64(fullHarness.Cfg.TrainDocs) {
		t.Errorf("batch point missing: x = %v", s.X[len(s.X)-1])
	}
}

func TestMergeAblationShape(t *testing.T) {
	prec, size := fullHarness.MergeAblationFigure()
	// Merging must produce profiles no larger than the unmerged variant at
	// every interest range.
	with, without := size.SeriesByLabel("MM"), size.SeriesByLabel("MM-nomerge")
	for i := range with.Y {
		if with.Y[i] > without.Y[i] {
			t.Errorf("merge increased profile size at %v%%: %v vs %v",
				with.X[i], with.Y[i], without.Y[i])
		}
	}
	// And the precision cost of merging is small.
	p1, p2 := prec.SeriesByLabel("MM"), prec.SeriesByLabel("MM-nomerge")
	for i := range p1.Y {
		if p2.Y[i]-p1.Y[i] > 0.05 {
			t.Errorf("merging cost too much precision at %v%%: %v vs %v",
				p1.X[i], p1.Y[i], p2.Y[i])
		}
	}
}

func TestDecayVariantShape(t *testing.T) {
	fig := fullHarness.DecayVariantFigure()
	weighted := fig.SeriesByLabel("sim-weighted")
	plain := fig.SeriesByLabel("plain")
	if weighted == nil || plain == nil {
		t.Fatalf("series: %+v", fig.Series)
	}
	// The design decision's justification: at θ = 0 the plain rule churns
	// the single vector and loses badly; in the paper's operating range the
	// two are equivalent.
	if weighted.Y[0] <= plain.Y[0] {
		t.Errorf("sim-weighted decay (%v) not above plain (%v) at θ=0",
			weighted.Y[0], plain.Y[0])
	}
	for i := 1; i < len(weighted.Y); i++ {
		if d := plain.Y[i] - weighted.Y[i]; d > 0.05 || d < -0.05 {
			t.Errorf("variants diverge at θ=%v: %v vs %v", weighted.X[i], weighted.Y[i], plain.Y[i])
		}
	}
}

func TestNoiseShape(t *testing.T) {
	fig := fullHarness.NoiseFigure()
	for _, label := range []string{"MM", "RG10", "RI"} {
		s := fig.SeriesByLabel(label)
		if s == nil || len(s.Y) != 5 {
			t.Fatalf("series %s: %+v", label, fig.Series)
		}
		// Heavy noise must hurt relative to clean feedback.
		if s.Y[4] >= s.Y[0] {
			t.Errorf("%s: 30%% noise (%v) not below clean (%v)", label, s.Y[4], s.Y[0])
		}
	}
	// MM keeps its lead under light noise (≤5%); beyond that the finding —
	// recorded in EXPERIMENTS.md — is that single-vector averaging is the
	// more noise-robust representation, so no ordering is asserted there.
	mm, rg := fig.SeriesByLabel("MM"), fig.SeriesByLabel("RG10")
	for i := 0; i <= 1; i++ {
		if mm.Y[i] <= rg.Y[i] {
			t.Errorf("MM (%v) not above RG10 (%v) at flip rate %v", mm.Y[i], rg.Y[i], mm.X[i])
		}
	}
}

func TestSignificance(t *testing.T) {
	cs := fullHarness.Significance("MM", "RI", 8)
	if len(cs) != 3 {
		t.Fatalf("comparisons = %d", len(cs))
	}
	for _, c := range cs {
		if c.P < 0 || c.P > 1 {
			t.Errorf("%s: p = %v", c.Workload, c.P)
		}
		if c.Runs != 8 {
			t.Errorf("runs = %d", c.Runs)
		}
	}
	// At the broadest workload the MM–RI gap is large and consistent; it
	// must come out significant.
	last := cs[len(cs)-1]
	if last.MeanDiff <= 0 || last.P >= 0.05 {
		t.Errorf("30%% workload not significant: %+v", last)
	}
	var out strings.Builder
	WriteComparisons(&out, cs)
	if !strings.Contains(out.String(), "MM vs RI") {
		t.Errorf("report:\n%s", out.String())
	}
	WriteComparisons(&out, nil) // no-op
}

func TestBatchClusterShape(t *testing.T) {
	prec, size := quickHarness.BatchClusterFigure()
	mm, km := prec.SeriesByLabel("MM"), prec.SeriesByLabel("KMeans")
	if mm == nil || km == nil {
		t.Fatalf("series: %+v", prec.Series)
	}
	// Equal cluster budgets by construction.
	ms, ks := size.SeriesByLabel("MM"), size.SeriesByLabel("KMeans")
	for i := range ms.Y {
		if ms.Y[i] != ks.Y[i] {
			t.Errorf("cluster budgets differ at %v%%: %v vs %v", ms.X[i], ms.Y[i], ks.Y[i])
		}
	}
	// The single-pass penalty must be bounded: MM stays within 0.12 niap
	// of the batch upper bound everywhere.
	for i := range mm.Y {
		if km.Y[i]-mm.Y[i] > 0.12 {
			t.Errorf("single-pass penalty too large at %v%%: MM %v vs KMeans %v",
				mm.X[i], mm.Y[i], km.Y[i])
		}
	}
}

func TestScaleFigureShape(t *testing.T) {
	fig := quickHarness.ScaleFigure([]int{25, 75})
	idx, brute := fig.SeriesByLabel("index"), fig.SeriesByLabel("brute-force")
	if idx == nil || brute == nil || len(idx.Y) != 2 {
		t.Fatalf("series: %+v", fig.Series)
	}
	// At the larger population the index must clearly beat the scan (it
	// wins by 5–25× in practice; 1.5× keeps the test robust on loaded
	// machines).
	if idx.Y[1]*1.5 > brute.Y[1] {
		t.Errorf("index (%v µs) not clearly faster than brute force (%v µs)", idx.Y[1], brute.Y[1])
	}
	for _, s := range fig.Series {
		for i, y := range s.Y {
			if y <= 0 {
				t.Errorf("%s point %d non-positive: %v", s.Label, i, y)
			}
		}
	}
}

func TestPruneFigureShape(t *testing.T) {
	thetas := []float64{0.1, 0.3}
	fig := quickHarness.PruneFigure([]int{2000}, thetas)
	scanned := fig.SeriesByLabel("scanned@2k")
	skipped := fig.SeriesByLabel("skipped@2k")
	perDoc := fig.SeriesByLabel("us-per-doc@2k")
	if scanned == nil || skipped == nil || perDoc == nil {
		t.Fatalf("series: %+v", fig.Series)
	}
	for _, s := range []*Series{scanned, skipped, perDoc} {
		if len(s.X) != len(thetas) || len(s.Y) != len(thetas) {
			t.Fatalf("%s: %d points, want %d", s.Label, len(s.Y), len(thetas))
		}
		for i, x := range s.X {
			if x != thetas[i] {
				t.Errorf("%s X[%d] = %v, want %v", s.Label, i, x, thetas[i])
			}
		}
	}
	// Raising θ can only tighten the pruning bound, so scans fall (or hold)
	// while skips rise (or hold).
	if scanned.Y[1] > scanned.Y[0] {
		t.Errorf("scanned grew with θ: %v -> %v", scanned.Y[0], scanned.Y[1])
	}
	if skipped.Y[1] < skipped.Y[0] {
		t.Errorf("skipped shrank with θ: %v -> %v", skipped.Y[0], skipped.Y[1])
	}

	// The unpruned twin scans at least as much and skips nothing.
	offCfg := QuickConfig()
	offCfg.PruneOff = true
	offFig := NewHarness(offCfg).PruneFigure([]int{2000}, thetas)
	offScanned, offSkipped := offFig.SeriesByLabel("scanned@2k"), offFig.SeriesByLabel("skipped@2k")
	if offScanned == nil || offSkipped == nil {
		t.Fatalf("prune-off series: %+v", offFig.Series)
	}
	for i := range thetas {
		if offSkipped.Y[i] != 0 {
			t.Errorf("prune-off skipped blocks at θ=%v: %v", thetas[i], offSkipped.Y[i])
		}
		if offScanned.Y[i] < scanned.Y[i] {
			t.Errorf("prune-off scanned %v < pruned %v at θ=%v", offScanned.Y[i], scanned.Y[i], thetas[i])
		}
	}
}

func TestPubsubFigureShape(t *testing.T) {
	fig := quickHarness.PubsubFigure([]int{1, 2}, 0, 40)
	sharded, single := fig.SeriesByLabel("sharded"), fig.SeriesByLabel("1-shard")
	if sharded == nil || single == nil || len(sharded.Y) != 2 || len(single.Y) != 2 {
		t.Fatalf("series: %+v", fig.Series)
	}
	for _, s := range fig.Series {
		for i, y := range s.Y {
			if y <= 0 {
				t.Errorf("%s point %d non-positive throughput: %v", s.Label, i, y)
			}
		}
	}
}

func TestLSIFigureShape(t *testing.T) {
	fig := quickHarness.LSIFigure()
	for _, label := range []string{"MM", "LSI-MM", "LSI-NRN"} {
		s := fig.SeriesByLabel(label)
		if s == nil || len(s.Y) != 3 {
			t.Fatalf("series %s missing: %+v", label, fig.Series)
		}
		for i, y := range s.Y {
			if y <= 0.2 || y > 1 {
				t.Errorf("%s point %d out of plausible range: %v", label, i, y)
			}
		}
	}
}
