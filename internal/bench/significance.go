package bench

import (
	"fmt"
	"io"

	"mmprofile/internal/eval"
)

// Comparison is a paired significance test between two learners on one
// workload: the per-run niap samples are paired (identical corpus split,
// interests, and stream per run).
type Comparison struct {
	Workload string // e.g. "20% top-level"
	A, B     string // learner names; MeanDiff > 0 means A wins
	MeanDiff float64
	P        float64
	Runs     int
}

// Significance runs paired t-tests of learner A against learner B for
// every top-level interest range, using more repetitions than the figure
// runs (t-tests on n = 4 have little power). It answers "is the Figure 4
// gap real or seed noise?".
func (h *Harness) Significance(a, b string, runs int) []Comparison {
	if runs < 2 {
		runs = h.Cfg.Runs
	}
	var out []Comparison
	for _, pct := range interestPercentages {
		n := h.interestCount(pct, true)
		sa := make([]float64, runs)
		sb := make([]float64, runs)
		for run := 0; run < runs; run++ {
			w := h.staticWorkload(run, n, true)
			sa[run] = eval.Run(h.newLearner(a), w.user, w.stream, w.test).NIAP
			sb[run] = eval.Run(h.newLearner(b), w.user, w.stream, w.test).NIAP
		}
		res, err := eval.PairedTTest(sa, sb)
		if err != nil {
			panic(err) // lengths are equal by construction
		}
		out = append(out, Comparison{
			Workload: fmt.Sprintf("%d%% top-level", pct),
			A:        a,
			B:        b,
			MeanDiff: res.MeanDiff,
			P:        res.P,
			Runs:     runs,
		})
	}
	return out
}

// WriteComparisons renders a significance table.
func WriteComparisons(w io.Writer, cs []Comparison) {
	if len(cs) == 0 {
		return
	}
	fmt.Fprintf(w, "paired t-tests, %s vs %s (%d runs):\n", cs[0].A, cs[0].B, cs[0].Runs)
	fmt.Fprintf(w, "%16s %12s %10s %s\n", "workload", "mean-diff", "p-value", "verdict")
	for _, c := range cs {
		verdict := "not significant"
		switch {
		case c.P < 0.01:
			verdict = "significant (p<0.01)"
		case c.P < 0.05:
			verdict = "significant (p<0.05)"
		}
		fmt.Fprintf(w, "%16s %+12.4f %10.4f %s\n", c.Workload, c.MeanDiff, c.P, verdict)
	}
}
