package bench

import (
	"fmt"
	"math/rand"
	"time"

	"mmprofile/internal/core"
	"mmprofile/internal/eval"
	"mmprofile/internal/pubsub"
	"mmprofile/internal/sim"
	"mmprofile/internal/vsm"
)

// PubsubFigure measures end-to-end publish throughput through the broker's
// vectorized batch path as the publish worker count grows, for the sharded
// registry/docstore layout versus the same engine clamped to one shard.
// y is documents per second (higher is better). Subscribers are MM profiles
// trained on real feedback so the inverted-index match work per document is
// realistic; delivery queues are deliberately small so the figure measures
// the publish pipeline (vector weighting, statistics, matching, store
// insert), not subscriber consumption.
//
// On a single-core host the two series coincide within noise: the layers
// remove lock contention, which only shows once GOMAXPROCS > 1.
func (h *Harness) PubsubFigure(workers []int, shards, population int) Figure {
	if len(workers) == 0 {
		workers = []int{1, 2, 4, 8, 16}
	}
	if population <= 0 {
		population = 300
	}
	ds := h.Dataset()
	fig := Figure{
		ID:     "pubsub",
		Title:  "Broker publish throughput vs workers (docs/s, batch path)",
		XLabel: "publish workers",
		YLabel: "docs-per-sec",
	}

	rng := rand.New(rand.NewSource(h.Cfg.BaseSeed))
	train, probe := ds.Split(rng.Int63(), h.Cfg.TrainDocs)
	if len(probe) == 0 {
		probe = train
	}
	batch := make([]vsm.Vector, 0, 256)
	for len(batch) < cap(batch) {
		batch = append(batch, probe[len(batch)%len(probe)].Vec)
	}

	type profile struct {
		user    string
		learner *core.Profile
	}
	profiles := make([]profile, population)
	for i := range profiles {
		u := sim.NewUser(sim.RandomTopInterests(rng, ds, 1+rng.Intn(2))...)
		mm := core.NewDefault()
		eval.Train(mm, u, sim.Stream(rng, train, 60))
		profiles[i] = profile{user: fmt.Sprintf("u%05d", i), learner: mm}
	}

	for _, layout := range []struct {
		label  string
		shards int
	}{
		{"sharded", shards}, // 0 = GOMAXPROCS-derived default
		{"1-shard", 1},
	} {
		s := Series{Label: layout.label}
		for _, w := range workers {
			b := pubsub.New(pubsub.Options{
				Threshold:      h.Cfg.Theta,
				QueueSize:      8,
				PublishWorkers: w,
				Shards:         layout.shards,
			})
			for _, p := range profiles {
				if _, err := b.Subscribe(p.user, p.learner); err != nil {
					panic(err) // duplicate ids are a programming error here
				}
			}
			b.PublishVectorBatch(batch) // warm up interning and statistics
			const rounds = 8
			start := time.Now()
			for r := 0; r < rounds; r++ {
				b.PublishVectorBatch(batch)
			}
			elapsed := time.Since(start).Seconds()
			s.X = append(s.X, float64(w))
			s.Y = append(s.Y, float64(rounds*len(batch))/elapsed)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}
