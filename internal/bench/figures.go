package bench

import (
	"fmt"
	"math"
	"math/rand"

	"mmprofile/internal/core"
	"mmprofile/internal/corpus"
	"mmprofile/internal/eval"
	"mmprofile/internal/filter"
	"mmprofile/internal/rocchio"
	"mmprofile/internal/sim"
)

// interestPercentages are the paper's workload sizes: interests covering
// 10%, 20%, and 30% of the collection.
var interestPercentages = []int{10, 20, 30}

// thresholdSweep is the θ range of Figures 6 and 7.
var thresholdSweep = []float64{0, 0.05, 0.10, 0.15, 0.20}

// newLearner constructs a learner by name using the harness's θ/η for the
// MM variants; it panics on unknown names (fixed at compile time).
func (h *Harness) newLearner(name string) filter.Learner {
	return h.newLearnerTheta(name, h.Cfg.Theta)
}

func (h *Harness) newLearnerTheta(name string, theta float64) filter.Learner {
	opts := core.DefaultOptions()
	opts.Theta = theta
	opts.Eta = h.Cfg.Eta
	switch name {
	case "MM":
		return core.New(opts)
	case "MMND":
		opts.DisableDecay = true
		return core.New(opts)
	case "RI":
		return rocchio.NewRI()
	case "RG10":
		return rocchio.NewRG(10)
	case "RG100":
		return rocchio.NewRG(100)
	case "Batch":
		return rocchio.NewBatch()
	case "NRN":
		return rocchio.NewNRN()
	}
	panic(fmt.Sprintf("bench: unknown learner %q", name))
}

// interestCount converts a coverage percentage into a number of interest
// categories for the configured collection (e.g. 20% of 10 top-level
// categories → 2; 20% of 100 second-level categories → 20).
func (h *Harness) interestCount(pct int, topLevel bool) int {
	var total int
	if topLevel {
		total = h.Cfg.Corpus.TopCategories
	} else {
		total = h.Cfg.Corpus.TopCategories * h.Cfg.Corpus.SubPerTop
	}
	n := int(math.Round(float64(pct) / 100 * float64(total)))
	if n < 1 {
		n = 1
	}
	return n
}

// runSeed decorrelates repetitions.
func (h *Harness) runSeed(run int) int64 { return h.Cfg.BaseSeed + int64(run)*7919 }

// workload is one repetition's fixed random draw, shared by every learner
// so comparisons are paired.
type workload struct {
	user   *sim.User
	stream []corpus.Document
	test   []corpus.Document
	rng    *rand.Rand
}

// staticWorkload draws a synthetic profile of n categories plus a training
// stream and test set for repetition run.
func (h *Harness) staticWorkload(run, nInterests int, topLevel bool) workload {
	ds := h.Dataset()
	rng := rand.New(rand.NewSource(h.runSeed(run)))
	train, test := ds.Split(rng.Int63(), h.Cfg.TrainDocs)
	var cats []corpus.Category
	if topLevel {
		cats = sim.RandomTopInterests(rng, ds, nInterests)
	} else {
		cats = sim.RandomSubInterests(rng, ds, nInterests)
	}
	return workload{
		user:   sim.NewUser(cats...),
		stream: sim.Stream(rng, train, len(train)),
		test:   test,
		rng:    rng,
	}
}

// EffectivenessFigure reproduces Figures 4 and 5: average niap per learner
// across the three interest ranges, at top (Figure 4) or second (Figure 5)
// level.
func (h *Harness) EffectivenessFigure(id, title string, topLevel bool, learners []string) Figure {
	fig := Figure{
		ID:     id,
		Title:  title,
		XLabel: "pct-relevant",
		YLabel: "niap",
	}
	for _, name := range learners {
		fig.Series = append(fig.Series, Series{Label: name})
	}
	for _, pct := range interestPercentages {
		n := h.interestCount(pct, topLevel)
		sums := make([]float64, len(learners))
		for run := 0; run < h.Cfg.Runs; run++ {
			w := h.staticWorkload(run, n, topLevel)
			for li, name := range learners {
				res := eval.Run(h.newLearner(name), w.user, w.stream, w.test)
				sums[li] += res.NIAP
			}
		}
		for li := range learners {
			fig.Series[li].X = append(fig.Series[li].X, float64(pct))
			fig.Series[li].Y = append(fig.Series[li].Y, sums[li]/float64(h.Cfg.Runs))
		}
	}
	return fig
}

// Fig4 is the top-level effectiveness comparison (RI, RG(10), MM).
func (h *Harness) Fig4() Figure {
	return h.EffectivenessFigure("fig4",
		"Effectiveness, top-level categories (θ=0.15, RG group 10)",
		true, []string{"RI", "RG10", "MM"})
}

// Fig5 is the second-level effectiveness comparison.
func (h *Harness) Fig5() Figure {
	return h.EffectivenessFigure("fig5",
		"Effectiveness, second-level categories (θ=0.15, RG group 10)",
		false, []string{"RI", "RG10", "MM"})
}

// ThresholdFigures reproduces Figures 6 and 7 in one sweep: MM's precision
// and profile size as θ grows, one series per interest range (top-level).
func (h *Harness) ThresholdFigures() (precision, size Figure) {
	precision = Figure{
		ID:     "fig6",
		Title:  "Threshold effects on precision (top-level categories)",
		XLabel: "theta",
		YLabel: "niap",
	}
	size = Figure{
		ID:     "fig7",
		Title:  "Threshold effects on profile size (top-level categories)",
		XLabel: "theta",
		YLabel: "profile-vectors",
	}
	for _, pct := range interestPercentages {
		label := fmt.Sprintf("%d%%", pct)
		ps := Series{Label: label}
		ss := Series{Label: label}
		n := h.interestCount(pct, true)
		for _, theta := range thresholdSweep {
			var niapSum, sizeSum float64
			for run := 0; run < h.Cfg.Runs; run++ {
				w := h.staticWorkload(run, n, true)
				res := eval.Run(h.newLearnerTheta("MM", theta), w.user, w.stream, w.test)
				niapSum += res.NIAP
				sizeSum += float64(res.ProfileSize)
			}
			ps.X = append(ps.X, theta)
			ps.Y = append(ps.Y, niapSum/float64(h.Cfg.Runs))
			ss.X = append(ss.X, theta)
			ss.Y = append(ss.Y, sizeSum/float64(h.Cfg.Runs))
		}
		precision.Series = append(precision.Series, ps)
		size.Series = append(size.Series, ss)
	}
	return precision, size
}

// shiftLearners are the algorithms compared in the Section 5.5 experiments.
var shiftLearners = []string{"MM", "MMND", "RI", "RG100"}

// ShiftFigure reproduces one of Figures 8–11: niap learning curves through
// an interest change at ShiftAt, averaged over Runs repetitions.
func (h *Harness) ShiftFigure(id, title string,
	scenario func(*rand.Rand, *corpus.Dataset) sim.Shift) Figure {

	ds := h.Dataset()
	fig := Figure{ID: id, Title: title, XLabel: "docs-seen", YLabel: "niap"}
	curves := make(map[string][][]eval.CurvePoint)
	for run := 0; run < h.Cfg.Runs; run++ {
		rng := rand.New(rand.NewSource(h.runSeed(run)))
		train, test := ds.Split(rng.Int63(), h.Cfg.TrainDocs)
		shift := scenario(rng, ds)
		stream := sim.Stream(rng, train, h.Cfg.ShiftStream)
		for _, name := range shiftLearners {
			u := sim.NewUser()
			pts := eval.Curve(h.newLearner(name), u, stream, test, eval.CurveConfig{
				Every:  h.Cfg.CurveEvery,
				OnStep: func(step int) { shift.Apply(u, step, h.Cfg.ShiftAt) },
			})
			curves[name] = append(curves[name], pts)
		}
	}
	for _, name := range shiftLearners {
		avg := eval.AverageCurves(curves[name])
		s := Series{Label: name}
		for _, p := range avg {
			s.X = append(s.X, float64(p.Seen))
			s.Y = append(s.Y, p.NIAP)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// RecoveryTimes summarizes a shift figure the way the paper's prose does:
// per learner, the number of documents past the shift needed to regain
// 95% of shift-point precision (−1 = never within the plotted range).
func (h *Harness) RecoveryTimes(fig Figure) map[string]int {
	out := make(map[string]int, len(fig.Series))
	for _, s := range fig.Series {
		curve := make([]eval.CurvePoint, len(s.X))
		for i := range s.X {
			curve[i] = eval.CurvePoint{Seen: int(s.X[i]), NIAP: s.Y[i]}
		}
		out[s.Label] = eval.RecoveryTime(curve, h.Cfg.ShiftAt, 0.95)
	}
	return out
}

// Fig8 is the partial interest shift ({Ci,Cj} → {Ci,Ck}).
func (h *Harness) Fig8() Figure {
	return h.ShiftFigure("fig8", "Partially changing interests (RG group 100)", sim.PartialShift)
}

// Fig9 is the complete interest shift ({Ci,Cj} → {Ck,Cl}).
func (h *Harness) Fig9() Figure {
	return h.ShiftFigure("fig9", "Completely changing interests (RG group 100)", sim.CompleteShift)
}

// Fig10 is the category-addition scenario ({Ci} → {Ci,Cj}).
func (h *Harness) Fig10() Figure {
	return h.ShiftFigure("fig10", "Adding new interests (RG group 100)", sim.AddInterest)
}

// Fig11 is the category-deletion scenario ({Ci,Cj} → {Ci}).
func (h *Harness) Fig11() Figure {
	return h.ShiftFigure("fig11", "Deleting interests (RG group 100)", sim.DeleteInterest)
}

// BatchFigure reproduces the Section 5.2 in-text comparison: batch Rocchio
// lands a few points above RG(10) but below MM, across the top-level
// interest ranges.
func (h *Harness) BatchFigure() Figure {
	return h.EffectivenessFigure("batch",
		"Batch Rocchio vs incremental learners (top-level categories)",
		true, []string{"RI", "RG10", "Batch", "MM"})
}

// LearningRateFigure reproduces the Section 5.1 in-text observation: MM's
// effectiveness rises quickly, levels off around 200 documents, and is
// stable by 400–500; RI and RG stabilize slightly faster.
func (h *Harness) LearningRateFigure() Figure {
	fig := Figure{
		ID:     "learning",
		Title:  "Learning rate, 20% top-level workload",
		XLabel: "docs-seen",
		YLabel: "niap",
	}
	learners := []string{"MM", "RG10", "RI"}
	n := h.interestCount(20, true)
	curves := make(map[string][][]eval.CurvePoint)
	for run := 0; run < h.Cfg.Runs; run++ {
		w := h.staticWorkload(run, n, true)
		for _, name := range learners {
			pts := eval.Curve(h.newLearner(name), w.user, w.stream, w.test,
				eval.CurveConfig{Every: h.Cfg.CurveEvery})
			curves[name] = append(curves[name], pts)
		}
	}
	for _, name := range learners {
		avg := eval.AverageCurves(curves[name])
		s := Series{Label: name}
		for _, p := range avg {
			s.X = append(s.X, float64(p.Seen))
			s.Y = append(s.Y, p.NIAP)
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}
