package bench

import (
	"os"
	"testing"
)

func TestManualFig4(t *testing.T) {
	if os.Getenv("FIGS") == "" {
		t.Skip("set FIGS=1 to run")
	}
	h := NewHarness(DefaultConfig())
	for _, fig := range []Figure{h.Fig4(), h.Fig5(), h.BatchFigure()} {
		fig.WriteText(os.Stderr)
	}
	p, s := h.ThresholdFigures()
	p.WriteText(os.Stderr)
	s.WriteText(os.Stderr)
}

func TestManualShifts(t *testing.T) {
	if os.Getenv("FIGS") == "" {
		t.Skip("set FIGS=1 to run")
	}
	h := NewHarness(DefaultConfig())
	for _, fig := range []Figure{h.Fig8(), h.Fig9(), h.Fig10(), h.Fig11(), h.LearningRateFigure()} {
		fig.WriteText(os.Stderr)
	}
}
