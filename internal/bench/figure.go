// Package bench regenerates every figure of the paper's evaluation
// (Section 5) plus the two in-text results, as documented in DESIGN.md's
// experiment index. Runners return Figure values that render as aligned
// text tables or CSV, so cmd/mmbench and the root benchmark suite share one
// implementation.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Series is one line of a figure: a label and (x, y) points.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is a reproduced table/figure: metadata plus one or more series
// sharing an x-axis.
type Figure struct {
	ID     string // e.g. "fig4"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// WriteText renders the figure as an aligned table, x values as rows and
// one column per series — the same rows/series the paper plots.
func (f *Figure) WriteText(w io.Writer) {
	fmt.Fprintf(w, "%s: %s\n", f.ID, f.Title)
	fmt.Fprintf(w, "  (x = %s, y = %s)\n", f.XLabel, f.YLabel)

	header := fmt.Sprintf("%12s", f.XLabel)
	for _, s := range f.Series {
		header += fmt.Sprintf("%12s", s.Label)
	}
	fmt.Fprintln(w, header)
	fmt.Fprintln(w, strings.Repeat("-", len(header)))
	if len(f.Series) == 0 {
		return
	}
	for i := range f.Series[0].X {
		row := fmt.Sprintf("%12.4g", f.Series[0].X[i])
		for _, s := range f.Series {
			if i < len(s.Y) {
				row += fmt.Sprintf("%12.4f", s.Y[i])
			} else {
				row += fmt.Sprintf("%12s", "-")
			}
		}
		fmt.Fprintln(w, row)
	}
}

// WriteCSV renders the figure as CSV with one row per x value.
func (f *Figure) WriteCSV(w io.Writer) {
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Label)
	}
	fmt.Fprintln(w, strings.Join(cols, ","))
	if len(f.Series) == 0 {
		return
	}
	for i := range f.Series[0].X {
		row := []string{fmt.Sprintf("%g", f.Series[0].X[i])}
		for _, s := range f.Series {
			if i < len(s.Y) {
				row = append(row, fmt.Sprintf("%.6f", s.Y[i]))
			} else {
				row = append(row, "")
			}
		}
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// SeriesByLabel returns the series with the given label, or nil.
func (f *Figure) SeriesByLabel(label string) *Series {
	for i := range f.Series {
		if f.Series[i].Label == label {
			return &f.Series[i]
		}
	}
	return nil
}

// FinalY returns the last y value of the labelled series; it panics when
// the series is missing or empty (a harness bug).
func (f *Figure) FinalY(label string) float64 {
	s := f.SeriesByLabel(label)
	if s == nil || len(s.Y) == 0 {
		panic(fmt.Sprintf("bench: no series %q in %s", label, f.ID))
	}
	return s.Y[len(s.Y)-1]
}

// MeanY returns the mean y value of the labelled series.
func (f *Figure) MeanY(label string) float64 {
	s := f.SeriesByLabel(label)
	if s == nil || len(s.Y) == 0 {
		panic(fmt.Sprintf("bench: no series %q in %s", label, f.ID))
	}
	var sum float64
	for _, y := range s.Y {
		sum += y
	}
	return sum / float64(len(s.Y))
}
