package bench

import (
	"strings"
	"testing"
)

func demoFigure() Figure {
	return Figure{
		ID: "demo", Title: "Demo & more", XLabel: "x<axis>", YLabel: "niap",
		Series: []Series{
			{Label: "MM", X: []float64{0, 10, 20}, Y: []float64{0.2, 0.5, 0.7}},
			{Label: "RI", X: []float64{0, 10, 20}, Y: []float64{0.2, 0.3, 0.4}},
		},
	}
}

func TestWriteSVG(t *testing.T) {
	var out strings.Builder
	fig := demoFigure()
	if err := fig.WriteSVG(&out); err != nil {
		t.Fatal(err)
	}
	svg := out.String()
	for _, want := range []string{
		"<svg", "</svg>", "polyline", "Demo &amp; more", "x&lt;axis&gt;",
		"MM", "RI",
	} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("polylines = %d, want 2", got)
	}
	// One marker per point.
	if got := strings.Count(svg, "<circle"); got != 6 {
		t.Errorf("markers = %d, want 6", got)
	}
	if strings.Contains(svg, "NaN") || strings.Contains(svg, "Inf") {
		t.Error("non-finite coordinates in SVG")
	}
}

func TestWriteSVGDegenerate(t *testing.T) {
	var out strings.Builder
	empty := Figure{ID: "empty", Title: "t", XLabel: "x", YLabel: "y"}
	if err := empty.WriteSVG(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "</svg>") {
		t.Error("empty figure produced malformed SVG")
	}
	// Single point, zero range.
	out.Reset()
	point := Figure{Series: []Series{{Label: "a", X: []float64{5}, Y: []float64{0}}}}
	if err := point.WriteSVG(&out); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out.String(), "NaN") {
		t.Error("zero-range figure produced NaN coordinates")
	}
}

// TestHarnessDeterministic guards against hidden global state: two
// independently constructed harnesses with the same configuration must
// produce byte-identical figures.
func TestHarnessDeterministic(t *testing.T) {
	cfg := QuickConfig()
	a := NewHarness(cfg).Fig4()
	b := NewHarness(cfg).Fig4()
	if len(a.Series) != len(b.Series) {
		t.Fatal("series count differs")
	}
	for i := range a.Series {
		for j := range a.Series[i].Y {
			if a.Series[i].Y[j] != b.Series[i].Y[j] {
				t.Fatalf("series %s point %d: %v vs %v",
					a.Series[i].Label, j, a.Series[i].Y[j], b.Series[i].Y[j])
			}
		}
	}
}
