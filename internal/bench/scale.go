package bench

import (
	"fmt"
	"math/rand"
	"time"

	"mmprofile/internal/core"
	"mmprofile/internal/eval"
	"mmprofile/internal/index"
	"mmprofile/internal/sim"
	"mmprofile/internal/vsm"
)

// ScaleFigure measures per-document matching cost as the subscriber
// population grows, for the inverted profile index versus the naive
// every-vector scan — the engineering claim behind the paper's Section 4.3
// remark that "the filtering cost is not linearly proportional to the
// number of vectors since well-known indexing techniques are applicable".
// y is microseconds per published document (lower is better). Profiles
// are MM profiles trained on real feedback, so vector counts and term
// distributions are realistic.
func (h *Harness) ScaleFigure(populations []int) Figure {
	if len(populations) == 0 {
		populations = []int{50, 100, 250, 500, 1000}
	}
	ds := h.Dataset()
	fig := Figure{
		ID:     "scale",
		Title:  "Matching cost vs subscriber count (µs per document)",
		XLabel: "subscribers",
		YLabel: "us-per-doc",
	}
	idxSeries := Series{Label: "index"}
	bruteSeries := Series{Label: "brute-force"}

	maxPop := populations[len(populations)-1]
	rng := rand.New(rand.NewSource(h.Cfg.BaseSeed))
	train, probe := ds.Split(rng.Int63(), h.Cfg.TrainDocs)
	if len(probe) > 100 {
		probe = probe[:100]
	}

	// Train the largest population once; prefixes give the smaller ones.
	// Training streams are short (120 docs): the point is realistic
	// profiles, not peak effectiveness.
	type profile struct {
		user string
		vecs []vsm.Vector
	}
	profiles := make([]profile, maxPop)
	for i := range profiles {
		u := sim.NewUser(sim.RandomTopInterests(rng, ds, 1+rng.Intn(2))...)
		mm := core.NewDefault()
		eval.Train(mm, u, sim.Stream(rng, train, 120))
		profiles[i] = profile{user: fmt.Sprintf("u%05d", i), vecs: mm.ProfileVectors()}
	}

	for _, pop := range populations {
		if pop > maxPop {
			pop = maxPop
		}
		ix := index.New()
		ix.SetPruning(!h.Cfg.PruneOff)
		if h.Cfg.Metrics != nil {
			// Registration is idempotent, so every population's index
			// shares the counters and histograms; the live-size gauges
			// follow the most recent index (last writer wins).
			ix.Instrument(h.Cfg.Metrics)
		}
		var flat []vsm.Vector
		for _, p := range profiles[:pop] {
			ix.SetUser(p.user, p.vecs)
			flat = append(flat, p.vecs...)
		}

		start := time.Now()
		for _, d := range probe {
			ix.Match(d.Vec, h.Cfg.Theta)
		}
		idxPerDoc := float64(time.Since(start).Microseconds()) / float64(len(probe))

		start = time.Now()
		for _, d := range probe {
			hits := 0
			for _, pv := range flat {
				if vsm.Cosine(pv, d.Vec) >= h.Cfg.Theta {
					hits++
				}
			}
			_ = hits
		}
		brutePerDoc := float64(time.Since(start).Microseconds()) / float64(len(probe))

		idxSeries.X = append(idxSeries.X, float64(pop))
		idxSeries.Y = append(idxSeries.Y, idxPerDoc)
		bruteSeries.X = append(bruteSeries.X, float64(pop))
		bruteSeries.Y = append(bruteSeries.Y, brutePerDoc)
	}
	fig.Series = []Series{idxSeries, bruteSeries}
	return fig
}
