package bench

import (
	"fmt"
	"os"
	"sync"
	"time"

	"mmprofile/internal/filter"
	"mmprofile/internal/metrics"
	"mmprofile/internal/store"
	"mmprofile/internal/vsm"
)

// StoreLanesFigure measures the durable append path of the sharded profile
// journal (DESIGN.md §14) as the WAL lane count grows, at a fixed writer
// count. Each writer appends feedback for its own user, so user-id hashing
// spreads the load across every lane. Two series share the x-axis: mean
// microseconds per durable append, and the fsync amplification
// (fsyncs/append) read from the store's own instruments — the same metric
// BENCH_store.json pins for the group-commit acceptance row.
//
// On a single-core host with fast fsyncs, fewer lanes coalesce better (all
// writers pile onto one group-commit leader), so the single-lane row is the
// floor; the lanes win is reduced append-path contention and parallel lane
// fsyncs, which shows on multicore hosts with real disk-flush latency.
func (h *Harness) StoreLanesFigure(lanes []int, writers int) Figure {
	if len(lanes) == 0 {
		lanes = []int{1, 4, 16}
	}
	if writers <= 0 {
		writers = 64
	}
	perWriter := 128
	if h.Cfg.Runs <= 2 { // quick configuration: smaller sweep
		perWriter = 48
	}

	fig := Figure{
		ID:     "store_lanes",
		Title:  fmt.Sprintf("Durable append vs WAL lane count (%d writers, group commit)", writers),
		XLabel: "wal-lanes",
		YLabel: "per durable append",
	}
	lat := Series{Label: "us-per-append"}
	amp := Series{Label: "fsyncs-per-append"}

	doc := vsm.FromMap(map[string]float64{"cat": 1, "dog": 0.5}).Normalized()
	for _, n := range lanes {
		dir, err := os.MkdirTemp("", "mmbench-store-*")
		if err != nil {
			panic(err)
		}
		reg := metrics.NewRegistry()
		s, err := store.Open(dir, store.Options{Durable: true, Lanes: n, Metrics: reg})
		if err != nil {
			panic(err)
		}

		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				user := fmt.Sprintf("w%03d", w)
				for i := 0; i < perWriter; i++ {
					if err := s.AppendFeedback(user, doc, filter.Relevant); err != nil {
						panic(err)
					}
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)

		snap := reg.Snapshot()
		fsyncs := snap["mm_store_fsyncs_total"].(int64)
		appends := snap["mm_store_appends_total"].(int64)
		s.Close()
		os.RemoveAll(dir)

		total := writers * perWriter
		lat.X = append(lat.X, float64(n))
		lat.Y = append(lat.Y, elapsed.Seconds()*1e6/float64(total))
		amp.X = append(amp.X, float64(n))
		if appends > 0 {
			amp.Y = append(amp.Y, float64(fsyncs)/float64(appends))
		} else {
			amp.Y = append(amp.Y, 0)
		}
	}
	fig.Series = []Series{lat, amp}
	return fig
}
