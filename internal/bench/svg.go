package bench

import (
	"fmt"
	"io"
	"math"
)

// WriteSVG renders the figure as a self-contained SVG line chart — axes,
// ticks, legend, one polyline per series — so every reproduced figure can
// be looked at, not just read as a table. Pure stdlib, no fonts beyond
// SVG defaults.
func (f *Figure) WriteSVG(w io.Writer) error {
	const (
		width, height = 640, 420
		marginL       = 70
		marginR       = 160
		marginT       = 48
		marginB       = 56
	)
	plotW := width - marginL - marginR
	plotH := height - marginT - marginB

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := 0.0, math.Inf(-1) // y axis anchored at 0: niap/sizes/µs are non-negative
	for _, s := range f.Series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		minX, maxX, maxY = 0, 1, 1
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY <= minY {
		maxY = minY + 1
	}
	maxY *= 1.05 // headroom

	px := func(x float64) float64 { return marginL + (x-minX)/(maxX-minX)*float64(plotW) }
	py := func(y float64) float64 { return marginT + (1-(y-minY)/(maxY-minY))*float64(plotH) }

	// A colorblind-safe categorical palette (Okabe–Ito).
	palette := []string{"#0072B2", "#D55E00", "#009E73", "#CC79A7", "#E69F00", "#56B4E9", "#000000"}

	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	p(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", width, height, width, height)
	p(`<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	p(`<text x="%d" y="24" font-family="sans-serif" font-size="15" font-weight="bold">%s</text>`+"\n",
		marginL, xmlEscape(f.Title))

	// Axes.
	p(`<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", marginL, marginT, marginL, marginT+plotH)
	p(`<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", marginL, marginT+plotH, marginL+plotW, marginT+plotH)
	p(`<text x="%d" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle">%s</text>`+"\n",
		marginL+plotW/2, height-12, xmlEscape(f.XLabel))
	p(`<text x="16" y="%d" font-family="sans-serif" font-size="12" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		marginT+plotH/2, marginT+plotH/2, xmlEscape(f.YLabel))

	// Ticks: 5 per axis.
	for i := 0; i <= 4; i++ {
		xv := minX + (maxX-minX)*float64(i)/4
		yv := minY + (maxY-minY)*float64(i)/4
		p(`<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
			px(xv), marginT+plotH, px(xv), marginT+plotH+5)
		p(`<text x="%.1f" y="%d" font-family="sans-serif" font-size="11" text-anchor="middle">%s</text>`+"\n",
			px(xv), marginT+plotH+20, formatTick(xv))
		p(`<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
			marginL-5, py(yv), marginL, py(yv))
		p(`<text x="%d" y="%.1f" font-family="sans-serif" font-size="11" text-anchor="end">%s</text>`+"\n",
			marginL-9, py(yv)+4, formatTick(yv))
		// Light horizontal gridline.
		if i > 0 {
			p(`<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#dddddd"/>`+"\n",
				marginL, py(yv), marginL+plotW, py(yv))
		}
	}

	// Series.
	for si, s := range f.Series {
		color := palette[si%len(palette)]
		p(`<polyline fill="none" stroke="%s" stroke-width="2" points="`, color)
		for i := range s.X {
			p("%.1f,%.1f ", px(s.X[i]), py(s.Y[i]))
		}
		p(`"/>` + "\n")
		for i := range s.X {
			p(`<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", px(s.X[i]), py(s.Y[i]), color)
		}
		// Legend entry.
		ly := marginT + 16 + si*20
		p(`<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			width-marginR+12, ly-4, width-marginR+36, ly-4, color)
		p(`<text x="%d" y="%d" font-family="sans-serif" font-size="12">%s</text>`+"\n",
			width-marginR+42, ly, xmlEscape(s.Label))
	}
	p("</svg>\n")
	return err
}

// formatTick renders an axis value compactly.
func formatTick(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 10:
		return fmt.Sprintf("%.1f", v)
	case av == 0:
		return "0"
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

// xmlEscape escapes the handful of characters that matter in SVG text.
func xmlEscape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '&':
			out = append(out, "&amp;"...)
		case '<':
			out = append(out, "&lt;"...)
		case '>':
			out = append(out, "&gt;"...)
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
