package bench

import (
	"fmt"

	"mmprofile/internal/cluster"
	"mmprofile/internal/core"
	"mmprofile/internal/eval"
	"mmprofile/internal/filter"
	"mmprofile/internal/lsi"
	"mmprofile/internal/rocchio"
	"mmprofile/internal/sim"
	"mmprofile/internal/vsm"
)

// Ablation experiments for the design choices documented in DESIGN.md §6
// and for two claims the paper inherits from related work. They share the
// harness's workloads so results are comparable with the main figures.

// EtaSweepFigure sweeps MM's adaptability η on the 20% top-level workload.
// The paper (Section 5.1) reports η ∈ [0.1, 0.3] performs well with little
// difference inside the range; η → 0 freezes profile vectors, η → 1 makes
// MM memoryless.
func (h *Harness) EtaSweepFigure() Figure {
	fig := Figure{
		ID:     "eta",
		Title:  "Ablation: adaptability η, 20% top-level workload (θ=0.15)",
		XLabel: "eta",
		YLabel: "niap",
	}
	s := Series{Label: "MM"}
	n := h.interestCount(20, true)
	for _, eta := range []float64{0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.8, 1.0} {
		var sum float64
		for run := 0; run < h.Cfg.Runs; run++ {
			w := h.staticWorkload(run, n, true)
			opts := core.DefaultOptions()
			opts.Theta = h.Cfg.Theta
			opts.Eta = eta
			sum += eval.Run(core.New(opts), w.user, w.stream, w.test).NIAP
		}
		s.X = append(s.X, eta)
		s.Y = append(s.Y, sum/float64(h.Cfg.Runs))
	}
	fig.Series = []Series{s}
	return fig
}

// GroupSizeFigure sweeps RG's group size on the 20% top-level workload.
// Allan's result, which the paper builds on (Section 2.2): effectiveness
// increases with group size, topping out at batch.
func (h *Harness) GroupSizeFigure() Figure {
	fig := Figure{
		ID:     "group",
		Title:  "Ablation: Rocchio group size, 20% top-level workload",
		XLabel: "group-size",
		YLabel: "niap",
	}
	s := Series{Label: "Rocchio"}
	n := h.interestCount(20, true)
	sizes := []int{1, 5, 10, 25, 50, 100}
	// Drop group sizes that don't fit the training stream (quick configs),
	// keeping batch as the limiting case below.
	for len(sizes) > 1 && sizes[len(sizes)-1] >= h.Cfg.TrainDocs {
		sizes = sizes[:len(sizes)-1]
	}
	for _, size := range sizes {
		var sum float64
		for run := 0; run < h.Cfg.Runs; run++ {
			w := h.staticWorkload(run, n, true)
			var l filter.Learner
			if size == 1 {
				l = rocchio.NewRI()
			} else {
				l = rocchio.NewRG(size)
			}
			sum += eval.Run(l, w.user, w.stream, w.test).NIAP
		}
		s.X = append(s.X, float64(size))
		s.Y = append(s.Y, sum/float64(h.Cfg.Runs))
	}
	// Batch is the limiting case; report it as a pseudo group size of the
	// whole training set.
	var sum float64
	for run := 0; run < h.Cfg.Runs; run++ {
		w := h.staticWorkload(run, n, true)
		sum += eval.Run(rocchio.NewBatch(), w.user, w.stream, w.test).NIAP
	}
	s.X = append(s.X, float64(h.Cfg.TrainDocs))
	s.Y = append(s.Y, sum/float64(h.Cfg.Runs))
	fig.Series = []Series{s}
	return fig
}

// MergeAblationFigure compares MM with and without the merge operation
// across the top-level interest ranges, reporting both effectiveness and
// profile size — merging exists to keep profiles compact without hurting
// precision (Section 3.3).
func (h *Harness) MergeAblationFigure() (precision, size Figure) {
	precision = Figure{
		ID:     "merge",
		Title:  "Ablation: merge operation — precision",
		XLabel: "pct-relevant",
		YLabel: "niap",
	}
	size = Figure{
		ID:     "merge-size",
		Title:  "Ablation: merge operation — profile size",
		XLabel: "pct-relevant",
		YLabel: "profile-vectors",
	}
	variants := []struct {
		label   string
		disable bool
	}{{"MM", false}, {"MM-nomerge", true}}
	for _, v := range variants {
		ps := Series{Label: v.label}
		ss := Series{Label: v.label}
		for _, pct := range interestPercentages {
			n := h.interestCount(pct, true)
			var niapSum, sizeSum float64
			for run := 0; run < h.Cfg.Runs; run++ {
				w := h.staticWorkload(run, n, true)
				opts := core.DefaultOptions()
				opts.Theta = h.Cfg.Theta
				opts.Eta = h.Cfg.Eta
				opts.DisableMerge = v.disable
				res := eval.Run(core.New(opts), w.user, w.stream, w.test)
				niapSum += res.NIAP
				sizeSum += float64(res.ProfileSize)
			}
			ps.X = append(ps.X, float64(pct))
			ps.Y = append(ps.Y, niapSum/float64(h.Cfg.Runs))
			ss.X = append(ss.X, float64(pct))
			ss.Y = append(ss.Y, sizeSum/float64(h.Cfg.Runs))
		}
		precision.Series = append(precision.Series, ps)
		size.Series = append(size.Series, ss)
	}
	return precision, size
}

// DecayVariantFigure compares the similarity-weighted strength update this
// implementation defaults to against the plain s·exp(c·f_d) rule, across
// the θ sweep on the 20% workload — the design decision recorded in
// DESIGN.md §6 (the plain rule collapses at low θ, where barely-similar
// negative judgments constantly reach the few clusters).
func (h *Harness) DecayVariantFigure() Figure {
	fig := Figure{
		ID:     "decay",
		Title:  "Ablation: similarity-weighted vs plain strength decay (20% workload)",
		XLabel: "theta",
		YLabel: "niap",
	}
	variants := []struct {
		label      string
		unweighted bool
	}{{"sim-weighted", false}, {"plain", true}}
	n := h.interestCount(20, true)
	for _, v := range variants {
		s := Series{Label: v.label}
		for _, theta := range thresholdSweep {
			var sum float64
			for run := 0; run < h.Cfg.Runs; run++ {
				w := h.staticWorkload(run, n, true)
				opts := core.DefaultOptions()
				opts.Theta = theta
				opts.Eta = h.Cfg.Eta
				opts.UnweightedDecay = v.unweighted
				sum += eval.Run(core.New(opts), w.user, w.stream, w.test).NIAP
			}
			s.X = append(s.X, theta)
			s.Y = append(s.Y, sum/float64(h.Cfg.Runs))
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// NoiseFigure measures robustness to unreliable feedback: each judgment
// is flipped with probability p (the user mis-clicks); effectiveness is
// still scored against true relevance. The paper assumes clean feedback;
// this ablation quantifies how much of MM's advantage survives noise.
func (h *Harness) NoiseFigure() Figure {
	fig := Figure{
		ID:     "noise",
		Title:  "Ablation: feedback noise, 20% top-level workload",
		XLabel: "flip-rate",
		YLabel: "niap",
	}
	learners := []string{"MM", "RG10", "RI"}
	for _, l := range learners {
		fig.Series = append(fig.Series, Series{Label: l})
	}
	n := h.interestCount(20, true)
	for _, rate := range []float64{0, 0.05, 0.1, 0.2, 0.3} {
		sums := make([]float64, len(learners))
		for run := 0; run < h.Cfg.Runs; run++ {
			w := h.staticWorkload(run, n, true)
			noisy := sim.NewNoisyUser(w.user, rate, w.rng)
			for li, name := range learners {
				sums[li] += eval.Run(h.newLearner(name), noisy, w.stream, w.test).NIAP
			}
		}
		for li := range learners {
			fig.Series[li].X = append(fig.Series[li].X, rate)
			fig.Series[li].Y = append(fig.Series[li].Y, sums[li]/float64(h.Cfg.Runs))
		}
	}
	return fig
}

// BatchClusterFigure compares MM's single-pass clustering with an offline
// spherical k-means over the same judged documents — the batch style the
// paper rules out as impractical (Section 1.2). K is set per run to MM's
// own final profile size, so the comparison isolates *how* the clusters
// are formed, not how many there are.
func (h *Harness) BatchClusterFigure() (precision, size Figure) {
	precision = Figure{
		ID:     "kmeans",
		Title:  "Ablation: single-pass (MM) vs batch clustering (k-means) — precision",
		XLabel: "pct-relevant",
		YLabel: "niap",
	}
	size = Figure{
		ID:     "kmeans-size",
		Title:  "Ablation: single-pass vs batch clustering — profile size",
		XLabel: "pct-relevant",
		YLabel: "profile-vectors",
	}
	mmP := Series{Label: "MM"}
	kmP := Series{Label: "KMeans"}
	mmS := Series{Label: "MM"}
	kmS := Series{Label: "KMeans"}
	for _, pct := range interestPercentages {
		n := h.interestCount(pct, true)
		var mmNiap, kmNiap, mmSize, kmSize float64
		for run := 0; run < h.Cfg.Runs; run++ {
			w := h.staticWorkload(run, n, true)
			mm := h.newLearner("MM")
			res := eval.Run(mm, w.user, w.stream, w.test)
			mmNiap += res.NIAP
			mmSize += float64(res.ProfileSize)

			k := res.ProfileSize
			if k < 1 {
				k = 1
			}
			km := cluster.NewKMeans(cluster.KMeansOptions{K: k, Seed: h.runSeed(run)})
			resK := eval.Run(km, w.user, w.stream, w.test)
			kmNiap += resK.NIAP
			kmSize += float64(resK.ProfileSize)
		}
		r := float64(h.Cfg.Runs)
		mmP.X = append(mmP.X, float64(pct))
		mmP.Y = append(mmP.Y, mmNiap/r)
		kmP.X = append(kmP.X, float64(pct))
		kmP.Y = append(kmP.Y, kmNiap/r)
		mmS.X = append(mmS.X, float64(pct))
		mmS.Y = append(mmS.Y, mmSize/r)
		kmS.X = append(kmS.X, float64(pct))
		kmS.Y = append(kmS.Y, kmSize/r)
	}
	precision.Series = []Series{mmP, kmP}
	size.Series = []Series{mmS, kmS}
	return precision, size
}

// LSIFigure compares keyword-space learners with their LSI-space
// counterparts (the Section 6 generalization) across the top-level
// interest ranges. The LSI space is fitted per run on that run's training
// split, rank 60 by default (clamped for small quick-config splits).
func (h *Harness) LSIFigure() Figure {
	fig := Figure{
		ID:     "lsi",
		Title:  "Extension: keyword space vs LSI space (rank 60)",
		XLabel: "pct-relevant",
		YLabel: "niap",
	}
	labels := []string{"MM", "LSI-MM", "LSI-NRN"}
	for _, l := range labels {
		fig.Series = append(fig.Series, Series{Label: l})
	}
	for _, pct := range interestPercentages {
		n := h.interestCount(pct, true)
		sums := make([]float64, len(labels))
		for run := 0; run < h.Cfg.Runs; run++ {
			w := h.staticWorkload(run, n, true)
			rank := 60
			if max := len(w.stream) - 1; rank > max {
				rank = max
			}
			trainVecs := make([]vsm.Vector, len(w.stream))
			for i, d := range w.stream {
				trainVecs[i] = d.Vec
			}
			model, err := lsi.Fit(trainVecs, rank, h.runSeed(run))
			if err != nil {
				panic(fmt.Sprintf("bench: LSI fit: %v", err))
			}
			opts := core.DefaultOptions()
			opts.Theta = h.Cfg.Theta
			opts.Eta = h.Cfg.Eta
			learners := []filter.Learner{
				core.New(opts),
				lsi.NewMM(model, opts),
				lsi.NewNRN(model),
			}
			for li, l := range learners {
				sums[li] += eval.Run(l, w.user, w.stream, w.test).NIAP
			}
		}
		for li := range labels {
			fig.Series[li].X = append(fig.Series[li].X, float64(pct))
			fig.Series[li].Y = append(fig.Series[li].Y, sums[li]/float64(h.Cfg.Runs))
		}
	}
	return fig
}
