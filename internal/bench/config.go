package bench

import (
	"sync"

	"mmprofile/internal/corpus"
	"mmprofile/internal/metrics"
	"mmprofile/internal/text"
)

// Config parameterizes the experiment harness. Zero value is unusable;
// start from DefaultConfig.
type Config struct {
	// Corpus is the collection configuration (paper: 900 pages, 10×10×9).
	Corpus corpus.Config
	// TrainDocs is the training-set size (paper: 500, rest is the test set).
	TrainDocs int
	// Runs is the number of randomly-seeded repetitions averaged per data
	// point (paper: at least 4).
	Runs int
	// Theta and Eta are MM's parameters for non-sweep experiments
	// (paper: 0.15 and 0.2).
	Theta float64
	Eta   float64
	// CurveEvery is the checkpoint interval for learning curves.
	CurveEvery int
	// ShiftStream is the stream length for the Section 5.5 experiments
	// (paper plots 600 documents) and ShiftAt the shift point (200).
	ShiftStream int
	ShiftAt     int
	// BaseSeed decorrelates repetitions; run r uses BaseSeed + r.
	BaseSeed int64
	// Metrics, when non-nil, receives instrumentation from the experiments
	// that exercise instrumented subsystems (the scale and prune figures'
	// inverted indexes). mmbench prints its snapshot after the run.
	Metrics *metrics.Registry
	// PruneOff disables the index's threshold-aware match pruning in the
	// figures that build indexes (mmbench -prune=off), so A/B runs of the
	// same figure differ by exactly one flag.
	PruneOff bool
}

// DefaultConfig returns the paper's experimental setup.
func DefaultConfig() Config {
	return Config{
		Corpus:      corpus.DefaultConfig(),
		TrainDocs:   500,
		Runs:        4,
		Theta:       0.15,
		Eta:         0.2,
		CurveEvery:  20,
		ShiftStream: 600,
		ShiftAt:     200,
		BaseSeed:    1,
	}
}

// QuickConfig returns a scaled-down setup (smaller collection, fewer runs)
// for tests and testing.B benchmarks, preserving the workload's shape:
// still two category levels, still a train/test split.
func QuickConfig() Config {
	cfg := DefaultConfig()
	cfg.Corpus.TopCategories = 6
	cfg.Corpus.SubPerTop = 4
	cfg.Corpus.PagesPerSub = 6 // 144 pages
	cfg.Corpus.MinWords = 80
	cfg.Corpus.MaxWords = 200
	cfg.TrainDocs = 90
	cfg.Runs = 2
	cfg.CurveEvery = 25
	cfg.ShiftStream = 200
	cfg.ShiftAt = 80
	return cfg
}

// MatchTierConfig returns the population used to benchmark the 1M-vector
// match tier (BenchmarkIndexMatch/vectors=1000000, mmbench -fig prune).
// The quick corpus's 144 distinct pages are fine for figure-shape runs,
// but cycled to a million vectors they make ~0.7% of the index an exact
// duplicate of every probe document: duplicate matches alone dominate
// matcher cost, and each posting list carries only 144 distinct weights,
// flattening the impact-ordered decay that block-max skipping feeds on.
// Scaling the collection to 10k distinct pages (10×10×100) keeps the
// duplication factor at the tier realistic (~100 copies per page, ~20
// exact-duplicate matches per probe) while preserving the generator's
// category structure and Zipf vocabulary.
func MatchTierConfig() Config {
	cfg := DefaultConfig()
	cfg.Corpus.PagesPerSub = 100 // 10×10×100 = 10k distinct pages
	cfg.Corpus.MaxWords = 250
	cfg.TrainDocs = 90
	cfg.Runs = 2
	return cfg
}

// Harness caches the vectorized dataset, which is shared by every
// experiment for a given corpus configuration. Safe for concurrent use.
type Harness struct {
	Cfg Config

	once sync.Once
	ds   *corpus.Dataset
}

// NewHarness returns a harness for the configuration.
func NewHarness(cfg Config) *Harness { return &Harness{Cfg: cfg} }

// Dataset generates and vectorizes the collection on first use.
func (h *Harness) Dataset() *corpus.Dataset {
	h.once.Do(func() {
		h.ds = corpus.Generate(h.Cfg.Corpus).Vectorize(text.NewPipeline())
	})
	return h.ds
}
