package bench

import (
	"fmt"
	"time"

	"mmprofile/internal/index"
)

// PruneFigure measures what threshold-aware pruning (DESIGN.md §12) does
// to matcher effort as θ varies: postings actually scanned and posting
// blocks skipped, per probe document, at each population size. Vectors are
// real corpus document vectors cycled across users, so list shapes follow
// the collection's Zipf profile rather than synthetic noise. With
// Config.PruneOff the skip series flatline at zero and the scan series
// show the unpruned posting volume — the two runs differ by one flag.
func (h *Harness) PruneFigure(sizes []int, thetas []float64) Figure {
	if len(sizes) == 0 {
		sizes = []int{100_000, 1_000_000}
	}
	if len(thetas) == 0 {
		thetas = []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5, 0.6}
	}
	ds := h.Dataset()
	fig := Figure{
		ID:     "prune",
		Title:  "Match pruning effort vs θ (per-document postings scanned / blocks skipped)",
		XLabel: "theta",
		YLabel: "per-doc count",
	}
	for _, n := range sizes {
		ix := index.New()
		ix.SetPruning(!h.Cfg.PruneOff)
		if h.Cfg.Metrics != nil {
			ix.Instrument(h.Cfg.Metrics)
		}
		users := n / 5
		if users == 0 {
			users = 1
		}
		for i := 0; i < n; i++ {
			d := ds.Docs[i%len(ds.Docs)]
			ix.Upsert(fmt.Sprintf("user%06d", i%users), i/users, d.Vec)
		}
		probe := ds.Docs
		if len(probe) > 50 {
			probe = probe[:50]
		}
		scanned := Series{Label: "scanned@" + sizeLabel(n)}
		skipped := Series{Label: "skipped@" + sizeLabel(n)}
		perDoc := Series{Label: "us-per-doc@" + sizeLabel(n)}
		for _, theta := range thetas {
			before := ix.PruneStats()
			start := time.Now()
			for _, d := range probe {
				ix.Match(d.Vec, theta)
			}
			elapsed := time.Since(start)
			after := ix.PruneStats()
			np := float64(len(probe))
			scanned.X = append(scanned.X, theta)
			scanned.Y = append(scanned.Y, float64(after.PostingsScanned-before.PostingsScanned)/np)
			skipped.X = append(skipped.X, theta)
			skipped.Y = append(skipped.Y, float64(after.BlocksSkipped-before.BlocksSkipped)/np)
			perDoc.X = append(perDoc.X, theta)
			perDoc.Y = append(perDoc.Y, float64(elapsed.Microseconds())/np)
		}
		fig.Series = append(fig.Series, scanned, skipped, perDoc)
	}
	return fig
}

// sizeLabel renders a population size compactly (100000 → "100k").
func sizeLabel(n int) string {
	switch {
	case n >= 1_000_000 && n%1_000_000 == 0:
		return fmt.Sprintf("%dM", n/1_000_000)
	case n >= 1_000 && n%1_000 == 0:
		return fmt.Sprintf("%dk", n/1_000)
	default:
		return fmt.Sprintf("%d", n)
	}
}
