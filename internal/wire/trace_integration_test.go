package wire

import (
	"encoding/json"
	"net"
	"net/http/httptest"
	"testing"

	"mmprofile/internal/core"
	"mmprofile/internal/pubsub"
	"mmprofile/internal/store"
	"mmprofile/internal/trace"
)

// startTracedServer runs a fully wired deployment the way mmserver does:
// durable store, always-sample tracer, TCP wire server, HTTP status handler.
func startTracedServer(t *testing.T) (*Client, *pubsub.Broker, *trace.Tracer) {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	tr := trace.New(trace.Options{SampleRate: 1})
	b := pubsub.New(pubsub.Options{
		Threshold: 0.2,
		QueueSize: 64,
		Retention: 1 << 10,
		Journal:   st,
		Trace:     tr,
	})
	srv := NewServer(b, func(string, ...any) {})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(lis)
	}()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})
	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, b, tr
}

// fetchTrace pulls one trace by id through the /tracez HTTP endpoint.
func fetchTrace(t *testing.T, h *httptest.Server, id string) trace.TraceSnapshot {
	t.Helper()
	resp, err := h.Client().Get(h.URL + "/tracez?trace=" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/tracez?trace=%s: %d", id, resp.StatusCode)
	}
	var ts trace.TraceSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&ts); err != nil {
		t.Fatal(err)
	}
	return ts
}

// TestTracedRequestLifecycle is the PR's acceptance test: drive a
// publish→feedback round trip through the wire protocol against a durable
// broker, then locate — via the /tracez and /explainz HTTP endpoints —
// (a) the request traces with their match/deliver/append child spans and
// (b) the audit events recording cosine vs θ and strength before/after.
func TestTracedRequestLifecycle(t *testing.T) {
	c, b, _ := startTracedServer(t)
	h := httptest.NewServer(NewStatusHandler(b))
	defer h.Close()

	if err := c.Subscribe("alice", "", []string{"cats"}); err != nil {
		t.Fatal(err)
	}
	doc, delivered, pubTrace, err := c.PublishTrace(catPage, "")
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("delivered = %d", delivered)
	}
	if pubTrace == "" {
		t.Fatal("publish response carries no trace id")
	}
	fbTrace, err := c.FeedbackTrace("alice", doc, true, "")
	if err != nil {
		t.Fatal(err)
	}
	if fbTrace == "" {
		t.Fatal("feedback response carries no trace id")
	}

	// (a) The publish trace: decode → publish → match → deliver.
	ts := fetchTrace(t, h, pubTrace)
	names := map[string]bool{}
	for _, s := range ts.Spans {
		names[s.Name] = true
	}
	if ts.Root != "wire.publish" {
		t.Errorf("publish root = %q", ts.Root)
	}
	for _, want := range []string{"wire.decode", "pubsub.publish", "index.match", "pubsub.deliver"} {
		if !names[want] {
			t.Errorf("publish trace missing span %q (have %v)", want, names)
		}
	}

	// The feedback trace: decode → feedback → journal append (wal write +
	// group-commit wait, since the store is durable) → observe → reindex.
	ts = fetchTrace(t, h, fbTrace)
	names = map[string]bool{}
	for _, s := range ts.Spans {
		names[s.Name] = true
	}
	if ts.Root != "wire.feedback" {
		t.Errorf("feedback root = %q", ts.Root)
	}
	for _, want := range []string{"wire.decode", "pubsub.feedback",
		"store.wal_write", "store.commit_wait", "core.observe", "index.reindex"} {
		if !names[want] {
			t.Errorf("feedback trace missing span %q (have %v)", want, names)
		}
	}

	// (b) The audit journal via /explainz: the feedback step must have left
	// an event tied to the document and the feedback trace, explaining the
	// structural decision via cosine vs θ and the strength movement.
	resp, err := h.Client().Get(h.URL + "/explainz?user=alice")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/explainz: %d", resp.StatusCode)
	}
	var out struct {
		Profile pubsub.ProfileInfo `json:"profile"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	var ev *core.AuditEvent
	for i := range out.Profile.Audit {
		if out.Profile.Audit[i].Trace == fbTrace {
			ev = &out.Profile.Audit[i]
		}
	}
	if ev == nil {
		t.Fatalf("no audit event carries feedback trace %s: %+v", fbTrace, out.Profile.Audit)
	}
	if ev.Doc != doc {
		t.Errorf("audit doc = %d, want %d", ev.Doc, doc)
	}
	switch ev.Op {
	case core.AuditIncorporate:
		if ev.Cosine < ev.Theta {
			t.Errorf("incorporate with cosine %v < θ %v", ev.Cosine, ev.Theta)
		}
		if ev.StrengthAfter <= ev.StrengthBefore {
			t.Errorf("relevant incorporate did not raise strength: %v → %v",
				ev.StrengthBefore, ev.StrengthAfter)
		}
	case core.AuditCreate:
		if ev.Cosine >= ev.Theta {
			t.Errorf("create with cosine %v ≥ θ %v", ev.Cosine, ev.Theta)
		}
		if ev.StrengthAfter <= 0 {
			t.Errorf("create left strength %v", ev.StrengthAfter)
		}
	default:
		t.Errorf("unexpected audit op %v for a relevant judgment: %+v", ev.Op, ev)
	}

	// The subscriber's vectors must reference the same id space the audit
	// events use, so an operator can join the two views.
	if len(out.Profile.Vectors) == 0 {
		t.Fatal("profile has no vectors")
	}
	if ev.Vector != 0 {
		found := false
		for _, v := range out.Profile.Vectors {
			if v.ID == ev.Vector {
				found = true
			}
		}
		if !found && ev.Op != core.AuditDelete && ev.Op != core.AuditAnnihilate {
			t.Errorf("audit vector id %d not among live vectors %+v", ev.Vector, out.Profile.Vectors)
		}
	}
}

// TestTracePropagationOverWire checks a client-supplied context joins the
// server trace: the response trace id equals the propagated trace id and
// the captured trace records the remote parent span.
func TestTracePropagationOverWire(t *testing.T) {
	c, b, _ := startTracedServer(t)
	h := httptest.NewServer(NewStatusHandler(b))
	defer h.Close()

	if err := c.Subscribe("alice", "", []string{"cats"}); err != nil {
		t.Fatal(err)
	}
	const ctx = "00000000deadbeef-00000000cafebabe"
	_, _, traceID, err := c.PublishTrace(catPage, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if traceID != "00000000deadbeef" {
		t.Fatalf("server trace id = %q, want the propagated 00000000deadbeef", traceID)
	}
	ts := fetchTrace(t, h, traceID)
	if ts.RemoteParent != "00000000cafebabe" {
		t.Errorf("remote parent = %q, want 00000000cafebabe", ts.RemoteParent)
	}

	// Malformed context must not fail the request (and yields a fresh id).
	_, _, traceID, err = c.PublishTrace(catPage, "not-a-context")
	if err != nil {
		t.Fatal(err)
	}
	if traceID == "00000000deadbeef" || traceID == "" {
		t.Errorf("malformed context yielded trace %q", traceID)
	}
}
