package wire

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"mmprofile/internal/filter"
	"mmprofile/internal/metrics"
	"mmprofile/internal/pubsub"
	"mmprofile/internal/store"
)

func TestStatusHandler(t *testing.T) {
	b := pubsub.New(pubsub.Options{Threshold: 0.2})
	if _, err := b.SubscribeKeywords("alice", []string{"cats"}); err != nil {
		t.Fatal(err)
	}
	b.Publish("<html><body>cats cats cats</body></html>")
	h := NewStatusHandler(b)

	// /healthz
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "ok") {
		t.Errorf("healthz: %d %q", rec.Code, rec.Body.String())
	}

	// /statsz
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/statsz", nil))
	if rec.Code != 200 {
		t.Fatalf("statsz: %d", rec.Code)
	}
	var stats map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats["subscribers"].(float64) != 1 || stats["published"].(float64) != 1 {
		t.Errorf("statsz = %v", stats)
	}
	if _, ok := stats["index_vectors"]; !ok {
		t.Error("index stats missing")
	}
	layout, ok := stats["layout"].(map[string]any)
	if !ok {
		t.Fatal("statsz has no layout object")
	}
	for _, key := range []string{"registry_shards", "doc_shards", "stats_stripes", "index_shards"} {
		if v, ok := layout[key].(float64); !ok || v < 1 {
			t.Errorf("layout[%q] = %v, want >= 1", key, layout[key])
		}
	}

	// dashboard
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "mmserver") {
		t.Errorf("dashboard: %d", rec.Code)
	}

	// unknown path
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/nope", nil))
	if rec.Code != 404 {
		t.Errorf("unknown path: %d", rec.Code)
	}
}

// TestStatusHandlerMetrics exercises the full exposition surface against
// a broker wired the way mmserver wires it: one registry shared by the
// broker, the index, and the profile store. /metrics must carry at least
// one counter, one gauge, and one histogram from each instrument family.
func TestStatusHandlerMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	st, err := store.Open(t.TempDir(), store.Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	b := pubsub.New(pubsub.Options{Threshold: 0.2, Metrics: reg, Journal: st})
	if _, err := b.SubscribeKeywords("alice", []string{"cats"}); err != nil {
		t.Fatal(err)
	}
	doc, _ := b.Publish("<html><body>cats cats cats</body></html>")
	if err := b.Feedback("alice", doc, filter.Relevant); err != nil {
		t.Fatal(err)
	}
	h := NewStatusHandler(b)

	// /metrics: Prometheus text with every family present.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("metrics content type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		// pubsub: counter, gauge, histogram.
		"# TYPE mm_pubsub_published_total counter",
		"mm_pubsub_published_total 1",
		"# TYPE mm_pubsub_subscribers gauge",
		"# TYPE mm_pubsub_publish_seconds histogram",
		"mm_pubsub_publish_seconds_count 1",
		// index: counter, gauge, histogram.
		"# TYPE mm_index_compactions_total counter",
		"# TYPE mm_index_live_vectors gauge",
		"# TYPE mm_index_match_seconds histogram",
		// store: counter, gauge, histogram (journaled subscribe + feedback).
		"# TYPE mm_store_appends_total counter",
		"mm_store_appends_total 2",
		"# TYPE mm_store_checkpoint_bytes gauge",
		"# TYPE mm_store_append_seconds histogram",
		// adaptation telemetry: counter, gauge, histogram.
		"# TYPE mm_vectors_created_total counter",
		"# TYPE mm_profile_vectors gauge",
		"# TYPE mm_vector_strength histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// /statsz remains a superset of the legacy keys, plus the registry
	// snapshot under "metrics".
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/statsz", nil))
	var stats map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"published", "deliveries", "dropped", "feedbacks",
		"subscribers", "index_users", "index_vectors", "index_terms", "index_postings",
		"layout"} {
		if _, ok := stats[key]; !ok {
			t.Errorf("statsz lost legacy key %q", key)
		}
	}
	inner, ok := stats["metrics"].(map[string]any)
	if !ok {
		t.Fatal("statsz has no metrics object")
	}
	if inner["mm_pubsub_published_total"].(float64) != 1 {
		t.Errorf("statsz metrics = %v", inner["mm_pubsub_published_total"])
	}

	// /varz: expvar JSON including the published registry.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/varz", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "\"mmprofile\"") {
		t.Errorf("varz: %d, mmprofile var missing", rec.Code)
	}

	// /debug/pprof/: index page is served.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Errorf("pprof index: %d", rec.Code)
	}
}
