package wire

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"mmprofile/internal/pubsub"
)

func TestStatusHandler(t *testing.T) {
	b := pubsub.New(pubsub.Options{Threshold: 0.2})
	if _, err := b.SubscribeKeywords("alice", []string{"cats"}); err != nil {
		t.Fatal(err)
	}
	b.Publish("<html><body>cats cats cats</body></html>")
	h := NewStatusHandler(b)

	// /healthz
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "ok") {
		t.Errorf("healthz: %d %q", rec.Code, rec.Body.String())
	}

	// /statsz
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/statsz", nil))
	if rec.Code != 200 {
		t.Fatalf("statsz: %d", rec.Code)
	}
	var stats map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats["subscribers"].(float64) != 1 || stats["published"].(float64) != 1 {
		t.Errorf("statsz = %v", stats)
	}
	if _, ok := stats["index_vectors"]; !ok {
		t.Error("index stats missing")
	}

	// dashboard
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "mmserver") {
		t.Errorf("dashboard: %d", rec.Code)
	}

	// unknown path
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/nope", nil))
	if rec.Code != 404 {
		t.Errorf("unknown path: %d", rec.Code)
	}
}
