package wire

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"strconv"
	"strings"
	"testing"

	"mmprofile/internal/filter"
	"mmprofile/internal/metrics"
	"mmprofile/internal/obs"
	"mmprofile/internal/pubsub"
	"mmprofile/internal/store"
	"mmprofile/internal/trace"
)

func TestStatusHandler(t *testing.T) {
	b := pubsub.New(pubsub.Options{Threshold: 0.2})
	if _, err := b.SubscribeKeywords("alice", []string{"cats"}); err != nil {
		t.Fatal(err)
	}
	b.Publish("<html><body>cats cats cats</body></html>")
	h := NewStatusHandler(b)

	// /healthz
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "ok") {
		t.Errorf("healthz: %d %q", rec.Code, rec.Body.String())
	}

	// /statsz
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/statsz", nil))
	if rec.Code != 200 {
		t.Fatalf("statsz: %d", rec.Code)
	}
	var stats map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats["subscribers"].(float64) != 1 || stats["published"].(float64) != 1 {
		t.Errorf("statsz = %v", stats)
	}
	if _, ok := stats["index_vectors"]; !ok {
		t.Error("index stats missing")
	}
	layout, ok := stats["layout"].(map[string]any)
	if !ok {
		t.Fatal("statsz has no layout object")
	}
	for _, key := range []string{"registry_shards", "doc_shards", "stats_stripes", "index_shards"} {
		if v, ok := layout[key].(float64); !ok || v < 1 {
			t.Errorf("layout[%q] = %v, want >= 1", key, layout[key])
		}
	}

	// dashboard
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "mmserver") {
		t.Errorf("dashboard: %d", rec.Code)
	}

	// unknown path
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/nope", nil))
	if rec.Code != 404 {
		t.Errorf("unknown path: %d", rec.Code)
	}
}

// TestStatusHandlerMetrics exercises the full exposition surface against
// a broker wired the way mmserver wires it: one registry shared by the
// broker, the index, and the profile store. /metrics must carry at least
// one counter, one gauge, and one histogram from each instrument family.
func TestStatusHandlerMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	st, err := store.Open(t.TempDir(), store.Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	b := pubsub.New(pubsub.Options{Threshold: 0.2, Metrics: reg, Journal: st})
	if _, err := b.SubscribeKeywords("alice", []string{"cats"}); err != nil {
		t.Fatal(err)
	}
	doc, _ := b.Publish("<html><body>cats cats cats</body></html>")
	if err := b.Feedback("alice", doc, filter.Relevant); err != nil {
		t.Fatal(err)
	}
	h := NewStatusHandler(b)

	// /metrics: Prometheus text with every family present.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("metrics content type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		// pubsub: counter, gauge, histogram.
		"# TYPE mm_pubsub_published_total counter",
		"mm_pubsub_published_total 1",
		"# TYPE mm_pubsub_subscribers gauge",
		"# TYPE mm_pubsub_publish_seconds histogram",
		"mm_pubsub_publish_seconds_count 1",
		// index: counter, gauge, histogram.
		"# TYPE mm_index_compactions_total counter",
		"# TYPE mm_index_live_vectors gauge",
		"# TYPE mm_index_match_seconds histogram",
		// store: counter, gauge, histogram (journaled subscribe + feedback).
		"# TYPE mm_store_appends_total counter",
		"mm_store_appends_total 2",
		"# TYPE mm_store_checkpoint_bytes gauge",
		"# TYPE mm_store_append_seconds histogram",
		// adaptation telemetry: counter, gauge, histogram.
		"# TYPE mm_vectors_created_total counter",
		"# TYPE mm_profile_vectors gauge",
		"# TYPE mm_vector_strength histogram",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// /statsz remains a superset of the legacy keys, plus the registry
	// snapshot under "metrics".
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/statsz", nil))
	var stats map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"published", "deliveries", "dropped", "feedbacks",
		"subscribers", "index_users", "index_vectors", "index_terms", "index_postings",
		"layout"} {
		if _, ok := stats[key]; !ok {
			t.Errorf("statsz lost legacy key %q", key)
		}
	}
	inner, ok := stats["metrics"].(map[string]any)
	if !ok {
		t.Fatal("statsz has no metrics object")
	}
	if inner["mm_pubsub_published_total"].(float64) != 1 {
		t.Errorf("statsz metrics = %v", inner["mm_pubsub_published_total"])
	}

	// /varz: expvar JSON including the published registry.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/varz", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "\"mmprofile\"") {
		t.Errorf("varz: %d, mmprofile var missing", rec.Code)
	}

	// /debug/pprof/: index page is served.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Errorf("pprof index: %d", rec.Code)
	}
}

// TestHTTPContentTypes audits every introspection endpoint's Content-Type:
// machine-readable endpoints must declare JSON, text endpoints must say so,
// and nothing may fall back to Go's content sniffing.
func TestHTTPContentTypes(t *testing.T) {
	tr := trace.New(trace.Options{SampleRate: 1})
	b := pubsub.New(pubsub.Options{Threshold: 0.2, Trace: tr})
	if _, err := b.SubscribeKeywords("alice", []string{"cats"}); err != nil {
		t.Fatal(err)
	}
	b.Publish("<html><body>cats cats cats</body></html>")
	h := NewStatusHandler(b)

	cases := []struct {
		path string
		want string // Content-Type prefix
	}{
		{"/healthz", "text/plain; charset=utf-8"},
		{"/readyz", "application/json"},
		{"/statsz", "application/json"},
		{"/metrics", "text/plain; version=0.0.4; charset=utf-8"},
		{"/metrics?format=json", "application/json"},
		{"/tracez", "application/json"},
		{"/explainz?user=alice", "application/json"},
		{"/varz", "application/json; charset=utf-8"},
		{"/", "text/html; charset=utf-8"},
	}
	for _, tc := range cases {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", tc.path, nil))
		if rec.Code != 200 {
			t.Errorf("%s: status %d", tc.path, rec.Code)
			continue
		}
		if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, tc.want) {
			t.Errorf("%s: Content-Type = %q, want prefix %q", tc.path, ct, tc.want)
		}
	}
}

// TestReadyzEndpoint checks the readiness endpoint: the unconfigured
// handler reports a bare ready, a wired health model surfaces per-component
// state, and the status code flips with the rollup (200 while serving,
// 503 while refusing).
func TestReadyzEndpoint(t *testing.T) {
	b := pubsub.New(pubsub.Options{Threshold: 0.2})

	// No health model: /readyz answers 200 ready so the handler works
	// unconfigured (tests, embedders).
	h := NewStatusHandler(b)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 200 {
		t.Fatalf("bare readyz: %d", rec.Code)
	}
	var snap obs.HealthSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Status != "ready" {
		t.Errorf("bare readyz status = %q", snap.Status)
	}

	// Wired model: components appear, and the worst one drives the code.
	health := obs.NewHealth()
	health.Set("server", obs.StatusNotReady, "starting")
	health.Set("store_wal", obs.StatusReady, "")
	h = NewStatusHandlerOpts(b, StatusOptions{Health: health})

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 503 {
		t.Fatalf("starting readyz: %d, want 503", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Status != "not_ready" || snap.Components["server"].Reason != "starting" {
		t.Errorf("starting snapshot = %+v", snap)
	}

	health.Set("server", obs.StatusReady, "")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != 200 {
		t.Fatalf("ready readyz: %d", rec.Code)
	}

	// Degraded still serves: load balancers keep routing.
	health.Set("store_wal", obs.StatusDegraded, "read-only")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if rec.Code != 200 || snap.Status != "degraded" {
		t.Errorf("degraded readyz: %d %q, want 200 degraded", rec.Code, snap.Status)
	}

	// Draining overrides everything and refuses.
	health.StartDrain()
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if rec.Code != 503 || snap.Status != "draining" || !snap.Draining {
		t.Errorf("draining readyz: %d %+v", rec.Code, snap)
	}
}

// TestDebugzDumpEndpoint checks the on-demand flight-recorder trigger:
// method discipline, the explanatory 503 without a recorder, and a real
// dump landing on disk as valid JSON.
func TestDebugzDumpEndpoint(t *testing.T) {
	b := pubsub.New(pubsub.Options{Threshold: 0.2})

	// GET is rejected: the root dashboard links every GET endpoint, and
	// crawling it must not write bundles.
	h := NewStatusHandler(b)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debugz/dump", nil))
	if rec.Code != 405 || rec.Header().Get("Allow") != "POST" {
		t.Errorf("GET dump: %d Allow=%q, want 405 POST", rec.Code, rec.Header().Get("Allow"))
	}

	// No recorder: explanatory 503, not a panic.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/debugz/dump", nil))
	if rec.Code != 503 || !strings.Contains(rec.Body.String(), "no flight recorder") {
		t.Errorf("recorder-less dump: %d %q", rec.Code, rec.Body.String())
	}

	// Wired recorder: 200 with the bundle path, and the file is real JSON.
	dir := t.TempDir()
	recd := obs.NewRecorder(dir, obs.NewEventRing(8), obs.BundleSources{Metrics: b.Metrics()})
	h = NewStatusHandlerOpts(b, StatusOptions{Recorder: recd})
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/debugz/dump", nil))
	if rec.Code != 200 {
		t.Fatalf("dump: %d %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Path string `json:"path"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out.Path)
	if err != nil {
		t.Fatalf("bundle not on disk: %v", err)
	}
	var bundle map[string]any
	if err := json.Unmarshal(raw, &bundle); err != nil {
		t.Fatalf("bundle is not valid JSON: %v", err)
	}
	if bundle["reason"] != "endpoint" {
		t.Errorf("bundle reason = %v, want endpoint", bundle["reason"])
	}
}

// TestTracezEndpoint checks /tracez exposition: full snapshot, single-trace
// lookup, 404 on unknown ids, and the disabled report without a tracer.
func TestTracezEndpoint(t *testing.T) {
	tr := trace.New(trace.Options{SampleRate: 1})
	b := pubsub.New(pubsub.Options{Threshold: 0.2, Trace: tr})
	if _, err := b.SubscribeKeywords("alice", []string{"cats"}); err != nil {
		t.Fatal(err)
	}
	b.Publish("<html><body>cats cats cats</body></html>")
	h := NewStatusHandler(b)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/tracez", nil))
	var out struct {
		Enabled  bool           `json:"enabled"`
		Snapshot trace.Snapshot `json:"snapshot"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if !out.Enabled || len(out.Snapshot.Recent) == 0 {
		t.Fatalf("tracez = enabled %v, %d recent traces", out.Enabled, len(out.Snapshot.Recent))
	}

	// Single-trace lookup by the id just captured.
	id := out.Snapshot.Recent[0].Trace
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/tracez?trace="+id, nil))
	if rec.Code != 200 {
		t.Fatalf("tracez?trace=%s: %d", id, rec.Code)
	}
	var ts trace.TraceSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &ts); err != nil {
		t.Fatal(err)
	}
	if ts.Trace != id || len(ts.Spans) == 0 {
		t.Errorf("trace lookup = %+v", ts)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/tracez?trace=ffffffffffffffff", nil))
	if rec.Code != 404 {
		t.Errorf("unknown trace id: %d, want 404", rec.Code)
	}

	// A broker without a tracer reports disabled rather than erroring.
	h2 := NewStatusHandler(pubsub.New(pubsub.Options{Threshold: 0.2}))
	rec = httptest.NewRecorder()
	h2.ServeHTTP(rec, httptest.NewRequest("GET", "/tracez", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"enabled":false`) {
		t.Errorf("tracer-less tracez: %d %q", rec.Code, rec.Body.String())
	}
}

// TestExplainzEndpoint checks the adaptation-audit endpoint: the profile
// report with vectors and audit events, the optional document join, and
// the error statuses.
func TestExplainzEndpoint(t *testing.T) {
	b := pubsub.New(pubsub.Options{Threshold: 0.2, Retention: 1 << 10})
	if _, err := b.SubscribeKeywords("alice", []string{"cats", "dogs"}); err != nil {
		t.Fatal(err)
	}
	doc, _ := b.Publish("<html><body>cats dogs cats dogs</body></html>")
	if err := b.Feedback("alice", doc, filter.Relevant); err != nil {
		t.Fatal(err)
	}
	h := NewStatusHandler(b)

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/explainz?user=alice", nil))
	if rec.Code != 200 {
		t.Fatalf("explainz: %d %s", rec.Code, rec.Body.String())
	}
	var out struct {
		Profile pubsub.ProfileInfo `json:"profile"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.Profile.User != "alice" || len(out.Profile.Vectors) == 0 {
		t.Fatalf("explainz profile = %+v", out.Profile)
	}
	if len(out.Profile.Audit) == 0 {
		t.Fatal("explainz profile has no audit events")
	}

	// Document join adds the score explanation.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET",
		"/explainz?user=alice&doc="+strconv.FormatInt(doc, 10), nil))
	if rec.Code != 200 {
		t.Fatalf("explainz with doc: %d %s", rec.Code, rec.Body.String())
	}
	var joined map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &joined); err != nil {
		t.Fatal(err)
	}
	if _, ok := joined["explanation"]; !ok {
		t.Errorf("explainz with doc has no explanation: %v", joined)
	}

	for _, tc := range []struct {
		path string
		code int
	}{
		{"/explainz", 400},
		{"/explainz?user=nobody", 404},
		{"/explainz?user=alice&doc=banana", 400},
		{"/explainz?user=alice&doc=99999", 404},
	} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", tc.path, nil))
		if rec.Code != tc.code {
			t.Errorf("%s: status %d, want %d", tc.path, rec.Code, tc.code)
		}
	}
}
