package wire

import (
	"net"
	"strings"
	"testing"
	"time"

	"mmprofile/internal/pubsub"
)

// startServerOpts is startServer with an explicit broker configuration,
// returning the broker too so tests can drive it from underneath the wire
// layer (e.g. closing a subscriber without going through OpUnsubscribe).
func startServerOpts(t *testing.T, opts pubsub.Options) (*Client, *Server, *pubsub.Broker) {
	t.Helper()
	b := pubsub.New(opts)
	srv := NewServer(b, func(string, ...any) {})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(lis)
	}()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})
	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, srv, b
}

// TestPollReportsDropOldestGap pins the end-to-end loss-observability
// contract over a real socket: queue of 2, five matching publishes, and the
// poll response must carry the two surviving deliveries with the two
// highest sequence numbers plus next_seq/dropped values that account for
// every discarded one.
func TestPollReportsDropOldestGap(t *testing.T) {
	c, _, _ := startServerOpts(t, pubsub.Options{Threshold: 0.2, QueueSize: 2})
	if err := c.Subscribe("alice", "", []string{"cats"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := c.Publish(catPage); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := c.roundTrip(Request{Op: OpPoll, User: "alice"})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Deliveries) != 2 || resp.Deliveries[0].Seq != 3 || resp.Deliveries[1].Seq != 4 {
		t.Fatalf("deliveries = %+v, want seqs [3 4]", resp.Deliveries)
	}
	if resp.NextSeq != 5 || resp.Dropped != 3 {
		t.Fatalf("next_seq %d, dropped %d, want 5 and 3", resp.NextSeq, resp.Dropped)
	}
	// The client-side reconciliation the protocol guarantees: the first
	// received seq equals the drop count (seqs 0-2 vanished), and
	// received + dropped == next_seq.
	if got := uint64(len(resp.Deliveries)) + resp.Dropped; got != resp.NextSeq {
		t.Fatalf("received + dropped = %d, want %d", got, resp.NextSeq)
	}
}

// TestPollNegativeMaxDrainsAll pins the explicit "max ≤ 0 means unlimited"
// contract (the old code only handled it for 0 by way of a sentinel).
func TestPollNegativeMaxDrainsAll(t *testing.T) {
	c, _ := startServer(t)
	if err := c.Subscribe("alice", "", []string{"cats"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := c.Publish(catPage); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := c.Poll("alice", -7)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 3 {
		t.Fatalf("poll(max=-7) = %d items, want 3", len(ds))
	}
}

// TestSessionPushDelivery drives the tentpole path: one connection switches
// into push mode, publishes from another connection arrive as pushed frames
// with contiguous sequence numbers, and an unsubscribe ends the session
// with a final Closed frame — after which the server no longer holds the
// subscriber.
func TestSessionPushDelivery(t *testing.T) {
	c, srv, _ := startServerOpts(t, pubsub.Options{Threshold: 0.2, QueueSize: 64})
	if err := c.Subscribe("alice", "", []string{"cats"}); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Addr()
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	sess, err := sc.Session("alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := c.Publish(catPage); err != nil {
			t.Fatal(err)
		}
	}
	for sess.Received() < 3 {
		if _, err := sess.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	if sess.Gaps() != 0 || sess.Dropped() != 0 || sess.NextSeq() != 3 {
		t.Fatalf("gaps %d, dropped %d, next %d, want 0/0/3",
			sess.Gaps(), sess.Dropped(), sess.NextSeq())
	}
	if err := c.Unsubscribe("alice"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		frame, err := sess.Recv()
		if err != nil {
			t.Fatalf("no Closed frame before the stream ended: %v", err)
		}
		if frame.Closed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("timed out waiting for the Closed frame")
		}
	}
	if sub := srv.lookup("alice"); sub != nil {
		t.Fatal("closed session left the subscriber registered")
	}
}

// TestSessionKickEvicts pins the slow-consumer eviction hook: KickSession
// ends an in-flight push session with a final error frame naming the
// reason, but leaves the subscription itself registered — eviction sheds
// the consumer, not the profile.
func TestSessionKickEvicts(t *testing.T) {
	c, srv, _ := startServerOpts(t, pubsub.Options{Threshold: 0.2, QueueSize: 64})
	if err := c.Subscribe("alice", "", []string{"cats"}); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Addr()
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	sess, err := sc.Session("alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	if n := srv.KickSession("ghost", "no such session"); n != 0 {
		t.Fatalf("kick for unknown user signalled %d sessions", n)
	}
	// The session registers its kick channel just after the handshake ack,
	// so poll until the kick lands instead of racing it.
	deadline := time.Now().Add(5 * time.Second)
	for srv.KickSession("alice", "drop rate 12.0/s over 3 windows") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("kick never found the session")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := sess.Recv(); err == nil || !strings.Contains(err.Error(), "session evicted") {
		t.Fatalf("recv after kick: %v, want session evicted", err)
	}
	if srv.lookup("alice") == nil {
		t.Fatal("eviction removed the subscription itself")
	}
}

// TestSessionUnknownUser checks the session handshake rejects a user that
// was never subscribed.
func TestSessionUnknownUser(t *testing.T) {
	c, _ := startServer(t)
	if _, err := c.Session("ghost", 0); err == nil || !strings.Contains(err.Error(), "unknown subscriber") {
		t.Fatalf("session for unknown user: %v", err)
	}
}

// TestWatchReturnsClosedTail pins the drain fix: a subscriber closed
// broker-side (bypassing OpUnsubscribe) with deliveries still queued must
// get that tail back from watch — the old code discarded it — and the
// server must then drop its map entry instead of leaking it forever.
func TestWatchReturnsClosedTail(t *testing.T) {
	c, _, b := startServerOpts(t, pubsub.Options{Threshold: 0.2, QueueSize: 64})
	if err := c.Subscribe("alice", "", []string{"cats"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, _, err := c.Publish(catPage); err != nil {
			t.Fatal(err)
		}
	}
	b.Unsubscribe("alice") // closes the queue underneath the wire layer
	ds, err := c.Watch("alice", 0, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 {
		t.Fatalf("watch on closed subscriber returned %d deliveries, want the queued 2", len(ds))
	}
	// The leak fix: the entry is gone, not wedged as "closed" forever.
	if _, err := c.Poll("alice", 0); err == nil || !strings.Contains(err.Error(), "unknown subscriber") {
		t.Fatalf("poll after closed watch: %v, want unknown subscriber", err)
	}
}

// TestPollClosedEmptyUnregisters is the no-tail variant: the close surfaces
// as a terminal error exactly once, then the subscriber reads as unknown.
func TestPollClosedEmptyUnregisters(t *testing.T) {
	c, _, b := startServerOpts(t, pubsub.Options{Threshold: 0.2, QueueSize: 8})
	if err := c.Subscribe("bob", "", nil); err != nil {
		t.Fatal(err)
	}
	b.Unsubscribe("bob")
	if _, err := c.Poll("bob", 0); err == nil || !strings.Contains(err.Error(), "closed") {
		t.Fatalf("first poll after close: %v, want closed", err)
	}
	if _, err := c.Poll("bob", 0); err == nil || !strings.Contains(err.Error(), "unknown subscriber") {
		t.Fatalf("second poll after close: %v, want unknown subscriber", err)
	}
}

// TestAdoptCancelsReplaced pins the registration fix: adopting a new
// subscription over a live entry closes the old one (identity-matched)
// instead of silently overwriting it and leaking a queue nobody drains.
func TestAdoptCancelsReplaced(t *testing.T) {
	_, srv, b := startServerOpts(t, pubsub.Options{Threshold: 0.2, QueueSize: 8})
	subA, err := b.SubscribeKeywords("inst-a", []string{"cats"})
	if err != nil {
		t.Fatal(err)
	}
	subB, err := b.SubscribeKeywords("inst-b", []string{"cats"})
	if err != nil {
		t.Fatal(err)
	}
	srv.Adopt("alias", subA)
	srv.Adopt("alias", subB)
	if !subA.Closed() {
		t.Fatal("replaced subscription was not closed")
	}
	if subB.Closed() {
		t.Fatal("replacing subscription was closed")
	}
	if got := srv.lookup("alias"); got != subB {
		t.Fatal("alias does not resolve to the new subscription")
	}
	// Re-adopting the same subscription must not cancel it.
	srv.Adopt("alias", subB)
	if subB.Closed() {
		t.Fatal("re-adopting the same subscription closed it")
	}
	if got := b.Stats().Subscribers; got != 1 {
		t.Fatalf("%d broker subscribers, want 1", got)
	}
}
