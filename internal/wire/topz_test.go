package wire

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"mmprofile/internal/obs"
	"mmprofile/internal/pubsub"
	"mmprofile/internal/topk"
)

// topzFixture builds a broker with attribution traffic (drops included),
// a window ticked twice over its dimensions, and the status handler.
func topzFixture(t *testing.T) (*pubsub.Broker, *obs.Window, *httptest.ResponseRecorder) {
	t.Helper()
	b := pubsub.New(pubsub.Options{Threshold: 0.2, QueueSize: 2})
	if _, err := b.SubscribeKeywords("alice", []string{"cats"}); err != nil {
		t.Fatal(err)
	}
	win := obs.NewWindow(16)
	for _, d := range b.Top().Dimensions() {
		win.RegisterCounter("top:"+d.Name(), d.Total)
	}
	// Publish between the two ticks so the windowed deltas are non-zero.
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	win.Tick(now)
	for i := 0; i < 10; i++ {
		b.Publish("<html><body>cats cats cats</body></html>")
	}
	win.Tick(now.Add(time.Second))
	return b, win, httptest.NewRecorder()
}

// TestTopzEndpoint pins the /topz contract: every dimension with its
// error bound, k honored, dim filtering (404 on unknown), the table
// rendering, and windowed rates when a Window is wired.
func TestTopzEndpoint(t *testing.T) {
	b, win, rec := topzFixture(t)
	h := NewStatusHandlerOpts(b, StatusOptions{Window: win})

	h.ServeHTTP(rec, httptest.NewRequest("GET", "/topz", nil))
	if rec.Code != 200 {
		t.Fatalf("topz: %d", rec.Code)
	}
	var out struct {
		K          int `json:"k"`
		Dimensions []struct {
			topk.Snapshot
			Rates map[string]float64 `json:"rates_per_second"`
		} `json:"dimensions"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.K != 10 {
		t.Errorf("default k = %d", out.K)
	}
	byName := map[string]int{}
	for i, d := range out.Dimensions {
		byName[d.Name] = i
	}
	for _, want := range []string{
		"subscriber_deliveries", "subscriber_drops",
		"subscriber_queue_full", "subscriber_hydrations", "term_postings_scanned",
	} {
		if _, ok := byName[want]; !ok {
			t.Errorf("dimension %s missing from /topz", want)
		}
	}
	del := out.Dimensions[byName["subscriber_deliveries"]]
	if len(del.Entries) != 1 || del.Entries[0].Key != "alice" || del.Entries[0].Count != 10 {
		t.Errorf("deliveries = %+v", del.Entries)
	}
	if del.Capacity <= 0 || del.Total != 10 {
		t.Errorf("capacity %d total %v", del.Capacity, del.Total)
	}
	// 10 deliveries over the two ticks → a positive 10s-window rate.
	if del.Rates["10s"] <= 0 {
		t.Errorf("rates = %v, want a positive 10s rate", del.Rates)
	}

	// ?k= and ?dim= narrow the response.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/topz?dim=subscriber_drops&k=1", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Dimensions) != 1 || out.Dimensions[0].Name != "subscriber_drops" || out.K != 1 {
		t.Errorf("filtered topz = %+v", out)
	}
	if n := out.Dimensions[0].Entries[0].Count; n != 8 {
		t.Errorf("drops = %v, want 8 (queue 2, 10 publishes)", n)
	}

	// Unknown dimension: 404 with a JSON error.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/topz?dim=nope", nil))
	if rec.Code != 404 || !strings.Contains(rec.Body.String(), "nope") {
		t.Errorf("unknown dim: %d %q", rec.Code, rec.Body.String())
	}

	// Table rendering for terminals.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/topz?format=table", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("table content type = %q", ct)
	}
	if body := rec.Body.String(); !strings.Contains(body, "subscriber_deliveries") || !strings.Contains(body, "alice") {
		t.Errorf("table body missing entries:\n%s", body)
	}
}

// TestTszEndpoint pins /tsz: disabled without a window, and with one the
// snapshot carries per-counter rates/series and windowed histogram spans.
func TestTszEndpoint(t *testing.T) {
	b, win, rec := topzFixture(t)

	// No window wired → explicitly disabled, not an error.
	hOff := NewStatusHandlerOpts(b, StatusOptions{})
	hOff.ServeHTTP(rec, httptest.NewRequest("GET", "/tsz", nil))
	var off struct {
		Enabled bool `json:"enabled"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &off); err != nil {
		t.Fatal(err)
	}
	if rec.Code != 200 || off.Enabled {
		t.Fatalf("tsz without window: %d enabled=%v", rec.Code, off.Enabled)
	}

	h := NewStatusHandlerOpts(b, StatusOptions{Window: win})
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/tsz?n=1", nil))
	var snap obs.WindowSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if !snap.Enabled || snap.Samples != 2 {
		t.Fatalf("tsz = enabled %v samples %d", snap.Enabled, snap.Samples)
	}
	var found bool
	for _, c := range snap.Counters {
		if c.Name == "top:subscriber_deliveries" {
			found = true
			if len(c.Serie) > 1 {
				t.Errorf("?n=1 returned %d series points", len(c.Serie))
			}
		}
	}
	if !found {
		t.Error("top:subscriber_deliveries not in /tsz counters")
	}

	// ?name= filters to one series.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/tsz?name=top:subscriber_drops", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Name != "top:subscriber_drops" {
		t.Errorf("filtered tsz counters = %+v", snap.Counters)
	}
}

// TestStatszTopSectionAndRootLinks pins the satellite surface: /statsz
// embeds a "top" section, and the root page links every endpoint.
func TestStatszTopSectionAndRootLinks(t *testing.T) {
	b, win, rec := topzFixture(t)
	h := NewStatusHandlerOpts(b, StatusOptions{Window: win})

	h.ServeHTTP(rec, httptest.NewRequest("GET", "/statsz", nil))
	var stats map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	topSec, ok := stats["top"].([]any)
	if !ok || len(topSec) == 0 {
		t.Fatalf("statsz top section = %T %v", stats["top"], stats["top"])
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	body := rec.Body.String()
	for _, link := range []string{"/topz", "/tsz", "/explainz", "/debugz/dump", "/tracez", "/statsz", "/metrics"} {
		if !strings.Contains(body, link) {
			t.Errorf("root page missing %s", link)
		}
	}
}
