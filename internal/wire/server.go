package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"mmprofile/internal/filter"
	"mmprofile/internal/obs"
	"mmprofile/internal/pubsub"
	"mmprofile/internal/trace"
	"mmprofile/internal/vsm"

	// Register the baseline learners so wire subscribers can select them
	// by name (MM and MMND are registered via pubsub's core import).
	_ "mmprofile/internal/rocchio"
)

// Server serves the JSON protocol over a listener, one goroutine per
// connection, all connections sharing one broker.
type Server struct {
	broker *pubsub.Broker
	log    *obs.Logger
	rec    *obs.Recorder // flight recorder; nil → no panic bundles

	mu     sync.Mutex
	subs   map[string]*pubsub.Subscription
	closed bool
	lis    net.Listener
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	done   chan struct{} // closed by Close; unblocks watch handlers
}

// NewServer wraps a broker. The logf signature is kept for compatibility:
// it is adapted into the structured logging pipeline (obs.NewLogfLogger),
// so records render as "msg key=value" lines through logf. logf defaults
// to log.Printf; pass a no-op to silence it. Servers wanting real
// structured output use NewServerLogger.
func NewServer(b *pubsub.Broker, logf func(string, ...any)) *Server {
	return NewServerLogger(b, obs.NewLogfLogger(logf, nil))
}

// NewServerLogger wraps a broker with a structured logger (nil → the
// broker's logger, which may itself be nil for silence).
func NewServerLogger(b *pubsub.Broker, logger *obs.Logger) *Server {
	if logger == nil {
		logger = b.Log()
	}
	return &Server{
		broker: b,
		log:    logger,
		subs:   make(map[string]*pubsub.Subscription),
		conns:  make(map[net.Conn]struct{}),
		done:   make(chan struct{}),
	}
}

// SetRecorder attaches a flight recorder: a panic in a connection handler
// then writes a diagnostic bundle before crashing the process as before.
// Call before Serve.
func (s *Server) SetRecorder(rec *obs.Recorder) { s.rec = rec }

// Serve accepts connections until the listener is closed. It always
// returns a non-nil error (net.ErrClosed after Close).
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// Close stops accepting, closes every live connection, and waits for the
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if !s.closed {
		close(s.done)
	}
	s.closed = true
	lis := s.lis
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if lis != nil {
		err = lis.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) handle(conn net.Conn) {
	// Outermost so it sees any panic from the request loop: the bundle is
	// written, then the panic resumes and crashes the process as before.
	defer s.rec.RecoverRepanic()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	// The decode clocks are read only when the broker can trace at all, so
	// untraced servers keep the old two-syscalls-per-request loop.
	tracing := s.broker.Tracer().Enabled()
	for {
		var d0, d1 time.Time
		if tracing {
			d0 = time.Now()
		}
		var req Request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.log.Warn("wire: decode",
					slog.String("remote_addr", conn.RemoteAddr().String()),
					slog.String("err", err.Error()))
			}
			return
		}
		if tracing {
			d1 = time.Now()
		}
		resp := s.dispatchTimed(req, d0, d1)
		if err := enc.Encode(resp); err != nil {
			s.log.Warn("wire: encode",
				slog.String("remote_addr", conn.RemoteAddr().String()),
				slog.String("err", err.Error()),
				slog.String("trace_id", resp.Trace))
			return
		}
	}
}

// dispatch executes one request against the broker, reading its own decode
// timestamp (tests and fuzzing enter here).
func (s *Server) dispatch(req Request) Response {
	now := time.Now()
	return s.dispatchTimed(req, now, now)
}

// dispatchTimed executes one request. d0/d1 bracket the request decode:
// the wire.decode child span covers reading and parsing the request off
// the socket — including any wait for the client's bytes, which is why
// idle long-lived connections show large decode spans only when the next
// request was itself sampled.
func (s *Server) dispatchTimed(req Request, d0, d1 time.Time) Response {
	switch req.Op {
	case OpSubscribe:
		return s.subscribe(req)
	case OpUnsubscribe:
		s.mu.Lock()
		delete(s.subs, req.User)
		s.mu.Unlock()
		s.broker.Unsubscribe(req.User)
		return Response{OK: true}
	case OpPublish:
		return s.publishOp(req, d0, d1)
	case OpFeedback:
		return s.feedbackOp(req, d0, d1)
	case OpPoll:
		return s.poll(req)
	case OpWatch:
		return s.watch(req)
	case OpStats:
		c := s.broker.Stats()
		ix := s.broker.IndexStats()
		return Response{OK: true, Stats: &StatsMsg{
			Published:    c.Published,
			Deliveries:   c.Deliveries,
			Dropped:      c.Dropped,
			Feedbacks:    c.Feedbacks,
			Subscribers:  c.Subscribers,
			IndexVectors: ix.Vectors,
			IndexTerms:   ix.Terms,
		}}
	case OpProfile:
		return s.profile(req)
	case OpFetch:
		content, ok := s.broker.DocumentContent(req.Doc)
		if !ok {
			return errResponse("wire: document %d not retained with content", req.Doc)
		}
		return Response{OK: true, Content: content}
	case OpExport:
		snap, err := s.broker.ExportProfile(req.User)
		if err != nil {
			return errResponse("%v", err)
		}
		return Response{OK: true, Learner: snap.Learner, State: snap.Data}
	case OpImport:
		return s.importProfile(req)
	default:
		return errResponse("wire: unknown op %q", req.Op)
	}
}

// publishOp runs a publish under a request trace when the broker's tracer
// samples it (or the client propagated sampled context via req.Trace). The
// trace id goes back in the response so the publisher can cite it.
func (s *Server) publishOp(req Request, d0, d1 time.Time) Response {
	sp := s.broker.Tracer().RootAt("wire.publish", d0, trace.ParseContext(req.Trace))
	if sp != nil {
		dec := sp.ChildAt("wire.decode", d0)
		dec.EndAt(d1)
		sp.SetInt("content_bytes", int64(len(req.Content)))
	}
	doc, n := s.broker.PublishSpan(req.Content, sp)
	resp := Response{OK: true, Doc: doc, Delivered: n}
	if sp != nil {
		resp.Trace = sp.Trace().String()
		sp.End()
	}
	return resp
}

// feedbackOp is publishOp's twin for relevance judgments.
func (s *Server) feedbackOp(req Request, d0, d1 time.Time) Response {
	fd := filter.NotRelevant
	if req.Relevant {
		fd = filter.Relevant
	}
	sp := s.broker.Tracer().RootAt("wire.feedback", d0, trace.ParseContext(req.Trace))
	if sp != nil {
		dec := sp.ChildAt("wire.decode", d0)
		dec.EndAt(d1)
	}
	err := s.broker.FeedbackSpan(req.User, req.Doc, fd, sp)
	resp := Response{OK: true}
	if err != nil {
		resp = errResponse("%v", err)
	}
	if sp != nil {
		resp.Trace = sp.Trace().String()
		sp.End()
	}
	return resp
}

// importProfile subscribes req.User with a previously exported profile.
func (s *Server) importProfile(req Request) Response {
	if req.User == "" || req.Learner == "" {
		return errResponse("wire: import requires user and learner")
	}
	l, err := filter.New(req.Learner)
	if err != nil {
		return errResponse("%v", err)
	}
	if len(req.State) > 0 {
		u, ok := l.(interface{ UnmarshalBinary([]byte) error })
		if !ok {
			return errResponse("wire: learner %q is not restorable", req.Learner)
		}
		if err := u.UnmarshalBinary(req.State); err != nil {
			return errResponse("wire: import %q: %v", req.User, err)
		}
	}
	sub, err := s.broker.Subscribe(req.User, l)
	if err != nil {
		return errResponse("%v", err)
	}
	s.mu.Lock()
	s.subs[req.User] = sub
	s.mu.Unlock()
	return Response{OK: true}
}

func (s *Server) subscribe(req Request) Response {
	if req.User == "" {
		return errResponse("wire: subscribe requires user")
	}
	var (
		sub *pubsub.Subscription
		err error
	)
	if len(req.Keywords) > 0 && (req.Learner == "" || req.Learner == "MM") {
		sub, err = s.broker.SubscribeKeywords(req.User, req.Keywords)
	} else {
		name := req.Learner
		if name == "" {
			name = "MM"
		}
		var l filter.Learner
		l, err = filter.New(name)
		if err == nil {
			sub, err = s.broker.Subscribe(req.User, l)
		}
	}
	if err != nil {
		return errResponse("%v", err)
	}
	s.mu.Lock()
	s.subs[req.User] = sub
	s.mu.Unlock()
	return Response{OK: true}
}

func (s *Server) poll(req Request) Response {
	s.mu.Lock()
	sub := s.subs[req.User]
	s.mu.Unlock()
	if sub == nil {
		return errResponse("wire: unknown subscriber %q", req.User)
	}
	max := req.Max
	if max <= 0 {
		max = 1 << 30
	}
	var out []DeliveryMsg
	for len(out) < max {
		select {
		case d, ok := <-sub.Deliveries():
			if !ok {
				return errResponse("wire: subscriber %q closed", req.User)
			}
			out = append(out, DeliveryMsg{Doc: d.Doc, Score: d.Score})
		default:
			return Response{OK: true, Deliveries: out}
		}
	}
	return Response{OK: true, Deliveries: out}
}

// watch is the long-poll variant of poll: it blocks until at least one
// delivery is queued, the timeout elapses (returning an empty, successful
// response), or the server shuts down.
func (s *Server) watch(req Request) Response {
	s.mu.Lock()
	sub := s.subs[req.User]
	s.mu.Unlock()
	if sub == nil {
		return errResponse("wire: unknown subscriber %q", req.User)
	}
	timeout := 30 * time.Second
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case d, ok := <-sub.Deliveries():
		if !ok {
			return errResponse("wire: subscriber %q closed", req.User)
		}
		// First delivery in hand; drain whatever else is queued via the
		// non-blocking path, respecting Max (0 = unlimited).
		out := []DeliveryMsg{{Doc: d.Doc, Score: d.Score}}
		if req.Max != 1 {
			rest := s.poll(Request{User: req.User, Max: req.Max - 1})
			if rest.OK {
				out = append(out, rest.Deliveries...)
			}
		}
		return Response{OK: true, Deliveries: out}
	case <-timer.C:
		return Response{OK: true}
	case <-s.done:
		return errResponse("wire: server shutting down")
	}
}

func (s *Server) profile(req Request) Response {
	s.mu.Lock()
	sub := s.subs[req.User]
	s.mu.Unlock()
	if sub == nil {
		return errResponse("wire: unknown subscriber %q", req.User)
	}
	msg := &ProfileMsg{Size: sub.ProfileSize()}
	// Learner details go through the subscription to stay serialized.
	msg.Learner, msg.Vectors = s.describe(sub)
	return Response{OK: true, Profile: msg}
}

// describe snapshots a subscription's learner name and per-vector top terms.
func (s *Server) describe(sub *pubsub.Subscription) (string, [][]string) {
	type vectorSource interface {
		ProfileVectors() []vsm.Vector
	}
	name := ""
	var tops [][]string
	// A hydration failure leaves the description empty rather than failing
	// the profile request: size and learner identity are still reportable.
	_ = sub.WithLearner(func(l filter.Learner) {
		name = l.Name()
		if vs, ok := l.(vectorSource); ok {
			for _, v := range vs.ProfileVectors() {
				tops = append(tops, v.TopTerms(5))
			}
		}
	})
	return name, tops
}

// Adopt registers an existing subscription (e.g. one restored from the
// persistence layer at boot) so poll/profile requests can address it.
func (s *Server) Adopt(user string, sub *pubsub.Subscription) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.subs[user] = sub
}

// Addr returns the bound address once serving (for tests/examples that
// listen on :0).
func (s *Server) Addr() (net.Addr, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lis == nil {
		return nil, fmt.Errorf("wire: server not serving")
	}
	return s.lis.Addr(), nil
}
