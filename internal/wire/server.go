package wire

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"sync"
	"time"

	"mmprofile/internal/filter"
	"mmprofile/internal/metrics"
	"mmprofile/internal/obs"
	"mmprofile/internal/pubsub"
	"mmprofile/internal/trace"
	"mmprofile/internal/vsm"

	// Register the baseline learners so wire subscribers can select them
	// by name (MM and MMND are registered via pubsub's core import).
	_ "mmprofile/internal/rocchio"
)

// Server serves the JSON protocol over a listener, one goroutine per
// connection, all connections sharing one broker.
type Server struct {
	broker *pubsub.Broker
	log    *obs.Logger
	rec    *obs.Recorder // flight recorder; nil → no panic bundles

	// Session-layer instruments, registered into the broker's registry so
	// they ride the same /metrics exposition.
	sessions          *metrics.Gauge   // connections currently in push mode
	sessionFrames     *metrics.Counter // coalesced frames pushed
	sessionDeliveries *metrics.Counter // deliveries pushed across all frames
	slowEvictions     *metrics.Counter // sessions closed by the eviction policy

	mu     sync.Mutex
	subs   map[string]*pubsub.Subscription
	closed bool
	lis    net.Listener
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	done   chan struct{} // closed by Close; unblocks watch and session handlers

	// sessKicks tracks every in-flight push session's kick channel by
	// user, so the slow-consumer eviction policy (mmserver
	// -evict-drop-rate) can end sessions without owning the connection.
	// Guarded by mu.
	sessKicks map[string]map[chan string]struct{}
}

// NewServer wraps a broker. The logf signature is kept for compatibility:
// it is adapted into the structured logging pipeline (obs.NewLogfLogger),
// so records render as "msg key=value" lines through logf. logf defaults
// to log.Printf; pass a no-op to silence it. Servers wanting real
// structured output use NewServerLogger.
func NewServer(b *pubsub.Broker, logf func(string, ...any)) *Server {
	return NewServerLogger(b, obs.NewLogfLogger(logf, nil))
}

// NewServerLogger wraps a broker with a structured logger (nil → the
// broker's logger, which may itself be nil for silence).
func NewServerLogger(b *pubsub.Broker, logger *obs.Logger) *Server {
	if logger == nil {
		logger = b.Log()
	}
	reg := b.Metrics()
	return &Server{
		broker: b,
		log:    logger,
		sessions: reg.Gauge("mm_wire_sessions",
			"Wire connections currently held in server-push session mode."),
		sessionFrames: reg.Counter("mm_wire_session_frames_total",
			"Coalesced delivery frames pushed to session connections."),
		sessionDeliveries: reg.Counter("mm_wire_session_deliveries_total",
			"Deliveries pushed to session connections across all frames."),
		slowEvictions: reg.Counter("mm_pubsub_slow_evictions_total",
			"Push sessions closed because their windowed drop rate stayed pathological (mmserver -evict-drop-rate)."),
		subs:      make(map[string]*pubsub.Subscription),
		conns:     make(map[net.Conn]struct{}),
		done:      make(chan struct{}),
		sessKicks: make(map[string]map[chan string]struct{}),
	}
}

// addKick registers a session's kick channel under user.
func (s *Server) addKick(user string, ch chan string) {
	s.mu.Lock()
	set := s.sessKicks[user]
	if set == nil {
		set = make(map[chan string]struct{})
		s.sessKicks[user] = set
	}
	set[ch] = struct{}{}
	s.mu.Unlock()
}

// removeKick unregisters a session's kick channel.
func (s *Server) removeKick(user string, ch chan string) {
	s.mu.Lock()
	if set := s.sessKicks[user]; set != nil {
		delete(set, ch)
		if len(set) == 0 {
			delete(s.sessKicks, user)
		}
	}
	s.mu.Unlock()
}

// KickSession ends every push session currently open for user: each
// session's pump sends the client a final error frame carrying reason and
// returns, releasing the connection. The subscription itself survives —
// eviction sheds the consumer, not the profile. Returns how many sessions
// were signalled; each one bumps mm_pubsub_slow_evictions_total and
// writes an audit event through the server's structured log (which the
// flight recorder's ring tees into crash bundles).
func (s *Server) KickSession(user, reason string) int {
	s.mu.Lock()
	n := 0
	for ch := range s.sessKicks[user] {
		select {
		case ch <- reason:
			n++
		default: // already signalled
		}
	}
	s.mu.Unlock()
	if n > 0 {
		s.slowEvictions.Add(int64(n))
		s.log.Warn("wire: session evicted",
			slog.String("user", user),
			slog.String("reason", reason),
			slog.Int("sessions", n))
	}
	return n
}

// SetRecorder attaches a flight recorder: a panic in a connection handler
// then writes a diagnostic bundle before crashing the process as before.
// Call before Serve.
func (s *Server) SetRecorder(rec *obs.Recorder) { s.rec = rec }

// Serve accepts connections until the listener is closed. It always
// returns a non-nil error (net.ErrClosed after Close).
func (s *Server) Serve(lis net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return net.ErrClosed
	}
	s.lis = lis
	s.mu.Unlock()
	for {
		conn, err := lis.Accept()
		if err != nil {
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return net.ErrClosed
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handle(conn)
	}
}

// ServeConn runs the protocol on one pre-established connection, as if it
// had arrived through Serve's listener. It returns immediately; the
// connection is handled on its own goroutine and participates in Close's
// drain like any accepted one. Used for transports that never touch a
// listener — net.Pipe in tests and mmload's in-process session harness.
func (s *Server) ServeConn(conn net.Conn) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		conn.Close()
		return
	}
	s.conns[conn] = struct{}{}
	s.wg.Add(1)
	s.mu.Unlock()
	go s.handle(conn)
}

// Close stops accepting, closes every live connection, and waits for the
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if !s.closed {
		close(s.done)
	}
	s.closed = true
	lis := s.lis
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	var err error
	if lis != nil {
		err = lis.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) handle(conn net.Conn) {
	// Outermost so it sees any panic from the request loop: the bundle is
	// written, then the panic resumes and crashes the process as before.
	defer s.rec.RecoverRepanic()
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.wg.Done()
	}()
	dec := json.NewDecoder(conn)
	enc := json.NewEncoder(conn)
	// The decode clocks are read only when the broker can trace at all, so
	// untraced servers keep the old two-syscalls-per-request loop.
	tracing := s.broker.Tracer().Enabled()
	for {
		var d0, d1 time.Time
		if tracing {
			d0 = time.Now()
		}
		var req Request
		if err := dec.Decode(&req); err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.log.Warn("wire: decode",
					slog.String("remote_addr", conn.RemoteAddr().String()),
					slog.String("err", err.Error()))
			}
			return
		}
		if tracing {
			d1 = time.Now()
		}
		if req.Op == OpSession {
			// Session mode takes over the connection: the ack and every
			// subsequent frame are written by the pump, and the serial
			// request loop never resumes.
			s.session(conn, enc, dec, req)
			return
		}
		resp := s.dispatchTimed(req, d0, d1)
		if err := enc.Encode(resp); err != nil {
			s.log.Warn("wire: encode",
				slog.String("remote_addr", conn.RemoteAddr().String()),
				slog.String("err", err.Error()),
				slog.String("trace_id", resp.Trace))
			return
		}
	}
}

// dispatch executes one request against the broker, reading its own decode
// timestamp (tests and fuzzing enter here).
func (s *Server) dispatch(req Request) Response {
	now := time.Now()
	return s.dispatchTimed(req, now, now)
}

// dispatchTimed executes one request. d0/d1 bracket the request decode:
// the wire.decode child span covers reading and parsing the request off
// the socket — including any wait for the client's bytes, which is why
// idle long-lived connections show large decode spans only when the next
// request was itself sampled.
func (s *Server) dispatchTimed(req Request, d0, d1 time.Time) Response {
	switch req.Op {
	case OpSubscribe:
		return s.subscribe(req)
	case OpUnsubscribe:
		s.mu.Lock()
		delete(s.subs, req.User)
		s.mu.Unlock()
		s.broker.Unsubscribe(req.User)
		return Response{OK: true}
	case OpPublish:
		return s.publishOp(req, d0, d1)
	case OpFeedback:
		return s.feedbackOp(req, d0, d1)
	case OpPoll:
		return s.poll(req)
	case OpWatch:
		return s.watch(req)
	case OpSession:
		// Reachable only through direct dispatch (tests, fuzzing): on a live
		// connection the request loop hands session off before dispatching.
		return errResponse("wire: session requires a dedicated connection")
	case OpStats:
		c := s.broker.Stats()
		ix := s.broker.IndexStats()
		return Response{OK: true, Stats: &StatsMsg{
			Published:    c.Published,
			Deliveries:   c.Deliveries,
			Dropped:      c.Dropped,
			Feedbacks:    c.Feedbacks,
			Subscribers:  c.Subscribers,
			IndexVectors: ix.Vectors,
			IndexTerms:   ix.Terms,
		}}
	case OpProfile:
		return s.profile(req)
	case OpFetch:
		content, ok := s.broker.DocumentContent(req.Doc)
		if !ok {
			return errResponse("wire: document %d not retained with content", req.Doc)
		}
		return Response{OK: true, Content: content}
	case OpExport:
		snap, err := s.broker.ExportProfile(req.User)
		if err != nil {
			return errResponse("%v", err)
		}
		return Response{OK: true, Learner: snap.Learner, State: snap.Data}
	case OpImport:
		return s.importProfile(req)
	default:
		return errResponse("wire: unknown op %q", req.Op)
	}
}

// publishOp runs a publish under a request trace when the broker's tracer
// samples it (or the client propagated sampled context via req.Trace). The
// trace id goes back in the response so the publisher can cite it.
func (s *Server) publishOp(req Request, d0, d1 time.Time) Response {
	sp := s.broker.Tracer().RootAt("wire.publish", d0, trace.ParseContext(req.Trace))
	if sp != nil {
		dec := sp.ChildAt("wire.decode", d0)
		dec.EndAt(d1)
		sp.SetInt("content_bytes", int64(len(req.Content)))
	}
	doc, n := s.broker.PublishSpan(req.Content, sp)
	resp := Response{OK: true, Doc: doc, Delivered: n}
	if sp != nil {
		resp.Trace = sp.Trace().String()
		sp.End()
	}
	return resp
}

// feedbackOp is publishOp's twin for relevance judgments.
func (s *Server) feedbackOp(req Request, d0, d1 time.Time) Response {
	fd := filter.NotRelevant
	if req.Relevant {
		fd = filter.Relevant
	}
	sp := s.broker.Tracer().RootAt("wire.feedback", d0, trace.ParseContext(req.Trace))
	if sp != nil {
		dec := sp.ChildAt("wire.decode", d0)
		dec.EndAt(d1)
	}
	err := s.broker.FeedbackSpan(req.User, req.Doc, fd, sp)
	resp := Response{OK: true}
	if err != nil {
		resp = errResponse("%v", err)
	}
	if sp != nil {
		resp.Trace = sp.Trace().String()
		sp.End()
	}
	return resp
}

// importProfile subscribes req.User with a previously exported profile.
func (s *Server) importProfile(req Request) Response {
	if req.User == "" || req.Learner == "" {
		return errResponse("wire: import requires user and learner")
	}
	l, err := filter.New(req.Learner)
	if err != nil {
		return errResponse("%v", err)
	}
	if len(req.State) > 0 {
		u, ok := l.(interface{ UnmarshalBinary([]byte) error })
		if !ok {
			return errResponse("wire: learner %q is not restorable", req.Learner)
		}
		if err := u.UnmarshalBinary(req.State); err != nil {
			return errResponse("wire: import %q: %v", req.User, err)
		}
	}
	sub, err := s.broker.Subscribe(req.User, l)
	if err != nil {
		return errResponse("%v", err)
	}
	s.register(req.User, sub)
	return Response{OK: true}
}

func (s *Server) subscribe(req Request) Response {
	if req.User == "" {
		return errResponse("wire: subscribe requires user")
	}
	var (
		sub *pubsub.Subscription
		err error
	)
	if len(req.Keywords) > 0 && (req.Learner == "" || req.Learner == "MM") {
		sub, err = s.broker.SubscribeKeywords(req.User, req.Keywords)
	} else {
		name := req.Learner
		if name == "" {
			name = "MM"
		}
		var l filter.Learner
		l, err = filter.New(name)
		if err == nil {
			sub, err = s.broker.Subscribe(req.User, l)
		}
	}
	if err != nil {
		return errResponse("%v", err)
	}
	s.register(req.User, sub)
	return Response{OK: true}
}

// drain appends queued deliveries to out without blocking until the queue
// is empty, the subscriber closes, or out reaches max. max ≤ 0 means
// unlimited — the explicit contract poll, watch, and session frames share
// (the old code relied on a -1 happening to hit a 1<<30 sentinel).
func drain(sub *pubsub.Subscription, out []DeliveryMsg, max int) (msgs []DeliveryMsg, closed bool) {
	for max <= 0 || len(out) < max {
		select {
		case d, ok := <-sub.Deliveries():
			if !ok {
				return out, true
			}
			out = append(out, DeliveryMsg{Doc: d.Doc, Score: d.Score, Seq: d.Seq})
		default:
			return out, false
		}
	}
	return out, false
}

// deliveryResponse assembles poll/watch's reply: the drained deliveries
// plus the gap signal (next expected sequence and cumulative drop count).
// A closed subscriber is unregistered from the connection map — the fix
// for the old leak where entries lingered forever — and its drained tail
// is returned, never discarded: only when nothing was queued does the
// close surface as the terminal "closed" error.
func (s *Server) deliveryResponse(user string, sub *pubsub.Subscription, out []DeliveryMsg, closed bool) Response {
	next, dropped := sub.DeliveryStats()
	if closed {
		s.unregister(user, sub)
		if len(out) == 0 {
			return errResponse("wire: subscriber %q closed", user)
		}
	}
	return Response{OK: true, Deliveries: out, NextSeq: next, Dropped: dropped, Closed: closed}
}

func (s *Server) poll(req Request) Response {
	sub := s.lookup(req.User)
	if sub == nil {
		return errResponse("wire: unknown subscriber %q", req.User)
	}
	out, closed := drain(sub, nil, req.Max)
	return s.deliveryResponse(req.User, sub, out, closed)
}

// watch is the long-poll variant of poll: it blocks until at least one
// delivery is queued, the timeout elapses (returning an empty, successful
// response), or the server shuts down. Note that a blocked watch wedges
// its connection's serial request loop for up to the timeout — the session
// op exists so persistent consumers don't pay that; watch remains for
// one-shot CLI-style waiting.
func (s *Server) watch(req Request) Response {
	sub := s.lookup(req.User)
	if sub == nil {
		return errResponse("wire: unknown subscriber %q", req.User)
	}
	timeout := 30 * time.Second
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case d, ok := <-sub.Deliveries():
		if !ok {
			return s.deliveryResponse(req.User, sub, nil, true)
		}
		// First delivery in hand; drain whatever else is queued without
		// blocking. A subscriber closing mid-drain no longer discards the
		// deliveries already collected — they return with Closed set.
		out := []DeliveryMsg{{Doc: d.Doc, Score: d.Score, Seq: d.Seq}}
		out, closed := drain(sub, out, req.Max)
		return s.deliveryResponse(req.User, sub, out, closed)
	case <-timer.C:
		next, dropped := sub.DeliveryStats()
		return Response{OK: true, NextSeq: next, Dropped: dropped}
	case <-s.done:
		return errResponse("wire: server shutting down")
	}
}

// defaultSessionBatch caps deliveries coalesced into one session frame
// when the client doesn't choose (Request.Batch).
const defaultSessionBatch = 64

// session runs the server-push pump for one subscriber on a dedicated
// connection (OpSession). After the OK ack the server owns the socket:
// every queued delivery is pushed as soon as it exists, coalesced with
// whatever else is queued (up to the batch bound) into a single frame —
// one write per burst instead of one round trip per document, and no
// 30s-blocked serial loop. The pump ends when the subscriber is
// unsubscribed (final frame carries Closed), the client closes or writes
// anything, a push fails, or the server shuts down.
func (s *Server) session(conn net.Conn, enc *json.Encoder, dec *json.Decoder, req Request) {
	sub := s.lookup(req.User)
	if sub == nil {
		_ = enc.Encode(errResponse("wire: unknown subscriber %q", req.User))
		return
	}
	batch := req.Batch
	if batch <= 0 {
		batch = defaultSessionBatch
	}
	next, dropped := sub.DeliveryStats()
	if err := enc.Encode(Response{OK: true, NextSeq: next, Dropped: dropped}); err != nil {
		return
	}
	s.sessions.Add(1)
	defer s.sessions.Add(-1)
	if s.log.Enabled(obs.LevelDebug) {
		s.log.Debug("wire: session start",
			slog.String("user", req.User),
			slog.String("remote_addr", conn.RemoteAddr().String()))
	}

	// Push mode inverts the connection: the only thing a client can send
	// is teardown. A one-shot reader watches for it — EOF, a reset, or any
	// stray frame all end the session — so an idle session notices a gone
	// client instead of holding the subscriber map entry forever.
	clientGone := make(chan struct{})
	go func() {
		var stray Request
		_ = dec.Decode(&stray)
		close(clientGone)
	}()

	// Buffered so KickSession never blocks holding s.mu; a second kick
	// while one is pending is dropped (the session is ending anyway).
	kick := make(chan string, 1)
	s.addKick(req.User, kick)
	defer s.removeKick(req.User, kick)

	msgs := make([]DeliveryMsg, 0, batch)
	for {
		select {
		case d, ok := <-sub.Deliveries():
			if !ok {
				s.unregister(req.User, sub)
				next, dropped := sub.DeliveryStats()
				_ = enc.Encode(Response{OK: true, Closed: true, NextSeq: next, Dropped: dropped})
				return
			}
			msgs = append(msgs[:0], DeliveryMsg{Doc: d.Doc, Score: d.Score, Seq: d.Seq})
			var closed bool
			msgs, closed = drain(sub, msgs, batch)
			next, dropped := sub.DeliveryStats()
			if err := enc.Encode(Response{OK: true, Deliveries: msgs, NextSeq: next, Dropped: dropped, Closed: closed}); err != nil {
				return
			}
			s.sessionFrames.Inc()
			s.sessionDeliveries.Add(int64(len(msgs)))
			if closed {
				s.unregister(req.User, sub)
				return
			}
		case reason := <-kick:
			_ = enc.Encode(errResponse("wire: session evicted: %s", reason))
			return
		case <-clientGone:
			return
		case <-s.done:
			_ = enc.Encode(errResponse("wire: server shutting down"))
			return
		}
	}
}

func (s *Server) profile(req Request) Response {
	sub := s.lookup(req.User)
	if sub == nil {
		return errResponse("wire: unknown subscriber %q", req.User)
	}
	msg := &ProfileMsg{Size: sub.ProfileSize()}
	// Learner details go through the subscription to stay serialized.
	msg.Learner, msg.Vectors = s.describe(sub)
	return Response{OK: true, Profile: msg}
}

// describe snapshots a subscription's learner name and per-vector top terms.
func (s *Server) describe(sub *pubsub.Subscription) (string, [][]string) {
	type vectorSource interface {
		ProfileVectors() []vsm.Vector
	}
	name := ""
	var tops [][]string
	// A hydration failure leaves the description empty rather than failing
	// the profile request: size and learner identity are still reportable.
	_ = sub.WithLearner(func(l filter.Learner) {
		name = l.Name()
		if vs, ok := l.(vectorSource); ok {
			for _, v := range vs.ProfileVectors() {
				tops = append(tops, v.TopTerms(5))
			}
		}
	})
	return name, tops
}

// lookup resolves the registered subscription for user (nil when absent).
func (s *Server) lookup(user string) *pubsub.Subscription {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.subs[user]
}

// register binds user → sub in the connection-addressable map. When a
// different subscription already held the name, the old one is canceled
// (identity-matched, so a handle that was already replaced broker-side is
// a no-op) instead of being silently overwritten and leaked with a live
// queue nobody can drain.
func (s *Server) register(user string, sub *pubsub.Subscription) {
	s.mu.Lock()
	old := s.subs[user]
	s.subs[user] = sub
	s.mu.Unlock()
	if old != nil && old != sub {
		old.Cancel()
	}
}

// unregister removes the user → sub binding, but only while it still
// points at sub: a concurrent re-subscribe may already have replaced it,
// and its fresh entry must survive.
func (s *Server) unregister(user string, sub *pubsub.Subscription) {
	s.mu.Lock()
	if s.subs[user] == sub {
		delete(s.subs, user)
	}
	s.mu.Unlock()
}

// Adopt registers an existing subscription (e.g. one restored from the
// persistence layer at boot) so poll/profile requests can address it.
// Adopting over a live entry closes the old subscription rather than
// leaking it.
func (s *Server) Adopt(user string, sub *pubsub.Subscription) {
	s.register(user, sub)
}

// Addr returns the bound address once serving (for tests/examples that
// listen on :0).
func (s *Server) Addr() (net.Addr, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lis == nil {
		return nil, fmt.Errorf("wire: server not serving")
	}
	return s.lis.Addr(), nil
}
