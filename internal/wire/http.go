package wire

import (
	"encoding/json"
	"expvar"
	"fmt"
	"html"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"

	"mmprofile/internal/metrics"
	"mmprofile/internal/pubsub"
)

// expvar's namespace is process-global, so the "mmprofile" var can only
// be published once regardless of how many handlers (or test brokers)
// exist. The var reads whichever registry was installed most recently —
// in practice the one serving mmserver's -http listener.
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[metrics.Registry]
)

func publishExpvar(reg *metrics.Registry) {
	expvarReg.Store(reg)
	expvarOnce.Do(func() {
		expvar.Publish("mmprofile", expvar.Func(func() any {
			if r := expvarReg.Load(); r != nil {
				return r.Snapshot()
			}
			return nil
		}))
	})
}

// NewStatusHandler serves broker observability over HTTP:
//
//	GET /healthz      — liveness ("ok")
//	GET /statsz       — broker + index counters as JSON, plus a "metrics"
//	                    object with the full registry snapshot
//	GET /metrics      — Prometheus text exposition (format 0.0.4)
//	GET /varz         — Go expvar JSON (memstats, cmdline, "mmprofile")
//	GET /debug/pprof/ — runtime profiling endpoints
//	GET /             — a minimal human-readable dashboard
//
// Mounted by mmserver's -http flag; handlers are read-only (pprof's
// profile/trace endpoints start collections but mutate nothing).
func NewStatusHandler(b *pubsub.Broker) http.Handler {
	reg := b.Metrics()
	publishExpvar(reg)

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		c := b.Stats()
		ix := b.IndexStats()
		lay := b.Layout()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"published":      c.Published,
			"deliveries":     c.Deliveries,
			"dropped":        c.Dropped,
			"feedbacks":      c.Feedbacks,
			"subscribers":    c.Subscribers,
			"index_users":    ix.Users,
			"index_vectors":  ix.Vectors,
			"index_terms":    ix.Terms,
			"index_postings": ix.Postings,
			"layout": map[string]int{
				"registry_shards": lay.RegistryShards,
				"doc_shards":      lay.DocShards,
				"stats_stripes":   lay.StatsStripes,
				"index_shards":    lay.IndexShards,
			},
			"metrics": reg.Snapshot(),
		})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.Handle("/varz", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		c := b.Stats()
		ix := b.IndexStats()
		lay := b.Layout()
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, `<!DOCTYPE html><html><head><title>mmserver</title></head><body>
<h1>mmserver</h1>
<table border="1" cellpadding="4">
<tr><td>subscribers</td><td>%d</td></tr>
<tr><td>published</td><td>%d</td></tr>
<tr><td>deliveries</td><td>%d (dropped %d)</td></tr>
<tr><td>feedbacks</td><td>%d</td></tr>
<tr><td>index</td><td>%d vectors over %d terms (%d postings)</td></tr>
<tr><td>sharding</td><td>registry ×%d · docstore ×%d · termstats ×%d · index ×%d</td></tr>
</table>
<p><a href="%s">/statsz</a> · <a href="%s">/metrics</a> · <a href="%s">/varz</a> · <a href="%s">/debug/pprof/</a> · <a href="%s">/healthz</a></p>
</body></html>`,
			c.Subscribers, c.Published, c.Deliveries, c.Dropped, c.Feedbacks,
			ix.Vectors, ix.Terms, ix.Postings,
			lay.RegistryShards, lay.DocShards, lay.StatsStripes, lay.IndexShards,
			html.EscapeString("/statsz"), html.EscapeString("/metrics"),
			html.EscapeString("/varz"), html.EscapeString("/debug/pprof/"),
			html.EscapeString("/healthz"))
	})
	return mux
}
