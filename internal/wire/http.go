package wire

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"

	"mmprofile/internal/pubsub"
)

// NewStatusHandler serves broker observability over HTTP:
//
//	GET /healthz — liveness ("ok")
//	GET /statsz  — broker + index counters as JSON
//	GET /        — a minimal human-readable dashboard
//
// Mounted by mmserver's -http flag; handlers are read-only.
func NewStatusHandler(b *pubsub.Broker) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		c := b.Stats()
		ix := b.IndexStats()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"published":      c.Published,
			"deliveries":     c.Deliveries,
			"dropped":        c.Dropped,
			"feedbacks":      c.Feedbacks,
			"subscribers":    c.Subscribers,
			"index_users":    ix.Users,
			"index_vectors":  ix.Vectors,
			"index_terms":    ix.Terms,
			"index_postings": ix.Postings,
		})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		c := b.Stats()
		ix := b.IndexStats()
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, `<!DOCTYPE html><html><head><title>mmserver</title></head><body>
<h1>mmserver</h1>
<table border="1" cellpadding="4">
<tr><td>subscribers</td><td>%d</td></tr>
<tr><td>published</td><td>%d</td></tr>
<tr><td>deliveries</td><td>%d (dropped %d)</td></tr>
<tr><td>feedbacks</td><td>%d</td></tr>
<tr><td>index</td><td>%d vectors over %d terms (%d postings)</td></tr>
</table>
<p><a href="%s">/statsz</a> · <a href="%s">/healthz</a></p>
</body></html>`,
			c.Subscribers, c.Published, c.Deliveries, c.Dropped, c.Feedbacks,
			ix.Vectors, ix.Terms, ix.Postings,
			html.EscapeString("/statsz"), html.EscapeString("/healthz"))
	})
	return mux
}
