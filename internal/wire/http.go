package wire

import (
	"encoding/json"
	"expvar"
	"fmt"
	"html"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"

	"mmprofile/internal/metrics"
	"mmprofile/internal/pubsub"
)

// expvar's namespace is process-global, so the "mmprofile" var can only
// be published once regardless of how many handlers (or test brokers)
// exist. The var reads whichever registry was installed most recently —
// in practice the one serving mmserver's -http listener.
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[metrics.Registry]
)

func publishExpvar(reg *metrics.Registry) {
	expvarReg.Store(reg)
	expvarOnce.Do(func() {
		expvar.Publish("mmprofile", expvar.Func(func() any {
			if r := expvarReg.Load(); r != nil {
				return r.Snapshot()
			}
			return nil
		}))
	})
}

// NewStatusHandler serves broker observability over HTTP:
//
//	GET /healthz      — liveness ("ok")
//	GET /statsz       — broker + index counters as JSON, plus a "metrics"
//	                    object with the full registry snapshot
//	GET /metrics      — Prometheus text exposition (format 0.0.4);
//	                    ?format=json returns the registry snapshot as JSON
//	GET /tracez       — sampled + slow request traces as JSON;
//	                    ?trace=<id> looks up one trace by hex id
//	GET /explainz     — ?user= profile vectors + adaptation audit journal;
//	                    &doc= additionally scores a retained document
//	GET /varz         — Go expvar JSON (memstats, cmdline, "mmprofile")
//	GET /debug/pprof/ — runtime profiling endpoints
//	GET /             — a minimal human-readable dashboard
//
// Mounted by mmserver's -http flag; handlers are read-only (pprof's
// profile/trace endpoints start collections but mutate nothing).
func NewStatusHandler(b *pubsub.Broker) http.Handler {
	reg := b.Metrics()
	publishExpvar(reg)

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		c := b.Stats()
		ix := b.IndexStats()
		lay := b.Layout()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"published":      c.Published,
			"deliveries":     c.Deliveries,
			"dropped":        c.Dropped,
			"feedbacks":      c.Feedbacks,
			"subscribers":    c.Subscribers,
			"index_users":    ix.Users,
			"index_vectors":  ix.Vectors,
			"index_terms":    ix.Terms,
			"index_postings": ix.Postings,
			"layout": map[string]int{
				"registry_shards": lay.RegistryShards,
				"doc_shards":      lay.DocShards,
				"stats_stripes":   lay.StatsStripes,
				"index_shards":    lay.IndexShards,
			},
			"metrics": reg.Snapshot(),
		})
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(reg.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		tr := b.Tracer()
		if tr == nil {
			json.NewEncoder(w).Encode(map[string]any{"enabled": false})
			return
		}
		if id := r.URL.Query().Get("trace"); id != "" {
			ts, ok := tr.Find(id)
			if !ok {
				w.WriteHeader(http.StatusNotFound)
				json.NewEncoder(w).Encode(map[string]any{"error": "trace not found", "trace": id})
				return
			}
			json.NewEncoder(w).Encode(ts)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"enabled": true, "snapshot": tr.Snapshot()})
	})
	mux.HandleFunc("/explainz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		user := r.URL.Query().Get("user")
		if user == "" {
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(map[string]any{"error": "missing user parameter"})
			return
		}
		terms := 5
		if t := r.URL.Query().Get("terms"); t != "" {
			if n, err := strconv.Atoi(t); err == nil && n >= 0 {
				terms = n
			}
		}
		info, err := b.ProfileInfo(user, terms)
		if err != nil {
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(map[string]any{"error": err.Error()})
			return
		}
		out := map[string]any{"profile": info}
		if d := r.URL.Query().Get("doc"); d != "" {
			doc, err := strconv.ParseInt(d, 10, 64)
			if err != nil {
				w.WriteHeader(http.StatusBadRequest)
				json.NewEncoder(w).Encode(map[string]any{"error": "bad doc parameter: " + d})
				return
			}
			ex, err := b.ExplainDoc(user, doc, terms)
			if err != nil {
				w.WriteHeader(http.StatusNotFound)
				json.NewEncoder(w).Encode(map[string]any{"error": err.Error()})
				return
			}
			out["doc"] = doc
			out["explanation"] = ex
		}
		json.NewEncoder(w).Encode(out)
	})
	mux.Handle("/varz", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		c := b.Stats()
		ix := b.IndexStats()
		lay := b.Layout()
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, `<!DOCTYPE html><html><head><title>mmserver</title></head><body>
<h1>mmserver</h1>
<table border="1" cellpadding="4">
<tr><td>subscribers</td><td>%d</td></tr>
<tr><td>published</td><td>%d</td></tr>
<tr><td>deliveries</td><td>%d (dropped %d)</td></tr>
<tr><td>feedbacks</td><td>%d</td></tr>
<tr><td>index</td><td>%d vectors over %d terms (%d postings)</td></tr>
<tr><td>sharding</td><td>registry ×%d · docstore ×%d · termstats ×%d · index ×%d</td></tr>
</table>
<p><a href="%s">/statsz</a> · <a href="%s">/metrics</a> · <a href="%s">/tracez</a> · <a href="%s">/varz</a> · <a href="%s">/debug/pprof/</a> · <a href="%s">/healthz</a></p>
</body></html>`,
			c.Subscribers, c.Published, c.Deliveries, c.Dropped, c.Feedbacks,
			ix.Vectors, ix.Terms, ix.Postings,
			lay.RegistryShards, lay.DocShards, lay.StatsStripes, lay.IndexShards,
			html.EscapeString("/statsz"), html.EscapeString("/metrics"),
			html.EscapeString("/tracez"), html.EscapeString("/varz"),
			html.EscapeString("/debug/pprof/"), html.EscapeString("/healthz"))
	})
	return mux
}
