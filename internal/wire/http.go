// The HTTP side of package wire distinguishes liveness from readiness:
//
//   - /healthz is pure liveness. It answers "ok" whenever the process can
//     serve an HTTP request at all, and nothing else — a deadlocked broker
//     with a live HTTP listener still answers. Point process supervisors
//     (restart-on-failure) here: restarting on readiness would bounce a
//     server that is merely draining or briefly degraded.
//   - /readyz is readiness. It rolls up per-component state — store WAL
//     writable, index generation live, publish loop responsive via
//     heartbeat — and answers 200 while the server should receive traffic
//     (ready or degraded) and 503 while it should not (not_ready at
//     startup, draining at shutdown, or a hard component failure). Point
//     load balancers here. mmserver flips it to draining before the
//     listener closes, so balancers stop routing ahead of the drain.
//
// The split matters precisely at shutdown: /healthz stays green through a
// graceful drain (the process is alive and must not be restarted) while
// /readyz goes 503 (it must stop receiving new connections).
package wire

import (
	"encoding/json"
	"expvar"
	"fmt"
	"html"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"sync/atomic"

	"mmprofile/internal/metrics"
	"mmprofile/internal/obs"
	"mmprofile/internal/pubsub"
	"mmprofile/internal/topk"
)

// expvar's namespace is process-global, so the "mmprofile" var can only
// be published once regardless of how many handlers (or test brokers)
// exist. The var reads whichever registry was installed most recently —
// in practice the one serving mmserver's -http listener.
var (
	expvarOnce sync.Once
	expvarReg  atomic.Pointer[metrics.Registry]
)

func publishExpvar(reg *metrics.Registry) {
	expvarReg.Store(reg)
	expvarOnce.Do(func() {
		expvar.Publish("mmprofile", expvar.Func(func() any {
			if r := expvarReg.Load(); r != nil {
				return r.Snapshot()
			}
			return nil
		}))
	})
}

// StatusOptions wires the optional obs layer into the status handler.
type StatusOptions struct {
	// Health backs /readyz; nil reports a bare "ready" (no components).
	Health *obs.Health
	// Recorder backs POST /debugz/dump; nil makes the endpoint answer
	// 503 with an explanatory error.
	Recorder *obs.Recorder
	// Top backs /topz and the "top" section of /statsz; nil falls back to
	// the broker's own attribution registry (always present).
	Top *topk.Registry
	// Window backs /tsz and the per-dimension window rates in /topz; nil
	// makes /tsz answer {"enabled": false} and /topz omit rates. When
	// set, mmserver registers every attribution dimension's total weight
	// as the window counter "top:<dimension>" — the naming contract /topz
	// relies on for its rate lookups.
	Window *obs.Window
}

// NewStatusHandler serves broker observability over HTTP:
//
//	GET  /healthz      — liveness ("ok"; see the package comment for the
//	                     liveness/readiness split)
//	GET  /readyz       — readiness: per-component JSON, 200 while serving
//	                     (ready/degraded), 503 while refusing
//	                     (not_ready/draining)
//	POST /debugz/dump  — trigger a flight-recorder bundle; returns its path
//	GET  /statsz       — broker + index counters as JSON, plus a "metrics"
//	                     object with the full registry snapshot
//	GET  /metrics      — Prometheus text exposition (format 0.0.4);
//	                     ?format=json returns the registry snapshot as JSON
//	GET  /topz         — hot-key attribution: top-K entries per dimension
//	                     with space-saving error bounds (?k=, ?dim=,
//	                     ?format=table; window rates when a Window is wired)
//	GET  /tsz          — windowed time series: per-counter 1s/10s/60s rates
//	                     and raw series, per-histogram windowed quantiles
//	                     (?name= filters, ?n= caps series length)
//	GET  /tracez       — sampled + slow request traces as JSON;
//	                     ?trace=<id> looks up one trace by hex id
//	GET  /explainz     — ?user= profile vectors + adaptation audit journal;
//	                     &doc= additionally scores a retained document
//	GET  /varz         — Go expvar JSON (memstats, cmdline, "mmprofile")
//	GET  /debug/pprof/ — runtime profiling endpoints
//	GET  /             — a minimal human-readable dashboard
//
// Mounted by mmserver's -http flag; handlers are read-only except
// /debugz/dump, which writes a diagnostic bundle under the server's dump
// directory (pprof's profile/trace endpoints start collections but mutate
// nothing). NewStatusHandler serves with no health model or recorder;
// NewStatusHandlerOpts attaches them.
func NewStatusHandler(b *pubsub.Broker) http.Handler {
	return NewStatusHandlerOpts(b, StatusOptions{})
}

// NewStatusHandlerOpts is NewStatusHandler with the obs layer attached.
func NewStatusHandlerOpts(b *pubsub.Broker, o StatusOptions) http.Handler {
	reg := b.Metrics()
	publishExpvar(reg)
	top := o.Top
	if top == nil {
		top = b.Top()
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		snap := o.Health.Snapshot()
		w.Header().Set("Content-Type", "application/json")
		if !snap.Ready() {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		json.NewEncoder(w).Encode(snap)
	})
	mux.HandleFunc("/debugz/dump", func(w http.ResponseWriter, r *http.Request) {
		// POST only: dumping writes to disk, and GETs must stay safe to
		// crawl (the root dashboard links every GET endpoint).
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if o.Recorder == nil {
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]any{"error": "no flight recorder configured (mmserver -dump-dir)"})
			return
		}
		path, err := o.Recorder.Dump("endpoint")
		if err != nil {
			w.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(w).Encode(map[string]any{"error": err.Error()})
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"path": path})
	})
	mux.HandleFunc("/statsz", func(w http.ResponseWriter, r *http.Request) {
		c := b.Stats()
		ix := b.IndexStats()
		lay := b.Layout()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{
			"published":      c.Published,
			"deliveries":     c.Deliveries,
			"dropped":        c.Dropped,
			"feedbacks":      c.Feedbacks,
			"subscribers":    c.Subscribers,
			"index_users":    ix.Users,
			"index_vectors":  ix.Vectors,
			"index_terms":    ix.Terms,
			"index_postings": ix.Postings,
			"layout": map[string]int{
				"registry_shards": lay.RegistryShards,
				"doc_shards":      lay.DocShards,
				"stats_stripes":   lay.StatsStripes,
				"index_shards":    lay.IndexShards,
			},
			"metrics": reg.Snapshot(),
			"top":     top.Snapshot(5),
		})
	})
	mux.HandleFunc("/topz", func(w http.ResponseWriter, r *http.Request) {
		k := 10
		if v := r.URL.Query().Get("k"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n > 0 {
				k = n
			}
		}
		dimFilter := r.URL.Query().Get("dim")
		type dimOut struct {
			topk.Snapshot
			Rates map[string]float64 `json:"rates_per_second,omitempty"`
		}
		var dims []dimOut
		for _, d := range top.Dimensions() {
			if dimFilter != "" && d.Name() != dimFilter {
				continue
			}
			out := dimOut{Snapshot: d.Snapshot(k)}
			if o.Window != nil {
				out.Rates = map[string]float64{}
				for _, span := range obs.StandardSpans {
					if rate, ok := o.Window.Rate("top:"+d.Name(), span); ok {
						out.Rates[span.String()] = rate
					}
				}
			}
			dims = append(dims, out)
		}
		if dimFilter != "" && len(dims) == 0 {
			w.WriteHeader(http.StatusNotFound)
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{"error": "unknown dimension", "dim": dimFilter})
			return
		}
		if r.URL.Query().Get("format") == "table" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, d := range dims {
				fmt.Fprintf(w, "%s  (total %.0f, tracked %d/%d, epsilon %.1f)\n",
					d.Name, d.Total, d.Tracked, d.Capacity, d.Epsilon)
				if r1, ok := d.Rates["10s"]; ok {
					fmt.Fprintf(w, "  rate: %.1f/s over 10s\n", r1)
				}
				for _, e := range d.Entries {
					fmt.Fprintf(w, "  %12.0f ±%-8.0f %s\n", e.Count, e.Err, e.Key)
				}
				fmt.Fprintln(w)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]any{"k": k, "dimensions": dims})
	})
	mux.HandleFunc("/tsz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if o.Window == nil {
			json.NewEncoder(w).Encode(map[string]any{"enabled": false})
			return
		}
		seriesMax := 60
		if v := r.URL.Query().Get("n"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n >= 0 {
				seriesMax = n
			}
		}
		snap := o.Window.Snapshot(seriesMax)
		if name := r.URL.Query().Get("name"); name != "" {
			var cs []obs.CounterWindow
			for _, c := range snap.Counters {
				if c.Name == name {
					cs = append(cs, c)
				}
			}
			snap.Counters = cs
			var hs []obs.HistWindow
			for _, h := range snap.Histograms {
				if h.Name == name {
					hs = append(hs, h)
				}
			}
			snap.Histograms = hs
		}
		json.NewEncoder(w).Encode(snap)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(reg.Snapshot())
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/tracez", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		tr := b.Tracer()
		if tr == nil {
			json.NewEncoder(w).Encode(map[string]any{"enabled": false})
			return
		}
		if id := r.URL.Query().Get("trace"); id != "" {
			ts, ok := tr.Find(id)
			if !ok {
				w.WriteHeader(http.StatusNotFound)
				json.NewEncoder(w).Encode(map[string]any{"error": "trace not found", "trace": id})
				return
			}
			json.NewEncoder(w).Encode(ts)
			return
		}
		json.NewEncoder(w).Encode(map[string]any{"enabled": true, "snapshot": tr.Snapshot()})
	})
	mux.HandleFunc("/explainz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		user := r.URL.Query().Get("user")
		if user == "" {
			w.WriteHeader(http.StatusBadRequest)
			json.NewEncoder(w).Encode(map[string]any{"error": "missing user parameter"})
			return
		}
		terms := 5
		if t := r.URL.Query().Get("terms"); t != "" {
			if n, err := strconv.Atoi(t); err == nil && n >= 0 {
				terms = n
			}
		}
		info, err := b.ProfileInfo(user, terms)
		if err != nil {
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(map[string]any{"error": err.Error()})
			return
		}
		out := map[string]any{"profile": info}
		if d := r.URL.Query().Get("doc"); d != "" {
			doc, err := strconv.ParseInt(d, 10, 64)
			if err != nil {
				w.WriteHeader(http.StatusBadRequest)
				json.NewEncoder(w).Encode(map[string]any{"error": "bad doc parameter: " + d})
				return
			}
			ex, err := b.ExplainDoc(user, doc, terms)
			if err != nil {
				w.WriteHeader(http.StatusNotFound)
				json.NewEncoder(w).Encode(map[string]any{"error": err.Error()})
				return
			}
			out["doc"] = doc
			out["explanation"] = ex
		}
		json.NewEncoder(w).Encode(out)
	})
	mux.Handle("/varz", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		c := b.Stats()
		ix := b.IndexStats()
		lay := b.Layout()
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(w, `<!DOCTYPE html><html><head><title>mmserver</title></head><body>
<h1>mmserver</h1>
<table border="1" cellpadding="4">
<tr><td>subscribers</td><td>%d</td></tr>
<tr><td>published</td><td>%d</td></tr>
<tr><td>deliveries</td><td>%d (dropped %d)</td></tr>
<tr><td>feedbacks</td><td>%d</td></tr>
<tr><td>index</td><td>%d vectors over %d terms (%d postings)</td></tr>
<tr><td>sharding</td><td>registry ×%d · docstore ×%d · termstats ×%d · index ×%d</td></tr>
</table>
<p><a href="%s">/statsz</a> · <a href="%s">/metrics</a> · <a href="%s">/topz</a> · <a href="%s">/tsz</a> · <a href="%s">/tracez</a> · <a href="%s">/explainz</a> · <a href="%s">/varz</a> · <a href="%s">/debug/pprof/</a> · <a href="%s">/healthz</a> · <a href="%s">/readyz</a> · POST /debugz/dump</p>
</body></html>`,
			c.Subscribers, c.Published, c.Deliveries, c.Dropped, c.Feedbacks,
			ix.Vectors, ix.Terms, ix.Postings,
			lay.RegistryShards, lay.DocShards, lay.StatsStripes, lay.IndexShards,
			html.EscapeString("/statsz"), html.EscapeString("/metrics"),
			html.EscapeString("/topz"), html.EscapeString("/tsz"),
			html.EscapeString("/tracez"), html.EscapeString("/explainz?user="),
			html.EscapeString("/varz"),
			html.EscapeString("/debug/pprof/"), html.EscapeString("/healthz"),
			html.EscapeString("/readyz"))
	})
	return mux
}
