package wire

import (
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"mmprofile/internal/pubsub"
)

// startServer runs a server on a loopback listener and returns a connected
// client plus a cleanup-registered shutdown.
func startServer(t *testing.T) (*Client, *Server) {
	t.Helper()
	b := pubsub.New(pubsub.Options{Threshold: 0.2, QueueSize: 64})
	srv := NewServer(b, func(string, ...any) {})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(lis)
	}()
	t.Cleanup(func() {
		srv.Close()
		<-done
	})
	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, srv
}

// catPage is a page whose stemmed terms overlap the "cats" keyword seed.
const catPage = "<html><body>cats and cat toys for every cat lover</body></html>"

func TestEndToEndSubscribePublishPollFeedback(t *testing.T) {
	c, _ := startServer(t)
	if err := c.Subscribe("alice", "", []string{"cats"}); err != nil {
		t.Fatal(err)
	}
	doc, delivered, err := c.Publish(catPage)
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("delivered = %d", delivered)
	}
	ds, err := c.Poll("alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || ds[0].Doc != doc {
		t.Fatalf("poll = %+v", ds)
	}
	if err := c.Feedback("alice", doc, true); err != nil {
		t.Fatal(err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Published != 1 || st.Feedbacks != 1 || st.Subscribers != 1 {
		t.Errorf("stats = %+v", st)
	}
	p, err := c.Profile("alice")
	if err != nil {
		t.Fatal(err)
	}
	if p.Learner != "MM" || p.Size < 1 || len(p.Vectors) != p.Size {
		t.Errorf("profile = %+v", p)
	}
}

func TestSubscribeLearnerSelection(t *testing.T) {
	c, _ := startServer(t)
	if err := c.Subscribe("bob", "RI", nil); err != nil {
		t.Fatal(err)
	}
	p, err := c.Profile("bob")
	if err != nil {
		t.Fatal(err)
	}
	if p.Learner != "RI" {
		t.Errorf("learner = %q", p.Learner)
	}
	if err := c.Subscribe("eve", "NoSuchAlgorithm", nil); err == nil {
		t.Error("unknown learner accepted")
	}
}

func TestProtocolErrors(t *testing.T) {
	c, _ := startServer(t)
	if err := c.Feedback("ghost", 0, true); err == nil || !strings.Contains(err.Error(), "unknown subscriber") {
		t.Errorf("feedback for unknown user: %v", err)
	}
	if _, err := c.Poll("ghost", 0); err == nil {
		t.Error("poll for unknown user accepted")
	}
	if _, err := c.Profile("ghost"); err == nil {
		t.Error("profile for unknown user accepted")
	}
	if err := c.Subscribe("", "", nil); err == nil {
		t.Error("empty user accepted")
	}
	// Duplicate subscription.
	if err := c.Subscribe("dup", "", nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Subscribe("dup", "", nil); err == nil {
		t.Error("duplicate user accepted")
	}
}

func TestUnsubscribeOverWire(t *testing.T) {
	c, _ := startServer(t)
	if err := c.Subscribe("alice", "", []string{"cats"}); err != nil {
		t.Fatal(err)
	}
	if err := c.Unsubscribe("alice"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Publish(catPage); err != nil {
		t.Fatal(err)
	}
	st, _ := c.Stats()
	if st.Subscribers != 0 || st.Deliveries != 0 {
		t.Errorf("stats after unsubscribe = %+v", st)
	}
}

func TestPollMax(t *testing.T) {
	c, _ := startServer(t)
	if err := c.Subscribe("alice", "", []string{"cats"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := c.Publish(catPage); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := c.Poll("alice", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 {
		t.Fatalf("poll(max=2) = %d items", len(ds))
	}
	rest, err := c.Poll("alice", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 3 {
		t.Fatalf("remaining = %d items", len(rest))
	}
}

func TestWatchReturnsQueuedImmediately(t *testing.T) {
	c, _ := startServer(t)
	if err := c.Subscribe("alice", "", []string{"cats"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := c.Publish(catPage); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := c.Watch("alice", 2, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 2 {
		t.Fatalf("watch(max=2) = %d items", len(ds))
	}
	rest, err := c.Watch("alice", 0, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 1 {
		t.Fatalf("second watch = %d items", len(rest))
	}
}

func TestWatchBlocksUntilPublish(t *testing.T) {
	c, srv := startServer(t)
	if err := c.Subscribe("alice", "", []string{"cats"}); err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Addr()
	if err != nil {
		t.Fatal(err)
	}
	// Publish from a second connection after a short delay, while the
	// first connection blocks in watch.
	go func() {
		pub, err := Dial(addr.String())
		if err != nil {
			return
		}
		defer pub.Close()
		time.Sleep(100 * time.Millisecond)
		pub.Publish(catPage)
	}()
	start := time.Now()
	ds, err := c.Watch("alice", 0, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 {
		t.Fatalf("watch = %d items", len(ds))
	}
	if time.Since(start) < 50*time.Millisecond {
		t.Error("watch did not block")
	}
}

func TestWatchTimesOutEmpty(t *testing.T) {
	c, _ := startServer(t)
	if err := c.Subscribe("alice", "", nil); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	ds, err := c.Watch("alice", 0, 80*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds) != 0 {
		t.Fatalf("timed-out watch returned %d items", len(ds))
	}
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Errorf("watch returned after %v, before the timeout", elapsed)
	}
}

func TestWatchUnknownUser(t *testing.T) {
	c, _ := startServer(t)
	if _, err := c.Watch("ghost", 0, time.Second); err == nil {
		t.Error("watch for unknown user accepted")
	}
}

func TestFetchContent(t *testing.T) {
	// startServer's broker does not retain content; build one that does.
	b := pubsub.New(pubsub.Options{Threshold: 0.2, RetainContent: true})
	srv := NewServer(b, func(string, ...any) {})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(lis)
	t.Cleanup(func() { srv.Close() })
	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	doc, _, err := c.Publish(catPage)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Fetch(doc)
	if err != nil {
		t.Fatal(err)
	}
	if got != catPage {
		t.Errorf("fetched %q", got)
	}
	if _, err := c.Fetch(999); err == nil {
		t.Error("fetch of unknown doc accepted")
	}
}

func TestExportImportPortability(t *testing.T) {
	// Train a profile on server A, export it, import it on server B, and
	// check B delivers to it immediately.
	cA, _ := startServer(t)
	if err := cA.Subscribe("alice", "", []string{"cats", "kittens"}); err != nil {
		t.Fatal(err)
	}
	doc, _, err := cA.Publish(catPage)
	if err != nil {
		t.Fatal(err)
	}
	if err := cA.Feedback("alice", doc, true); err != nil {
		t.Fatal(err)
	}
	learner, state, err := cA.Export("alice")
	if err != nil {
		t.Fatal(err)
	}
	if learner != "MM" || len(state) == 0 {
		t.Fatalf("export = %q, %d bytes", learner, len(state))
	}

	cB, _ := startServer(t)
	if err := cB.Import("alice", learner, state); err != nil {
		t.Fatal(err)
	}
	if _, delivered, err := cB.Publish(catPage); err != nil || delivered != 1 {
		t.Fatalf("imported profile did not match: delivered=%d err=%v", delivered, err)
	}
	p, err := cB.Profile("alice")
	if err != nil {
		t.Fatal(err)
	}
	if p.Learner != "MM" || p.Size < 1 {
		t.Errorf("imported profile = %+v", p)
	}
}

func TestImportErrors(t *testing.T) {
	c, _ := startServer(t)
	if err := c.Import("", "MM", nil); err == nil {
		t.Error("import without user accepted")
	}
	if err := c.Import("x", "", nil); err == nil {
		t.Error("import without learner accepted")
	}
	if err := c.Import("x", "NoSuch", nil); err == nil {
		t.Error("import with unknown learner accepted")
	}
	if err := c.Import("x", "MM", []byte{9, 9, 9}); err == nil {
		t.Error("import with corrupt state accepted")
	}
}

func TestUnknownOp(t *testing.T) {
	c, _ := startServer(t)
	_, err := c.roundTrip(Request{Op: "dance"})
	if err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Errorf("unknown op: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	c0, srv := startServer(t)
	addr, err := srv.Addr()
	if err != nil {
		t.Fatal(err)
	}
	if err := c0.Subscribe("watcher", "", []string{"cats"}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(addr.String())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < 20; i++ {
				if _, _, err := c.Publish(fmt.Sprintf("<html><body>cat story %d from writer %d</body></html>", i, g)); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st, err := c0.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Published != 160 {
		t.Errorf("published = %d, want 160", st.Published)
	}
}

func TestServerCloseUnblocksClients(t *testing.T) {
	c, srv := startServer(t)
	if err := c.Subscribe("alice", "", nil); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	// Further requests must fail, not hang.
	if _, _, err := c.Publish("x"); err == nil {
		t.Error("publish after server close succeeded")
	}
}
