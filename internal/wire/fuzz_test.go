package wire

import (
	"encoding/json"
	"testing"

	"mmprofile/internal/pubsub"
)

// FuzzDispatch feeds arbitrary request JSON to the server's dispatcher: it
// must never panic, and every reply must be a well-formed Response with an
// error message whenever OK is false.
func FuzzDispatch(f *testing.F) {
	seeds := []string{
		`{"op":"subscribe","user":"a"}`,
		`{"op":"subscribe","user":"b","learner":"RI"}`,
		`{"op":"publish","content":"<html><body>cats</body></html>"}`,
		`{"op":"feedback","user":"a","doc":0,"relevant":true}`,
		`{"op":"poll","user":"a","max":-5}`,
		`{"op":"watch","user":"a","timeout_ms":1}`,
		`{"op":"profile","user":"nope"}`,
		`{"op":"stats"}`,
		`{"op":"unsubscribe","user":"zz"}`,
		`{"op":"???"}`,
		`{}`,
		`{"op":"subscribe","user":"","keywords":["x","y"]}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	broker := pubsub.New(pubsub.Options{Threshold: 0.2, QueueSize: 4})
	srv := NewServer(broker, func(string, ...any) {})
	f.Fuzz(func(t *testing.T, raw string) {
		var req Request
		if err := json.Unmarshal([]byte(raw), &req); err != nil {
			return // the JSON decoder rejects it before dispatch in real use
		}
		if req.Op == OpWatch && req.TimeoutMS <= 0 {
			req.TimeoutMS = 1 // keep the fuzzer from sleeping 30s
		}
		resp := srv.dispatch(req)
		if !resp.OK && resp.Error == "" {
			t.Fatalf("failed response without error: %+v (req %+v)", resp, req)
		}
	})
}
