package wire

import (
	"encoding/json"
	"strings"
	"testing"

	"mmprofile/internal/pubsub"
	"mmprofile/internal/trace"
)

// FuzzDispatch feeds arbitrary request JSON to the server's dispatcher: it
// must never panic, and every reply must be a well-formed Response with an
// error message whenever OK is false.
func FuzzDispatch(f *testing.F) {
	seeds := []string{
		`{"op":"subscribe","user":"a"}`,
		`{"op":"subscribe","user":"b","learner":"RI"}`,
		`{"op":"publish","content":"<html><body>cats</body></html>"}`,
		`{"op":"feedback","user":"a","doc":0,"relevant":true}`,
		`{"op":"poll","user":"a","max":-5}`,
		`{"op":"watch","user":"a","timeout_ms":1}`,
		`{"op":"session","user":"a"}`,
		`{"op":"session","user":"a","batch":-3}`,
		`{"op":"profile","user":"nope"}`,
		`{"op":"stats"}`,
		`{"op":"unsubscribe","user":"zz"}`,
		`{"op":"???"}`,
		`{}`,
		`{"op":"subscribe","user":"","keywords":["x","y"]}`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	broker := pubsub.New(pubsub.Options{Threshold: 0.2, QueueSize: 4})
	srv := NewServer(broker, func(string, ...any) {})
	f.Fuzz(func(t *testing.T, raw string) {
		var req Request
		if err := json.Unmarshal([]byte(raw), &req); err != nil {
			return // the JSON decoder rejects it before dispatch in real use
		}
		if req.Op == OpWatch && req.TimeoutMS <= 0 {
			req.TimeoutMS = 1 // keep the fuzzer from sleeping 30s
		}
		resp := srv.dispatch(req)
		if !resp.OK && resp.Error == "" {
			t.Fatalf("failed response without error: %+v (req %+v)", resp, req)
		}
	})
}

// FuzzTraceContext fuzzes the trace-context header codec that rides the
// Request.Trace field: arbitrary input must never panic, anything malformed
// or truncated must parse as the zero Remote ("no parent", never an error),
// and whatever parses as valid must survive a format/parse round trip.
func FuzzTraceContext(f *testing.F) {
	seeds := []string{
		"",
		"0123456789abcdef-fedcba9876543210", // well-formed
		"0123456789abcdef-fedcba987654321",  // one digit short
		"0123456789abcdef_fedcba9876543210", // wrong separator
		"0000000000000000-fedcba9876543210", // zero trace id
		"0123456789abcdef-0000000000000000", // zero span id
		"0123456789ABCDEF-FEDCBA9876543210", // uppercase rejected
		"0123456789abcdefgfedcba9876543210", // non-hex at the dash
		"-",
		"deadbeef",
		strings.Repeat("a", 33),
		strings.Repeat("a", 1000),
		"0123456789abcdef-fedcba9876543210extra",
		"\x00\x01\x02",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		r := trace.ParseContext(s)
		if !r.OK() {
			// Malformed input must be indistinguishable from "no context".
			if r.Trace != 0 || r.Span != 0 {
				t.Fatalf("ParseContext(%q) = %+v, want zero Remote", s, r)
			}
			return
		}
		// Valid context must round-trip exactly and be canonical: the only
		// string that parses to this Remote is the formatted one.
		enc := trace.FormatContext(r.Trace, r.Span)
		if enc != s {
			t.Fatalf("round trip: ParseContext(%q) → %+v → FormatContext = %q", s, r, enc)
		}
		if r2 := trace.ParseContext(enc); r2 != r {
			t.Fatalf("re-parse: %+v != %+v", r2, r)
		}
	})
}
