// Package wire exposes the dissemination broker over TCP (or a Unix
// domain socket) with a newline-delimited JSON protocol, so the engine can
// run as a standalone daemon (cmd/mmserver) with remote publishers and
// subscribers (cmd/mmclient).
//
// Deliveries reach clients three ways, all carrying the subscriber's
// monotone sequence numbers so the broker's drop-oldest overflow policy is
// observable rather than silent (DESIGN.md §15):
//
//   - "poll" drains whatever is queued, strictly request/response;
//   - "watch" long-polls: it blocks its connection's serial request loop
//     until a delivery arrives or the timeout elapses — simple, but a
//     watching connection can serve no other request while blocked;
//   - "session" switches the connection into server-push mode: the server
//     owns the socket from the ack onward and pushes coalesced delivery
//     batches as they happen, with no per-batch round trip. One persistent
//     connection holds one session; this is the mode built for large
//     subscriber populations.
//
// Every delivery-bearing response reports next_seq (the sequence the
// subscriber's next delivery will be assigned) and dropped (the cumulative
// per-subscriber drop count), so a client can always reconcile
// received + dropped + still-queued == next_seq and detect loss the moment
// a sequence number is skipped.
package wire

import "fmt"

// Op names the protocol operations.
type Op string

const (
	OpSubscribe   Op = "subscribe"
	OpUnsubscribe Op = "unsubscribe"
	OpPublish     Op = "publish"
	OpFeedback    Op = "feedback"
	OpPoll        Op = "poll"
	OpWatch       Op = "watch"
	// OpSession converts the connection into a server-push delivery stream
	// for one subscriber: after the OK ack, the server sends coalesced
	// delivery frames (Response values with deliveries/next_seq/dropped)
	// until the subscriber is unsubscribed, the client closes or writes
	// anything, or the server shuts down. No other op is served on a
	// session connection.
	OpSession Op = "session"
	OpStats   Op = "stats"
	OpProfile Op = "profile"
	// OpFetch retrieves a retained document's raw content (requires the
	// server to run with content retention).
	OpFetch Op = "fetch"
	// OpExport downloads a subscriber's serialized profile; OpImport
	// subscribes with a previously exported profile — together they make
	// profiles portable across brokers.
	OpExport Op = "export"
	OpImport Op = "import"
)

// Request is one client request. Exactly the fields relevant to Op are set.
type Request struct {
	Op   Op     `json:"op"`
	User string `json:"user,omitempty"`
	// Learner selects the profile algorithm at subscribe time (a name from
	// the filter registry, e.g. "MM"); empty means MM.
	Learner string `json:"learner,omitempty"`
	// Keywords optionally seed the profile at subscribe time.
	Keywords []string `json:"keywords,omitempty"`
	// Content is the raw page for publish.
	Content string `json:"content,omitempty"`
	// Doc and Relevant carry a feedback judgment.
	Doc      int64 `json:"doc,omitempty"`
	Relevant bool  `json:"relevant,omitempty"`
	// Max bounds the number of deliveries returned by poll and watch;
	// anything ≤ 0 means unlimited (drain everything queued).
	Max int `json:"max,omitempty"`
	// Batch bounds how many deliveries a session coalesces into one pushed
	// frame (≤ 0 means the server default of 64).
	Batch int `json:"batch,omitempty"`
	// TimeoutMS bounds how long a watch blocks waiting for the first
	// delivery (0 = server default of 30s).
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// State carries a serialized profile for import (JSON base64-encodes
	// byte slices automatically).
	State []byte `json:"state,omitempty"`
	// Trace carries propagated trace context ("<trace>-<span>", two
	// 16-hex-digit ids — see trace.FormatContext) on publish and feedback.
	// When present and well-formed, the server joins the caller's trace and
	// captures the request regardless of its own sampling decision.
	// Malformed context is treated as absent, never an error.
	Trace string `json:"trace,omitempty"`
}

// DeliveryMsg is one pushed document in a poll/watch/session response.
type DeliveryMsg struct {
	Doc   int64   `json:"doc"`
	Score float64 `json:"score"`
	// Seq is the delivery's subscriber-scoped sequence number. Consecutive
	// received deliveries with a gap between their Seq values lost exactly
	// that many deliveries to the queue's drop-oldest policy (or to another
	// consumer draining the same subscriber).
	Seq uint64 `json:"seq"`
}

// StatsMsg mirrors pubsub.Counters plus index size.
type StatsMsg struct {
	Published    int64 `json:"published"`
	Deliveries   int64 `json:"deliveries"`
	Dropped      int64 `json:"dropped"`
	Feedbacks    int64 `json:"feedbacks"`
	Subscribers  int   `json:"subscribers"`
	IndexVectors int   `json:"index_vectors"`
	IndexTerms   int   `json:"index_terms"`
}

// ProfileMsg describes a subscriber's current profile.
type ProfileMsg struct {
	Learner string     `json:"learner"`
	Size    int        `json:"size"`
	Vectors [][]string `json:"vectors,omitempty"` // top terms per vector
}

// Response is the server's reply to one request — and, on a session
// connection, the frame format of every pushed delivery batch.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Doc is the id assigned by publish.
	Doc int64 `json:"doc,omitempty"`
	// Delivered is the fan-out count of a publish.
	Delivered int `json:"delivered,omitempty"`
	// Deliveries answers poll/watch and fills session frames.
	Deliveries []DeliveryMsg `json:"deliveries,omitempty"`
	// NextSeq is the sequence number the subscriber's next delivery will be
	// assigned; Dropped is the subscriber's cumulative drop count. Set on
	// every poll/watch response and session frame: together with the per-
	// delivery seq values they make every dropped delivery observable
	// (received + dropped + still-queued always equals next_seq).
	NextSeq uint64 `json:"next_seq,omitempty"`
	Dropped uint64 `json:"dropped,omitempty"`
	// Closed marks the final deliveries of an unsubscribed subscriber: the
	// attached deliveries (possibly none) were queued before the close and
	// no more will follow. Poll/watch/session all set it rather than
	// discarding the drained tail.
	Closed  bool        `json:"closed,omitempty"`
	Stats   *StatsMsg   `json:"stats,omitempty"`
	Profile *ProfileMsg `json:"profile,omitempty"`
	// Content answers fetch.
	Content string `json:"content,omitempty"`
	// Learner and State answer export.
	Learner string `json:"learner,omitempty"`
	State   []byte `json:"state,omitempty"`
	// Trace is the trace id (16 hex digits) under which the server captured
	// this request, when it did; clients print it so an operator can jump
	// straight to /tracez?trace=<id>.
	Trace string `json:"trace,omitempty"`
}

// errResponse builds a failure reply.
func errResponse(format string, args ...any) Response {
	return Response{OK: false, Error: fmt.Sprintf(format, args...)}
}
