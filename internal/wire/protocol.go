// Package wire exposes the dissemination broker over TCP with a
// newline-delimited JSON protocol, so the engine can run as a standalone
// daemon (cmd/mmserver) with remote publishers and subscribers
// (cmd/mmclient). Deliveries are pulled with the "poll" operation, which
// keeps the protocol strictly request/response and trivially testable.
package wire

import "fmt"

// Op names the protocol operations.
type Op string

const (
	OpSubscribe   Op = "subscribe"
	OpUnsubscribe Op = "unsubscribe"
	OpPublish     Op = "publish"
	OpFeedback    Op = "feedback"
	OpPoll        Op = "poll"
	OpWatch       Op = "watch"
	OpStats       Op = "stats"
	OpProfile     Op = "profile"
	// OpFetch retrieves a retained document's raw content (requires the
	// server to run with content retention).
	OpFetch Op = "fetch"
	// OpExport downloads a subscriber's serialized profile; OpImport
	// subscribes with a previously exported profile — together they make
	// profiles portable across brokers.
	OpExport Op = "export"
	OpImport Op = "import"
)

// Request is one client request. Exactly the fields relevant to Op are set.
type Request struct {
	Op   Op     `json:"op"`
	User string `json:"user,omitempty"`
	// Learner selects the profile algorithm at subscribe time (a name from
	// the filter registry, e.g. "MM"); empty means MM.
	Learner string `json:"learner,omitempty"`
	// Keywords optionally seed the profile at subscribe time.
	Keywords []string `json:"keywords,omitempty"`
	// Content is the raw page for publish.
	Content string `json:"content,omitempty"`
	// Doc and Relevant carry a feedback judgment.
	Doc      int64 `json:"doc,omitempty"`
	Relevant bool  `json:"relevant,omitempty"`
	// Max bounds the number of deliveries returned by poll (0 = all queued).
	Max int `json:"max,omitempty"`
	// TimeoutMS bounds how long a watch blocks waiting for the first
	// delivery (0 = server default of 30s).
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// State carries a serialized profile for import (JSON base64-encodes
	// byte slices automatically).
	State []byte `json:"state,omitempty"`
	// Trace carries propagated trace context ("<trace>-<span>", two
	// 16-hex-digit ids — see trace.FormatContext) on publish and feedback.
	// When present and well-formed, the server joins the caller's trace and
	// captures the request regardless of its own sampling decision.
	// Malformed context is treated as absent, never an error.
	Trace string `json:"trace,omitempty"`
}

// DeliveryMsg is one pushed document in a poll response.
type DeliveryMsg struct {
	Doc   int64   `json:"doc"`
	Score float64 `json:"score"`
}

// StatsMsg mirrors pubsub.Counters plus index size.
type StatsMsg struct {
	Published    int64 `json:"published"`
	Deliveries   int64 `json:"deliveries"`
	Dropped      int64 `json:"dropped"`
	Feedbacks    int64 `json:"feedbacks"`
	Subscribers  int   `json:"subscribers"`
	IndexVectors int   `json:"index_vectors"`
	IndexTerms   int   `json:"index_terms"`
}

// ProfileMsg describes a subscriber's current profile.
type ProfileMsg struct {
	Learner string     `json:"learner"`
	Size    int        `json:"size"`
	Vectors [][]string `json:"vectors,omitempty"` // top terms per vector
}

// Response is the server's reply to one request.
type Response struct {
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Doc is the id assigned by publish.
	Doc int64 `json:"doc,omitempty"`
	// Delivered is the fan-out count of a publish.
	Delivered int `json:"delivered,omitempty"`
	// Deliveries answers poll.
	Deliveries []DeliveryMsg `json:"deliveries,omitempty"`
	Stats      *StatsMsg     `json:"stats,omitempty"`
	Profile    *ProfileMsg   `json:"profile,omitempty"`
	// Content answers fetch.
	Content string `json:"content,omitempty"`
	// Learner and State answer export.
	Learner string `json:"learner,omitempty"`
	State   []byte `json:"state,omitempty"`
	// Trace is the trace id (16 hex digits) under which the server captured
	// this request, when it did; clients print it so an operator can jump
	// straight to /tracez?trace=<id>.
	Trace string `json:"trace,omitempty"`
}

// errResponse builds a failure reply.
func errResponse(format string, args ...any) Response {
	return Response{OK: false, Error: fmt.Sprintf(format, args...)}
}
