package wire

import (
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// Client is a typed connection to an mmserver. Methods are synchronous
// request/response; the client is safe for sequential use only (wrap in a
// mutex or pool connections to share).
type Client struct {
	conn net.Conn
	enc  *json.Encoder
	dec  *json.Decoder
}

// Dial connects to a server: host:port dials TCP, "unix:<path>" dials a
// Unix domain socket (the form mmserver -addr accepts for
// port-and-FD-cheap local deployments and the c100k load harness).
func Dial(addr string) (*Client, error) {
	network, target := "tcp", addr
	if path, ok := strings.CutPrefix(addr, "unix:"); ok {
		network, target = "unix", path
	}
	conn, err := net.DialTimeout(network, target, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an existing connection (tests use net.Pipe).
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, enc: json.NewEncoder(conn), dec: json.NewDecoder(conn)}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// RemoteAddr returns the server address this client is connected to.
func (c *Client) RemoteAddr() string { return c.conn.RemoteAddr().String() }

// roundTrip sends one request and decodes the reply, surfacing protocol
// errors as Go errors.
func (c *Client) roundTrip(req Request) (Response, error) {
	if err := c.enc.Encode(req); err != nil {
		return Response{}, fmt.Errorf("wire: send %s: %w", req.Op, err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return Response{}, fmt.Errorf("wire: recv %s: %w", req.Op, err)
	}
	if !resp.OK {
		return resp, fmt.Errorf("wire: %s: %s", req.Op, resp.Error)
	}
	return resp, nil
}

// Subscribe registers a profile under user. learner may be empty (MM) or a
// registered learner name; keywords optionally seed the profile.
func (c *Client) Subscribe(user, learner string, keywords []string) error {
	_, err := c.roundTrip(Request{Op: OpSubscribe, User: user, Learner: learner, Keywords: keywords})
	return err
}

// Unsubscribe removes the user's profile.
func (c *Client) Unsubscribe(user string) error {
	_, err := c.roundTrip(Request{Op: OpUnsubscribe, User: user})
	return err
}

// Publish pushes one raw page into the system; it returns the assigned
// document id and how many subscribers it was delivered to.
func (c *Client) Publish(content string) (doc int64, delivered int, err error) {
	doc, delivered, _, err = c.PublishTrace(content, "")
	return doc, delivered, err
}

// PublishTrace is Publish with trace plumbing: ctx optionally propagates
// this caller's trace context ("<trace>-<span>", see trace.FormatContext)
// so the server joins an existing trace, and the returned traceID (16 hex
// digits, empty when the server did not capture the request) names the
// server-side trace for /tracez lookup.
func (c *Client) PublishTrace(content, ctx string) (doc int64, delivered int, traceID string, err error) {
	resp, err := c.roundTrip(Request{Op: OpPublish, Content: content, Trace: ctx})
	if err != nil {
		return 0, 0, "", err
	}
	return resp.Doc, resp.Delivered, resp.Trace, nil
}

// Feedback reports a relevance judgment for a document.
func (c *Client) Feedback(user string, doc int64, relevant bool) error {
	_, err := c.FeedbackTrace(user, doc, relevant, "")
	return err
}

// FeedbackTrace is Feedback with trace plumbing; see PublishTrace.
func (c *Client) FeedbackTrace(user string, doc int64, relevant bool, ctx string) (traceID string, err error) {
	resp, err := c.roundTrip(Request{Op: OpFeedback, User: user, Doc: doc, Relevant: relevant, Trace: ctx})
	if err != nil {
		return "", err
	}
	return resp.Trace, nil
}

// Poll drains up to max queued deliveries for user (max ≤ 0 means all).
func (c *Client) Poll(user string, max int) ([]DeliveryMsg, error) {
	resp, err := c.roundTrip(Request{Op: OpPoll, User: user, Max: max})
	if err != nil {
		return nil, err
	}
	return resp.Deliveries, nil
}

// Watch long-polls for deliveries: it blocks until at least one item is
// available (then drains up to max; max ≤ 0 means all), or the server-side
// timeout elapses (returning an empty slice).
func (c *Client) Watch(user string, max int, timeout time.Duration) ([]DeliveryMsg, error) {
	resp, err := c.roundTrip(Request{
		Op:        OpWatch,
		User:      user,
		Max:       max,
		TimeoutMS: int(timeout / time.Millisecond),
	})
	if err != nil {
		return nil, err
	}
	return resp.Deliveries, nil
}

// Fetch retrieves a retained document's raw content (server must run with
// content retention enabled).
func (c *Client) Fetch(doc int64) (string, error) {
	resp, err := c.roundTrip(Request{Op: OpFetch, Doc: doc})
	if err != nil {
		return "", err
	}
	return resp.Content, nil
}

// Export downloads the user's serialized profile (learner name + state),
// suitable for Import on another server.
func (c *Client) Export(user string) (learner string, state []byte, err error) {
	resp, err := c.roundTrip(Request{Op: OpExport, User: user})
	if err != nil {
		return "", nil, err
	}
	return resp.Learner, resp.State, nil
}

// Import subscribes user with a previously exported profile.
func (c *Client) Import(user, learner string, state []byte) error {
	_, err := c.roundTrip(Request{Op: OpImport, User: user, Learner: learner, State: state})
	return err
}

// Stats fetches broker counters.
func (c *Client) Stats() (StatsMsg, error) {
	resp, err := c.roundTrip(Request{Op: OpStats})
	if err != nil {
		return StatsMsg{}, err
	}
	return *resp.Stats, nil
}

// Session switches this client's connection into server-push delivery mode
// for user (see OpSession): after the server's ack the connection carries
// nothing but coalesced delivery frames, read with Recv. batch bounds how
// many deliveries the server packs into one frame (≤ 0 means the server
// default). On success the connection belongs to the returned Session —
// the Client must not be used again.
func (c *Client) Session(user string, batch int) (*Session, error) {
	resp, err := c.roundTrip(Request{Op: OpSession, User: user, Batch: batch})
	if err != nil {
		return nil, err
	}
	s := &Session{conn: c.conn, dec: c.dec, user: user, nextSeq: resp.NextSeq, dropped: resp.Dropped}
	// A subscriber that has never been delivered to acks with next_seq 0,
	// so the very first delivery is expected to carry seq 0 and anything
	// later is an observable gap. On a subscriber with prior traffic the
	// first received seq anchors gap tracking instead (queued deliveries
	// below the ack's next_seq may still arrive).
	if resp.NextSeq == 0 {
		s.anchored = true
	}
	return s, nil
}

// SessionFrame is one pushed delivery batch from a session connection.
type SessionFrame struct {
	Deliveries []DeliveryMsg
	// NextSeq and Dropped snapshot the subscriber's sequence state when the
	// frame was built; received + dropped + still-queued == next_seq.
	NextSeq uint64
	Dropped uint64
	// Closed marks the final frame of an unsubscribed subscriber.
	Closed bool
}

// Session is the client side of a server-push delivery stream. Recv is
// meant for one goroutine; the counters (Received, Gaps, Dropped, NextSeq)
// may be read concurrently.
type Session struct {
	conn net.Conn
	dec  *json.Decoder
	user string

	mu       sync.Mutex
	received uint64
	gaps     uint64
	nextSeq  uint64
	dropped  uint64
	expect   uint64
	anchored bool
}

// Recv blocks for the next pushed frame. It returns an error when the
// server reports one (shutdown), the stream ends, or the connection
// breaks; a frame with Closed set is the subscriber's last.
func (s *Session) Recv() (SessionFrame, error) {
	var resp Response
	if err := s.dec.Decode(&resp); err != nil {
		return SessionFrame{}, fmt.Errorf("wire: session recv %s: %w", s.user, err)
	}
	if !resp.OK {
		return SessionFrame{}, fmt.Errorf("wire: session %s: %s", s.user, resp.Error)
	}
	s.mu.Lock()
	for _, d := range resp.Deliveries {
		if s.anchored && d.Seq > s.expect {
			s.gaps += d.Seq - s.expect
		}
		s.anchored = true
		s.expect = d.Seq + 1
		s.received++
	}
	s.nextSeq = resp.NextSeq
	s.dropped = resp.Dropped
	s.mu.Unlock()
	return SessionFrame{
		Deliveries: resp.Deliveries,
		NextSeq:    resp.NextSeq,
		Dropped:    resp.Dropped,
		Closed:     resp.Closed,
	}, nil
}

// Received returns how many deliveries Recv has consumed.
func (s *Session) Received() uint64 { s.mu.Lock(); defer s.mu.Unlock(); return s.received }

// Gaps returns the cumulative count of sequence numbers skipped between
// consecutively received deliveries — the client-side view of loss.
func (s *Session) Gaps() uint64 { s.mu.Lock(); defer s.mu.Unlock(); return s.gaps }

// Dropped returns the server's cumulative drop count for this subscriber
// as of the last frame (or the ack).
func (s *Session) Dropped() uint64 { s.mu.Lock(); defer s.mu.Unlock(); return s.dropped }

// NextSeq returns the subscriber's next sequence number as of the last
// frame (or the ack).
func (s *Session) NextSeq() uint64 { s.mu.Lock(); defer s.mu.Unlock(); return s.nextSeq }

// Close tears down the session by closing the connection; the server
// notices and releases its end.
func (s *Session) Close() error { return s.conn.Close() }

// Profile fetches a description of the user's current profile.
func (c *Client) Profile(user string) (ProfileMsg, error) {
	resp, err := c.roundTrip(Request{Op: OpProfile, User: user})
	if err != nil {
		return ProfileMsg{}, err
	}
	return *resp.Profile, nil
}
