package pubsub

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// registry is the broker's sharded subscriber table. Subscriber ids hash
// (FNV-1a) to one of a power-of-two number of shards, each holding its own
// subscriber and brute-force maps behind its own read/write lock, so
// subscribe/unsubscribe churn on one shard never stalls publishes touching
// the others — and no operation ever takes a table-wide lock.
//
// The subscriber count and the brute-force count are atomics maintained
// alongside the maps: Stats() and the mm_pubsub_subscribers gauge read
// them without touching any shard, and the publish hot path skips the
// brute-force snapshot entirely while no unindexable learner is
// registered (the common case).
type registry struct {
	shards []regShard
	mask   uint32
	count  atomic.Int64 // live subscribers across all shards
	brutes atomic.Int64 // live brute-force (unindexable) subscribers
}

type regShard struct {
	mu    sync.RWMutex
	subs  map[string]*subscriber
	brute map[string]*subscriber
}

// newRegistry builds a registry with the given shard-count suggestion
// rounded up to a power of two; n <= 0 means GOMAXPROCS.
func newRegistry(n int) *registry {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	shards := 1
	for shards < n {
		shards *= 2
	}
	r := &registry{shards: make([]regShard, shards), mask: uint32(shards - 1)}
	for i := range r.shards {
		r.shards[i].subs = make(map[string]*subscriber)
		r.shards[i].brute = make(map[string]*subscriber)
	}
	return r
}

// regFNV32 is the 32-bit FNV-1a hash, inlined so shard routing stays
// allocation-free on the publish path.
func regFNV32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

func (r *registry) shardFor(id string) *regShard {
	return &r.shards[regFNV32(id)&r.mask]
}

// insert registers s under id. The duplicate check, the journal append
// (when journal is non-nil), and the map insertion happen as one atomic
// step under the id's shard lock — journaling a subscribe that then fails
// as a duplicate would clobber the existing user's profile on replay.
// Returns errDuplicate when id is taken; a journal error aborts the
// insertion.
func (r *registry) insert(id string, s *subscriber, journal func() error) error {
	sh := r.shardFor(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.subs[id]; dup {
		return errDuplicate
	}
	if journal != nil {
		if err := journal(); err != nil {
			return err
		}
	}
	sh.subs[id] = s
	r.count.Add(1)
	// Evicted stubs (learner nil, SubscribeRestored) stay out of the brute
	// table until hydration rejoins them; s is not yet shared, so the
	// learner field can be read without its lock.
	if !s.indexed && s.learner != nil {
		sh.brute[id] = s
		r.brutes.Add(1)
	}
	return nil
}

// dropBrute removes an evicted brute-force subscriber from its shard's
// brute table so publishes stop snapshotting it; the subscriber itself
// stays registered.
func (r *registry) dropBrute(id string) {
	sh := r.shardFor(id)
	sh.mu.Lock()
	if _, ok := sh.brute[id]; ok {
		delete(sh.brute, id)
		r.brutes.Add(-1)
	}
	sh.mu.Unlock()
}

// rejoinBrute returns a rehydrated brute-force subscriber to its shard's
// brute table (idempotent).
func (r *registry) rejoinBrute(id string, s *subscriber) {
	sh := r.shardFor(id)
	sh.mu.Lock()
	if _, ok := sh.brute[id]; !ok {
		sh.brute[id] = s
		r.brutes.Add(1)
	}
	sh.mu.Unlock()
}

// remove deletes id from its shard and returns the removed subscriber.
func (r *registry) remove(id string) (*subscriber, bool) {
	return r.removeMatch(id, nil)
}

// removeMatch deletes id from its shard only while the registered
// subscriber is identical to want (want nil matches anything, which is
// plain remove). The identity check lets a stale Subscription handle be
// canceled without any risk of tearing down a newer subscriber that has
// since taken the same id.
func (r *registry) removeMatch(id string, want *subscriber) (*subscriber, bool) {
	sh := r.shardFor(id)
	sh.mu.Lock()
	s, ok := sh.subs[id]
	if ok && want != nil && s != want {
		s, ok = nil, false
	}
	if ok {
		delete(sh.subs, id)
		r.count.Add(-1)
		if _, wasBrute := sh.brute[id]; wasBrute {
			delete(sh.brute, id)
			r.brutes.Add(-1)
		}
	}
	sh.mu.Unlock()
	return s, ok
}

// get resolves one subscriber id under its shard's read lock.
func (r *registry) get(id string) (*subscriber, bool) {
	sh := r.shardFor(id)
	sh.mu.RLock()
	s, ok := sh.subs[id]
	sh.mu.RUnlock()
	return s, ok
}

// len returns the live subscriber count without touching any shard lock.
func (r *registry) len() int { return int(r.count.Load()) }

// bruteCount returns the live brute-force subscriber count lock-free; the
// publish path uses it to skip the snapshot entirely when zero.
func (r *registry) bruteCount() int { return int(r.brutes.Load()) }

// bruteSnapshot appends every brute-force subscriber to dst (reusing its
// capacity) under per-shard read locks. Callers score the snapshot after
// releasing the locks, so a slow learner.Score can never stall
// subscription churn or publishes on the same shard.
func (r *registry) bruteSnapshot(dst []*subscriber) []*subscriber {
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for _, s := range sh.brute {
			dst = append(dst, s)
		}
		sh.mu.RUnlock()
	}
	return dst
}

// snapshot returns every registered subscriber, shard by shard. The result
// is a point-in-time copy: iteration happens with no shard lock held.
func (r *registry) snapshot() []*subscriber {
	out := make([]*subscriber, 0, r.len())
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.RLock()
		for _, s := range sh.subs {
			out = append(out, s)
		}
		sh.mu.RUnlock()
	}
	return out
}
