package pubsub

import (
	"io"
	"testing"
	"time"

	"mmprofile/internal/core"
	"mmprofile/internal/filter"
	"mmprofile/internal/metrics"
	"mmprofile/internal/obs"
	"mmprofile/internal/trace"
)

// TestPublishUnsampledAddsNoAllocs is the PR 5 acceptance guard, extended
// in PR 7 with the logging leg: with a tracer configured but this publish
// neither sampled nor slow — and with a structured logger configured but
// debug disabled — the publish hot path must allocate exactly what a bare
// broker does. Measured as a delta so docstore/index allocations inherent
// to publishing don't turn the test into a moving target.
func TestPublishUnsampledAddsNoAllocs(t *testing.T) {
	doc := vec("cat", 1.0, "dog", 0.5)
	setup := func(tr *trace.Tracer, lg *obs.Logger) *Broker {
		b := New(Options{Threshold: 0.3, Retention: 1 << 16, Trace: tr, Log: lg})
		if _, err := b.Subscribe("alice", trainedMM("cat", "dog")); err != nil {
			t.Fatal(err)
		}
		// Warm the docstore/index paths so steady-state is measured.
		for i := 0; i < 100; i++ {
			b.PublishVector(doc)
		}
		return b
	}

	base := setup(nil, nil)
	// SampleRate 0 disables head sampling; the 1h threshold keeps any
	// CI-induced slowness from triggering the slow-capture path.
	traced := setup(trace.New(trace.Options{SlowThreshold: time.Hour}), nil)
	// Logger at info: the publish path's debug statements must vanish
	// behind the Enabled guard (obs zero-alloc contract).
	infoLog, err := obs.NewLogger(obs.LogOptions{Format: "json", Output: io.Discard, Level: obs.LevelInfo})
	if err != nil {
		t.Fatal(err)
	}
	logged := setup(trace.New(trace.Options{SlowThreshold: time.Hour}), infoLog)

	const rounds = 200
	baseAllocs := testing.AllocsPerRun(rounds, func() { base.PublishVector(doc) })
	tracedAllocs := testing.AllocsPerRun(rounds, func() { traced.PublishVector(doc) })
	loggedAllocs := testing.AllocsPerRun(rounds, func() { logged.PublishVector(doc) })
	if tracedAllocs > baseAllocs {
		t.Fatalf("unsampled tracing adds allocations: %v allocs/op with tracer vs %v without",
			tracedAllocs, baseAllocs)
	}
	if loggedAllocs > baseAllocs {
		t.Fatalf("disabled-level logging adds allocations: %v allocs/op with logger vs %v without",
			loggedAllocs, baseAllocs)
	}
}

// TestPublishSampledSpanTree checks a head-sampled publish is captured with
// its phase children and the doc/delivery attributes.
func TestPublishSampledSpanTree(t *testing.T) {
	tr := trace.New(trace.Options{SampleRate: 1})
	b := New(Options{Threshold: 0.3, Trace: tr})
	if _, err := b.Subscribe("alice", trainedMM("cat", "dog")); err != nil {
		t.Fatal(err)
	}
	id, n := b.PublishVector(vec("cat", 1.0, "dog", 1.0))
	if n != 1 {
		t.Fatalf("deliveries = %d", n)
	}

	snap := tr.Snapshot()
	if len(snap.Recent) != 1 {
		t.Fatalf("captured %d traces, want 1", len(snap.Recent))
	}
	ts := snap.Recent[0]
	if ts.Root != "pubsub.publish" {
		t.Fatalf("root = %q", ts.Root)
	}
	names := map[string]bool{}
	for _, s := range ts.Spans {
		names[s.Name] = true
	}
	for _, want := range []string{"pubsub.publish", "index.match", "pubsub.deliver"} {
		if !names[want] {
			t.Errorf("missing span %q in %+v", want, ts.Spans)
		}
	}
	var gotDoc, gotDeliveries bool
	for _, s := range ts.Spans {
		if s.Name != "pubsub.publish" {
			continue
		}
		for _, a := range s.Attrs {
			switch a.Key {
			case "doc":
				gotDoc = a.Value() == id
			case "deliveries":
				gotDeliveries = a.Value() == int64(1)
			}
		}
	}
	if !gotDoc || !gotDeliveries {
		t.Errorf("root attrs missing doc/deliveries: %+v", ts.Spans)
	}

	// The sampled trace must surface as an exemplar on the publish
	// histogram, linked by trace id.
	hist := b.Metrics().Snapshot()["mm_pubsub_publish_seconds"].(metrics.HistogramSnapshot)
	found := false
	for _, ex := range hist.Exemplars {
		if ex.Trace == ts.Trace {
			found = true
		}
	}
	if !found {
		t.Errorf("publish histogram exemplars %+v do not link trace %s", hist.Exemplars, ts.Trace)
	}
}

// TestFeedbackSampledSpanTreeAndAuditTag checks a sampled feedback records
// journal/observe/reindex children and stamps the audit journal with the
// trace id.
func TestFeedbackSampledSpanTreeAndAuditTag(t *testing.T) {
	tr := trace.New(trace.Options{SampleRate: 1})
	b := New(Options{Threshold: 0.3, Trace: tr})
	if _, err := b.Subscribe("alice", trainedMM("cat", "dog")); err != nil {
		t.Fatal(err)
	}
	id, _ := b.PublishVector(vec("cat", 1.0, "dog", 1.0))
	if err := b.Feedback("alice", id, filter.Relevant); err != nil {
		t.Fatal(err)
	}

	var fb *trace.TraceSnapshot
	for _, ts := range tr.Snapshot().Recent {
		if ts.Root == "pubsub.feedback" {
			ts := ts
			fb = &ts
		}
	}
	if fb == nil {
		t.Fatal("no feedback trace captured")
	}
	names := map[string]bool{}
	for _, s := range fb.Spans {
		names[s.Name] = true
	}
	for _, want := range []string{"pubsub.feedback", "core.observe", "index.reindex"} {
		if !names[want] {
			t.Errorf("missing span %q in %+v", want, fb.Spans)
		}
	}

	info, err := b.ProfileInfo("alice", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Audit) == 0 {
		t.Fatal("no audit events after feedback")
	}
	last := info.Audit[len(info.Audit)-1]
	if last.Doc != id {
		t.Errorf("audit doc = %d, want %d", last.Doc, id)
	}
	if last.Trace != fb.Trace {
		t.Errorf("audit trace = %q, want %q", last.Trace, fb.Trace)
	}
	if last.Op != core.AuditIncorporate || last.Cosine < last.Theta {
		t.Errorf("expected incorporate with cosine ≥ θ, got %+v", last)
	}
}

// TestPublishSlowCapture checks the always-capture-slow policy: head
// sampling off, a tiny threshold, and a publish must surface as a
// synthetic root-only trace.
func TestPublishSlowCapture(t *testing.T) {
	tr := trace.New(trace.Options{SlowThreshold: time.Nanosecond})
	b := New(Options{Threshold: 0.3, Trace: tr})
	if _, err := b.Subscribe("alice", trainedMM("cat", "dog")); err != nil {
		t.Fatal(err)
	}
	b.PublishVector(vec("cat", 1.0))

	snap := tr.Snapshot()
	if len(snap.Slow) == 0 {
		t.Fatal("no slow trace captured")
	}
	ts := snap.Slow[0]
	if !ts.Synthetic || ts.Root != "pubsub.publish" {
		t.Fatalf("slow capture = %+v", ts)
	}
}

// TestBatchWorkersInheritBatchRoot checks PublishBatch takes one sampling
// decision and every worker's publish nests under the batch root.
func TestBatchWorkersInheritBatchRoot(t *testing.T) {
	tr := trace.New(trace.Options{SampleRate: 1})
	b := New(Options{Threshold: 0.3, PublishWorkers: 4, Trace: tr})
	if _, err := b.Subscribe("alice", trainedMM("cat", "dog")); err != nil {
		t.Fatal(err)
	}
	pages := make([]string, 8)
	for i := range pages {
		pages[i] = "<html><body>cat dog</body></html>"
	}
	b.PublishBatch(pages)

	var batch *trace.TraceSnapshot
	for _, ts := range tr.Snapshot().Recent {
		if ts.Root == "pubsub.publish_batch" {
			ts := ts
			batch = &ts
		}
	}
	if batch == nil {
		t.Fatal("no batch trace captured")
	}
	publishes := 0
	for _, s := range batch.Spans {
		if s.Name == "pubsub.publish" {
			publishes++
		}
	}
	if publishes != len(pages) {
		t.Fatalf("batch trace has %d publish spans, want %d", publishes, len(pages))
	}
}

// TestExplainDoc checks the retained-document explanation endpoint helper.
func TestExplainDoc(t *testing.T) {
	b := New(Options{Threshold: 0.3})
	if _, err := b.Subscribe("alice", trainedMM("cat", "dog")); err != nil {
		t.Fatal(err)
	}
	id, _ := b.PublishVector(vec("cat", 1.0, "dog", 1.0))
	ex, err := b.ExplainDoc("alice", id, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Score <= 0 || ex.VectorID == 0 || len(ex.Contributions) == 0 {
		t.Fatalf("explanation = %+v", ex)
	}
	if _, err := b.ExplainDoc("nobody", id, 5); err == nil {
		t.Fatal("unknown user did not error")
	}
	if _, err := b.ExplainDoc("alice", 99999, 5); err == nil {
		t.Fatal("unretained doc did not error")
	}
}
