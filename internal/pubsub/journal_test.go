package pubsub

import (
	"errors"
	"testing"

	"mmprofile/internal/core"
	"mmprofile/internal/filter"
	"mmprofile/internal/store"
	"mmprofile/internal/vsm"
)

// TestJournalIntegration runs the broker against a real store and verifies
// that a second broker restored from disk matches the first.
func TestJournalIntegration(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := New(Options{Threshold: 0.3, Journal: st})
	sub, err := b.Subscribe("alice", trainedMM("cat", "dog"))
	if err != nil {
		t.Fatal(err)
	}
	id, _ := b.PublishVector(vec("cat", 1.0, "dog", 1.0, "bird", 0.4))
	if err := sub.Feedback(id, filter.Relevant); err != nil {
		t.Fatal(err)
	}
	b.Subscribe("bob", core.NewDefault())
	b.Unsubscribe("bob")
	st.Close()

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	profiles, events, err := st2.Load()
	if err != nil {
		t.Fatal(err)
	}
	learners, err := store.Restore(profiles, events)
	if err != nil {
		t.Fatal(err)
	}
	if len(learners) != 1 {
		t.Fatalf("restored %d learners, want 1 (bob unsubscribed)", len(learners))
	}
	restored := learners["alice"]
	probe := vec("cat", 1.0, "bird", 0.5)
	want := sub.Score(probe)
	if got := restored.Score(probe); got != want {
		t.Errorf("restored score %v, want %v", got, want)
	}
}

// TestExportProfiles checks checkpoint export and its all-or-nothing rule.
func TestExportProfiles(t *testing.T) {
	b := New(Options{})
	b.Subscribe("alice", trainedMM("cat"))
	snaps, err := b.ExportProfiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || snaps[0].User != "alice" || snaps[0].Learner != "MM" || len(snaps[0].Data) == 0 {
		t.Errorf("snaps = %+v", snaps)
	}
	// A non-serializable learner blocks the checkpoint.
	b.Subscribe("eve", opaque{core.NewDefault()})
	if _, err := b.ExportProfiles(); err == nil {
		t.Error("export with non-serializable learner did not error")
	}
}

// failingJournal simulates a full disk.
type failingJournal struct{ failFeedback bool }

func (f failingJournal) AppendSubscribe(string, string, []byte) error {
	if !f.failFeedback {
		return errors.New("disk full")
	}
	return nil
}
func (f failingJournal) AppendUnsubscribe(string) error { return nil }
func (f failingJournal) AppendFeedback(string, vsm.Vector, filter.Feedback) error {
	if f.failFeedback {
		return errors.New("disk full")
	}
	return nil
}

func TestJournalFailuresSurface(t *testing.T) {
	b := New(Options{Journal: failingJournal{}})
	if _, err := b.Subscribe("alice", core.NewDefault()); err == nil {
		t.Error("subscribe with failing journal did not error")
	}

	b2 := New(Options{Threshold: 0.3, Journal: failingJournal{failFeedback: true}})
	sub, err := b2.Subscribe("alice", trainedMM("cat"))
	if err != nil {
		t.Fatal(err)
	}
	id, _ := b2.PublishVector(vec("cat", 1.0))
	before := sub.ProfileSize()
	if err := sub.Feedback(id, filter.Relevant); err == nil {
		t.Error("feedback with failing journal did not error")
	}
	if sub.ProfileSize() != before {
		t.Error("unjournaled feedback was applied")
	}
}

// syncCountingJournal records SyncJournal passthrough.
type syncCountingJournal struct {
	failingJournal
	syncs int
}

func (j *syncCountingJournal) Sync() error {
	j.syncs++
	return nil
}

// TestSyncJournal pins the broker's explicit durability barrier: it
// reaches the journal's Sync when one is available, and is a safe no-op
// for journals without one (or no journal at all).
func TestSyncJournal(t *testing.T) {
	// No journal: nothing to sync, no error.
	if err := New(Options{}).SyncJournal(); err != nil {
		t.Fatal(err)
	}
	// A journal without Sync: still a no-op.
	b := New(Options{Journal: failingJournal{failFeedback: true}})
	if err := b.SyncJournal(); err != nil {
		t.Fatal(err)
	}
	// A syncable journal: the barrier goes through.
	j := &syncCountingJournal{failingJournal: failingJournal{failFeedback: true}}
	b2 := New(Options{Journal: j})
	if err := b2.SyncJournal(); err != nil {
		t.Fatal(err)
	}
	if j.syncs != 1 {
		t.Fatalf("syncs = %d, want 1", j.syncs)
	}
}

// TestSyncJournalAgainstStore runs the barrier against the real store in
// relaxed (non-durable) mode: after SyncJournal returns, every journaled
// event must be fsynced.
func TestSyncJournalAgainstStore(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := New(Options{Threshold: 0.3, Journal: st})
	sub, err := b.Subscribe("alice", trainedMM("cat"))
	if err != nil {
		t.Fatal(err)
	}
	id, _ := b.PublishVector(vec("cat", 1.0))
	if err := sub.Feedback(id, filter.Relevant); err != nil {
		t.Fatal(err)
	}
	if err := b.SyncJournal(); err != nil {
		t.Fatal(err)
	}
	st.Close()
}
