package pubsub

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mmprofile/internal/filter"
	"mmprofile/internal/vsm"
)

// TestChurnStress runs concurrent Subscribe / Publish / PublishBatch /
// Feedback / Unsubscribe against one broker (meaningful under -race) and
// then checks the cross-layer invariants the sharded design must hold:
//
//   - no ghost index entries: the index holds exactly the live indexed
//     subscribers, none of the unsubscribed ones;
//   - no double-closed queues (a second close would panic the test);
//   - counter agreement: Stats(), the subscriber gauge, and the
//     profile-vector gauge all match ground truth reconstructed from the
//     surviving subscriptions.
func TestChurnStress(t *testing.T) {
	b := New(Options{Threshold: 0.2, QueueSize: 8, PublishWorkers: 2})

	// One persistent brute-force subscriber keeps the snapshot-and-score
	// path active throughout the churn.
	bruteSub, err := b.Subscribe("brute", opaque{trainedMM("topic0")})
	if err != nil {
		t.Fatal(err)
	}

	const (
		publishers = 4
		pubIters   = 25
		churners   = 4
		churnIters = 30
	)
	var wg sync.WaitGroup
	for g := 0; g < publishers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < pubIters; i++ {
				b.PublishVector(vec(fmt.Sprintf("topic%d", (g+i)%6), 1.0))
				batch := make([]vsm.Vector, 4)
				for j := range batch {
					batch[j] = vec(fmt.Sprintf("topic%d", (g+i+j)%6), 1.0, "common", 0.3)
				}
				b.PublishVectorBatch(batch)
			}
		}(g)
	}

	kept := make([][]*Subscription, churners)
	for g := 0; g < churners; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < churnIters; i++ {
				id := fmt.Sprintf("churn%d-%d", g, i)
				sub, err := b.Subscribe(id, trainedMM(fmt.Sprintf("topic%d", i%6)))
				if err != nil {
					t.Errorf("Subscribe(%s): %v", id, err)
					continue
				}
				select {
				case d := <-sub.Deliveries():
					_ = sub.Feedback(d.Doc, filter.Relevant) // evicted docs may error; fine
				default:
				}
				if i%3 == 0 {
					kept[g] = append(kept[g], sub)
				} else {
					b.Unsubscribe(id)
				}
			}
		}(g)
	}
	wg.Wait()

	wantPublished := int64(publishers * pubIters * 5) // 1 single + 4 batched per iteration
	st := b.Stats()
	if st.Published != wantPublished {
		t.Errorf("Published = %d, want %d", st.Published, wantPublished)
	}

	live := 1 // the brute subscriber
	indexed := 0
	wantVectors := 0
	for _, subs := range kept {
		for _, sub := range subs {
			live++
			indexed++
			wantVectors += sub.ProfileSize()
		}
	}
	wantVectors += bruteSub.ProfileSize()
	if st.Subscribers != live {
		t.Errorf("Stats().Subscribers = %d, want %d", st.Subscribers, live)
	}
	if got := b.reg.len(); got != live {
		t.Errorf("registry count = %d, want %d", got, live)
	}
	// Ghost check: every unsubscribed user must be gone from the index,
	// every kept indexed user present. A Feedback racing an Unsubscribe
	// that re-inserted index entries for a removed user shows up here as
	// Users > indexed.
	if got := b.IndexStats().Users; got != indexed {
		t.Errorf("index users = %d, want %d (ghost or lost entries)", got, indexed)
	}
	if got := b.m.profileVectors.Value(); got != float64(wantVectors) {
		t.Errorf("profileVectors gauge = %v, want %d", got, wantVectors)
	}
	// Unsubscribing every survivor must return all gauges to their floor
	// and close every queue exactly once.
	for _, subs := range kept {
		for _, sub := range subs {
			b.Unsubscribe(sub.ID())
		}
	}
	b.Unsubscribe("brute")
	if got := b.IndexStats().Users; got != 0 {
		t.Errorf("index users after full unsubscribe = %d, want 0", got)
	}
	if got := b.m.profileVectors.Value(); got != 0 {
		t.Errorf("profileVectors gauge after full unsubscribe = %v, want 0", got)
	}
}

// TestFeedbackUnsubscribeNoGhostEntries pins the Feedback/Unsubscribe race
// fix: Feedback re-checks closed and reindexes under the subscriber's
// lock, so a concurrent Unsubscribe (which removes the user's index
// entries under the same lock) can never be followed by a stale SetUser
// re-inserting ghost entries for the removed user.
func TestFeedbackUnsubscribeNoGhostEntries(t *testing.T) {
	for i := 0; i < 200; i++ {
		b := New(Options{Threshold: 0.9, QueueSize: 4, Retention: 8})
		if _, err := b.Subscribe("alice", trainedMM("cat")); err != nil {
			t.Fatal(err)
		}
		doc, _ := b.PublishVector(vec("stock", 1.0))
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			_ = b.Feedback("alice", doc, filter.Relevant) // may race the unsubscribe; must not ghost
		}()
		go func() {
			defer wg.Done()
			b.Unsubscribe("alice")
		}()
		wg.Wait()
		if got := b.IndexStats().Users; got != 0 {
			t.Fatalf("iteration %d: %d ghost index user(s) after unsubscribe", i, got)
		}
	}
}

// blockingLearner is an unindexable learner whose Score parks until
// released, to hold the brute-force scoring path open mid-publish.
type blockingLearner struct {
	entered chan struct{}
	release chan struct{}
}

func (l *blockingLearner) Name() string                        { return "blocking" }
func (l *blockingLearner) Observe(vsm.Vector, filter.Feedback) {}
func (l *blockingLearner) ProfileSize() int                    { return 0 }
func (l *blockingLearner) Reset()                              {}
func (l *blockingLearner) Score(vsm.Vector) float64 {
	l.entered <- struct{}{}
	<-l.release
	return 0
}

// TestBruteScoreOutsideRegistryLock pins the brute-force scoring fix:
// learners are scored from a snapshot taken under the registry shard
// locks and released before any Score call, so a slow learner can no
// longer stall Subscribe/Unsubscribe (which the old code did by holding
// the subscriber table's read lock across every brute Score).
func TestBruteScoreOutsideRegistryLock(t *testing.T) {
	b := New(Options{Threshold: 0.1})
	l := &blockingLearner{entered: make(chan struct{}), release: make(chan struct{})}
	if _, err := b.Subscribe("slow", l); err != nil {
		t.Fatal(err)
	}
	published := make(chan struct{})
	go func() {
		b.PublishVector(vec("cat", 1.0))
		close(published)
	}()
	<-l.entered // the publish is now parked inside Score

	// Registry mutations across every shard must complete while the brute
	// learner is still being scored.
	churned := make(chan struct{})
	go func() {
		for i := 0; i < 32; i++ {
			id := fmt.Sprintf("fast%d", i)
			if _, err := b.Subscribe(id, trainedMM("dog")); err != nil {
				t.Errorf("Subscribe(%s): %v", id, err)
			}
			b.Unsubscribe(id)
		}
		close(churned)
	}()
	select {
	case <-churned:
	case <-time.After(5 * time.Second):
		t.Fatal("subscribe/unsubscribe churn blocked behind a brute-force Score")
	}
	close(l.release)
	<-published
}
