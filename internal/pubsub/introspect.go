package pubsub

import (
	"fmt"

	"mmprofile/internal/core"
	"mmprofile/internal/trace"
	"mmprofile/internal/vsm"
)

// Tracer returns the tracer the broker records request traces into: the
// one passed via Options.Trace, or nil when tracing is not configured (the
// wire /tracez endpoint reports "disabled" then).
func (b *Broker) Tracer() *trace.Tracer { return b.opts.Trace }

// VectorInfo describes one profile vector for introspection (/explainz):
// the stable id that audit events refer to, the strength statistic, and
// the heaviest terms — enough to recognize what interest the cluster
// represents without dumping full weight vectors.
type VectorInfo struct {
	ID             uint64   `json:"id"`
	Strength       float64  `json:"strength"`
	CreatedAt      int      `json:"created_at"`
	Incorporations int      `json:"incorporations"`
	TopTerms       []string `json:"top_terms,omitempty"`
}

// ProfileInfo is one subscriber's adaptation state: current vectors plus
// the audit journal explaining how they came to be.
type ProfileInfo struct {
	User    string            `json:"user"`
	Learner string            `json:"learner"`
	Size    int               `json:"size"`
	Vectors []VectorInfo      `json:"vectors,omitempty"`
	Audit   []core.AuditEvent `json:"audit"`
}

// vectorLister and auditSource are the core.Profile capabilities the
// introspection endpoints use; other learners may implement them too.
type vectorLister interface {
	Vectors() []core.ProfileVector
}

type auditSource interface {
	AuditTrail() []core.AuditEvent
}

type explainer interface {
	Explain(v vsm.Vector, maxTerms int) core.Explanation
}

// ProfileInfo snapshots a subscriber's vectors and audit journal under the
// subscriber's lock. topTerms bounds the terms reported per vector.
func (b *Broker) ProfileInfo(user string, topTerms int) (ProfileInfo, error) {
	s, ok := b.reg.get(user)
	if !ok {
		return ProfileInfo{}, fmt.Errorf("pubsub: unknown subscriber %q", user)
	}
	defer b.enforceResidency()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ProfileInfo{}, fmt.Errorf("pubsub: unknown subscriber %q", user)
	}
	if err := b.residentLocked(s, nil); err != nil {
		return ProfileInfo{}, err
	}
	info := ProfileInfo{User: user, Learner: s.learner.Name(), Size: s.learner.ProfileSize()}
	if vl, ok := s.learner.(vectorLister); ok {
		for _, pv := range vl.Vectors() {
			info.Vectors = append(info.Vectors, VectorInfo{
				ID:             pv.ID,
				Strength:       pv.Strength,
				CreatedAt:      pv.CreatedAt,
				Incorporations: pv.Incorporations,
				TopTerms:       pv.Vec.TopTerms(topTerms),
			})
		}
	}
	if as, ok := s.learner.(auditSource); ok {
		info.Audit = as.AuditTrail()
	}
	return info, nil
}

// ExplainDoc explains a still-retained document against a subscriber's
// profile: which cluster (by stable id) matched and which terms carried
// the score. It requires a learner that supports explanation (core.Profile
// does) and does not modify the profile.
func (b *Broker) ExplainDoc(user string, doc int64, maxTerms int) (core.Explanation, error) {
	rec, ok := b.docs.Get(doc)
	if !ok {
		return core.Explanation{}, fmt.Errorf("pubsub: document %d not retained (retention %d)", doc, b.opts.Retention)
	}
	s, ok := b.reg.get(user)
	if !ok {
		return core.Explanation{}, fmt.Errorf("pubsub: unknown subscriber %q", user)
	}
	defer b.enforceResidency()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return core.Explanation{}, fmt.Errorf("pubsub: unknown subscriber %q", user)
	}
	if err := b.residentLocked(s, nil); err != nil {
		return core.Explanation{}, err
	}
	ex, ok := s.learner.(explainer)
	if !ok {
		return core.Explanation{}, fmt.Errorf("pubsub: learner %q does not support explanation", s.learner.Name())
	}
	return ex.Explain(rec.Vec, maxTerms), nil
}
