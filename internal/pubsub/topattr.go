package pubsub

import "mmprofile/internal/topk"

// DefaultTopCapacity is the per-dimension entry budget when
// Options.TopCapacity is zero. 1024 tracked subscribers per dimension
// costs ~100KB and keeps the space-saving error bound at W/1024 — tight
// enough that anything contributing over 0.1% of a dimension's weight is
// guaranteed to be visible.
const DefaultTopCapacity = 1024

// brokerTop bundles the broker's attribution sketches (DESIGN.md §16):
// per-subscriber dimensions answering "who is receiving / dropping /
// overflowing / hydrating the most". All sketches are nil when
// attribution is disabled (TopCapacity < 0) — Offer on a nil sketch is a
// no-op, so the hot-path call sites stay unconditional.
type brokerTop struct {
	reg        *topk.Registry
	deliveries *topk.Sketch[string]
	drops      *topk.Sketch[string]
	queueFull  *topk.Sketch[string]
	hydrations *topk.Sketch[string]
}

func newBrokerTop(reg *topk.Registry, capacity int) brokerTop {
	t := brokerTop{reg: reg}
	if capacity < 0 {
		return t
	}
	if capacity == 0 {
		capacity = DefaultTopCapacity
	}
	mk := func(name, help string) *topk.Sketch[string] {
		sk := topk.New[string](name, help, capacity, 0, topk.HashString, topk.FormatString)
		reg.Register(sk)
		return sk
	}
	t.deliveries = mk("subscriber_deliveries",
		"Deliveries enqueued, by subscriber.")
	t.drops = mk("subscriber_drops",
		"Deliveries discarded by the drop-oldest policy, by subscriber.")
	t.queueFull = mk("subscriber_queue_full",
		"Enqueues that found the queue full (each forced at least one drop), by subscriber.")
	t.hydrations = mk("subscriber_hydrations",
		"Profile rebuilds from the store after residency eviction, by subscriber.")
	return t
}

// Top returns the broker's attribution-dimension registry: every sketch
// the broker (and, through it, the index) feeds, for /topz, the flight
// recorder, and eviction policies. Always non-nil; empty when attribution
// was disabled via Options.TopCapacity < 0.
func (b *Broker) Top() *topk.Registry { return b.top.reg }
