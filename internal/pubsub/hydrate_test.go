package pubsub

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"mmprofile/internal/core"
	"mmprofile/internal/filter"
	"mmprofile/internal/metrics"
	"mmprofile/internal/store"
	"mmprofile/internal/vsm"
)

// blindLearner wraps an MM profile but hides filter.VectorSource, so the
// broker must score it brute-force — exercising the brute-table leave/
// rejoin half of eviction and hydration. It is serializable and
// registered, so the store can journal and restore it.
type blindLearner struct{ p *core.Profile }

func (b blindLearner) Name() string                             { return "blindMM" }
func (b blindLearner) Observe(v vsm.Vector, fd filter.Feedback) { b.p.Observe(v, fd) }
func (b blindLearner) Score(v vsm.Vector) float64               { return b.p.Score(v) }
func (b blindLearner) ProfileSize() int                         { return b.p.ProfileSize() }
func (b blindLearner) Reset()                                   { b.p.Reset() }
func (b blindLearner) MarshalBinary() ([]byte, error)           { return b.p.MarshalBinary() }
func (b blindLearner) UnmarshalBinary(data []byte) error        { return b.p.UnmarshalBinary(data) }

func init() {
	filter.Register("blindMM", func() filter.Learner { return blindLearner{p: core.NewDefault()} })
}

// hydUsers builds the mixed user population: mostly indexable MM, a few
// brute-force blindMM.
func hydUsers(n int) ([]string, map[string]string) {
	users := make([]string, n)
	names := make(map[string]string, n)
	for i := range users {
		users[i] = fmt.Sprintf("user%02d", i)
		if i%6 == 5 {
			names[users[i]] = "blindMM"
		} else {
			names[users[i]] = "MM"
		}
	}
	return users, names
}

func randTermVec(rng *rand.Rand) vsm.Vector {
	terms := []string{"cat", "dog", "bird", "fish", "lion", "wolf", "bear", "crow"}
	m := map[string]float64{}
	for _, tm := range terms {
		if rng.Float64() < 0.4 {
			m[tm] = rng.Float64() + 0.05
		}
	}
	v := vsm.FromMap(m).Normalized()
	if v.IsZero() {
		return vsm.FromMap(map[string]float64{"cat": 1}).Normalized()
	}
	return v
}

// TestBoundedResidencyMatchesUnbounded is the lazy-hydration equivalence
// property (DESIGN.md §14): a broker holding at most 4 profiles resident —
// evicting and rehydrating through a real sharded store, across
// checkpoints — must end every profile in a state bit-identical
// (MarshalBinary) to an always-resident broker fed the same operation
// sequence.
func TestBoundedResidencyMatchesUnbounded(t *testing.T) {
	const (
		nUsers      = 24
		maxResident = 4
		steps       = 300
	)
	reg := metrics.NewRegistry()
	stA, err := store.Open(t.TempDir(), store.Options{Lanes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer stA.Close()
	stB, err := store.Open(t.TempDir(), store.Options{Lanes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer stB.Close()

	bounded := New(Options{Threshold: 0.3, Journal: stA, Hydrator: stA, MaxResident: maxResident, Metrics: reg})
	full := New(Options{Threshold: 0.3, Journal: stB})

	users, names := hydUsers(nUsers)
	for _, u := range users {
		la, err := filter.New(names[u])
		if err != nil {
			t.Fatal(err)
		}
		lb, err := filter.New(names[u])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := bounded.Subscribe(u, la); err != nil {
			t.Fatal(err)
		}
		if _, err := full.Subscribe(u, lb); err != nil {
			t.Fatal(err)
		}
	}

	rng := rand.New(rand.NewSource(42))
	for step := 0; step < steps; step++ {
		v := randTermVec(rng)
		docA, _ := bounded.PublishVector(v)
		docB, _ := full.PublishVector(v)
		if docA != docB {
			t.Fatalf("step %d: doc ids diverge (%d vs %d)", step, docA, docB)
		}
		for i := 0; i < 1+rng.Intn(3); i++ {
			u := users[rng.Intn(nUsers)]
			fd := filter.Relevant
			if rng.Float64() < 0.35 {
				fd = filter.NotRelevant
			}
			if err := bounded.Feedback(u, docA, fd); err != nil {
				t.Fatalf("step %d: bounded feedback %s: %v", step, u, err)
			}
			if err := full.Feedback(u, docB, fd); err != nil {
				t.Fatalf("step %d: full feedback %s: %v", step, u, err)
			}
		}
		// Periodic checkpoints move cold profiles into segments, so later
		// hydrations replay segment + short log rather than the full WAL.
		if step%60 == 59 {
			if _, err := stA.Checkpoint(1); err != nil {
				t.Fatal(err)
			}
		}
	}

	for _, u := range users {
		a, err := bounded.ExportProfile(u)
		if err != nil {
			t.Fatalf("export %s (bounded): %v", u, err)
		}
		b, err := full.ExportProfile(u)
		if err != nil {
			t.Fatalf("export %s (full): %v", u, err)
		}
		if a.Learner != b.Learner || !bytes.Equal(a.Data, b.Data) {
			t.Errorf("user %s: bounded profile diverges from always-resident (%d vs %d bytes)",
				u, len(a.Data), len(b.Data))
		}
	}

	snap := reg.Snapshot()
	if got := snap["mm_pubsub_hydrations_total"].(int64); got == 0 {
		t.Error("no hydrations recorded — the bound never kicked in")
	}
	if got := snap["mm_pubsub_profile_evictions_total"].(int64); got == 0 {
		t.Error("no evictions recorded")
	}
	if got := snap["mm_pubsub_resident_profiles"].(float64); got > maxResident {
		t.Errorf("resident profiles = %v, want <= %d", got, maxResident)
	}
}

// TestLazyBootHydratesOnDemand pins the O(subscribers) boot path: users
// registered as evicted stubs (SubscribeRestored with a nil learner)
// occupy no heap and leave the match path until first touched, then
// hydrate to exactly the state the journal describes.
func TestLazyBootHydratesOnDemand(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{Lanes: 2})
	if err != nil {
		t.Fatal(err)
	}
	b1 := New(Options{Threshold: 0.3, Journal: st})
	for _, u := range []string{"alice", "bob", "carol"} {
		if _, err := b1.Subscribe(u, core.NewDefault()); err != nil {
			t.Fatal(err)
		}
		doc, _ := b1.PublishVector(vec("cat", 1.0))
		if err := b1.Feedback(u, doc, filter.Relevant); err != nil {
			t.Fatal(err)
		}
	}
	wantSize := make(map[string]int)
	for _, u := range []string{"alice", "bob", "carol"} {
		snap, err := b1.ExportProfile(u)
		if err != nil {
			t.Fatal(err)
		}
		wantSize[u] = len(snap.Data)
	}
	st.Close()

	st2, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	profiles, events, err := st2.Load()
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	b2 := New(Options{Threshold: 0.3, Journal: st2, Hydrator: st2, MaxResident: 1, Metrics: reg})
	names := store.RestoredNames(profiles, events)
	subs := map[string]*Subscription{}
	for u, name := range names {
		sub, err := b2.SubscribeRestored(u, name, nil)
		if err != nil {
			t.Fatal(err)
		}
		subs[u] = sub
	}
	if got := reg.Snapshot()["mm_pubsub_resident_profiles"].(float64); got != 0 {
		t.Fatalf("resident after lazy boot = %v, want 0", got)
	}
	// Evicted stubs are off the match path entirely.
	if _, n := b2.PublishVector(vec("cat", 1.0)); n != 0 {
		t.Fatalf("evicted subscribers took %d deliveries", n)
	}

	// First touch hydrates; the bound keeps at most one resident.
	snap, err := b2.ExportProfile("alice")
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Data) != wantSize["alice"] {
		t.Errorf("hydrated alice = %d bytes, want %d", len(snap.Data), wantSize["alice"])
	}
	doc, n := b2.PublishVector(vec("cat", 1.0))
	if n != 1 {
		t.Errorf("hydrated alice should match: deliveries = %d, want 1", n)
	}
	// Feedback on an evicted user hydrates it and evicts alice (bound 1).
	if err := b2.Feedback("bob", doc, filter.Relevant); err != nil {
		t.Fatal(err)
	}
	ms := reg.Snapshot()
	if got := ms["mm_pubsub_resident_profiles"].(float64); got > 1 {
		t.Errorf("resident = %v, want <= 1", got)
	}
	if got := ms["mm_pubsub_hydrations_total"].(int64); got < 2 {
		t.Errorf("hydrations = %d, want >= 2", got)
	}
	if got := subs["carol"].ProfileSize(); got == 0 {
		t.Error("carol did not hydrate on ProfileSize")
	}
}

// TestSubscribeRestoredErrors pins the argument contract: a nil learner
// needs a hydrator and a registered algorithm name, and duplicates are
// refused.
func TestSubscribeRestoredErrors(t *testing.T) {
	if _, err := New(Options{}).SubscribeRestored("u", "MM", nil); err == nil {
		t.Error("nil learner without hydrator accepted")
	}
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	b := New(Options{Journal: st, Hydrator: st, MaxResident: 1})
	if _, err := b.SubscribeRestored("u", "no-such-learner", nil); err == nil {
		t.Error("unknown learner name accepted")
	}
	if _, err := b.SubscribeRestored("u", "MM", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := b.SubscribeRestored("u", "MM", nil); err == nil {
		t.Error("duplicate restore accepted")
	}
	if _, err := b.SubscribeRestored("v", "MM", core.NewDefault()); err != nil {
		t.Fatal(err)
	}
}

// TestBoundedResidencyConcurrent churns feedbacks, publishes, and
// introspection against a tiny residency bound from many goroutines — the
// race detector's view of the evict/hydrate/LRU interplay.
func TestBoundedResidencyConcurrent(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{Lanes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	b := New(Options{Threshold: 0.3, Journal: st, Hydrator: st, MaxResident: 2})
	users, names := hydUsers(8)
	for _, u := range users {
		l, err := filter.New(names[u])
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.Subscribe(u, l); err != nil {
			t.Fatal(err)
		}
	}
	seed, _ := b.PublishVector(vec("cat", 1.0, "dog", 0.5))

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 50; i++ {
				u := users[rng.Intn(len(users))]
				switch rng.Intn(3) {
				case 0:
					if err := b.Feedback(u, seed, filter.Relevant); err != nil {
						t.Errorf("feedback %s: %v", u, err)
						return
					}
				case 1:
					b.PublishVector(randTermVec(rng))
				default:
					if _, err := b.ProfileInfo(u, 3); err != nil {
						t.Errorf("profile info %s: %v", u, err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	if _, err := st.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	for _, u := range users {
		if _, err := b.ExportProfile(u); err != nil {
			t.Fatal(err)
		}
	}
}
