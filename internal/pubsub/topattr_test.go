package pubsub

import (
	"fmt"
	"testing"

	"mmprofile/internal/filter"
	"mmprofile/internal/store"
	"mmprofile/internal/topk"
)

// TestAttributedPublishAddsNoAllocs pins the hot-path contract of the
// attribution layer (DESIGN.md §16): with sketches enabled (the default),
// a steady-state publish — including deliveries, drop-oldest evictions,
// and per-term match attribution — allocates exactly as much as one with
// attribution disabled (Options.TopCapacity < 0). Run under -race in CI.
func TestAttributedPublishAddsNoAllocs(t *testing.T) {
	doc := vec("cat", 1.0, "dog", 0.5)
	setup := func(topCap int) *Broker {
		// QueueSize 1 with no consumer forces the drop-oldest path every
		// publish, so the drops and queue-full offers are measured too.
		b := New(Options{Threshold: 0.3, Retention: 1 << 16, QueueSize: 1, TopCapacity: topCap})
		if _, err := b.Subscribe("alice", trainedMM("cat", "dog")); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			b.PublishVector(doc)
		}
		return b
	}

	off := setup(-1)
	on := setup(0)

	const rounds = 200
	offAllocs := testing.AllocsPerRun(rounds, func() { off.PublishVector(doc) })
	onAllocs := testing.AllocsPerRun(rounds, func() { on.PublishVector(doc) })
	if onAllocs > offAllocs {
		t.Fatalf("attribution adds allocations on the publish path: %v allocs/op attributed vs %v without",
			onAllocs, offAllocs)
	}
}

// TestBrokerAttributionDimensions checks the broker wires every dimension
// and that deliveries/drops/queue-full/terms attribute to the right keys.
func TestBrokerAttributionDimensions(t *testing.T) {
	reg := topk.NewRegistry()
	b := New(Options{Threshold: 0.3, QueueSize: 2, Top: reg})
	if b.Top() != reg {
		t.Fatal("Broker.Top should return the provided registry")
	}
	if _, err := b.Subscribe("alice", trainedMM("cat", "dog")); err != nil {
		t.Fatal(err)
	}
	doc := vec("cat", 1.0, "dog", 0.5)
	for i := 0; i < 10; i++ {
		b.PublishVector(doc)
	}
	want := map[string]bool{
		"subscriber_deliveries": true,
		"subscriber_drops":      true,
		"subscriber_queue_full": true,
		"subscriber_hydrations": true,
		"term_postings_scanned": true,
	}
	for _, d := range reg.Dimensions() {
		delete(want, d.Name())
	}
	for name := range want {
		t.Errorf("dimension %s not registered", name)
	}

	del, _ := reg.Find("subscriber_deliveries")
	snap := del.Snapshot(1)
	if len(snap.Entries) != 1 || snap.Entries[0].Key != "alice" || snap.Entries[0].Count != 10 {
		t.Fatalf("deliveries snapshot: %+v", snap)
	}
	// Queue of 2 with 10 matched publishes and no consumer: 8 drops, each
	// preceded by a queue-full event.
	drops, _ := reg.Find("subscriber_drops")
	if ds := drops.Snapshot(1); len(ds.Entries) != 1 || ds.Entries[0].Count != 8 {
		t.Fatalf("drops snapshot: %+v", ds)
	}
	qf, _ := reg.Find("subscriber_queue_full")
	if qs := qf.Snapshot(1); len(qs.Entries) != 1 || qs.Entries[0].Count != 8 {
		t.Fatalf("queue-full snapshot: %+v", qs)
	}
	// Per-term attribution resolves ids back to strings via the dict.
	terms, _ := reg.Find("term_postings_scanned")
	ts := terms.Snapshot(10)
	if ts.Total == 0 {
		t.Fatal("term dimension saw no postings")
	}
	seen := map[string]bool{}
	for _, e := range ts.Entries {
		seen[e.Key] = true
	}
	if !seen["cat"] || !seen["dog"] {
		t.Fatalf("term keys should resolve to cat/dog: %+v", ts.Entries)
	}
}

// TestAttributionDisabled checks TopCapacity < 0 leaves an empty (but
// non-nil) registry and publishes still work.
func TestAttributionDisabled(t *testing.T) {
	b := New(Options{Threshold: 0.3, TopCapacity: -1})
	if b.Top() == nil {
		t.Fatal("Top registry should be non-nil even when disabled")
	}
	if dims := b.Top().Dimensions(); len(dims) != 0 {
		t.Fatalf("disabled attribution registered dimensions: %v", dims)
	}
	if _, err := b.Subscribe("alice", trainedMM("cat", "dog")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		b.PublishVector(vec("cat", 1.0))
	}
}

// TestHydrationAttribution drives the evict/hydrate cycle and checks the
// per-subscriber hydration dimension counts rebuilds.
func TestHydrationAttribution(t *testing.T) {
	reg := topk.NewRegistry()
	st, err := store.Open(t.TempDir(), store.Options{Lanes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	b := New(Options{Journal: st, Hydrator: st, MaxResident: 1, Top: reg})
	for i := 0; i < 3; i++ {
		if _, err := b.Subscribe(fmt.Sprintf("u%d", i), trainedMM("cat")); err != nil {
			t.Fatal(err)
		}
	}
	// With MaxResident 1, touching each profile in turn evicts the rest;
	// feedback on an evicted profile forces hydration.
	doc, _ := b.PublishVector(vec("cat", 1.0))
	for round := 0; round < 2; round++ {
		for i := 0; i < 3; i++ {
			if err := b.Feedback(fmt.Sprintf("u%d", i), doc, filter.Relevant); err != nil {
				t.Fatal(err)
			}
		}
	}
	hyd, _ := reg.Find("subscriber_hydrations")
	if hyd.Total() == 0 {
		t.Fatal("hydration dimension saw no rebuilds")
	}
}
