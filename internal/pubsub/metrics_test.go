package pubsub

import (
	"strings"
	"testing"

	"mmprofile/internal/docstore"
	"mmprofile/internal/filter"
	"mmprofile/internal/metrics"
)

// TestDocKeyOffsetInvariant pins the docs-map/eviction-ring keying: the
// ring's zero value means "empty slot", so document id d lives under key
// d+1. In particular the very first document (id 0) must be retrievable —
// a raw b.docs[doc] lookup would lose it and silently alias every doc to
// its predecessor.
func TestDocKeyOffsetInvariant(t *testing.T) {
	b := New(Options{Threshold: 0.3, Retention: 4})
	vecs := []string{"a", "b", "c", "d", "e", "f"}
	for i, term := range vecs {
		id, _ := b.PublishVector(vec(term, 1.0))
		if id != int64(i) {
			t.Fatalf("doc id = %d, want %d", id, i)
		}
	}
	// Retention 4: ids 2..5 retained, ids 0..1 evicted.
	for i, term := range vecs {
		got, ok := b.DocumentVector(int64(i))
		if i < 2 {
			if ok {
				t.Errorf("doc %d should have been evicted", i)
			}
			continue
		}
		if !ok {
			t.Fatalf("doc %d not retained", i)
		}
		if got.Weight(term) == 0 {
			t.Errorf("doc %d returned the wrong vector: %v", i, got)
		}
	}
	// The retained window is exactly the newest Retention ids; the
	// key-offset internals behind this (ring slot 0 as the empty sentinel)
	// are pinned by the docstore package's own TestDocKeyOffsetInvariant.
	retained := map[int64]bool{}
	b.docs.Range(func(rec docstore.Record) { retained[rec.ID] = true })
	if len(retained) != 4 || !retained[2] || !retained[5] {
		t.Errorf("retained ids = %v, want exactly 2..5", retained)
	}
	if got := b.m.evictions.Value(); got != 2 {
		t.Errorf("evictions = %d, want 2", got)
	}
}

// TestDroppedCounterAgreement checks that overflowing a subscriber queue
// moves Stats().Dropped and the mm_pubsub_dropped_total metric in
// lockstep — they are the same counter, so the legacy snapshot and the
// exposition endpoints can never disagree.
func TestDroppedCounterAgreement(t *testing.T) {
	reg := metrics.NewRegistry()
	b := New(Options{Threshold: 0.3, QueueSize: 2, Metrics: reg})
	if _, err := b.Subscribe("alice", trainedMM("cat")); err != nil {
		t.Fatal(err)
	}
	const published = 10
	for i := 0; i < published; i++ {
		if _, n := b.PublishVector(vec("cat", 1.0)); n != 1 {
			t.Fatalf("publish %d delivered to %d subscribers, want 1", i, n)
		}
	}
	st := b.Stats()
	if st.Dropped != published-2 {
		t.Errorf("Dropped = %d, want %d (queue of 2)", st.Dropped, published-2)
	}
	snap := reg.Snapshot()
	if got := snap["mm_pubsub_dropped_total"].(int64); got != st.Dropped {
		t.Errorf("metric dropped = %d, Stats().Dropped = %d", got, st.Dropped)
	}
	if got := snap["mm_pubsub_deliveries_total"].(int64); got != st.Deliveries {
		t.Errorf("metric deliveries = %d, Stats().Deliveries = %d", got, st.Deliveries)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "mm_pubsub_dropped_total 8") {
		t.Errorf("exposition missing dropped counter:\n%s", sb.String())
	}
}

// TestAdaptationTelemetry checks the per-subscriber baseline: operations a
// learner performed before Subscribe (keyword seeding, journal replay)
// are not counted, while post-subscribe feedback is.
func TestAdaptationTelemetry(t *testing.T) {
	reg := metrics.NewRegistry()
	b := New(Options{Threshold: 0.3, QueueSize: 8, Metrics: reg})
	// trainedMM performs one create before subscribing.
	if _, err := b.Subscribe("alice", trainedMM("cat")); err != nil {
		t.Fatal(err)
	}
	if got := b.m.vecCreated.Value(); got != 0 {
		t.Fatalf("pre-subscribe create leaked into telemetry: %d", got)
	}
	if got := b.m.profileVectors.Value(); got != 1 {
		t.Fatalf("profileVectors gauge = %v, want 1", got)
	}

	// Relevant feedback on a dissimilar document creates a second vector.
	id, _ := b.PublishVector(vec("stock", 1.0))
	if err := b.Feedback("alice", id, filter.Relevant); err != nil {
		t.Fatal(err)
	}
	if got := b.m.vecCreated.Value(); got != 1 {
		t.Errorf("vecCreated = %d, want 1", got)
	}
	if got := b.m.profileVectors.Value(); got != 2 {
		t.Errorf("profileVectors gauge = %v, want 2", got)
	}
	if s := b.m.strength.Snapshot(); s.Count == 0 {
		t.Error("strength histogram empty after feedback")
	}
	if got := b.m.feedbacks.Value(); got != 1 {
		t.Errorf("feedbacks = %d, want 1", got)
	}
	if s := b.m.feedbackLat.Snapshot(); s.Count != 1 {
		t.Errorf("feedback latency observations = %d, want 1", s.Count)
	}

	// Unsubscribe returns the gauge to zero.
	b.Unsubscribe("alice")
	if got := b.m.profileVectors.Value(); got != 0 {
		t.Errorf("profileVectors gauge after unsubscribe = %v, want 0", got)
	}
}

// TestPublishLatencyHistograms checks the three-clock-read design: one
// publish produces exactly one observation in each hot-path histogram.
func TestPublishLatencyHistograms(t *testing.T) {
	b := New(Options{Threshold: 0.3})
	b.PublishVector(vec("cat", 1.0))
	for name, h := range map[string]*metrics.Histogram{
		"publish": b.m.publishLat,
		"match":   b.m.matchLat,
		"deliver": b.m.deliverLat,
	} {
		if s := h.Snapshot(); s.Count != 1 {
			t.Errorf("%s histogram observations = %d, want 1", name, s.Count)
		}
	}
	// A zero-vector publish observes only end-to-end latency.
	b.Publish("<html></html>")
	if s := b.m.publishLat.Snapshot(); s.Count != 2 {
		t.Errorf("publish histogram observations = %d, want 2", s.Count)
	}
	if s := b.m.matchLat.Snapshot(); s.Count != 1 {
		t.Errorf("zero-vector publish must not observe match latency")
	}
}
