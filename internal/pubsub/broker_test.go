package pubsub

import (
	"fmt"
	"sync"
	"testing"

	"mmprofile/internal/core"
	"mmprofile/internal/filter"
	"mmprofile/internal/rocchio"
	"mmprofile/internal/vsm"
)

func vec(pairs ...any) vsm.Vector {
	m := map[string]float64{}
	for i := 0; i < len(pairs); i += 2 {
		m[pairs[i].(string)] = pairs[i+1].(float64)
	}
	return vsm.FromMap(m).Normalized()
}

// trainedMM returns an MM learner already interested in the given concept
// terms.
func trainedMM(terms ...string) *core.Profile {
	l := core.NewDefault()
	pairs := make([]any, 0, 2*len(terms))
	for _, t := range terms {
		pairs = append(pairs, t, 1.0)
	}
	l.Observe(vec(pairs...), filter.Relevant)
	return l
}

func TestSubscribePublishDeliver(t *testing.T) {
	b := New(Options{Threshold: 0.3, QueueSize: 8})
	sub, err := b.Subscribe("alice", trainedMM("cat", "dog"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = b.Subscribe("bob", trainedMM("stock", "bond"))
	if err != nil {
		t.Fatal(err)
	}

	id, n := b.PublishVector(vec("cat", 1.0, "dog", 1.0))
	if n != 1 {
		t.Fatalf("delivered to %d subscribers, want 1", n)
	}
	select {
	case d := <-sub.Deliveries():
		if d.Doc != id {
			t.Errorf("delivered doc %d, want %d", d.Doc, id)
		}
		if d.Score < 0.3 {
			t.Errorf("delivered score %v below threshold", d.Score)
		}
	default:
		t.Fatal("no delivery for alice")
	}
}

// TestNoPruneOption pins the Options.NoPrune plumbing: the flag reaches
// the index's pruning toggle, and a NoPrune broker still delivers.
func TestNoPruneOption(t *testing.T) {
	b := New(Options{NoPrune: true})
	if b.idx.PruningEnabled() {
		t.Error("NoPrune broker left index pruning on")
	}
	if on := New(Options{}); !on.idx.PruningEnabled() {
		t.Error("default broker disabled index pruning")
	}
	s, err := b.Subscribe("alice", trainedMM("cat"))
	if err != nil {
		t.Fatal(err)
	}
	b.Publish("the cat sat on the cat mat cat")
	select {
	case <-s.Deliveries():
	default:
		t.Error("NoPrune broker delivered nothing")
	}
}

func TestDuplicateSubscriber(t *testing.T) {
	b := New(Options{})
	if _, err := b.Subscribe("alice", core.NewDefault()); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe("alice", core.NewDefault()); err == nil {
		t.Fatal("duplicate subscribe did not error")
	}
}

func TestPublishPipelineAndStats(t *testing.T) {
	b := New(Options{Threshold: 0.05})
	page := `<html><head><title>x</title></head><body>
	<p>felines and kittens, cats everywhere, cat toys</p></body></html>`
	id, _ := b.Publish(page)
	v, ok := b.DocumentVector(id)
	if !ok {
		t.Fatal("published document not retained")
	}
	if v.IsZero() {
		t.Fatal("published document vectorized to zero")
	}
	if got := b.Stats().Published; got != 1 {
		t.Errorf("Published = %d", got)
	}
}

func TestFeedbackAdaptsProfileAndIndex(t *testing.T) {
	b := New(Options{Threshold: 0.35, QueueSize: 8})
	sub, err := b.Subscribe("alice", trainedMM("cat", "dog"))
	if err != nil {
		t.Fatal(err)
	}
	// A stock document does not reach alice at first.
	id1, n := b.PublishVector(vec("stock", 1.0, "bond", 1.0))
	if n != 0 {
		t.Fatalf("irrelevant doc delivered %d times", n)
	}
	// Alice tells the system she actually liked it (she found it elsewhere
	// and judges the retained doc).
	if err := sub.Feedback(id1, filter.Relevant); err != nil {
		t.Fatal(err)
	}
	// Now similar documents must be delivered: the profile grew a vector
	// and the index was refreshed.
	_, n = b.PublishVector(vec("stock", 1.0, "bond", 1.0, "market", 0.2))
	if n != 1 {
		t.Fatalf("adapted profile did not match: delivered %d", n)
	}
	if sub.ProfileSize() < 2 {
		t.Errorf("profile size = %d, want ≥ 2", sub.ProfileSize())
	}
}

func TestNegativeFeedbackStopsDeliveries(t *testing.T) {
	b := New(Options{Threshold: 0.35, QueueSize: 64})
	sub, err := b.Subscribe("alice", trainedMM("cat", "dog"))
	if err != nil {
		t.Fatal(err)
	}
	catDoc := vec("cat", 1.0, "dog", 1.0)
	// Sustained negative feedback on cat documents must eventually delete
	// the cat cluster (strength decay) and stop deliveries.
	for i := 0; i < 20; i++ {
		id, n := b.PublishVector(catDoc)
		if n == 0 {
			// Profile has forgotten cats.
			if sub.ProfileSize() != 0 {
				t.Errorf("no delivery but profile still has %d vectors", sub.ProfileSize())
			}
			return
		}
		if err := sub.Feedback(id, filter.NotRelevant); err != nil {
			t.Fatal(err)
		}
	}
	t.Fatal("cat cluster survived 20 negative judgments")
}

func TestFeedbackErrors(t *testing.T) {
	b := New(Options{})
	if err := b.Feedback("ghost", 0, filter.Relevant); err == nil {
		t.Error("feedback from unknown user did not error")
	}
	sub, _ := b.Subscribe("alice", core.NewDefault())
	if err := sub.Feedback(999, filter.Relevant); err == nil {
		t.Error("feedback on unknown document did not error")
	}
}

func TestRetentionEviction(t *testing.T) {
	b := New(Options{Retention: 3})
	id0, _ := b.PublishVector(vec("a", 1.0))
	for i := 0; i < 3; i++ {
		b.PublishVector(vec("b", 1.0))
	}
	if _, ok := b.DocumentVector(id0); ok {
		t.Error("document survived beyond retention window")
	}
	sub, _ := b.Subscribe("alice", core.NewDefault())
	if err := sub.Feedback(id0, filter.Relevant); err == nil {
		t.Error("feedback on evicted document did not error")
	}
}

func TestQueueOverflowDropsOldest(t *testing.T) {
	b := New(Options{Threshold: 0.1, QueueSize: 2})
	sub, _ := b.Subscribe("alice", trainedMM("cat"))
	var ids []int64
	for i := 0; i < 5; i++ {
		id, _ := b.PublishVector(vec("cat", 1.0))
		ids = append(ids, id)
	}
	if got := b.Stats().Dropped; got != 3 {
		t.Errorf("Dropped = %d, want 3", got)
	}
	// The two newest deliveries remain.
	d1 := <-sub.Deliveries()
	d2 := <-sub.Deliveries()
	if d1.Doc != ids[3] || d2.Doc != ids[4] {
		t.Errorf("queue kept docs %d,%d; want %d,%d", d1.Doc, d2.Doc, ids[3], ids[4])
	}
}

func TestUnsubscribeClosesChannel(t *testing.T) {
	b := New(Options{})
	sub, _ := b.Subscribe("alice", trainedMM("cat"))
	b.Unsubscribe("alice")
	if _, open := <-sub.Deliveries(); open {
		t.Error("channel not closed on unsubscribe")
	}
	// Publishing after unsubscribe must not deliver or panic.
	if _, n := b.PublishVector(vec("cat", 1.0)); n != 0 {
		t.Errorf("delivered to unsubscribed user: %d", n)
	}
	b.Unsubscribe("alice") // idempotent
}

func TestSubscribeKeywords(t *testing.T) {
	b := New(Options{Threshold: 0.3})
	sub, err := b.SubscribeKeywords("alice", []string{"Computers", "programming languages"})
	if err != nil {
		t.Fatal(err)
	}
	if sub.ProfileSize() != 1 {
		t.Fatalf("keyword profile size = %d", sub.ProfileSize())
	}
	// A page about the keywords must be delivered; stems must line up with
	// the pipeline's output.
	page := "<html><body>computers and programming language tutorials</body></html>"
	_, n := b.Publish(page)
	if n != 1 {
		t.Errorf("keyword-seeded profile missed a matching page (delivered %d)", n)
	}
}

func TestBruteForcePathForUnindexableLearner(t *testing.T) {
	// A learner that hides its vectors still gets deliveries via direct
	// scoring.
	b := New(Options{Threshold: 0.3})
	inner := trainedMM("cat", "dog")
	if _, err := b.Subscribe("alice", opaque{inner}); err != nil {
		t.Fatal(err)
	}
	if _, n := b.PublishVector(vec("cat", 1.0, "dog", 1.0)); n != 1 {
		t.Errorf("brute-force path delivered %d", n)
	}
}

// opaque wraps a learner, stripping its VectorSource implementation.
type opaque struct{ l filter.Learner }

func (o opaque) Name() string                             { return o.l.Name() }
func (o opaque) Observe(v vsm.Vector, fd filter.Feedback) { o.l.Observe(v, fd) }
func (o opaque) Score(v vsm.Vector) float64               { return o.l.Score(v) }
func (o opaque) ProfileSize() int                         { return o.l.ProfileSize() }
func (o opaque) Reset()                                   { o.l.Reset() }

func TestRocchioSubscriberIndexed(t *testing.T) {
	b := New(Options{Threshold: 0.3})
	r := rocchio.NewRI()
	r.Observe(vec("cat", 1.0, "dog", 1.0), filter.Relevant)
	if _, err := b.Subscribe("alice", r); err != nil {
		t.Fatal(err)
	}
	if st := b.IndexStats(); st.Vectors != 1 {
		t.Errorf("index vectors = %d, want 1", st.Vectors)
	}
	if _, n := b.PublishVector(vec("cat", 1.0)); n != 1 {
		t.Errorf("Rocchio subscriber missed delivery")
	}
}

func TestContentRetention(t *testing.T) {
	b := New(Options{RetainContent: true, Retention: 2})
	page := "<html><body>felines</body></html>"
	id, _ := b.Publish(page)
	got, ok := b.DocumentContent(id)
	if !ok || got != page {
		t.Fatalf("DocumentContent = %q, %v", got, ok)
	}
	// Eviction clears content with the record.
	b.Publish("<html><body>a</body></html>")
	b.Publish("<html><body>b</body></html>")
	if _, ok := b.DocumentContent(id); ok {
		t.Error("evicted content still served")
	}
	// Without the option content is not kept.
	b2 := New(Options{})
	id2, _ := b2.Publish(page)
	if _, ok := b2.DocumentContent(id2); ok {
		t.Error("content retained without RetainContent")
	}
}

func TestExportProfile(t *testing.T) {
	b := New(Options{})
	if _, err := b.ExportProfile("ghost"); err == nil {
		t.Error("export of unknown user accepted")
	}
	sub, _ := b.Subscribe("alice", trainedMM("cat", "dog"))
	snap, err := b.ExportProfile("alice")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Learner != "MM" || len(snap.Data) == 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
	// The exported blob reconstructs an identical profile.
	restored := core.NewDefault()
	if err := restored.UnmarshalBinary(snap.Data); err != nil {
		t.Fatal(err)
	}
	probe := vec("cat", 1.0)
	if restored.Score(probe) != sub.Score(probe) {
		t.Error("restored profile scores differently")
	}
	// Non-serializable learners refuse.
	b.Subscribe("eve", opaque{core.NewDefault()})
	if _, err := b.ExportProfile("eve"); err == nil {
		t.Error("non-serializable export accepted")
	}
}

func TestConcurrentPublishFeedback(t *testing.T) {
	b := New(Options{Threshold: 0.2, QueueSize: 1024})
	var subs []*Subscription
	for i := 0; i < 8; i++ {
		s, err := b.Subscribe(fmt.Sprintf("user%d", i), trainedMM("cat", fmt.Sprintf("topic%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, s)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				b.PublishVector(vec("cat", 1.0, fmt.Sprintf("topic%d", (g+i)%8), 0.5))
			}
		}(g)
	}
	for _, s := range subs {
		wg.Add(1)
		go func(s *Subscription) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				select {
				case d := <-s.Deliveries():
					fd := filter.Relevant
					if i%3 == 0 {
						fd = filter.NotRelevant
					}
					_ = s.Feedback(d.Doc, fd) // evicted docs may error; fine
				default:
				}
			}
		}(s)
	}
	wg.Wait()
	st := b.Stats()
	if st.Published != 400 {
		t.Errorf("Published = %d, want 400", st.Published)
	}
	if st.Deliveries == 0 {
		t.Error("no deliveries under concurrency")
	}
}
