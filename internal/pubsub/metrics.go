package pubsub

import (
	"mmprofile/internal/core"
	"mmprofile/internal/metrics"
)

// brokerMetrics bundles every instrument the broker records into
// (DESIGN.md §8). The dissemination counters double as the backing store
// for Stats(), so the legacy Counters snapshot and the exposition
// endpoints can never disagree.
type brokerMetrics struct {
	reg *metrics.Registry

	// Dissemination counters.
	published  *metrics.Counter
	deliveries *metrics.Counter
	dropped    *metrics.Counter
	feedbacks  *metrics.Counter
	evictions  *metrics.Counter

	// Hot-path latencies. publishLat covers the whole publishRecord,
	// matchLat the vectorized-document → matches interval, deliverLat the
	// fan-out loop; all three come from the same three clock reads.
	publishLat  *metrics.Histogram
	matchLat    *metrics.Histogram
	deliverLat  *metrics.Histogram
	feedbackLat *metrics.Histogram
	batchLat    *metrics.Histogram

	// Adaptation-event telemetry: the paper's §3.3 profile dynamics
	// (create / incorporate / merge / strength-decay delete) aggregated
	// across all subscribers, so an operator can watch interest shift
	// happening on a live broker.
	vecCreated      *metrics.Counter
	vecIncorporated *metrics.Counter
	vecMerged       *metrics.Counter
	vecDeleted      *metrics.Counter
	vecAnnihilated  *metrics.Counter
	fbIgnored       *metrics.Counter
	strength        *metrics.Histogram
	profileVectors  *metrics.Gauge

	// Residency telemetry (lazy hydration, hydrate.go): how many profiles
	// are in-heap right now, and the evict/hydrate churn the
	// MaxResident bound is causing.
	residentProfiles *metrics.Gauge
	hydrations       *metrics.Counter
	profileEvictions *metrics.Counter
	hydrateLat       *metrics.Histogram
}

func newBrokerMetrics(reg *metrics.Registry) brokerMetrics {
	return brokerMetrics{
		reg: reg,
		published: reg.Counter("mm_pubsub_published_total",
			"Documents published into the broker."),
		deliveries: reg.Counter("mm_pubsub_deliveries_total",
			"Deliveries enqueued to subscriber queues."),
		dropped: reg.Counter("mm_pubsub_dropped_total",
			"Deliveries dropped because a subscriber queue overflowed (oldest-first)."),
		feedbacks: reg.Counter("mm_pubsub_feedbacks_total",
			"Relevance judgments applied to subscriber profiles."),
		evictions: reg.Counter("mm_pubsub_retention_evictions_total",
			"Documents evicted from the retention ring to admit newer ones."),
		publishLat: reg.Histogram("mm_pubsub_publish_seconds",
			"End-to-end latency of one publish: retention bookkeeping, index match, and delivery fan-out."),
		matchLat: reg.Histogram("mm_pubsub_match_seconds",
			"Latency of matching one published document against all subscriber profiles."),
		deliverLat: reg.Histogram("mm_pubsub_deliver_seconds",
			"Latency of fanning one document's matches out to subscriber queues."),
		feedbackLat: reg.Histogram("mm_pubsub_feedback_seconds",
			"Latency of one feedback step: journaling, profile update, and reindexing."),
		batchLat: reg.Histogram("mm_pubsub_batch_seconds",
			"Wall-clock duration of one PublishBatch/PublishVectorBatch fan-out across the worker pool."),
		vecCreated: reg.Counter("mm_vectors_created_total",
			"Profile vectors created by relevant feedback outside every similarity circle (paper 3.2)."),
		vecIncorporated: reg.Counter("mm_vectors_incorporated_total",
			"Documents folded into an existing profile vector (paper 3.2)."),
		vecMerged: reg.Counter("mm_vectors_merged_total",
			"Profile-vector merge operations (paper 3.3)."),
		vecDeleted: reg.Counter("mm_vectors_deleted_total",
			"Profile vectors removed by strength decay (paper 3.4)."),
		vecAnnihilated: reg.Counter("mm_vectors_annihilated_total",
			"Profile vectors removed because negative feedback zeroed them."),
		fbIgnored: reg.Counter("mm_feedback_ignored_total",
			"Judgments that had no structural effect on a profile."),
		strength: reg.Histogram("mm_vector_strength",
			"Distribution of profile-vector strengths, sampled from the judged profile after every feedback step."),
		profileVectors: reg.Gauge("mm_profile_vectors",
			"Profile vectors currently held across all subscribers (learner view, including non-indexable learners)."),
		residentProfiles: reg.Gauge("mm_pubsub_resident_profiles",
			"Subscriber profiles currently resident in the heap (subscribers minus evicted)."),
		hydrations: reg.Counter("mm_pubsub_hydrations_total",
			"Evicted profiles rebuilt from the store on access (lazy hydration)."),
		profileEvictions: reg.Counter("mm_pubsub_profile_evictions_total",
			"Resident profiles dropped from the heap by the MaxResident LRU bound."),
		hydrateLat: reg.Histogram("mm_pubsub_hydrate_seconds",
			"Latency of rebuilding one evicted profile from its checkpoint segment and WAL-lane replay."),
	}
}

// opCounter is the slice of core.Profile the broker needs for adaptation
// telemetry; any learner exposing MM-style operation tallies qualifies.
type opCounter interface {
	Counts() core.OpCounts
}

// strengthSource is implemented by learners whose vectors carry the
// paper's strength statistic (core.Profile).
type strengthSource interface {
	ForEachStrength(func(float64))
}

// recordAdaptation diffs a learner's operation tallies against the last
// ones seen for the subscriber and publishes the deltas, then samples the
// current strength distribution. Caller holds the subscriber lock. The
// baseline is captured at Subscribe, so only adaptation performed under
// this broker is counted (a profile's pre-subscribe history — keyword
// seeds, journal replay — is not).
func (b *Broker) recordAdaptation(s *subscriber) {
	if oc, ok := s.learner.(opCounter); ok {
		c := oc.Counts()
		last := s.lastOps
		s.lastOps = c
		b.m.vecCreated.Add(int64(c.Created - last.Created))
		b.m.vecIncorporated.Add(int64(c.Incorporated - last.Incorporated))
		b.m.vecMerged.Add(int64(c.Merged - last.Merged))
		b.m.vecDeleted.Add(int64(c.Deleted - last.Deleted))
		b.m.vecAnnihilated.Add(int64(c.Annihilated - last.Annihilated))
		b.m.fbIgnored.Add(int64(c.Ignored - last.Ignored))
	}
	if ss, ok := s.learner.(strengthSource); ok {
		ss.ForEachStrength(b.m.strength.Observe)
	}
	size := s.learner.ProfileSize()
	if d := size - s.lastSize; d != 0 {
		s.lastSize = size
		b.m.profileVectors.Add(float64(d))
	}
}

// Metrics returns the broker's registry: the one passed via
// Options.Metrics, or the private registry the broker created. Embedding
// users can expose it (wire.NewStatusHandler does) or read it directly.
func (b *Broker) Metrics() *metrics.Registry { return b.m.reg }
