// Package pubsub implements the push-based data-delivery engine the paper's
// profiles exist to serve (Section 1): a broker that accepts published web
// pages, matches each one against every subscriber's profile through an
// inverted profile index, delivers matches, and feeds subscriber relevance
// judgments back into the profiles — which adapt online via the MM
// algorithm (or any other filter.Learner).
//
// Collection statistics (document frequencies, average length) accumulate
// incrementally as documents are published, exactly as the paper's footnote
// 4 prescribes for a real filtering deployment.
//
// Concurrency: the broker uses fine-grained locking — collection
// statistics, the document retention ring, the subscriber table, and each
// subscriber's learner are guarded independently, and the inverted index
// has its own read/write lock — so publishes from many goroutines proceed
// in parallel. Document ids are assigned in a total order, but deliveries
// to one subscriber from concurrent publishers may arrive slightly out of
// id order.
package pubsub

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mmprofile/internal/core"
	"mmprofile/internal/filter"
	"mmprofile/internal/index"
	"mmprofile/internal/metrics"
	"mmprofile/internal/text"
	"mmprofile/internal/vsm"
)

// Journal receives the broker's profile-mutating operations for durable
// logging; *store.Store implements it. Subscribe and Feedback surface
// journal failures to the caller (the mutation is not applied in memory
// when journaling fails); Unsubscribe journaling is best-effort.
type Journal interface {
	AppendSubscribe(user, learner string, state []byte) error
	AppendUnsubscribe(user string) error
	AppendFeedback(user string, v vsm.Vector, fd filter.Feedback) error
}

// Options configures a Broker. The zero value gets sensible defaults from
// New.
type Options struct {
	// Threshold is the minimum profile/document similarity for delivery.
	Threshold float64
	// QueueSize is each subscriber's delivery buffer; when it overflows the
	// oldest undelivered item is dropped (and counted).
	QueueSize int
	// Retention is how many recent published documents are kept for
	// feedback resolution — the paper notes document vectors are "typically
	// only retained for a short duration" (Section 4.3).
	Retention int
	// Journal, when set, receives every subscribe/unsubscribe/feedback for
	// durable logging.
	Journal Journal
	// RetainContent keeps each published page's raw content alongside its
	// vector for the retention window, so subscribers can fetch what they
	// were sent (DocumentContent / the wire "fetch" op). Off by default:
	// raw pages dominate memory at scale.
	RetainContent bool
	// PublishWorkers bounds the worker pool PublishBatch fans a document
	// batch out over; 0 means one worker per CPU.
	PublishWorkers int
	// Metrics is the registry the broker's instrumentation registers into,
	// shared with the profile store and exposition endpoints in mmserver.
	// When nil the broker creates a private registry, reachable via
	// Broker.Metrics() — instrumentation is always on (its hot-path cost
	// is three clock reads and a few atomic adds per publish). One broker
	// per registry: sharing a registry between brokers would silently
	// merge their series.
	Metrics *metrics.Registry
}

// DefaultOptions returns the broker defaults: threshold 0.25, queues of
// 128, retention of 4096 documents.
func DefaultOptions() Options {
	return Options{Threshold: 0.25, QueueSize: 128, Retention: 4096}
}

// Delivery is one pushed document: its id and the match score.
type Delivery struct {
	Doc   int64
	Score float64
}

// Counters aggregates broker activity for monitoring.
type Counters struct {
	Published   int64
	Deliveries  int64
	Dropped     int64
	Feedbacks   int64
	Subscribers int
}

type docRecord struct {
	id      int64
	vec     vsm.Vector
	content string // only when Options.RetainContent
}

type subscriber struct {
	id string

	mu      sync.Mutex // guards learner, closed, lastOps, lastSize
	learner filter.Learner
	closed  bool

	indexed bool // learner implements filter.VectorSource
	queue   chan Delivery

	// lastOps/lastSize are the adaptation-telemetry baselines: the
	// learner's operation tallies and vector count as of the last
	// recordAdaptation (initialized at Subscribe).
	lastOps  core.OpCounts
	lastSize int
}

// Broker is the dissemination engine. All methods are safe for concurrent
// use.
type Broker struct {
	opts Options
	pipe *text.Pipeline
	idx  *index.Index

	statsMu sync.Mutex
	stats   *vsm.Stats

	docsMu  sync.Mutex
	docs    map[int64]docRecord
	docRing []int64
	ringPos int
	nextDoc int64

	subsMu sync.RWMutex
	subs   map[string]*subscriber
	// brute holds the subscribers whose learners expose no profile vectors
	// and therefore cannot be matched through the index; only these pay a
	// per-publish Score call. Guarded by subsMu.
	brute map[string]*subscriber

	// m holds every instrument the broker records into; the dissemination
	// counters inside it also back Stats().
	m brokerMetrics
}

// New creates a broker; zero fields of opts take defaults.
func New(opts Options) *Broker {
	def := DefaultOptions()
	if opts.Threshold == 0 {
		opts.Threshold = def.Threshold
	}
	if opts.QueueSize <= 0 {
		opts.QueueSize = def.QueueSize
	}
	if opts.Retention <= 0 {
		opts.Retention = def.Retention
	}
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	b := &Broker{
		opts:    opts,
		pipe:    text.NewPipeline(),
		stats:   vsm.NewStats(),
		idx:     index.New(),
		subs:    make(map[string]*subscriber),
		brute:   make(map[string]*subscriber),
		docs:    make(map[int64]docRecord),
		docRing: make([]int64, opts.Retention),
		m:       newBrokerMetrics(reg),
	}
	b.idx.Instrument(reg)
	reg.GaugeFunc("mm_pubsub_subscribers",
		"Currently registered subscribers.",
		func() float64 {
			b.subsMu.RLock()
			n := len(b.subs)
			b.subsMu.RUnlock()
			return float64(n)
		})
	return b
}

// Subscription is a subscriber's handle: a delivery stream plus feedback
// and introspection methods.
type Subscription struct {
	b   *Broker
	sub *subscriber
}

// Subscribe registers a learner-backed profile under the given id. The
// learner is owned by the broker from here on: all further access must go
// through the subscription (the broker serializes updates per subscriber).
// When a journal is configured, the subscription (with the learner's
// initial state, if serializable) is logged before being applied.
func (b *Broker) Subscribe(id string, l filter.Learner) (*Subscription, error) {
	_, indexed := l.(filter.VectorSource)
	s := &subscriber{
		id:      id,
		learner: l,
		indexed: indexed,
		queue:   make(chan Delivery, b.opts.QueueSize),
	}
	// Telemetry baselines: adaptation counters report only operations
	// performed under this broker, not the learner's prior history
	// (keyword seeding, journal replay). The learner is not yet shared,
	// so no lock is needed.
	if oc, ok := l.(opCounter); ok {
		s.lastOps = oc.Counts()
	}
	s.lastSize = l.ProfileSize()
	// The duplicate check, the journal record, and the insertion must be
	// one atomic step: journaling a subscribe that then fails as a
	// duplicate would clobber the existing user's profile on replay.
	b.subsMu.Lock()
	if _, dup := b.subs[id]; dup {
		b.subsMu.Unlock()
		return nil, fmt.Errorf("pubsub: duplicate subscriber %q", id)
	}
	if b.opts.Journal != nil {
		var state []byte
		if m, ok := l.(interface{ MarshalBinary() ([]byte, error) }); ok {
			var err error
			if state, err = m.MarshalBinary(); err != nil {
				b.subsMu.Unlock()
				return nil, fmt.Errorf("pubsub: snapshot %q: %w", id, err)
			}
		}
		if err := b.opts.Journal.AppendSubscribe(id, l.Name(), state); err != nil {
			b.subsMu.Unlock()
			return nil, fmt.Errorf("pubsub: journal: %w", err)
		}
	}
	b.subs[id] = s
	if !s.indexed {
		b.brute[id] = s
	}
	b.subsMu.Unlock()
	b.m.profileVectors.Add(float64(s.lastSize))
	b.reindex(s)
	return &Subscription{b: b, sub: s}, nil
}

// SubscribeKeywords registers a fresh MM profile seeded from an explicit
// keyword list — the SIFT-style bootstrap of Section 6. The seed vector
// carries uniform weights over the stemmed keywords; feedback then adapts
// the profile automatically.
func (b *Broker) SubscribeKeywords(id string, keywords []string) (*Subscription, error) {
	l := core.NewDefault()
	m := make(map[string]float64, len(keywords))
	for _, k := range keywords {
		for _, tok := range text.Tokenize(k) {
			if text.IsWord(tok) && !text.IsStopWord(tok) {
				m[text.Stem(tok)] = 1
			}
		}
	}
	if seed := vsm.FromMap(m).Normalized(); !seed.IsZero() {
		l.Observe(seed, filter.Relevant)
	}
	return b.Subscribe(id, l)
}

// Unsubscribe removes a subscriber and closes its delivery channel.
func (b *Broker) Unsubscribe(id string) {
	b.subsMu.Lock()
	s, ok := b.subs[id]
	if ok {
		delete(b.subs, id)
		delete(b.brute, id)
	}
	b.subsMu.Unlock()
	if !ok {
		return
	}
	if b.opts.Journal != nil {
		// Best-effort: an unlogged unsubscribe only means the user would be
		// restored after a crash, never data loss.
		_ = b.opts.Journal.AppendUnsubscribe(id)
	}
	b.idx.RemoveUser(id)
	s.mu.Lock()
	s.closed = true
	close(s.queue)
	gone := s.lastSize
	s.lastSize = 0
	s.mu.Unlock()
	b.m.profileVectors.Add(float64(-gone))
}

// Publish ingests one raw page: it is run through the processing pipeline,
// added to the incremental collection statistics, vectorized with the
// statistics as they stand, matched against all profiles, and delivered to
// every subscriber whose best profile vector clears the threshold. It
// returns the assigned document id and the number of deliveries.
func (b *Broker) Publish(page string) (int64, int) {
	terms := b.pipe.Terms(page)
	b.statsMu.Lock()
	b.stats.Add(terms)
	vec := vsm.DocumentVector(terms, vsm.Bel{Stats: b.stats})
	b.statsMu.Unlock()
	content := ""
	if b.opts.RetainContent {
		content = page
	}
	return b.publishRecord(vec, content)
}

// PublishVector ingests a pre-vectorized document (it must be unit-
// normalized); used when documents arrive already processed, and by the
// benchmarks.
func (b *Broker) PublishVector(vec vsm.Vector) (int64, int) {
	return b.publishRecord(vec, "")
}

// BatchResult is one document's outcome within a PublishBatch call.
type BatchResult struct {
	Doc        int64
	Deliveries int
}

// PublishBatch ingests a batch of raw pages through a bounded worker pool
// (Options.PublishWorkers, default one per CPU). Results are returned in
// input order; document ids are still assigned in a total order but, with
// multiple workers, not necessarily in input order. Collection statistics
// accumulate under their own lock exactly as with sequential Publish.
func (b *Broker) PublishBatch(pages []string) []BatchResult {
	t0 := time.Now()
	out := make([]BatchResult, len(pages))
	b.fanOut(len(pages), func(i int) {
		doc, n := b.Publish(pages[i])
		out[i] = BatchResult{Doc: doc, Deliveries: n}
	})
	b.m.batchLat.ObserveSince(t0)
	return out
}

// PublishVectorBatch is PublishBatch for pre-vectorized (unit-normalized)
// documents.
func (b *Broker) PublishVectorBatch(vecs []vsm.Vector) []BatchResult {
	t0 := time.Now()
	out := make([]BatchResult, len(vecs))
	b.fanOut(len(vecs), func(i int) {
		doc, n := b.PublishVector(vecs[i])
		out[i] = BatchResult{Doc: doc, Deliveries: n}
	})
	b.m.batchLat.ObserveSince(t0)
	return out
}

// fanOut runs fn(0..n-1) over the publish worker pool.
func (b *Broker) fanOut(n int, fn func(int)) {
	workers := b.opts.PublishWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// docKey maps a document id to its key in the b.docs map and the b.docRing
// eviction ring. Document ids start at 0, but the ring uses the zero value
// to mean "empty slot", so keys are offset by one: document id d is stored
// and looked up under key d+1, never under d. Every b.docs access and every
// ring entry must go through this helper — a raw b.docs[doc] lookup would
// silently return the *previous* document. The invariant is pinned by
// TestDocKeyOffsetInvariant.
func docKey(id int64) int64 { return id + 1 }

func (b *Broker) publishRecord(vec vsm.Vector, content string) (int64, int) {
	t0 := time.Now()
	// Retain the vector for feedback resolution, evicting the oldest.
	b.docsMu.Lock()
	id := b.nextDoc
	b.nextDoc++
	evicted := false
	if old := b.docRing[b.ringPos]; old != 0 {
		delete(b.docs, old)
		evicted = true
	}
	b.docRing[b.ringPos] = docKey(id)
	b.ringPos = (b.ringPos + 1) % len(b.docRing)
	b.docs[docKey(id)] = docRecord{id: id, vec: vec, content: content}
	b.docsMu.Unlock()
	b.m.published.Inc()
	if evicted {
		b.m.evictions.Inc()
	}

	if vec.IsZero() {
		b.m.publishLat.ObserveSince(t0)
		return id, 0
	}

	// Resolve the document against the index's term dictionary once; the
	// whole tokenize→weight→match path then never re-hashes a term string.
	doc := b.idx.NewDoc(vec)
	matches := b.idx.MatchDoc(doc, b.opts.Threshold)

	// Fan-out cost is O(matches + brute-force subscribers), not
	// O(all subscribers): indexed profiles are reached only through their
	// match, and only learners without indexable vectors are scored here.
	delivered := 0
	b.subsMu.RLock()
	targets := make([]*subscriber, 0, len(matches))
	scores := make([]float64, 0, len(matches))
	for _, m := range matches {
		if s, ok := b.subs[m.User]; ok {
			targets = append(targets, s)
			scores = append(scores, m.Score)
		}
	}
	for _, s := range b.brute {
		s.mu.Lock()
		sc := s.learner.Score(vec)
		s.mu.Unlock()
		if sc >= b.opts.Threshold {
			targets = append(targets, s)
			scores = append(scores, sc)
		}
	}
	b.subsMu.RUnlock()
	// One clock read separates matching from fan-out; together with t0 and
	// the final read it yields all three hot-path histograms.
	t1 := time.Now()
	b.m.matchLat.Observe(t1.Sub(t0).Seconds())

	for i, s := range targets {
		if b.deliver(s, Delivery{Doc: id, Score: scores[i]}) {
			delivered++
		}
	}
	t2 := time.Now()
	b.m.deliverLat.Observe(t2.Sub(t1).Seconds())
	b.m.publishLat.Observe(t2.Sub(t0).Seconds())
	return id, delivered
}

// deliver enqueues without blocking, dropping the oldest undelivered item
// when the queue is full. It reports whether the delivery was enqueued
// (false only when the subscriber is gone).
func (b *Broker) deliver(s *subscriber, d Delivery) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	for {
		select {
		case s.queue <- d:
			b.m.deliveries.Inc()
			return true
		default:
			select {
			case <-s.queue:
				b.m.dropped.Inc()
			default:
			}
		}
	}
}

// Feedback applies a subscriber's relevance judgment for a delivered (or
// at least still-retained) document and refreshes the subscriber's index
// entries, since the judgment may have reshaped the profile.
func (b *Broker) Feedback(user string, doc int64, fd filter.Feedback) error {
	t0 := time.Now()
	b.subsMu.RLock()
	s, ok := b.subs[user]
	b.subsMu.RUnlock()
	if !ok {
		return fmt.Errorf("pubsub: unknown subscriber %q", user)
	}
	b.docsMu.Lock()
	rec, ok := b.docs[docKey(doc)]
	b.docsMu.Unlock()
	if !ok {
		return fmt.Errorf("pubsub: document %d not retained (retention %d)", doc, b.opts.Retention)
	}
	if b.opts.Journal != nil {
		if err := b.opts.Journal.AppendFeedback(user, rec.vec, fd); err != nil {
			return fmt.Errorf("pubsub: journal: %w", err)
		}
	}
	s.mu.Lock()
	s.learner.Observe(rec.vec, fd)
	b.recordAdaptation(s)
	var vecs []vsm.Vector
	if s.indexed {
		vecs = s.learner.(filter.VectorSource).ProfileVectors()
	}
	s.mu.Unlock()
	b.m.feedbacks.Inc()
	if s.indexed {
		b.idx.SetUser(s.id, vecs)
	}
	b.m.feedbackLat.ObserveSince(t0)
	return nil
}

// reindex refreshes a subscriber's inverted-index entries.
func (b *Broker) reindex(s *subscriber) {
	if !s.indexed {
		return
	}
	s.mu.Lock()
	vecs := s.learner.(filter.VectorSource).ProfileVectors()
	s.mu.Unlock()
	b.idx.SetUser(s.id, vecs)
}

// ProfileSnapshot is one subscriber's serialized profile, for
// checkpointing through the persistence layer.
type ProfileSnapshot struct {
	User    string
	Learner string
	Data    []byte
}

// ExportProfiles serializes every subscriber's learner for a checkpoint.
// It fails if any learner does not support serialization — checkpoints
// must be complete or not taken at all.
func (b *Broker) ExportProfiles() ([]ProfileSnapshot, error) {
	b.subsMu.RLock()
	subs := make([]*subscriber, 0, len(b.subs))
	for _, s := range b.subs {
		subs = append(subs, s)
	}
	b.subsMu.RUnlock()

	out := make([]ProfileSnapshot, 0, len(subs))
	for _, s := range subs {
		s.mu.Lock()
		m, ok := s.learner.(interface{ MarshalBinary() ([]byte, error) })
		if !ok {
			name := s.learner.Name()
			s.mu.Unlock()
			return nil, fmt.Errorf("pubsub: subscriber %q learner %q is not serializable", s.id, name)
		}
		blob, err := m.MarshalBinary()
		s.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("pubsub: snapshot %q: %w", s.id, err)
		}
		out = append(out, ProfileSnapshot{User: s.id, Learner: s.learner.Name(), Data: blob})
	}
	return out, nil
}

// ExportProfile serializes one subscriber's learner (profile portability:
// download a profile from one broker, import it into another).
func (b *Broker) ExportProfile(user string) (ProfileSnapshot, error) {
	b.subsMu.RLock()
	s, ok := b.subs[user]
	b.subsMu.RUnlock()
	if !ok {
		return ProfileSnapshot{}, fmt.Errorf("pubsub: unknown subscriber %q", user)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	m, ok := s.learner.(interface{ MarshalBinary() ([]byte, error) })
	if !ok {
		return ProfileSnapshot{}, fmt.Errorf("pubsub: learner %q is not serializable", s.learner.Name())
	}
	blob, err := m.MarshalBinary()
	if err != nil {
		return ProfileSnapshot{}, fmt.Errorf("pubsub: export %q: %w", user, err)
	}
	return ProfileSnapshot{User: user, Learner: s.learner.Name(), Data: blob}, nil
}

// DocumentVector returns the retained vector of a published document, for
// subscribers that want to inspect what they were sent.
func (b *Broker) DocumentVector(doc int64) (vsm.Vector, bool) {
	b.docsMu.Lock()
	rec, ok := b.docs[docKey(doc)]
	b.docsMu.Unlock()
	if !ok {
		return vsm.Vector{}, false
	}
	return rec.vec.Clone(), true
}

// DocumentContent returns the retained raw page of a published document;
// it requires Options.RetainContent and a document still in the retention
// window.
func (b *Broker) DocumentContent(doc int64) (string, bool) {
	b.docsMu.Lock()
	rec, ok := b.docs[docKey(doc)]
	b.docsMu.Unlock()
	if !ok || rec.content == "" {
		return "", false
	}
	return rec.content, true
}

// Stats returns a snapshot of broker activity.
func (b *Broker) Stats() Counters {
	b.subsMu.RLock()
	n := len(b.subs)
	b.subsMu.RUnlock()
	return Counters{
		Published:   b.m.published.Value(),
		Deliveries:  b.m.deliveries.Value(),
		Dropped:     b.m.dropped.Value(),
		Feedbacks:   b.m.feedbacks.Value(),
		Subscribers: n,
	}
}

// IndexStats returns the profile index's size.
func (b *Broker) IndexStats() index.Stats { return b.idx.Size() }

// Deliveries returns the subscription's stream. The channel is closed by
// Unsubscribe.
func (s *Subscription) Deliveries() <-chan Delivery { return s.sub.queue }

// ID returns the subscriber id.
func (s *Subscription) ID() string { return s.sub.id }

// Feedback reports a judgment for a delivered document.
func (s *Subscription) Feedback(doc int64, fd filter.Feedback) error {
	return s.b.Feedback(s.sub.id, doc, fd)
}

// ProfileSize returns the subscriber profile's current vector count.
func (s *Subscription) ProfileSize() int {
	s.sub.mu.Lock()
	defer s.sub.mu.Unlock()
	return s.sub.learner.ProfileSize()
}

// WithLearner runs fn with the subscription's learner under the
// subscriber's lock, for read-only introspection (the wire layer uses it
// to describe profiles). fn must not retain the learner or call back into
// the broker.
func (s *Subscription) WithLearner(fn func(filter.Learner)) {
	s.sub.mu.Lock()
	defer s.sub.mu.Unlock()
	fn(s.sub.learner)
}

// Score returns the profile's current score for a vector (diagnostics).
func (s *Subscription) Score(v vsm.Vector) float64 {
	s.sub.mu.Lock()
	defer s.sub.mu.Unlock()
	return s.sub.learner.Score(v)
}
