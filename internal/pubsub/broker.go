// Package pubsub implements the push-based data-delivery engine the paper's
// profiles exist to serve (Section 1): a broker that accepts published web
// pages, matches each one against every subscriber's profile through an
// inverted profile index, delivers matches, and feeds subscriber relevance
// judgments back into the profiles — which adapt online via the MM
// algorithm (or any other filter.Learner).
//
// Collection statistics (document frequencies, average length) accumulate
// incrementally as documents are published, exactly as the paper's footnote
// 4 prescribes for a real filtering deployment.
//
// Architecture: the Broker is a thin orchestrator over four independently
// sharded layers (DESIGN.md §9) —
//
//   - a sharded subscriber registry (registry.go) holding the subscriber
//     and brute-force tables;
//   - the document retention window (internal/docstore), a sharded FIFO
//     ring with a global atomic id allocator;
//   - concurrent collection statistics (vsm.ConcurrentStats), striped DF
//     counters publishes update and read without a statistics mutex;
//   - the inverted profile index (internal/index), sharded by term.
//
// No broker-wide lock exists: publishes from many goroutines proceed in
// parallel end to end, serializing only per subscriber (each subscriber's
// learner and queue are guarded by that subscriber's own mutex). Document
// ids are assigned in a total order, but deliveries to one subscriber from
// concurrent publishers may arrive slightly out of id order.
package pubsub

import (
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mmprofile/internal/core"
	"mmprofile/internal/docstore"
	"mmprofile/internal/filter"
	"mmprofile/internal/index"
	"mmprofile/internal/metrics"
	"mmprofile/internal/obs"
	"mmprofile/internal/text"
	"mmprofile/internal/topk"
	"mmprofile/internal/trace"
	"mmprofile/internal/vsm"
)

// Journal receives the broker's profile-mutating operations for durable
// logging; *store.Store implements it. Subscribe and Feedback surface
// journal failures to the caller (the mutation is not applied in memory
// when journaling fails); Unsubscribe journaling is best-effort.
type Journal interface {
	AppendSubscribe(user, learner string, state []byte) error
	AppendUnsubscribe(user string) error
	AppendFeedback(user string, v vsm.Vector, fd filter.Feedback) error
}

// journalSyncer is the optional durability barrier a Journal may
// implement (*store.Store does): Sync returns once every record appended
// before the call is on stable storage.
type journalSyncer interface {
	Sync() error
}

// tracedJournal is the optional traced feedback append a Journal may
// implement (*store.Store does): when the request is sampled, the append's
// WAL write and group-commit wait become child spans of sp, separating the
// two very different ways a durable append can be slow.
type tracedJournal interface {
	AppendFeedbackTraced(user string, v vsm.Vector, fd filter.Feedback, sp *trace.Span) error
}

// auditTagger is implemented by learners that keep an adaptation audit
// journal (core.Profile): before applying a judgment the broker tags it
// with the judged document id and the trace that carried it, so audit
// events join back to deliveries and request traces.
type auditTagger interface {
	TagNextObserve(doc int64, trace string)
}

// errDuplicate signals an id collision inside the registry; Subscribe
// wraps it with the offending id.
var errDuplicate = errors.New("duplicate subscriber")

// Options configures a Broker. The zero value gets sensible defaults from
// New.
type Options struct {
	// Threshold is the minimum profile/document similarity for delivery.
	Threshold float64
	// QueueSize is each subscriber's delivery buffer; when it overflows the
	// oldest undelivered item is dropped (and counted).
	QueueSize int
	// Retention is how many recent published documents are kept for
	// feedback resolution — the paper notes document vectors are "typically
	// only retained for a short duration" (Section 4.3).
	Retention int
	// Journal, when set, receives every subscribe/unsubscribe/feedback for
	// durable logging.
	Journal Journal
	// RetainContent keeps each published page's raw content alongside its
	// vector for the retention window, so subscribers can fetch what they
	// were sent (DocumentContent / the wire "fetch" op). Off by default:
	// raw pages dominate memory at scale.
	RetainContent bool
	// PublishWorkers bounds the worker pool PublishBatch fans a document
	// batch out over; 0 means one worker per CPU.
	PublishWorkers int
	// Shards suggests how many ways the subscriber registry and the
	// document retention window are sharded (mmserver -pubsub-shards);
	// 0 means GOMAXPROCS. The registry rounds up to a power of two; the
	// docstore additionally clamps to a divisor of Retention so the FIFO
	// window stays exact.
	Shards int
	// Metrics is the registry the broker's instrumentation registers into,
	// shared with the profile store and exposition endpoints in mmserver.
	// When nil the broker creates a private registry, reachable via
	// Broker.Metrics() — instrumentation is always on (its hot-path cost
	// is three clock reads and a few atomic adds per publish). One broker
	// per registry: sharing a registry between brokers would silently
	// merge their series.
	Metrics *metrics.Registry
	// Trace, when set, records request-scoped span trees for sampled (and
	// slow) publishes and feedbacks — see internal/trace and DESIGN.md §11.
	// Nil disables tracing; with a tracer set but nothing sampled, the
	// publish hot path pays no allocations and no extra clock reads.
	Trace *trace.Tracer
	// Hydrator, when set, restores evicted subscriber profiles on demand
	// (lazy hydration, DESIGN.md §14); *store.Store implements it. Without
	// one, SubscribeRestored requires a resident learner and MaxResident is
	// ignored.
	Hydrator Hydrator
	// MaxResident bounds how many subscriber profiles are resident in the
	// heap at once (mmserver -max-resident-profiles). When the bound is
	// exceeded the least-recently-accessed profile is evicted: its learner
	// is dropped (the journal already holds every mutation) and rebuilt by
	// the Hydrator on the subscriber's next feedback or introspection.
	// Recency is driven by profile access — feedback, hydration, export,
	// introspection — not by deliveries: the publish hot path never touches
	// the residency list. 0 means unbounded (every profile stays resident).
	// Requires Hydrator.
	MaxResident int
	// NoPrune disables the index's threshold-aware match pruning
	// (DESIGN.md §12), forcing every posting to be scanned exactly. Match
	// results are identical either way; the flag (mmserver/mmbench
	// -prune=off) exists for A/B comparisons and as an escape hatch.
	NoPrune bool
	// Log, when set, receives the broker's structured events: subscriber
	// lifecycle at info, per-publish/per-feedback detail at debug. Debug
	// statements on the publish hot path are guarded by Log.Enabled, so
	// with the level at info (or Log nil) they cost one atomic load —
	// zero allocations, zero clock reads (the obs zero-alloc contract,
	// pinned by TestPublishUnsampledAddsNoAllocs).
	Log *obs.Logger
	// Top is the attribution-dimension registry the broker's hot-key
	// sketches register into (DESIGN.md §16), shared with the store's
	// per-lane dimensions in mmserver. Nil creates a private registry,
	// reachable via Broker.Top(). Like Metrics: one broker per registry.
	Top *topk.Registry
	// TopCapacity bounds each attribution dimension's tracked-entry count
	// (the space-saving error bound is total weight / capacity). 0 means
	// DefaultTopCapacity; negative disables attribution entirely — the
	// escape hatch the zero-alloc guard test uses as its baseline.
	TopCapacity int
}

// DefaultOptions returns the broker defaults: threshold 0.25, queues of
// 128, retention of 4096 documents.
func DefaultOptions() Options {
	return Options{Threshold: 0.25, QueueSize: 128, Retention: 4096}
}

// Delivery is one pushed document: its id, the match score, and the
// subscriber-scoped sequence number.
type Delivery struct {
	Doc   int64
	Score float64
	// Seq is this delivery's position in the subscriber's outbound stream:
	// the first delivery ever enqueued for a subscriber carries 0, the next
	// 1, and so on, with no number ever reused or skipped at assignment.
	// When the bounded queue overflows and the oldest undelivered item is
	// dropped, its sequence number vanishes from the stream — so a consumer
	// that sees Seq jump knows exactly how many deliveries it lost, which is
	// what makes the drop-oldest policy observable end to end (the wire
	// session layer forwards Seq to clients for precisely this).
	Seq uint64
}

// Counters aggregates broker activity for monitoring.
type Counters struct {
	Published   int64
	Deliveries  int64
	Dropped     int64
	Feedbacks   int64
	Subscribers int
}

// Layout describes how the broker's layers are sharded, for introspection
// (the wire /statsz endpoint reports it).
type Layout struct {
	RegistryShards int // subscriber-table shards
	DocShards      int // document retention-ring shards
	StatsStripes   int // collection-statistics DF stripes
	IndexShards    int // inverted-index posting shards
}

type subscriber struct {
	id string

	// mu guards learner, closed, lastOps, lastSize — and serializes each
	// profile mutation with its journal append and its index refresh, so
	// the WAL order, the learner state, and the index entries for one
	// subscriber can never disagree (see Feedback and Unsubscribe).
	// learner is nil while the subscriber is evicted (lazy hydration,
	// hydrate.go): the profile's state lives only in the store until the
	// next access rebuilds it.
	mu      sync.Mutex
	learner filter.Learner
	closed  bool

	indexed bool // learner implements filter.VectorSource
	queue   chan Delivery

	// nextSeq is the sequence number the next delivery will carry (equal to
	// the count of deliveries ever assigned to this subscriber); dropped
	// counts deliveries discarded by the queue's drop-oldest policy. Both
	// are guarded by mu — deliver already holds it — and together they give
	// consumers the invariant received + queued + dropped == nextSeq, the
	// "no silent loss" contract the wire session layer exposes.
	nextSeq uint64
	dropped uint64

	// lastOps/lastSize are the adaptation-telemetry baselines: the
	// learner's operation tallies and vector count as of the last
	// recordAdaptation (initialized at Subscribe, re-baselined on
	// hydration).
	lastOps  core.OpCounts
	lastSize int

	// Intrusive residency-LRU links, guarded by Broker.lru.mu only (a leaf
	// lock; see residencyLRU).
	lruPrev, lruNext *subscriber
	inLRU            bool
}

// Broker is the dissemination engine: an orchestrator composing the
// sharded registry, docstore, termstats, and index layers. All methods are
// safe for concurrent use.
type Broker struct {
	opts Options
	pipe *text.Pipeline
	idx  *index.Index

	stats *vsm.ConcurrentStats
	docs  *docstore.Store
	reg   *registry
	lru   residencyLRU

	// m holds every instrument the broker records into; the dissemination
	// counters inside it also back Stats().
	m brokerMetrics

	// top holds the hot-key attribution sketches (topattr.go); its Offer
	// call sites are unconditional because nil sketches no-op.
	top brokerTop
}

// New creates a broker; zero fields of opts take defaults.
func New(opts Options) *Broker {
	def := DefaultOptions()
	if opts.Threshold == 0 {
		opts.Threshold = def.Threshold
	}
	if opts.QueueSize <= 0 {
		opts.QueueSize = def.QueueSize
	}
	if opts.Retention <= 0 {
		opts.Retention = def.Retention
	}
	if opts.Shards <= 0 {
		opts.Shards = runtime.GOMAXPROCS(0)
	}
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	b := &Broker{
		opts:  opts,
		pipe:  text.NewPipeline(),
		stats: vsm.NewConcurrentStats(),
		idx:   index.New(),
		reg:   newRegistry(opts.Shards),
		docs:  docstore.New(opts.Retention, opts.Shards),
		m:     newBrokerMetrics(reg),
	}
	b.idx.Instrument(reg)
	b.idx.SetPruning(!opts.NoPrune)
	topReg := opts.Top
	if topReg == nil {
		topReg = topk.NewRegistry()
	}
	b.top = newBrokerTop(topReg, opts.TopCapacity)
	if opts.TopCapacity >= 0 {
		cap := opts.TopCapacity
		if cap == 0 {
			cap = DefaultTopCapacity
		}
		b.idx.AttributeTerms(topReg, cap)
	}
	reg.GaugeFunc("mm_pubsub_subscribers",
		"Currently registered subscribers.",
		func() float64 { return float64(b.reg.len()) })
	return b
}

// Subscription is a subscriber's handle: a delivery stream plus feedback
// and introspection methods.
type Subscription struct {
	b   *Broker
	sub *subscriber
}

// Subscribe registers a learner-backed profile under the given id. The
// learner is owned by the broker from here on: all further access must go
// through the subscription (the broker serializes updates per subscriber).
// When a journal is configured, the subscription (with the learner's
// initial state, if serializable) is logged before being applied.
func (b *Broker) Subscribe(id string, l filter.Learner) (*Subscription, error) {
	// The duplicate check, the journal record, and the insertion are one
	// atomic step under the id's registry-shard lock (see registry.insert):
	// journaling a subscribe that then fails as a duplicate would clobber
	// the existing user's profile on replay.
	var journal func() error
	if b.opts.Journal != nil {
		journal = func() error {
			var state []byte
			if m, ok := l.(interface{ MarshalBinary() ([]byte, error) }); ok {
				var err error
				if state, err = m.MarshalBinary(); err != nil {
					return fmt.Errorf("pubsub: snapshot %q: %w", id, err)
				}
			}
			if err := b.opts.Journal.AppendSubscribe(id, l.Name(), state); err != nil {
				return fmt.Errorf("pubsub: journal: %w", err)
			}
			return nil
		}
	}
	return b.subscribe(id, l, journal)
}

// subscribe is the shared registration path behind Subscribe (journaled)
// and SubscribeRestored with a resident learner (journal nil).
func (b *Broker) subscribe(id string, l filter.Learner, journal func() error) (*Subscription, error) {
	_, indexed := l.(filter.VectorSource)
	s := &subscriber{
		id:      id,
		learner: l,
		indexed: indexed,
		queue:   make(chan Delivery, b.opts.QueueSize),
	}
	// Telemetry baselines: adaptation counters report only operations
	// performed under this broker, not the learner's prior history
	// (keyword seeding, journal replay). The learner is not yet shared,
	// so no lock is needed.
	if oc, ok := l.(opCounter); ok {
		s.lastOps = oc.Counts()
	}
	s.lastSize = l.ProfileSize()
	if err := b.reg.insert(id, s, journal); err != nil {
		if errors.Is(err, errDuplicate) {
			return nil, fmt.Errorf("pubsub: duplicate subscriber %q", id)
		}
		return nil, err
	}
	b.m.profileVectors.Add(float64(s.lastSize))
	b.m.residentProfiles.Add(1)
	b.reindex(s)
	if b.bounded() {
		b.lru.touch(s)
		b.enforceResidency()
	}
	// Debug, not info: load tests subscribe by the hundred thousand.
	if b.opts.Log.Enabled(obs.LevelDebug) {
		b.opts.Log.Debug("pubsub: subscribe",
			slog.String("user", id),
			slog.String("learner", l.Name()),
			slog.Int("profile_vectors", s.lastSize))
	}
	return &Subscription{b: b, sub: s}, nil
}

// SubscribeKeywords registers a fresh MM profile seeded from an explicit
// keyword list — the SIFT-style bootstrap of Section 6. The seed vector
// carries uniform weights over the stemmed keywords; feedback then adapts
// the profile automatically.
func (b *Broker) SubscribeKeywords(id string, keywords []string) (*Subscription, error) {
	l := core.NewDefault()
	m := make(map[string]float64, len(keywords))
	for _, k := range keywords {
		for _, tok := range text.Tokenize(k) {
			if text.IsWord(tok) && !text.IsStopWord(tok) {
				m[text.Stem(tok)] = 1
			}
		}
	}
	if seed := vsm.FromMap(m).Normalized(); !seed.IsZero() {
		l.Observe(seed, filter.Relevant)
	}
	return b.Subscribe(id, l)
}

// Unsubscribe removes a subscriber and closes its delivery channel. The
// journal append, the close, and the index removal all happen under the
// subscriber's lock: a Feedback racing this call either completes fully
// before it (its journal record precedes the unsubscribe record, and its
// index entries are removed here) or observes closed and does nothing —
// it can never re-insert ghost index entries for the removed user.
func (b *Broker) Unsubscribe(id string) {
	s, ok := b.reg.remove(id)
	if !ok {
		return
	}
	b.closeRemoved(s)
}

// closeRemoved finishes an unsubscribe after the registry removal: it
// journals, closes the queue, clears the index entries, and settles the
// residency accounting. Shared by Unsubscribe (removal by id) and
// Subscription.Cancel (removal by identity).
func (b *Broker) closeRemoved(s *subscriber) {
	id := s.id
	s.mu.Lock()
	if b.opts.Journal != nil {
		// Best-effort: an unlogged unsubscribe only means the user would be
		// restored after a crash, never data loss.
		_ = b.opts.Journal.AppendUnsubscribe(id)
	}
	s.closed = true
	close(s.queue)
	b.idx.RemoveUser(id)
	resident := s.learner != nil
	gone := s.lastSize
	s.lastSize = 0
	s.mu.Unlock()
	b.lru.drop(s)
	b.m.profileVectors.Add(float64(-gone))
	if resident {
		b.m.residentProfiles.Add(-1)
	}
	if b.opts.Log.Enabled(obs.LevelDebug) {
		b.opts.Log.Debug("pubsub: unsubscribe", slog.String("user", id))
	}
}

// Publish ingests one raw page: it is run through the processing pipeline,
// added to the incremental collection statistics, vectorized with the
// statistics as they stand, matched against all profiles, and delivered to
// every subscriber whose best profile vector clears the threshold. It
// returns the assigned document id and the number of deliveries.
func (b *Broker) Publish(page string) (int64, int) {
	return b.PublishSpan(page, nil)
}

// PublishSpan is Publish under an explicit parent span, which may be nil:
// the wire server passes its request root so the broker's match and
// fan-out phases nest inside the request trace. Without a parent the
// broker roots its own trace when the tracer samples this publish.
func (b *Broker) PublishSpan(page string, parent *trace.Span) (int64, int) {
	terms := b.pipe.Terms(page)
	// The striped statistics admit concurrent updates and reads, so the
	// expensive vectorization runs outside any statistics critical section;
	// each term weight sees the statistics as they stand at that instant.
	b.stats.Add(terms)
	vec := vsm.DocumentVector(terms, vsm.Bel{Stats: b.stats})
	content := ""
	if b.opts.RetainContent {
		content = page
	}
	return b.publishRecord(vec, content, parent)
}

// PublishVector ingests a pre-vectorized document (it must be unit-
// normalized); used when documents arrive already processed, and by the
// benchmarks.
func (b *Broker) PublishVector(vec vsm.Vector) (int64, int) {
	return b.publishRecord(vec, "", nil)
}

// BatchResult is one document's outcome within a PublishBatch call.
type BatchResult struct {
	Doc        int64
	Deliveries int
}

// PublishBatch ingests a batch of raw pages through a bounded worker pool
// (Options.PublishWorkers, default one per CPU). Results are returned in
// input order; document ids are still assigned in a total order but, with
// multiple workers, not necessarily in input order. Collection statistics
// accumulate concurrently in the striped termstats layer exactly as with
// sequential Publish.
func (b *Broker) PublishBatch(pages []string) []BatchResult {
	t0 := time.Now()
	// One sampling decision covers the whole batch; each worker's publish
	// then hangs off the batch root, so a sampled batch is captured with
	// every document's match/deliver phases as (concurrent) subtrees.
	sp := b.opts.Trace.RootAt("pubsub.publish_batch", t0, trace.Remote{})
	out := make([]BatchResult, len(pages))
	b.fanOut(len(pages), func(i int) {
		doc, n := b.PublishSpan(pages[i], sp)
		out[i] = BatchResult{Doc: doc, Deliveries: n}
	})
	sp.SetInt("docs", int64(len(pages)))
	sp.End()
	b.m.batchLat.ObserveSince(t0)
	return out
}

// PublishVectorBatch is PublishBatch for pre-vectorized (unit-normalized)
// documents.
func (b *Broker) PublishVectorBatch(vecs []vsm.Vector) []BatchResult {
	t0 := time.Now()
	sp := b.opts.Trace.RootAt("pubsub.publish_batch", t0, trace.Remote{})
	out := make([]BatchResult, len(vecs))
	b.fanOut(len(vecs), func(i int) {
		doc, n := b.publishRecord(vecs[i], "", sp)
		out[i] = BatchResult{Doc: doc, Deliveries: n}
	})
	sp.SetInt("docs", int64(len(vecs)))
	sp.End()
	b.m.batchLat.ObserveSince(t0)
	return out
}

// fanOut runs fn(0..n-1) over the publish worker pool.
func (b *Broker) fanOut(n int, fn func(int)) {
	workers := b.opts.PublishWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

func (b *Broker) publishRecord(vec vsm.Vector, content string, parent *trace.Span) (int64, int) {
	t0 := time.Now()
	// Span setup costs nothing unless this request is captured: ChildAt on
	// a nil parent and RootAt without a winning sampling decision both
	// return nil, and every Span method on nil is a no-op. Timestamps are
	// the three clock reads the latency histograms take anyway.
	sp := parent.ChildAt("pubsub.publish", t0)
	if sp == nil {
		sp = b.opts.Trace.RootAt("pubsub.publish", t0, trace.Remote{})
	}
	// Retain the vector for feedback resolution; the docstore assigns the
	// id and evicts the oldest document under its shard's lock.
	id, evicted := b.docs.Put(vec, content)
	b.m.published.Inc()
	if evicted {
		b.m.evictions.Inc()
	}

	if vec.IsZero() {
		b.m.publishLat.ObserveSince(t0)
		sp.SetInt("doc", id)
		sp.SetBool("zero_doc", true)
		sp.End()
		return id, 0
	}

	// Resolve the document against the index's term dictionary once; the
	// whole tokenize→weight→match path then never re-hashes a term string.
	ms := sp.ChildAt("index.match", t0)
	doc := b.idx.NewDoc(vec)
	matches := b.idx.MatchDoc(doc, b.opts.Threshold)

	// Fan-out cost is O(matches + brute-force subscribers), not
	// O(all subscribers): indexed profiles are reached only through their
	// match, and only learners without indexable vectors are scored at all.
	// Each match resolves through its registry shard's read lock; no
	// registry-wide lock is held at any point.
	delivered := 0
	targets := make([]*subscriber, 0, len(matches))
	scores := make([]float64, 0, len(matches))
	for _, m := range matches {
		if s, ok := b.reg.get(m.User); ok {
			targets = append(targets, s)
			scores = append(scores, m.Score)
		}
	}
	// Brute-force learners are scored from a snapshot taken under the
	// shard locks and scored after they are released: a slow Score can
	// never stall subscribes, unsubscribes, or other publishes. The
	// lock-free count check keeps the all-indexed common case at zero cost.
	if b.reg.bruteCount() > 0 {
		for _, s := range b.reg.bruteSnapshot(nil) {
			s.mu.Lock()
			sc := 0.0
			// The learner nil check covers an eviction racing the snapshot:
			// evicted brutes leave the brute table, but this subscriber may
			// have been evicted after it was snapped.
			if !s.closed && s.learner != nil {
				sc = s.learner.Score(vec)
			}
			s.mu.Unlock()
			if sc >= b.opts.Threshold {
				targets = append(targets, s)
				scores = append(scores, sc)
			}
		}
	}
	// One clock read separates matching from fan-out; together with t0 and
	// the final read it yields all three hot-path histograms, the two
	// phase spans, and the index's own match histogram.
	t1 := time.Now()
	ms.EndAt(t1)
	tid := uint64(sp.Trace())
	b.idx.RecordMatchLatency(t0, t1, tid)
	if tid != 0 {
		b.m.matchLat.ObserveExemplar(t1.Sub(t0).Seconds(), tid)
	} else {
		b.m.matchLat.Observe(t1.Sub(t0).Seconds())
	}

	ds := sp.ChildAt("pubsub.deliver", t1)
	for i, s := range targets {
		if b.deliver(s, Delivery{Doc: id, Score: scores[i]}) {
			delivered++
		}
	}
	t2 := time.Now()
	ds.EndAt(t2)
	if sp != nil {
		sp.SetInt("doc", id)
		sp.SetInt("matches", int64(len(targets)))
		sp.SetInt("deliveries", int64(delivered))
		sp.EndAt(t2)
	} else if tr := b.opts.Trace; tr.Slow(t2.Sub(t0)) {
		// Head sampling skipped this publish but it met the slow threshold:
		// capture it post hoc from the clocks already in hand. The id links
		// the histogram exemplars below to the synthetic trace.
		tid = uint64(tr.CaptureSlow("pubsub.publish", t0, t2,
			trace.Int("doc", id), trace.Int("deliveries", int64(delivered))))
	}
	if tid != 0 {
		b.m.deliverLat.ObserveExemplar(t2.Sub(t1).Seconds(), tid)
		b.m.publishLat.ObserveExemplar(t2.Sub(t0).Seconds(), tid)
	} else {
		b.m.deliverLat.Observe(t2.Sub(t1).Seconds())
		b.m.publishLat.Observe(t2.Sub(t0).Seconds())
	}
	// Hot-path log: the Enabled guard keeps attribute construction off
	// the disabled path entirely (see Options.Log).
	if b.opts.Log.Enabled(obs.LevelDebug) {
		b.opts.Log.Debug("pubsub: publish",
			slog.Int64("doc", id),
			slog.Int("matches", len(targets)),
			slog.Int("deliveries", delivered),
			obs.TraceAttr(sp))
	}
	return id, delivered
}

// deliver enqueues without blocking, dropping the oldest undelivered item
// when the queue is full. It reports whether the delivery was enqueued
// (false only when the subscriber is gone). Each enqueued delivery is
// stamped with the subscriber's next sequence number under the same lock,
// so sequence numbers enter the queue in strictly ascending order; each
// drop bumps both the subscriber's own counter (the gap signal consumers
// read via DeliveryStats) and the global mm_pubsub_dropped metric.
func (b *Broker) deliver(s *subscriber, d Delivery) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	d.Seq = s.nextSeq
	s.nextSeq++
	overflowed := false
	for {
		select {
		case s.queue <- d:
			b.m.deliveries.Inc()
			b.top.deliveries.Offer(s.id, 1)
			if overflowed {
				b.top.queueFull.Offer(s.id, 1)
			}
			return true
		default:
			overflowed = true
			select {
			case <-s.queue:
				s.dropped++
				b.m.dropped.Inc()
				b.top.drops.Offer(s.id, 1)
			default:
			}
		}
	}
}

// Feedback applies a subscriber's relevance judgment for a delivered (or
// at least still-retained) document and refreshes the subscriber's index
// entries, since the judgment may have reshaped the profile.
//
// The whole mutation — journal append, learner update, index refresh —
// runs under the subscriber's lock, with a closed re-check first: a
// concurrent Unsubscribe either happens entirely after (and removes what
// this call indexed) or entirely before (and this call reports an unknown
// subscriber without journaling), so the index can never be left with
// ghost entries and the WAL never records feedback after an unsubscribe
// for the same user.
func (b *Broker) Feedback(user string, doc int64, fd filter.Feedback) error {
	return b.FeedbackSpan(user, doc, fd, nil)
}

// FeedbackSpan is Feedback under an explicit parent span (nil is fine; see
// PublishSpan). A captured feedback records its journal append, profile
// update, and reindex as child spans, and tags the learner's audit journal
// with the trace id so /explainz events link back to /tracez.
func (b *Broker) FeedbackSpan(user string, doc int64, fd filter.Feedback, parent *trace.Span) error {
	t0 := time.Now()
	sp := parent.ChildAt("pubsub.feedback", t0)
	if sp == nil {
		sp = b.opts.Trace.RootAt("pubsub.feedback", t0, trace.Remote{})
	}
	err := b.applyFeedback(user, doc, fd, sp)
	// Outside the subscriber's lock: the residency bound may pick this very
	// subscriber as its victim.
	b.enforceResidency()
	t1 := time.Now()
	tid := uint64(sp.Trace())
	if sp != nil {
		sp.SetInt("doc", doc)
		sp.SetString("user", user)
		if err != nil {
			sp.SetString("error", err.Error())
		}
		sp.EndAt(t1)
	} else if tr := b.opts.Trace; err == nil && tr.Slow(t1.Sub(t0)) {
		tid = uint64(tr.CaptureSlow("pubsub.feedback", t0, t1,
			trace.Int("doc", doc), trace.String("user", user)))
	}
	if err != nil {
		if b.opts.Log.Enabled(obs.LevelDebug) {
			b.opts.Log.Debug("pubsub: feedback rejected",
				slog.String("user", user),
				slog.Int64("doc", doc),
				slog.String("err", err.Error()),
				obs.TraceAttr(sp))
		}
		return err
	}
	b.m.feedbacks.Inc()
	if tid != 0 {
		b.m.feedbackLat.ObserveExemplar(t1.Sub(t0).Seconds(), tid)
	} else {
		b.m.feedbackLat.Observe(t1.Sub(t0).Seconds())
	}
	if b.opts.Log.Enabled(obs.LevelDebug) {
		b.opts.Log.Debug("pubsub: feedback",
			slog.String("user", user),
			slog.Int64("doc", doc),
			obs.TraceAttr(sp))
	}
	return nil
}

func (b *Broker) applyFeedback(user string, doc int64, fd filter.Feedback, sp *trace.Span) error {
	s, ok := b.reg.get(user)
	if !ok {
		return fmt.Errorf("pubsub: unknown subscriber %q", user)
	}
	rec, ok := b.docs.Get(doc)
	if !ok {
		return fmt.Errorf("pubsub: document %d not retained (retention %d)", doc, b.opts.Retention)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("pubsub: unknown subscriber %q", user)
	}
	// An evicted subscriber hydrates before the journal append so the
	// learner observes this judgment on top of its full history.
	if err := b.residentLocked(s, sp); err != nil {
		return err
	}
	if b.opts.Journal != nil {
		var err error
		if tj, ok := b.opts.Journal.(tracedJournal); ok {
			// The store itself spans the WAL write and commit wait under sp.
			err = tj.AppendFeedbackTraced(user, rec.Vec, fd, sp)
		} else {
			js := sp.Child("store.append")
			err = b.opts.Journal.AppendFeedback(user, rec.Vec, fd)
			js.End()
		}
		if err != nil {
			return fmt.Errorf("pubsub: journal: %w", err)
		}
	}
	if at, ok := s.learner.(auditTagger); ok {
		// Trace() is 0 (and the hex empty) when this request is untraced;
		// the document id is worth tagging either way.
		at.TagNextObserve(doc, sp.Trace().String())
	}
	os := sp.Child("core.observe")
	s.learner.Observe(rec.Vec, fd)
	os.End()
	b.recordAdaptation(s)
	if s.indexed {
		rs := sp.Child("index.reindex")
		b.idx.SetUser(s.id, s.learner.(filter.VectorSource).ProfileVectors())
		rs.End()
	}
	return nil
}

// reindex refreshes a subscriber's inverted-index entries. The closed
// check and the SetUser share the subscriber's lock so a racing
// Unsubscribe cannot interleave between them (see Unsubscribe).
func (b *Broker) reindex(s *subscriber) {
	if !s.indexed {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.learner == nil {
		return
	}
	b.idx.SetUser(s.id, s.learner.(filter.VectorSource).ProfileVectors())
}

// SyncJournal forces the journal's durability barrier, when the journal
// supports one: every subscribe/unsubscribe/feedback journaled before the
// call is durable when it returns. A no-op (nil) without a journal or
// with one that has no barrier. Servers call it at shutdown and before
// checkpoints so the relaxed SyncInterval window never spans a clean
// exit.
func (b *Broker) SyncJournal() error {
	if js, ok := b.opts.Journal.(journalSyncer); ok {
		return js.Sync()
	}
	return nil
}

// ProfileSnapshot is one subscriber's serialized profile, for
// checkpointing through the persistence layer.
type ProfileSnapshot struct {
	User    string
	Learner string
	Data    []byte
}

// ExportProfiles serializes every resident subscriber's learner for a
// checkpoint. Evicted subscribers are skipped rather than hydrated: their
// state already lives, complete, in the store that evicted them. It fails
// if any resident learner does not support serialization — checkpoints
// must be complete or not taken at all.
func (b *Broker) ExportProfiles() ([]ProfileSnapshot, error) {
	subs := b.reg.snapshot()
	out := make([]ProfileSnapshot, 0, len(subs))
	for _, s := range subs {
		s.mu.Lock()
		if s.closed || s.learner == nil {
			s.mu.Unlock()
			continue
		}
		m, ok := s.learner.(interface{ MarshalBinary() ([]byte, error) })
		if !ok {
			name := s.learner.Name()
			s.mu.Unlock()
			return nil, fmt.Errorf("pubsub: subscriber %q learner %q is not serializable", s.id, name)
		}
		blob, err := m.MarshalBinary()
		s.mu.Unlock()
		if err != nil {
			return nil, fmt.Errorf("pubsub: snapshot %q: %w", s.id, err)
		}
		out = append(out, ProfileSnapshot{User: s.id, Learner: s.learner.Name(), Data: blob})
	}
	return out, nil
}

// ExportProfile serializes one subscriber's learner (profile portability:
// download a profile from one broker, import it into another).
func (b *Broker) ExportProfile(user string) (ProfileSnapshot, error) {
	s, ok := b.reg.get(user)
	if !ok {
		return ProfileSnapshot{}, fmt.Errorf("pubsub: unknown subscriber %q", user)
	}
	defer b.enforceResidency()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ProfileSnapshot{}, fmt.Errorf("pubsub: unknown subscriber %q", user)
	}
	if err := b.residentLocked(s, nil); err != nil {
		return ProfileSnapshot{}, err
	}
	m, ok := s.learner.(interface{ MarshalBinary() ([]byte, error) })
	if !ok {
		return ProfileSnapshot{}, fmt.Errorf("pubsub: learner %q is not serializable", s.learner.Name())
	}
	blob, err := m.MarshalBinary()
	if err != nil {
		return ProfileSnapshot{}, fmt.Errorf("pubsub: export %q: %w", user, err)
	}
	return ProfileSnapshot{User: user, Learner: s.learner.Name(), Data: blob}, nil
}

// DocumentVector returns the retained vector of a published document, for
// subscribers that want to inspect what they were sent.
func (b *Broker) DocumentVector(doc int64) (vsm.Vector, bool) {
	rec, ok := b.docs.Get(doc)
	if !ok {
		return vsm.Vector{}, false
	}
	return rec.Vec.Clone(), true
}

// DocumentContent returns the retained raw page of a published document;
// it requires Options.RetainContent and a document still in the retention
// window.
func (b *Broker) DocumentContent(doc int64) (string, bool) {
	rec, ok := b.docs.Get(doc)
	if !ok || rec.Content == "" {
		return "", false
	}
	return rec.Content, true
}

// Stats returns a snapshot of broker activity.
func (b *Broker) Stats() Counters {
	return Counters{
		Published:   b.m.published.Value(),
		Deliveries:  b.m.deliveries.Value(),
		Dropped:     b.m.dropped.Value(),
		Feedbacks:   b.m.feedbacks.Value(),
		Subscribers: b.reg.len(),
	}
}

// IndexStats returns the profile index's size.
func (b *Broker) IndexStats() index.Stats { return b.idx.Size() }

// Log returns the broker's structured logger (nil when none configured).
func (b *Broker) Log() *obs.Logger { return b.opts.Log }

// PingPipeline probes the locks the publish path takes — a registry-shard
// read, a docstore-shard read, and the index size scan — and returns once
// all of them were acquired. Health heartbeat goroutines call it
// periodically: if any layer is wedged (a lock held forever), the ping
// blocks, the heartbeat goes stale, and /readyz degrades — without the
// /readyz handler itself ever touching the wedged lock.
func (b *Broker) PingPipeline() {
	_ = b.reg.len()
	_, _ = b.docs.Get(0)
	_ = b.idx.Size()
}

// Layout reports how the broker's layers are sharded.
func (b *Broker) Layout() Layout {
	return Layout{
		RegistryShards: len(b.reg.shards),
		DocShards:      b.docs.Shards(),
		StatsStripes:   b.stats.Stripes(),
		IndexShards:    index.NumShards,
	}
}

// Deliveries returns the subscription's stream. The channel is closed by
// Unsubscribe.
func (s *Subscription) Deliveries() <-chan Delivery { return s.sub.queue }

// ID returns the subscriber id.
func (s *Subscription) ID() string { return s.sub.id }

// DeliveryStats reports the subscription's outbound accounting: nextSeq is
// the sequence number the next delivery will carry (== deliveries assigned
// so far), dropped is how many of those were discarded by the queue's
// drop-oldest policy. A consumer that has received r deliveries and sees
// dropped d knows nextSeq - r - d items are still queued; once the queue
// is drained, received + dropped == nextSeq — any shortfall would be
// silent loss, which this accounting exists to rule out.
func (s *Subscription) DeliveryStats() (nextSeq, dropped uint64) {
	s.sub.mu.Lock()
	defer s.sub.mu.Unlock()
	return s.sub.nextSeq, s.sub.dropped
}

// Closed reports whether the subscription has been unsubscribed (its
// delivery channel is closed; remaining queued items can still be drained).
func (s *Subscription) Closed() bool {
	s.sub.mu.Lock()
	defer s.sub.mu.Unlock()
	return s.sub.closed
}

// Cancel unsubscribes exactly this subscription: unlike Broker.Unsubscribe
// (which removes whatever currently holds the id) it is identity-matched,
// so canceling a stale handle after the id has been re-subscribed never
// tears down the newer subscription. A no-op when this subscription is no
// longer the registered one.
func (s *Subscription) Cancel() {
	if sub, ok := s.b.reg.removeMatch(s.sub.id, s.sub); ok {
		s.b.closeRemoved(sub)
	}
}

// Feedback reports a judgment for a delivered document.
func (s *Subscription) Feedback(doc int64, fd filter.Feedback) error {
	return s.b.Feedback(s.sub.id, doc, fd)
}

// ProfileSize returns the subscriber profile's current vector count,
// hydrating an evicted profile first (0 when the subscriber is gone or
// hydration fails).
func (s *Subscription) ProfileSize() int {
	n := 0
	_ = s.WithLearner(func(l filter.Learner) { n = l.ProfileSize() })
	return n
}

// WithLearner runs fn with the subscription's learner under the
// subscriber's lock, hydrating an evicted profile first; it errors when
// the subscriber is unsubscribed or hydration fails. For read-only
// introspection (the wire layer uses it to describe profiles). fn must
// not retain the learner or call back into the broker.
func (s *Subscription) WithLearner(fn func(filter.Learner)) error {
	defer s.b.enforceResidency()
	s.sub.mu.Lock()
	defer s.sub.mu.Unlock()
	if s.sub.closed {
		return fmt.Errorf("pubsub: unknown subscriber %q", s.sub.id)
	}
	if err := s.b.residentLocked(s.sub, nil); err != nil {
		return err
	}
	fn(s.sub.learner)
	return nil
}

// Score returns the profile's current score for a vector (diagnostics),
// hydrating an evicted profile first (0 on a gone subscriber or a failed
// hydration).
func (s *Subscription) Score(v vsm.Vector) float64 {
	sc := 0.0
	_ = s.WithLearner(func(l filter.Learner) { sc = l.Score(v) })
	return sc
}
