package pubsub

import (
	"fmt"
	"log/slog"
	"sync"
	"time"

	"mmprofile/internal/core"
	"mmprofile/internal/filter"
	"mmprofile/internal/obs"
	"mmprofile/internal/trace"
)

// Hydrator restores one subscriber's learner from durable storage, for
// lazy profile hydration (DESIGN.md §14). *store.Store implements it: the
// learner is rebuilt from the user's checkpoint segment plus a replay of
// the user's WAL-lane records. RestoreUser reports ok=false when the user
// has no durable state (never subscribed, or unsubscribed).
//
// Because the broker journals every profile mutation *before* applying it
// in memory (see Journal), a learner rebuilt by the hydrator is
// bit-identical (in MarshalBinary terms) to the in-heap learner it
// replaces — which is what lets the broker drop cold learners entirely
// instead of spilling them.
type Hydrator interface {
	RestoreUser(user string) (filter.Learner, bool, error)
}

// residencyLRU orders resident subscribers by last profile access, most
// recent first, over intrusive links on the subscriber structs (no
// allocation per touch). Its mutex is a leaf lock: it is taken while
// holding a subscriber's mu (touch from the feedback path) but never the
// other way around — eviction pops the victim first and locks it after
// (see Broker.enforceResidency).
type residencyLRU struct {
	mu         sync.Mutex
	head, tail *subscriber
	n          int
}

func (l *residencyLRU) len() int {
	l.mu.Lock()
	n := l.n
	l.mu.Unlock()
	return n
}

// unlink detaches s from the list; caller holds l.mu and s.inLRU is true.
func (l *residencyLRU) unlink(s *subscriber) {
	if s.lruPrev != nil {
		s.lruPrev.lruNext = s.lruNext
	} else {
		l.head = s.lruNext
	}
	if s.lruNext != nil {
		s.lruNext.lruPrev = s.lruPrev
	} else {
		l.tail = s.lruPrev
	}
	s.lruPrev, s.lruNext = nil, nil
	s.inLRU = false
	l.n--
}

// touch moves s to the front (most recently used), inserting it if absent.
func (l *residencyLRU) touch(s *subscriber) {
	l.mu.Lock()
	if s.inLRU {
		if l.head == s {
			l.mu.Unlock()
			return
		}
		l.unlink(s)
	}
	s.lruNext = l.head
	if l.head != nil {
		l.head.lruPrev = s
	}
	l.head = s
	if l.tail == nil {
		l.tail = s
	}
	s.inLRU = true
	l.n++
	l.mu.Unlock()
}

// drop removes s if present (unsubscribe, eviction).
func (l *residencyLRU) drop(s *subscriber) {
	l.mu.Lock()
	if s.inLRU {
		l.unlink(s)
	}
	l.mu.Unlock()
}

// popTail removes and returns the least recently used subscriber, or nil.
func (l *residencyLRU) popTail() *subscriber {
	l.mu.Lock()
	s := l.tail
	if s != nil {
		l.unlink(s)
	}
	l.mu.Unlock()
	return s
}

// bounded reports whether the broker enforces a residency bound at all.
func (b *Broker) bounded() bool {
	return b.opts.MaxResident > 0 && b.opts.Hydrator != nil
}

// hydrateLocked rebuilds an evicted subscriber's learner from the
// hydrator and rejoins it to the match path (index entries for indexable
// learners, the brute-force table otherwise). Caller holds s.mu; s is not
// closed and s.learner is nil.
func (b *Broker) hydrateLocked(s *subscriber, sp *trace.Span) error {
	if b.opts.Hydrator == nil {
		return fmt.Errorf("pubsub: subscriber %q is evicted and no hydrator is configured", s.id)
	}
	t0 := time.Now()
	hs := sp.ChildAt("store.hydrate", t0)
	l, ok, err := b.opts.Hydrator.RestoreUser(s.id)
	hs.End()
	if err != nil {
		return fmt.Errorf("pubsub: hydrate %q: %w", s.id, err)
	}
	if !ok {
		return fmt.Errorf("pubsub: hydrate %q: no durable state", s.id)
	}
	s.learner = l
	// Re-baseline the adaptation telemetry: replay repeats operations that
	// were already counted while the profile was resident.
	if oc, ok := l.(opCounter); ok {
		s.lastOps = oc.Counts()
	}
	s.lastSize = l.ProfileSize()
	b.m.profileVectors.Add(float64(s.lastSize))
	if s.indexed {
		b.idx.SetUser(s.id, l.(filter.VectorSource).ProfileVectors())
	} else {
		b.reg.rejoinBrute(s.id, s)
	}
	b.m.residentProfiles.Add(1)
	b.m.hydrations.Inc()
	b.top.hydrations.Offer(s.id, 1)
	b.m.hydrateLat.ObserveSince(t0)
	if b.bounded() {
		b.lru.touch(s)
	}
	if b.opts.Log.Enabled(obs.LevelDebug) {
		b.opts.Log.Debug("pubsub: hydrate",
			slog.String("user", s.id),
			slog.Int("profile_vectors", s.lastSize))
	}
	return nil
}

// residentLocked ensures s has an in-heap learner, hydrating if needed,
// and refreshes its residency recency. Caller holds s.mu and has checked
// closed. Callers must follow up with enforceResidency after releasing
// s.mu.
func (b *Broker) residentLocked(s *subscriber, sp *trace.Span) error {
	if s.learner == nil {
		return b.hydrateLocked(s, sp)
	}
	if b.bounded() {
		b.lru.touch(s)
	}
	return nil
}

// evictLocked drops a resident subscriber's learner from the heap: the
// profile's state is fully recoverable from the journal (every mutation
// was journaled before it was applied), so nothing is written. The
// subscriber stays registered — its id, delivery queue, and subscription
// handles remain valid — but it leaves the match path until rehydrated:
// indexable learners lose their index entries, brute-force learners leave
// the brute table. Caller holds s.mu.
func (b *Broker) evictLocked(s *subscriber) {
	s.learner = nil
	if s.indexed {
		b.idx.RemoveUser(s.id)
	} else {
		b.reg.dropBrute(s.id)
	}
	gone := s.lastSize
	s.lastSize = 0
	s.lastOps = core.OpCounts{}
	b.lru.drop(s)
	b.m.profileVectors.Add(float64(-gone))
	b.m.residentProfiles.Add(-1)
	b.m.profileEvictions.Inc()
	if b.opts.Log.Enabled(obs.LevelDebug) {
		b.opts.Log.Debug("pubsub: evict",
			slog.String("user", s.id),
			slog.Int("profile_vectors", gone))
	}
}

// enforceResidency evicts least-recently-used subscribers until the
// resident count is within Options.MaxResident. It must be called with no
// subscriber lock held (the victim may be the subscriber the caller just
// operated on). The pop-then-lock order keeps the LRU mutex a leaf: a
// victim that is touched between the pop and the lock is simply evicted
// anyway — rare, and it rehydrates on its next access.
func (b *Broker) enforceResidency() {
	if !b.bounded() {
		return
	}
	for b.lru.len() > b.opts.MaxResident {
		v := b.lru.popTail()
		if v == nil {
			return
		}
		v.mu.Lock()
		if !v.closed && v.learner != nil {
			b.evictLocked(v)
		}
		v.mu.Unlock()
	}
}

// SubscribeRestored registers a subscriber restored from the persistence
// layer at boot, without journaling (the journal already contains its
// subscribe record). learner names the filter algorithm; l is the
// restored learner, or nil to register the subscriber evicted — it then
// occupies no profile heap until its first feedback or introspection
// hydrates it, which is how a server with -max-resident-profiles boots a
// journal of any size in O(subscribers) stubs instead of O(events)
// replay. A nil l requires a configured Hydrator.
func (b *Broker) SubscribeRestored(id, learner string, l filter.Learner) (*Subscription, error) {
	if l == nil {
		if b.opts.Hydrator == nil {
			return nil, fmt.Errorf("pubsub: restore %q: nil learner requires a hydrator", id)
		}
		// Instantiate the algorithm once to learn whether it is indexable;
		// the probe is discarded (hydration builds the real learner).
		probe, err := filter.New(learner)
		if err != nil {
			return nil, fmt.Errorf("pubsub: restore %q: %w", id, err)
		}
		_, indexed := probe.(filter.VectorSource)
		s := &subscriber{
			id:      id,
			indexed: indexed,
			queue:   make(chan Delivery, b.opts.QueueSize),
		}
		if err := b.reg.insert(id, s, nil); err != nil {
			if err == errDuplicate {
				return nil, fmt.Errorf("pubsub: duplicate subscriber %q", id)
			}
			return nil, err
		}
		if b.opts.Log.Enabled(obs.LevelDebug) {
			b.opts.Log.Debug("pubsub: restore evicted",
				slog.String("user", id), slog.String("learner", learner))
		}
		return &Subscription{b: b, sub: s}, nil
	}
	return b.subscribe(id, l, nil)
}
