package pubsub

import (
	"sync"
	"testing"
)

// TestDeliverySequenceAndDropAccounting pins the drop-oldest policy's
// observability contract: with a queue of 2 and 5 matching publishes, the
// three oldest deliveries are discarded, the drop counter says exactly 3,
// the next sequence number says exactly 5, and the two survivors carry the
// two highest sequence numbers — so a consumer can reconcile
// received + queued + dropped == nextSeq with nothing lost silently.
func TestDeliverySequenceAndDropAccounting(t *testing.T) {
	b := New(Options{Threshold: 0.3, QueueSize: 2})
	sub, err := b.Subscribe("alice", trainedMM("cat"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, n := b.PublishVector(vec("cat", 1.0)); n != 1 {
			t.Fatalf("publish %d delivered to %d subscribers", i, n)
		}
	}
	next, dropped := sub.DeliveryStats()
	if next != 5 || dropped != 3 {
		t.Fatalf("DeliveryStats = (next %d, dropped %d), want (5, 3)", next, dropped)
	}
	var seqs []uint64
	for len(sub.Deliveries()) > 0 {
		seqs = append(seqs, (<-sub.Deliveries()).Seq)
	}
	if len(seqs) != 2 || seqs[0] != 3 || seqs[1] != 4 {
		t.Fatalf("surviving seqs = %v, want [3 4]", seqs)
	}
	if got := uint64(len(seqs)) + dropped; got != next {
		t.Fatalf("received %d + dropped %d = %d, want nextSeq %d", len(seqs), dropped, got, next)
	}
}

// TestCancelIsIdentityMatched pins the stale-handle hazard: canceling a
// Subscription whose id has since been unsubscribed and re-subscribed must
// not tear down the newer subscription.
func TestCancelIsIdentityMatched(t *testing.T) {
	b := New(Options{Threshold: 0.3, QueueSize: 4})
	stale, err := b.Subscribe("alice", trainedMM("cat"))
	if err != nil {
		t.Fatal(err)
	}
	b.Unsubscribe("alice")
	if !stale.Closed() {
		t.Fatal("unsubscribed subscription not closed")
	}
	fresh, err := b.Subscribe("alice", trainedMM("cat"))
	if err != nil {
		t.Fatal(err)
	}

	stale.Cancel() // must be a no-op: alice is a different subscriber now
	if fresh.Closed() {
		t.Fatal("canceling a stale handle closed the fresh subscription")
	}
	if _, n := b.PublishVector(vec("cat", 1.0)); n != 1 {
		t.Fatalf("delivered to %d subscribers after stale cancel, want 1", n)
	}

	fresh.Cancel()
	if !fresh.Closed() {
		t.Fatal("Cancel did not close the live subscription")
	}
	fresh.Cancel() // double-cancel is safe
	if got := b.Stats().Subscribers; got != 0 {
		t.Fatalf("%d subscribers registered after cancel, want 0", got)
	}
}

// TestConcurrentPublishDrainResubscribe churns one user through
// subscribe → drain → unsubscribe → stale-cancel while publishers hammer
// matching documents, exercising deliver-vs-close and cancel-vs-resubscribe
// interleavings. Run under -race this is the session layer's data-race
// canary; the assertions also hold without it.
func TestConcurrentPublishDrainResubscribe(t *testing.T) {
	b := New(Options{Threshold: 0.1, QueueSize: 4})
	stop := make(chan struct{})
	var pubWG sync.WaitGroup
	for w := 0; w < 2; w++ {
		pubWG.Add(1)
		go func() {
			defer pubWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
					b.PublishVector(vec("cat", 1.0))
				}
			}
		}()
	}
	var stale *Subscription
	for i := 0; i < 200; i++ {
		sub, err := b.Subscribe("alice", trainedMM("cat"))
		if err != nil {
			t.Fatal(err)
		}
		var drainWG sync.WaitGroup
		drainWG.Add(1)
		go func() {
			defer drainWG.Done()
			received := uint64(0)
			for range sub.Deliveries() {
				received++
			}
			// The channel is closed and drained: the accounting must balance
			// exactly, or a delivery was lost without being counted.
			next, dropped := sub.DeliveryStats()
			if received+dropped != next {
				t.Errorf("iter %d: received %d + dropped %d != nextSeq %d", i, received, dropped, next)
			}
		}()
		if stale != nil {
			stale.Cancel() // stale handle from the previous round: must be a no-op
		}
		b.Unsubscribe("alice")
		drainWG.Wait()
		if !sub.Closed() {
			t.Fatal("unsubscribed subscription not closed")
		}
		stale = sub
	}
	close(stop)
	pubWG.Wait()
	if got := b.Stats().Subscribers; got != 0 {
		t.Fatalf("%d subscribers left registered, want 0", got)
	}
}
