package pubsub_test

import (
	"fmt"

	"mmprofile/internal/filter"
	"mmprofile/internal/pubsub"
)

// Example walks the full dissemination loop: subscribe with keywords,
// publish pages, receive a delivery, send feedback.
func Example() {
	broker := pubsub.New(pubsub.Options{Threshold: 0.3})

	sub, err := broker.SubscribeKeywords("alice", []string{"jazz", "saxophone"})
	if err != nil {
		panic(err)
	}

	_, n := broker.Publish("<html><body>a jazz saxophone concert downtown</body></html>")
	fmt.Println("deliveries:", n)
	_, n = broker.Publish("<html><body>quarterly bond market report</body></html>")
	fmt.Println("deliveries:", n)

	d := <-sub.Deliveries()
	if err := sub.Feedback(d.Doc, filter.Relevant); err != nil {
		panic(err)
	}
	fmt.Println("profile vectors:", sub.ProfileSize())
	// Output:
	// deliveries: 1
	// deliveries: 0
	// profile vectors: 1
}
