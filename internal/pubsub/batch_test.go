package pubsub

import (
	"fmt"
	"sync"
	"testing"

	"mmprofile/internal/filter"
	"mmprofile/internal/vsm"
)

func TestPublishVectorBatch(t *testing.T) {
	b := New(Options{Threshold: 0.3, QueueSize: 64, PublishWorkers: 2})
	catSub, err := b.Subscribe("cat-fan", trainedMM("cat", "dog"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.Subscribe("trader", trainedMM("stock", "bond")); err != nil {
		t.Fatal(err)
	}

	batch := []vsm.Vector{
		vec("cat", 1.0, "dog", 1.0),      // → cat-fan
		vec("stock", 1.0, "bond", 1.0),   // → trader
		vec("weather", 1.0, "rain", 1.0), // → nobody
	}
	results := b.PublishVectorBatch(batch)
	if len(results) != len(batch) {
		t.Fatalf("got %d results for %d documents", len(results), len(batch))
	}
	wantDeliveries := []int{1, 1, 0}
	seen := map[int64]bool{}
	for i, r := range results {
		if r.Deliveries != wantDeliveries[i] {
			t.Errorf("doc %d delivered to %d subscribers, want %d", i, r.Deliveries, wantDeliveries[i])
		}
		if seen[r.Doc] {
			t.Errorf("duplicate document id %d in batch results", r.Doc)
		}
		seen[r.Doc] = true
	}
	// Results are positional: results[0] must be the cat document's id.
	select {
	case d := <-catSub.Deliveries():
		if d.Doc != results[0].Doc {
			t.Errorf("cat-fan received doc %d, want %d", d.Doc, results[0].Doc)
		}
	default:
		t.Fatal("cat-fan got no delivery")
	}

	if got := b.Stats(); got.Published != int64(len(batch)) {
		t.Errorf("Published = %d, want %d", got.Published, len(batch))
	}
	if results2 := b.PublishVectorBatch(nil); len(results2) != 0 {
		t.Errorf("empty batch returned %d results", len(results2))
	}
}

func TestPublishBatchPages(t *testing.T) {
	b := New(Options{Threshold: 0.05, QueueSize: 64})
	pages := []string{
		"the cat and the dog played in the garden",
		"stock markets rallied as bond yields fell",
		"cat videos dominate the internet",
	}
	results := b.PublishBatch(pages)
	if len(results) != len(pages) {
		t.Fatalf("got %d results for %d pages", len(results), len(pages))
	}
	for i, r := range results {
		if v, ok := b.DocumentVector(r.Doc); !ok || v.IsZero() {
			t.Errorf("page %d: document vector missing for id %d", i, r.Doc)
		}
		if c, ok := b.DocumentContent(r.Doc); b.opts.RetainContent && (!ok || c != pages[i]) {
			t.Errorf("page %d: content mismatch for id %d: %q", i, r.Doc, c)
		}
	}
}

// TestBatchMatchesSequentialPublish checks that a batch delivers exactly
// what the same documents published one at a time would.
func TestBatchMatchesSequentialPublish(t *testing.T) {
	mk := func(workers int) (*Broker, []BatchResult) {
		b := New(Options{Threshold: 0.3, QueueSize: 256, PublishWorkers: workers})
		for i := 0; i < 10; i++ {
			if _, err := b.Subscribe(fmt.Sprintf("u%d", i), trainedMM(fmt.Sprintf("topic%d", i%4))); err != nil {
				t.Fatal(err)
			}
		}
		var docs []vsm.Vector
		for i := 0; i < 20; i++ {
			docs = append(docs, vec(fmt.Sprintf("topic%d", i%4), 1.0, "common", 0.2))
		}
		return b, b.PublishVectorBatch(docs)
	}
	_, batched := mk(4)
	_, oneByOne := mk(1)
	for i := range batched {
		if batched[i].Deliveries != oneByOne[i].Deliveries {
			t.Errorf("doc %d: %d deliveries with 4 workers, %d with 1",
				i, batched[i].Deliveries, oneByOne[i].Deliveries)
		}
	}
}

// TestBrokerConcurrentStress mixes batch publishes with subscribe/feedback/
// unsubscribe churn; meaningful under -race.
func TestBrokerConcurrentStress(t *testing.T) {
	b := New(Options{Threshold: 0.2, QueueSize: 16, PublishWorkers: 2})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				var batch []vsm.Vector
				for j := 0; j < 4; j++ {
					batch = append(batch, vec(fmt.Sprintf("topic%d", (i+j)%5), 1.0))
				}
				b.PublishVectorBatch(batch)
			}
		}(g)
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				id := fmt.Sprintf("churn%d-%d", g, i)
				sub, err := b.Subscribe(id, trainedMM(fmt.Sprintf("topic%d", i%5)))
				if err != nil {
					t.Errorf("Subscribe(%s): %v", id, err)
					continue
				}
				select {
				case d := <-sub.Deliveries():
					_ = sub.Feedback(d.Doc, filter.Relevant)
				default:
				}
				if i%2 == 0 {
					b.Unsubscribe(id)
				}
			}
		}(g)
	}
	wg.Wait()
	st := b.Stats()
	if st.Published != 360 { // 3 publishers × 30 batches × 4 docs
		t.Errorf("Published = %d, want 360", st.Published)
	}
	if st.Subscribers != 30 {
		t.Errorf("Subscribers = %d, want 30", st.Subscribers)
	}
}
