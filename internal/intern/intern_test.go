package intern

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternRoundTrip(t *testing.T) {
	d := NewDict()
	id1 := d.Intern("cat")
	id2 := d.Intern("dog")
	if id1 == id2 {
		t.Fatalf("distinct terms got the same id %d", id1)
	}
	if got := d.Intern("cat"); got != id1 {
		t.Errorf("re-interning changed the id: %d != %d", got, id1)
	}
	if got := d.String(id1); got != "cat" {
		t.Errorf("String(%d) = %q, want cat", id1, got)
	}
	if got := d.String(id2); got != "dog" {
		t.Errorf("String(%d) = %q, want dog", id2, got)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
}

func TestLookupDoesNotIntern(t *testing.T) {
	d := NewDict()
	if _, ok := d.Lookup("ghost"); ok {
		t.Error("Lookup found a term that was never interned")
	}
	if d.Len() != 0 {
		t.Errorf("Lookup grew the dictionary to %d entries", d.Len())
	}
	id := d.Intern("ghost")
	got, ok := d.Lookup("ghost")
	if !ok || got != id {
		t.Errorf("Lookup(ghost) = %d,%v; want %d,true", got, ok, id)
	}
}

func TestStringUnknownID(t *testing.T) {
	d := NewDict()
	if got := d.String(12345); got != "" {
		t.Errorf("String of unknown id = %q, want empty", got)
	}
}

// TestConcurrentIntern hammers the dictionary from many goroutines over a
// shared vocabulary and checks that every term ends up with exactly one id.
// Meaningful under -race.
func TestConcurrentIntern(t *testing.T) {
	d := NewDict()
	const goroutines = 8
	const vocab = 500
	ids := make([][]uint32, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = make([]uint32, vocab)
			for i := 0; i < vocab; i++ {
				// Interleave interning with read-side traffic.
				ids[g][i] = d.Intern(fmt.Sprintf("term%03d", i))
				d.Lookup(fmt.Sprintf("term%03d", (i+7)%vocab))
				d.String(ids[g][i])
			}
		}(g)
	}
	wg.Wait()
	if d.Len() != vocab {
		t.Fatalf("Len = %d, want %d", d.Len(), vocab)
	}
	for i := 0; i < vocab; i++ {
		for g := 1; g < goroutines; g++ {
			if ids[g][i] != ids[0][i] {
				t.Fatalf("term%03d interned to both %d and %d", i, ids[0][i], ids[g][i])
			}
		}
	}
	for i := 0; i < vocab; i++ {
		want := fmt.Sprintf("term%03d", i)
		if got := d.String(ids[0][i]); got != want {
			t.Errorf("String(%d) = %q, want %q", ids[0][i], got, want)
		}
	}
}
