// Package intern provides a concurrent, sharded string↔uint32 term
// dictionary. The dissemination hot path compares terms millions of times
// per published document; interning every term once lets the inverted
// index store and compare compact integer ids instead of hashing and
// comparing strings on every posting.
//
// Ids are dense per shard and never recycled: an id, once handed out, maps
// to the same string for the lifetime of the dictionary. The vocabulary of
// a text collection is effectively bounded (stemmed word forms), so the
// dictionary only ever grows to corpus-vocabulary size.
package intern

import "sync"

const (
	shardBits = 6
	numShards = 1 << shardBits // 64 independently locked shards
	shardMask = numShards - 1

	// maxPerShard caps ids so that local<<shardBits never overflows uint32:
	// 2^26 terms per shard, ~4.3 billion total — far beyond any vocabulary.
	maxPerShard = 1 << (32 - shardBits)
)

// Dict is a concurrent string↔uint32 dictionary sharded by string hash.
// The zero value is not usable; call NewDict.
type Dict struct {
	shards [numShards]shard
}

type shard struct {
	mu   sync.RWMutex
	ids  map[string]uint32
	strs []string
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	d := &Dict{}
	for i := range d.shards {
		d.shards[i].ids = make(map[string]uint32)
	}
	return d
}

// fnv32 is the 32-bit FNV-1a hash, inlined to keep Intern/Lookup
// allocation-free.
func fnv32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// Intern returns the id of s, assigning a fresh one on first sight.
// The common already-interned case takes only a shard read lock.
func (d *Dict) Intern(s string) uint32 {
	si := fnv32(s) & shardMask
	sh := &d.shards[si]
	sh.mu.RLock()
	id, ok := sh.ids[s]
	sh.mu.RUnlock()
	if ok {
		return id
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if id, ok := sh.ids[s]; ok { // lost the race to another writer
		return id
	}
	local := uint32(len(sh.strs))
	if local >= maxPerShard {
		panic("intern: dictionary shard overflow")
	}
	id = local<<shardBits | si
	sh.ids[s] = id
	sh.strs = append(sh.strs, s)
	return id
}

// Lookup returns the id of s without interning it; ok is false when s has
// never been interned. Document-side code uses Lookup so that vocabulary
// seen only in published pages never grows the dictionary.
func (d *Dict) Lookup(s string) (uint32, bool) {
	sh := &d.shards[fnv32(s)&shardMask]
	sh.mu.RLock()
	id, ok := sh.ids[s]
	sh.mu.RUnlock()
	return id, ok
}

// String returns the term for an id, or "" for an id never handed out.
func (d *Dict) String(id uint32) string {
	sh := &d.shards[id&shardMask]
	local := int(id >> shardBits)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if local >= len(sh.strs) {
		return ""
	}
	return sh.strs[local]
}

// Len returns the number of distinct interned terms.
func (d *Dict) Len() int {
	n := 0
	for i := range d.shards {
		sh := &d.shards[i]
		sh.mu.RLock()
		n += len(sh.strs)
		sh.mu.RUnlock()
	}
	return n
}
