package sim

import (
	"math/rand"
	"testing"

	"mmprofile/internal/corpus"
	"mmprofile/internal/filter"
	"mmprofile/internal/text"
)

func testDataset(t *testing.T) *corpus.Dataset {
	t.Helper()
	cfg := corpus.DefaultConfig()
	cfg.TopCategories = 5
	cfg.SubPerTop = 4
	cfg.PagesPerSub = 2
	cfg.MinWords = 60
	cfg.MaxWords = 100
	return corpus.Generate(cfg).Vectorize(text.NewPipeline())
}

func TestUserRelevance(t *testing.T) {
	top := corpus.Category{Top: 2, Sub: -1}
	sub := corpus.Category{Top: 4, Sub: 1}
	u := NewUser(top, sub)

	// Top-level interest covers all its sub-categories.
	if !u.Relevant(corpus.Category{Top: 2, Sub: 7}) {
		t.Error("sub-category of a top-level interest not relevant")
	}
	// Second-level interest covers only itself.
	if !u.Relevant(corpus.Category{Top: 4, Sub: 1}) {
		t.Error("exact second-level interest not relevant")
	}
	if u.Relevant(corpus.Category{Top: 4, Sub: 2}) {
		t.Error("sibling of a second-level interest should not be relevant")
	}
	if u.Relevant(corpus.Category{Top: 0, Sub: 0}) {
		t.Error("unrelated category relevant")
	}
}

func TestUserFeedback(t *testing.T) {
	u := NewUser(corpus.Category{Top: 1, Sub: -1})
	in := corpus.Document{Cat: corpus.Category{Top: 1, Sub: 3}}
	out := corpus.Document{Cat: corpus.Category{Top: 2, Sub: 3}}
	if u.Feedback(in) != filter.Relevant {
		t.Error("relevant doc got negative feedback")
	}
	if u.Feedback(out) != filter.NotRelevant {
		t.Error("irrelevant doc got positive feedback")
	}
}

func TestSetInterestsReplaces(t *testing.T) {
	u := NewUser(corpus.Category{Top: 0, Sub: -1})
	u.SetInterests(corpus.Category{Top: 1, Sub: -1})
	if u.Relevant(corpus.Category{Top: 0, Sub: 0}) {
		t.Error("old interest survived SetInterests")
	}
	if !u.Relevant(corpus.Category{Top: 1, Sub: 0}) {
		t.Error("new interest not installed")
	}
	if got := len(u.Interests()); got != 1 {
		t.Errorf("Interests() length = %d", got)
	}
}

func TestRandomInterests(t *testing.T) {
	ds := testDataset(t)
	rng := rand.New(rand.NewSource(1))
	tops := RandomTopInterests(rng, ds, 3)
	if len(tops) != 3 {
		t.Fatalf("got %d top interests", len(tops))
	}
	seen := map[corpus.Category]bool{}
	for _, c := range tops {
		if c.Sub != -1 {
			t.Errorf("top interest %v has Sub set", c)
		}
		if seen[c] {
			t.Errorf("duplicate interest %v", c)
		}
		seen[c] = true
	}
	subs := RandomSubInterests(rng, ds, 5)
	if len(subs) != 5 {
		t.Fatalf("got %d sub interests", len(subs))
	}
	for _, c := range subs {
		if c.Sub < 0 {
			t.Errorf("sub interest %v is top-level", c)
		}
	}
}

func TestRandomInterestsDeterministic(t *testing.T) {
	ds := testDataset(t)
	a := RandomTopInterests(rand.New(rand.NewSource(9)), ds, 3)
	b := RandomTopInterests(rand.New(rand.NewSource(9)), ds, 3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different interests")
		}
	}
}

func TestRandomInterestsPanicsWhenPoolTooSmall(t *testing.T) {
	ds := testDataset(t)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	RandomTopInterests(rand.New(rand.NewSource(1)), ds, 99)
}

func TestStreamPermutationAndReplacement(t *testing.T) {
	ds := testDataset(t)
	rng := rand.New(rand.NewSource(2))
	short := Stream(rng, ds.Docs, 10)
	if len(short) != 10 {
		t.Fatalf("stream length %d", len(short))
	}
	ids := map[int]bool{}
	for _, d := range short {
		if ids[d.ID] {
			t.Error("permutation stream repeated a document")
		}
		ids[d.ID] = true
	}
	long := Stream(rng, ds.Docs, len(ds.Docs)*3)
	if len(long) != len(ds.Docs)*3 {
		t.Fatalf("long stream length %d", len(long))
	}
	// The first len(pool) entries are still a permutation.
	ids = map[int]bool{}
	for _, d := range long[:len(ds.Docs)] {
		if ids[d.ID] {
			t.Error("long stream prefix repeated a document")
		}
		ids[d.ID] = true
	}
}

func TestShiftScenarios(t *testing.T) {
	ds := testDataset(t)
	rng := rand.New(rand.NewSource(3))

	p := PartialShift(rng, ds)
	if len(p.Before) != 2 || len(p.After) != 2 {
		t.Errorf("partial shift sizes: %v -> %v", p.Before, p.After)
	}
	if p.Before[0] != p.After[0] {
		t.Error("partial shift did not keep the first interest")
	}
	if p.Before[1] == p.After[1] {
		t.Error("partial shift did not change the second interest")
	}

	c := CompleteShift(rng, ds)
	for _, b := range c.Before {
		for _, a := range c.After {
			if a == b {
				t.Error("complete shift kept an interest")
			}
		}
	}

	a := AddInterest(rng, ds)
	if len(a.Before) != 1 || len(a.After) != 2 || a.Before[0] != a.After[0] {
		t.Errorf("add scenario: %v -> %v", a.Before, a.After)
	}

	d := DeleteInterest(rng, ds)
	if len(d.Before) != 2 || len(d.After) != 1 || d.Before[0] != d.After[0] {
		t.Errorf("delete scenario: %v -> %v", d.Before, d.After)
	}
}

func TestNoisyUserFlipRate(t *testing.T) {
	ds := testDataset(t)
	u := NewUser(corpus.Category{Top: 0, Sub: -1})
	rng := rand.New(rand.NewSource(5))
	noisy := NewNoisyUser(u, 0.25, rng)
	flips := 0
	const trials = 4000
	for i := 0; i < trials; i++ {
		d := ds.Docs[i%len(ds.Docs)]
		if noisy.Feedback(d) != u.Feedback(d) {
			flips++
		}
	}
	rate := float64(flips) / trials
	if rate < 0.21 || rate > 0.29 {
		t.Errorf("empirical flip rate %.3f, want ≈ 0.25", rate)
	}
	// Ground truth is NOT corrupted.
	if noisy.Relevant(corpus.Category{Top: 0, Sub: 1}) != u.Relevant(corpus.Category{Top: 0, Sub: 1}) {
		t.Error("Relevant corrupted by noise wrapper")
	}
	// Zero noise is transparent.
	clean := NewNoisyUser(u, 0, rng)
	for i := 0; i < 50; i++ {
		d := ds.Docs[i%len(ds.Docs)]
		if clean.Feedback(d) != u.Feedback(d) {
			t.Fatal("zero-noise wrapper flipped a judgment")
		}
	}
}

func TestShiftApply(t *testing.T) {
	ds := testDataset(t)
	s := PartialShift(rand.New(rand.NewSource(4)), ds)
	u := NewUser()
	s.Apply(u, 0, 200)
	if !u.Relevant(corpus.Category{Top: s.Before[1].Top, Sub: 0}) {
		t.Error("before-phase interests not installed at step 0")
	}
	s.Apply(u, 100, 200) // mid-stream: no change
	if !u.Relevant(corpus.Category{Top: s.Before[1].Top, Sub: 0}) {
		t.Error("interests changed before the shift point")
	}
	s.Apply(u, 200, 200)
	if u.Relevant(corpus.Category{Top: s.Before[1].Top, Sub: 0}) {
		t.Error("dropped interest still relevant after shift")
	}
	if !u.Relevant(corpus.Category{Top: s.After[1].Top, Sub: 0}) {
		t.Error("new interest not installed after shift")
	}
}
