package sim

import (
	"math/rand"

	"mmprofile/internal/corpus"
	"mmprofile/internal/filter"
)

// NoisyUser wraps a User, flipping each judgment independently with
// probability FlipRate — careless clicks, accidental dismissals, shared
// terminals. Ground-truth relevance (used by the evaluator to score the
// frozen profile) is NOT corrupted, so effectiveness is still measured
// against what the user actually wants.
type NoisyUser struct {
	*User
	// FlipRate is the probability a judgment is inverted (0 ≤ p ≤ 1).
	FlipRate float64

	rng *rand.Rand
}

// NewNoisyUser wraps u with the given flip probability and noise source.
func NewNoisyUser(u *User, flipRate float64, rng *rand.Rand) *NoisyUser {
	return &NoisyUser{User: u, FlipRate: flipRate, rng: rng}
}

// Feedback implements Oracle with corrupted judgments.
func (n *NoisyUser) Feedback(d corpus.Document) filter.Feedback {
	fd := n.User.Feedback(d)
	if n.rng.Float64() < n.FlipRate {
		return -fd
	}
	return fd
}
