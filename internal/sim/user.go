// Package sim simulates users for the paper's evaluation methodology
// (Section 4.2): a simulated user holds a synthetic profile — a set of
// Yahoo!-style categories — and judges a document relevant exactly when its
// category (or its category's top-level ancestor) is in that set. The
// package also provides the interest-shift scenarios of Section 5.5 and
// training-stream construction.
package sim

import (
	"fmt"
	"math/rand"
	"sort"

	"mmprofile/internal/corpus"
	"mmprofile/internal/filter"
)

// Oracle is what the evaluator needs from a simulated user: judgments for
// the training stream and ground-truth relevance for scoring the test set.
// The two are separated so that noisy-feedback models can corrupt the
// judgments while evaluation stays against the truth.
type Oracle interface {
	Feedback(d corpus.Document) filter.Feedback
	Relevant(cat corpus.Category) bool
}

// User is a simulated user with a mutable synthetic profile. Not safe for
// concurrent use.
type User struct {
	interests map[corpus.Category]bool
}

// NewUser creates a user interested in the given categories. Top-level
// interests (Sub == −1) cover every second-level category beneath them.
func NewUser(cats ...corpus.Category) *User {
	u := &User{interests: map[corpus.Category]bool{}}
	u.SetInterests(cats...)
	return u
}

// SetInterests replaces the synthetic profile, the primitive behind every
// interest-shift scenario.
func (u *User) SetInterests(cats ...corpus.Category) {
	u.interests = make(map[corpus.Category]bool, len(cats))
	for _, c := range cats {
		u.interests[c] = true
	}
}

// Interests returns the synthetic profile in sorted order.
func (u *User) Interests() []corpus.Category {
	out := make([]corpus.Category, 0, len(u.interests))
	for c := range u.interests {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Top != out[j].Top {
			return out[i].Top < out[j].Top
		}
		return out[i].Sub < out[j].Sub
	})
	return out
}

// Relevant reports whether a document of the given (second-level) category
// is relevant to the user: cat_d ∈ SP, directly or via its top-level
// ancestor.
func (u *User) Relevant(cat corpus.Category) bool {
	return u.interests[cat] || u.interests[cat.TopLevel()]
}

// Feedback returns the user's judgment for a document: +1 if relevant,
// −1 otherwise (the f_d of Section 4.2).
func (u *User) Feedback(d corpus.Document) filter.Feedback {
	if u.Relevant(d.Cat) {
		return filter.Relevant
	}
	return filter.NotRelevant
}

// String renders the synthetic profile in the paper's notation.
func (u *User) String() string {
	return fmt.Sprintf("SP%v", u.Interests())
}

// RandomTopInterests draws n distinct top-level categories from those
// present in ds, the paper's top-level workloads (n ∈ {1,2,3} covers
// 10–30% of the collection).
func RandomTopInterests(rng *rand.Rand, ds *corpus.Dataset, n int) []corpus.Category {
	return sample(rng, ds.TopCategories(), n)
}

// RandomSubInterests draws n distinct second-level categories, the
// paper's second-level workloads (n ∈ {10,20,30} covers 10–30%).
func RandomSubInterests(rng *rand.Rand, ds *corpus.Dataset, n int) []corpus.Category {
	return sample(rng, ds.SubCategories(), n)
}

func sample(rng *rand.Rand, pool []corpus.Category, n int) []corpus.Category {
	if n > len(pool) {
		panic(fmt.Sprintf("sim: sampling %d interests from %d categories", n, len(pool)))
	}
	pool = append([]corpus.Category(nil), pool...)
	sort.Slice(pool, func(i, j int) bool {
		if pool[i].Top != pool[j].Top {
			return pool[i].Top < pool[j].Top
		}
		return pool[i].Sub < pool[j].Sub
	})
	rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	return pool[:n]
}

// Stream returns a training stream of n documents drawn from the pool:
// a random permutation when n ≤ len(pool), and sampling with replacement
// beyond that (the shift experiments present more documents than the
// training set holds; see DESIGN.md).
func Stream(rng *rand.Rand, pool []corpus.Document, n int) []corpus.Document {
	perm := append([]corpus.Document(nil), pool...)
	rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	if n <= len(perm) {
		return perm[:n]
	}
	out := make([]corpus.Document, 0, n)
	out = append(out, perm...)
	for len(out) < n {
		out = append(out, pool[rng.Intn(len(pool))])
	}
	return out
}
