package sim

import (
	"math/rand"

	"mmprofile/internal/corpus"
)

// Shift is one interest-change scenario of Section 5.5: the synthetic
// profile is Before until the shift point and After from then on.
type Shift struct {
	Name   string
	Before []corpus.Category
	After  []corpus.Category
}

// PartialShift builds the Figure-8 scenario: SP = {Ci, Cj} → {Ci, Ck} —
// one of two top-level interests is replaced, the other kept.
func PartialShift(rng *rand.Rand, ds *corpus.Dataset) Shift {
	cats := RandomTopInterests(rng, ds, 3)
	return Shift{
		Name:   "partial",
		Before: []corpus.Category{cats[0], cats[1]},
		After:  []corpus.Category{cats[0], cats[2]},
	}
}

// CompleteShift builds the Figure-9 scenario: SP = {Ci, Cj} → {Ck, Cl} —
// every previous judgment becomes invalid.
func CompleteShift(rng *rand.Rand, ds *corpus.Dataset) Shift {
	cats := RandomTopInterests(rng, ds, 4)
	return Shift{
		Name:   "complete",
		Before: []corpus.Category{cats[0], cats[1]},
		After:  []corpus.Category{cats[2], cats[3]},
	}
}

// AddInterest builds the Figure-10 scenario: SP = {Ci} → {Ci, Cj} — a new
// interest appears, old judgments stay valid.
func AddInterest(rng *rand.Rand, ds *corpus.Dataset) Shift {
	cats := RandomTopInterests(rng, ds, 2)
	return Shift{
		Name:   "add",
		Before: []corpus.Category{cats[0]},
		After:  []corpus.Category{cats[0], cats[1]},
	}
}

// DeleteInterest builds the Figure-11 scenario: SP = {Ci, Cj} → {Ci} — an
// interest is dropped.
func DeleteInterest(rng *rand.Rand, ds *corpus.Dataset) Shift {
	cats := RandomTopInterests(rng, ds, 2)
	return Shift{
		Name:   "delete",
		Before: []corpus.Category{cats[0], cats[1]},
		After:  []corpus.Category{cats[0]},
	}
}

// Apply installs the scenario's phase on the user: Before when step is
// below shiftAt, After from shiftAt onward. It is idempotent per phase and
// intended to be called from a learning curve's per-step hook.
func (s Shift) Apply(u *User, step, shiftAt int) {
	if step == 0 {
		u.SetInterests(s.Before...)
	}
	if step == shiftAt {
		u.SetInterests(s.After...)
	}
}
