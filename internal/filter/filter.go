// Package filter defines the interface every profile-learning algorithm in
// this repository implements, so that the evaluator, the benchmark harness,
// and the dissemination engine can treat the paper's MM algorithm and its
// baselines (RI, RG, batch Rocchio, NRN) uniformly.
package filter

import (
	"fmt"
	"sort"
	"sync"

	"mmprofile/internal/vsm"
)

// Feedback is a binary relevance judgment, the f_d of the paper.
type Feedback int

const (
	// Relevant is positive feedback (f_d = +1).
	Relevant Feedback = 1
	// NotRelevant is negative feedback (f_d = −1).
	NotRelevant Feedback = -1
)

// String implements fmt.Stringer.
func (f Feedback) String() string {
	switch f {
	case Relevant:
		return "relevant"
	case NotRelevant:
		return "not-relevant"
	default:
		return fmt.Sprintf("Feedback(%d)", int(f))
	}
}

// Learner is an incremental profile learner: it consumes a stream of
// (document vector, feedback) pairs and scores unseen documents by
// predicted relevance. Learners are not safe for concurrent use; callers
// that share one across goroutines must serialize access (pubsub.Broker
// does).
type Learner interface {
	// Name identifies the algorithm in reports ("MM", "RI", "RG", ...).
	Name() string
	// Observe incorporates one relevance judgment into the profile.
	Observe(v vsm.Vector, fd Feedback)
	// Score returns the predicted relevance of a document, higher meaning
	// more relevant. Score does not modify the profile, so a "frozen"
	// profile in the paper's sense is simply one that is no longer given
	// judgments.
	Score(v vsm.Vector) float64
	// ProfileSize returns the number of vectors representing the profile,
	// the storage metric of the paper's Figure 7.
	ProfileSize() int
	// Reset discards all learned state.
	Reset()
}

// VectorSource is implemented by learners whose profile state is a set of
// unit-normalized term vectors. The dissemination engine registers these
// vectors in its inverted index so that matching a document against all
// subscribed profiles walks posting lists instead of every profile.
type VectorSource interface {
	// ProfileVectors returns copies of the profile's current vectors, each
	// unit-normalized.
	ProfileVectors() []vsm.Vector
}

// Factory constructs a fresh learner with algorithm-default parameters.
type Factory func() Learner

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register adds a named learner constructor; it panics on duplicates, which
// are always programming errors.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("filter: duplicate learner %q", name))
	}
	registry[name] = f
}

// New constructs a registered learner by name.
func New(name string) (Learner, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("filter: unknown learner %q (known: %v)", name, Names())
	}
	return f(), nil
}

// Names lists registered learners in sorted order.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
