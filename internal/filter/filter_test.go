package filter

import (
	"strings"
	"testing"

	"mmprofile/internal/vsm"
)

func TestFeedbackString(t *testing.T) {
	if Relevant.String() != "relevant" || NotRelevant.String() != "not-relevant" {
		t.Errorf("Feedback strings: %v %v", Relevant, NotRelevant)
	}
	if got := Feedback(7).String(); !strings.Contains(got, "7") {
		t.Errorf("unknown feedback string: %q", got)
	}
}

type stub struct{}

func (stub) Name() string                 { return "stub" }
func (stub) Observe(vsm.Vector, Feedback) {}
func (stub) Score(vsm.Vector) float64     { return 0 }
func (stub) ProfileSize() int             { return 0 }
func (stub) Reset()                       {}

func TestRegistry(t *testing.T) {
	Register("stub-test", func() Learner { return stub{} })
	l, err := New("stub-test")
	if err != nil {
		t.Fatal(err)
	}
	if l.Name() != "stub" {
		t.Errorf("Name = %q", l.Name())
	}
	found := false
	for _, n := range Names() {
		if n == "stub-test" {
			found = true
		}
	}
	if !found {
		t.Errorf("Names() missing stub-test: %v", Names())
	}
	if _, err := New("never-registered"); err == nil {
		t.Error("unknown learner did not error")
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	Register("dup-test", func() Learner { return stub{} })
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	Register("dup-test", func() Learner { return stub{} })
}
