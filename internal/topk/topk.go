// Package topk bounds the cardinality problem in attribution: "which
// subscriber is dropping", "which term is expensive", "which WAL lane is
// hot" are all top-K-by-weight questions over key spaces (users, terms)
// that are unbounded, while the answer that matters is always the heavy
// head of a Zipf-skewed distribution. A space-saving (stream-summary)
// sketch answers them in fixed memory with a deterministic error bound.
//
// The sketch keeps at most C (key, count, err) entries. Offering weight w
// to a tracked key adds w to its count. Offering a new key when the table
// is full evicts the minimum-count entry m and installs the new key with
// count = m.count + w and err = m.count — the classic space-saving
// takeover. The invariants that follow (Metwally et al., 2005):
//
//	count - err ≤ true ≤ count        (per entry)
//	err ≤ min(table) ≤ W / C          (W = total offered weight)
//
// so every reported count is an overestimate by at most its own recorded
// err, and err itself is bounded by W/C. Any key whose true weight exceeds
// W/C is guaranteed to be present.
//
// Writes are striped: a caller-supplied hash routes each key to one of S
// independent sub-sketches, so concurrent Offer calls from different
// publish workers contend only when their keys collide on a stripe. Each
// stripe owns a disjoint keyspace, which keeps Snapshot a concatenation
// (no cross-stripe merge of the same key) at the cost of the per-entry
// bound holding with the stripe's own W_s/C_s. Offer is O(log C) worst
// case (a heap fix on a fixed-capacity heap) and allocates nothing in
// steady state: the entry slab, heap, and map are all pre-sized, and the
// evict path deletes a map key before inserting one, so the map's bucket
// population never grows past capacity.
package topk

import (
	"sort"
	"sync"
)

// Entry is one reported heavy hitter. Count overestimates the key's true
// offered weight by at most Err: Count-Err ≤ true ≤ Count.
type Entry struct {
	Key   string  `json:"key"`
	Count float64 `json:"count"`
	Err   float64 `json:"err"`
}

// Snapshot is one dimension's current state: the top entries by count
// plus the bookkeeping needed to interpret them. Epsilon is the worst
// per-stripe W_s/C_s bound — any key with true weight above Epsilon is
// guaranteed to appear in the (full, k = capacity) table.
type Snapshot struct {
	Name     string  `json:"name"`
	Help     string  `json:"help,omitempty"`
	Capacity int     `json:"capacity"`
	Tracked  int     `json:"tracked"`
	Total    float64 `json:"total_weight"`
	Epsilon  float64 `json:"epsilon"`
	Entries  []Entry `json:"entries"`
}

// Dimension is the registry's view of one sketch: enough to enumerate,
// snapshot, and rate-sample it without knowing its key type.
type Dimension interface {
	Name() string
	Help() string
	// Snapshot reports the top k entries (k ≤ 0 means all tracked).
	Snapshot(k int) Snapshot
	// Total returns the cumulative offered weight; monotone, suitable as
	// a windowed-rate counter source.
	Total() float64
}

// slot is one resident entry inside a stripe. hpos tracks its position in
// the stripe's min-heap so count changes can fix the heap in O(log C).
type slot[K comparable] struct {
	key   K
	count float64
	err   float64
	hpos  int32
}

// stripe is one independent sub-sketch. pad spaces stripes a cache line
// apart so uncontended Offers on different stripes don't false-share.
type stripe[K comparable] struct {
	mu    sync.Mutex
	w     float64
	slots []slot[K]
	pos   map[K]int32
	heap  []int32 // slot indexes, min-heap ordered by count
	_     [24]byte
}

// Sketch is a striped space-saving sketch over keys of type K. The zero
// value is not usable; construct with New. A nil *Sketch is a no-op on
// Offer, so attribution points can hold one unconditionally.
type Sketch[K comparable] struct {
	name     string
	help     string
	capacity int // total across stripes
	hash     func(K) uint32
	format   func(K) string
	mask     uint32
	stripes  []stripe[K]
}

// New builds a sketch tracking at most capacity entries in total, split
// over stripes sub-sketches (0 picks the default of 8; capacity is rounded
// up to a multiple of the stripe count, minimum 1 per stripe). hash routes
// keys to stripes — it only needs to spread keys, not be cryptographic —
// and format renders a key for snapshots (called only at snapshot time, so
// expensive lookups like term-id → string stay off the hot path).
func New[K comparable](name, help string, capacity, stripes int, hash func(K) uint32, format func(K) string) *Sketch[K] {
	if stripes <= 0 {
		stripes = 8
	}
	// Round stripes to a power of two so routing is a mask, not a mod.
	n := 1
	for n < stripes {
		n <<= 1
	}
	stripes = n
	per := (capacity + stripes - 1) / stripes
	if per < 1 {
		per = 1
	}
	s := &Sketch[K]{
		name:     name,
		help:     help,
		capacity: per * stripes,
		hash:     hash,
		format:   format,
		mask:     uint32(stripes - 1),
		stripes:  make([]stripe[K], stripes),
	}
	for i := range s.stripes {
		st := &s.stripes[i]
		st.slots = make([]slot[K], 0, per)
		st.pos = make(map[K]int32, per)
		st.heap = make([]int32, 0, per)
	}
	return s
}

// Offer adds weight w to key. Non-positive weights are ignored. Safe for
// concurrent use; a nil receiver is a no-op.
func (s *Sketch[K]) Offer(key K, w float64) {
	if s == nil || w <= 0 {
		return
	}
	st := &s.stripes[s.hash(key)&s.mask]
	st.mu.Lock()
	st.w += w
	if i, ok := st.pos[key]; ok {
		st.slots[i].count += w
		st.siftDown(int(st.slots[i].hpos))
	} else if len(st.slots) < cap(st.slots) {
		i := int32(len(st.slots))
		st.slots = append(st.slots, slot[K]{key: key, count: w})
		st.pos[key] = i
		st.heap = append(st.heap, i)
		st.slots[i].hpos = int32(len(st.heap) - 1)
		st.siftUp(len(st.heap) - 1)
	} else {
		// Space-saving takeover: the minimum-count entry surrenders its
		// slot; its count becomes the newcomer's error bound.
		vi := st.heap[0]
		v := &st.slots[vi]
		delete(st.pos, v.key)
		v.err = v.count
		v.count += w
		v.key = key
		st.pos[key] = vi
		st.siftDown(0)
	}
	st.mu.Unlock()
}

// siftDown restores the min-heap below heap position hp after the count
// at hp grew.
func (st *stripe[K]) siftDown(hp int) {
	n := len(st.heap)
	for {
		l, r := 2*hp+1, 2*hp+2
		min := hp
		if l < n && st.slots[st.heap[l]].count < st.slots[st.heap[min]].count {
			min = l
		}
		if r < n && st.slots[st.heap[r]].count < st.slots[st.heap[min]].count {
			min = r
		}
		if min == hp {
			return
		}
		st.swap(hp, min)
		hp = min
	}
}

// siftUp restores the min-heap above heap position hp after an insert.
func (st *stripe[K]) siftUp(hp int) {
	for hp > 0 {
		parent := (hp - 1) / 2
		if st.slots[st.heap[parent]].count <= st.slots[st.heap[hp]].count {
			return
		}
		st.swap(hp, parent)
		hp = parent
	}
}

func (st *stripe[K]) swap(a, b int) {
	st.heap[a], st.heap[b] = st.heap[b], st.heap[a]
	st.slots[st.heap[a]].hpos = int32(a)
	st.slots[st.heap[b]].hpos = int32(b)
}

// Name implements Dimension.
func (s *Sketch[K]) Name() string { return s.name }

// Help implements Dimension.
func (s *Sketch[K]) Help() string { return s.help }

// Total returns the cumulative weight offered across all stripes.
func (s *Sketch[K]) Total() float64 {
	if s == nil {
		return 0
	}
	var w float64
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		w += st.w
		st.mu.Unlock()
	}
	return w
}

// Snapshot reports the top k entries by count (k ≤ 0 means all tracked),
// sorted by descending count with key as the tiebreak.
func (s *Sketch[K]) Snapshot(k int) Snapshot {
	if s == nil {
		return Snapshot{}
	}
	snap := Snapshot{Name: s.name, Help: s.help, Capacity: s.capacity}
	all := make([]Entry, 0, s.capacity)
	for i := range s.stripes {
		st := &s.stripes[i]
		st.mu.Lock()
		snap.Total += st.w
		per := float64(cap(st.slots))
		if eps := st.w / per; eps > snap.Epsilon {
			snap.Epsilon = eps
		}
		for j := range st.slots {
			sl := &st.slots[j]
			all = append(all, Entry{Key: s.format(sl.key), Count: sl.count, Err: sl.err})
		}
		st.mu.Unlock()
	}
	snap.Tracked = len(all)
	sort.Slice(all, func(a, b int) bool {
		if all[a].Count != all[b].Count {
			return all[a].Count > all[b].Count
		}
		return all[a].Key < all[b].Key
	})
	if k > 0 && len(all) > k {
		all = all[:k]
	}
	snap.Entries = all
	return snap
}

// HashString is an FNV-1a stripe router for string keys.
func HashString(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// HashU32 is a Fibonacci-multiplier stripe router for integer keys (term
// ids are dense and sequential; multiplication spreads them).
func HashU32(x uint32) uint32 {
	return (x * 2654435761) >> 16
}

// FormatString is the identity key formatter for string-keyed sketches.
func FormatString(s string) string { return s }

// Registry names a set of dimensions so the status surface (/topz, the
// flight recorder, mmclient top) can enumerate them uniformly. Register
// order is presentation order. A nil *Registry is a no-op everywhere.
type Registry struct {
	mu    sync.RWMutex
	order []string
	dims  map[string]Dimension
}

// NewRegistry builds an empty dimension registry.
func NewRegistry() *Registry {
	return &Registry{dims: make(map[string]Dimension)}
}

// Register adds d under its name. Re-registering a name replaces the
// previous dimension (last wins) without changing its position.
func (r *Registry) Register(d Dimension) {
	if r == nil || d == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.dims[d.Name()]; !ok {
		r.order = append(r.order, d.Name())
	}
	r.dims[d.Name()] = d
}

// Dimensions returns the registered dimensions in registration order.
func (r *Registry) Dimensions() []Dimension {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Dimension, 0, len(r.order))
	for _, name := range r.order {
		out = append(out, r.dims[name])
	}
	return out
}

// Find returns the dimension registered under name.
func (r *Registry) Find(name string) (Dimension, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	d, ok := r.dims[name]
	return d, ok
}

// Snapshot snapshots every dimension with the same k, in order.
func (r *Registry) Snapshot(k int) []Snapshot {
	if r == nil {
		return nil
	}
	dims := r.Dimensions()
	out := make([]Snapshot, 0, len(dims))
	for _, d := range dims {
		out = append(out, d.Snapshot(k))
	}
	return out
}
