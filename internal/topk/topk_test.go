package topk

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// oneStripe forces every key into stripe 0 so the per-stripe bound is the
// whole sketch's bound and the property checks are exact.
func oneStripe(string) uint32 { return 0 }

// TestSpaceSavingErrorBound drives adversarial Zipf streams through a
// small sketch and checks the space-saving invariants against the exact
// counts: every reported count overestimates by at most its recorded err,
// and err never exceeds W/capacity.
func TestSpaceSavingErrorBound(t *testing.T) {
	for _, zs := range []float64{1.01, 1.3, 2.0} {
		t.Run(fmt.Sprintf("zipf_s=%v", zs), func(t *testing.T) {
			const capacity = 64
			sk := New[string]("test", "", capacity, 1, oneStripe, FormatString)
			rng := rand.New(rand.NewSource(42))
			zipf := rand.NewZipf(rng, zs, 1, 100_000)
			truth := make(map[string]float64)
			var w float64
			for i := 0; i < 200_000; i++ {
				key := fmt.Sprintf("k%d", zipf.Uint64())
				// Adversarial rotation: every 1000th offer goes to a
				// never-repeated key, forcing constant evictions.
				if i%1000 == 999 {
					key = fmt.Sprintf("cold-%d", i)
				}
				weight := float64(1 + i%3)
				sk.Offer(key, weight)
				truth[key] += weight
				w += weight
			}
			snap := sk.Snapshot(0)
			if snap.Total != w {
				t.Fatalf("total weight: got %v want %v", snap.Total, w)
			}
			eps := w / capacity
			if snap.Epsilon != eps {
				t.Fatalf("epsilon: got %v want %v", snap.Epsilon, eps)
			}
			if snap.Tracked != capacity {
				t.Fatalf("tracked: got %d want %d (stream has far more keys)", snap.Tracked, capacity)
			}
			for _, e := range snap.Entries {
				tr := truth[e.Key]
				if e.Count < tr {
					t.Errorf("key %s: count %v underestimates true %v", e.Key, e.Count, tr)
				}
				if e.Count-tr > e.Err {
					t.Errorf("key %s: overestimate %v exceeds recorded err %v", e.Key, e.Count-tr, e.Err)
				}
				if e.Err > eps {
					t.Errorf("key %s: err %v exceeds epsilon %v", e.Key, e.Err, eps)
				}
			}
			// Guarantee: any key whose true weight exceeds W/C must be
			// tracked (it can never have been the minimum when evicted).
			tracked := make(map[string]bool, len(snap.Entries))
			for _, e := range snap.Entries {
				tracked[e.Key] = true
			}
			for key, tr := range truth {
				if tr > eps && !tracked[key] {
					t.Errorf("key %s: true weight %v > epsilon %v but not tracked", key, tr, eps)
				}
			}
		})
	}
}

// TestSnapshotOrderAndK pins the snapshot contract: descending count,
// key tiebreak, k-truncation.
func TestSnapshotOrderAndK(t *testing.T) {
	sk := New[string]("test", "", 8, 1, oneStripe, FormatString)
	sk.Offer("b", 5)
	sk.Offer("a", 5)
	sk.Offer("c", 9)
	snap := sk.Snapshot(2)
	if len(snap.Entries) != 2 {
		t.Fatalf("k=2 returned %d entries", len(snap.Entries))
	}
	if snap.Entries[0].Key != "c" || snap.Entries[1].Key != "a" {
		t.Fatalf("order: got %v", snap.Entries)
	}
	if snap.Tracked != 3 {
		t.Fatalf("tracked: got %d want 3", snap.Tracked)
	}
}

// TestConcurrentOfferSnapshot is the -race stress: writers hammer Offer
// across stripes while readers snapshot; total weight must reconcile.
func TestConcurrentOfferSnapshot(t *testing.T) {
	sk := New[uint32]("test", "", 256, 8, HashU32, func(k uint32) string { return fmt.Sprintf("k%d", k) })
	const writers = 8
	const perWriter = 20_000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					sk.Snapshot(10)
					sk.Total()
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			zipf := rand.NewZipf(rng, 1.2, 1, 10_000)
			for i := 0; i < perWriter; i++ {
				sk.Offer(uint32(zipf.Uint64()), 1)
			}
		}(int64(w))
	}
	// Wait for the writers (the first `writers` goroutines added after the
	// readers), then release the readers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Writers finish when total weight reaches the expected sum.
	for sk.Total() < float64(writers*perWriter) {
	}
	close(stop)
	<-done
	if got := sk.Total(); got != float64(writers*perWriter) {
		t.Fatalf("total weight: got %v want %v", got, writers*perWriter)
	}
}

// TestOfferSteadyStateAllocs pins the zero-allocation contract for the
// hot path: once a key is resident — and on the eviction path too — Offer
// must not allocate.
func TestOfferSteadyStateAllocs(t *testing.T) {
	sk := New[string]("test", "", 32, 1, oneStripe, FormatString)
	keys := make([]string, 64) // 2x capacity: half the offers evict
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%03d", i)
		sk.Offer(keys[i], 1)
	}
	var i int
	allocs := testing.AllocsPerRun(5000, func() {
		sk.Offer(keys[i%len(keys)], 1)
		i++
	})
	if allocs != 0 {
		t.Fatalf("Offer allocates %.1f times per call in steady state, want 0", allocs)
	}
}

// TestRegistry covers ordering, replacement, and lookup.
func TestRegistry(t *testing.T) {
	reg := NewRegistry()
	a := New[string]("a", "first", 8, 1, oneStripe, FormatString)
	b := New[string]("b", "second", 8, 1, oneStripe, FormatString)
	reg.Register(a)
	reg.Register(b)
	a.Offer("x", 1)
	dims := reg.Dimensions()
	if len(dims) != 2 || dims[0].Name() != "a" || dims[1].Name() != "b" {
		t.Fatalf("dimensions: %v", dims)
	}
	if d, ok := reg.Find("a"); !ok || d.Total() != 1 {
		t.Fatalf("find a: %v %v", d, ok)
	}
	snaps := reg.Snapshot(5)
	if len(snaps) != 2 || snaps[0].Name != "a" {
		t.Fatalf("snapshot: %v", snaps)
	}
	// nil registry and nil sketch are no-ops
	var nilReg *Registry
	nilReg.Register(a)
	if nilReg.Snapshot(1) != nil {
		t.Fatal("nil registry snapshot should be nil")
	}
	var nilSk *Sketch[string]
	nilSk.Offer("x", 1)
	if nilSk.Total() != 0 {
		t.Fatal("nil sketch total should be 0")
	}
}
