package store

import (
	"testing"

	"mmprofile/internal/filter"
	"mmprofile/internal/metrics"
)

func TestStoreMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	s, err := Open(t.TempDir(), Options{Durable: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	if err := s.AppendSubscribe("alice", "MM", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFeedback("alice", vec("cat", 1.0), filter.Relevant); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendSubscribe("bob", "MM", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(1); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap["mm_store_appends_total"].(int64); got != 3 {
		t.Errorf("appends = %d, want 3", got)
	}
	// Each sequential durable append leads its own group-commit batch (3
	// fsyncs); the explicit Sync finds everything durable and issues none;
	// the checkpoint fsyncs each of the two dirty lanes' outgoing logs
	// ("alice" and "bob" hash apart under the default lane count).
	if got := snap["mm_store_fsyncs_total"].(int64); got != 5 {
		t.Errorf("fsyncs = %d, want 5", got)
	}
	if got := snap["mm_store_group_commit_batches_total"].(int64); got != 3 {
		t.Errorf("group-commit batches = %d, want 3", got)
	}
	if got := snap["mm_store_group_commit_records_total"].(int64); got != 3 {
		t.Errorf("group-commit records = %d, want 3", got)
	}
	if got := snap["mm_store_checkpoints_total"].(int64); got != 1 {
		t.Errorf("checkpoints = %d, want 1", got)
	}
	if got := snap["mm_store_checkpoint_bytes"].(float64); got <= 0 {
		t.Errorf("checkpoint bytes = %v, want > 0", got)
	}
	if got := snap["mm_store_lanes"].(float64); got != DefaultLanes {
		t.Errorf("lanes gauge = %v, want %d", got, DefaultLanes)
	}
	if got := snap["mm_store_checkpoint_lanes_rewritten_total"].(int64); got != 2 {
		t.Errorf("lanes rewritten = %d, want 2", got)
	}
	// The checkpoint drained both dirty sets.
	if got := snap["mm_store_dirty_profiles"].(float64); got != 0 {
		t.Errorf("dirty profiles gauge = %v, want 0", got)
	}
	for _, name := range []string{"mm_store_append_seconds", "mm_store_fsync_seconds", "mm_store_checkpoint_seconds"} {
		h := snap[name].(metrics.HistogramSnapshot)
		if h.Count == 0 {
			t.Errorf("%s has no observations", name)
		}
	}
}

// TestStoreMetricsOptional pins that a store without a registry records
// nothing and never panics (all instruments are nil no-ops).
func TestStoreMetricsOptional(t *testing.T) {
	s := openStore(t, t.TempDir())
	if err := s.AppendSubscribe("alice", "MM", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFeedback("alice", vec("cat", 1.0), filter.Relevant); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.RestoreUser("alice"); err != nil {
		t.Fatal(err)
	}
}
