package store

// The crash matrix: run a fixed Subscribe/Feedback/Checkpoint/Sync
// workload against a two-lane store on the simulated filesystem, kill the
// machine at every single syscall boundary (faultfs.CrashAt tears the
// in-flight write), reboot, reopen, and require that Load+Restore
// succeeds and yields exactly a prefix of the workload — never shorter
// than what durability was acknowledged for, never a panic, never an
// error, and always appendable afterwards. This is the test that proves
// the torn-tail repair, the segment/manifest rename ordering in
// Checkpoint (including crashes between a lane's fsync and the manifest
// rename), and the group-commit ack semantics all at once.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"testing"

	"mmprofile/internal/core"
	"mmprofile/internal/faultfs"
	"mmprofile/internal/filter"
	"mmprofile/internal/vsm"
)

// matrixOp is one scripted workload step.
type matrixOp struct {
	kind  string // "sub", "unsub", "fb", "ckpt", "sync"
	user  string
	fbIdx int // unique feedback index ("fb" only)
}

// matrixScript mixes every record type with checkpoints and explicit
// barriers; feedback indices are globally unique so the recovered state
// reveals exactly which ops survived. Users "u" and "z" hash to different
// lanes of a two-lane store (pinned in crashMatrix), so every crash point
// also exercises the cross-lane commit.
var matrixScript = []matrixOp{
	{kind: "sub", user: "u"},
	{kind: "fb", user: "u", fbIdx: 0},
	{kind: "fb", user: "u", fbIdx: 1},
	{kind: "fb", user: "u", fbIdx: 2},
	{kind: "ckpt"},
	{kind: "sub", user: "z"},
	{kind: "fb", user: "z", fbIdx: 3},
	{kind: "fb", user: "u", fbIdx: 4},
	{kind: "fb", user: "z", fbIdx: 5},
	{kind: "unsub", user: "z"},
	{kind: "fb", user: "u", fbIdx: 6},
	{kind: "sync"},
	{kind: "fb", user: "u", fbIdx: 7},
	{kind: "fb", user: "u", fbIdx: 8},
}

// fbVec is feedback i's document vector: a unit vector on a term only
// feedback i uses, so profile probing recovers the applied-op set.
func fbVec(i int) vsm.Vector {
	return vec(fmt.Sprintf("t%04d", i), 1.0)
}

// matrixState is the observable profile state: which users exist and
// which feedback indices each has absorbed.
type matrixState map[string]map[int]bool

func (st matrixState) equal(other matrixState) bool {
	if len(st) != len(other) {
		return false
	}
	for u, fbs := range st {
		o, ok := other[u]
		if !ok || len(fbs) != len(o) {
			return false
		}
		for i := range fbs {
			if !o[i] {
				return false
			}
		}
	}
	return true
}

// expectedState replays the first n script ops into the observable state.
func expectedState(n int) matrixState {
	st := matrixState{}
	for _, op := range matrixScript[:n] {
		switch op.kind {
		case "sub":
			st[op.user] = map[int]bool{}
		case "unsub":
			delete(st, op.user)
		case "fb":
			st[op.user][op.fbIdx] = true
		}
	}
	return st
}

// probeState extracts the observable state from restored learners: a
// feedback was applied iff its private term scores positive.
func probeState(learners map[string]filter.Learner, maxFb int) matrixState {
	st := matrixState{}
	for u, l := range learners {
		fbs := map[int]bool{}
		for i := 0; i < maxFb; i++ {
			if l.Score(fbVec(i)) > 1e-9 {
				fbs[i] = true
			}
		}
		st[u] = fbs
	}
	return st
}

// TestProbeStateSanity pins the probing trick itself: MM absorbs each
// relevant judgment's term with positive weight, so probing recovers the
// exact applied set.
func TestProbeStateSanity(t *testing.T) {
	l := core.NewDefault()
	for i := 0; i < 5; i++ {
		l.Observe(fbVec(i), filter.Relevant)
	}
	st := probeState(map[string]filter.Learner{"u": l}, 9)
	want := matrixState{"u": {0: true, 1: true, 2: true, 3: true, 4: true}}
	if !st.equal(want) {
		t.Fatalf("probe = %v, want %v", st, want)
	}
}

// runMatrixWorkload drives the script until completion or the first
// error. It returns how many ops were applied, how many of those are
// durability-guaranteed, and the first error.
func runMatrixWorkload(s *Store, durablePerAppend bool) (applied, guaranteed int, err error) {
	for _, op := range matrixScript {
		switch op.kind {
		case "sub":
			err = s.AppendSubscribe(op.user, "MM", nil)
		case "unsub":
			err = s.AppendUnsubscribe(op.user)
		case "fb":
			err = s.AppendFeedback(op.user, fbVec(op.fbIdx), filter.Relevant)
		case "sync":
			err = s.Sync()
		case "ckpt":
			_, err = s.Checkpoint(1)
		}
		if err != nil {
			return applied, guaranteed, err
		}
		applied++
		// Durability acknowledgments: a durable-mode append, an explicit
		// barrier, or a checkpoint guarantees everything applied so far.
		if durablePerAppend || op.kind == "sync" || op.kind == "ckpt" {
			guaranteed = applied
		}
	}
	return applied, guaranteed, nil
}

func TestCrashMatrixDurable(t *testing.T) { crashMatrix(t, true) }
func TestCrashMatrixRelaxed(t *testing.T) { crashMatrix(t, false) }

func crashMatrix(t *testing.T, durable bool) {
	if laneFNV32("u")%2 == laneFNV32("z")%2 {
		t.Fatal("matrix users collided on one lane — pick users that spread")
	}
	opts := func(sim *faultfs.Sim) Options {
		return Options{FS: sim, Durable: durable, Lanes: 2}
	}

	// Calibration pass: count the workload's total syscall footprint.
	calib := faultfs.NewSim()
	s, err := Open("/state", opts(calib))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := runMatrixWorkload(s, durable); err != nil {
		t.Fatal(err)
	}
	s.Close()
	total := calib.Ops()
	if total < 20 {
		t.Fatalf("implausibly small op count %d", total)
	}

	for k := 1; k <= total; k++ {
		k := k
		t.Run(fmt.Sprintf("crash_at_%03d", k), func(t *testing.T) {
			sim := faultfs.NewSim()
			sim.SetHook(faultfs.CrashAt(k))

			applied, guaranteed := 0, 0
			s, err := Open("/state", opts(sim))
			if err == nil {
				applied, guaranteed, err = runMatrixWorkload(s, durable)
				s.Close() // post-crash close errors are expected
			}
			if err != nil && !errors.Is(err, faultfs.ErrCrashed) {
				t.Fatalf("workload failed with a non-crash error: %v", err)
			}
			if err == nil && sim.Crashed() {
				// The crash landed inside Close, after the workload: every
				// op was applied, the durability guarantees are unchanged.
				applied = len(matrixScript)
			}

			// Power-cycle: volatile state is gone, the machine is back.
			sim.SetHook(nil)
			sim.Reboot()

			// Recovery must never error and never lose an acknowledged
			// record, at every single crash point.
			s2, err := Open("/state", opts(sim))
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			profiles, events, err := s2.Load()
			if err != nil {
				t.Fatalf("load after crash: %v", err)
			}
			learners, err := Restore(profiles, events)
			if err != nil {
				t.Fatalf("restore after crash: %v", err)
			}
			got := probeState(learners, len(matrixScript))
			match := -1
			for m := guaranteed; m <= applied+1 && m <= len(matrixScript); m++ {
				if got.equal(expectedState(m)) {
					match = m
					break
				}
			}
			if match < 0 {
				t.Fatalf("recovered state %v is no prefix ≥ %d of the workload (applied %d)",
					got, guaranteed, applied)
			}

			// The reopened store must be fully usable: the torn-tail
			// repair has to leave every lane appendable (this is the exact
			// reopen-append-reload sequence that corrupted the store
			// before the fix).
			if err := s2.AppendSubscribe("q", "MM", nil); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			if err := s2.AppendFeedback("q", fbVec(9), filter.Relevant); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			if err := s2.Close(); err != nil {
				t.Fatalf("close after recovery: %v", err)
			}
			s3, err := Open("/state", opts(sim))
			if err != nil {
				t.Fatal(err)
			}
			defer s3.Close()
			p3, e3, err := s3.Load()
			if err != nil {
				t.Fatalf("reload after post-recovery appends: %v", err)
			}
			l3, err := Restore(p3, e3)
			if err != nil {
				t.Fatal(err)
			}
			if l3["q"] == nil || l3["q"].Score(fbVec(9)) <= 1e-9 {
				t.Fatalf("post-recovery appends lost")
			}
		})
	}
}

// seedLegacy writes a durable pre-manifest layout (one snapshot, one WAL)
// into the simulator: alice checkpointed with feedback 0, then a log with
// feedback 1 for alice and subscriptions + feedback for "u" and "z".
func seedLegacy(t *testing.T, sim *faultfs.Sim) {
	t.Helper()
	if err := sim.MkdirAll("/state", 0o755); err != nil {
		t.Fatal(err)
	}
	mm := core.NewDefault()
	mm.Observe(fbVec(0), filter.Relevant)
	blob, err := mm.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var snap, wal bytes.Buffer
	if err := writeRecord(&snap, encodeProfilePayload("alice", "MM", blob)); err != nil {
		t.Fatal(err)
	}
	sub := func(user string) []byte {
		p := []byte{byte(EventSubscribe)}
		p = appendLenBytes(p, []byte(user))
		p = appendLenBytes(p, []byte("MM"))
		return appendLenBytes(p, nil)
	}
	fb := func(user string, i int) []byte {
		p := []byte{byte(EventFeedback)}
		p = appendLenBytes(p, []byte(user))
		p = append(p, 1)
		return vsm.AppendVector(p, fbVec(i))
	}
	for _, payload := range [][]byte{fb("alice", 1), sub("u"), fb("u", 2), sub("z"), fb("z", 3)} {
		if err := writeRecord(&wal, payload); err != nil {
			t.Fatal(err)
		}
	}
	write := func(path string, data []byte) {
		f, err := sim.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}
	write("/state/snap-00000001.db", snap.Bytes())
	write("/state/wal-00000001.log", wal.Bytes())
	if err := sim.SyncDir("/state"); err != nil {
		t.Fatal(err)
	}
}

// TestMigrationCrashMatrix crashes the legacy→lane migration at every
// syscall boundary. The legacy files were durable before the migration
// started and are removed only after the manifest commit, so recovery
// after any crash point must come back with the complete legacy state —
// either by re-running the migration or from the committed lane layout.
func TestMigrationCrashMatrix(t *testing.T) {
	calib := faultfs.NewSim()
	seedLegacy(t, calib)
	seedOps := calib.Ops()
	s, err := Open("/state", Options{FS: calib, Lanes: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	total := calib.Ops()
	if total <= seedOps {
		t.Fatalf("migration performed no operations (%d..%d)", seedOps, total)
	}

	for k := seedOps + 1; k <= total; k++ {
		k := k
		t.Run(fmt.Sprintf("crash_at_%03d", k), func(t *testing.T) {
			sim := faultfs.NewSim()
			seedLegacy(t, sim)
			sim.SetHook(faultfs.CrashAt(k))
			if s, err := Open("/state", Options{FS: sim, Lanes: 2}); err == nil {
				s.Close()
			} else if !errors.Is(err, faultfs.ErrCrashed) {
				t.Fatalf("open failed with a non-crash error: %v", err)
			}
			sim.SetHook(nil)
			sim.Reboot()

			s2, err := Open("/state", Options{FS: sim, Lanes: 2})
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			profiles, events, err := s2.Load()
			if err != nil {
				t.Fatalf("load after crash: %v", err)
			}
			learners, err := Restore(profiles, events)
			if err != nil {
				t.Fatalf("restore after crash: %v", err)
			}
			if len(learners) != 3 {
				t.Fatalf("restored %d users, want 3", len(learners))
			}
			if learners["alice"].Score(fbVec(0)) <= 1e-9 || learners["alice"].Score(fbVec(1)) <= 1e-9 {
				t.Fatal("alice lost state across migration crash")
			}
			if learners["u"].Score(fbVec(2)) <= 1e-9 || learners["z"].Score(fbVec(3)) <= 1e-9 {
				t.Fatal("sharded users lost state across migration crash")
			}
			// The migrated store must be fully usable.
			if err := s2.AppendFeedback("u", fbVec(4), filter.Relevant); err != nil {
				t.Fatalf("append after migration recovery: %v", err)
			}
			if err := s2.Close(); err != nil {
				t.Fatalf("close after migration recovery: %v", err)
			}
		})
	}
}

// TestCheckpointDurableAcrossCrash pins the rename-ordering fix in
// isolation: once Checkpoint returns, a hard power cut must not roll
// recovery back a generation — the segment rename, the manifest rename,
// and the new log's creation are all covered by directory fsyncs.
func TestCheckpointDurableAcrossCrash(t *testing.T) {
	sim := faultfs.NewSim()
	s, err := Open("/state", Options{FS: sim, Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendSubscribe("u", "MM", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFeedback("u", fbVec(0), filter.Relevant); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	// Hard power cut with no further syscalls: the checkpoint must hold.
	sim.Reboot()
	s2, err := Open("/state", Options{FS: sim})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	profiles, events, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 1 || len(events) != 0 {
		t.Fatalf("checkpoint not durable: %d profiles, %d events", len(profiles), len(events))
	}
	learners, err := Restore(profiles, events)
	if err != nil {
		t.Fatal(err)
	}
	if learners["u"].Score(fbVec(0)) <= 1e-9 {
		t.Fatal("checkpointed profile lost feedback 0")
	}
}

// TestLyingFsyncIsOutOfScope documents the fault model's boundary: a
// drive that acknowledges fsyncs without persisting defeats any WAL; the
// store's guarantee is conditional on honest fsyncs, and recovery must
// still come up empty-but-consistent rather than corrupt.
func TestLyingFsyncIsOutOfScope(t *testing.T) {
	sim := faultfs.NewSim()
	sim.SetHook(func(op faultfs.Op) faultfs.Fault {
		if op.Kind == faultfs.OpSync || op.Kind == faultfs.OpSyncDir {
			return faultfs.Fault{LieSync: true}
		}
		return faultfs.Fault{}
	})
	s, err := Open("/state", Options{FS: sim, Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendSubscribe("u", "MM", nil); err != nil {
		t.Fatal(err) // the lie: this ack is worthless
	}
	sim.SetHook(nil)
	sim.Reboot()
	// MkdirAll recreates the (volatile-lost) directory; recovery must be
	// clean and empty, not corrupt.
	s2, err := Open("/state", Options{FS: sim})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	profiles, events, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 0 || len(events) != 0 {
		t.Fatalf("impossible durability under lying fsyncs: %d/%d", len(profiles), len(events))
	}
}

// TestWriteErrorPoisonsStore pins the short-write policy: after a failed
// append the lane refuses further appends (the file tail is of unknown
// extent) and Health reports it, Load still serves the committed prefix,
// other lanes keep working, and reopening repairs.
func TestWriteErrorPoisonsStore(t *testing.T) {
	sim := faultfs.NewSim()
	s, err := Open("/state", Options{FS: sim, Lanes: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendSubscribe("u", "MM", nil); err != nil {
		t.Fatal(err)
	}
	// Fail the next write mid-record: ENOSPC with a torn tail.
	sim.SetHook(func(op faultfs.Op) faultfs.Fault {
		if op.Kind == faultfs.OpWrite {
			return faultfs.Fault{Err: faultfs.ErrNoSpace, Partial: op.Len / 2}
		}
		return faultfs.Fault{}
	})
	if err := s.AppendFeedback("u", fbVec(0), filter.Relevant); !errors.Is(err, faultfs.ErrNoSpace) {
		t.Fatalf("want ErrNoSpace, got %v", err)
	}
	sim.SetHook(nil)
	if err := s.AppendFeedback("u", fbVec(1), filter.Relevant); err == nil {
		t.Fatal("append accepted after a torn write — would corrupt the log")
	}
	if err := s.Health(); err == nil {
		t.Fatal("poisoned lane not reported by Health")
	}
	// The other lane still accepts appends ("z" hashes away from "u").
	if err := s.AppendSubscribe("z", "MM", nil); err != nil {
		t.Fatalf("healthy lane refused an append: %v", err)
	}
	// The committed prefix is still readable around the poison.
	_, events, err := s.Load()
	if err != nil || len(events) != 2 {
		t.Fatalf("load on poisoned store: %d events, %v", len(events), err)
	}
	s.Close()
	// Reopen repairs the torn tail and appends flow again.
	s2, err := Open("/state", Options{FS: sim, Lanes: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if err := s2.AppendFeedback("u", fbVec(2), filter.Relevant); err != nil {
		t.Fatal(err)
	}
	_, events, err = s2.Load()
	if err != nil || len(events) != 3 {
		t.Fatalf("after repair: %d events, %v", len(events), err)
	}
}
