package store

import "mmprofile/internal/metrics"

// storeMetrics bundles the persistence instruments (DESIGN.md §8). All
// fields are nil-safe no-ops when the store was opened without a
// registry, so the hot append path pays nothing beyond a nil check.
type storeMetrics struct {
	appends     *metrics.Counter
	fsyncs      *metrics.Counter
	checkpoints *metrics.Counter

	appendLat     *metrics.Histogram
	fsyncLat      *metrics.Histogram
	checkpointLat *metrics.Histogram

	checkpointBytes *metrics.Gauge
}

// RegisterMetrics registers the store's instrument family on reg and
// returns the handles. Registration is idempotent (the registry returns
// existing instruments for repeated names), so a server can pre-register
// the family at startup — making the mm_store_* series visible on
// /metrics even before any store exists — and a later Open with the same
// registry picks up the very same instruments.
func RegisterMetrics(reg *metrics.Registry) storeMetrics {
	return storeMetrics{
		appends: reg.Counter("mm_store_appends_total",
			"Records appended to the write-ahead log."),
		fsyncs: reg.Counter("mm_store_fsyncs_total",
			"fsync calls issued against the write-ahead log."),
		checkpoints: reg.Counter("mm_store_checkpoints_total",
			"Snapshot checkpoints written."),
		appendLat: reg.Histogram("mm_store_append_seconds",
			"Latency of one WAL append (framing, write, and fsync when SyncEveryAppend)."),
		fsyncLat: reg.Histogram("mm_store_fsync_seconds",
			"Latency of one WAL fsync."),
		checkpointLat: reg.Histogram("mm_store_checkpoint_seconds",
			"Wall-clock duration of writing one snapshot checkpoint."),
		checkpointBytes: reg.Gauge("mm_store_checkpoint_bytes",
			"Payload size of the most recent snapshot checkpoint."),
	}
}
