package store

import "mmprofile/internal/metrics"

// storeMetrics bundles the persistence instruments (DESIGN.md §8). All
// fields are nil-safe no-ops when the store was opened without a
// registry, so the hot append path pays nothing beyond a nil check.
type storeMetrics struct {
	appends     *metrics.Counter
	fsyncs      *metrics.Counter
	checkpoints *metrics.Counter
	tornTails   *metrics.Counter

	appendLat     *metrics.Histogram
	fsyncLat      *metrics.Histogram
	checkpointLat *metrics.Histogram

	checkpointBytes *metrics.Gauge

	// Group-commit instruments (DESIGN.md §10): how many records each
	// coalesced leader pass acknowledged, and how long durable appenders
	// waited for their covering fsync. records_total / fsyncs_total ≈ the
	// batch factor; the whole point of group commit is keeping it well
	// above 1.
	groupBatches   *metrics.Counter
	groupRecords   *metrics.Counter
	groupBatchRecs *metrics.Histogram
	groupWaitLat   *metrics.Histogram

	// Lane instruments (DESIGN.md §14): the sharded-journal shape —
	// lane count, dirty profiles awaiting compaction, which lanes each
	// checkpoint rewrote vs deferred, and single-user hydration replays.
	lanes              *metrics.Gauge
	dirtyProfiles      *metrics.Gauge
	ckptLanesRewritten *metrics.Counter
	ckptLanesSkipped   *metrics.Counter
	userRestores       *metrics.Counter
}

// RegisterMetrics registers the store's instrument family on reg and
// returns the handles. Registration is idempotent (the registry returns
// existing instruments for repeated names), so a server can pre-register
// the family at startup — making the mm_store_* series visible on
// /metrics even before any store exists — and a later Open with the same
// registry picks up the very same instruments.
func RegisterMetrics(reg *metrics.Registry) storeMetrics {
	return storeMetrics{
		appends: reg.Counter("mm_store_appends_total",
			"Records appended to the write-ahead log."),
		fsyncs: reg.Counter("mm_store_fsyncs_total",
			"fsync calls issued against the write-ahead log."),
		checkpoints: reg.Counter("mm_store_checkpoints_total",
			"Snapshot checkpoints written."),
		appendLat: reg.Histogram("mm_store_append_seconds",
			"Latency of one WAL append (framing, write, and the covering group-commit fsync when Durable)."),
		fsyncLat: reg.Histogram("mm_store_fsync_seconds",
			"Latency of one WAL fsync."),
		checkpointLat: reg.Histogram("mm_store_checkpoint_seconds",
			"Wall-clock duration of writing one snapshot checkpoint."),
		checkpointBytes: reg.Gauge("mm_store_checkpoint_bytes",
			"Payload size of the most recent snapshot checkpoint."),
		tornTails: reg.Counter("mm_store_torn_tails_total",
			"Torn WAL tails truncated during open (crash residue repaired)."),
		groupBatches: reg.Counter("mm_store_group_commit_batches_total",
			"Group-commit fsync batches acknowledged."),
		groupRecords: reg.Counter("mm_store_group_commit_records_total",
			"WAL records made durable through group-commit batches."),
		groupBatchRecs: reg.Histogram("mm_store_group_commit_batch_records",
			"Records acknowledged per group-commit fsync batch."),
		groupWaitLat: reg.Histogram("mm_store_group_commit_wait_seconds",
			"Time a durable append waited for its covering fsync."),
		lanes: reg.Gauge("mm_store_lanes",
			"WAL lanes (journal shards) in the open store."),
		dirtyProfiles: reg.Gauge("mm_store_dirty_profiles",
			"Distinct users with WAL events not yet compacted into a segment."),
		ckptLanesRewritten: reg.Counter("mm_store_checkpoint_lanes_rewritten_total",
			"Lanes compacted into a new segment by checkpoints."),
		ckptLanesSkipped: reg.Counter("mm_store_checkpoint_lanes_skipped_total",
			"Dirty lanes left alone by checkpoints (below the dirty threshold)."),
		userRestores: reg.Counter("mm_store_user_restores_total",
			"Single-user hydration replays served from segment plus lane WAL."),
	}
}
