package store

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"mmprofile/internal/core"
	"mmprofile/internal/filter"
	"mmprofile/internal/vsm"

	_ "mmprofile/internal/rocchio" // registry entries for Restore
)

func vec(pairs ...any) vsm.Vector {
	m := map[string]float64{}
	for i := 0; i < len(pairs); i += 2 {
		m[pairs[i].(string)] = pairs[i+1].(float64)
	}
	return vsm.FromMap(m).Normalized()
}

func openStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestEmptyStore(t *testing.T) {
	s := openStore(t, t.TempDir())
	profiles, events, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 0 || len(events) != 0 {
		t.Errorf("fresh store not empty: %d/%d", len(profiles), len(events))
	}
}

func TestAppendAndLoadEvents(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.AppendSubscribe("alice", "MM", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFeedback("alice", vec("cat", 1.0), filter.Relevant); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFeedback("alice", vec("stock", 1.0), filter.NotRelevant); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendUnsubscribe("bob"); err != nil {
		t.Fatal(err)
	}
	_, events, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Type != EventSubscribe || events[0].User != "alice" || events[0].Learner != "MM" {
		t.Errorf("event 0: %+v", events[0])
	}
	if events[1].Type != EventFeedback || events[1].Fd != filter.Relevant || events[1].Vec.Weight("cat") == 0 {
		t.Errorf("event 1: %+v", events[1])
	}
	if events[2].Fd != filter.NotRelevant {
		t.Errorf("event 2: %+v", events[2])
	}
	if events[3].Type != EventUnsubscribe || events[3].User != "bob" {
		t.Errorf("event 3: %+v", events[3])
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.AppendSubscribe("alice", "MM", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFeedback("alice", vec("cat", 1.0), filter.Relevant); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir)
	_, events, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("events after reopen = %d", len(events))
	}
	// Appending continues the same log.
	if err := s2.AppendFeedback("alice", vec("dog", 1.0), filter.Relevant); err != nil {
		t.Fatal(err)
	}
	_, events, _ = s2.Load()
	if len(events) != 3 {
		t.Fatalf("events after append = %d", len(events))
	}
}

func TestSnapshotTruncatesLogAndCleansUp(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.AppendSubscribe("alice", "MM", nil); err != nil {
		t.Fatal(err)
	}
	mm := core.NewDefault()
	mm.Observe(vec("cat", 1.0), filter.Relevant)
	blob, _ := mm.MarshalBinary()
	if err := s.Snapshot([]ProfileRecord{{User: "alice", Learner: "MM", Data: blob}}); err != nil {
		t.Fatal(err)
	}
	profiles, events, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 1 || profiles[0].User != "alice" {
		t.Fatalf("profiles = %+v", profiles)
	}
	if len(events) != 0 {
		t.Errorf("log not reset after snapshot: %d events", len(events))
	}
	// Old generation removed.
	entries, _ := os.ReadDir(dir)
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Errorf("unexpected files after snapshot: %v", names)
	}
	// Second snapshot advances the generation again.
	if err := s.Snapshot([]ProfileRecord{{User: "alice", Learner: "MM", Data: blob}}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openStore(t, dir)
	profiles, _, err = s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 1 {
		t.Fatalf("profiles after second snapshot = %d", len(profiles))
	}
}

func TestTornTailIsDiscarded(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.AppendSubscribe("alice", "MM", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFeedback("alice", vec("cat", 1.0), filter.Relevant); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate a crash mid-append: chop bytes off the log tail.
	walPath := filepath.Join(dir, "wal-00000000.log")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir)
	_, events, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Type != EventSubscribe {
		t.Fatalf("torn tail not discarded cleanly: %+v", events)
	}
}

func TestCorruptionMidLogIsAnError(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	for i := 0; i < 3; i++ {
		if err := s.AppendFeedback("alice", vec("cat", 1.0), filter.Relevant); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	walPath := filepath.Join(dir, "wal-00000000.log")
	data, _ := os.ReadFile(walPath)
	data[12] ^= 0xFF // flip a byte inside the first record's payload
	os.WriteFile(walPath, data, 0o644)

	s2 := openStore(t, dir)
	if _, _, err := s2.Load(); err == nil {
		t.Error("mid-log corruption not reported")
	}
}

// TestRecoveryEquivalence is the headline guarantee: after snapshot + more
// feedback + crash, Restore rebuilds learners that score identically to
// the originals.
func TestRecoveryEquivalence(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	rng := rand.New(rand.NewSource(3))
	terms := []string{"a", "b", "c", "d", "e", "f"}
	randVec := func() vsm.Vector {
		m := map[string]float64{}
		for _, tm := range terms {
			if rng.Float64() < 0.5 {
				m[tm] = rng.Float64() + 0.01
			}
		}
		return vsm.FromMap(m).Normalized()
	}

	live := map[string]filter.Learner{}
	subscribe := func(user, learner string) {
		l, err := filter.New(learner)
		if err != nil {
			t.Fatal(err)
		}
		live[user] = l
		if err := s.AppendSubscribe(user, learner, nil); err != nil {
			t.Fatal(err)
		}
	}
	feedback := func(user string, v vsm.Vector, fd filter.Feedback) {
		live[user].Observe(v, fd)
		if err := s.AppendFeedback(user, v, fd); err != nil {
			t.Fatal(err)
		}
	}

	subscribe("alice", "MM")
	subscribe("bob", "RI")
	for i := 0; i < 40; i++ {
		fd := filter.Relevant
		if i%3 == 0 {
			fd = filter.NotRelevant
		}
		feedback("alice", randVec(), fd)
		feedback("bob", randVec(), fd)
	}

	// Checkpoint, then keep going (these events land in the new log).
	var records []ProfileRecord
	for user, l := range live {
		m := l.(interface{ MarshalBinary() ([]byte, error) })
		blob, err := m.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		records = append(records, ProfileRecord{User: user, Learner: l.Name(), Data: blob})
	}
	if err := s.Snapshot(records); err != nil {
		t.Fatal(err)
	}
	subscribe("carol", "NRN")
	for i := 0; i < 20; i++ {
		feedback("alice", randVec(), filter.Relevant)
		feedback("carol", randVec(), filter.Relevant)
	}
	s.Close() // "crash" after close; a real crash is the torn-tail test

	s2 := openStore(t, dir)
	profiles, events, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(profiles, events)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != len(live) {
		t.Fatalf("restored %d users, want %d", len(restored), len(live))
	}
	for i := 0; i < 25; i++ {
		probe := randVec()
		for user, orig := range live {
			got := restored[user].Score(probe)
			want := orig.Score(probe)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("user %s probe %d: %v != %v", user, i, got, want)
			}
		}
	}
	for user, orig := range live {
		if restored[user].ProfileSize() != orig.ProfileSize() {
			t.Errorf("user %s size %d != %d", user, restored[user].ProfileSize(), orig.ProfileSize())
		}
		if restored[user].Name() != orig.Name() {
			t.Errorf("user %s learner %s != %s", user, restored[user].Name(), orig.Name())
		}
	}
}

func TestRestoreUnsubscribe(t *testing.T) {
	events := []Event{
		{Type: EventSubscribe, User: "alice", Learner: "MM"},
		{Type: EventSubscribe, User: "bob", Learner: "MM"},
		{Type: EventUnsubscribe, User: "alice"},
	}
	restored, err := Restore(nil, events)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := restored["alice"]; ok {
		t.Error("unsubscribed user restored")
	}
	if _, ok := restored["bob"]; !ok {
		t.Error("bob missing")
	}
}

func TestRestoreErrors(t *testing.T) {
	if _, err := Restore(nil, []Event{{Type: EventFeedback, User: "ghost"}}); err == nil {
		t.Error("feedback for unknown user accepted")
	}
	if _, err := Restore([]ProfileRecord{{User: "x", Learner: "NoSuch"}}, nil); err == nil {
		t.Error("unknown learner accepted")
	}
	if _, err := Restore([]ProfileRecord{{User: "x", Learner: "MM", Data: []byte{9, 9}}}, nil); err == nil {
		t.Error("corrupt profile blob accepted")
	}
}

func TestUsers(t *testing.T) {
	profiles := []ProfileRecord{{User: "zed", Learner: "MM"}}
	events := []Event{
		{Type: EventSubscribe, User: "alice", Learner: "MM"},
		{Type: EventUnsubscribe, User: "zed"},
	}
	got := Users(profiles, events)
	if len(got) != 1 || got[0] != "alice" {
		t.Errorf("Users = %v", got)
	}
}

func TestClosedStoreErrors(t *testing.T) {
	s := openStore(t, t.TempDir())
	s.Close()
	if err := s.AppendFeedback("a", vec("x", 1.0), filter.Relevant); err == nil {
		t.Error("append after close accepted")
	}
	if err := s.Snapshot(nil); err == nil {
		t.Error("snapshot after close accepted")
	}
	if err := s.Sync(); err == nil {
		t.Error("sync after close accepted")
	}
	if err := s.Close(); err != nil {
		t.Error("double close errored")
	}
}

func TestSyncEveryAppend(t *testing.T) {
	s, err := Open(t.TempDir(), Options{SyncEveryAppend: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.AppendFeedback("a", vec("x", 1.0), filter.Relevant); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
}
