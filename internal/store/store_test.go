package store

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"mmprofile/internal/core"
	"mmprofile/internal/faultfs"
	"mmprofile/internal/filter"
	"mmprofile/internal/metrics"
	"mmprofile/internal/vsm"

	_ "mmprofile/internal/rocchio" // registry entries for Restore
)

func vec(pairs ...any) vsm.Vector {
	m := map[string]float64{}
	for i := 0; i < len(pairs); i += 2 {
		m[pairs[i].(string)] = pairs[i+1].(float64)
	}
	return vsm.FromMap(m).Normalized()
}

func openStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestEmptyStore(t *testing.T) {
	s := openStore(t, t.TempDir())
	profiles, events, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 0 || len(events) != 0 {
		t.Errorf("fresh store not empty: %d/%d", len(profiles), len(events))
	}
}

func TestAppendAndLoadEvents(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.AppendSubscribe("alice", "MM", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFeedback("alice", vec("cat", 1.0), filter.Relevant); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFeedback("alice", vec("stock", 1.0), filter.NotRelevant); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendUnsubscribe("bob"); err != nil {
		t.Fatal(err)
	}
	_, events, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Type != EventSubscribe || events[0].User != "alice" || events[0].Learner != "MM" {
		t.Errorf("event 0: %+v", events[0])
	}
	if events[1].Type != EventFeedback || events[1].Fd != filter.Relevant || events[1].Vec.Weight("cat") == 0 {
		t.Errorf("event 1: %+v", events[1])
	}
	if events[2].Fd != filter.NotRelevant {
		t.Errorf("event 2: %+v", events[2])
	}
	if events[3].Type != EventUnsubscribe || events[3].User != "bob" {
		t.Errorf("event 3: %+v", events[3])
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.AppendSubscribe("alice", "MM", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFeedback("alice", vec("cat", 1.0), filter.Relevant); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir)
	_, events, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("events after reopen = %d", len(events))
	}
	// Appending continues the same log.
	if err := s2.AppendFeedback("alice", vec("dog", 1.0), filter.Relevant); err != nil {
		t.Fatal(err)
	}
	_, events, _ = s2.Load()
	if len(events) != 3 {
		t.Fatalf("events after append = %d", len(events))
	}
}

func TestSnapshotTruncatesLogAndCleansUp(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.AppendSubscribe("alice", "MM", nil); err != nil {
		t.Fatal(err)
	}
	mm := core.NewDefault()
	mm.Observe(vec("cat", 1.0), filter.Relevant)
	blob, _ := mm.MarshalBinary()
	if err := s.Snapshot([]ProfileRecord{{User: "alice", Learner: "MM", Data: blob}}); err != nil {
		t.Fatal(err)
	}
	profiles, events, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 1 || profiles[0].User != "alice" {
		t.Fatalf("profiles = %+v", profiles)
	}
	if len(events) != 0 {
		t.Errorf("log not reset after snapshot: %d events", len(events))
	}
	// Old generation removed.
	entries, _ := os.ReadDir(dir)
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	if len(names) != 2 {
		t.Errorf("unexpected files after snapshot: %v", names)
	}
	// Second snapshot advances the generation again.
	if err := s.Snapshot([]ProfileRecord{{User: "alice", Learner: "MM", Data: blob}}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openStore(t, dir)
	profiles, _, err = s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 1 {
		t.Fatalf("profiles after second snapshot = %d", len(profiles))
	}
}

func TestTornTailIsDiscarded(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.AppendSubscribe("alice", "MM", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFeedback("alice", vec("cat", 1.0), filter.Relevant); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate a crash mid-append: chop bytes off the log tail.
	walPath := filepath.Join(dir, "wal-00000000.log")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir)
	_, events, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Type != EventSubscribe {
		t.Fatalf("torn tail not discarded cleanly: %+v", events)
	}
}

func TestCorruptionMidLogIsAnError(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	for i := 0; i < 3; i++ {
		if err := s.AppendFeedback("alice", vec("cat", 1.0), filter.Relevant); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	walPath := filepath.Join(dir, "wal-00000000.log")
	data, _ := os.ReadFile(walPath)
	data[12] ^= 0xFF // flip a byte inside the first record's payload
	os.WriteFile(walPath, data, 0o644)

	// Mid-log corruption is not a torn tail: Open must refuse to truncate
	// (that would destroy the valid records behind the damage) and fail.
	if _, err := Open(dir, Options{}); err == nil {
		t.Error("mid-log corruption not reported at open")
	}
	// A read-only open still works, and Load reports the corruption.
	ro, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if _, _, err := ro.Load(); err == nil {
		t.Error("mid-log corruption not reported by read-only Load")
	}
	if _, err := ro.WALInfo(); err == nil {
		t.Error("WALInfo did not report corruption")
	}
}

// TestRecoveryEquivalence is the headline guarantee: after snapshot + more
// feedback + crash, Restore rebuilds learners that score identically to
// the originals.
func TestRecoveryEquivalence(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	rng := rand.New(rand.NewSource(3))
	terms := []string{"a", "b", "c", "d", "e", "f"}
	randVec := func() vsm.Vector {
		m := map[string]float64{}
		for _, tm := range terms {
			if rng.Float64() < 0.5 {
				m[tm] = rng.Float64() + 0.01
			}
		}
		return vsm.FromMap(m).Normalized()
	}

	live := map[string]filter.Learner{}
	subscribe := func(user, learner string) {
		l, err := filter.New(learner)
		if err != nil {
			t.Fatal(err)
		}
		live[user] = l
		if err := s.AppendSubscribe(user, learner, nil); err != nil {
			t.Fatal(err)
		}
	}
	feedback := func(user string, v vsm.Vector, fd filter.Feedback) {
		live[user].Observe(v, fd)
		if err := s.AppendFeedback(user, v, fd); err != nil {
			t.Fatal(err)
		}
	}

	subscribe("alice", "MM")
	subscribe("bob", "RI")
	for i := 0; i < 40; i++ {
		fd := filter.Relevant
		if i%3 == 0 {
			fd = filter.NotRelevant
		}
		feedback("alice", randVec(), fd)
		feedback("bob", randVec(), fd)
	}

	// Checkpoint, then keep going (these events land in the new log).
	var records []ProfileRecord
	for user, l := range live {
		m := l.(interface{ MarshalBinary() ([]byte, error) })
		blob, err := m.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		records = append(records, ProfileRecord{User: user, Learner: l.Name(), Data: blob})
	}
	if err := s.Snapshot(records); err != nil {
		t.Fatal(err)
	}
	subscribe("carol", "NRN")
	for i := 0; i < 20; i++ {
		feedback("alice", randVec(), filter.Relevant)
		feedback("carol", randVec(), filter.Relevant)
	}
	s.Close() // "crash" after close; a real crash is the torn-tail test

	s2 := openStore(t, dir)
	profiles, events, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(profiles, events)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != len(live) {
		t.Fatalf("restored %d users, want %d", len(restored), len(live))
	}
	for i := 0; i < 25; i++ {
		probe := randVec()
		for user, orig := range live {
			got := restored[user].Score(probe)
			want := orig.Score(probe)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("user %s probe %d: %v != %v", user, i, got, want)
			}
		}
	}
	for user, orig := range live {
		if restored[user].ProfileSize() != orig.ProfileSize() {
			t.Errorf("user %s size %d != %d", user, restored[user].ProfileSize(), orig.ProfileSize())
		}
		if restored[user].Name() != orig.Name() {
			t.Errorf("user %s learner %s != %s", user, restored[user].Name(), orig.Name())
		}
	}
}

func TestRestoreUnsubscribe(t *testing.T) {
	events := []Event{
		{Type: EventSubscribe, User: "alice", Learner: "MM"},
		{Type: EventSubscribe, User: "bob", Learner: "MM"},
		{Type: EventUnsubscribe, User: "alice"},
	}
	restored, err := Restore(nil, events)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := restored["alice"]; ok {
		t.Error("unsubscribed user restored")
	}
	if _, ok := restored["bob"]; !ok {
		t.Error("bob missing")
	}
}

func TestRestoreErrors(t *testing.T) {
	if _, err := Restore(nil, []Event{{Type: EventFeedback, User: "ghost"}}); err == nil {
		t.Error("feedback for unknown user accepted")
	}
	if _, err := Restore([]ProfileRecord{{User: "x", Learner: "NoSuch"}}, nil); err == nil {
		t.Error("unknown learner accepted")
	}
	if _, err := Restore([]ProfileRecord{{User: "x", Learner: "MM", Data: []byte{9, 9}}}, nil); err == nil {
		t.Error("corrupt profile blob accepted")
	}
}

func TestUsers(t *testing.T) {
	profiles := []ProfileRecord{{User: "zed", Learner: "MM"}}
	events := []Event{
		{Type: EventSubscribe, User: "alice", Learner: "MM"},
		{Type: EventUnsubscribe, User: "zed"},
	}
	got := Users(profiles, events)
	if len(got) != 1 || got[0] != "alice" {
		t.Errorf("Users = %v", got)
	}
}

func TestClosedStoreErrors(t *testing.T) {
	s := openStore(t, t.TempDir())
	s.Close()
	if err := s.AppendFeedback("a", vec("x", 1.0), filter.Relevant); err == nil {
		t.Error("append after close accepted")
	}
	if err := s.Snapshot(nil); err == nil {
		t.Error("snapshot after close accepted")
	}
	if err := s.Sync(); err == nil {
		t.Error("sync after close accepted")
	}
	if err := s.Close(); err != nil {
		t.Error("double close errored")
	}
}

func TestDurableAppend(t *testing.T) {
	s, err := Open(t.TempDir(), Options{Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.AppendFeedback("a", vec("x", 1.0), filter.Relevant); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
}

// TestTornTailReopenAppendReload is the headline regression of this PR:
// the old Open left a torn tail in place and blindly O_APPENDed behind
// it, so the first append after a crash recovery buried every later
// record behind garbage and the next Load rejected the log. The fixed
// Open truncates the torn tail before appending.
func TestTornTailReopenAppendReload(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.AppendSubscribe("alice", "MM", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFeedback("alice", vec("cat", 1.0), filter.Relevant); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Crash mid-append: the last record is half-written.
	walPath := filepath.Join(dir, "wal-00000000.log")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	// Reopen, append MORE records, and reload: everything must survive.
	s2 := openStore(t, dir)
	if err := s2.AppendFeedback("alice", vec("dog", 1.0), filter.Relevant); err != nil {
		t.Fatal(err)
	}
	if err := s2.AppendFeedback("alice", vec("fish", 1.0), filter.Relevant); err != nil {
		t.Fatal(err)
	}
	s2.Close()

	s3 := openStore(t, dir)
	defer s3.Close()
	_, events, err := s3.Load()
	if err != nil {
		t.Fatalf("reload after post-recovery appends: %v", err)
	}
	// subscribe + 2 new feedbacks; the torn feedback is gone.
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	if events[0].Type != EventSubscribe || events[1].Vec.Weight("dog") == 0 || events[2].Vec.Weight("fish") == 0 {
		t.Fatalf("wrong events after recovery: %+v", events)
	}
}

// TestLoadConcurrentWithAppends pins the Load/append race fix: Load now
// holds the write lock and snapshots the committed length, so a reader
// never mistakes an in-flight append for a torn tail and silently drops
// live records. Run under -race this also proves the lock discipline.
func TestLoadConcurrentWithAppends(t *testing.T) {
	const n = 200
	dir := t.TempDir()
	s := openStore(t, dir)
	defer s.Close()
	if err := s.AppendSubscribe("alice", "MM", nil); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := s.AppendFeedback("alice", vec("cat", 1.0), filter.Relevant); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	last := 0
	for alive := true; alive; {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			alive = false
		default:
		}
		_, events, err := s.Load()
		if err != nil {
			t.Fatalf("concurrent Load: %v", err)
		}
		if len(events) < last {
			t.Fatalf("Load went backwards: %d after %d — records dropped as torn", len(events), last)
		}
		last = len(events)
	}
	_, events, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != n+1 {
		t.Fatalf("final Load = %d events, want %d", len(events), n+1)
	}
}

// TestSnapshotCleansGappedGenerations pins the cleanup rewrite: the old
// loop walked generation numbers downward and stopped at the first gap,
// stranding older debris forever. Cleanup now enumerates the directory.
func TestSnapshotCleansGappedGenerations(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.AppendSubscribe("alice", "MM", nil); err != nil {
		t.Fatal(err)
	}
	// Advance two generations so there is room for a gap below.
	if err := s.Snapshot(nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Snapshot(nil); err != nil {
		t.Fatal(err)
	}
	// Plant debris separated from the live generation by a gap: a log from
	// a long-dead generation and an orphaned checkpoint temp file.
	for _, stray := range []string{"wal-00000000.log", "snap-00000099.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, stray), []byte("debris"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Snapshot(nil); err != nil {
		t.Fatal(err)
	}
	s.Close()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	want := []string{"snap-00000003.db", "wal-00000003.log"}
	if len(names) != 2 || names[0] != want[0] || names[1] != want[1] {
		t.Fatalf("directory after snapshot = %v, want %v", names, want)
	}
}

// slowSyncFS delays every file fsync, forcing concurrent appenders to
// pile up behind the group-commit leader so coalescing is deterministic.
type slowSyncFS struct {
	faultfs.FS
	delay time.Duration
}

func (f slowSyncFS) OpenFile(name string, flag int, perm os.FileMode) (faultfs.File, error) {
	fl, err := f.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return slowSyncFile{fl, f.delay}, nil
}

type slowSyncFile struct {
	faultfs.File
	delay time.Duration
}

func (f slowSyncFile) Sync() error {
	time.Sleep(f.delay)
	return f.File.Sync()
}

// TestGroupCommitCoalesces proves the durable mode batches fsyncs: many
// concurrent appenders share far fewer fsyncs than appends, yet every
// append is individually acknowledged durable.
func TestGroupCommitCoalesces(t *testing.T) {
	const (
		workers = 8
		perW    = 20
	)
	reg := metrics.NewRegistry()
	s, err := Open(t.TempDir(), Options{
		Durable: true,
		Metrics: reg,
		FS:      slowSyncFS{faultfs.OS(), 200 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			user := fmt.Sprintf("u%d", w)
			for i := 0; i < perW; i++ {
				if err := s.AppendFeedback(user, vec("cat", 1.0), filter.Relevant); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	appends := snap["mm_store_appends_total"].(int64)
	fsyncs := snap["mm_store_fsyncs_total"].(int64)
	batched := snap["mm_store_group_commit_records_total"].(int64)
	if appends != workers*perW {
		t.Fatalf("appends = %d, want %d", appends, workers*perW)
	}
	if batched != appends {
		t.Fatalf("group-commit records = %d, want %d (every durable append must ride a batch)", batched, appends)
	}
	if fsyncs > appends/2 {
		t.Fatalf("fsyncs = %d for %d appends: group commit is not coalescing", fsyncs, appends)
	}
	t.Logf("group commit: %d appends / %d fsyncs = %.1f records per fsync",
		appends, fsyncs, float64(appends)/float64(fsyncs))
}
