package store

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"mmprofile/internal/core"
	"mmprofile/internal/faultfs"
	"mmprofile/internal/filter"
	"mmprofile/internal/metrics"
	"mmprofile/internal/vsm"

	_ "mmprofile/internal/rocchio" // registry entries for Restore
)

func vec(pairs ...any) vsm.Vector {
	m := map[string]float64{}
	for i := 0; i < len(pairs); i += 2 {
		m[pairs[i].(string)] = pairs[i+1].(float64)
	}
	return vsm.FromMap(m).Normalized()
}

func openStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// openStoreLanes pins the lane count — for tests that name lane files on
// disk or assert per-lane behavior.
func openStoreLanes(t *testing.T, dir string, lanes int) *Store {
	t.Helper()
	s, err := Open(dir, Options{Lanes: lanes})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func dirNames(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	return names
}

func TestEmptyStore(t *testing.T) {
	s := openStore(t, t.TempDir())
	profiles, events, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 0 || len(events) != 0 {
		t.Errorf("fresh store not empty: %d/%d", len(profiles), len(events))
	}
}

func TestAppendAndLoadEvents(t *testing.T) {
	dir := t.TempDir()
	s := openStoreLanes(t, dir, 1) // one lane so Load's order is append order
	if err := s.AppendSubscribe("alice", "MM", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFeedback("alice", vec("cat", 1.0), filter.Relevant); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFeedback("alice", vec("stock", 1.0), filter.NotRelevant); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendUnsubscribe("bob"); err != nil {
		t.Fatal(err)
	}
	_, events, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Type != EventSubscribe || events[0].User != "alice" || events[0].Learner != "MM" {
		t.Errorf("event 0: %+v", events[0])
	}
	if events[1].Type != EventFeedback || events[1].Fd != filter.Relevant || events[1].Vec.Weight("cat") == 0 {
		t.Errorf("event 1: %+v", events[1])
	}
	if events[2].Fd != filter.NotRelevant {
		t.Errorf("event 2: %+v", events[2])
	}
	if events[3].Type != EventUnsubscribe || events[3].User != "bob" {
		t.Errorf("event 3: %+v", events[3])
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.AppendSubscribe("alice", "MM", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFeedback("alice", vec("cat", 1.0), filter.Relevant); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openStore(t, dir)
	_, events, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("events after reopen = %d", len(events))
	}
	// Appending continues the same log.
	if err := s2.AppendFeedback("alice", vec("dog", 1.0), filter.Relevant); err != nil {
		t.Fatal(err)
	}
	_, events, _ = s2.Load()
	if len(events) != 3 {
		t.Fatalf("events after append = %d", len(events))
	}
}

func TestCheckpointCompactsLogAndCleansUp(t *testing.T) {
	dir := t.TempDir()
	s := openStoreLanes(t, dir, 1)
	if err := s.AppendSubscribe("alice", "MM", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFeedback("alice", vec("cat", 1.0), filter.Relevant); err != nil {
		t.Fatal(err)
	}
	st, err := s.Checkpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rewritten != 1 || st.Profiles != 1 {
		t.Fatalf("checkpoint stats = %+v", st)
	}
	profiles, events, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 1 || profiles[0].User != "alice" {
		t.Fatalf("profiles = %+v", profiles)
	}
	if len(events) != 0 {
		t.Errorf("log not reset after checkpoint: %d events", len(events))
	}
	// The compacted profile absorbed the journaled feedback.
	restored, err := Restore(profiles, events)
	if err != nil {
		t.Fatal(err)
	}
	if restored["alice"].Score(vec("cat", 1.0)) <= 1e-9 {
		t.Error("feedback lost in compaction")
	}
	// Old generation removed: the directory is exactly manifest + segment
	// + fresh WAL.
	names := dirNames(t, dir)
	want := []string{"MANIFEST", "seg-000-00000001.db", "wal-000-00000001.log"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Errorf("files after checkpoint = %v, want %v", names, want)
	}
	// A checkpoint with nothing dirty rewrites nothing — no generation
	// churn, no manifest write.
	st, err = s.Checkpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rewritten != 0 || st.Clean != 1 {
		t.Fatalf("idle checkpoint stats = %+v", st)
	}
	// More feedback, another checkpoint, reopen: the state survives.
	if err := s.AppendFeedback("alice", vec("dog", 1.0), filter.Relevant); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := openStore(t, dir)
	profiles, _, err = s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 1 {
		t.Fatalf("profiles after second checkpoint = %d", len(profiles))
	}
}

func TestTornTailIsDiscarded(t *testing.T) {
	dir := t.TempDir()
	s := openStoreLanes(t, dir, 1)
	if err := s.AppendSubscribe("alice", "MM", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFeedback("alice", vec("cat", 1.0), filter.Relevant); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Simulate a crash mid-append: chop bytes off the log tail.
	walPath := filepath.Join(dir, "wal-000-00000000.log")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir)
	_, events, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Type != EventSubscribe {
		t.Fatalf("torn tail not discarded cleanly: %+v", events)
	}
}

func TestCorruptionMidLogIsAnError(t *testing.T) {
	dir := t.TempDir()
	s := openStoreLanes(t, dir, 1)
	for i := 0; i < 3; i++ {
		if err := s.AppendFeedback("alice", vec("cat", 1.0), filter.Relevant); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	walPath := filepath.Join(dir, "wal-000-00000000.log")
	data, _ := os.ReadFile(walPath)
	data[12] ^= 0xFF // flip a byte inside the first record's payload
	os.WriteFile(walPath, data, 0o644)

	// Mid-log corruption is not a torn tail: Open must refuse to truncate
	// (that would destroy the valid records behind the damage) and fail.
	if _, err := Open(dir, Options{}); err == nil {
		t.Error("mid-log corruption not reported at open")
	}
	// A read-only open still works, and Load reports the corruption.
	ro, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if _, _, err := ro.Load(); err == nil {
		t.Error("mid-log corruption not reported by read-only Load")
	}
	if _, err := ro.WALInfo(); err == nil {
		t.Error("WALInfo did not report corruption")
	}
}

// TestRecoveryEquivalence is the headline guarantee: after checkpoint +
// more feedback + crash, Restore rebuilds learners that score identically
// to the originals. Users span several lanes, so this also covers the
// lane-concatenated Load order.
func TestRecoveryEquivalence(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	rng := rand.New(rand.NewSource(3))
	terms := []string{"a", "b", "c", "d", "e", "f"}
	randVec := func() vsm.Vector {
		m := map[string]float64{}
		for _, tm := range terms {
			if rng.Float64() < 0.5 {
				m[tm] = rng.Float64() + 0.01
			}
		}
		return vsm.FromMap(m).Normalized()
	}

	live := map[string]filter.Learner{}
	subscribe := func(user, learner string) {
		l, err := filter.New(learner)
		if err != nil {
			t.Fatal(err)
		}
		live[user] = l
		if err := s.AppendSubscribe(user, learner, nil); err != nil {
			t.Fatal(err)
		}
	}
	feedback := func(user string, v vsm.Vector, fd filter.Feedback) {
		live[user].Observe(v, fd)
		if err := s.AppendFeedback(user, v, fd); err != nil {
			t.Fatal(err)
		}
	}

	subscribe("alice", "MM")
	subscribe("bob", "RI")
	for i := 0; i < 40; i++ {
		fd := filter.Relevant
		if i%3 == 0 {
			fd = filter.NotRelevant
		}
		feedback("alice", randVec(), fd)
		feedback("bob", randVec(), fd)
	}

	// Checkpoint (compacting the journaled events into segments), then
	// keep going: these events land in the fresh lane WALs.
	if _, err := s.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	subscribe("carol", "NRN")
	for i := 0; i < 20; i++ {
		feedback("alice", randVec(), filter.Relevant)
		feedback("carol", randVec(), filter.Relevant)
	}
	s.Close() // "crash" after close; a real crash is the torn-tail test

	s2 := openStore(t, dir)
	profiles, events, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(profiles, events)
	if err != nil {
		t.Fatal(err)
	}
	if len(restored) != len(live) {
		t.Fatalf("restored %d users, want %d", len(restored), len(live))
	}
	for i := 0; i < 25; i++ {
		probe := randVec()
		for user, orig := range live {
			got := restored[user].Score(probe)
			want := orig.Score(probe)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("user %s probe %d: %v != %v", user, i, got, want)
			}
		}
	}
	for user, orig := range live {
		if restored[user].ProfileSize() != orig.ProfileSize() {
			t.Errorf("user %s size %d != %d", user, restored[user].ProfileSize(), orig.ProfileSize())
		}
		if restored[user].Name() != orig.Name() {
			t.Errorf("user %s learner %s != %s", user, restored[user].Name(), orig.Name())
		}
	}
}

func TestRestoreUnsubscribe(t *testing.T) {
	events := []Event{
		{Type: EventSubscribe, User: "alice", Learner: "MM"},
		{Type: EventSubscribe, User: "bob", Learner: "MM"},
		{Type: EventUnsubscribe, User: "alice"},
	}
	restored, err := Restore(nil, events)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := restored["alice"]; ok {
		t.Error("unsubscribed user restored")
	}
	if _, ok := restored["bob"]; !ok {
		t.Error("bob missing")
	}
}

func TestRestoreErrors(t *testing.T) {
	if _, err := Restore(nil, []Event{{Type: EventFeedback, User: "ghost"}}); err == nil {
		t.Error("feedback for unknown user accepted")
	}
	if _, err := Restore([]ProfileRecord{{User: "x", Learner: "NoSuch"}}, nil); err == nil {
		t.Error("unknown learner accepted")
	}
	if _, err := Restore([]ProfileRecord{{User: "x", Learner: "MM", Data: []byte{9, 9}}}, nil); err == nil {
		t.Error("corrupt profile blob accepted")
	}
}

func TestUsers(t *testing.T) {
	profiles := []ProfileRecord{{User: "zed", Learner: "MM"}}
	events := []Event{
		{Type: EventSubscribe, User: "alice", Learner: "MM"},
		{Type: EventUnsubscribe, User: "zed"},
	}
	got := Users(profiles, events)
	if len(got) != 1 || got[0] != "alice" {
		t.Errorf("Users = %v", got)
	}
}

func TestRestoredNames(t *testing.T) {
	profiles := []ProfileRecord{{User: "zed", Learner: "MM"}}
	events := []Event{
		{Type: EventSubscribe, User: "alice", Learner: "RI"},
		{Type: EventSubscribe, User: "alice", Learner: "NRN"}, // resubscribe wins
		{Type: EventUnsubscribe, User: "zed"},
	}
	got := RestoredNames(profiles, events)
	if len(got) != 1 || got["alice"] != "NRN" {
		t.Errorf("RestoredNames = %v", got)
	}
}

func TestClosedStoreErrors(t *testing.T) {
	s := openStore(t, t.TempDir())
	s.Close()
	if err := s.AppendFeedback("a", vec("x", 1.0), filter.Relevant); err == nil {
		t.Error("append after close accepted")
	}
	if _, err := s.Checkpoint(1); err == nil {
		t.Error("checkpoint after close accepted")
	}
	if err := s.Sync(); err == nil {
		t.Error("sync after close accepted")
	}
	if err := s.Close(); err != nil {
		t.Error("double close errored")
	}
}

func TestHealth(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.Health(); err != nil {
		t.Errorf("fresh store unhealthy: %v", err)
	}
	s.Close()
	if err := s.Health(); err == nil {
		t.Error("closed store reports healthy")
	}
	ro, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	if err := ro.Health(); err == nil {
		t.Error("read-only store reports healthy (it cannot accept appends)")
	}
}

func TestDurableAppend(t *testing.T) {
	s, err := Open(t.TempDir(), Options{Durable: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.AppendFeedback("a", vec("x", 1.0), filter.Relevant); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
}

// TestTornTailReopenAppendReload is a headline regression: an Open that
// left a torn tail in place and blindly O_APPENDed behind it buried every
// later record behind garbage, so the next Load rejected the log. Open
// truncates the torn lane tail before appending.
func TestTornTailReopenAppendReload(t *testing.T) {
	dir := t.TempDir()
	s := openStoreLanes(t, dir, 1)
	if err := s.AppendSubscribe("alice", "MM", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFeedback("alice", vec("cat", 1.0), filter.Relevant); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Crash mid-append: the last record is half-written.
	walPath := filepath.Join(dir, "wal-000-00000000.log")
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, data[:len(data)-5], 0o644); err != nil {
		t.Fatal(err)
	}

	// Reopen, append MORE records, and reload: everything must survive.
	s2 := openStore(t, dir)
	if err := s2.AppendFeedback("alice", vec("dog", 1.0), filter.Relevant); err != nil {
		t.Fatal(err)
	}
	if err := s2.AppendFeedback("alice", vec("fish", 1.0), filter.Relevant); err != nil {
		t.Fatal(err)
	}
	s2.Close()

	s3 := openStore(t, dir)
	defer s3.Close()
	_, events, err := s3.Load()
	if err != nil {
		t.Fatalf("reload after post-recovery appends: %v", err)
	}
	// subscribe + 2 new feedbacks; the torn feedback is gone.
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	if events[0].Type != EventSubscribe || events[1].Vec.Weight("dog") == 0 || events[2].Vec.Weight("fish") == 0 {
		t.Fatalf("wrong events after recovery: %+v", events)
	}
}

// TestLoadConcurrentWithAppends pins the Load/append race fix: Load holds
// each lane's write lock and snapshots the committed length, so a reader
// never mistakes an in-flight append for a torn tail and silently drops
// live records. Run under -race this also proves the lock discipline.
func TestLoadConcurrentWithAppends(t *testing.T) {
	const n = 200
	dir := t.TempDir()
	s := openStore(t, dir)
	defer s.Close()
	if err := s.AppendSubscribe("alice", "MM", nil); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		for i := 0; i < n; i++ {
			if err := s.AppendFeedback("alice", vec("cat", 1.0), filter.Relevant); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	last := 0
	for alive := true; alive; {
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			alive = false
		default:
		}
		_, events, err := s.Load()
		if err != nil {
			t.Fatalf("concurrent Load: %v", err)
		}
		if len(events) < last {
			t.Fatalf("Load went backwards: %d after %d — records dropped as torn", len(events), last)
		}
		last = len(events)
	}
	_, events, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != n+1 {
		t.Fatalf("final Load = %d events, want %d", len(events), n+1)
	}
}

// TestCheckpointCleansStrays pins stray collection: anything the manifest
// does not reference — legacy-layout files, stale or uncommitted lane
// generations, orphaned temp files — is removed by the next checkpoint's
// cleanup pass, regardless of generation gaps.
func TestCheckpointCleansStrays(t *testing.T) {
	dir := t.TempDir()
	s := openStoreLanes(t, dir, 1)
	if err := s.AppendSubscribe("alice", "MM", nil); err != nil {
		t.Fatal(err)
	}
	ck := func() {
		t.Helper()
		if err := s.AppendFeedback("alice", vec("cat", 1.0), filter.Relevant); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Checkpoint(1); err != nil {
			t.Fatal(err)
		}
	}
	ck()
	ck()
	// Plant debris: a legacy log, a legacy snapshot, an uncommitted lane
	// generation, and an orphaned checkpoint temp file.
	for _, stray := range []string{"wal-00000000.log", "snap-00000007.db", "seg-000-00000099.db", "seg-123456.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, stray), []byte("debris"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ck()
	s.Close()

	names := dirNames(t, dir)
	want := []string{"MANIFEST", "seg-000-00000003.db", "wal-000-00000003.log"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("directory after checkpoint = %v, want %v", names, want)
	}
}

// TestCheckpointOnlyRewritesDirtyLanes is the incremental-checkpoint
// guarantee, pinned by counters: a pass rewrites exactly the lanes whose
// dirty-profile count reached the threshold and leaves every other lane's
// generation (and segment file) untouched.
func TestCheckpointOnlyRewritesDirtyLanes(t *testing.T) {
	reg := metrics.NewRegistry()
	s, err := Open(t.TempDir(), Options{Lanes: 4, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.laneFor("u").id == s.laneFor("z").id {
		t.Fatal("test users collided on one lane")
	}
	for _, u := range []string{"u", "z"} {
		if err := s.AppendSubscribe(u, "MM", nil); err != nil {
			t.Fatal(err)
		}
	}
	st, err := s.Checkpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rewritten != 2 || st.Clean != 2 || st.Skipped != 0 {
		t.Fatalf("first checkpoint stats = %+v", st)
	}
	// Dirty one lane only: the other lane's generation must not move.
	if err := s.AppendFeedback("u", vec("cat", 1.0), filter.Relevant); err != nil {
		t.Fatal(err)
	}
	st, err = s.Checkpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rewritten != 1 || st.Clean != 3 {
		t.Fatalf("second checkpoint stats = %+v", st)
	}
	lis, err := s.LaneInfos()
	if err != nil {
		t.Fatal(err)
	}
	gens := map[int]uint64{}
	for _, li := range lis {
		gens[li.Lane] = li.Gen
	}
	if gens[s.laneFor("u").id] != 2 || gens[s.laneFor("z").id] != 1 {
		t.Fatalf("lane generations = %v", gens)
	}
	// Below the dirty threshold a lane is skipped outright, and its
	// events stay in the WAL.
	if err := s.AppendFeedback("z", vec("dog", 1.0), filter.Relevant); err != nil {
		t.Fatal(err)
	}
	st, err = s.Checkpoint(2)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rewritten != 0 || st.Skipped != 1 {
		t.Fatalf("thresholded checkpoint stats = %+v", st)
	}
	_, events, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].User != "z" {
		t.Fatalf("events after thresholded checkpoint = %+v", events)
	}

	snap := reg.Snapshot()
	if got := snap["mm_store_checkpoint_lanes_rewritten_total"].(int64); got != 3 {
		t.Errorf("lanes rewritten counter = %d, want 3", got)
	}
	if got := snap["mm_store_checkpoint_lanes_skipped_total"].(int64); got != 1 {
		t.Errorf("lanes skipped counter = %d, want 1", got)
	}
}

// TestRestoreResubscribeAcrossCheckpoint: a user present in a segment AND
// re-subscribed in the live WAL must come back with the log's state — the
// later subscribe supersedes the checkpointed profile, never merges.
func TestRestoreResubscribeAcrossCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	if err := s.AppendSubscribe("alice", "MM", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFeedback("alice", vec("old", 1.0), filter.Relevant); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(1); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendSubscribe("alice", "MM", nil); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFeedback("alice", vec("new", 1.0), filter.Relevant); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2 := openStore(t, dir)
	profiles, events, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(profiles, events)
	if err != nil {
		t.Fatal(err)
	}
	al := restored["alice"]
	if al == nil {
		t.Fatal("alice missing")
	}
	if al.Score(vec("old", 1.0)) > 1e-9 {
		t.Error("stale checkpointed state leaked into the resubscribed profile")
	}
	if al.Score(vec("new", 1.0)) <= 1e-9 {
		t.Error("post-resubscribe feedback lost")
	}
	// Single-user hydration agrees with the full restore.
	l, found, err := s2.RestoreUser("alice")
	if err != nil || !found {
		t.Fatalf("RestoreUser: found=%v err=%v", found, err)
	}
	if l.Score(vec("new", 1.0)) <= 1e-9 || l.Score(vec("old", 1.0)) > 1e-9 {
		t.Error("RestoreUser state disagrees with Restore")
	}
}

// TestRestoreInterleavedAcrossLanes: two users interleaving feedback land
// in different lanes, so Load returns their events lane-concatenated —
// globally out of append order. Restore depends only on per-user order,
// which sharding preserves, so recovery matches the live learners.
func TestRestoreInterleavedAcrossLanes(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Lanes: 2})
	if err != nil {
		t.Fatal(err)
	}
	users := []string{"u", "z"}
	if s.laneFor(users[0]).id == s.laneFor(users[1]).id {
		t.Fatal("test users collided on one lane")
	}
	live := map[string]filter.Learner{}
	for _, u := range users {
		live[u] = core.NewDefault()
		if err := s.AppendSubscribe(u, "MM", nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		u := users[i%2]
		fd := filter.Relevant
		if i%5 == 0 {
			fd = filter.NotRelevant
		}
		v := vec(fmt.Sprintf("t%02d", i), 1.0)
		live[u].Observe(v, fd)
		if err := s.AppendFeedback(u, v, fd); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	profiles, events, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 22 {
		t.Fatalf("events = %d, want 22", len(events))
	}
	restored, err := Restore(profiles, events)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		u := users[i%2]
		probe := vec(fmt.Sprintf("t%02d", i), 1.0)
		if got, want := restored[u].Score(probe), live[u].Score(probe); math.Abs(got-want) > 1e-12 {
			t.Fatalf("user %s term %d: %v != %v", u, i, got, want)
		}
	}
}

// TestEmptyLaneReopen: lanes that never saw a record survive checkpoint
// and reopen cleanly, the manifest pins the lane count against a
// conflicting Options.Lanes, and a first append into a never-used lane
// just works.
func TestEmptyLaneReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Lanes: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendSubscribe("u", "MM", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Checkpoint(1); err != nil {
		t.Fatal(err) // three lanes stay clean at generation 0
	}
	s.Close()

	s2, err := Open(dir, Options{Lanes: 16}) // ignored: manifest pins 4
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if len(s2.lanes) != 4 {
		t.Fatalf("lane count = %d, want the manifest's 4", len(s2.lanes))
	}
	profiles, events, err := s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 1 || len(events) != 0 {
		t.Fatalf("after reopen: %d profiles, %d events", len(profiles), len(events))
	}
	// "z" hashes to a lane that has never held a record.
	if s2.laneFor("z").id == s2.laneFor("u").id {
		t.Fatal("test users collided on one lane")
	}
	if err := s2.AppendSubscribe("z", "MM", nil); err != nil {
		t.Fatal(err)
	}
	_, events, err = s2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("events after first append to empty lane = %d", len(events))
	}
}

// TestLegacyLayoutMigration: a pre-manifest directory (single snap-/wal-
// pair) opens into the lane layout with identical restored state, the
// legacy files are gone afterwards, and the second open is a plain
// manifest open.
func TestLegacyLayoutMigration(t *testing.T) {
	dir := t.TempDir()
	mm := core.NewDefault()
	mm.Observe(vec("cat", 1.0), filter.Relevant)
	blob, err := mm.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var snap, wal bytes.Buffer
	if err := writeRecord(&snap, encodeProfilePayload("alice", "MM", blob)); err != nil {
		t.Fatal(err)
	}
	sub := []byte{byte(EventSubscribe)}
	sub = appendLenBytes(sub, []byte("bob"))
	sub = appendLenBytes(sub, []byte("MM"))
	sub = appendLenBytes(sub, nil)
	fb := func(user, term string) []byte {
		p := []byte{byte(EventFeedback)}
		p = appendLenBytes(p, []byte(user))
		p = append(p, 1)
		return vsm.AppendVector(p, vec(term, 1.0))
	}
	for _, payload := range [][]byte{sub, fb("alice", "dog"), fb("bob", "fish")} {
		if err := writeRecord(&wal, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, "snap-00000002.db"), snap.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "wal-00000002.log"), wal.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(dir, Options{Lanes: 4})
	if err != nil {
		t.Fatal(err)
	}
	check := func(s *Store) map[string]filter.Learner {
		t.Helper()
		profiles, events, err := s.Load()
		if err != nil {
			t.Fatal(err)
		}
		restored, err := Restore(profiles, events)
		if err != nil {
			t.Fatal(err)
		}
		if len(restored) != 2 {
			t.Fatalf("restored %d users, want 2", len(restored))
		}
		if restored["alice"].Score(vec("cat", 1.0)) <= 1e-9 || restored["alice"].Score(vec("dog", 1.0)) <= 1e-9 {
			t.Error("alice lost state in migration")
		}
		if restored["bob"].Score(vec("fish", 1.0)) <= 1e-9 {
			t.Error("bob lost state in migration")
		}
		return restored
	}
	check(s)
	s.Close()

	for _, name := range dirNames(t, dir) {
		if name == "snap-00000002.db" || name == "wal-00000002.log" {
			t.Fatalf("legacy file %s survived migration", name)
		}
	}
	s2 := openStore(t, dir)
	check(s2)
	if err := s2.AppendFeedback("bob", vec("boat", 1.0), filter.Relevant); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreUserHydration: single-user hydration from segment + lane WAL
// is bit-identical to the learner a full Restore produces; unknown and
// unsubscribed users report found=false.
func TestRestoreUserHydration(t *testing.T) {
	dir := t.TempDir()
	s := openStore(t, dir)
	rng := rand.New(rand.NewSource(11))
	users := []string{"alice", "bob", "carol"}
	for _, u := range users {
		if err := s.AppendSubscribe(u, "MM", nil); err != nil {
			t.Fatal(err)
		}
	}
	spray := func(n int) {
		for i := 0; i < n; i++ {
			u := users[rng.Intn(len(users))]
			fd := filter.Relevant
			if rng.Float64() < 0.3 {
				fd = filter.NotRelevant
			}
			if err := s.AppendFeedback(u, vec(fmt.Sprintf("t%03d", rng.Intn(40)), 1.0), fd); err != nil {
				t.Fatal(err)
			}
		}
	}
	spray(30)
	if _, err := s.Checkpoint(1); err != nil {
		t.Fatal(err) // half the history compacts into segments
	}
	spray(30)
	if err := s.AppendUnsubscribe("carol"); err != nil {
		t.Fatal(err)
	}

	profiles, events, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	full, err := Restore(profiles, events)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"alice", "bob"} {
		l, found, err := s.RestoreUser(u)
		if err != nil || !found {
			t.Fatalf("RestoreUser(%s): found=%v err=%v", u, found, err)
		}
		want, err := full[u].(interface{ MarshalBinary() ([]byte, error) }).MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		got, err := l.(interface{ MarshalBinary() ([]byte, error) }).MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("RestoreUser(%s) state differs from full restore", u)
		}
	}
	if _, found, err := s.RestoreUser("carol"); err != nil || found {
		t.Errorf("unsubscribed user hydrated: found=%v err=%v", found, err)
	}
	if _, found, err := s.RestoreUser("ghost"); err != nil || found {
		t.Errorf("unknown user hydrated: found=%v err=%v", found, err)
	}
}

// slowSyncFS delays every file fsync, forcing concurrent appenders to
// pile up behind the group-commit leader so coalescing is deterministic.
type slowSyncFS struct {
	faultfs.FS
	delay time.Duration
}

func (f slowSyncFS) OpenFile(name string, flag int, perm os.FileMode) (faultfs.File, error) {
	fl, err := f.FS.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return slowSyncFile{fl, f.delay}, nil
}

type slowSyncFile struct {
	faultfs.File
	delay time.Duration
}

func (f slowSyncFile) Sync() error {
	time.Sleep(f.delay)
	return f.File.Sync()
}

// TestGroupCommitCoalesces proves durable mode batches fsyncs — in the
// single-lane store and in a multi-lane one, where the global leader pass
// fsyncs every pending lane per batch: many concurrent appenders share
// far fewer fsyncs than appends, yet every append is individually
// acknowledged durable.
func TestGroupCommitCoalesces(t *testing.T) {
	t.Run("single_lane", func(t *testing.T) { testGroupCommit(t, 1, 8) })
	t.Run("multi_lane", func(t *testing.T) { testGroupCommit(t, 4, 16) })
}

func testGroupCommit(t *testing.T, lanes, workers int) {
	const perW = 20
	reg := metrics.NewRegistry()
	s, err := Open(t.TempDir(), Options{
		Durable: true,
		Lanes:   lanes,
		Metrics: reg,
		FS:      slowSyncFS{faultfs.OS(), 200 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			user := fmt.Sprintf("u%d", w)
			for i := 0; i < perW; i++ {
				if err := s.AppendFeedback(user, vec("cat", 1.0), filter.Relevant); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	appends := snap["mm_store_appends_total"].(int64)
	fsyncs := snap["mm_store_fsyncs_total"].(int64)
	batched := snap["mm_store_group_commit_records_total"].(int64)
	if appends != int64(workers*perW) {
		t.Fatalf("appends = %d, want %d", appends, workers*perW)
	}
	if batched != appends {
		t.Fatalf("group-commit records = %d, want %d (every durable append must ride a batch)", batched, appends)
	}
	if fsyncs > appends/2 {
		t.Fatalf("fsyncs = %d for %d appends across %d lanes: group commit is not coalescing", fsyncs, appends, lanes)
	}
	t.Logf("group commit over %d lanes: %d appends / %d fsyncs = %.1f records per fsync",
		lanes, appends, fsyncs, float64(appends)/float64(fsyncs))
}
