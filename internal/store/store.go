// Package store persists user profiles, the long-lived state of a
// filtering system ("profile vectors are stored and maintained for long
// periods of time", paper Section 4.3). It uses the classic checkpoint +
// write-ahead-log design:
//
//   - a snapshot file (snap-<seq>.db) holds a full binary dump of every
//     profile, written atomically via temp-file + rename + directory fsync;
//   - a write-ahead log (wal-<seq>.log) records each feedback event
//     (user, judgment, document vector) applied since that snapshot.
//
// Recovery loads the newest snapshot and re-applies the matching log; the
// learners' update rules are deterministic, so replay reconstructs the
// exact pre-crash profiles. Every record is length-prefixed and CRC32-
// guarded. A torn tail (crash mid-append) is detected at Open and
// truncated away before any new append can land behind it; corruption
// anywhere before the tail is refused, never silently skipped.
//
// Durability is group-committed (DESIGN.md §10): with Options.Durable,
// each Append* returns only after an fsync covers its record, but
// concurrent appenders coalesce onto a single leader fsync, so durable
// mode costs far less than one fsync per event. Options.SyncInterval
// instead bounds the loss window with a background flusher, and Sync() is
// always available as an explicit barrier. All filesystem access goes
// through internal/faultfs, so the crash-matrix test can kill the store
// at every syscall boundary; production runs on bare *os.File handles.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mmprofile/internal/faultfs"
	"mmprofile/internal/filter"
	"mmprofile/internal/metrics"
	"mmprofile/internal/trace"
	"mmprofile/internal/vsm"
)

// ProfileRecord is one user's serialized profile in a snapshot.
type ProfileRecord struct {
	User    string
	Learner string // registry name, used to reconstruct the right type
	Data    []byte // learner's MarshalBinary output
}

// EventType tags a log record.
type EventType byte

const (
	// EventFeedback is a relevance judgment (user, fd, document vector).
	EventFeedback EventType = iota
	// EventSubscribe is a new subscription (user, learner name, and the
	// learner's initial serialized state, e.g. a keyword seed).
	EventSubscribe
	// EventUnsubscribe removes a user.
	EventUnsubscribe
)

// Event is one replayable log record.
type Event struct {
	Type EventType
	User string
	// Feedback fields.
	Fd  filter.Feedback
	Vec vsm.Vector
	// Subscribe fields.
	Learner string
	State   []byte
}

// Options configures a Store.
type Options struct {
	// Durable makes every Append* return only once an fsync covers its
	// record. Appenders arriving while a sync is in flight coalesce onto
	// the next one (group commit), so the cost under concurrency is far
	// below one fsync per append.
	Durable bool
	// SyncInterval, when > 0 and Durable is off, bounds the loss window
	// instead: appends return immediately and a background flusher fsyncs
	// the log every interval. Sync() remains an explicit barrier.
	SyncInterval time.Duration
	// ReadOnly opens the store for inspection: no torn-tail repair, no
	// log handle, and Load tolerates a torn tail the way recovery would.
	// Appends, Snapshot, and Sync fail. mmstore uses this so inspecting a
	// crashed state directory never mutates it.
	ReadOnly bool
	// FS overrides the filesystem — fault injection in tests
	// (faultfs.Sim). Nil means the real OS filesystem.
	FS faultfs.FS
	// Metrics, when non-nil, receives the mm_store_* instrument family
	// (append/fsync/checkpoint/group-commit latencies and counts). Nil
	// disables instrumentation entirely.
	Metrics *metrics.Registry
}

// Store is a directory-backed profile store. Safe for concurrent use.
type Store struct {
	opts Options
	fsys faultfs.FS
	m    storeMetrics // all-nil (no-op) when opts.Metrics is nil

	// mu guards the write path: the log handle, the committed byte
	// length, the written-record count, and the generation number.
	mu     sync.Mutex
	dir    string
	seq    uint64
	wal    faultfs.File
	walLen int64  // committed bytes in the current log (resets per generation)
	recs   uint64 // records ever written (monotone across generations)
	failed error  // sticky write-path failure; reopen repairs

	// cmu guards the group-commit state. Lock discipline: no goroutine
	// ever waits for cmu while holding mu (appenders release mu before
	// joining a commit), so the sync leader may take mu briefly while the
	// sync token is claimed.
	cmu     sync.Mutex
	cond    *sync.Cond
	syncing bool   // sync token: one leader fsync (or one WAL swap) at a time
	durable uint64 // records covered by the last acknowledged fsync
	syncErr error  // sticky fsync failure: durability is unknowable past it
	closed  bool

	stopFlush chan struct{} // interval flusher; nil unless SyncInterval armed
	flushDone chan struct{}
}

const (
	snapPrefix = "snap-"
	walPrefix  = "wal-"
	// maxRecordLen bounds a record's claimed payload size. Records are
	// written in one Write call, so any readable length field was fully
	// written; a length beyond this bound is therefore corruption, never
	// a torn append.
	maxRecordLen = 1 << 28
)

var errClosed = errors.New("store: closed")

// Open opens (or initializes) a store in dir, creating it if needed. A
// torn log tail left by a crash mid-append is truncated here, before any
// append can land behind it; mid-log corruption makes Open fail rather
// than risk silently dropping everything after the damage.
func Open(dir string, opts Options) (*Store, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = faultfs.OS()
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	seq, err := latestSeq(fsys, dir)
	if err != nil {
		return nil, err
	}
	s := &Store{opts: opts, fsys: fsys, dir: dir, seq: seq}
	s.cond = sync.NewCond(&s.cmu)
	if opts.Metrics != nil {
		s.m = RegisterMetrics(opts.Metrics)
	}
	if !opts.ReadOnly {
		if err := s.openWAL(); err != nil {
			return nil, err
		}
		if opts.SyncInterval > 0 && !opts.Durable {
			s.stopFlush = make(chan struct{})
			s.flushDone = make(chan struct{})
			go s.flushLoop(opts.SyncInterval)
		}
	}
	return s, nil
}

// latestSeq finds the newest complete snapshot's sequence number (0 when
// the store is fresh; sequence 0 has no snapshot file).
func latestSeq(fsys faultfs.FS, dir string) (uint64, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	var best uint64
	for _, e := range entries {
		if n, ok := genSeq(e.Name(), snapPrefix, ".db"); ok && n > best {
			best = n
		}
	}
	return best, nil
}

// genSeq parses a generation file name (prefix + zero-padded seq +
// suffix); ok is false for anything else, including stray files.
func genSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

func (s *Store) snapPath(seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%08d.db", snapPrefix, seq))
}

func (s *Store) walPath(seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%08d.log", walPrefix, seq))
}

// openWAL opens the current sequence's log for appending, truncating any
// torn tail first and durably linking the file. Caller holds the lock (or
// is the constructor).
func (s *Store) openWAL() error {
	path := s.walPath(s.seq)
	data, err := s.fsys.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: %w", err)
	}
	_, committed, err := scanRecords(data)
	if err != nil {
		// Valid records exist beyond the damage: this is not a torn
		// append, and truncating would destroy them. Refuse to open.
		return fmt.Errorf("store: wal %d: %w", s.seq, err)
	}
	f, err := s.fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if committed < len(data) {
		// Torn tail from a crash mid-append: chop it so the next append
		// starts at a record boundary — appending after garbage is what
		// used to turn one torn record into a whole-log loss on the
		// following reload.
		if err := f.Truncate(int64(committed)); err != nil {
			f.Close()
			return fmt.Errorf("store: truncating torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("store: %w", err)
		}
		s.m.tornTails.Inc()
	}
	// Persist the directory entry (file creation, and the truncate's
	// metadata on filesystems that require it).
	if err := s.fsys.SyncDir(s.dir); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	s.wal = f
	s.walLen = int64(committed)
	return nil
}

// flushLoop is the SyncInterval background flusher.
func (s *Store) flushLoop(d time.Duration) {
	defer close(s.flushDone)
	t := time.NewTicker(d)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			// Best-effort: a failure is sticky in syncErr and surfaces on
			// the next explicit barrier or durable operation.
			_ = s.Sync()
		case <-s.stopFlush:
			return
		}
	}
}

// Close drains any in-flight group commit, flushes the log, and closes
// it. Safe to call twice.
func (s *Store) Close() error {
	s.mu.Lock()
	stop := s.stopFlush
	s.stopFlush = nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-s.flushDone
	}

	s.cmu.Lock()
	for s.syncing {
		s.cond.Wait()
	}
	s.syncing = true
	s.cmu.Unlock()

	s.mu.Lock()
	var err error
	recs := s.recs
	if s.wal != nil {
		if s.failed == nil {
			err = s.wal.Sync()
		}
		if cerr := s.wal.Close(); err == nil {
			err = cerr
		}
		s.wal = nil
	}
	s.mu.Unlock()

	s.cmu.Lock()
	s.syncing = false
	s.closed = true
	if err == nil && recs > s.durable {
		s.durable = recs
	}
	s.cond.Broadcast()
	s.cmu.Unlock()
	return err
}

// AppendFeedback records one feedback event.
func (s *Store) AppendFeedback(user string, v vsm.Vector, fd filter.Feedback) error {
	return s.AppendFeedbackTraced(user, v, fd, nil)
}

// AppendFeedbackTraced is AppendFeedback with request tracing: when sp is a
// live span (it may be nil), the append's phases are recorded as child
// spans — store.wal_write for the serialized write under the store lock and
// store.commit_wait for the group-commit fsync wait (durable mode only),
// the two very different reasons an append can be slow.
func (s *Store) AppendFeedbackTraced(user string, v vsm.Vector, fd filter.Feedback, sp *trace.Span) error {
	payload := []byte{byte(EventFeedback)}
	payload = appendLenBytes(payload, []byte(user))
	b := byte(0)
	if fd == filter.Relevant {
		b = 1
	}
	payload = append(payload, b)
	payload = vsm.AppendVector(payload, v)
	return s.appendPayload(payload, sp)
}

// AppendSubscribe records a new subscription together with the learner's
// initial serialized state.
func (s *Store) AppendSubscribe(user, learner string, state []byte) error {
	payload := []byte{byte(EventSubscribe)}
	payload = appendLenBytes(payload, []byte(user))
	payload = appendLenBytes(payload, []byte(learner))
	payload = appendLenBytes(payload, state)
	return s.appendPayload(payload, nil)
}

// AppendUnsubscribe records a user's removal.
func (s *Store) AppendUnsubscribe(user string) error {
	payload := []byte{byte(EventUnsubscribe)}
	payload = appendLenBytes(payload, []byte(user))
	return s.appendPayload(payload, nil)
}

func (s *Store) appendPayload(payload []byte, sp *trace.Span) error {
	t0 := time.Now()
	ws := sp.ChildAt("store.wal_write", t0)
	s.mu.Lock()
	if s.wal == nil {
		s.mu.Unlock()
		if s.opts.ReadOnly {
			return errors.New("store: read-only")
		}
		return errClosed
	}
	if s.failed != nil {
		err := s.failed
		s.mu.Unlock()
		return err
	}
	if err := writeRecord(s.wal, payload); err != nil {
		// A failed or short write leaves bytes of unknown extent in the
		// file; any later append would land behind garbage. Poison the
		// write path — reopening repairs via the torn-tail scan.
		s.failed = err
		s.mu.Unlock()
		ws.End()
		return err
	}
	s.walLen += int64(len(payload)) + 8
	s.recs++
	pos := s.recs
	s.mu.Unlock()
	ws.SetInt("bytes", int64(len(payload))+8)
	ws.End()

	s.m.appends.Inc()
	if s.opts.Durable {
		cw := sp.Child("store.commit_wait")
		err := s.waitDurable(pos)
		cw.End()
		if err != nil {
			return err
		}
	}
	s.m.appendLat.ObserveSince(t0)
	return nil
}

func appendLenBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

// Sync is the durability barrier: it returns once every record appended
// before the call is fsynced, issuing at most one fsync itself (and none
// when a group commit already covered them).
func (s *Store) Sync() error {
	s.mu.Lock()
	if s.wal == nil {
		s.mu.Unlock()
		if s.opts.ReadOnly {
			return errors.New("store: read-only")
		}
		return errClosed
	}
	pos := s.recs
	s.mu.Unlock()
	return s.waitDurable(pos)
}

// waitDurable blocks until records 1..pos are covered by an acknowledged
// fsync. The first waiter to find no sync in flight claims the token and
// leads one fsync for everything written so far; waiters that arrive
// mid-flight coalesce onto the next one. This is the group commit: under
// N concurrent durable appenders, each fsync acknowledges a whole batch.
func (s *Store) waitDurable(pos uint64) error {
	t0 := time.Now()
	s.cmu.Lock()
	for {
		if s.durable >= pos {
			s.cmu.Unlock()
			s.m.groupWaitLat.ObserveSince(t0)
			return nil
		}
		if s.syncErr != nil {
			err := s.syncErr
			s.cmu.Unlock()
			return err
		}
		if s.closed {
			s.cmu.Unlock()
			return errClosed
		}
		if !s.syncing {
			s.syncing = true
			s.cmu.Unlock()
			s.leadSync()
			s.cmu.Lock()
			continue
		}
		s.cond.Wait()
	}
}

// leadSync performs one group-commit fsync. Caller holds the sync token
// (not cmu); the token keeps the log handle stable — Snapshot and Close
// wait for it before swapping or closing the WAL.
func (s *Store) leadSync() {
	s.mu.Lock()
	f, target := s.wal, s.recs
	s.mu.Unlock()

	var err error
	if f == nil {
		err = errClosed
	} else {
		t0 := time.Now()
		if err = f.Sync(); err == nil {
			s.m.fsyncs.Inc()
			s.m.fsyncLat.ObserveSince(t0)
		}
	}

	s.cmu.Lock()
	s.syncing = false
	if err != nil {
		s.syncErr = err
	} else if target > s.durable {
		batch := target - s.durable
		s.durable = target
		s.m.groupBatches.Inc()
		s.m.groupRecords.Add(int64(batch))
		s.m.groupBatchRecs.Observe(float64(batch))
	}
	s.cond.Broadcast()
	s.cmu.Unlock()
}

// Snapshot atomically writes a new snapshot of every profile and starts a
// fresh, empty log. The durability order is strict: outgoing log fsync →
// snapshot contents fsync → rename → directory fsync → new log creation →
// directory fsync → old-generation removal. A crash at any point leaves
// either the old generation or the new one fully recoverable.
func (s *Store) Snapshot(profiles []ProfileRecord) error {
	t0 := time.Now()

	// Claim the sync token: no group-commit fsync may race the WAL swap
	// (it would fsync a closed handle).
	s.cmu.Lock()
	for s.syncing {
		s.cond.Wait()
	}
	if s.closed {
		s.cmu.Unlock()
		return errClosed
	}
	if err := s.syncErr; err != nil {
		s.cmu.Unlock()
		return err
	}
	s.syncing = true
	s.cmu.Unlock()

	s.mu.Lock()
	durableTo := uint64(0) // set once the outgoing log is fsynced
	defer func() {
		s.mu.Unlock()
		s.cmu.Lock()
		s.syncing = false
		if durableTo > s.durable {
			s.durable = durableTo
		}
		s.cond.Broadcast()
		s.cmu.Unlock()
	}()

	if s.wal == nil {
		if s.opts.ReadOnly {
			return errors.New("store: read-only")
		}
		return errClosed
	}
	if s.failed != nil {
		return s.failed
	}
	next := s.seq + 1

	// Fsync the outgoing log before the checkpoint that supersedes it:
	// until the new generation is durably in place, that log is still the
	// only durable copy of every event since the previous snapshot.
	ts := time.Now()
	if err := s.wal.Sync(); err != nil {
		s.failed = err
		return fmt.Errorf("store: %w", err)
	}
	s.m.fsyncs.Inc()
	s.m.fsyncLat.ObserveSince(ts)
	durableTo = s.recs // everything written so far is now durable

	tmp, err := s.fsys.CreateTemp(s.dir, "snap-*.tmp")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer s.fsys.Remove(tmp.Name()) // no-op after successful rename
	var bytes int64
	for _, p := range profiles {
		payload := binary.AppendUvarint(nil, uint64(len(p.User)))
		payload = append(payload, p.User...)
		payload = binary.AppendUvarint(payload, uint64(len(p.Learner)))
		payload = append(payload, p.Learner...)
		payload = binary.AppendUvarint(payload, uint64(len(p.Data)))
		payload = append(payload, p.Data...)
		if err := writeRecord(tmp, payload); err != nil {
			tmp.Close()
			return err
		}
		bytes += int64(len(payload)) + 8 // record framing header
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.fsys.Rename(tmp.Name(), s.snapPath(next)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	// The rename is not durable until the directory is: without this, a
	// crash could silently fall recovery back a whole generation even
	// though Snapshot had reported success.
	if err := s.fsys.SyncDir(s.dir); err != nil {
		return fmt.Errorf("store: %w", err)
	}

	// The new snapshot is durable; switch to its (empty) log. openWAL
	// fsyncs the directory again for the new log's entry.
	old := s.wal
	s.seq = next
	if err := s.openWAL(); err != nil {
		// Revert to the old generation rather than losing the handle.
		s.seq = next - 1
		s.wal = old
		return err
	}
	old.Close()

	// Remove every older generation by enumerating what is actually
	// there — probing downward from next-1 used to stop at the first gap
	// and strand anything older (e.g. after an interrupted cleanup).
	// Stray snapshot temp files from crashed checkpoints go too.
	if entries, err := s.fsys.ReadDir(s.dir); err == nil {
		removed := false
		for _, e := range entries {
			name := e.Name()
			stale := false
			if n, ok := genSeq(name, snapPrefix, ".db"); ok && n < next {
				stale = true
			} else if n, ok := genSeq(name, walPrefix, ".log"); ok && n < next {
				stale = true
			} else if strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".tmp") && name != filepath.Base(tmp.Name()) {
				stale = true
			}
			if stale && s.fsys.Remove(filepath.Join(s.dir, name)) == nil {
				removed = true
			}
		}
		if removed {
			_ = s.fsys.SyncDir(s.dir) // best-effort: stray files are harmless
		}
	}
	s.m.checkpoints.Inc()
	s.m.checkpointBytes.Set(float64(bytes))
	s.m.checkpointLat.ObserveSince(t0)
	return nil
}

// Load reads the newest snapshot and its log under the store lock, so a
// concurrent append can never be misread as a torn tail and silently
// dropped. In ReadOnly mode a genuinely torn tail is tolerated exactly as
// recovery would tolerate it; in read-write mode the tail was already
// truncated at Open, so any trailing garbage is an error.
func (s *Store) Load() ([]ProfileRecord, []Event, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	seq := s.seq

	var profiles []ProfileRecord
	if seq > 0 {
		data, err := s.readFileOrEmpty(s.snapPath(seq))
		if err != nil {
			return nil, nil, fmt.Errorf("store: snapshot %d: %w", seq, err)
		}
		payloads, committed, err := scanRecords(data)
		if err == nil && committed != len(data) {
			err = fmt.Errorf("truncated record at offset %d", committed)
		}
		if err != nil {
			return nil, nil, fmt.Errorf("store: snapshot %d: %w", seq, err)
		}
		for i, payload := range payloads {
			rec, err := decodeProfileRecord(payload)
			if err != nil {
				return nil, nil, fmt.Errorf("store: snapshot %d record %d: %w", seq, i, err)
			}
			profiles = append(profiles, rec)
		}
	}

	data, err := s.readFileOrEmpty(s.walPath(seq))
	if err != nil {
		return nil, nil, fmt.Errorf("store: wal %d: %w", seq, err)
	}
	if !s.opts.ReadOnly && int64(len(data)) > s.walLen {
		// Bytes past the committed length can only be a poisoned write's
		// remnants; the committed prefix is intact by construction.
		data = data[:s.walLen]
	}
	payloads, committed, err := scanRecords(data)
	if err == nil && !s.opts.ReadOnly && committed != len(data) {
		err = fmt.Errorf("truncated record at offset %d", committed)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("store: wal %d: %w", seq, err)
	}
	var events []Event
	for i, payload := range payloads {
		ev, err := decodeEvent(payload)
		if err != nil {
			return nil, nil, fmt.Errorf("store: wal %d record %d: %w", seq, i, err)
		}
		events = append(events, ev)
	}
	return profiles, events, nil
}

// readFileOrEmpty reads a file, mapping absence to emptiness.
func (s *Store) readFileOrEmpty(path string) ([]byte, error) {
	data, err := s.fsys.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	return data, nil
}

// WALInfo describes the current log's on-disk integrity, for inspection
// tooling (mmstore).
type WALInfo struct {
	Seq       uint64 // active generation
	Records   int    // complete, checksummed records
	Committed int64  // byte length of the valid prefix
	Torn      int64  // trailing bytes past the valid prefix (crash residue)
}

// WALInfo scans the active log and reports its integrity. A non-nil
// error means corruption before the tail; the returned info still
// describes the valid prefix.
func (s *Store) WALInfo() (WALInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	info := WALInfo{Seq: s.seq}
	data, err := s.readFileOrEmpty(s.walPath(s.seq))
	if err != nil {
		return info, fmt.Errorf("store: %w", err)
	}
	payloads, committed, err := scanRecords(data)
	info.Records = len(payloads)
	info.Committed = int64(committed)
	info.Torn = int64(len(data) - committed)
	if err != nil {
		return info, fmt.Errorf("store: wal %d: %w", s.seq, err)
	}
	return info, nil
}

// Health reports the store's sticky failure state without touching disk:
// nil means the write path is healthy, a non-nil error names the first
// thing that broke (write failure, fsync failure, or closed). ReadOnly
// stores report a degraded-style error since they cannot accept appends.
// Cheap enough to poll from /readyz — two mutex acquisitions, no I/O.
func (s *Store) Health() error {
	s.mu.Lock()
	failed := s.failed
	readOnly := s.opts.ReadOnly
	s.mu.Unlock()
	if failed != nil {
		return failed
	}
	s.cmu.Lock()
	syncErr := s.syncErr
	closed := s.closed
	s.cmu.Unlock()
	if closed {
		return errClosed
	}
	if syncErr != nil {
		return syncErr
	}
	if readOnly {
		return errors.New("store: opened read-only")
	}
	return nil
}

func decodeProfileRecord(payload []byte) (ProfileRecord, error) {
	user, rest, err := readLenBytes(payload)
	if err != nil {
		return ProfileRecord{}, err
	}
	learner, rest, err := readLenBytes(rest)
	if err != nil {
		return ProfileRecord{}, err
	}
	data, rest, err := readLenBytes(rest)
	if err != nil {
		return ProfileRecord{}, err
	}
	if len(rest) != 0 {
		return ProfileRecord{}, fmt.Errorf("trailing bytes")
	}
	return ProfileRecord{User: string(user), Learner: string(learner), Data: data}, nil
}

func decodeEvent(payload []byte) (Event, error) {
	if len(payload) < 1 {
		return Event{}, fmt.Errorf("empty event")
	}
	typ := EventType(payload[0])
	user, rest, err := readLenBytes(payload[1:])
	if err != nil {
		return Event{}, err
	}
	ev := Event{Type: typ, User: string(user)}
	switch typ {
	case EventFeedback:
		if len(rest) < 1 {
			return Event{}, fmt.Errorf("missing feedback byte")
		}
		ev.Fd = filter.NotRelevant
		if rest[0] == 1 {
			ev.Fd = filter.Relevant
		}
		if ev.Vec, rest, err = vsm.DecodeVector(rest[1:]); err != nil {
			return Event{}, err
		}
	case EventSubscribe:
		var learner []byte
		if learner, rest, err = readLenBytes(rest); err != nil {
			return Event{}, err
		}
		ev.Learner = string(learner)
		if ev.State, rest, err = readLenBytes(rest); err != nil {
			return Event{}, err
		}
	case EventUnsubscribe:
		// user only
	default:
		return Event{}, fmt.Errorf("unknown event type %d", typ)
	}
	if len(rest) != 0 {
		return Event{}, fmt.Errorf("trailing bytes")
	}
	return ev, nil
}

func readLenBytes(buf []byte) ([]byte, []byte, error) {
	n, k := binary.Uvarint(buf)
	if k <= 0 || n > uint64(len(buf)-k) {
		return nil, nil, fmt.Errorf("truncated field")
	}
	// n ≤ len(buf)-k ≤ MaxInt here, so int(n) cannot overflow — on
	// 32-bit platforms included, where a blind int(n) of an attacker-
	// controlled varint would go negative and panic the slice below.
	end := k + int(n)
	return buf[k:end], buf[end:], nil
}

// Record framing: 4-byte little-endian payload length, 4-byte CRC32
// (IEEE) of the payload, payload bytes — written in a single Write call
// so a torn append is always a contiguous prefix of one record.

func writeRecord(w io.Writer, payload []byte) error {
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// scanRecords parses framed records from data, returning the records of
// the valid prefix and that prefix's byte length. A remainder that looks
// like one torn append — a truncated header, a record extending past EOF,
// or a checksum failure on the final record — is not an error: committed
// simply stops before it. Anything else (a bad checksum or implausible
// length with valid data beyond it) is corruption and returns an error,
// because records are written in a single call: any fully readable length
// field was fully written, so mid-file damage is never a torn append.
func scanRecords(data []byte) (payloads [][]byte, committed int, err error) {
	off := 0
	for off < len(data) {
		if len(data)-off < 8 {
			return payloads, off, nil // torn header at tail
		}
		n := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > maxRecordLen {
			return payloads, off, fmt.Errorf("implausible record size %d at offset %d", n, off)
		}
		// n ≤ maxRecordLen < MaxInt32: the int conversions below are safe
		// on 32-bit platforms.
		if int64(len(data)-off-8) < n {
			return payloads, off, nil // torn record at tail
		}
		payload := data[off+8 : off+8+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			if off+8+int(n) == len(data) {
				return payloads, off, nil // torn final record
			}
			return payloads, off, fmt.Errorf("checksum mismatch at offset %d", off)
		}
		payloads = append(payloads, append([]byte(nil), payload...))
		off += 8 + int(n)
	}
	return payloads, off, nil
}

// restorable is the serialization contract learners must meet to be
// persisted (core.Profile, rocchio.Rocchio, rocchio.NRN all do).
type restorable interface {
	UnmarshalBinary([]byte) error
}

// newRestored builds a learner of the named type and loads state into it.
func newRestored(user, learner string, state []byte) (filter.Learner, error) {
	l, err := filter.New(learner)
	if err != nil {
		return nil, fmt.Errorf("store: restore %q: %w", user, err)
	}
	if len(state) == 0 {
		return l, nil
	}
	r, ok := l.(restorable)
	if !ok {
		return nil, fmt.Errorf("store: learner %q is not restorable", learner)
	}
	if err := r.UnmarshalBinary(state); err != nil {
		return nil, fmt.Errorf("store: restore %q: %w", user, err)
	}
	return l, nil
}

// Restore reconstructs learners from a Load result: snapshot profiles are
// instantiated via the filter registry and unmarshalled, then the event
// log is replayed in order. Learner update rules are deterministic, so the
// result is exactly the pre-crash state. Recovery is all-or-nothing: any
// undecodable record or inconsistency (feedback for an unknown user) is an
// error.
func Restore(profiles []ProfileRecord, events []Event) (map[string]filter.Learner, error) {
	out := make(map[string]filter.Learner, len(profiles))
	for _, p := range profiles {
		l, err := newRestored(p.User, p.Learner, p.Data)
		if err != nil {
			return nil, err
		}
		out[p.User] = l
	}
	for i, ev := range events {
		switch ev.Type {
		case EventSubscribe:
			l, err := newRestored(ev.User, ev.Learner, ev.State)
			if err != nil {
				return nil, err
			}
			out[ev.User] = l
		case EventUnsubscribe:
			delete(out, ev.User)
		case EventFeedback:
			l, ok := out[ev.User]
			if !ok {
				return nil, fmt.Errorf("store: event %d: feedback for unknown user %q", i, ev.User)
			}
			l.Observe(ev.Vec, ev.Fd)
		default:
			return nil, fmt.Errorf("store: event %d: unknown type %d", i, ev.Type)
		}
	}
	return out, nil
}

// Users lists the distinct users across a Load result, sorted.
func Users(profiles []ProfileRecord, events []Event) []string {
	seen := map[string]bool{}
	for _, p := range profiles {
		seen[p.User] = true
	}
	for _, ev := range events {
		if ev.Type == EventUnsubscribe {
			delete(seen, ev.User)
		} else {
			seen[ev.User] = true
		}
	}
	out := make([]string, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}
