// Package store persists user profiles, the long-lived state of a
// filtering system ("profile vectors are stored and maintained for long
// periods of time", paper Section 4.3). It scales the classic checkpoint
// + write-ahead-log design past one machine's RAM by sharding it
// (DESIGN.md §14):
//
//   - users hash (FNV-1a) to one of N WAL lanes; each lane appends
//     feedback/subscribe/unsubscribe events to its own log
//     (wal-<lane>-<gen>.log) and tracks its own dirty-profile set;
//   - each lane's profiles live in an immutable segment
//     (seg-<lane>-<gen>.db), rewritten only when the lane is dirty enough
//     — Checkpoint compacts a lane's WAL into its segment instead of
//     rewriting every profile in the store;
//   - a MANIFEST file names the current generation of every lane and is
//     replaced atomically (temp + fsync + rename + directory fsync), so a
//     multi-lane checkpoint commits all lanes at once or not at all.
//
// Recovery loads each lane's manifest-referenced segment and replays its
// log; the learners' update rules are deterministic, so replay
// reconstructs the exact pre-crash profiles, and RestoreUser replays a
// single user on demand for lazy hydration. Every record is
// length-prefixed and CRC32-guarded. A torn tail (crash mid-append) is
// detected at Open and truncated away before any new append can land
// behind it; corruption anywhere before the tail is refused, never
// silently skipped.
//
// Durability is group-committed (DESIGN.md §10): with Options.Durable,
// each Append* returns only after an fsync covers its record. One leader
// at a time fsyncs every lane with unacknowledged records — in parallel
// when several lanes are dirty — so concurrent appenders coalesce onto a
// single leader pass no matter which lanes they landed in.
// Options.SyncInterval instead bounds the loss window with a background
// flusher, and Sync() is always available as an explicit barrier. All
// filesystem access goes through internal/faultfs, so the crash-matrix
// test can kill the store at every syscall boundary; production runs on
// bare *os.File handles.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mmprofile/internal/faultfs"
	"mmprofile/internal/filter"
	"mmprofile/internal/metrics"
	"mmprofile/internal/topk"
	"mmprofile/internal/trace"
	"mmprofile/internal/vsm"
)

// ProfileRecord is one user's serialized profile in a segment.
type ProfileRecord struct {
	User    string
	Learner string // registry name, used to reconstruct the right type
	Data    []byte // learner's MarshalBinary output
}

// EventType tags a log record.
type EventType byte

const (
	// EventFeedback is a relevance judgment (user, fd, document vector).
	EventFeedback EventType = iota
	// EventSubscribe is a new subscription (user, learner name, and the
	// learner's initial serialized state, e.g. a keyword seed).
	EventSubscribe
	// EventUnsubscribe removes a user.
	EventUnsubscribe
)

// Event is one replayable log record.
type Event struct {
	Type EventType
	User string
	// Feedback fields.
	Fd  filter.Feedback
	Vec vsm.Vector
	// Subscribe fields.
	Learner string
	State   []byte
}

// DefaultLanes is the lane count for stores created without an explicit
// Options.Lanes. An existing manifest always pins the count.
const DefaultLanes = 4

// Options configures a Store.
type Options struct {
	// Durable makes every Append* return only once an fsync covers its
	// record. Appenders arriving while a sync is in flight coalesce onto
	// the next leader pass (group commit), so the cost under concurrency
	// is far below one fsync per append.
	Durable bool
	// SyncInterval, when > 0 and Durable is off, bounds the loss window
	// instead: appends return immediately and a background flusher fsyncs
	// the lanes every interval. Sync() remains an explicit barrier.
	SyncInterval time.Duration
	// ReadOnly opens the store for inspection: no torn-tail repair, no
	// log handles, no migration, and Load tolerates a torn tail the way
	// recovery would. Appends, Checkpoint, and Sync fail. mmstore uses
	// this so inspecting a crashed state directory never mutates it.
	ReadOnly bool
	// Lanes is the WAL lane (shard) count used when creating a store from
	// scratch or migrating a pre-manifest layout. An existing manifest
	// pins the count and this value is ignored. <= 0 means DefaultLanes.
	Lanes int
	// FS overrides the filesystem — fault injection in tests
	// (faultfs.Sim). Nil means the real OS filesystem.
	FS faultfs.FS
	// Metrics, when non-nil, receives the mm_store_* instrument family
	// (append/fsync/checkpoint/group-commit latencies and counts). Nil
	// disables instrumentation entirely.
	Metrics *metrics.Registry
	// Top, when non-nil, receives the store's per-lane attribution
	// dimensions (DESIGN.md §16): WAL-append weight in bytes and fsync
	// counts, keyed by lane — the skew view of which lanes the FNV
	// routing is actually loading. mmserver shares one registry between
	// the broker and the store.
	Top *topk.Registry
}

// Store is a directory-backed profile store. Safe for concurrent use.
type Store struct {
	opts Options
	fsys faultfs.FS
	m    storeMetrics // all-nil (no-op) when opts.Metrics is nil
	dir  string

	lanes []*lane
	epoch atomic.Uint64 // manifest commit counter

	// cmu guards the group-commit state: the global sync token plus every
	// lane's durability watermark and sticky fsync error. Lock
	// discipline: no goroutine ever waits for cmu while holding a lane
	// mutex (appenders release their lane before joining a commit), so
	// the sync leader may take lane mutexes briefly while the token is
	// claimed.
	cmu     sync.Mutex
	cond    *sync.Cond
	syncing bool // sync token: one leader pass (or one layout change) at a time
	closed  bool

	// ckptMu serializes checkpoints and manifest writes; lane generations
	// only change under it.
	ckptMu sync.Mutex

	// Per-lane attribution (Options.Top): append weight and fsync counts
	// keyed by pre-rendered lane names, so the hot path offers a resident
	// string with zero allocations. All nil (no-op) when Top is nil.
	laneKeys  []string
	topAppend *topk.Sketch[string]
	topFsync  *topk.Sketch[string]

	stopFlush chan struct{} // interval flusher; nil unless SyncInterval armed
	flushDone chan struct{}
}

const (
	snapPrefix = "snap-" // legacy pre-manifest snapshot naming
	walPrefix  = "wal-"
	segPrefix  = "seg-"
	// maxRecordLen bounds a record's claimed payload size. Records are
	// written in one Write call, so any readable length field was fully
	// written; a length beyond this bound is therefore corruption, never
	// a torn append.
	maxRecordLen = 1 << 28
)

var errClosed = errors.New("store: closed")

// Open opens (or initializes) a store in dir, creating it if needed. A
// torn lane tail left by a crash mid-append is truncated here, before any
// append can land behind it; mid-log corruption makes Open fail rather
// than risk silently dropping everything after the damage. A pre-manifest
// single-WAL directory is migrated into the lane layout on first
// read-write open (the legacy files are removed only after the manifest
// commit, so a crash mid-migration just re-runs it).
func Open(dir string, opts Options) (*Store, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = faultfs.OS()
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{opts: opts, fsys: fsys, dir: dir}
	s.cond = sync.NewCond(&s.cmu)
	if opts.Metrics != nil {
		s.m = RegisterMetrics(opts.Metrics)
	}

	mf, found, err := readManifest(fsys, dir)
	if err != nil {
		return nil, err
	}
	var legacySeq uint64
	var hasLegacy bool
	if !found {
		if legacySeq, hasLegacy, err = detectLegacy(fsys, dir); err != nil {
			return nil, err
		}
	}
	switch {
	case found:
		s.epoch.Store(mf.epoch)
		s.lanes = makeLanes(len(mf.gens))
		for i, g := range mf.gens {
			s.lanes[i].gen = g
		}
	case opts.ReadOnly:
		// Pre-manifest (or empty) directory: inspect it through a single
		// legacy-named lane; nothing is repaired, migrated, or written.
		s.lanes = []*lane{{legacy: true, gen: legacySeq, dirty: map[string]struct{}{}}}
	case hasLegacy:
		s.lanes = makeLanes(laneCount(opts))
		if err := s.migrateLegacy(legacySeq); err != nil {
			return nil, err
		}
	default:
		s.lanes = makeLanes(laneCount(opts))
		s.epoch.Store(1)
		if err := s.writeManifest(s.manifestNow()); err != nil {
			return nil, err
		}
	}
	s.m.lanes.Set(float64(len(s.lanes)))
	if opts.Top != nil {
		s.laneKeys = make([]string, len(s.lanes))
		for i := range s.lanes {
			s.laneKeys[i] = fmt.Sprintf("lane-%d", i)
		}
		s.topAppend = topk.New[string]("lane_append_bytes",
			"WAL bytes appended, by lane.",
			2*len(s.lanes), 1, topk.HashString, topk.FormatString)
		s.topFsync = topk.New[string]("lane_fsyncs",
			"WAL fsyncs performed, by lane.",
			2*len(s.lanes), 1, topk.HashString, topk.FormatString)
		opts.Top.Register(s.topAppend)
		opts.Top.Register(s.topFsync)
	}

	if !opts.ReadOnly {
		s.cleanStrays()
		for _, ln := range s.lanes {
			if err := s.openLaneWAL(ln); err != nil {
				s.closeLaneHandles()
				return nil, err
			}
		}
		// Persist the lanes' directory entries (file creations, and any
		// torn-tail truncate's metadata) in one pass.
		if err := fsys.SyncDir(dir); err != nil {
			s.closeLaneHandles()
			return nil, fmt.Errorf("store: %w", err)
		}
		if opts.SyncInterval > 0 && !opts.Durable {
			s.stopFlush = make(chan struct{})
			s.flushDone = make(chan struct{})
			go s.flushLoop(opts.SyncInterval)
		}
	}
	return s, nil
}

func laneCount(opts Options) int {
	n := opts.Lanes
	if n <= 0 {
		n = DefaultLanes
	}
	if n > maxLanes {
		n = maxLanes
	}
	return n
}

// closeLaneHandles abandons a half-constructed store's WAL handles.
func (s *Store) closeLaneHandles() {
	for _, ln := range s.lanes {
		if ln.wal != nil {
			ln.wal.Close()
			ln.wal = nil
		}
	}
}

// genSeq parses a legacy generation file name (prefix + zero-padded seq +
// suffix, no lane component); ok is false for anything else, including
// lane-qualified names and stray files.
func genSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// flushLoop is the SyncInterval background flusher.
func (s *Store) flushLoop(d time.Duration) {
	defer close(s.flushDone)
	t := time.NewTicker(d)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			// Best-effort: a failure is sticky in the lane's syncErr and
			// surfaces on the next explicit barrier or durable operation.
			_ = s.Sync()
		case <-s.stopFlush:
			return
		}
	}
}

// Close drains any in-flight group commit, flushes every lane, and closes
// the log handles. Safe to call twice.
func (s *Store) Close() error {
	s.cmu.Lock()
	stop := s.stopFlush
	s.stopFlush = nil
	s.cmu.Unlock()
	if stop != nil {
		close(stop)
		<-s.flushDone
	}

	s.cmu.Lock()
	for s.syncing {
		s.cond.Wait()
	}
	s.syncing = true
	s.cmu.Unlock()

	var err error
	type fin struct {
		ln   *lane
		recs uint64
	}
	var fins []fin
	for _, ln := range s.lanes {
		ln.mu.Lock()
		if ln.wal != nil {
			var lerr error
			if ln.failed == nil {
				lerr = ln.wal.Sync()
			}
			if cerr := ln.wal.Close(); lerr == nil {
				lerr = cerr
			}
			ln.wal = nil
			if lerr == nil {
				fins = append(fins, fin{ln, ln.recs})
			} else if err == nil {
				err = lerr
			}
		}
		ln.mu.Unlock()
	}

	s.cmu.Lock()
	s.syncing = false
	s.closed = true
	for _, f := range fins {
		if f.recs > f.ln.durable {
			f.ln.durable = f.recs
		}
	}
	s.cond.Broadcast()
	s.cmu.Unlock()
	return err
}

// AppendFeedback records one feedback event.
func (s *Store) AppendFeedback(user string, v vsm.Vector, fd filter.Feedback) error {
	return s.AppendFeedbackTraced(user, v, fd, nil)
}

// AppendFeedbackTraced is AppendFeedback with request tracing: when sp is a
// live span (it may be nil), the append's phases are recorded as child
// spans — store.wal_write for the serialized write under the lane lock and
// store.commit_wait for the group-commit fsync wait (durable mode only),
// the two very different reasons an append can be slow.
func (s *Store) AppendFeedbackTraced(user string, v vsm.Vector, fd filter.Feedback, sp *trace.Span) error {
	payload := []byte{byte(EventFeedback)}
	payload = appendLenBytes(payload, []byte(user))
	b := byte(0)
	if fd == filter.Relevant {
		b = 1
	}
	payload = append(payload, b)
	payload = vsm.AppendVector(payload, v)
	return s.appendPayload(user, payload, sp)
}

// AppendSubscribe records a new subscription together with the learner's
// initial serialized state.
func (s *Store) AppendSubscribe(user, learner string, state []byte) error {
	payload := []byte{byte(EventSubscribe)}
	payload = appendLenBytes(payload, []byte(user))
	payload = appendLenBytes(payload, []byte(learner))
	payload = appendLenBytes(payload, state)
	return s.appendPayload(user, payload, nil)
}

// AppendUnsubscribe records a user's removal.
func (s *Store) AppendUnsubscribe(user string) error {
	payload := []byte{byte(EventUnsubscribe)}
	payload = appendLenBytes(payload, []byte(user))
	return s.appendPayload(user, payload, nil)
}

func (s *Store) appendPayload(user string, payload []byte, sp *trace.Span) error {
	t0 := time.Now()
	ln := s.laneFor(user)
	ws := sp.ChildAt("store.wal_write", t0)
	ln.mu.Lock()
	if ln.wal == nil {
		ln.mu.Unlock()
		if s.opts.ReadOnly {
			return errors.New("store: read-only")
		}
		return errClosed
	}
	if ln.failed != nil {
		err := ln.failed
		ln.mu.Unlock()
		return err
	}
	if err := writeRecord(ln.wal, payload); err != nil {
		// A failed or short write leaves bytes of unknown extent in the
		// lane's file; any later append would land behind garbage. Poison
		// this lane's write path — reopening repairs via the torn-tail
		// scan. Other lanes keep accepting appends.
		ln.failed = err
		ln.mu.Unlock()
		ws.End()
		return err
	}
	ln.walLen += int64(len(payload)) + 8
	ln.recs++
	pos := ln.recs
	if _, ok := ln.dirty[user]; !ok {
		ln.dirty[user] = struct{}{}
		s.m.dirtyProfiles.Add(1)
	}
	ln.mu.Unlock()
	ws.SetInt("bytes", int64(len(payload))+8)
	ws.End()

	s.m.appends.Inc()
	if s.topAppend != nil {
		s.topAppend.Offer(s.laneKeys[ln.id], float64(len(payload))+8)
	}
	if s.opts.Durable {
		cw := sp.Child("store.commit_wait")
		err := s.waitDurable(ln, pos)
		cw.End()
		if err != nil {
			return err
		}
	}
	s.m.appendLat.ObserveSince(t0)
	return nil
}

func appendLenBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

// Sync is the durability barrier: it returns once every record appended
// to any lane before the call is fsynced, leading at most one group pass
// itself (and none when group commits already covered them).
func (s *Store) Sync() error {
	if s.opts.ReadOnly {
		return errors.New("store: read-only")
	}
	type point struct {
		ln  *lane
		pos uint64
	}
	points := make([]point, 0, len(s.lanes))
	for _, ln := range s.lanes {
		ln.mu.Lock()
		if ln.wal == nil {
			ln.mu.Unlock()
			return errClosed
		}
		points = append(points, point{ln, ln.recs})
		ln.mu.Unlock()
	}
	for _, p := range points {
		// The first wait's leader pass fsyncs every lane with pending
		// records, so the remaining waits almost always return instantly.
		if err := s.waitDurable(p.ln, p.pos); err != nil {
			return err
		}
	}
	return nil
}

// waitDurable blocks until ln's records 1..pos are covered by an
// acknowledged fsync. The first waiter to find no leader in flight claims
// the token and leads one pass over every lane with unacknowledged
// records; waiters that arrive mid-pass coalesce onto the next one. This
// is the group commit: under N concurrent durable appenders — across any
// mix of lanes — each leader pass acknowledges a whole batch.
func (s *Store) waitDurable(ln *lane, pos uint64) error {
	t0 := time.Now()
	s.cmu.Lock()
	for {
		if ln.durable >= pos {
			s.cmu.Unlock()
			s.m.groupWaitLat.ObserveSince(t0)
			return nil
		}
		if ln.syncErr != nil {
			err := ln.syncErr
			s.cmu.Unlock()
			return err
		}
		if s.closed {
			s.cmu.Unlock()
			return errClosed
		}
		if !s.syncing {
			s.syncing = true
			s.cmu.Unlock()
			s.leadSync()
			s.cmu.Lock()
			continue
		}
		s.cond.Wait()
	}
}

// syncTarget is one lane the leader pass must fsync.
type syncTarget struct {
	ln *lane
	f  faultfs.File
	to uint64
	err error
}

// leadSync performs one group-commit pass: fsync every lane holding
// records beyond its durability watermark — in parallel when there are
// several — then advance all the watermarks at once. Caller holds the
// sync token (not cmu); the token keeps the log handles stable —
// Checkpoint and Close wait for it before swapping or closing WALs.
func (s *Store) leadSync() {
	var targets []*syncTarget
	for _, ln := range s.lanes {
		ln.mu.Lock()
		f, to := ln.wal, ln.recs
		ln.mu.Unlock()
		s.cmu.Lock()
		pending := ln.syncErr == nil && to > ln.durable
		s.cmu.Unlock()
		if pending {
			tg := &syncTarget{ln: ln, f: f, to: to}
			if f == nil {
				tg.err = errClosed
			}
			targets = append(targets, tg)
		}
	}

	if len(targets) == 1 {
		s.syncLane(targets[0])
	} else if len(targets) > 1 {
		var wg sync.WaitGroup
		for _, tg := range targets {
			wg.Add(1)
			go func(tg *syncTarget) {
				defer wg.Done()
				s.syncLane(tg)
			}(tg)
		}
		wg.Wait()
	}

	s.cmu.Lock()
	s.syncing = false
	var batch uint64
	for _, tg := range targets {
		if tg.err != nil {
			tg.ln.syncErr = tg.err
		} else if tg.to > tg.ln.durable {
			batch += tg.to - tg.ln.durable
			tg.ln.durable = tg.to
		}
	}
	if batch > 0 {
		s.m.groupBatches.Inc()
		s.m.groupRecords.Add(int64(batch))
		s.m.groupBatchRecs.Observe(float64(batch))
	}
	s.cond.Broadcast()
	s.cmu.Unlock()
}

func (s *Store) syncLane(tg *syncTarget) {
	if tg.err != nil {
		return
	}
	t0 := time.Now()
	if tg.err = tg.f.Sync(); tg.err == nil {
		s.m.fsyncs.Inc()
		s.m.fsyncLat.ObserveSince(t0)
		if s.topFsync != nil {
			s.topFsync.Offer(s.laneKeys[tg.ln.id], 1)
		}
	}
}

// Load reads every lane's segment and log, lane by lane under each lane's
// lock, so a concurrent append can never be misread as a torn tail and
// silently dropped. Profiles and events are concatenated in lane order;
// a user's records all live in one lane, so per-user order — the only
// order replay depends on — is exactly the append order. In ReadOnly mode
// a genuinely torn tail is tolerated exactly as recovery would tolerate
// it; in read-write mode the tails were already truncated at Open, so any
// trailing garbage is an error.
func (s *Store) Load() ([]ProfileRecord, []Event, error) {
	var profiles []ProfileRecord
	var events []Event
	for _, ln := range s.lanes {
		ln.mu.Lock()
		ps, evs, err := s.loadLane(ln)
		ln.mu.Unlock()
		if err != nil {
			return nil, nil, err
		}
		profiles = append(profiles, ps...)
		events = append(events, evs...)
	}
	return profiles, events, nil
}

// loadLane decodes one lane's segment and committed WAL (caller holds
// ln.mu).
func (s *Store) loadLane(ln *lane) ([]ProfileRecord, []Event, error) {
	if err := s.loadSeg(ln); err != nil {
		return nil, nil, err
	}
	var profiles []ProfileRecord
	for i, e := range ln.segRecs {
		rec, err := decodeProfileRecord(e.payload)
		if err != nil {
			return nil, nil, fmt.Errorf("store: lane %d segment %d record %d: %w", ln.id, ln.gen, i, err)
		}
		profiles = append(profiles, rec)
	}
	payloads, err := s.laneWALRecords(ln)
	if err != nil {
		return nil, nil, err
	}
	var events []Event
	for i, payload := range payloads {
		ev, err := decodeEvent(payload)
		if err != nil {
			return nil, nil, fmt.Errorf("store: lane %d wal %d record %d: %w", ln.id, ln.gen, i, err)
		}
		events = append(events, ev)
	}
	return profiles, events, nil
}

// readFileOrEmpty reads a file, mapping absence to emptiness.
func (s *Store) readFileOrEmpty(path string) ([]byte, error) {
	data, err := s.fsys.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	return data, nil
}

// LaneInfo describes one lane's on-disk state, for inspection tooling
// (mmstore lanes).
type LaneInfo struct {
	Lane        int    // lane id
	Gen         uint64 // manifest-committed generation
	Records     int    // complete, checksummed WAL records
	Committed   int64  // byte length of the WAL's valid prefix
	Torn        int64  // trailing bytes past the valid prefix (crash residue)
	DirtyUsers  int    // distinct users with events in the current WAL
	SegProfiles int    // profiles in the current segment
	SegBytes    int64  // byte size of the current segment
}

// LaneInfos scans every lane's files and reports their integrity. A
// non-nil error means corruption before some lane's tail; the returned
// infos still describe every lane's valid prefix.
func (s *Store) LaneInfos() ([]LaneInfo, error) {
	var firstErr error
	out := make([]LaneInfo, 0, len(s.lanes))
	for _, ln := range s.lanes {
		ln.mu.Lock()
		li := LaneInfo{Lane: ln.id, Gen: ln.gen}
		data, err := s.readFileOrEmpty(s.walPath(ln, ln.gen))
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("store: lane %d: %w", ln.id, err)
			}
		} else {
			payloads, committed, serr := scanRecords(data)
			li.Records = len(payloads)
			li.Committed = int64(committed)
			li.Torn = int64(len(data) - committed)
			seen := make(map[string]bool)
			for _, p := range payloads {
				if ev, derr := decodeEvent(p); derr == nil {
					seen[ev.User] = true
				}
			}
			li.DirtyUsers = len(seen)
			if serr != nil && firstErr == nil {
				firstErr = fmt.Errorf("store: lane %d wal %d: %w", ln.id, ln.gen, serr)
			}
		}
		if ln.gen > 0 {
			if sdata, err := s.readFileOrEmpty(s.segPath(ln, ln.gen)); err == nil {
				li.SegBytes = int64(len(sdata))
				if payloads, _, serr := scanRecords(sdata); serr == nil {
					li.SegProfiles = len(payloads)
				}
			}
		}
		ln.mu.Unlock()
		out = append(out, li)
	}
	return out, firstErr
}

// WALInfo describes the journal's aggregate on-disk integrity across all
// lanes, for inspection tooling (mmstore) and the flight recorder.
type WALInfo struct {
	Seq       uint64 // manifest epoch (commit count)
	Lanes     int    // lane count
	Records   int    // complete, checksummed records across all lane WALs
	Committed int64  // byte length of the valid prefixes
	Torn      int64  // trailing bytes past the valid prefixes (crash residue)
}

// WALInfo aggregates LaneInfos. A non-nil error means corruption before
// some lane's tail; the returned info still describes the valid prefixes.
func (s *Store) WALInfo() (WALInfo, error) {
	lis, err := s.LaneInfos()
	info := WALInfo{Seq: s.epoch.Load(), Lanes: len(lis)}
	for _, li := range lis {
		info.Records += li.Records
		info.Committed += li.Committed
		info.Torn += li.Torn
	}
	return info, err
}

// Health rolls up the store's sticky failure state without touching disk,
// worst lane first: a write-path poison on any lane, then closed, then
// any lane's sticky fsync failure. Nil means every lane's write path is
// healthy. ReadOnly stores report a degraded-style error since they
// cannot accept appends. Cheap enough to poll from /readyz — one mutex
// acquisition per lane plus one for the commit state, no I/O.
func (s *Store) Health() error {
	if s.opts.ReadOnly {
		return errors.New("store: opened read-only")
	}
	var failed error
	for _, ln := range s.lanes {
		ln.mu.Lock()
		if ln.failed != nil && failed == nil {
			failed = fmt.Errorf("store: lane %d: %w", ln.id, ln.failed)
		}
		ln.mu.Unlock()
	}
	if failed != nil {
		return failed
	}
	var syncErr error
	s.cmu.Lock()
	closed := s.closed
	for _, ln := range s.lanes {
		if ln.syncErr != nil && syncErr == nil {
			syncErr = fmt.Errorf("store: lane %d: %w", ln.id, ln.syncErr)
		}
	}
	s.cmu.Unlock()
	if closed {
		return errClosed
	}
	return syncErr
}

func encodeProfilePayload(user, learner string, data []byte) []byte {
	payload := binary.AppendUvarint(nil, uint64(len(user)))
	payload = append(payload, user...)
	payload = binary.AppendUvarint(payload, uint64(len(learner)))
	payload = append(payload, learner...)
	payload = binary.AppendUvarint(payload, uint64(len(data)))
	payload = append(payload, data...)
	return payload
}

func decodeProfileRecord(payload []byte) (ProfileRecord, error) {
	user, rest, err := readLenBytes(payload)
	if err != nil {
		return ProfileRecord{}, err
	}
	learner, rest, err := readLenBytes(rest)
	if err != nil {
		return ProfileRecord{}, err
	}
	data, rest, err := readLenBytes(rest)
	if err != nil {
		return ProfileRecord{}, err
	}
	if len(rest) != 0 {
		return ProfileRecord{}, fmt.Errorf("trailing bytes")
	}
	return ProfileRecord{User: string(user), Learner: string(learner), Data: data}, nil
}

func decodeEvent(payload []byte) (Event, error) {
	if len(payload) < 1 {
		return Event{}, fmt.Errorf("empty event")
	}
	typ := EventType(payload[0])
	user, rest, err := readLenBytes(payload[1:])
	if err != nil {
		return Event{}, err
	}
	ev := Event{Type: typ, User: string(user)}
	switch typ {
	case EventFeedback:
		if len(rest) < 1 {
			return Event{}, fmt.Errorf("missing feedback byte")
		}
		ev.Fd = filter.NotRelevant
		if rest[0] == 1 {
			ev.Fd = filter.Relevant
		}
		if ev.Vec, rest, err = vsm.DecodeVector(rest[1:]); err != nil {
			return Event{}, err
		}
	case EventSubscribe:
		var learner []byte
		if learner, rest, err = readLenBytes(rest); err != nil {
			return Event{}, err
		}
		ev.Learner = string(learner)
		if ev.State, rest, err = readLenBytes(rest); err != nil {
			return Event{}, err
		}
	case EventUnsubscribe:
		// user only
	default:
		return Event{}, fmt.Errorf("unknown event type %d", typ)
	}
	if len(rest) != 0 {
		return Event{}, fmt.Errorf("trailing bytes")
	}
	return ev, nil
}

// eventUserIs reports whether the framed event payload names user,
// without decoding the rest of the event (RestoreUser filters a whole
// lane WAL this way before paying for vector decodes).
func eventUserIs(payload []byte, user string) bool {
	if len(payload) < 1 {
		return false
	}
	u, _, err := readLenBytes(payload[1:])
	return err == nil && string(u) == user
}

func readLenBytes(buf []byte) ([]byte, []byte, error) {
	n, k := binary.Uvarint(buf)
	if k <= 0 || n > uint64(len(buf)-k) {
		return nil, nil, fmt.Errorf("truncated field")
	}
	// n ≤ len(buf)-k ≤ MaxInt here, so int(n) cannot overflow — on
	// 32-bit platforms included, where a blind int(n) of an attacker-
	// controlled varint would go negative and panic the slice below.
	end := k + int(n)
	return buf[k:end], buf[end:], nil
}

// Record framing: 4-byte little-endian payload length, 4-byte CRC32
// (IEEE) of the payload, payload bytes — written in a single Write call
// so a torn append is always a contiguous prefix of one record.

func writeRecord(w io.Writer, payload []byte) error {
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[8:], payload)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// scanRecords parses framed records from data, returning the records of
// the valid prefix and that prefix's byte length. A remainder that looks
// like one torn append — a truncated header, a record extending past EOF,
// or a checksum failure on the final record — is not an error: committed
// simply stops before it. Anything else (a bad checksum or implausible
// length with valid data beyond it) is corruption and returns an error,
// because records are written in a single call: any fully readable length
// field was fully written, so mid-file damage is never a torn append.
func scanRecords(data []byte) (payloads [][]byte, committed int, err error) {
	off := 0
	for off < len(data) {
		if len(data)-off < 8 {
			return payloads, off, nil // torn header at tail
		}
		n := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > maxRecordLen {
			return payloads, off, fmt.Errorf("implausible record size %d at offset %d", n, off)
		}
		// n ≤ maxRecordLen < MaxInt32: the int conversions below are safe
		// on 32-bit platforms.
		if int64(len(data)-off-8) < n {
			return payloads, off, nil // torn record at tail
		}
		payload := data[off+8 : off+8+int(n)]
		if crc32.ChecksumIEEE(payload) != sum {
			if off+8+int(n) == len(data) {
				return payloads, off, nil // torn final record
			}
			return payloads, off, fmt.Errorf("checksum mismatch at offset %d", off)
		}
		payloads = append(payloads, append([]byte(nil), payload...))
		off += 8 + int(n)
	}
	return payloads, off, nil
}

// restorable is the serialization contract learners must meet to be
// persisted (core.Profile, rocchio.Rocchio, rocchio.NRN all do).
type restorable interface {
	UnmarshalBinary([]byte) error
}

// newRestored builds a learner of the named type and loads state into it.
func newRestored(user, learner string, state []byte) (filter.Learner, error) {
	l, err := filter.New(learner)
	if err != nil {
		return nil, fmt.Errorf("store: restore %q: %w", user, err)
	}
	if len(state) == 0 {
		return l, nil
	}
	r, ok := l.(restorable)
	if !ok {
		return nil, fmt.Errorf("store: learner %q is not restorable", learner)
	}
	if err := r.UnmarshalBinary(state); err != nil {
		return nil, fmt.Errorf("store: restore %q: %w", user, err)
	}
	return l, nil
}

// Restore reconstructs learners from a Load result: segment profiles are
// instantiated via the filter registry and unmarshalled, then the event
// log is replayed in order. Events arrive concatenated lane by lane, but
// a user's events all live in one lane, so the per-user order — the only
// order deterministic replay depends on — is the append order. Recovery
// is all-or-nothing: any undecodable record or inconsistency (feedback
// for an unknown user) is an error.
func Restore(profiles []ProfileRecord, events []Event) (map[string]filter.Learner, error) {
	out := make(map[string]filter.Learner, len(profiles))
	for _, p := range profiles {
		l, err := newRestored(p.User, p.Learner, p.Data)
		if err != nil {
			return nil, err
		}
		out[p.User] = l
	}
	for i, ev := range events {
		switch ev.Type {
		case EventSubscribe:
			l, err := newRestored(ev.User, ev.Learner, ev.State)
			if err != nil {
				return nil, err
			}
			out[ev.User] = l
		case EventUnsubscribe:
			delete(out, ev.User)
		case EventFeedback:
			l, ok := out[ev.User]
			if !ok {
				return nil, fmt.Errorf("store: event %d: feedback for unknown user %q", i, ev.User)
			}
			l.Observe(ev.Vec, ev.Fd)
		default:
			return nil, fmt.Errorf("store: event %d: unknown type %d", i, ev.Type)
		}
	}
	return out, nil
}

// RestoredNames maps each surviving user to its learner's registry name,
// without instantiating any learner state — the boot path for lazy
// hydration (pubsub registers evicted stubs and hydrates on first touch).
func RestoredNames(profiles []ProfileRecord, events []Event) map[string]string {
	out := make(map[string]string, len(profiles))
	for _, p := range profiles {
		out[p.User] = p.Learner
	}
	for _, ev := range events {
		switch ev.Type {
		case EventSubscribe:
			out[ev.User] = ev.Learner
		case EventUnsubscribe:
			delete(out, ev.User)
		}
	}
	return out
}

// Users lists the distinct users across a Load result, sorted.
func Users(profiles []ProfileRecord, events []Event) []string {
	seen := map[string]bool{}
	for _, p := range profiles {
		seen[p.User] = true
	}
	for _, ev := range events {
		if ev.Type == EventUnsubscribe {
			delete(seen, ev.User)
		} else {
			seen[ev.User] = true
		}
	}
	out := make([]string, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}
