// Package store persists user profiles, the long-lived state of a
// filtering system ("profile vectors are stored and maintained for long
// periods of time", paper Section 4.3). It uses the classic checkpoint +
// write-ahead-log design:
//
//   - a snapshot file (snap-<seq>.db) holds a full binary dump of every
//     profile, written atomically via temp-file + rename;
//   - a write-ahead log (wal-<seq>.log) records each feedback event
//     (user, judgment, document vector) applied since that snapshot.
//
// Recovery loads the newest snapshot and re-applies the matching log; the
// learners' update rules are deterministic, so replay reconstructs the
// exact pre-crash profiles. Every record is length-prefixed and CRC32-
// guarded, and a torn tail (crash mid-append) is detected and discarded.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mmprofile/internal/filter"
	"mmprofile/internal/metrics"
	"mmprofile/internal/vsm"
)

// ProfileRecord is one user's serialized profile in a snapshot.
type ProfileRecord struct {
	User    string
	Learner string // registry name, used to reconstruct the right type
	Data    []byte // learner's MarshalBinary output
}

// EventType tags a log record.
type EventType byte

const (
	// EventFeedback is a relevance judgment (user, fd, document vector).
	EventFeedback EventType = iota
	// EventSubscribe is a new subscription (user, learner name, and the
	// learner's initial serialized state, e.g. a keyword seed).
	EventSubscribe
	// EventUnsubscribe removes a user.
	EventUnsubscribe
)

// Event is one replayable log record.
type Event struct {
	Type EventType
	User string
	// Feedback fields.
	Fd  filter.Feedback
	Vec vsm.Vector
	// Subscribe fields.
	Learner string
	State   []byte
}

// Options configures a Store.
type Options struct {
	// SyncEveryAppend fsyncs the log after each feedback record. Durable
	// but slow; off by default (the log is still flushed by the OS and a
	// torn tail is recovered from).
	SyncEveryAppend bool
	// Metrics, when non-nil, receives the mm_store_* instrument family
	// (append/fsync/checkpoint latencies and counts). Nil disables
	// instrumentation entirely.
	Metrics *metrics.Registry
}

// Store is a directory-backed profile store. Safe for concurrent use.
type Store struct {
	opts Options
	m    storeMetrics // all-nil (no-op) when opts.Metrics is nil

	mu  sync.Mutex
	dir string
	seq uint64
	wal *os.File
}

const (
	snapPrefix = "snap-"
	walPrefix  = "wal-"
)

// Open opens (or initializes) a store in dir, creating it if needed.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	seq, err := latestSeq(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{opts: opts, dir: dir, seq: seq}
	if opts.Metrics != nil {
		s.m = RegisterMetrics(opts.Metrics)
	}
	if err := s.openWAL(); err != nil {
		return nil, err
	}
	return s, nil
}

// latestSeq finds the newest complete snapshot's sequence number (0 when
// the store is fresh; sequence 0 has no snapshot file).
func latestSeq(dir string) (uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	var best uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, ".db") {
			continue
		}
		n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), ".db"), 10, 64)
		if err != nil {
			continue // stray file
		}
		if n > best {
			best = n
		}
	}
	return best, nil
}

func (s *Store) snapPath(seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%08d.db", snapPrefix, seq))
}

func (s *Store) walPath(seq uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s%08d.log", walPrefix, seq))
}

// openWAL opens the current sequence's log for appending. Caller holds the
// lock (or is the constructor).
func (s *Store) openWAL() error {
	f, err := os.OpenFile(s.walPath(s.seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.wal = f
	return nil
}

// Close closes the log.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}

// AppendFeedback records one feedback event.
func (s *Store) AppendFeedback(user string, v vsm.Vector, fd filter.Feedback) error {
	payload := []byte{byte(EventFeedback)}
	payload = appendLenBytes(payload, []byte(user))
	b := byte(0)
	if fd == filter.Relevant {
		b = 1
	}
	payload = append(payload, b)
	payload = vsm.AppendVector(payload, v)
	return s.appendPayload(payload)
}

// AppendSubscribe records a new subscription together with the learner's
// initial serialized state.
func (s *Store) AppendSubscribe(user, learner string, state []byte) error {
	payload := []byte{byte(EventSubscribe)}
	payload = appendLenBytes(payload, []byte(user))
	payload = appendLenBytes(payload, []byte(learner))
	payload = appendLenBytes(payload, state)
	return s.appendPayload(payload)
}

// AppendUnsubscribe records a user's removal.
func (s *Store) AppendUnsubscribe(user string) error {
	payload := []byte{byte(EventUnsubscribe)}
	payload = appendLenBytes(payload, []byte(user))
	return s.appendPayload(payload)
}

func (s *Store) appendPayload(payload []byte) error {
	t0 := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return errors.New("store: closed")
	}
	if err := writeRecord(s.wal, payload); err != nil {
		return err
	}
	if s.opts.SyncEveryAppend {
		if err := s.syncLocked(); err != nil {
			return err
		}
	}
	s.m.appends.Inc()
	s.m.appendLat.ObserveSince(t0)
	return nil
}

func appendLenBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

// Sync fsyncs the log.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return errors.New("store: closed")
	}
	return s.syncLocked()
}

// syncLocked fsyncs the log with timing; caller holds the lock.
func (s *Store) syncLocked() error {
	t0 := time.Now()
	if err := s.wal.Sync(); err != nil {
		return err
	}
	s.m.fsyncs.Inc()
	s.m.fsyncLat.ObserveSince(t0)
	return nil
}

// Snapshot atomically writes a new snapshot of every profile and starts a
// fresh, empty log; older snapshot/log generations are removed
// (best-effort) afterwards.
func (s *Store) Snapshot(profiles []ProfileRecord) error {
	t0 := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return errors.New("store: closed")
	}
	next := s.seq + 1

	tmp, err := os.CreateTemp(s.dir, "snap-*.tmp")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	var bytes int64
	for _, p := range profiles {
		payload := binary.AppendUvarint(nil, uint64(len(p.User)))
		payload = append(payload, p.User...)
		payload = binary.AppendUvarint(payload, uint64(len(p.Learner)))
		payload = append(payload, p.Learner...)
		payload = binary.AppendUvarint(payload, uint64(len(p.Data)))
		payload = append(payload, p.Data...)
		if err := writeRecord(tmp, payload); err != nil {
			tmp.Close()
			return err
		}
		bytes += int64(len(payload)) + 8 // record framing header
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.snapPath(next)); err != nil {
		return fmt.Errorf("store: %w", err)
	}

	// The new snapshot is durable; switch to its (empty) log.
	old := s.wal
	s.seq = next
	if err := s.openWAL(); err != nil {
		// Revert to the old generation rather than losing the handle.
		s.seq = next - 1
		s.wal = old
		return err
	}
	old.Close()

	// Best-effort cleanup of older generations.
	for seq := next - 1; ; seq-- {
		snapGone := os.Remove(s.snapPath(seq)) != nil
		walGone := os.Remove(s.walPath(seq)) != nil
		if snapGone && walGone || seq == 0 {
			break
		}
	}
	s.m.checkpoints.Inc()
	s.m.checkpointBytes.Set(float64(bytes))
	s.m.checkpointLat.ObserveSince(t0)
	return nil
}

// Load reads the newest snapshot and its log. It is typically called once,
// right after Open, to rebuild broker state. A torn final log record
// (crash mid-append) is silently discarded; any earlier corruption is an
// error.
func (s *Store) Load() ([]ProfileRecord, []Event, error) {
	s.mu.Lock()
	seq := s.seq
	s.mu.Unlock()

	var profiles []ProfileRecord
	if seq > 0 {
		payloads, err := readRecords(s.snapPath(seq), false)
		if err != nil {
			return nil, nil, fmt.Errorf("store: snapshot %d: %w", seq, err)
		}
		for i, payload := range payloads {
			rec, err := decodeProfileRecord(payload)
			if err != nil {
				return nil, nil, fmt.Errorf("store: snapshot %d record %d: %w", seq, i, err)
			}
			profiles = append(profiles, rec)
		}
	}

	payloads, err := readRecords(s.walPath(seq), true)
	if err != nil {
		return nil, nil, fmt.Errorf("store: wal %d: %w", seq, err)
	}
	var events []Event
	for i, payload := range payloads {
		ev, err := decodeEvent(payload)
		if err != nil {
			return nil, nil, fmt.Errorf("store: wal %d record %d: %w", seq, i, err)
		}
		events = append(events, ev)
	}
	return profiles, events, nil
}

func decodeProfileRecord(payload []byte) (ProfileRecord, error) {
	user, rest, err := readLenBytes(payload)
	if err != nil {
		return ProfileRecord{}, err
	}
	learner, rest, err := readLenBytes(rest)
	if err != nil {
		return ProfileRecord{}, err
	}
	data, rest, err := readLenBytes(rest)
	if err != nil {
		return ProfileRecord{}, err
	}
	if len(rest) != 0 {
		return ProfileRecord{}, fmt.Errorf("trailing bytes")
	}
	return ProfileRecord{User: string(user), Learner: string(learner), Data: data}, nil
}

func decodeEvent(payload []byte) (Event, error) {
	if len(payload) < 1 {
		return Event{}, fmt.Errorf("empty event")
	}
	typ := EventType(payload[0])
	user, rest, err := readLenBytes(payload[1:])
	if err != nil {
		return Event{}, err
	}
	ev := Event{Type: typ, User: string(user)}
	switch typ {
	case EventFeedback:
		if len(rest) < 1 {
			return Event{}, fmt.Errorf("missing feedback byte")
		}
		ev.Fd = filter.NotRelevant
		if rest[0] == 1 {
			ev.Fd = filter.Relevant
		}
		if ev.Vec, rest, err = vsm.DecodeVector(rest[1:]); err != nil {
			return Event{}, err
		}
	case EventSubscribe:
		var learner []byte
		if learner, rest, err = readLenBytes(rest); err != nil {
			return Event{}, err
		}
		ev.Learner = string(learner)
		if ev.State, rest, err = readLenBytes(rest); err != nil {
			return Event{}, err
		}
	case EventUnsubscribe:
		// user only
	default:
		return Event{}, fmt.Errorf("unknown event type %d", typ)
	}
	if len(rest) != 0 {
		return Event{}, fmt.Errorf("trailing bytes")
	}
	return ev, nil
}

func readLenBytes(buf []byte) ([]byte, []byte, error) {
	n, k := binary.Uvarint(buf)
	if k <= 0 || uint64(len(buf)-k) < n {
		return nil, nil, fmt.Errorf("truncated field")
	}
	return buf[k : k+int(n)], buf[k+int(n):], nil
}

// Record framing: 4-byte little-endian payload length, 4-byte CRC32
// (IEEE) of the payload, payload bytes.

func writeRecord(w io.Writer, payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// readRecords reads every framed record in a file. With tolerateTail, an
// incomplete or CRC-failing *final* record is treated as a torn append and
// dropped; corruption elsewhere is always an error. A missing file yields
// no records.
func readRecords(path string, tolerateTail bool) ([][]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var out [][]byte
	off := 0
	for off < len(data) {
		if len(data)-off < 8 {
			if tolerateTail {
				return out, nil
			}
			return nil, fmt.Errorf("truncated header at offset %d", off)
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > 1<<28 {
			return nil, fmt.Errorf("implausible record size %d at offset %d", n, off)
		}
		if len(data)-off-8 < n {
			if tolerateTail {
				return out, nil
			}
			return nil, fmt.Errorf("truncated record at offset %d", off)
		}
		payload := data[off+8 : off+8+n]
		if crc32.ChecksumIEEE(payload) != sum {
			if tolerateTail && off+8+n == len(data) {
				return out, nil // torn final record
			}
			return nil, fmt.Errorf("checksum mismatch at offset %d", off)
		}
		out = append(out, append([]byte(nil), payload...))
		off += 8 + n
	}
	return out, nil
}

// restorable is the serialization contract learners must meet to be
// persisted (core.Profile, rocchio.Rocchio, rocchio.NRN all do).
type restorable interface {
	UnmarshalBinary([]byte) error
}

// newRestored builds a learner of the named type and loads state into it.
func newRestored(user, learner string, state []byte) (filter.Learner, error) {
	l, err := filter.New(learner)
	if err != nil {
		return nil, fmt.Errorf("store: restore %q: %w", user, err)
	}
	if len(state) == 0 {
		return l, nil
	}
	r, ok := l.(restorable)
	if !ok {
		return nil, fmt.Errorf("store: learner %q is not restorable", learner)
	}
	if err := r.UnmarshalBinary(state); err != nil {
		return nil, fmt.Errorf("store: restore %q: %w", user, err)
	}
	return l, nil
}

// Restore reconstructs learners from a Load result: snapshot profiles are
// instantiated via the filter registry and unmarshalled, then the event
// log is replayed in order. Learner update rules are deterministic, so the
// result is exactly the pre-crash state. Recovery is all-or-nothing: any
// undecodable record or inconsistency (feedback for an unknown user) is an
// error.
func Restore(profiles []ProfileRecord, events []Event) (map[string]filter.Learner, error) {
	out := make(map[string]filter.Learner, len(profiles))
	for _, p := range profiles {
		l, err := newRestored(p.User, p.Learner, p.Data)
		if err != nil {
			return nil, err
		}
		out[p.User] = l
	}
	for i, ev := range events {
		switch ev.Type {
		case EventSubscribe:
			l, err := newRestored(ev.User, ev.Learner, ev.State)
			if err != nil {
				return nil, err
			}
			out[ev.User] = l
		case EventUnsubscribe:
			delete(out, ev.User)
		case EventFeedback:
			l, ok := out[ev.User]
			if !ok {
				return nil, fmt.Errorf("store: event %d: feedback for unknown user %q", i, ev.User)
			}
			l.Observe(ev.Vec, ev.Fd)
		default:
			return nil, fmt.Errorf("store: event %d: unknown type %d", i, ev.Type)
		}
	}
	return out, nil
}

// Users lists the distinct users across a Load result, sorted.
func Users(profiles []ProfileRecord, events []Event) []string {
	seen := map[string]bool{}
	for _, p := range profiles {
		seen[p.User] = true
	}
	for _, ev := range events {
		if ev.Type == EventUnsubscribe {
			delete(seen, ev.User)
		} else {
			seen[ev.User] = true
		}
	}
	out := make([]string, 0, len(seen))
	for u := range seen {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}
