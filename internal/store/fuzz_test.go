package store

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"mmprofile/internal/filter"
)

// sampleWAL builds a real three-event log and returns its raw bytes.
func sampleWAL(tb testing.TB) []byte {
	tb.Helper()
	dir := tb.TempDir()
	s, err := Open(dir, Options{Lanes: 1})
	if err != nil {
		tb.Fatal(err)
	}
	s.AppendSubscribe("alice", "MM", nil)
	s.AppendFeedback("alice", vec("cat", 1.0), filter.Relevant)
	s.AppendUnsubscribe("alice")
	s.Close()
	data, err := os.ReadFile(filepath.Join(dir, "wal-000-00000000.log"))
	if err != nil {
		tb.Fatal(err)
	}
	return data
}

// FuzzLoadWAL feeds arbitrary bytes to the log reader: Open and Load must
// never panic. Open may refuse mid-log corruption; whatever a successful
// Load accepts must be structurally sound events.
func FuzzLoadWAL(f *testing.F) {
	real := sampleWAL(f)
	f.Add(real)
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(real[:len(real)-3])
	mutated := append([]byte(nil), real...)
	mutated[10] ^= 0xFF
	f.Add(mutated)
	// A header claiming an implausibly large record (32-bit int overflow
	// bait for the length conversion).
	huge := make([]byte, 16)
	binary.LittleEndian.PutUint32(huge, 0xF0000000)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		fdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(fdir, "wal-000-00000000.log"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(fdir, Options{Lanes: 1})
		if err != nil {
			// Mid-log corruption refused at open; the read-only path must
			// still be able to inspect it without panicking.
			ro, rerr := Open(fdir, Options{ReadOnly: true})
			if rerr != nil {
				t.Fatalf("read-only open failed: %v", rerr)
			}
			defer ro.Close()
			ro.WALInfo()
			ro.Load()
			return
		}
		defer st.Close()
		_, events, err := st.Load() // must not panic
		if err != nil {
			return
		}
		for _, ev := range events {
			switch ev.Type {
			case EventFeedback, EventSubscribe, EventUnsubscribe:
			default:
				t.Fatalf("accepted unknown event type %d", ev.Type)
			}
		}
	})
}

// FuzzDecodeEvent hits the event decoder with raw payloads (no framing):
// it must error or decode, never panic or read out of bounds.
func FuzzDecodeEvent(f *testing.F) {
	real := sampleWAL(f)
	payloads, _, err := scanRecords(real)
	if err != nil {
		f.Fatal(err)
	}
	for _, p := range payloads {
		f.Add(p)
	}
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{0, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}) // huge varint length
	f.Fuzz(func(t *testing.T, payload []byte) {
		ev, err := decodeEvent(payload)
		if err != nil {
			return
		}
		switch ev.Type {
		case EventFeedback, EventSubscribe, EventUnsubscribe:
		default:
			t.Fatalf("accepted unknown event type %d", ev.Type)
		}
	})
}

// TestBitFlipEveryOffset is the exhaustive corruption sweep: flipping any
// single bit anywhere in a valid log must leave the scanner with exactly
// three outcomes — an explicit error, the full record list (flip in torn-
// away slack can't happen here), or a clean prefix with the damaged
// record dropped only at the tail. Never a panic, never a mis-decoded
// record (CRC32 catches all single-bit errors).
func TestBitFlipEveryOffset(t *testing.T) {
	data := sampleWAL(t)
	want, committed, err := scanRecords(data)
	if err != nil || committed != len(data) {
		t.Fatalf("sample log unclean: %d/%d, %v", committed, len(data), err)
	}
	for off := 0; off < len(data); off++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), data...)
			mut[off] ^= 1 << bit
			payloads, _, err := scanRecords(mut)
			if err != nil {
				continue // detected and reported: fine
			}
			if len(payloads) > len(want) {
				t.Fatalf("offset %d bit %d: gained records (%d > %d)", off, bit, len(payloads), len(want))
			}
			for i, p := range payloads {
				if !bytes.Equal(p, want[i]) {
					t.Fatalf("offset %d bit %d: record %d mis-decoded", off, bit, i)
				}
			}
			// Whatever survived must still decode without panicking.
			for _, p := range payloads {
				decodeEvent(p)
			}
		}
	}
}

// TestImplausibleLengthIs32BitSafe pins the bounds check on the framing
// length: a header claiming 0xF0000000 bytes would turn negative in a
// naive int() conversion on 32-bit platforms and panic the slice; it must
// be reported as corruption instead.
func TestImplausibleLengthIs32BitSafe(t *testing.T) {
	data := make([]byte, 64)
	binary.LittleEndian.PutUint32(data[0:4], 0xF0000000)
	if _, _, err := scanRecords(data); err == nil {
		t.Fatal("implausible length accepted")
	}
	// Same for the varint field lengths inside a payload.
	payload := []byte{byte(EventSubscribe), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01}
	if _, err := decodeEvent(payload); err == nil {
		t.Fatal("huge varint field accepted")
	}
}
