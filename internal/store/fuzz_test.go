package store

import (
	"os"
	"path/filepath"
	"testing"

	"mmprofile/internal/filter"
)

// FuzzLoadWAL feeds arbitrary bytes to the log reader: Load must never
// panic, and whatever it accepts must be structurally sound events.
func FuzzLoadWAL(f *testing.F) {
	// Seed with a real log.
	dir := f.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		f.Fatal(err)
	}
	s.AppendSubscribe("alice", "MM", nil)
	s.AppendFeedback("alice", vec("cat", 1.0), filter.Relevant)
	s.AppendUnsubscribe("alice")
	s.Close()
	real, err := os.ReadFile(filepath.Join(dir, "wal-00000000.log"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(real)
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(real[:len(real)-3])
	mutated := append([]byte(nil), real...)
	mutated[10] ^= 0xFF
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		fdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(fdir, "wal-00000000.log"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(fdir, Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		_, events, err := st.Load() // must not panic
		if err != nil {
			return
		}
		for _, ev := range events {
			switch ev.Type {
			case EventFeedback, EventSubscribe, EventUnsubscribe:
			default:
				t.Fatalf("accepted unknown event type %d", ev.Type)
			}
		}
	})
}
