package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"mmprofile/internal/faultfs"
)

// lane is one shard of the journal (DESIGN.md §14). Users hash to exactly
// one lane, so per-user event order survives the sharding even though
// lanes append, fsync, and checkpoint independently: each lane owns its
// WAL handle, committed byte length, torn-tail repair, write-path poison,
// dirty-profile set, and durability watermark. Cross-lane coordination
// happens in exactly two places — the group-commit leader (Store.leadSync
// fsyncs every lane with unacknowledged records in one pass) and the
// checkpoint (one manifest rename commits all lane generations at once).
type lane struct {
	id     int
	legacy bool // pre-manifest single-WAL file naming (read-only inspection)

	// mu guards the lane's write path: the WAL handle, the committed byte
	// length, the record count, the dirty set, and the segment cache.
	mu     sync.Mutex
	gen    uint64
	wal    faultfs.File
	walLen int64               // committed bytes in the current WAL (resets per generation)
	recs   uint64              // records ever written to this lane (monotone across generations)
	failed error               // sticky write-path failure; reopen repairs
	dirty  map[string]struct{} // users with events in the current WAL generation

	// Segment cache: the current generation's segment, decoded once and
	// reused by checkpoint compaction and RestoreUser hydration. Segments
	// are immutable after their manifest commit, so the cache can only go
	// stale when a checkpoint flips the generation — which re-primes it
	// with the records it just wrote. This is the mmap stand-in: faultfs
	// only exposes ReadFile, so "mmap-friendly" here means append-ordered
	// immutable records cached per lane rather than a real mapping.
	segRecs   []segEntry
	segIdx    map[string]int
	segLoaded bool

	// Group-commit state, guarded by Store.cmu (never by mu).
	durable uint64 // records covered by the last acknowledged fsync
	syncErr error  // sticky fsync failure: durability is unknowable past it
}

// segEntry is one decoded segment record: the user plus the raw framed
// payload (user, learner, state) kept verbatim, so clean profiles are
// carried into the next segment without a decode/re-encode round trip.
type segEntry struct {
	user    string
	payload []byte
}

// laneFNV32 is the 32-bit FNV-1a hash used for lane routing. The lane
// count is pinned by the manifest, so the mapping is stable across
// restarts — which is what makes per-lane replay equivalent to the old
// single-log replay for any one user.
func laneFNV32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

func (s *Store) laneFor(user string) *lane {
	if len(s.lanes) == 1 {
		return s.lanes[0]
	}
	return s.lanes[int(laneFNV32(user)%uint32(len(s.lanes)))]
}

func makeLanes(n int) []*lane {
	lanes := make([]*lane, n)
	for i := range lanes {
		lanes[i] = &lane{id: i, dirty: make(map[string]struct{})}
	}
	return lanes
}

func (s *Store) walPath(ln *lane, gen uint64) string {
	if ln.legacy {
		return filepath.Join(s.dir, fmt.Sprintf("%s%08d.log", walPrefix, gen))
	}
	return filepath.Join(s.dir, fmt.Sprintf("%s%03d-%08d.log", walPrefix, ln.id, gen))
}

func (s *Store) segPath(ln *lane, gen uint64) string {
	if ln.legacy {
		return filepath.Join(s.dir, fmt.Sprintf("%s%08d.db", snapPrefix, gen))
	}
	return filepath.Join(s.dir, fmt.Sprintf("%s%03d-%08d.db", segPrefix, ln.id, gen))
}

// laneFile parses a lane-qualified file name (wal-003-00000042.log,
// seg-003-00000042.db) into its lane id and generation. Legacy names
// (wal-00000042.log) have no lane part and do not match.
func laneFile(name, prefix, suffix string) (laneID int, gen uint64, ok bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	i := strings.IndexByte(mid, '-')
	if i < 0 {
		return 0, 0, false
	}
	id, err := strconv.Atoi(mid[:i])
	if err != nil || id < 0 {
		return 0, 0, false
	}
	g, err := strconv.ParseUint(mid[i+1:], 10, 64)
	if err != nil {
		return 0, 0, false
	}
	return id, g, true
}

// openLaneWAL opens ln's current-generation log for appending, truncating
// any torn tail first. Caller holds ln.mu (or is the constructor /
// checkpoint, which own the lane exclusively). The new directory entry is
// NOT synced here — Open and Checkpoint batch one SyncDir over every lane
// they touch, so a 16-lane store does not pay 16 directory fsyncs.
func (s *Store) openLaneWAL(ln *lane) error {
	path := s.walPath(ln, ln.gen)
	data, err := s.fsys.ReadFile(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("store: %w", err)
	}
	_, committed, err := scanRecords(data)
	if err != nil {
		// Valid records exist beyond the damage: this is not a torn
		// append, and truncating would destroy them. Refuse to open.
		return fmt.Errorf("store: lane %d wal %d: %w", ln.id, ln.gen, err)
	}
	f, err := s.fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if committed < len(data) {
		// Torn tail from a crash mid-append: chop it so the next append
		// starts at a record boundary — appending after garbage is what
		// used to turn one torn record into a whole-log loss on the
		// following reload.
		if err := f.Truncate(int64(committed)); err != nil {
			f.Close()
			return fmt.Errorf("store: truncating torn tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return fmt.Errorf("store: %w", err)
		}
		s.m.tornTails.Inc()
	}
	ln.wal = f
	ln.walLen = int64(committed)
	return nil
}

// loadSeg populates the lane's segment cache (caller holds ln.mu).
// Segments are written via temp + rename and referenced only after a
// manifest commit, so any parse failure here is real corruption, never a
// torn write.
func (s *Store) loadSeg(ln *lane) error {
	if ln.segLoaded {
		return nil
	}
	ln.segRecs, ln.segIdx = nil, nil
	if ln.gen > 0 {
		data, err := s.readFileOrEmpty(s.segPath(ln, ln.gen))
		if err != nil {
			return fmt.Errorf("store: lane %d segment %d: %w", ln.id, ln.gen, err)
		}
		payloads, committed, err := scanRecords(data)
		if err == nil && committed != len(data) {
			err = fmt.Errorf("truncated record at offset %d", committed)
		}
		if err != nil {
			return fmt.Errorf("store: lane %d segment %d: %w", ln.id, ln.gen, err)
		}
		ln.segIdx = make(map[string]int, len(payloads))
		for i, payload := range payloads {
			rec, err := decodeProfileRecord(payload)
			if err != nil {
				return fmt.Errorf("store: lane %d segment %d record %d: %w", ln.id, ln.gen, i, err)
			}
			ln.segRecs = append(ln.segRecs, segEntry{user: rec.User, payload: payload})
			ln.segIdx[rec.User] = i
		}
	}
	if ln.segIdx == nil {
		ln.segIdx = map[string]int{}
	}
	ln.segLoaded = true
	return nil
}

// laneWALRecords reads the committed records of ln's current WAL (caller
// holds ln.mu). In read-write mode, bytes past the committed length can
// only be a poisoned write's remnants and are clamped away; in ReadOnly
// mode a torn tail is tolerated exactly the way recovery would tolerate
// it.
func (s *Store) laneWALRecords(ln *lane) ([][]byte, error) {
	data, err := s.readFileOrEmpty(s.walPath(ln, ln.gen))
	if err != nil {
		return nil, fmt.Errorf("store: lane %d wal %d: %w", ln.id, ln.gen, err)
	}
	if !s.opts.ReadOnly && int64(len(data)) > ln.walLen {
		data = data[:ln.walLen]
	}
	payloads, committed, err := scanRecords(data)
	if err == nil && !s.opts.ReadOnly && committed != len(data) {
		err = fmt.Errorf("truncated record at offset %d", committed)
	}
	if err != nil {
		return nil, fmt.Errorf("store: lane %d wal %d: %w", ln.id, ln.gen, err)
	}
	return payloads, nil
}
