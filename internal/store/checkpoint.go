package store

import (
	"encoding"
	"errors"
	"fmt"
	"time"

	"mmprofile/internal/filter"
)

// CheckpointStats reports what one Checkpoint pass did.
type CheckpointStats struct {
	Lanes     int   // lanes in the store
	Rewritten int   // dirty lanes compacted into a new segment
	Skipped   int   // dirty lanes left alone (below the minDirty threshold)
	Clean     int   // lanes with no events since their last segment
	Profiles  int   // live profiles across the rewritten segments
	Carried   int   // of those, clean records carried forward verbatim
	Bytes     int64 // segment bytes written by this pass
}

// Checkpoint compacts every lane whose dirty-profile count has reached
// minDirty (values < 1 are treated as 1): the lane's WAL is replayed over
// its current segment inside the store — clean profiles are carried
// forward as raw bytes, dirty ones are rehydrated, updated, and
// re-serialized — and the result becomes the lane's next immutable
// segment with a fresh, empty WAL. Lanes below the threshold keep
// accumulating; clean lanes cost nothing. One manifest rename commits all
// rewritten lanes atomically.
//
// Compacting from the journal rather than from caller-provided profiles
// means an append that lands mid-checkpoint can never be lost: it either
// makes the compaction pass or stays in the WAL that survives it. The
// durability order per rewritten lane is strict: outgoing WAL fsync →
// segment contents fsync → segment rename → directory fsync → manifest
// rename → directory fsync → new WAL creation → directory fsync →
// stale-generation removal. A crash at any point leaves either the old
// generations or the new ones fully recoverable.
//
// On success, every record appended to a rewritten lane before the call
// is durable. Replay requires the lanes' learner types to be registered
// with the filter registry, same as Restore.
func (s *Store) Checkpoint(minDirty int) (CheckpointStats, error) {
	var st CheckpointStats
	if s.opts.ReadOnly {
		return st, errors.New("store: read-only")
	}
	if minDirty < 1 {
		minDirty = 1
	}
	t0 := time.Now()
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()

	// Claim the sync token: no group-commit pass may race the WAL swaps
	// (it would fsync closed handles).
	s.cmu.Lock()
	for s.syncing {
		s.cond.Wait()
	}
	if s.closed {
		s.cmu.Unlock()
		return st, errClosed
	}
	s.syncing = true
	s.cmu.Unlock()
	tokenHeld := true
	defer func() {
		if tokenHeld {
			s.cmu.Lock()
			s.syncing = false
			s.cond.Broadcast()
			s.cmu.Unlock()
		}
	}()

	st.Lanes = len(s.lanes)

	type flip struct {
		ln        *lane
		gen       uint64 // new generation
		recs      []segEntry
		durableTo uint64
		bytes     int64
	}
	var flips []*flip
	var locked []*lane
	unlockAll := func() {
		for _, ln := range locked {
			ln.mu.Unlock()
		}
		locked = nil
	}
	defer unlockAll()

	// Select lanes. The chosen lanes stay locked until their WAL swap, so
	// nothing can append between the compaction read and the swap — which
	// is exactly the window where the old export-then-swap design could
	// drop events. Appends to unchosen lanes keep flowing (durable
	// waiters stall until the token is released, as they did under the
	// old whole-store snapshot).
	for _, ln := range s.lanes {
		ln.mu.Lock()
		locked = append(locked, ln)
		if ln.wal == nil {
			return st, errClosed
		}
		if ln.failed != nil {
			return st, fmt.Errorf("store: lane %d: %w", ln.id, ln.failed)
		}
		if len(ln.dirty) == 0 {
			st.Clean++
			ln.mu.Unlock()
			locked = locked[:len(locked)-1]
			continue
		}
		if len(ln.dirty) < minDirty {
			st.Skipped++
			s.m.ckptLanesSkipped.Inc()
			ln.mu.Unlock()
			locked = locked[:len(locked)-1]
			continue
		}
		flips = append(flips, &flip{ln: ln, gen: ln.gen + 1})
	}
	if len(flips) == 0 {
		// Nothing dirty enough anywhere: no segment writes, no manifest
		// churn — the incremental win over the old full rewrite.
		return st, nil
	}

	// Phase 1, per lane: fsync the outgoing WAL (until the manifest
	// commits it is the only durable copy of its events), compact it over
	// the segment, and stage the new segment file. The manifest does not
	// reference any of this yet, so a crash mid-phase leaves only strays.
	for _, fl := range flips {
		ln := fl.ln
		ts := time.Now()
		if err := ln.wal.Sync(); err != nil {
			ln.failed = err
			return st, fmt.Errorf("store: lane %d: %w", ln.id, err)
		}
		s.m.fsyncs.Inc()
		s.m.fsyncLat.ObserveSince(ts)
		fl.durableTo = ln.recs

		recs, carried, err := s.compactLane(ln)
		if err != nil {
			return st, err
		}
		fl.recs = recs
		st.Profiles += len(recs)
		st.Carried += carried

		tmp, err := s.fsys.CreateTemp(s.dir, "seg-*.tmp")
		if err != nil {
			return st, fmt.Errorf("store: %w", err)
		}
		werr := func() error {
			for _, e := range recs {
				if err := writeRecord(tmp, e.payload); err != nil {
					return err
				}
				fl.bytes += int64(len(e.payload)) + 8 // record framing header
			}
			if err := tmp.Sync(); err != nil {
				return fmt.Errorf("store: %w", err)
			}
			return nil
		}()
		if cerr := tmp.Close(); werr == nil && cerr != nil {
			werr = fmt.Errorf("store: %w", cerr)
		}
		if werr == nil {
			werr = s.fsys.Rename(tmp.Name(), s.segPath(ln, fl.gen))
		}
		if werr != nil {
			s.fsys.Remove(tmp.Name())
			return st, werr
		}
		st.Bytes += fl.bytes
	}
	// The renamed segments must be durable before the manifest may
	// reference them: a manifest entry pointing at an un-persisted
	// directory entry would read as data loss after a crash.
	if err := s.fsys.SyncDir(s.dir); err != nil {
		return st, fmt.Errorf("store: %w", err)
	}

	// Phase 2: the commit point. One manifest rename flips every
	// rewritten lane to its new generation atomically — a crash on either
	// side of this rename recovers a consistent store, just at different
	// generations.
	mf := s.manifestNow()
	for _, fl := range flips {
		mf.gens[fl.ln.id] = fl.gen
	}
	mf.epoch = s.epoch.Load() + 1
	if err := s.writeManifest(mf); err != nil {
		return st, err
	}
	s.epoch.Store(mf.epoch)

	// Phase 3: in-memory flips and fresh WALs. The manifest is committed,
	// so a failure here poisons its lane (reopen repairs) instead of
	// aborting the checkpoint.
	var firstErr error
	for _, fl := range flips {
		ln := fl.ln
		old := ln.wal
		ln.gen = fl.gen
		ln.wal = nil
		if err := s.openLaneWAL(ln); err != nil {
			ln.failed = err
			if firstErr == nil {
				firstErr = err
			}
			old.Close()
			continue
		}
		old.Close()
		s.m.dirtyProfiles.Add(-float64(len(ln.dirty)))
		ln.dirty = make(map[string]struct{})
		// Prime the segment cache with what was just written: hydration
		// and the next compaction read it without touching disk.
		idx := make(map[string]int, len(fl.recs))
		for i, e := range fl.recs {
			idx[e.user] = i
		}
		ln.segRecs, ln.segIdx, ln.segLoaded = fl.recs, idx, true
		st.Rewritten++
		s.m.ckptLanesRewritten.Inc()
	}
	// Persist the new WALs' directory entries.
	if err := s.fsys.SyncDir(s.dir); err != nil && firstErr == nil {
		firstErr = fmt.Errorf("store: %w", err)
	}
	unlockAll()

	// Advance the rewritten lanes' durability watermarks (their events
	// are segment-durable now) and release the token.
	s.cmu.Lock()
	s.syncing = false
	tokenHeld = false
	for _, fl := range flips {
		if fl.durableTo > fl.ln.durable {
			fl.ln.durable = fl.durableTo
		}
	}
	s.cond.Broadcast()
	s.cmu.Unlock()

	s.cleanStrays()
	s.m.checkpoints.Inc()
	s.m.checkpointBytes.Set(float64(st.Bytes))
	s.m.checkpointLat.ObserveSince(t0)
	return st, firstErr
}

// compactLane replays ln's committed WAL over its current segment and
// returns the next segment's records (caller holds ln.mu). Clean users'
// records are carried forward verbatim; users touched by the WAL are
// rehydrated through the filter registry, replayed, and re-serialized.
// Segment order is preserved, with users first seen in the WAL appended
// in event order, so compaction is deterministic.
func (s *Store) compactLane(ln *lane) (recs []segEntry, carried int, err error) {
	if err := s.loadSeg(ln); err != nil {
		return nil, 0, err
	}
	payloads, err := s.laneWALRecords(ln)
	if err != nil {
		return nil, 0, err
	}

	type slot struct {
		payload []byte // serialized record, nil once live
		l       filter.Learner
		lname   string
		live    bool
	}
	order := make([]string, 0, len(ln.segRecs))
	slots := make(map[string]*slot, len(ln.segRecs))
	for _, e := range ln.segRecs {
		order = append(order, e.user)
		slots[e.user] = &slot{payload: e.payload}
	}
	for i, p := range payloads {
		ev, err := decodeEvent(p)
		if err != nil {
			return nil, 0, fmt.Errorf("store: lane %d wal %d record %d: %w", ln.id, ln.gen, i, err)
		}
		switch ev.Type {
		case EventSubscribe:
			sl := slots[ev.User]
			if sl == nil {
				sl = &slot{}
				slots[ev.User] = sl
				order = append(order, ev.User)
			}
			l, err := newRestored(ev.User, ev.Learner, ev.State)
			if err != nil {
				return nil, 0, err
			}
			sl.l, sl.lname, sl.live, sl.payload = l, ev.Learner, true, nil
		case EventUnsubscribe:
			if sl := slots[ev.User]; sl != nil {
				sl.l, sl.payload, sl.live = nil, nil, false
			}
		case EventFeedback:
			sl := slots[ev.User]
			if sl == nil || (!sl.live && sl.payload == nil) {
				return nil, 0, fmt.Errorf("store: lane %d compaction: feedback for unknown user %q", ln.id, ev.User)
			}
			if !sl.live {
				rec, err := decodeProfileRecord(sl.payload)
				if err != nil {
					return nil, 0, fmt.Errorf("store: lane %d segment %d: %w", ln.id, ln.gen, err)
				}
				l, err := newRestored(rec.User, rec.Learner, rec.Data)
				if err != nil {
					return nil, 0, err
				}
				sl.l, sl.lname, sl.live = l, rec.Learner, true
			}
			sl.l.Observe(ev.Vec, ev.Fd)
		default:
			return nil, 0, fmt.Errorf("store: lane %d wal %d record %d: unknown event type %d", ln.id, ln.gen, i, ev.Type)
		}
	}

	for _, user := range order {
		sl := slots[user]
		switch {
		case sl.live:
			m, ok := sl.l.(encoding.BinaryMarshaler)
			if !ok {
				return nil, 0, fmt.Errorf("store: learner %q for %q is not serializable", sl.lname, user)
			}
			data, err := m.MarshalBinary()
			if err != nil {
				return nil, 0, fmt.Errorf("store: serializing %q: %w", user, err)
			}
			recs = append(recs, segEntry{user: user, payload: encodeProfilePayload(user, sl.lname, data)})
		case sl.payload != nil:
			recs = append(recs, segEntry{user: user, payload: sl.payload})
			carried++
		default:
			// unsubscribed: dropped from the new segment
		}
	}
	return recs, carried, nil
}
