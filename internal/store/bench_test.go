package store

import (
	"fmt"
	"sync/atomic"
	"testing"

	"mmprofile/internal/filter"
	"mmprofile/internal/metrics"
)

// benchDurableAppend measures the durable append path and reports the
// real fsync amplification from the metrics registry. The serial case is
// the old SyncEveryAppend behavior by construction (every append leads
// its own batch: 1 fsync per append); the parallel cases show group
// commit coalescing concurrent appenders onto shared fsyncs.
func benchDurableAppend(b *testing.B, workers int) {
	reg := metrics.NewRegistry()
	s, err := Open(b.TempDir(), Options{Durable: true, Metrics: reg})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	doc := vec("cat", 1.0, "dog", 0.5)

	var id atomic.Int64
	b.ResetTimer()
	if workers <= 1 {
		for i := 0; i < b.N; i++ {
			if err := s.AppendFeedback("u0", doc, filter.Relevant); err != nil {
				b.Fatal(err)
			}
		}
	} else {
		b.SetParallelism(workers)
		b.RunParallel(func(pb *testing.PB) {
			user := fmt.Sprintf("u%d", id.Add(1))
			for pb.Next() {
				if err := s.AppendFeedback(user, doc, filter.Relevant); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.StopTimer()

	snap := reg.Snapshot()
	fsyncs := snap["mm_store_fsyncs_total"].(int64)
	appends := snap["mm_store_appends_total"].(int64)
	if appends > 0 {
		b.ReportMetric(float64(fsyncs)/float64(appends), "fsyncs/append")
	}
}

func BenchmarkDurableAppend(b *testing.B) {
	for _, w := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) { benchDurableAppend(b, w) })
	}
}

// benchDurableAppendLanes measures the sharded-journal durable append path:
// 64 concurrent writers spread across user ids (and therefore across WAL
// lanes), with the lane count swept. Reports the same fsyncs/append
// amplification metric as benchDurableAppend so the two tables compare
// directly; BENCH_store.json pins the 64-writer row per lane count.
func benchDurableAppendLanes(b *testing.B, lanes, workers int) {
	reg := metrics.NewRegistry()
	s, err := Open(b.TempDir(), Options{Durable: true, Lanes: lanes, Metrics: reg})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	doc := vec("cat", 1.0, "dog", 0.5)

	var id atomic.Int64
	b.ResetTimer()
	b.SetParallelism(workers)
	b.RunParallel(func(pb *testing.PB) {
		// Distinct users per goroutine so writers spread over every lane.
		user := fmt.Sprintf("u%d", id.Add(1))
		for pb.Next() {
			if err := s.AppendFeedback(user, doc, filter.Relevant); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()

	snap := reg.Snapshot()
	fsyncs := snap["mm_store_fsyncs_total"].(int64)
	appends := snap["mm_store_appends_total"].(int64)
	if appends > 0 {
		b.ReportMetric(float64(fsyncs)/float64(appends), "fsyncs/append")
	}
}

func BenchmarkDurableAppendLanes(b *testing.B) {
	for _, lanes := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("lanes=%d", lanes), func(b *testing.B) { benchDurableAppendLanes(b, lanes, 64) })
	}
}
