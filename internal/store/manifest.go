package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"mmprofile/internal/faultfs"
)

// The manifest is the commit point of the sharded layout: a single framed
// record naming the current generation of every lane. Recovery trusts
// only files the manifest references, so checkpoints can stage new
// segments freely — nothing becomes authoritative until the one atomic
// MANIFEST rename lands, and everything unreferenced is removable
// garbage. The epoch counts manifest commits, for inspection tooling.

const (
	manifestName = "MANIFEST"
	// maxLanes bounds the manifest's claimed lane count; anything larger
	// is corruption, not configuration.
	maxLanes = 1024
)

type manifest struct {
	epoch uint64
	gens  []uint64 // current generation per lane, indexed by lane id
}

func encodeManifest(mf manifest) []byte {
	payload := []byte{'M', 'M', 'L', 'N', 1}
	payload = binary.AppendUvarint(payload, mf.epoch)
	payload = binary.AppendUvarint(payload, uint64(len(mf.gens)))
	for _, g := range mf.gens {
		payload = binary.AppendUvarint(payload, g)
	}
	return payload
}

func decodeManifest(payload []byte) (manifest, error) {
	if len(payload) < 5 || string(payload[:4]) != "MMLN" {
		return manifest{}, fmt.Errorf("bad manifest magic")
	}
	if payload[4] != 1 {
		return manifest{}, fmt.Errorf("unsupported manifest version %d", payload[4])
	}
	rest := payload[5:]
	epoch, k := binary.Uvarint(rest)
	if k <= 0 {
		return manifest{}, fmt.Errorf("truncated manifest epoch")
	}
	rest = rest[k:]
	n, k := binary.Uvarint(rest)
	if k <= 0 {
		return manifest{}, fmt.Errorf("truncated manifest lane count")
	}
	rest = rest[k:]
	if n == 0 || n > maxLanes {
		return manifest{}, fmt.Errorf("implausible lane count %d", n)
	}
	gens := make([]uint64, n)
	for i := range gens {
		g, k := binary.Uvarint(rest)
		if k <= 0 {
			return manifest{}, fmt.Errorf("truncated manifest generation %d", i)
		}
		gens[i] = g
		rest = rest[k:]
	}
	if len(rest) != 0 {
		return manifest{}, fmt.Errorf("trailing manifest bytes")
	}
	return manifest{epoch: epoch, gens: gens}, nil
}

// readManifest loads dir's MANIFEST. found is false when none exists —
// a fresh store, or the pre-manifest single-WAL legacy layout. The
// manifest is written atomically (temp + fsync + rename), so a torn or
// corrupt one is real damage and fails the open instead of silently
// falling back a generation.
func readManifest(fsys faultfs.FS, dir string) (manifest, bool, error) {
	data, err := fsys.ReadFile(filepath.Join(dir, manifestName))
	if errors.Is(err, fs.ErrNotExist) {
		return manifest{}, false, nil
	}
	if err != nil {
		return manifest{}, false, fmt.Errorf("store: manifest: %w", err)
	}
	payloads, committed, err := scanRecords(data)
	if err == nil && (len(payloads) != 1 || committed != len(data)) {
		err = fmt.Errorf("malformed framing")
	}
	if err != nil {
		return manifest{}, false, fmt.Errorf("store: manifest: %w", err)
	}
	mf, err := decodeManifest(payloads[0])
	if err != nil {
		return manifest{}, false, fmt.Errorf("store: manifest: %w", err)
	}
	return mf, true, nil
}

// manifestNow snapshots the lane generations into a manifest value.
// Caller holds ckptMu (generations only change under it), so reading
// ln.gen without the lane locks is safe.
func (s *Store) manifestNow() manifest {
	mf := manifest{epoch: s.epoch.Load(), gens: make([]uint64, len(s.lanes))}
	for i, ln := range s.lanes {
		mf.gens[i] = ln.gen
	}
	return mf
}

// writeManifest atomically publishes a new manifest: temp file + fsync +
// rename + directory fsync. The rename is the commit point for every
// layout change — segment flips and WAL swaps become visible to recovery
// all at once or not at all, which is exactly what the crash matrix
// exercises by killing the store between the two renames.
func (s *Store) writeManifest(mf manifest) error {
	tmp, err := s.fsys.CreateTemp(s.dir, "manifest-*.tmp")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer s.fsys.Remove(tmp.Name()) // no-op after successful rename
	if err := writeRecord(tmp, encodeManifest(mf)); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.fsys.Rename(tmp.Name(), filepath.Join(s.dir, manifestName)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := s.fsys.SyncDir(s.dir); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// cleanStrays removes files the manifest does not reference: stale or
// uncommitted lane generations, temp files from crashed checkpoints, and
// (after migration) the legacy single-WAL layout. Removal is best-effort
// — an unreferenced file is harmless until the next cleanup — but the
// directory sync after a successful pass keeps crash-looped checkpoints
// from accumulating garbage. Caller holds ckptMu (or is the constructor).
func (s *Store) cleanStrays() {
	entries, err := s.fsys.ReadDir(s.dir)
	if err != nil {
		return
	}
	live := make(map[string]bool, 2*len(s.lanes)+1)
	live[manifestName] = true
	for _, ln := range s.lanes {
		live[filepath.Base(s.walPath(ln, ln.gen))] = true
		if ln.gen > 0 {
			live[filepath.Base(s.segPath(ln, ln.gen))] = true
		}
	}
	removed := false
	for _, e := range entries {
		name := e.Name()
		if live[name] {
			continue
		}
		stale := strings.HasSuffix(name, ".tmp")
		if _, _, ok := laneFile(name, walPrefix, ".log"); ok {
			stale = true
		} else if _, _, ok := laneFile(name, segPrefix, ".db"); ok {
			stale = true
		} else if _, ok := genSeq(name, walPrefix, ".log"); ok {
			stale = true // legacy WAL, superseded by migration
		} else if _, ok := genSeq(name, snapPrefix, ".db"); ok {
			stale = true // legacy snapshot, superseded by migration
		}
		if stale && s.fsys.Remove(filepath.Join(s.dir, name)) == nil {
			removed = true
		}
	}
	if removed {
		_ = s.fsys.SyncDir(s.dir) // best-effort: stray files are harmless
	}
}

// detectLegacy looks for the pre-manifest layout: snap-<seq>.db and
// wal-<seq>.log with no lane component in the name.
func detectLegacy(fsys faultfs.FS, dir string) (seq uint64, found bool, err error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return 0, false, fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		if n, ok := genSeq(e.Name(), snapPrefix, ".db"); ok {
			found = true
			if n > seq {
				seq = n
			}
		} else if _, ok := genSeq(e.Name(), walPrefix, ".log"); ok {
			found = true
		}
	}
	return seq, found, nil
}

// migrateLegacy converts a pre-manifest layout (one snap-<seq>.db plus
// one wal-<seq>.log) into lanes: profiles and events are sharded by user
// into per-lane generation-1 segment and WAL files, and the manifest
// commit makes the new layout authoritative. The legacy files are removed
// only after that commit (by cleanStrays), so a crash anywhere during
// migration leaves the legacy layout intact and migration simply re-runs;
// half-written lane files from the interrupted attempt are overwritten or
// collected as strays.
func (s *Store) migrateLegacy(legacySeq uint64) error {
	old := &lane{legacy: true, gen: legacySeq}

	profs := make([][][]byte, len(s.lanes))
	if legacySeq > 0 {
		data, err := s.readFileOrEmpty(s.segPath(old, legacySeq))
		if err != nil {
			return fmt.Errorf("store: snapshot %d: %w", legacySeq, err)
		}
		payloads, committed, err := scanRecords(data)
		if err == nil && committed != len(data) {
			err = fmt.Errorf("truncated record at offset %d", committed)
		}
		if err != nil {
			return fmt.Errorf("store: snapshot %d: %w", legacySeq, err)
		}
		for i, payload := range payloads {
			rec, err := decodeProfileRecord(payload)
			if err != nil {
				return fmt.Errorf("store: snapshot %d record %d: %w", legacySeq, i, err)
			}
			id := s.laneFor(rec.User).id
			profs[id] = append(profs[id], payload)
		}
	}

	evs := make([][][]byte, len(s.lanes))
	data, err := s.readFileOrEmpty(s.walPath(old, legacySeq))
	if err != nil {
		return fmt.Errorf("store: wal %d: %w", legacySeq, err)
	}
	// A torn tail is crash residue, dropped here exactly as the torn-tail
	// repair would have dropped it; damage before the tail refuses the
	// migration the way it refuses an open.
	payloads, committed, err := scanRecords(data)
	if err != nil {
		return fmt.Errorf("store: wal %d: %w", legacySeq, err)
	}
	if committed < len(data) {
		s.m.tornTails.Inc()
	}
	for i, payload := range payloads {
		ev, err := decodeEvent(payload)
		if err != nil {
			return fmt.Errorf("store: wal %d record %d: %w", legacySeq, i, err)
		}
		id := s.laneFor(ev.User).id
		evs[id] = append(evs[id], payload)
	}

	for _, ln := range s.lanes {
		if len(profs[ln.id]) > 0 {
			if err := s.writeRecordsFile(s.segPath(ln, 1), profs[ln.id]); err != nil {
				return err
			}
		}
		if len(evs[ln.id]) > 0 {
			if err := s.writeRecordsFile(s.walPath(ln, 1), evs[ln.id]); err != nil {
				return err
			}
		}
		ln.gen = 1
	}
	if err := s.fsys.SyncDir(s.dir); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.epoch.Store(1)
	if err := s.writeManifest(s.manifestNow()); err != nil {
		return err
	}
	s.cleanStrays()
	return nil
}

// writeRecordsFile writes framed records to path (truncating any partial
// leftover from a crashed earlier attempt) and fsyncs the contents.
func (s *Store) writeRecordsFile(path string, payloads [][]byte) error {
	f, err := s.fsys.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, p := range payloads {
		if err := writeRecord(f, p); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
