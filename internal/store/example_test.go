package store_test

import (
	"fmt"
	"os"

	"mmprofile/internal/filter"
	"mmprofile/internal/store"
	"mmprofile/internal/vsm"

	_ "mmprofile/internal/core" // register MM for Restore
)

// Example walks the durability cycle: journal a subscription and a
// judgment, "crash", reopen, and restore the exact profile by replay.
func Example() {
	dir, _ := os.MkdirTemp("", "store-example")
	defer os.RemoveAll(dir)

	s, err := store.Open(dir, store.Options{})
	if err != nil {
		panic(err)
	}
	doc := vsm.FromMap(map[string]float64{"cat": 1, "dog": 0.5}).Normalized()
	s.AppendSubscribe("alice", "MM", nil)
	s.AppendFeedback("alice", doc, filter.Relevant)
	s.Close() // crash or restart here loses nothing

	s2, err := store.Open(dir, store.Options{})
	if err != nil {
		panic(err)
	}
	defer s2.Close()
	profiles, events, err := s2.Load()
	if err != nil {
		panic(err)
	}
	learners, err := store.Restore(profiles, events)
	if err != nil {
		panic(err)
	}
	alice := learners["alice"]
	fmt.Printf("restored %s profile with %d vector(s), score %.2f\n",
		alice.Name(), alice.ProfileSize(), alice.Score(doc))
	// Output:
	// restored MM profile with 1 vector(s), score 1.00
}
