package store

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"mmprofile/internal/filter"
	"mmprofile/internal/vsm"
)

// TestRandomOperationSequences is a model-based test: a random interleaving
// of subscribe / feedback / unsubscribe / checkpoint / reopen operations is
// applied both to the store and to an in-memory model; after every reopen
// the restored learners must score identically to the model's.
func TestRandomOperationSequences(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(trial) * 977))
			dir := t.TempDir()
			s, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer func() { s.Close() }()

			model := map[string]filter.Learner{}
			users := []string{"u0", "u1", "u2", "u3"}
			learnerNames := []string{"MM", "RI", "NRN"}
			terms := []string{"a", "b", "c", "d", "e", "f"}

			randVec := func() vsm.Vector {
				m := map[string]float64{}
				for _, tm := range terms {
					if rng.Float64() < 0.5 {
						m[tm] = rng.Float64() + 0.01
					}
				}
				return vsm.FromMap(m).Normalized()
			}

			verify := func(step int) {
				profiles, events, err := s.Load()
				if err != nil {
					t.Fatalf("step %d: load: %v", step, err)
				}
				restored, err := Restore(profiles, events)
				if err != nil {
					t.Fatalf("step %d: restore: %v", step, err)
				}
				if len(restored) != len(model) {
					t.Fatalf("step %d: restored %d users, model has %d", step, len(restored), len(model))
				}
				for user, want := range model {
					got, ok := restored[user]
					if !ok {
						t.Fatalf("step %d: user %s missing", step, user)
					}
					if got.Name() != want.Name() {
						t.Fatalf("step %d: user %s learner %s != %s", step, user, got.Name(), want.Name())
					}
					for p := 0; p < 5; p++ {
						probe := randVec()
						if math.Abs(got.Score(probe)-want.Score(probe)) > 1e-12 {
							t.Fatalf("step %d: user %s scores diverge", step, user)
						}
					}
				}
			}

			for step := 0; step < 120; step++ {
				switch op := rng.Intn(10); {
				case op < 3: // subscribe (replacing any existing is rejected by broker; here model allows re-subscribe only after unsubscribe)
					user := users[rng.Intn(len(users))]
					if _, exists := model[user]; exists {
						continue
					}
					name := learnerNames[rng.Intn(len(learnerNames))]
					l, err := filter.New(name)
					if err != nil {
						t.Fatal(err)
					}
					if err := s.AppendSubscribe(user, name, nil); err != nil {
						t.Fatal(err)
					}
					model[user] = l
				case op < 7: // feedback
					if len(model) == 0 {
						continue
					}
					var user string
					k := rng.Intn(len(model))
					for u := range model {
						if k == 0 {
							user = u
							break
						}
						k--
					}
					v := randVec()
					fd := filter.Relevant
					if rng.Float64() < 0.4 {
						fd = filter.NotRelevant
					}
					if err := s.AppendFeedback(user, v, fd); err != nil {
						t.Fatal(err)
					}
					model[user].Observe(v, fd)
				case op < 8: // unsubscribe
					user := users[rng.Intn(len(users))]
					if _, exists := model[user]; !exists {
						continue
					}
					if err := s.AppendUnsubscribe(user); err != nil {
						t.Fatal(err)
					}
					delete(model, user)
				case op < 9: // checkpoint (compacts dirty lanes from the journal)
					if _, err := s.Checkpoint(1); err != nil {
						t.Fatal(err)
					}
				default: // reopen (clean shutdown + restart)
					if err := s.Close(); err != nil {
						t.Fatal(err)
					}
					if s, err = Open(dir, Options{}); err != nil {
						t.Fatal(err)
					}
				}
				if step%20 == 19 {
					verify(step)
				}
			}
			verify(-1)
		})
	}
}
