package store

import (
	"fmt"

	"mmprofile/internal/filter"
)

// RestoreUser rebuilds one user's learner from durable state: the user's
// record in its lane's segment (if any) plus a replay of the user's
// events in the lane's current WAL. Learner update rules are
// deterministic and the journal is written before any in-heap state
// mutates, so the result is bit-identical to the learner the broker would
// hold had the user never been evicted — this is the hydration half of
// the pubsub LRU residency bound. found is false when the user does not
// exist (or its last event is an unsubscribe).
//
// Cost is one cached segment lookup plus one scan of the lane's WAL
// (events for other users are skipped without decoding their vectors);
// checkpoints bound the WAL, so hydration stays proportional to the
// lane's recent activity, not its history.
func (s *Store) RestoreUser(user string) (filter.Learner, bool, error) {
	ln := s.laneFor(user)
	ln.mu.Lock()
	defer ln.mu.Unlock()

	if err := s.loadSeg(ln); err != nil {
		return nil, false, err
	}
	var l filter.Learner
	found := false
	if i, ok := ln.segIdx[user]; ok {
		rec, err := decodeProfileRecord(ln.segRecs[i].payload)
		if err != nil {
			return nil, false, fmt.Errorf("store: lane %d segment %d: %w", ln.id, ln.gen, err)
		}
		nl, err := newRestored(rec.User, rec.Learner, rec.Data)
		if err != nil {
			return nil, false, err
		}
		l, found = nl, true
	}

	payloads, err := s.laneWALRecords(ln)
	if err != nil {
		return nil, false, err
	}
	for i, p := range payloads {
		if !eventUserIs(p, user) {
			continue
		}
		ev, err := decodeEvent(p)
		if err != nil {
			return nil, false, fmt.Errorf("store: lane %d wal %d record %d: %w", ln.id, ln.gen, i, err)
		}
		switch ev.Type {
		case EventSubscribe:
			nl, err := newRestored(ev.User, ev.Learner, ev.State)
			if err != nil {
				return nil, false, err
			}
			l, found = nl, true
		case EventUnsubscribe:
			l, found = nil, false
		case EventFeedback:
			if !found {
				return nil, false, fmt.Errorf("store: lane %d: feedback for unknown user %q", ln.id, user)
			}
			l.Observe(ev.Vec, ev.Fd)
		}
	}
	if found {
		s.m.userRestores.Inc()
	}
	return l, found, nil
}
