package trec

import (
	"math"
	"strings"
	"testing"
)

const sampleRun = `T1 Q0 doc3 1 0.900000 tag
T1 Q0 doc1 2 0.800000 tag
T1 Q0 doc2 3 0.700000 tag
T2 Q0 doc9 1 0.500000 tag
`

const sampleQrels = `T1 0 doc1 1
T1 0 doc2 0
T1 0 doc3 1
T2 0 doc9 0
T2 0 doc8 1
`

func TestReadRun(t *testing.T) {
	run, err := ReadRun(strings.NewReader(sampleRun))
	if err != nil {
		t.Fatal(err)
	}
	if len(run) != 2 || len(run["T1"]) != 3 {
		t.Fatalf("run = %+v", run)
	}
	if run["T1"][0].DocNo != "doc3" || run["T1"][0].Score != 0.9 {
		t.Errorf("first entry = %+v", run["T1"][0])
	}
}

func TestRunRoundTrip(t *testing.T) {
	run, err := ReadRun(strings.NewReader(sampleRun))
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := WriteRun(&out, run); err != nil {
		t.Fatal(err)
	}
	again, err := ReadRun(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	for topic, entries := range run {
		if len(again[topic]) != len(entries) {
			t.Fatalf("topic %s: %d vs %d entries", topic, len(again[topic]), len(entries))
		}
		for i := range entries {
			if again[topic][i] != entries[i] {
				t.Errorf("topic %s entry %d: %+v vs %+v", topic, i, again[topic][i], entries[i])
			}
		}
	}
}

func TestReadRunErrors(t *testing.T) {
	if _, err := ReadRun(strings.NewReader("too few fields\n")); err == nil {
		t.Error("short line accepted")
	}
	if _, err := ReadRun(strings.NewReader("T1 Q0 d x 0.5 tag\n")); err == nil {
		t.Error("bad rank accepted")
	}
	if _, err := ReadRun(strings.NewReader("T1 Q0 d 1 zz tag\n")); err == nil {
		t.Error("bad score accepted")
	}
	run, err := ReadRun(strings.NewReader("\n\n"))
	if err != nil || len(run) != 0 {
		t.Errorf("blank lines: %v %v", run, err)
	}
}

func TestQrelsRoundTrip(t *testing.T) {
	q, err := ReadQrels(strings.NewReader(sampleQrels))
	if err != nil {
		t.Fatal(err)
	}
	if !q["T1"]["doc1"] || q["T1"]["doc2"] || !q["T2"]["doc8"] {
		t.Fatalf("qrels = %+v", q)
	}
	var out strings.Builder
	if err := WriteQrels(&out, q); err != nil {
		t.Fatal(err)
	}
	again, err := ReadQrels(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	for topic := range q {
		for doc, rel := range q[topic] {
			if again[topic][doc] != rel {
				t.Errorf("%s/%s: %v vs %v", topic, doc, again[topic][doc], rel)
			}
		}
	}
}

func TestReadQrelsErrors(t *testing.T) {
	if _, err := ReadQrels(strings.NewReader("T1 0 doc\n")); err == nil {
		t.Error("short line accepted")
	}
	if _, err := ReadQrels(strings.NewReader("T1 0 doc x\n")); err == nil {
		t.Error("bad relevance accepted")
	}
}

func TestEvaluate(t *testing.T) {
	run, _ := ReadRun(strings.NewReader(sampleRun))
	qrels, _ := ReadQrels(strings.NewReader(sampleQrels))
	results, mean := Evaluate(run, qrels)
	if len(results) != 2 {
		t.Fatalf("results = %+v", results)
	}
	// T1: ranking doc3(rel), doc1(rel), doc2(not) → niap = 1.
	if got := results[0].Metrics.NIAP; math.Abs(got-1) > 1e-9 {
		t.Errorf("T1 niap = %v", got)
	}
	// T2: run has doc9 (not relevant); doc8 (relevant) missing → niap 0.
	if got := results[1].Metrics.NIAP; got != 0 {
		t.Errorf("T2 niap = %v", got)
	}
	if math.Abs(mean.NIAP-0.5) > 1e-9 {
		t.Errorf("mean niap = %v", mean.NIAP)
	}
}

func TestEvaluatePenalizesMissedRelevant(t *testing.T) {
	// Run finds 1 of 2 relevant docs at rank 1: precision at that point is
	// 1, but niap must be halved by the missed document.
	run, _ := ReadRun(strings.NewReader("T1 Q0 a 1 0.9 x\n"))
	qrels, _ := ReadQrels(strings.NewReader("T1 0 a 1\nT1 0 b 1\n"))
	_, mean := Evaluate(run, qrels)
	if math.Abs(mean.NIAP-0.5) > 1e-9 {
		t.Errorf("niap = %v, want 0.5", mean.NIAP)
	}
}

func TestEvaluateSkipsUnjudgedTopics(t *testing.T) {
	run, _ := ReadRun(strings.NewReader("T9 Q0 a 1 0.9 x\n"))
	qrels, _ := ReadQrels(strings.NewReader("T1 0 a 1\n"))
	results, mean := Evaluate(run, qrels)
	if len(results) != 0 || mean.NIAP != 0 {
		t.Errorf("unjudged topic evaluated: %+v", results)
	}
}
