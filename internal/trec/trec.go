// Package trec reads and writes the TREC exchange formats the paper's
// evaluation methodology (Section 4.3) is modelled on: run files (ranked
// results, one line per document: topic, docno, rank, score, tag) and
// qrels (relevance judgments: topic, docno, relevance). They make this
// repository's rankings interoperable with standard IR tooling
// (trec_eval) and let external rankings be scored with our metrics.
package trec

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"mmprofile/internal/eval"
)

// RunEntry is one line of a run file.
type RunEntry struct {
	Topic string
	DocNo string
	Rank  int
	Score float64
	Tag   string
}

// Run is a full run: entries grouped by topic, ranked best-first.
type Run map[string][]RunEntry

// Qrels maps topic → docno → relevant.
type Qrels map[string]map[string]bool

// WriteRun emits entries in the standard 6-column format
// "topic Q0 docno rank score tag". Entries are sorted by topic, then rank.
func WriteRun(w io.Writer, run Run) error {
	topics := make([]string, 0, len(run))
	for t := range run {
		topics = append(topics, t)
	}
	sort.Strings(topics)
	for _, t := range topics {
		entries := append([]RunEntry(nil), run[t]...)
		sort.Slice(entries, func(i, j int) bool { return entries[i].Rank < entries[j].Rank })
		for _, e := range entries {
			tag := e.Tag
			if tag == "" {
				tag = "mmprofile"
			}
			if _, err := fmt.Fprintf(w, "%s Q0 %s %d %.6f %s\n", e.Topic, e.DocNo, e.Rank, e.Score, tag); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadRun parses a run file; lines must have the 6-column layout. Ranks
// are taken from the file (re-ranking by score is the consumer's choice).
func ReadRun(r io.Reader) (Run, error) {
	run := Run{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 6 {
			return nil, fmt.Errorf("trec: run line %d: %d fields, want 6", line, len(fields))
		}
		rank, err := strconv.Atoi(fields[3])
		if err != nil {
			return nil, fmt.Errorf("trec: run line %d: bad rank %q", line, fields[3])
		}
		score, err := strconv.ParseFloat(fields[4], 64)
		if err != nil {
			return nil, fmt.Errorf("trec: run line %d: bad score %q", line, fields[4])
		}
		e := RunEntry{Topic: fields[0], DocNo: fields[2], Rank: rank, Score: score, Tag: fields[5]}
		run[e.Topic] = append(run[e.Topic], e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trec: %w", err)
	}
	for t := range run {
		es := run[t]
		sort.Slice(es, func(i, j int) bool { return es[i].Rank < es[j].Rank })
	}
	return run, nil
}

// WriteQrels emits judgments in the standard 4-column format
// "topic 0 docno rel".
func WriteQrels(w io.Writer, q Qrels) error {
	topics := make([]string, 0, len(q))
	for t := range q {
		topics = append(topics, t)
	}
	sort.Strings(topics)
	for _, t := range topics {
		docs := make([]string, 0, len(q[t]))
		for d := range q[t] {
			docs = append(docs, d)
		}
		sort.Strings(docs)
		for _, d := range docs {
			rel := 0
			if q[t][d] {
				rel = 1
			}
			if _, err := fmt.Fprintf(w, "%s 0 %s %d\n", t, d, rel); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadQrels parses a qrels file; any positive relevance grade counts as
// relevant (TREC's binary-collapse convention).
func ReadQrels(r io.Reader) (Qrels, error) {
	q := Qrels{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		if len(fields) != 4 {
			return nil, fmt.Errorf("trec: qrels line %d: %d fields, want 4", line, len(fields))
		}
		rel, err := strconv.Atoi(fields[3])
		if err != nil {
			return nil, fmt.Errorf("trec: qrels line %d: bad relevance %q", line, fields[3])
		}
		if q[fields[0]] == nil {
			q[fields[0]] = map[string]bool{}
		}
		q[fields[0]][fields[2]] = rel > 0
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trec: %w", err)
	}
	return q, nil
}

// TopicResult is one topic's evaluation.
type TopicResult struct {
	Topic   string
	Metrics eval.RankedMetrics
}

// Evaluate scores a run against qrels, per topic plus the mean, exactly as
// trec_eval's headline numbers do. Topics in the run with no qrels entry
// are skipped; judged documents missing from the run simply never appear
// in the ranking (hurting recall-sensitive metrics, as they should).
func Evaluate(run Run, qrels Qrels) ([]TopicResult, eval.RankedMetrics) {
	var results []TopicResult
	topics := make([]string, 0, len(run))
	for t := range run {
		if _, ok := qrels[t]; ok {
			topics = append(topics, t)
		}
	}
	sort.Strings(topics)
	var meanNIAP, meanRP float64
	meanPAt := map[int]float64{}
	for _, t := range topics {
		flags := make([]bool, len(run[t]))
		for i, e := range run[t] {
			flags[i] = qrels[t][e.DocNo]
		}
		m := eval.Metrics(flags)
		// The denominator for niap must count ALL relevant docs for the
		// topic, including those the run missed.
		totalRel := 0
		for _, rel := range qrels[t] {
			if rel {
				totalRel++
			}
		}
		if totalRel > m.Relevant && m.Relevant > 0 {
			m.NIAP = m.NIAP * float64(m.Relevant) / float64(totalRel)
		}
		if totalRel > 0 && m.Relevant == 0 {
			m.NIAP = 0
		}
		results = append(results, TopicResult{Topic: t, Metrics: m})
		meanNIAP += m.NIAP
		meanRP += m.RPrecision
		for k, v := range m.PrecisionAt {
			meanPAt[k] += v
		}
	}
	mean := eval.RankedMetrics{PrecisionAt: map[int]float64{}}
	if len(results) > 0 {
		n := float64(len(results))
		mean.NIAP = meanNIAP / n
		mean.RPrecision = meanRP / n
		for k, v := range meanPAt {
			mean.PrecisionAt[k] = v / n
		}
	}
	return results, mean
}
