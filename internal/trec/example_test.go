package trec_test

import (
	"fmt"
	"strings"

	"mmprofile/internal/trec"
)

// Example evaluates a tiny run against qrels — the trec_eval workflow
// in-process.
func Example() {
	run, err := trec.ReadRun(strings.NewReader(
		"T1 Q0 doc2 1 0.9 demo\nT1 Q0 doc1 2 0.8 demo\nT1 Q0 doc3 3 0.1 demo\n"))
	if err != nil {
		panic(err)
	}
	qrels, err := trec.ReadQrels(strings.NewReader(
		"T1 0 doc1 1\nT1 0 doc2 1\nT1 0 doc3 0\n"))
	if err != nil {
		panic(err)
	}
	results, mean := trec.Evaluate(run, qrels)
	fmt.Printf("topics evaluated: %d\n", len(results))
	fmt.Printf("mean niap: %.2f\n", mean.NIAP)
	// Output:
	// topics evaluated: 1
	// mean niap: 1.00
}
