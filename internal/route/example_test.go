package route_test

import (
	"fmt"

	"mmprofile/internal/route"
	"mmprofile/internal/vsm"
)

func v(pairs ...any) vsm.Vector {
	m := map[string]float64{}
	for i := 0; i < len(pairs); i += 2 {
		m[pairs[i].(string)] = pairs[i+1].(float64)
	}
	return vsm.FromMap(m).Normalized()
}

// Example routes a document through a two-leaf broker tree: the edge
// aggregates forward it only toward the interested subscriber.
func Example() {
	root := route.NewNode("root")
	pets := route.NewNode("pets-leaf")
	finance := route.NewNode("finance-leaf")
	root.AddChild(pets)
	root.AddChild(finance)
	pets.Subscribe("alice", []vsm.Vector{v("cat", 1.0, "dog", 0.5)})
	finance.Subscribe("bob", []vsm.Vector{v("stock", 1.0, "bond", 0.5)})
	root.Rebuild(0.3, 100)

	deliveries, stats := root.Route(v("cat", 1.0), 0.3, 0.3)
	for _, d := range deliveries {
		fmt.Printf("delivered to %s\n", d.User)
	}
	fmt.Printf("links: %d traversed, %d pruned\n", stats.LinksTraversed, stats.LinksPruned)
	// Output:
	// delivered to alice
	// links: 1 traversed, 1 pruned
}
