package route

import (
	"fmt"
	"math/rand"
	"testing"

	"mmprofile/internal/core"
	"mmprofile/internal/corpus"
	"mmprofile/internal/eval"
	"mmprofile/internal/sim"
	"mmprofile/internal/text"
	"mmprofile/internal/vsm"
)

func vec(pairs ...any) vsm.Vector {
	m := map[string]float64{}
	for i := 0; i < len(pairs); i += 2 {
		m[pairs[i].(string)] = pairs[i+1].(float64)
	}
	return vsm.FromMap(m).Normalized()
}

func TestAggregateClusters(t *testing.T) {
	a := NewAggregate(0.5, 100)
	a.Add(vec("cat", 1.0, "dog", 0.8))
	a.Add(vec("cat", 0.9, "dog", 1.0)) // similar → merges
	a.Add(vec("stock", 1.0))           // distinct → new cluster
	if a.Size() != 2 {
		t.Fatalf("aggregate size = %d, want 2", a.Size())
	}
	if s := a.Score(vec("cat", 1.0)); s < 0.5 {
		t.Errorf("merged cluster lost its topic: %v", s)
	}
	if s := a.Score(vec("bond", 1.0)); s != 0 {
		t.Errorf("unrelated doc scored %v", s)
	}
	a.Add(vsm.Vector{}) // zero vector is a no-op
	if a.Size() != 2 {
		t.Error("zero vector changed the aggregate")
	}
}

func TestAggregateCoversEveryInput(t *testing.T) {
	// Whatever gets folded in must keep scoring above the aggregation
	// threshold: an aggregate must never "forget" a constituent interest
	// (that would cause false-negative routing).
	rng := rand.New(rand.NewSource(2))
	terms := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	a := NewAggregate(0.4, 100)
	var inputs []vsm.Vector
	for k := 0; k < 60; k++ {
		m := map[string]float64{}
		for _, tm := range terms {
			if rng.Float64() < 0.35 {
				m[tm] = rng.Float64() + 0.01
			}
		}
		v := vsm.FromMap(m).Normalized()
		if v.IsZero() {
			continue
		}
		inputs = append(inputs, v)
		a.Add(v)
	}
	if a.Size() >= len(inputs) {
		t.Errorf("no compression: %d clusters for %d inputs", a.Size(), len(inputs))
	}
	for i, v := range inputs {
		if s := a.Score(v); s < 0.35 {
			t.Errorf("input %d under-covered: score %v", i, s)
		}
	}
}

// buildTree makes a 2-level tree: root → 3 regions → 3 leaves each, with
// one subscriber per leaf whose interest is a distinct concept vector.
func buildTree() (*Node, map[string]vsm.Vector) {
	root := NewNode("root")
	interests := map[string]vsm.Vector{}
	concept := 0
	for r := 0; r < 3; r++ {
		region := NewNode(fmt.Sprintf("region%d", r))
		root.AddChild(region)
		for l := 0; l < 3; l++ {
			leaf := NewNode(fmt.Sprintf("leaf%d%d", r, l))
			region.AddChild(leaf)
			user := fmt.Sprintf("user%d", concept)
			v := vec(fmt.Sprintf("topic%d", concept), 1.0, "shared", 0.2)
			leaf.Subscribe(user, []vsm.Vector{v})
			interests[user] = v
			concept++
		}
	}
	root.Rebuild(0.3, 100)
	return root, interests
}

func TestRouteDeliversToInterestedUser(t *testing.T) {
	root, interests := buildTree()
	doc := interests["user4"] // exact interest of one user
	got, stats := root.Route(doc, 0.3, 0.3)
	if len(got) != 1 || got[0].User != "user4" {
		t.Fatalf("deliveries = %+v", got)
	}
	// Only the path to user4's leaf should be traversed: root→region1,
	// region1→leaf11 = 2 links (other leaves of region1 share "shared"
	// weakly; allow up to the region's 3 leaves + 1).
	if stats.LinksTraversed > 4 {
		t.Errorf("traversed %d links, expected a pruned path", stats.LinksTraversed)
	}
	if stats.LinksPruned == 0 {
		t.Error("nothing pruned")
	}
}

func TestRouteMatchesFloodDeliveries(t *testing.T) {
	// With forwarding threshold equal to delivery threshold and exact
	// aggregates, routing must lose nothing vs flooding on these separated
	// topics.
	root, interests := buildTree()
	for user, v := range interests {
		routed, _ := root.Route(v, 0.3, 0.3)
		flooded, fstats := root.Flood(v, 0.3)
		if len(routed) != len(flooded) {
			t.Fatalf("user %s: routed %d, flooded %d", user, len(routed), len(flooded))
		}
		if fstats.LinksTraversed != root.CountLinks() {
			t.Fatalf("flood traversed %d links, tree has %d", fstats.LinksTraversed, root.CountLinks())
		}
	}
}

func TestRouteSavesTraffic(t *testing.T) {
	root, interests := buildTree()
	var routedLinks, floodLinks int
	for _, v := range interests {
		_, rs := root.Route(v, 0.3, 0.3)
		_, fs := root.Flood(v, 0.3)
		routedLinks += rs.LinksTraversed
		floodLinks += fs.LinksTraversed
	}
	if routedLinks*2 > floodLinks {
		t.Errorf("routing used %d links vs flooding %d — expected <50%%", routedLinks, floodLinks)
	}
}

func TestUnsubscribeAndRebuild(t *testing.T) {
	root, interests := buildTree()
	// Remove user0 and rebuild: its topic must stop being routed.
	var leaf *Node
	var find func(n *Node)
	find = func(n *Node) {
		for _, u := range n.Subscribers() {
			if u == "user0" {
				leaf = n
			}
		}
		for _, c := range n.children {
			find(c)
		}
	}
	find(root)
	if leaf == nil {
		t.Fatal("user0 leaf not found")
	}
	leaf.Unsubscribe("user0")
	root.Rebuild(0.3, 100)
	got, _ := root.Route(interests["user0"], 0.3, 0.3)
	if len(got) != 0 {
		t.Errorf("deliveries after unsubscribe: %+v", got)
	}
}

func TestUnbuiltEdgeFailsOpen(t *testing.T) {
	root := NewNode("root")
	leaf := NewNode("leaf")
	root.AddChild(leaf)
	leaf.Subscribe("alice", []vsm.Vector{vec("cat", 1.0)})
	// No Rebuild: the edge aggregate is nil and must flood, not drop.
	got, _ := root.Route(vec("cat", 1.0), 0.5, 0.5)
	if len(got) != 1 {
		t.Fatalf("fail-open routing lost the delivery: %+v", got)
	}
}

// TestRoutingWithLearnedProfiles is the integration test: profiles learned
// by MM on the synthetic corpus, installed at leaves, aggregated up a
// tree; routed deliveries must recall nearly everything flooding delivers
// at a fraction of the traffic.
func TestRoutingWithLearnedProfiles(t *testing.T) {
	cfg := corpus.DefaultConfig()
	cfg.TopCategories = 6
	cfg.SubPerTop = 4
	cfg.PagesPerSub = 6
	cfg.MinWords = 80
	cfg.MaxWords = 160
	ds := corpus.Generate(cfg).Vectorize(text.NewPipeline())
	rng := rand.New(rand.NewSource(9))
	train, test := ds.Split(rng.Int63(), 100)

	root := NewNode("root")
	numLeaves := 4
	usersPerLeaf := 3
	for l := 0; l < numLeaves; l++ {
		leaf := NewNode(fmt.Sprintf("leaf%d", l))
		root.AddChild(leaf)
		for u := 0; u < usersPerLeaf; u++ {
			user := sim.NewUser(sim.RandomTopInterests(rng, ds, 1)...)
			mm := core.NewDefault()
			eval.Train(mm, user, sim.Stream(rng, train, len(train)))
			leaf.Subscribe(fmt.Sprintf("user%d_%d", l, u), mm.ProfileVectors())
		}
	}
	root.Rebuild(0.3, 100)

	var routedDeliveries, floodDeliveries, routedLinks, floodLinks int
	for _, d := range test {
		r, rs := root.Route(d.Vec, 0.15, 0.15)
		f, fs := root.Flood(d.Vec, 0.15)
		routedDeliveries += len(r)
		floodDeliveries += len(f)
		routedLinks += rs.LinksTraversed
		floodLinks += fs.LinksTraversed
	}
	if floodDeliveries == 0 {
		t.Fatal("flooding delivered nothing — workload bug")
	}
	recall := float64(routedDeliveries) / float64(floodDeliveries)
	traffic := float64(routedLinks) / float64(floodLinks)
	t.Logf("routing recall %.3f at %.0f%% of flooding traffic", recall, 100*traffic)
	if recall < 0.95 {
		t.Errorf("routing recall %.3f below 95%%", recall)
	}
	if traffic > 0.8 {
		t.Errorf("routing used %.0f%% of flooding traffic — no savings", 100*traffic)
	}
}
