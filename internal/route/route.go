// Package route implements profile-driven content routing, the third use
// the paper's opening sentence gives user profiles ("scheduling, bandwidth
// allocation, and routing decisions"): a dissemination tree in which every
// edge carries an aggregate of all subscriber profiles reachable through
// it, and a published document is forwarded down an edge only when it is
// similar enough to that aggregate. Against flooding (send everything
// everywhere), profile-driven routing trades a configurable amount of
// recall at the aggregates for a large reduction in link traffic.
//
// Aggregation reuses the thesis of the paper itself: a set of interest
// vectors compresses well under threshold clustering. An edge aggregate is
// built by folding every downstream profile vector into an MM-style
// cluster set with an aggregation threshold θ_a — coarser than any single
// user's profile, exactly fine enough for a forwarding decision.
package route

import (
	"fmt"
	"sort"

	"mmprofile/internal/vsm"
)

// Aggregate is a compressed union of profile vectors: the routing filter
// installed on one edge of the dissemination tree.
type Aggregate struct {
	// Theta is the clustering threshold used during construction.
	Theta float64
	// MaxTerms caps each cluster vector's size.
	MaxTerms int

	vectors []vsm.Vector
}

// NewAggregate returns an empty aggregate with the given clustering
// threshold (coarser than profile-learning θ; 0.3 is a reasonable start)
// and per-vector term cap.
func NewAggregate(theta float64, maxTerms int) *Aggregate {
	if maxTerms <= 0 {
		maxTerms = vsm.MaxDocumentTerms
	}
	return &Aggregate{Theta: theta, MaxTerms: maxTerms}
}

// Add folds one profile vector into the aggregate: it merges into the
// nearest cluster when similar enough, otherwise starts a new cluster —
// the same single-pass clustering MM uses for profiles, without feedback
// polarity (aggregates only describe what *is* wanted downstream).
func (a *Aggregate) Add(v vsm.Vector) {
	if v.IsZero() {
		return
	}
	v = v.Normalized()
	best, bestIdx := -1.0, -1
	for i, c := range a.vectors {
		if s := vsm.Cosine(c, v); s > best {
			best, bestIdx = s, i
		}
	}
	if bestIdx >= 0 && best >= a.Theta {
		merged := vsm.Combine(a.vectors[bestIdx], 1, v, 1)
		a.vectors[bestIdx] = merged.Truncated(a.MaxTerms).Normalized()
		return
	}
	a.vectors = append(a.vectors, v.Truncated(a.MaxTerms))
}

// AddAll folds a whole profile (e.g. filter.VectorSource output).
func (a *Aggregate) AddAll(vs []vsm.Vector) {
	for _, v := range vs {
		a.Add(v)
	}
}

// Size returns the number of cluster vectors in the aggregate.
func (a *Aggregate) Size() int { return len(a.vectors) }

// Score returns the document's best similarity to any cluster.
func (a *Aggregate) Score(doc vsm.Vector) float64 {
	best := 0.0
	for _, c := range a.vectors {
		if s := vsm.Cosine(c, doc); s > best {
			best = s
		}
	}
	return best
}

// Node is one broker in the dissemination tree. Leaves hold subscriber
// profiles (as vector sets); interior nodes hold children and, per child,
// the aggregate filter guarding that edge.
type Node struct {
	Name     string
	children []*Node
	edges    []*Aggregate // edges[i] guards children[i]

	// Leaf state.
	profiles map[string][]vsm.Vector
}

// NewNode creates a node.
func NewNode(name string) *Node {
	return &Node{Name: name, profiles: make(map[string][]vsm.Vector)}
}

// AddChild attaches a child node; its edge aggregate is built by Rebuild.
func (n *Node) AddChild(c *Node) {
	n.children = append(n.children, c)
	n.edges = append(n.edges, nil)
}

// Subscribe installs a subscriber's profile vectors at this (leaf) node.
func (n *Node) Subscribe(user string, vectors []vsm.Vector) {
	cp := make([]vsm.Vector, len(vectors))
	for i, v := range vectors {
		cp[i] = v.Clone()
	}
	n.profiles[user] = cp
}

// Unsubscribe removes a subscriber.
func (n *Node) Unsubscribe(user string) {
	delete(n.profiles, user)
}

// Subscribers returns the user ids at this node, sorted.
func (n *Node) Subscribers() []string {
	out := make([]string, 0, len(n.profiles))
	for u := range n.profiles {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Rebuild recomputes every edge aggregate in the subtree bottom-up and
// returns this node's own aggregate (the filter its parent should
// install). Call after subscriptions change; in a deployment this is the
// advertisement propagation step.
func (n *Node) Rebuild(theta float64, maxTerms int) *Aggregate {
	agg := NewAggregate(theta, maxTerms)
	for _, vs := range n.profiles {
		agg.AddAll(vs)
	}
	for i, c := range n.children {
		childAgg := c.Rebuild(theta, maxTerms)
		n.edges[i] = childAgg
		for _, v := range childAgg.vectors {
			agg.Add(v)
		}
	}
	return agg
}

// Delivery reports one document reaching one subscriber at some leaf.
type Delivery struct {
	User  string
	Score float64
}

// RouteStats counts the traffic of one Route call.
type RouteStats struct {
	// LinksTraversed is the number of edges the document was forwarded
	// over (the network cost).
	LinksTraversed int
	// LinksPruned is the number of edges suppressed by aggregate filters.
	LinksPruned int
}

// Route pushes one document through the subtree: it is matched against
// the local subscribers of every node it reaches, and forwarded down an
// edge only when the edge aggregate scores ≥ forwardThreshold. The final
// per-user delivery check uses deliverThreshold against the user's own
// profile vectors (≥ forwardThreshold; typically the broker threshold).
func (n *Node) Route(doc vsm.Vector, forwardThreshold, deliverThreshold float64) ([]Delivery, RouteStats) {
	var out []Delivery
	var stats RouteStats
	n.route(doc, forwardThreshold, deliverThreshold, &out, &stats)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].User < out[j].User
	})
	return out, stats
}

func (n *Node) route(doc vsm.Vector, fwd, del float64, out *[]Delivery, stats *RouteStats) {
	for user, vs := range n.profiles {
		best := 0.0
		for _, v := range vs {
			if s := vsm.Cosine(v, doc); s > best {
				best = s
			}
		}
		if best >= del {
			*out = append(*out, Delivery{User: user, Score: best})
		}
	}
	for i, c := range n.children {
		if n.edges[i] == nil {
			// Never rebuilt: fail open (flooding) rather than dropping.
			stats.LinksTraversed++
			c.route(doc, fwd, del, out, stats)
			continue
		}
		if n.edges[i].Score(doc) >= fwd {
			stats.LinksTraversed++
			c.route(doc, fwd, del, out, stats)
		} else {
			stats.LinksPruned++
		}
	}
}

// Flood pushes the document everywhere (no aggregate filtering): the
// baseline routing strategy and the ground truth for recall measurements.
func (n *Node) Flood(doc vsm.Vector, deliverThreshold float64) ([]Delivery, RouteStats) {
	return n.Route(doc, -1, deliverThreshold)
}

// CountLinks returns the number of edges in the subtree.
func (n *Node) CountLinks() int {
	total := len(n.children)
	for _, c := range n.children {
		total += c.CountLinks()
	}
	return total
}

// String renders the subtree for debugging.
func (n *Node) String() string {
	return fmt.Sprintf("Node(%s: %d subscribers, %d children)", n.Name, len(n.profiles), len(n.children))
}
