package trace

// Wire propagation: trace context crosses the JSON protocol as a single
// string field of the form "tttttttttttttttt-ssssssssssssssss" — sixteen
// lowercase hex digits of trace id, a dash, sixteen of span id. The codec
// is deliberately unforgiving in shape but forgiving in effect: anything
// malformed (wrong length, bad digit, zero ids) parses as the zero Remote,
// meaning "no parent", never an error — a publisher with a buggy tracing
// header must still be able to publish.

const ctxLen = 33 // 16 hex + '-' + 16 hex

const hexDigits = "0123456789abcdef"

// FormatContext renders trace context for the wire. Zero ids yield "".
func FormatContext(tr TraceID, sp SpanID) string {
	if tr == 0 || sp == 0 {
		return ""
	}
	var b [ctxLen]byte
	putHex16(b[:16], uint64(tr))
	b[16] = '-'
	putHex16(b[17:], uint64(sp))
	return string(b[:])
}

// Context renders a live span's propagation header ("" on nil), for
// clients that fan a traced request out to downstream servers.
func (s *Span) Context() string {
	if s == nil {
		return ""
	}
	return FormatContext(s.rec.trace, s.id)
}

// TraceString renders just the trace id as 16 hex digits ("" on nil), the
// form surfaced to users in responses and joined against /tracez.
func (s *Span) TraceString() string {
	if s == nil {
		return ""
	}
	return s.rec.trace.String()
}

// String renders a TraceID as 16 lowercase hex digits ("" when zero).
func (id TraceID) String() string {
	if id == 0 {
		return ""
	}
	var b [16]byte
	putHex16(b[:], uint64(id))
	return string(b[:])
}

// String renders a SpanID as 16 lowercase hex digits ("" when zero).
func (id SpanID) String() string {
	if id == 0 {
		return ""
	}
	var b [16]byte
	putHex16(b[:], uint64(id))
	return string(b[:])
}

func putHex16(dst []byte, v uint64) {
	for i := 15; i >= 0; i-- {
		dst[i] = hexDigits[v&0xf]
		v >>= 4
	}
}

// ParseContext decodes a wire trace-context header. Malformed or
// truncated input — wrong length, missing dash, non-hex digit, zero id —
// returns the zero Remote ("no parent"); there is no error path.
func ParseContext(s string) Remote {
	if len(s) != ctxLen || s[16] != '-' {
		return Remote{}
	}
	tr, ok := parseHex16(s[:16])
	if !ok || tr == 0 {
		return Remote{}
	}
	sp, ok := parseHex16(s[17:])
	if !ok || sp == 0 {
		return Remote{}
	}
	return Remote{Trace: TraceID(tr), Span: SpanID(sp)}
}

// parseHex16 decodes exactly 16 lowercase hex digits.
func parseHex16(s string) (uint64, bool) {
	var v uint64
	for i := 0; i < 16; i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}
