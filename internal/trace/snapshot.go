package trace

import "time"

// SpanSnapshot is one span rendered for exposition (/tracez).
type SpanSnapshot struct {
	ID     string `json:"id"`
	Parent string `json:"parent,omitempty"` // absent on the root (unless remote)
	Name   string `json:"name"`
	// StartUnixNano anchors the span on the wall clock; offsets between
	// spans of one trace are exact (same clock, one process).
	StartUnixNano int64 `json:"start_unix_nano"`
	// DurationUS is the span's length in microseconds; 0 for a span that
	// never ended (a bug in the instrumentation, surfaced rather than
	// hidden).
	DurationUS float64 `json:"duration_us"`
	Attrs      []Attr  `json:"attrs,omitempty"`
}

// TraceSnapshot is one completed trace rendered for exposition.
type TraceSnapshot struct {
	Trace         string `json:"trace"`
	Root          string `json:"root"` // root span name
	StartUnixNano int64  `json:"start_unix_nano"`
	DurationMS    float64 `json:"duration_ms"`
	// Slow marks traces that met SlowThreshold.
	Slow bool `json:"slow,omitempty"`
	// Synthetic marks root-only traces captured post hoc by the
	// always-capture-slow policy: no children were recorded because the
	// head-sampling decision had already skipped the request.
	Synthetic bool `json:"synthetic,omitempty"`
	// RemoteParent is the propagated parent span id when this trace
	// joined a peer's trace over the wire.
	RemoteParent string         `json:"remote_parent,omitempty"`
	Spans        []SpanSnapshot `json:"spans"`
}

// Snapshot is the tracer's full exposition state (/tracez).
type Snapshot struct {
	SampleEvery     uint64          `json:"sample_every"` // head sampling captures every Nth root; 0 = off
	SlowThresholdMS float64         `json:"slow_threshold_ms"`
	Sampled         uint64          `json:"sampled"`
	SlowCaptured    uint64          `json:"slow_captured"`
	Recent          []TraceSnapshot `json:"recent"`
	Slow            []TraceSnapshot `json:"slow"`
}

// Snapshot renders both rings, newest trace first. Safe to call
// concurrently with capture; each trace is copied under its own lock.
func (t *Tracer) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{}
	}
	s := Snapshot{
		SampleEvery:     t.every,
		SlowThresholdMS: float64(t.slowNS) / 1e6,
		Sampled:         t.sampled.Load(),
		SlowCaptured:    t.slowCaptured.Load(),
		Recent:          snapshotRecords(t.recent.records()),
		Slow:            snapshotRecords(t.slow.records()),
	}
	return s
}

// Find returns the snapshot of one trace by hex id, searching the recent
// ring then the slow ring.
func (t *Tracer) Find(id string) (TraceSnapshot, bool) {
	if t == nil {
		return TraceSnapshot{}, false
	}
	for _, recs := range [][]*record{t.recent.records(), t.slow.records()} {
		for _, r := range recs {
			if r.trace.String() == id {
				return r.snapshot(), true
			}
		}
	}
	return TraceSnapshot{}, false
}

func snapshotRecords(recs []*record) []TraceSnapshot {
	out := make([]TraceSnapshot, len(recs))
	for i, r := range recs {
		out[i] = r.snapshot()
	}
	return out
}

func (r *record) snapshot() TraceSnapshot {
	r.mu.Lock()
	spans := make([]SpanSnapshot, len(r.spans))
	for i, sp := range r.spans {
		spans[i] = SpanSnapshot{
			ID:            sp.id.String(),
			Parent:        sp.parent.String(),
			Name:          sp.name,
			StartUnixNano: sp.start,
			Attrs:         sp.attrs,
		}
		if sp.end > sp.start {
			spans[i].DurationUS = float64(sp.end-sp.start) / float64(time.Microsecond)
		}
	}
	root := r.root
	r.mu.Unlock()
	ts := TraceSnapshot{
		Trace:         r.trace.String(),
		Root:          root.name,
		StartUnixNano: root.start,
		Slow:          r.slow,
		Synthetic:     r.synthetic,
		RemoteParent:  r.remoteParent.String(),
		Spans:         spans,
	}
	if root.end > root.start {
		ts.DurationMS = float64(root.end-root.start) / float64(time.Millisecond)
	}
	return ts
}
