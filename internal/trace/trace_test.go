package trace

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() || tr.Slow(time.Hour) {
		t.Fatal("nil tracer reports capability")
	}
	if sp := tr.RootAt("x", time.Now(), Remote{}); sp != nil {
		t.Fatal("nil tracer produced a span")
	}
	if id := tr.CaptureSlow("x", time.Now(), time.Now().Add(time.Hour)); id != 0 {
		t.Fatal("nil tracer captured a slow trace")
	}
	snap := tr.Snapshot()
	if len(snap.Recent) != 0 || len(snap.Slow) != 0 {
		t.Fatal("nil tracer snapshot non-empty")
	}

	var sp *Span
	sp.SetInt("k", 1)
	sp.SetString("k", "v")
	sp.SetFloat("k", 1.5)
	sp.SetBool("k", true)
	sp.End()
	sp.EndAt(time.Now())
	if c := sp.Child("c"); c != nil {
		t.Fatal("nil span produced a child")
	}
	if c := sp.ChildAt("c", time.Now()); c != nil {
		t.Fatal("nil span produced a child")
	}
	if sp.Trace() != 0 || sp.ID() != 0 || sp.Context() != "" || sp.TraceString() != "" {
		t.Fatal("nil span has identity")
	}
}

func TestHeadSamplingRate(t *testing.T) {
	tr := New(Options{SampleRate: 0.25, Capacity: 4096})
	const roots = 1000
	captured := 0
	for i := 0; i < roots; i++ {
		if sp := tr.Root("r", Remote{}); sp != nil {
			captured++
			sp.End()
		}
	}
	if captured != roots/4 {
		t.Fatalf("1-in-4 sampling captured %d of %d", captured, roots)
	}
	if got := tr.Snapshot().Sampled; got != uint64(captured) {
		t.Fatalf("sampled counter %d != %d", got, captured)
	}
}

func TestSampleRateZeroCapturesNothing(t *testing.T) {
	tr := New(Options{SampleRate: 0})
	for i := 0; i < 100; i++ {
		if sp := tr.Root("r", Remote{}); sp != nil {
			t.Fatal("rate-0 tracer sampled a root")
		}
	}
}

func TestRemoteContextForcesCapture(t *testing.T) {
	tr := New(Options{SampleRate: 0}) // head sampling off
	remote := Remote{Trace: 0xabc, Span: 0xdef}
	sp := tr.Root("joined", remote)
	if sp == nil {
		t.Fatal("sampled remote context did not force capture")
	}
	if sp.Trace() != remote.Trace {
		t.Fatalf("joined trace id %x != remote %x", sp.Trace(), remote.Trace)
	}
	sp.End()
	snap, ok := tr.Find(remote.Trace.String())
	if !ok {
		t.Fatal("joined trace not in ring")
	}
	if snap.RemoteParent != remote.Span.String() {
		t.Fatalf("remote parent %q != %q", snap.RemoteParent, remote.Span.String())
	}
	if snap.Spans[0].Parent != remote.Span.String() {
		t.Fatalf("root parent %q not the remote span", snap.Spans[0].Parent)
	}
}

func TestSpanTreeAndAttrs(t *testing.T) {
	tr := New(Options{SampleRate: 1})
	t0 := time.Now()
	root := tr.RootAt("publish", t0, Remote{})
	root.SetInt("doc", 42)
	child := root.ChildAt("match", t0)
	child.SetFloat("score", 0.75)
	child.SetString("kind", "indexed")
	child.SetBool("hit", true)
	child.EndAt(t0.Add(time.Millisecond))
	root.EndAt(t0.Add(2 * time.Millisecond))

	snap, ok := tr.Find(root.TraceString())
	if !ok {
		t.Fatal("trace not found")
	}
	if len(snap.Spans) != 2 {
		t.Fatalf("want 2 spans, got %d", len(snap.Spans))
	}
	rs, cs := snap.Spans[0], snap.Spans[1]
	if rs.Name != "publish" || cs.Name != "match" {
		t.Fatalf("span names %q %q", rs.Name, cs.Name)
	}
	if cs.Parent != rs.ID {
		t.Fatalf("child parent %q != root id %q", cs.Parent, rs.ID)
	}
	if rs.Parent != "" {
		t.Fatalf("root has parent %q", rs.Parent)
	}
	if cs.DurationUS < 999 || cs.DurationUS > 1001 {
		t.Fatalf("child duration %v µs, want ~1000", cs.DurationUS)
	}
	if snap.DurationMS < 1.99 || snap.DurationMS > 2.01 {
		t.Fatalf("trace duration %v ms, want ~2", snap.DurationMS)
	}
	if got := cs.Attrs[0].Value(); got != 0.75 {
		t.Fatalf("score attr %v", got)
	}
	if got := cs.Attrs[2].Value(); got != true {
		t.Fatalf("bool attr %v", got)
	}
	// The whole snapshot must be JSON-marshalable with typed attr values.
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
}

func TestSlowCaptureSynthetic(t *testing.T) {
	tr := New(Options{SampleRate: 0, SlowThreshold: 10 * time.Millisecond})
	t0 := time.Now()

	// Fast request: nothing captured.
	if id := tr.CaptureSlow("publish", t0, t0.Add(time.Millisecond)); id != 0 {
		t.Fatal("fast request captured")
	}
	// Slow request: synthetic root-only trace in both rings.
	id := tr.CaptureSlow("publish", t0, t0.Add(50*time.Millisecond), Int("doc", 7))
	if id == 0 {
		t.Fatal("slow request not captured")
	}
	snap := tr.Snapshot()
	if len(snap.Slow) != 1 || len(snap.Recent) != 1 {
		t.Fatalf("rings recent=%d slow=%d, want 1/1", len(snap.Recent), len(snap.Slow))
	}
	got := snap.Slow[0]
	if !got.Synthetic || !got.Slow {
		t.Fatalf("slow capture flags: %+v", got)
	}
	if got.Trace != id.String() {
		t.Fatalf("trace id %q != returned %q", got.Trace, id.String())
	}
	if len(got.Spans) != 1 || got.Spans[0].Attrs[0].Value() != int64(7) {
		t.Fatalf("synthetic span: %+v", got.Spans)
	}
	if snap.SlowCaptured != 1 {
		t.Fatalf("slow_captured %d", snap.SlowCaptured)
	}
}

func TestSampledSlowTraceEntersSlowRing(t *testing.T) {
	tr := New(Options{SampleRate: 1, SlowThreshold: 10 * time.Millisecond})
	t0 := time.Now()
	sp := tr.RootAt("r", t0, Remote{})
	sp.EndAt(t0.Add(20 * time.Millisecond))
	snap := tr.Snapshot()
	if len(snap.Slow) != 1 || !snap.Slow[0].Slow || snap.Slow[0].Synthetic {
		t.Fatalf("sampled slow trace: %+v", snap.Slow)
	}
}

func TestRingOverwritesOldestNewestFirst(t *testing.T) {
	tr := New(Options{SampleRate: 1, Capacity: 3})
	for i := 0; i < 5; i++ {
		sp := tr.Root("r", Remote{})
		sp.SetInt("i", int64(i))
		sp.End()
	}
	snap := tr.Snapshot()
	if len(snap.Recent) != 3 {
		t.Fatalf("ring holds %d, want 3", len(snap.Recent))
	}
	for i, want := range []int64{4, 3, 2} {
		if got := snap.Recent[i].Spans[0].Attrs[0].Value(); got != want {
			t.Fatalf("slot %d holds trace %v, want %v", i, got, want)
		}
	}
}

func TestConcurrentChildrenRaceFree(t *testing.T) {
	tr := New(Options{SampleRate: 1})
	root := tr.Root("batch", Remote{})
	var wg sync.WaitGroup
	const workers, perWorker = 8, 25
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c := root.Child(fmt.Sprintf("doc-%d-%d", w, i))
				c.SetInt("w", int64(w))
				c.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	snap, ok := tr.Find(root.TraceString())
	if !ok {
		t.Fatal("batch trace missing")
	}
	if want := 1 + workers*perWorker; len(snap.Spans) != want {
		t.Fatalf("%d spans, want %d", len(snap.Spans), want)
	}
	ids := make(map[string]bool, len(snap.Spans))
	for _, sp := range snap.Spans {
		if ids[sp.ID] {
			t.Fatalf("duplicate span id %s", sp.ID)
		}
		ids[sp.ID] = true
	}
}

// TestUnsampledPathZeroAllocs pins the tentpole's cost contract: when head
// sampling skips a root, starting it performs no allocation at all.
func TestUnsampledPathZeroAllocs(t *testing.T) {
	tr := New(Options{SampleRate: 0, SlowThreshold: time.Hour})
	t0 := time.Now()
	t1 := t0.Add(time.Microsecond)
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.RootAt("publish", t0, Remote{})
		c := sp.ChildAt("match", t0)
		c.EndAt(t1)
		sp.SetInt("doc", 1)
		sp.EndAt(t1)
		if tr.Slow(t1.Sub(t0)) {
			tr.CaptureSlow("publish", t0, t1)
		}
	})
	if allocs != 0 {
		t.Fatalf("unsampled path allocates %v per op", allocs)
	}
}

func TestFormatParseRoundTrip(t *testing.T) {
	cases := []Remote{
		{Trace: 1, Span: 1},
		{Trace: 0xdeadbeefcafe0123, Span: 0x00000000000000ff},
		{Trace: ^TraceID(0), Span: ^SpanID(0)},
	}
	for _, want := range cases {
		s := FormatContext(want.Trace, want.Span)
		if got := ParseContext(s); got != want {
			t.Fatalf("round trip %q: got %+v want %+v", s, got, want)
		}
	}
}

func TestParseContextMalformed(t *testing.T) {
	bad := []string{
		"",
		"not-a-context",
		"0123456789abcdef",                    // missing span half
		"0123456789abcdef-0123456789abcde",    // short span
		"0123456789abcdef_0123456789abcdef",   // wrong separator
		"0123456789ABCDEF-0123456789abcdef",   // uppercase rejected
		"0000000000000000-0123456789abcdef",   // zero trace id
		"0123456789abcdef-0000000000000000",   // zero span id
		"0123456789abcdeg-0123456789abcdef",   // non-hex digit
		"0123456789abcdef-0123456789abcdef0",  // too long
		"\x000123456789abcde-0123456789abcdef", // control bytes
	}
	for _, s := range bad {
		if got := ParseContext(s); got != (Remote{}) {
			t.Fatalf("ParseContext(%q) = %+v, want zero Remote", s, got)
		}
	}
}

func TestFormatContextZeroIsEmpty(t *testing.T) {
	if FormatContext(0, 5) != "" || FormatContext(5, 0) != "" {
		t.Fatal("zero ids must format as empty")
	}
}

func TestIDStrings(t *testing.T) {
	if got := TraceID(0xabc).String(); got != "0000000000000abc" {
		t.Fatalf("TraceID string %q", got)
	}
	if got := SpanID(0).String(); got != "" {
		t.Fatalf("zero SpanID string %q", got)
	}
}

func BenchmarkRootUnsampled(b *testing.B) {
	tr := New(Options{SampleRate: 0, SlowThreshold: time.Hour})
	t0 := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.RootAt("publish", t0, Remote{})
		sp.EndAt(t0)
	}
}

func BenchmarkRootSampled(b *testing.B) {
	tr := New(Options{SampleRate: 1, Capacity: 64})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Root("publish", Remote{})
		c := sp.Child("match")
		c.End()
		sp.End()
	}
}
