// Package trace is the zero-dependency request-scoped tracing subsystem of
// the dissemination pipeline (DESIGN.md §11): spans with trace/parent ids,
// typed attributes, and nanosecond timings, recorded into fixed-size
// sampled ring buffers.
//
// Two policies decide what gets captured:
//
//   - head sampling: roughly SampleRate of root spans are recorded in
//     full, children and all (the decision is one atomic add on a counter,
//     taken before any clock is read or byte allocated);
//   - always-capture-slow: a request that was not head-sampled but whose
//     duration meets SlowThreshold is captured post hoc as a synthetic
//     root-only trace — the timing is already in hand from the caller's
//     existing instrumentation clocks, so the slow path is the only one
//     that pays.
//
// The cost contract mirrors internal/metrics: every method is safe on a
// nil *Tracer or nil *Span, and the unsampled hot path costs zero
// allocations and no clock reads beyond the ones the caller already
// performs for its latency histograms (Span constructors take explicit
// timestamps precisely so instrumented code can reuse them).
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one request's whole span tree; SpanID one span in it.
// Both are non-zero for live traces: zero means "absent".
type TraceID uint64

// SpanID identifies a single span within a trace.
type SpanID uint64

// Options configures a Tracer.
type Options struct {
	// SampleRate is the fraction of root spans captured by head sampling,
	// in [0,1]. 0 disables head sampling entirely. Internally the rate is
	// rounded to 1-in-N, so e.g. 0.3 samples every 3rd root.
	SampleRate float64
	// SlowThreshold is the duration at which a request is captured even
	// when head sampling skipped it (as a synthetic root-only trace) and
	// at which a sampled trace is additionally retained in the slow ring.
	// 0 disables slow capture.
	SlowThreshold time.Duration
	// Capacity is each ring's trace capacity (recent and slow); 0 means 64.
	Capacity int
}

// Tracer owns the sampling policy and the two completed-trace rings. All
// methods are safe for concurrent use; a nil *Tracer is a fully disabled
// no-op, so instrumented code never branches on configuration.
type Tracer struct {
	every  uint64 // head sampling: capture every Nth root; 0 = off
	slowNS int64  // always-capture threshold in nanoseconds; 0 = off

	seq atomic.Uint64 // root-span counter driving head sampling
	ids atomic.Uint64 // id sequence, mixed through splitmix64

	sampled      atomic.Uint64 // roots captured by head sampling or remote join
	slowCaptured atomic.Uint64 // traces that met SlowThreshold

	recent ring
	slow   ring
}

// New builds a tracer; see Options for the zero-value defaults.
func New(o Options) *Tracer {
	var every uint64
	if o.SampleRate > 0 {
		if o.SampleRate >= 1 {
			every = 1
		} else {
			every = uint64(1/o.SampleRate + 0.5)
			if every == 0 {
				every = 1
			}
		}
	}
	capacity := o.Capacity
	if capacity <= 0 {
		capacity = 64
	}
	t := &Tracer{every: every, slowNS: o.SlowThreshold.Nanoseconds()}
	t.recent.init(capacity)
	t.slow.init(capacity)
	// Seed the id sequence from the only clock read the tracer ever takes
	// on its own, so two processes started back to back do not collide.
	t.ids.Store(uint64(time.Now().UnixNano()))
	return t
}

// Enabled reports whether this tracer can ever capture anything.
func (t *Tracer) Enabled() bool {
	return t != nil && (t.every > 0 || t.slowNS > 0)
}

// Slow reports whether d meets the always-capture threshold. The check is
// two loads and a comparison, cheap enough for unsampled hot paths.
func (t *Tracer) Slow(d time.Duration) bool {
	return t != nil && t.slowNS > 0 && d.Nanoseconds() >= t.slowNS
}

// Counts returns the lifetime capture counters — roots captured by head
// sampling (or remote join) and traces retained for meeting
// SlowThreshold — without the ring copies Snapshot performs, so gauges
// can poll it.
func (t *Tracer) Counts() (sampled, slowCaptured uint64) {
	if t == nil {
		return 0, 0
	}
	return t.sampled.Load(), t.slowCaptured.Load()
}

// sampleHead takes the head-sampling decision: one atomic add, no clocks,
// no allocation.
func (t *Tracer) sampleHead() bool {
	if t == nil || t.every == 0 {
		return false
	}
	return t.seq.Add(1)%t.every == 0
}

// nextID returns a well-mixed non-zero id.
func (t *Tracer) nextID() uint64 {
	for {
		if id := splitmix64(t.ids.Add(1)); id != 0 {
			return id
		}
	}
}

// splitmix64 is Sebastiano Vigna's public-domain mixer: a bijection on
// uint64, so sequential inputs yield distinct well-spread ids.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Remote is trace context received from a peer (the wire protocol's
// "trace" request field). A non-zero Trace means the peer sampled the
// request; the local tracer then joins the trace regardless of its own
// head-sampling decision, so a distributed request is captured whole.
type Remote struct {
	Trace TraceID
	Span  SpanID
}

// OK reports whether r carries usable context.
func (r Remote) OK() bool { return r.Trace != 0 }

// RootAt begins a trace rooted at start if this root is head-sampled or
// remote carries sampled context; otherwise it returns nil (and every
// Span method on nil is a no-op). Pass the timestamp your surrounding
// instrumentation already read — RootAt never touches the clock.
func (t *Tracer) RootAt(name string, start time.Time, remote Remote) *Span {
	if t == nil || (!remote.OK() && !t.sampleHead()) {
		return nil
	}
	return t.startRoot(name, start.UnixNano(), remote)
}

// Root is RootAt with the clock read taken only after the sampling
// decision, for callers with no timestamp of their own in hand.
func (t *Tracer) Root(name string, remote Remote) *Span {
	if t == nil || (!remote.OK() && !t.sampleHead()) {
		return nil
	}
	return t.startRoot(name, time.Now().UnixNano(), remote)
}

// startRoot builds a sampled root; the capture decision is already taken.
func (t *Tracer) startRoot(name string, startNano int64, remote Remote) *Span {
	t.sampled.Add(1)
	r := &record{tr: t, remoteParent: remote.Span}
	if remote.OK() {
		r.trace = remote.Trace
	} else {
		r.trace = TraceID(t.nextID())
	}
	s := &Span{rec: r, id: SpanID(t.nextID()), parent: remote.Span, name: name, start: startNano}
	r.root = s
	r.spans = append(r.spans, s)
	return s
}

// CaptureSlow records a synthetic root-only trace for a request that was
// not head-sampled but turned out slow: it costs nothing unless the
// duration meets SlowThreshold. It returns the assigned trace id (for
// histogram exemplars), or 0 when nothing was captured.
func (t *Tracer) CaptureSlow(name string, start, end time.Time, attrs ...Attr) TraceID {
	d := end.Sub(start)
	if !t.Slow(d) {
		return 0
	}
	r := &record{tr: t, trace: TraceID(t.nextID()), synthetic: true}
	s := &Span{rec: r, id: SpanID(t.nextID()), name: name, start: start.UnixNano(), end: end.UnixNano(), attrs: attrs}
	r.root = s
	r.spans = append(r.spans, s)
	t.push(r, d)
	return r.trace
}

// push files a completed trace into the rings.
func (t *Tracer) push(r *record, d time.Duration) {
	if t.slowNS > 0 && d.Nanoseconds() >= t.slowNS {
		r.slow = true
		t.slowCaptured.Add(1)
		t.slow.push(r)
	}
	t.recent.push(r)
}

// record accumulates one trace's spans until the root ends. Workers
// creating child spans concurrently serialize on mu; a completed record
// in a ring is read under the same mutex by Snapshot.
type record struct {
	tr           *Tracer
	trace        TraceID
	remoteParent SpanID
	synthetic    bool
	slow         bool

	mu    sync.Mutex
	spans []*Span
	root  *Span
}

// Span is one timed operation inside a trace. The zero of *Span (nil) is
// the not-sampled case: every method is a no-op returning zero values, so
// instrumented code is written once, without sampling branches.
type Span struct {
	rec    *record
	id     SpanID
	parent SpanID
	name   string
	start  int64 // UnixNano
	end    int64 // UnixNano; 0 while open
	attrs  []Attr
}

// Trace returns the owning trace id (0 on nil).
func (s *Span) Trace() TraceID {
	if s == nil {
		return 0
	}
	return s.rec.trace
}

// ID returns the span id (0 on nil).
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// ChildAt starts a child span at the given timestamp. Safe to call from
// multiple goroutines sharing a parent (PublishBatch workers do).
func (s *Span) ChildAt(name string, start time.Time) *Span {
	if s == nil {
		return nil
	}
	r := s.rec
	c := &Span{rec: r, id: SpanID(r.tr.nextID()), parent: s.id, name: name, start: start.UnixNano()}
	r.mu.Lock()
	r.spans = append(r.spans, c)
	r.mu.Unlock()
	return c
}

// Child is ChildAt(name, time.Now()), reading the clock only when the
// span is live.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.ChildAt(name, time.Now())
}

// EndAt closes the span at the given timestamp. Ending the root files the
// whole trace into the tracer's rings; children must be ended first.
func (s *Span) EndAt(t time.Time) {
	if s == nil {
		return
	}
	s.end = t.UnixNano()
	if s.rec.root == s {
		s.rec.tr.push(s.rec, time.Duration(s.end-s.start))
	}
}

// End is EndAt(time.Now()), reading the clock only when the span is live.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.EndAt(time.Now())
}

// SetString attaches a string attribute. Attributes must be set by the
// goroutine that owns the span, before its trace's root ends.
func (s *Span) SetString(key, v string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, String(key, v))
}

// SetInt attaches an integer attribute.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Int(key, v))
}

// SetFloat attaches a float attribute.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Float(key, v))
}

// SetBool attaches a boolean attribute.
func (s *Span) SetBool(key string, v bool) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Bool(key, v))
}

// ring is a fixed-size overwrite-oldest buffer of completed traces.
type ring struct {
	mu  sync.Mutex
	buf []*record
	pos int    // next slot to overwrite
	n   uint64 // total pushes ever
}

func (r *ring) init(capacity int) { r.buf = make([]*record, 0, capacity) }

func (r *ring) push(rec *record) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, rec)
	} else {
		r.buf[r.pos] = rec
		r.pos = (r.pos + 1) % len(r.buf)
	}
	r.n++
	r.mu.Unlock()
}

// records returns the ring's contents, newest first.
func (r *ring) records() []*record {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.buf)
	out := make([]*record, 0, n)
	// Before the ring fills, the newest is at n-1 and pos stays 0; once
	// full, pos is the oldest slot, so the newest sits just behind it.
	newest := n - 1
	if n == cap(r.buf) && n > 0 {
		newest = (r.pos - 1 + n) % n
	}
	for i := 0; i < n; i++ {
		out = append(out, r.buf[(newest-i+n)%n])
	}
	return out
}
