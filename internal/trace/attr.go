package trace

import (
	"encoding/json"
	"strconv"
)

// attrKind discriminates the typed attribute payload.
type attrKind uint8

const (
	kindString attrKind = iota
	kindInt
	kindFloat
	kindBool
)

// Attr is one typed key/value pair attached to a span. The value lives in
// the field matching its kind, so attaching an int or float allocates
// nothing beyond the span's attrs slice growth.
type Attr struct {
	Key  string
	kind attrKind
	str  string
	i64  int64
	f64  float64
}

// String builds a string attribute.
func String(key, v string) Attr { return Attr{Key: key, kind: kindString, str: v} }

// Int builds an integer attribute.
func Int(key string, v int64) Attr { return Attr{Key: key, kind: kindInt, i64: v} }

// Float builds a float attribute.
func Float(key string, v float64) Attr { return Attr{Key: key, kind: kindFloat, f64: v} }

// Bool builds a boolean attribute.
func Bool(key string, v bool) Attr {
	a := Attr{Key: key, kind: kindBool}
	if v {
		a.i64 = 1
	}
	return a
}

// Value returns the attribute's payload as an interface value.
func (a Attr) Value() any {
	switch a.kind {
	case kindInt:
		return a.i64
	case kindFloat:
		return a.f64
	case kindBool:
		return a.i64 != 0
	default:
		return a.str
	}
}

// MarshalJSON renders the attribute as {"key": ..., "value": ...} with the
// value in its native JSON type.
func (a Attr) MarshalJSON() ([]byte, error) {
	buf := append(make([]byte, 0, 32), `{"key":`...)
	buf = strconv.AppendQuote(buf, a.Key)
	buf = append(buf, `,"value":`...)
	switch a.kind {
	case kindInt:
		buf = strconv.AppendInt(buf, a.i64, 10)
	case kindFloat:
		v, err := json.Marshal(a.f64) // handles NaN/Inf rejection uniformly
		if err != nil {
			buf = append(buf, `null`...)
		} else {
			buf = append(buf, v...)
		}
	case kindBool:
		buf = strconv.AppendBool(buf, a.i64 != 0)
	default:
		buf = strconv.AppendQuote(buf, a.str)
	}
	return append(buf, '}'), nil
}

// UnmarshalJSON parses the {"key": ..., "value": ...} form back, so
// /tracez consumers (mmclient trace) can decode spans into this struct.
// Numbers decode as int when integral, float otherwise.
func (a *Attr) UnmarshalJSON(b []byte) error {
	var raw struct {
		Key   string `json:"key"`
		Value any    `json:"value"`
	}
	if err := json.Unmarshal(b, &raw); err != nil {
		return err
	}
	switch v := raw.Value.(type) {
	case bool:
		*a = Bool(raw.Key, v)
	case float64:
		if v == float64(int64(v)) {
			*a = Int(raw.Key, int64(v))
		} else {
			*a = Float(raw.Key, v)
		}
	case string:
		*a = String(raw.Key, v)
	case nil:
		*a = Float(raw.Key, 0) // a NaN/Inf float marshalled as null
	default:
		*a = String(raw.Key, string(b))
	}
	return nil
}
