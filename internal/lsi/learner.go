package lsi

import (
	"math"

	"mmprofile/internal/core"
	"mmprofile/internal/filter"
	"mmprofile/internal/vsm"
)

// denseCluster is one profile vector in LSI space.
type denseCluster struct {
	vec      []float64
	strength float64
}

// MM is the Multi-Modal algorithm operating in a fitted LSI space — the
// generalization the paper sketches in Section 6. The update rules are
// exactly core.Profile's (incorporate / create / merge / strength-decay
// delete), on dense unit vectors instead of sparse term vectors. It
// implements filter.Learner; incoming keyword vectors are folded in via
// the model.
type MM struct {
	model    *Model
	opts     core.Options
	clusters []*denseCluster
}

// NewMM builds an LSI-space MM learner with the given (paper) options;
// MaxTerms is ignored — dense vectors have fixed dimension k.
func NewMM(model *Model, opts core.Options) *MM {
	if err := opts.Validate(); err != nil {
		panic(err)
	}
	return &MM{model: model, opts: opts}
}

// Name implements filter.Learner.
func (m *MM) Name() string {
	if m.opts.DisableDecay {
		return "LSI-MMND"
	}
	return "LSI-MM"
}

// ProfileSize implements filter.Learner.
func (m *MM) ProfileSize() int { return len(m.clusters) }

// Reset implements filter.Learner.
func (m *MM) Reset() { m.clusters = nil }

// Score implements filter.Learner: max cosine over clusters in LSI space.
func (m *MM) Score(v vsm.Vector) float64 {
	return m.ScoreDense(m.model.Project(v))
}

// ScoreDense scores an already-projected document.
func (m *MM) ScoreDense(x []float64) float64 {
	best := 0.0
	for _, c := range m.clusters {
		if s := CosineDense(c.vec, x); s > best {
			best = s
		}
	}
	return best
}

// Observe implements filter.Learner.
func (m *MM) Observe(v vsm.Vector, fd filter.Feedback) {
	m.ObserveDense(m.model.Project(v), fd)
}

// ObserveDense applies one judgment for an already-projected document.
func (m *MM) ObserveDense(x []float64, fd filter.Feedback) {
	if isZero(x) {
		return
	}
	actIdx := -1
	best := math.Inf(-1)
	for i, c := range m.clusters {
		if s := CosineDense(c.vec, x); s > best {
			best, actIdx = s, i
		}
	}
	if actIdx < 0 {
		if fd == filter.Relevant {
			m.create(x)
		}
		return
	}
	if best < m.opts.Theta {
		if fd != filter.Relevant {
			return
		}
		if m.opts.MaxVectors > 0 && len(m.clusters) >= m.opts.MaxVectors {
			m.incorporate(actIdx, x, fd, best)
			return
		}
		m.create(x)
		return
	}
	m.incorporate(actIdx, x, fd, best)
}

func (m *MM) create(x []float64) {
	vec := append([]float64(nil), x...)
	m.clusters = append(m.clusters, &denseCluster{vec: vec, strength: m.opts.InitialStrength})
}

func (m *MM) incorporate(actIdx int, x []float64, fd filter.Feedback, sim float64) {
	act := m.clusters[actIdx]
	eta := m.opts.Eta
	for i := range act.vec {
		act.vec[i] = (1-eta)*act.vec[i] + eta*float64(fd)*x[i]
	}
	n := math.Sqrt(dot(act.vec, act.vec))
	if n < 1e-12 {
		m.remove(actIdx)
		return
	}
	scale(1/n, act.vec)

	if !m.opts.DisableDecay {
		act.strength *= math.Exp(m.opts.DecayC * float64(fd) * sim)
		if act.strength < m.opts.DeleteThreshold {
			m.remove(actIdx)
			return
		}
	}

	if len(m.clusters) < 2 {
		return
	}
	cIdx, best := -1, math.Inf(-1)
	for i, c := range m.clusters {
		if i == actIdx {
			continue
		}
		if s := CosineDense(c.vec, act.vec); s > best {
			best, cIdx = s, i
		}
	}
	if cIdx < 0 || best < m.opts.Theta {
		return
	}
	c := m.clusters[cIdx]
	r := c.strength / (act.strength + c.strength)
	for i := range act.vec {
		act.vec[i] = (1-r)*act.vec[i] + r*c.vec[i]
	}
	if n := math.Sqrt(dot(act.vec, act.vec)); n > 1e-12 {
		scale(1/n, act.vec)
	}
	act.strength += c.strength
	m.remove(cIdx)
}

func (m *MM) remove(i int) {
	m.clusters = append(m.clusters[:i], m.clusters[i+1:]...)
}

// NRN is the Foltz–Dumais learner in its original habitat: every relevant
// document becomes a profile vector in the LSI space. Implements
// filter.Learner.
type NRN struct {
	model   *Model
	vectors [][]float64
}

// NewNRN builds an LSI-space NRN learner.
func NewNRN(model *Model) *NRN { return &NRN{model: model} }

// Name implements filter.Learner.
func (n *NRN) Name() string { return "LSI-NRN" }

// Observe implements filter.Learner.
func (n *NRN) Observe(v vsm.Vector, fd filter.Feedback) {
	if fd != filter.Relevant {
		return
	}
	x := n.model.Project(v)
	if isZero(x) {
		return
	}
	n.vectors = append(n.vectors, x)
}

// Score implements filter.Learner.
func (n *NRN) Score(v vsm.Vector) float64 {
	x := n.model.Project(v)
	best := 0.0
	for _, p := range n.vectors {
		if s := CosineDense(p, x); s > best {
			best = s
		}
	}
	return best
}

// ProfileSize implements filter.Learner.
func (n *NRN) ProfileSize() int { return len(n.vectors) }

// Reset implements filter.Learner.
func (n *NRN) Reset() { n.vectors = nil }
