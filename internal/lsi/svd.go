// Package lsi implements Latent Semantic Indexing, the generalization the
// paper points to in Section 6 (after Foltz & Dumais): documents and
// profiles live in a reduced k-dimensional space derived from a truncated
// SVD of the term-document matrix, where similarity captures co-occurrence
// structure ("latent semantics") rather than exact term overlap.
//
// The package contains the numerical substrate — a sparse term-document
// matrix and a truncated SVD computed by blocked subspace iteration with a
// Rayleigh–Ritz projection and Jacobi eigendecomposition — plus dense-space
// ports of the MM and NRN learners and a filter.Learner adapter.
package lsi

import (
	"fmt"
	"math"
	"math/rand"
)

// sparseMatrix is a term(row) × document(column) matrix in compressed
// column form.
type sparseMatrix struct {
	rows   int
	cols   int
	colIdx [][]int32
	colVal [][]float64
}

// mulVec computes y = A·x where x has len cols and y len rows.
func (a *sparseMatrix) mulVec(x []float64, y []float64) {
	for i := range y {
		y[i] = 0
	}
	for j := 0; j < a.cols; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		idx := a.colIdx[j]
		val := a.colVal[j]
		for p, i := range idx {
			y[i] += val[p] * xj
		}
	}
}

// mulTVec computes x = Aᵀ·y where y has len rows and x len cols.
func (a *sparseMatrix) mulTVec(y []float64, x []float64) {
	for j := 0; j < a.cols; j++ {
		idx := a.colIdx[j]
		val := a.colVal[j]
		var s float64
		for p, i := range idx {
			s += val[p] * y[i]
		}
		x[j] = s
	}
}

// svdResult holds the truncated decomposition A ≈ U·diag(σ)·Vᵀ.
type svdResult struct {
	k     int
	sigma []float64   // descending
	u     [][]float64 // k columns, each of len rows (terms)
	v     [][]float64 // k columns, each of len cols (docs)
}

// truncatedSVD computes the k leading singular triplets of A using
// subspace iteration on AᵀA: starting from a random n×k block Q, repeat
// Q ← orth(Aᵀ(A·Q)), then solve the small Rayleigh–Ritz eigenproblem to
// extract Ritz pairs. iters ≈ 15 is ample for the spectra of text
// matrices; the seed makes the decomposition deterministic.
func truncatedSVD(a *sparseMatrix, k, iters int, seed int64) (*svdResult, error) {
	if k <= 0 || k > a.cols || k > a.rows {
		return nil, fmt.Errorf("lsi: rank %d out of range for %d×%d matrix", k, a.rows, a.cols)
	}
	rng := rand.New(rand.NewSource(seed))
	n := a.cols

	// Random start block, orthonormalized.
	q := make([][]float64, k)
	for j := range q {
		col := make([]float64, n)
		for i := range col {
			col[i] = rng.NormFloat64()
		}
		q[j] = col
	}
	if !orthonormalize(q, rng) {
		return nil, fmt.Errorf("lsi: could not build an orthonormal start block")
	}

	tmpM := make([]float64, a.rows)
	for it := 0; it < iters; it++ {
		for j := range q {
			a.mulVec(q[j], tmpM)
			a.mulTVec(tmpM, q[j])
		}
		if !orthonormalize(q, rng) {
			return nil, fmt.Errorf("lsi: subspace collapsed at iteration %d (rank deficient?)", it)
		}
	}

	// Rayleigh–Ritz: T = (AQ)ᵀ(AQ), a k×k symmetric matrix.
	aq := make([][]float64, k)
	for j := range q {
		aq[j] = make([]float64, a.rows)
		a.mulVec(q[j], aq[j])
	}
	t := make([][]float64, k)
	for i := range t {
		t[i] = make([]float64, k)
		for j := 0; j <= i; j++ {
			s := dot(aq[i], aq[j])
			t[i][j] = s
			t[j][i] = s
		}
	}
	eigVals, eigVecs := jacobiEigen(t)

	// Sort descending by eigenvalue (= σ²).
	order := make([]int, k)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if eigVals[order[j]] > eigVals[order[i]] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}

	res := &svdResult{k: k, sigma: make([]float64, k)}
	res.v = make([][]float64, k)
	res.u = make([][]float64, k)
	for r, oi := range order {
		lam := eigVals[oi]
		if lam < 0 {
			lam = 0
		}
		res.sigma[r] = math.Sqrt(lam)
		// v_r = Q · w_oi
		vcol := make([]float64, n)
		for i := 0; i < k; i++ {
			w := eigVecs[i][oi]
			if w == 0 {
				continue
			}
			axpy(w, q[i], vcol)
		}
		res.v[r] = vcol
		// u_r = A·v_r / σ_r
		ucol := make([]float64, a.rows)
		a.mulVec(vcol, ucol)
		if res.sigma[r] > 1e-12 {
			scale(1/res.sigma[r], ucol)
		}
		res.u[r] = ucol
	}
	return res, nil
}

// orthonormalize runs modified Gram–Schmidt over the columns in place,
// re-randomizing (rare) numerically-collapsed columns. Returns false if it
// cannot produce a full-rank block.
func orthonormalize(cols [][]float64, rng *rand.Rand) bool {
	for j := range cols {
		for attempt := 0; ; attempt++ {
			for i := 0; i < j; i++ {
				axpy(-dot(cols[i], cols[j]), cols[i], cols[j])
			}
			n := math.Sqrt(dot(cols[j], cols[j]))
			if n > 1e-12 {
				scale(1/n, cols[j])
				break
			}
			if attempt >= 3 {
				return false
			}
			for i := range cols[j] {
				cols[j][i] = rng.NormFloat64()
			}
		}
	}
	return true
}

// jacobiEigen diagonalizes a symmetric matrix with the cyclic Jacobi
// method, returning eigenvalues and the matrix of eigenvectors (columns).
// The input is consumed.
func jacobiEigen(a [][]float64) ([]float64, [][]float64) {
	n := len(a)
	v := make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, n)
		v[i][i] = 1
	}
	for sweep := 0; sweep < 64; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += a[i][j] * a[i][j]
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				if math.Abs(a[p][q]) < 1e-300 {
					continue
				}
				theta := (a[q][q] - a[p][p]) / (2 * a[p][q])
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				rotate(a, v, p, q, c, s)
			}
		}
	}
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = a[i][i]
	}
	return vals, v
}

// rotate applies the Jacobi rotation J(p,q,θ) to a (two-sided) and v
// (one-sided).
func rotate(a, v [][]float64, p, q int, c, s float64) {
	n := len(a)
	for i := 0; i < n; i++ {
		aip, aiq := a[i][p], a[i][q]
		a[i][p] = c*aip - s*aiq
		a[i][q] = s*aip + c*aiq
	}
	for j := 0; j < n; j++ {
		apj, aqj := a[p][j], a[q][j]
		a[p][j] = c*apj - s*aqj
		a[q][j] = s*apj + c*aqj
	}
	for i := 0; i < n; i++ {
		vip, viq := v[i][p], v[i][q]
		v[i][p] = c*vip - s*viq
		v[i][q] = s*vip + c*viq
	}
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func axpy(alpha float64, x, y []float64) {
	for i := range x {
		y[i] += alpha * x[i]
	}
}

func scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}
