package lsi

import (
	"fmt"
	"math"

	"mmprofile/internal/vsm"
)

// Model is a fitted LSI space: the rank-k term basis derived from a
// training collection, used to fold arbitrary keyword vectors into dense
// k-dimensional vectors.
type Model struct {
	k       int
	termIdx map[string]int
	// basis[t][j] = U[t][j] / σ[j], so projection is a single sparse-dense
	// product (folding-in: x = vᵀ·U·Σ⁻¹).
	basis [][]float64
}

// Fit derives a rank-k LSI space from the documents' (already weighted,
// normalized) keyword vectors. Deterministic for a given seed.
func Fit(docs []vsm.Vector, k int, seed int64) (*Model, error) {
	if len(docs) == 0 {
		return nil, fmt.Errorf("lsi: no documents")
	}
	termIdx := make(map[string]int)
	for _, d := range docs {
		for _, t := range d.Terms {
			if _, ok := termIdx[t]; !ok {
				termIdx[t] = len(termIdx)
			}
		}
	}
	a := &sparseMatrix{
		rows:   len(termIdx),
		cols:   len(docs),
		colIdx: make([][]int32, len(docs)),
		colVal: make([][]float64, len(docs)),
	}
	for j, d := range docs {
		idx := make([]int32, len(d.Terms))
		for p, t := range d.Terms {
			idx[p] = int32(termIdx[t])
		}
		a.colIdx[j] = idx
		a.colVal[j] = d.Weights
	}
	res, err := truncatedSVD(a, k, 15, seed)
	if err != nil {
		return nil, err
	}

	basis := make([][]float64, a.rows)
	for t := 0; t < a.rows; t++ {
		row := make([]float64, k)
		for j := 0; j < k; j++ {
			if res.sigma[j] > 1e-12 {
				row[j] = res.u[j][t] / res.sigma[j]
			}
		}
		basis[t] = row
	}
	return &Model{k: k, termIdx: termIdx, basis: basis}, nil
}

// Rank returns the dimensionality of the space.
func (m *Model) Rank() int { return m.k }

// Vocabulary returns the number of terms the model knows.
func (m *Model) Vocabulary() int { return len(m.termIdx) }

// Project folds a keyword vector into the LSI space and normalizes it to
// unit length (all scoring is cosine). Terms unseen at fit time are
// ignored; a vector with no known terms projects to the zero vector.
func (m *Model) Project(v vsm.Vector) []float64 {
	x := make([]float64, m.k)
	for i, t := range v.Terms {
		ti, ok := m.termIdx[t]
		if !ok {
			continue
		}
		axpy(v.Weights[i], m.basis[ti], x)
	}
	n := math.Sqrt(dot(x, x))
	if n > 0 {
		scale(1/n, x)
	}
	return x
}

// CosineDense is cosine similarity for (unit or general) dense vectors.
func CosineDense(a, b []float64) float64 {
	na, nb := math.Sqrt(dot(a, a)), math.Sqrt(dot(b, b))
	if na == 0 || nb == 0 {
		return 0
	}
	return dot(a, b) / (na * nb)
}

func isZero(x []float64) bool {
	for _, v := range x {
		if v != 0 {
			return false
		}
	}
	return true
}
