package lsi

import (
	"math"
	"math/rand"
	"testing"

	"mmprofile/internal/core"
	"mmprofile/internal/corpus"
	"mmprofile/internal/eval"
	"mmprofile/internal/filter"
	"mmprofile/internal/sim"
	"mmprofile/internal/text"
	"mmprofile/internal/vsm"
)

func vec(pairs ...any) vsm.Vector {
	m := map[string]float64{}
	for i := 0; i < len(pairs); i += 2 {
		m[pairs[i].(string)] = pairs[i+1].(float64)
	}
	return vsm.FromMap(m).Normalized()
}

// toyDocs builds two topic groups with co-occurring vocabulary: {cat,dog,
// pet} documents and {stock,bond,market} documents.
func toyDocs() []vsm.Vector {
	return []vsm.Vector{
		vec("cat", 1.0, "dog", 0.8, "pet", 0.6),
		vec("cat", 0.9, "pet", 0.7),
		vec("dog", 1.0, "pet", 0.9),
		vec("stock", 1.0, "bond", 0.8, "market", 0.6),
		vec("stock", 0.9, "market", 0.7),
		vec("bond", 1.0, "market", 0.9),
	}
}

func TestFitAndProject(t *testing.T) {
	model, err := Fit(toyDocs(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if model.Rank() != 2 || model.Vocabulary() != 6 {
		t.Fatalf("rank %d vocab %d", model.Rank(), model.Vocabulary())
	}
	// Projections are unit length.
	x := model.Project(vec("cat", 1.0))
	if math.Abs(math.Sqrt(dot(x, x))-1) > 1e-9 {
		t.Errorf("projection not normalized: %v", x)
	}
	// Latent semantics: "cat" and "dog" never co-occur with the finance
	// terms, so their projections must be far more similar to each other
	// than to "stock".
	catDog := CosineDense(model.Project(vec("cat", 1.0)), model.Project(vec("dog", 1.0)))
	catStock := CosineDense(model.Project(vec("cat", 1.0)), model.Project(vec("stock", 1.0)))
	if catDog < 0.9 {
		t.Errorf("co-occurring terms not close in LSI space: %v", catDog)
	}
	if catStock > 0.5 {
		t.Errorf("unrelated terms too close in LSI space: %v", catStock)
	}
}

func TestProjectUnknownTerms(t *testing.T) {
	model, err := Fit(toyDocs(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !isZero(model.Project(vec("zebra", 1.0))) {
		t.Error("unknown term projected to non-zero")
	}
	if !isZero(model.Project(vsm.Vector{})) {
		t.Error("empty vector projected to non-zero")
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, 2, 1); err == nil {
		t.Error("empty corpus accepted")
	}
	if _, err := Fit(toyDocs(), 100, 1); err == nil {
		t.Error("rank above dimensions accepted")
	}
}

func TestFitDeterministic(t *testing.T) {
	a, err := Fit(toyDocs(), 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(toyDocs(), 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	probe := vec("cat", 1.0, "market", 0.5)
	xa, xb := a.Project(probe), b.Project(probe)
	for i := range xa {
		if xa[i] != xb[i] {
			t.Fatal("same seed, different projection")
		}
	}
}

func TestLSIMMLearnsToyTopics(t *testing.T) {
	model, err := Fit(toyDocs(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	mm := NewMM(model, opts)
	mm.Observe(vec("cat", 1.0, "pet", 0.5), filter.Relevant)
	mm.Observe(vec("stock", 1.0, "bond", 0.5), filter.NotRelevant)
	pet := mm.Score(vec("dog", 1.0)) // never seen, but same latent topic
	fin := mm.Score(vec("market", 1.0))
	if pet <= fin {
		t.Errorf("LSI-MM did not generalize: pet=%v fin=%v", pet, fin)
	}
	if mm.Name() != "LSI-MM" {
		t.Errorf("Name = %s", mm.Name())
	}
	mm.Reset()
	if mm.ProfileSize() != 0 {
		t.Error("Reset incomplete")
	}
}

func TestLSIMMClusterDynamics(t *testing.T) {
	model, err := Fit(toyDocs(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.DefaultOptions()
	opts.Theta = 0.5
	mm := NewMM(model, opts)
	mm.Observe(vec("cat", 1.0), filter.Relevant)
	mm.Observe(vec("stock", 1.0), filter.Relevant)
	if mm.ProfileSize() != 2 {
		t.Fatalf("distinct topics did not form two clusters: %d", mm.ProfileSize())
	}
	// Sustained negatives on the finance topic must delete its cluster.
	for i := 0; i < 10 && mm.ProfileSize() > 1; i++ {
		mm.Observe(vec("stock", 1.0, "bond", 0.8), filter.NotRelevant)
	}
	if mm.ProfileSize() != 1 {
		t.Errorf("decay did not delete the rejected topic: %d clusters", mm.ProfileSize())
	}
	if mm.Score(vec("cat", 1.0)) < 0.5 {
		t.Error("surviving cluster lost its topic")
	}
}

func TestLSINRN(t *testing.T) {
	model, err := Fit(toyDocs(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	n := NewNRN(model)
	n.Observe(vec("cat", 1.0), filter.Relevant)
	n.Observe(vec("stock", 1.0), filter.NotRelevant) // ignored
	if n.ProfileSize() != 1 {
		t.Fatalf("size = %d", n.ProfileSize())
	}
	if n.Score(vec("dog", 1.0)) <= n.Score(vec("bond", 1.0)) {
		t.Error("LSI-NRN did not generalize")
	}
	n.Reset()
	if n.ProfileSize() != 0 {
		t.Error("Reset incomplete")
	}
}

// TestLSIOnSyntheticCorpus is the integration test: fit the LSI space on
// the training split of a small synthetic collection and verify that
// LSI-MM filters effectively (and that the evaluation protocol accepts the
// learner).
func TestLSIOnSyntheticCorpus(t *testing.T) {
	cfg := corpus.DefaultConfig()
	cfg.TopCategories = 4
	cfg.SubPerTop = 3
	cfg.PagesPerSub = 6
	cfg.MinWords = 80
	cfg.MaxWords = 150
	ds := corpus.Generate(cfg).Vectorize(text.NewPipeline())
	train, test := ds.Split(3, 50)

	trainVecs := make([]vsm.Vector, len(train))
	for i, d := range train {
		trainVecs[i] = d.Vec
	}
	model, err := Fit(trainVecs, 24, 1)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	u := sim.NewUser(sim.RandomTopInterests(rng, ds, 1)...)
	stream := sim.Stream(rng, train, len(train))
	res := eval.Run(NewMM(model, core.DefaultOptions()), u, stream, test)
	if res.NIAP <= 0.35 {
		t.Errorf("LSI-MM niap = %.3f, expected real filtering", res.NIAP)
	}
}
