package lsi

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

const modelCodecVersion = 1

// MarshalBinary implements encoding.BinaryMarshaler: the fitted basis (one
// k-row per vocabulary term), so an LSI space trained once can be deployed
// without refitting the SVD. Terms are written in sorted order for
// deterministic output.
func (m *Model) MarshalBinary() ([]byte, error) {
	terms := make([]string, 0, len(m.termIdx))
	for t := range m.termIdx {
		terms = append(terms, t)
	}
	sort.Strings(terms)

	buf := []byte{modelCodecVersion}
	buf = binary.AppendUvarint(buf, uint64(m.k))
	buf = binary.AppendUvarint(buf, uint64(len(terms)))
	for _, t := range terms {
		buf = binary.AppendUvarint(buf, uint64(len(t)))
		buf = append(buf, t...)
		row := m.basis[m.termIdx[t]]
		for _, w := range row {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(w))
		}
	}
	return buf, nil
}

// UnmarshalBinary implements encoding.BinaryUnmarshaler.
func (m *Model) UnmarshalBinary(data []byte) error {
	if len(data) < 1 || data[0] != modelCodecVersion {
		return fmt.Errorf("lsi: bad model version")
	}
	buf := data[1:]
	readU := func() (uint64, error) {
		v, n := binary.Uvarint(buf)
		if n <= 0 {
			return 0, fmt.Errorf("lsi: truncated model")
		}
		buf = buf[n:]
		return v, nil
	}
	k64, err := readU()
	if err != nil {
		return err
	}
	n64, err := readU()
	if err != nil {
		return err
	}
	if k64 == 0 || k64 > 1<<16 || n64 > 1<<24 {
		return fmt.Errorf("lsi: implausible model dimensions k=%d n=%d", k64, n64)
	}
	k := int(k64)
	termIdx := make(map[string]int, n64)
	basis := make([][]float64, 0, n64)
	for i := uint64(0); i < n64; i++ {
		l, err := readU()
		if err != nil {
			return err
		}
		if uint64(len(buf)) < l+uint64(k)*8 {
			return fmt.Errorf("lsi: truncated model at term %d", i)
		}
		term := string(buf[:l])
		buf = buf[l:]
		if _, dup := termIdx[term]; dup {
			return fmt.Errorf("lsi: duplicate term %q", term)
		}
		row := make([]float64, k)
		for j := 0; j < k; j++ {
			w := math.Float64frombits(binary.LittleEndian.Uint64(buf[:8]))
			buf = buf[8:]
			if math.IsNaN(w) || math.IsInf(w, 0) {
				return fmt.Errorf("lsi: non-finite basis weight")
			}
			row[j] = w
		}
		termIdx[term] = len(basis)
		basis = append(basis, row)
	}
	if len(buf) != 0 {
		return fmt.Errorf("lsi: %d trailing bytes", len(buf))
	}
	m.k = k
	m.termIdx = termIdx
	m.basis = basis
	return nil
}
