package lsi

import (
	"math"
	"testing"

	"mmprofile/internal/vsm"
)

func TestModelCodecRoundTrip(t *testing.T) {
	orig, err := Fit(toyDocs(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored := &Model{}
	if err := restored.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if restored.Rank() != orig.Rank() || restored.Vocabulary() != orig.Vocabulary() {
		t.Fatalf("dimensions: %d/%d vs %d/%d",
			restored.Rank(), restored.Vocabulary(), orig.Rank(), orig.Vocabulary())
	}
	probes := []vsm.Vector{
		vec("cat", 1.0, "dog", 0.4),
		vec("stock", 1.0, "market", 0.6),
		vec("pet", 1.0, "bond", 1.0),
	}
	for i, p := range probes {
		a, b := orig.Project(p), restored.Project(p)
		for j := range a {
			if math.Abs(a[j]-b[j]) > 1e-15 {
				t.Fatalf("probe %d dim %d: %v vs %v", i, j, a[j], b[j])
			}
		}
	}
}

func TestModelCodecDeterministic(t *testing.T) {
	m, err := Fit(toyDocs(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := m.MarshalBinary()
	b, _ := m.MarshalBinary()
	if string(a) != string(b) {
		t.Error("marshal not deterministic")
	}
}

func TestModelCodecRejectsCorruption(t *testing.T) {
	m, err := Fit(toyDocs(), 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	blob, _ := m.MarshalBinary()
	fresh := &Model{}
	if err := fresh.UnmarshalBinary(nil); err == nil {
		t.Error("empty blob accepted")
	}
	if err := fresh.UnmarshalBinary([]byte{42}); err == nil {
		t.Error("bad version accepted")
	}
	for cut := 1; cut < len(blob); cut += 17 {
		if err := fresh.UnmarshalBinary(blob[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	if err := fresh.UnmarshalBinary(append(append([]byte{}, blob...), 1)); err == nil {
		t.Error("trailing bytes accepted")
	}
}
