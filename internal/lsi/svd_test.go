package lsi

import (
	"math"
	"math/rand"
	"testing"
)

// denseToSparse builds the package's sparse form from a dense row-major
// matrix.
func denseToSparse(rows, cols int, m []float64) *sparseMatrix {
	a := &sparseMatrix{rows: rows, cols: cols,
		colIdx: make([][]int32, cols), colVal: make([][]float64, cols)}
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			if v := m[i*cols+j]; v != 0 {
				a.colIdx[j] = append(a.colIdx[j], int32(i))
				a.colVal[j] = append(a.colVal[j], v)
			}
		}
	}
	return a
}

func TestMulVec(t *testing.T) {
	// A = [1 2; 3 4; 5 6]
	a := denseToSparse(3, 2, []float64{1, 2, 3, 4, 5, 6})
	y := make([]float64, 3)
	a.mulVec([]float64{1, 1}, y)
	want := []float64{3, 7, 11}
	for i := range want {
		if math.Abs(y[i]-want[i]) > 1e-12 {
			t.Fatalf("mulVec = %v", y)
		}
	}
	x := make([]float64, 2)
	a.mulTVec([]float64{1, 0, 1}, x)
	if math.Abs(x[0]-6) > 1e-12 || math.Abs(x[1]-8) > 1e-12 {
		t.Fatalf("mulTVec = %v", x)
	}
}

func TestJacobiEigenKnownMatrix(t *testing.T) {
	// Symmetric [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := [][]float64{{2, 1}, {1, 2}}
	vals, vecs := jacobiEigen(a)
	got := []float64{vals[0], vals[1]}
	if got[0] < got[1] {
		got[0], got[1] = got[1], got[0]
	}
	if math.Abs(got[0]-3) > 1e-9 || math.Abs(got[1]-1) > 1e-9 {
		t.Fatalf("eigenvalues = %v", vals)
	}
	// Eigenvector columns are orthonormal.
	for i := 0; i < 2; i++ {
		var n float64
		for r := 0; r < 2; r++ {
			n += vecs[r][i] * vecs[r][i]
		}
		if math.Abs(n-1) > 1e-9 {
			t.Errorf("eigenvector %d not unit: %v", i, n)
		}
	}
}

func TestTruncatedSVDKnownSingularValues(t *testing.T) {
	// A diagonal-ish matrix with known singular values 5, 3, 1.
	a := denseToSparse(4, 3, []float64{
		5, 0, 0,
		0, 3, 0,
		0, 0, 1,
		0, 0, 0,
	})
	res, err := truncatedSVD(a, 3, 30, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 3, 1}
	for i := range want {
		if math.Abs(res.sigma[i]-want[i]) > 1e-6 {
			t.Errorf("σ%d = %v, want %v", i, res.sigma[i], want[i])
		}
	}
}

func TestTruncatedSVDReconstruction(t *testing.T) {
	// Full-rank truncation must reconstruct A: A = U Σ Vᵀ.
	rng := rand.New(rand.NewSource(2))
	rows, cols := 12, 8
	dense := make([]float64, rows*cols)
	for i := range dense {
		if rng.Float64() < 0.5 {
			dense[i] = rng.NormFloat64()
		}
	}
	a := denseToSparse(rows, cols, dense)
	res, err := truncatedSVD(a, cols, 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	var maxErr float64
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			var rec float64
			for r := 0; r < res.k; r++ {
				rec += res.u[r][i] * res.sigma[r] * res.v[r][j]
			}
			if e := math.Abs(rec - dense[i*cols+j]); e > maxErr {
				maxErr = e
			}
		}
	}
	if maxErr > 1e-6 {
		t.Errorf("reconstruction error %v", maxErr)
	}
	// Singular vectors orthonormal.
	for i := 0; i < res.k; i++ {
		for j := i; j < res.k; j++ {
			got := dot(res.v[i], res.v[j])
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(got-want) > 1e-6 {
				t.Errorf("vᵢ·vⱼ(%d,%d) = %v", i, j, got)
			}
		}
	}
}

func TestTruncatedSVDBestLowRank(t *testing.T) {
	// The rank-1 truncation of a matrix dominated by one direction must
	// capture most of its Frobenius norm.
	rng := rand.New(rand.NewSource(4))
	rows, cols := 20, 10
	base := make([]float64, rows)
	for i := range base {
		base[i] = rng.NormFloat64()
	}
	dense := make([]float64, rows*cols)
	for j := 0; j < cols; j++ {
		c := 1 + rng.Float64()
		for i := 0; i < rows; i++ {
			dense[i*cols+j] = c*base[i] + 0.05*rng.NormFloat64()
		}
	}
	a := denseToSparse(rows, cols, dense)
	res, err := truncatedSVD(a, 2, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.sigma[0] < 10*res.sigma[1] {
		t.Errorf("dominant direction not found: σ = %v", res.sigma[:2])
	}
}

func TestTruncatedSVDErrors(t *testing.T) {
	a := denseToSparse(3, 2, []float64{1, 0, 0, 1, 0, 0})
	if _, err := truncatedSVD(a, 0, 10, 1); err == nil {
		t.Error("rank 0 accepted")
	}
	if _, err := truncatedSVD(a, 5, 10, 1); err == nil {
		t.Error("rank > min(m,n) accepted")
	}
}
