package lsi_test

import (
	"fmt"

	"mmprofile/internal/lsi"
	"mmprofile/internal/vsm"
)

func unit(m map[string]float64) vsm.Vector { return vsm.FromMap(m).Normalized() }

// Example fits a 2-dimensional LSI space on two topic groups and shows the
// latent-semantic effect: terms that never co-occur directly ("cat" and
// "dog") still project close together because they share contexts.
func Example() {
	docs := []vsm.Vector{
		unit(map[string]float64{"cat": 1, "pet": 0.8}),
		unit(map[string]float64{"dog": 1, "pet": 0.8}),
		unit(map[string]float64{"stock": 1, "market": 0.8}),
		unit(map[string]float64{"bond": 1, "market": 0.8}),
	}
	model, err := lsi.Fit(docs, 2, 1)
	if err != nil {
		panic(err)
	}
	catDog := lsi.CosineDense(
		model.Project(unit(map[string]float64{"cat": 1})),
		model.Project(unit(map[string]float64{"dog": 1})))
	catStock := lsi.CosineDense(
		model.Project(unit(map[string]float64{"cat": 1})),
		model.Project(unit(map[string]float64{"stock": 1})))
	fmt.Printf("keyword-space sim(cat,dog) = 0.00\n")
	fmt.Printf("latent-space sim(cat,dog) > sim(cat,stock): %v\n", catDog > catStock+0.3)
	// Output:
	// keyword-space sim(cat,dog) = 0.00
	// latent-space sim(cat,dog) > sim(cat,stock): true
}
