// Package docstore holds the broker's short-lived document retention
// window: the paper notes document vectors are "typically only retained
// for a short duration" (Section 4.3), just long enough for subscribers to
// judge what they were sent. The store is a fixed-capacity FIFO — admitting
// document N evicts document N-retention — implemented as a ring of ids
// over a record map.
//
// Concurrency: ids come from one global atomic allocator, so document ids
// remain totally ordered across concurrent publishers, but the ring and
// map are sharded by id with one mutex per shard. Sequential ids
// round-robin across shards, so concurrent Put calls almost always land on
// different shards and never serialize behind a single store-wide lock.
//
// Sharding preserves the exact FIFO retention window: shard count is
// clamped to a power of two that divides the retention capacity, so the
// slot a document overwrites in its shard's ring is occupied by exactly
// the document `retention` ids older.
package docstore

import (
	"sync"
	"sync/atomic"

	"mmprofile/internal/vsm"
)

// Record is one retained document.
type Record struct {
	ID      int64
	Vec     vsm.Vector
	Content string // only when the caller retains raw content
}

// Store is a sharded fixed-capacity document window. Safe for concurrent
// use. The zero value is not usable; call New.
type Store struct {
	retention int
	mask      int64 // len(shards)-1; shard of id is id & mask
	next      atomic.Int64
	shards    []shard
}

type shard struct {
	mu sync.Mutex
	// docs and ring are keyed/filled with docKey(id), never the raw id:
	// the ring's zero value means "empty slot", so keys are offset by one.
	docs map[int64]Record
	ring []int64
	pos  int
}

// docKey maps a document id to its key in a shard's docs map and eviction
// ring. Document ids start at 0, but the ring uses the zero value to mean
// "empty slot", so keys are offset by one: document id d is stored and
// looked up under key d+1, never under d. Every docs access and every ring
// entry must go through this helper — a raw docs[id] lookup would silently
// return the *previous* document. The invariant is pinned by
// TestDocKeyOffsetInvariant.
func docKey(id int64) int64 { return id + 1 }

// New creates a store retaining the most recent `retention` documents
// (min 1), sharded `shards` ways. The shard count is rounded down to the
// largest power of two that divides retention — the clamp that keeps
// per-shard ring eviction identical to a single global FIFO — so callers
// can pass any suggestion (GOMAXPROCS, a flag) without thinking about
// divisibility; shards <= 0 means 1.
func New(retention, shards int) *Store {
	if retention < 1 {
		retention = 1
	}
	n := 1
	for n*2 <= shards {
		n *= 2
	}
	for retention%n != 0 {
		n /= 2
	}
	s := &Store{retention: retention, mask: int64(n - 1), shards: make([]shard, n)}
	per := retention / n
	for i := range s.shards {
		s.shards[i].docs = make(map[int64]Record, per)
		s.shards[i].ring = make([]int64, per)
	}
	return s
}

// Retention returns the store's capacity in documents.
func (s *Store) Retention() int { return s.retention }

// Shards returns the number of independently locked shards.
func (s *Store) Shards() int { return len(s.shards) }

// Put admits a document, assigning it the next id in the global total
// order, and reports whether an older document was evicted to make room.
func (s *Store) Put(vec vsm.Vector, content string) (id int64, evicted bool) {
	id = s.next.Add(1) - 1
	sh := &s.shards[id&s.mask]
	sh.mu.Lock()
	if old := sh.ring[sh.pos]; old != 0 {
		delete(sh.docs, old)
		evicted = true
	}
	sh.ring[sh.pos] = docKey(id)
	sh.pos = (sh.pos + 1) % len(sh.ring)
	sh.docs[docKey(id)] = Record{ID: id, Vec: vec, Content: content}
	sh.mu.Unlock()
	return id, evicted
}

// Get returns the retained record of a document id.
func (s *Store) Get(id int64) (Record, bool) {
	if id < 0 {
		return Record{}, false
	}
	sh := &s.shards[id&s.mask]
	sh.mu.Lock()
	rec, ok := sh.docs[docKey(id)]
	sh.mu.Unlock()
	return rec, ok
}

// Len returns the number of currently retained documents.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.docs)
		sh.mu.Unlock()
	}
	return n
}

// Range calls fn for every retained record, shard by shard (diagnostics
// and tests; order is unspecified). fn must not call back into the store.
func (s *Store) Range(fn func(Record)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for _, rec := range sh.docs {
			fn(rec)
		}
		sh.mu.Unlock()
	}
}
