package docstore

import (
	"fmt"
	"sync"
	"testing"

	"mmprofile/internal/vsm"
)

func v(term string) vsm.Vector {
	return vsm.FromMap(map[string]float64{term: 1}).Normalized()
}

// TestDocKeyOffsetInvariant pins the docs-map/eviction-ring keying: the
// ring's zero value means "empty slot", so document id d lives under key
// d+1. In particular the very first document (id 0) must be retrievable —
// a raw docs[id] lookup would lose it and silently alias every doc to its
// predecessor.
func TestDocKeyOffsetInvariant(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			s := New(4, shards)
			terms := []string{"a", "b", "c", "d", "e", "f"}
			evictions := 0
			for i, term := range terms {
				id, evicted := s.Put(v(term), "")
				if id != int64(i) {
					t.Fatalf("doc id = %d, want %d", id, i)
				}
				if evicted {
					evictions++
				}
			}
			// Retention 4: ids 2..5 retained, ids 0..1 evicted — regardless
			// of the shard count, because shards divide the retention.
			for i, term := range terms {
				rec, ok := s.Get(int64(i))
				if i < 2 {
					if ok {
						t.Errorf("doc %d should have been evicted", i)
					}
					continue
				}
				if !ok {
					t.Fatalf("doc %d not retained", i)
				}
				if rec.Vec.Weight(term) == 0 {
					t.Errorf("doc %d returned the wrong vector: %v", i, rec.Vec)
				}
			}
			if evictions != 2 {
				t.Errorf("evictions = %d, want 2", evictions)
			}
			if s.Len() != 4 {
				t.Errorf("Len = %d, want 4", s.Len())
			}
			// Internal shape: every map key is its record's id offset by
			// one, and key 0 (the ring's empty-slot sentinel) never appears.
			for i := range s.shards {
				sh := &s.shards[i]
				for k, rec := range sh.docs {
					if k != docKey(rec.ID) {
						t.Errorf("docs key %d holds record id %d, want key %d", k, rec.ID, docKey(rec.ID))
					}
				}
				if _, ok := sh.docs[0]; ok {
					t.Error("docs map must never use key 0")
				}
			}
		})
	}
}

// TestShardClamp pins the divisibility clamp: the shard count is the
// largest power of two <= the suggestion that divides retention, so the
// sharded ring evicts exactly like a single global FIFO.
func TestShardClamp(t *testing.T) {
	cases := []struct {
		retention, want, suggest int
	}{
		{4096, 16, 16},
		{4096, 8, 8},
		{3, 1, 16},  // odd retention: only 1 divides
		{6, 2, 16},  // 2 divides, 4 does not
		{100, 4, 8}, // 4 divides 100, 8 does not
		{8, 8, 100}, // suggestion rounds down to pow2 first
		{5, 1, 0},   // non-positive suggestion means 1
	}
	for _, c := range cases {
		s := New(c.retention, c.suggest)
		if s.Shards() != c.want {
			t.Errorf("New(%d, %d).Shards() = %d, want %d",
				c.retention, c.suggest, s.Shards(), c.want)
		}
		if s.Retention() != c.retention {
			t.Errorf("New(%d, %d).Retention() = %d", c.retention, c.suggest, s.Retention())
		}
	}
}

// TestExactFIFOAcrossShards checks the retention window stays exact under
// sharding: after publishing k documents, exactly the last min(k, retention)
// are retrievable.
func TestExactFIFOAcrossShards(t *testing.T) {
	const retention = 12
	for _, shards := range []int{1, 2, 4} {
		s := New(retention, shards)
		const total = 40
		for i := 0; i < total; i++ {
			s.Put(v(fmt.Sprintf("t%d", i)), "")
		}
		for i := 0; i < total; i++ {
			_, ok := s.Get(int64(i))
			if want := i >= total-retention; ok != want {
				t.Errorf("shards=%d: Get(%d) = %v, want %v", shards, i, ok, want)
			}
		}
		if s.Len() != retention {
			t.Errorf("shards=%d: Len = %d, want %d", shards, s.Len(), retention)
		}
	}
}

// TestContentRetention checks raw content rides along with the vector.
func TestContentRetention(t *testing.T) {
	s := New(2, 2)
	id, _ := s.Put(v("a"), "<html>a</html>")
	rec, ok := s.Get(id)
	if !ok || rec.Content != "<html>a</html>" {
		t.Fatalf("Get = %+v, %v", rec, ok)
	}
	if _, ok := s.Get(-1); ok {
		t.Error("negative id resolved")
	}
	if _, ok := s.Get(99); ok {
		t.Error("unpublished id resolved")
	}
}

// TestConcurrentPutGet hammers the store from many goroutines (meaningful
// under -race): ids must stay unique and totally ordered, and the final
// window exact.
func TestConcurrentPutGet(t *testing.T) {
	const (
		writers = 8
		perG    = 100
		ret     = 64
	)
	s := New(ret, 8)
	ids := make([][]int64, writers)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				id, _ := s.Put(v(fmt.Sprintf("g%d-%d", g, i)), "")
				ids[g] = append(ids[g], id)
				s.Get(id - 3)
			}
		}(g)
	}
	wg.Wait()
	seen := make(map[int64]bool, writers*perG)
	for g := range ids {
		last := int64(-1)
		for _, id := range ids[g] {
			if seen[id] {
				t.Fatalf("duplicate id %d", id)
			}
			seen[id] = true
			if id <= last {
				t.Fatalf("ids not monotonic within a publisher: %d after %d", id, last)
			}
			last = id
		}
	}
	if len(seen) != writers*perG {
		t.Fatalf("allocated %d ids, want %d", len(seen), writers*perG)
	}
	if s.Len() != ret {
		t.Errorf("Len = %d, want %d", s.Len(), ret)
	}
	count := 0
	s.Range(func(Record) { count++ })
	if count != ret {
		t.Errorf("Range visited %d records, want %d", count, ret)
	}
}
