package vsm

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentStatsMatchesSerial feeds the same documents to a *Stats and
// a *ConcurrentStats and checks every exposed statistic agrees, including
// through the StatsView interface both satisfy.
func TestConcurrentStatsMatchesSerial(t *testing.T) {
	docs := [][]string{
		{"cat", "dog", "cat"},
		{"stock", "bond", "market", "stock"},
		{"cat", "market"},
		{},
	}
	serial := NewStats()
	conc := NewConcurrentStats()
	for _, d := range docs {
		serial.Add(d)
		conc.Add(d)
	}
	var _ StatsView = serial
	var _ StatsView = conc
	if serial.N() != conc.N() {
		t.Errorf("N: serial %d, concurrent %d", serial.N(), conc.N())
	}
	if serial.AvgLen() != conc.AvgLen() {
		t.Errorf("AvgLen: serial %v, concurrent %v", serial.AvgLen(), conc.AvgLen())
	}
	if serial.VocabularySize() != conc.VocabularySize() {
		t.Errorf("VocabularySize: serial %d, concurrent %d",
			serial.VocabularySize(), conc.VocabularySize())
	}
	for _, term := range []string{"cat", "dog", "stock", "bond", "market", "absent"} {
		if serial.DF(term) != conc.DF(term) {
			t.Errorf("DF(%q): serial %d, concurrent %d", term, serial.DF(term), conc.DF(term))
		}
	}
	snap := conc.Snapshot()
	if snap.N() != serial.N() || snap.DF("cat") != serial.DF("cat") || snap.AvgLen() != serial.AvgLen() {
		t.Errorf("Snapshot disagrees with serial stats: N=%d DF(cat)=%d avg=%v",
			snap.N(), snap.DF("cat"), snap.AvgLen())
	}
}

// TestConcurrentStatsParallelAdds hammers Add/DF/AvgLen from many
// goroutines (meaningful under -race) and checks the final totals.
func TestConcurrentStatsParallelAdds(t *testing.T) {
	s := NewConcurrentStats()
	const (
		writers = 8
		perG    = 200
	)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s.Add([]string{"shared", fmt.Sprintf("term%d-%d", g, i%17)})
				_ = s.DF("shared")
				_ = s.AvgLen()
				_ = s.N()
			}
		}(g)
	}
	wg.Wait()
	if got := s.N(); got != writers*perG {
		t.Errorf("N = %d, want %d", got, writers*perG)
	}
	if got := s.DF("shared"); got != writers*perG {
		t.Errorf("DF(shared) = %d, want %d", got, writers*perG)
	}
	if got, want := s.AvgLen(), 2.0; got != want {
		t.Errorf("AvgLen = %v, want %v", got, want)
	}
	if got, want := s.VocabularySize(), 1+writers*17; got != want {
		t.Errorf("VocabularySize = %d, want %d", got, want)
	}
	// Weighting schemes accept the concurrent implementation directly.
	w := Bel{Stats: s}
	if wt := w.Weight("shared", 1, 2); wt <= 0 {
		t.Errorf("Bel weight over ConcurrentStats = %v, want > 0", wt)
	}
}
