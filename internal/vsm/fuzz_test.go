package vsm

import "testing"

func FuzzDecodeVector(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add(AppendVector(nil, vec("alpha", 1.0, "beta", 0.5)))
	f.Add([]byte{255, 255, 255, 255, 255})
	f.Add(append(AppendVector(nil, vec("a", 1.0)), 0xFF, 0x01))
	f.Fuzz(func(t *testing.T, data []byte) {
		v, rest, err := DecodeVector(data) // must not panic
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatal("rest grew")
		}
		// Anything successfully decoded must satisfy the Vector invariants
		// and re-encode to a decodable form.
		if !v.valid() && v.Len() > 0 {
			// valid() requires strictly positive weights; DecodeVector
			// allows zero/negative finite weights, so only check ordering.
			for i := 1; i < len(v.Terms); i++ {
				if v.Terms[i-1] >= v.Terms[i] {
					t.Fatalf("unsorted decode: %v", v.Terms)
				}
			}
		}
		back, rest2, err := DecodeVector(AppendVector(nil, v))
		if err != nil || len(rest2) != 0 {
			t.Fatalf("re-encode failed: %v", err)
		}
		if back.Len() != v.Len() {
			t.Fatalf("re-encode changed length: %d vs %d", back.Len(), v.Len())
		}
	})
}
