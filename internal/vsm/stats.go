package vsm

// Stats accumulates the collection statistics that weighting schemes need:
// the number of documents N, per-term document frequencies df_t, and the
// average document length. The paper computes these with a prior pass over
// the collection (Section 5.1, footnote 4) but notes that a real filtering
// system must gather them incrementally; Stats supports both uses — call
// Add for every document as it arrives, or over the whole collection up
// front.
type Stats struct {
	n        int
	df       map[string]int
	totalLen int
}

// NewStats returns empty collection statistics.
func NewStats() *Stats {
	return &Stats{df: make(map[string]int)}
}

// Add observes one document given as its (post-pipeline) term list,
// updating N, document frequencies, and the running average length.
func (s *Stats) Add(terms []string) {
	s.n++
	s.totalLen += len(terms)
	seen := make(map[string]bool, len(terms))
	for _, t := range terms {
		if !seen[t] {
			seen[t] = true
			s.df[t]++
		}
	}
}

// N returns the number of documents observed.
func (s *Stats) N() int { return s.n }

// DF returns the document frequency of term t.
func (s *Stats) DF(t string) int { return s.df[t] }

// VocabularySize returns the number of distinct terms observed.
func (s *Stats) VocabularySize() int { return len(s.df) }

// AvgLen returns the average document length in terms; it is 0 before any
// document has been observed.
func (s *Stats) AvgLen() float64 {
	if s.n == 0 {
		return 0
	}
	return float64(s.totalLen) / float64(s.n)
}

// Clone returns an independent copy of the statistics, used to freeze a
// snapshot for evaluation while the live copy keeps accumulating.
func (s *Stats) Clone() *Stats {
	df := make(map[string]int, len(s.df))
	for t, c := range s.df {
		df[t] = c
	}
	return &Stats{n: s.n, df: df, totalLen: s.totalLen}
}
