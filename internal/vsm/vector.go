// Package vsm implements the vector space model of the paper's Section 2.1:
// sparse term-weight vectors, tf·idf and Allan-style bel weighting, cosine
// similarity, length normalization, top-K truncation, and (incrementally
// maintainable) collection statistics.
package vsm

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Vector is a sparse term-weight vector. Terms are kept sorted
// lexicographically with parallel weights, which makes dot products and
// linear combinations linear-time merges. The zero value is the empty
// vector.
type Vector struct {
	Terms   []string
	Weights []float64
}

// FromMap builds a Vector from a term→weight map, dropping non-positive
// weights.
func FromMap(m map[string]float64) Vector {
	terms := make([]string, 0, len(m))
	for t, w := range m {
		if w > 0 {
			terms = append(terms, t)
		}
	}
	sort.Strings(terms)
	weights := make([]float64, len(terms))
	for i, t := range terms {
		weights[i] = m[t]
	}
	return Vector{Terms: terms, Weights: weights}
}

// ToMap returns the vector's entries as a term→weight map.
func (v Vector) ToMap() map[string]float64 {
	m := make(map[string]float64, len(v.Terms))
	for i, t := range v.Terms {
		m[t] = v.Weights[i]
	}
	return m
}

// Len returns the number of non-zero terms.
func (v Vector) Len() int { return len(v.Terms) }

// IsZero reports whether the vector has no terms.
func (v Vector) IsZero() bool { return len(v.Terms) == 0 }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	return Vector{
		Terms:   append([]string(nil), v.Terms...),
		Weights: append([]float64(nil), v.Weights...),
	}
}

// Weight returns the weight of term t, or 0 when absent.
func (v Vector) Weight(t string) float64 {
	i := sort.SearchStrings(v.Terms, t)
	if i < len(v.Terms) && v.Terms[i] == t {
		return v.Weights[i]
	}
	return 0
}

// Norm returns the Euclidean length of v.
func (v Vector) Norm() float64 {
	var s float64
	for _, w := range v.Weights {
		s += w * w
	}
	return math.Sqrt(s)
}

// Normalized returns v scaled to unit length. The zero vector is returned
// unchanged.
func (v Vector) Normalized() Vector {
	n := v.Norm()
	if n == 0 {
		return v
	}
	out := v.Clone()
	for i := range out.Weights {
		out.Weights[i] /= n
	}
	return out
}

// Scaled returns c·v.
func (v Vector) Scaled(c float64) Vector {
	out := v.Clone()
	for i := range out.Weights {
		out.Weights[i] *= c
	}
	return out
}

// Dot returns the inner product of a and b.
func Dot(a, b Vector) float64 {
	var s float64
	i, j := 0, 0
	for i < len(a.Terms) && j < len(b.Terms) {
		switch strings.Compare(a.Terms[i], b.Terms[j]) {
		case 0:
			s += a.Weights[i] * b.Weights[j]
			i++
			j++
		case -1:
			i++
		default:
			j++
		}
	}
	return s
}

// Cosine returns the cosine similarity of a and b in [−1, 1]; it is 0 when
// either vector is zero. With the non-negative weights used throughout the
// paper the result lies in [0, 1].
func Cosine(a, b Vector) float64 {
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// DotUnit returns the cosine similarity of a and b under the precondition
// that both are unit-normalized — which every document and profile vector
// in this system is. It is the dot product alone, skipping the two O(n)
// norm recomputations Cosine pays on every call; the hot paths
// (core.Profile scoring, NRN, the inverted index) use it.
func DotUnit(a, b Vector) float64 {
	return Dot(a, b)
}

// Combine returns ca·a + cb·b. Entries whose combined weight is ≤ 0 are
// dropped: negative weights arise only from negative relevance feedback and
// are clamped per standard Rocchio practice (see DESIGN.md).
func Combine(a Vector, ca float64, b Vector, cb float64) Vector {
	terms := make([]string, 0, len(a.Terms)+len(b.Terms))
	weights := make([]float64, 0, len(a.Terms)+len(b.Terms))
	push := func(t string, w float64) {
		if w > 1e-12 {
			terms = append(terms, t)
			weights = append(weights, w)
		}
	}
	i, j := 0, 0
	for i < len(a.Terms) && j < len(b.Terms) {
		switch strings.Compare(a.Terms[i], b.Terms[j]) {
		case 0:
			push(a.Terms[i], ca*a.Weights[i]+cb*b.Weights[j])
			i++
			j++
		case -1:
			push(a.Terms[i], ca*a.Weights[i])
			i++
		default:
			push(b.Terms[j], cb*b.Weights[j])
			j++
		}
	}
	for ; i < len(a.Terms); i++ {
		push(a.Terms[i], ca*a.Weights[i])
	}
	for ; j < len(b.Terms); j++ {
		push(b.Terms[j], cb*b.Weights[j])
	}
	return Vector{Terms: terms, Weights: weights}
}

// topIndices returns the indices of v's k highest-weighted entries in
// descending weight order, ties broken lexicographically by term for
// determinism. It is the selection step shared by Truncated and TopTerms.
func (v Vector) topIndices(k int) []int {
	idx := make([]int, v.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		i, j := idx[a], idx[b]
		if v.Weights[i] != v.Weights[j] {
			return v.Weights[i] > v.Weights[j]
		}
		return v.Terms[i] < v.Terms[j]
	})
	return idx[:min(k, len(idx))]
}

// Truncated returns v restricted to its k highest-weighted terms (ties
// broken lexicographically for determinism). The paper keeps at most 100
// terms per document and profile vector.
func (v Vector) Truncated(k int) Vector {
	if v.Len() <= k {
		return v
	}
	idx := v.topIndices(k)
	sort.Ints(idx) // terms are sorted, so index order is term order
	out := Vector{
		Terms:   make([]string, k),
		Weights: make([]float64, k),
	}
	for i, j := range idx {
		out.Terms[i] = v.Terms[j]
		out.Weights[i] = v.Weights[j]
	}
	return out
}

// TopTerms returns the k highest-weighted terms in descending weight order,
// useful for inspecting what concept a profile vector represents.
func (v Vector) TopTerms(k int) []string {
	idx := v.topIndices(k)
	out := make([]string, len(idx))
	for i, j := range idx {
		out[i] = v.Terms[j]
	}
	return out
}

// String renders the vector's leading terms for debugging.
func (v Vector) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, t := range v.TopTerms(5) {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%.3f", t, v.Weight(t))
	}
	if v.Len() > 5 {
		fmt.Fprintf(&b, ", …%d terms", v.Len())
	}
	b.WriteByte('}')
	return b.String()
}

// valid reports whether the vector invariants hold (sorted unique terms,
// positive finite weights, equal lengths). Used by tests.
func (v Vector) valid() bool {
	if len(v.Terms) != len(v.Weights) {
		return false
	}
	for i, t := range v.Terms {
		if i > 0 && v.Terms[i-1] >= t {
			return false
		}
		if !(v.Weights[i] > 0) || math.IsInf(v.Weights[i], 0) || math.IsNaN(v.Weights[i]) {
			return false
		}
	}
	return true
}
