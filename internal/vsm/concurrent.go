package vsm

import (
	"sync"
	"sync/atomic"
)

// dfShardBits/dfShards size the ConcurrentStats stripe array. 64 stripes
// matches the intern dictionary: enough that publishers hashing to the same
// stripe is rare at any plausible worker count, few enough that the fixed
// footprint stays trivial.
const (
	dfShardBits = 6
	dfShards    = 1 << dfShardBits
	dfShardMask = dfShards - 1
)

// ConcurrentStats is a Stats variant safe for concurrent Add and read use:
// the document count and total length are atomics, and the per-term
// document frequencies are striped over independently read/write-locked
// map shards (term → stripe by FNV-1a hash). It satisfies StatsView, so
// TFIDF and Bel weighting work against it unchanged.
//
// Readers are deliberately not snapshot-consistent with writers: a Weight
// computed while another document is being added may see the new N but not
// yet that document's df bumps (or vice versa). For incremental collection
// statistics over thousands of documents this is exactly as accurate as
// the paper's "statistics as they stand" prescription requires, and it is
// what lets publishes vectorize in parallel instead of serializing on one
// statistics mutex.
type ConcurrentStats struct {
	n        atomic.Int64
	totalLen atomic.Int64
	shards   [dfShards]dfShard
}

type dfShard struct {
	mu sync.RWMutex
	df map[string]int
}

// NewConcurrentStats returns empty concurrent collection statistics.
func NewConcurrentStats() *ConcurrentStats {
	s := &ConcurrentStats{}
	for i := range s.shards {
		s.shards[i].df = make(map[string]int)
	}
	return s
}

// statsFNV32 is the 32-bit FNV-1a hash (same function the intern
// dictionary uses), inlined to keep DF lookups allocation-free.
func statsFNV32(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint32(s[i])) * 16777619
	}
	return h
}

// Add observes one document given as its (post-pipeline) term list,
// updating N, document frequencies, and the running average length. Safe
// for concurrent use with other Adds and with reads.
func (s *ConcurrentStats) Add(terms []string) {
	s.n.Add(1)
	s.totalLen.Add(int64(len(terms)))
	seen := make(map[string]bool, len(terms))
	for _, t := range terms {
		if seen[t] {
			continue
		}
		seen[t] = true
		sh := &s.shards[statsFNV32(t)&dfShardMask]
		sh.mu.Lock()
		sh.df[t]++
		sh.mu.Unlock()
	}
}

// N returns the number of documents observed.
func (s *ConcurrentStats) N() int { return int(s.n.Load()) }

// Stripes returns the number of independently locked DF stripes, for
// layout introspection.
func (s *ConcurrentStats) Stripes() int { return dfShards }

// DF returns the document frequency of term t.
func (s *ConcurrentStats) DF(t string) int {
	sh := &s.shards[statsFNV32(t)&dfShardMask]
	sh.mu.RLock()
	df := sh.df[t]
	sh.mu.RUnlock()
	return df
}

// VocabularySize returns the number of distinct terms observed.
func (s *ConcurrentStats) VocabularySize() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.df)
		sh.mu.RUnlock()
	}
	return n
}

// AvgLen returns the average document length in terms; it is 0 before any
// document has been observed.
func (s *ConcurrentStats) AvgLen() float64 {
	n := s.n.Load()
	if n == 0 {
		return 0
	}
	return float64(s.totalLen.Load()) / float64(n)
}

// Snapshot copies the statistics into a plain single-writer *Stats, for
// freezing a consistent-enough view (evaluation, serialization). Concurrent
// Adds during the copy may be partially included.
func (s *ConcurrentStats) Snapshot() *Stats {
	df := make(map[string]int, 1024)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for t, c := range sh.df {
			df[t] = c
		}
		sh.mu.RUnlock()
	}
	return &Stats{n: int(s.n.Load()), df: df, totalLen: int(s.totalLen.Load())}
}
