package vsm

import "math"

// MaxDocumentTerms is the paper's cap on vector size: each document and
// profile vector keeps only its 100 highest-weighted terms (Section 4.1).
const MaxDocumentTerms = 100

// Weighting computes term weights for one document from its term
// frequencies and length, against collection statistics.
type Weighting interface {
	// Name identifies the scheme in reports.
	Name() string
	// Weight returns the weight of a term with frequency tf in a document
	// of docLen terms.
	Weight(term string, tf, docLen int) float64
}

// StatsView is the read side of collection statistics, the slice every
// weighting scheme needs. Both the single-writer *Stats and the lock-striped
// *ConcurrentStats satisfy it, so schemes work unchanged against either.
type StatsView interface {
	// N returns the number of documents observed.
	N() int
	// DF returns the document frequency of term t.
	DF(t string) int
	// AvgLen returns the average document length in terms.
	AvgLen() float64
}

// TFIDF is the classical scheme of Section 2.1:
// w = tf · log2(N/df). Terms absent from the collection statistics get
// df = 1 so that out-of-collection terms still receive a (maximal) weight.
type TFIDF struct {
	Stats StatsView
}

// Name implements Weighting.
func (TFIDF) Name() string { return "tfidf" }

// Weight implements Weighting.
func (w TFIDF) Weight(term string, tf, docLen int) float64 {
	n := w.Stats.N()
	if n == 0 || tf == 0 {
		return 0
	}
	df := w.Stats.DF(term)
	if df == 0 {
		df = 1
	}
	return float64(tf) * math.Log2(float64(n)/float64(df))
}

// Bel is Allan's belief weighting, used by every learner in the paper's
// experiments (Section 5.1):
//
//	bel(t,d)  = 0.4 + 0.6 · tfbel(t,d) · idf(t)
//	tfbel     = tf / (tf + 0.5 + 1.5·len_d/avglen)
//	idf(t)    = log((N+0.5)/df_t) / log(N+1)
type Bel struct {
	Stats StatsView
}

// Name implements Weighting.
func (Bel) Name() string { return "bel" }

// Weight implements Weighting.
func (w Bel) Weight(term string, tf, docLen int) float64 {
	n := w.Stats.N()
	if n == 0 || tf == 0 {
		return 0
	}
	avg := w.Stats.AvgLen()
	if avg == 0 {
		avg = float64(docLen)
	}
	df := w.Stats.DF(term)
	if df == 0 {
		df = 1
	}
	tfbel := float64(tf) / (float64(tf) + 0.5 + 1.5*float64(docLen)/avg)
	idf := math.Log((float64(n)+0.5)/float64(df)) / math.Log(float64(n)+1)
	bel := 0.4 + 0.6*tfbel*idf
	if bel < 0 {
		return 0
	}
	return bel
}

// DocumentVector converts a post-pipeline term list into its weighted,
// truncated, length-normalized vector representation: term frequencies are
// counted, weighted by scheme w, the MaxDocumentTerms highest-weighted
// terms kept, and the result scaled to unit length.
func DocumentVector(terms []string, w Weighting) Vector {
	return DocumentVectorK(terms, w, MaxDocumentTerms)
}

// DocumentVectorK is DocumentVector with an explicit term cap.
func DocumentVectorK(terms []string, w Weighting, maxTerms int) Vector {
	tf := make(map[string]int, len(terms))
	for _, t := range terms {
		tf[t]++
	}
	weights := make(map[string]float64, len(tf))
	for t, f := range tf {
		if wt := w.Weight(t, f, len(terms)); wt > 0 {
			weights[t] = wt
		}
	}
	return FromMap(weights).Truncated(maxTerms).Normalized()
}
