package vsm

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func vec(pairs ...any) Vector {
	m := map[string]float64{}
	for i := 0; i < len(pairs); i += 2 {
		m[pairs[i].(string)] = pairs[i+1].(float64)
	}
	return FromMap(m)
}

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestFromMapSortedAndPositive(t *testing.T) {
	v := FromMap(map[string]float64{"b": 2, "a": 1, "c": 0, "d": -3})
	if !reflect.DeepEqual(v.Terms, []string{"a", "b"}) {
		t.Errorf("Terms = %v", v.Terms)
	}
	if !v.valid() {
		t.Error("invariants violated")
	}
}

func TestWeightLookup(t *testing.T) {
	v := vec("alpha", 1.0, "beta", 2.0)
	if got := v.Weight("beta"); !almostEqual(got, 2) {
		t.Errorf("Weight(beta) = %v", got)
	}
	if got := v.Weight("gamma"); got != 0 {
		t.Errorf("Weight(gamma) = %v", got)
	}
}

func TestDotAndCosine(t *testing.T) {
	a := vec("x", 1.0, "y", 2.0)
	b := vec("y", 3.0, "z", 4.0)
	if got := Dot(a, b); !almostEqual(got, 6) {
		t.Errorf("Dot = %v, want 6", got)
	}
	wantCos := 6 / (math.Sqrt(5) * 5)
	if got := Cosine(a, b); !almostEqual(got, wantCos) {
		t.Errorf("Cosine = %v, want %v", got, wantCos)
	}
}

func TestCosineIdentityAndOrthogonal(t *testing.T) {
	a := vec("x", 3.0, "y", 4.0)
	if got := Cosine(a, a); !almostEqual(got, 1) {
		t.Errorf("Cosine(a,a) = %v", got)
	}
	b := vec("p", 1.0)
	if got := Cosine(a, b); got != 0 {
		t.Errorf("orthogonal Cosine = %v", got)
	}
	if got := Cosine(a, Vector{}); got != 0 {
		t.Errorf("Cosine with zero vector = %v", got)
	}
}

func TestNormalized(t *testing.T) {
	v := vec("x", 3.0, "y", 4.0).Normalized()
	if !almostEqual(v.Norm(), 1) {
		t.Errorf("Norm after Normalized = %v", v.Norm())
	}
	z := Vector{}.Normalized()
	if !z.IsZero() {
		t.Error("normalizing zero vector changed it")
	}
}

func TestCombine(t *testing.T) {
	a := vec("x", 1.0, "y", 2.0)
	b := vec("y", 1.0, "z", 3.0)
	got := Combine(a, 1, b, 1)
	want := vec("x", 1.0, "y", 3.0, "z", 3.0)
	if !reflect.DeepEqual(got.ToMap(), want.ToMap()) {
		t.Errorf("Combine = %v, want %v", got.ToMap(), want.ToMap())
	}
}

func TestCombineClampsNegatives(t *testing.T) {
	a := vec("x", 1.0, "y", 2.0)
	b := vec("x", 5.0, "z", 1.0)
	got := Combine(a, 1, b, -1) // x: 1-5 = -4 → dropped; z: -1 → dropped
	want := map[string]float64{"y": 2}
	if !reflect.DeepEqual(got.ToMap(), want) {
		t.Errorf("Combine = %v, want %v", got.ToMap(), want)
	}
	if !got.valid() {
		t.Error("invariants violated")
	}
}

func TestCombineAgainstMapReference(t *testing.T) {
	// Property: Combine matches a naive map-based implementation on random
	// vectors (modulo clamping).
	rng := rand.New(rand.NewSource(7))
	terms := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	randVec := func() Vector {
		m := map[string]float64{}
		for _, t := range terms {
			if rng.Float64() < 0.5 {
				m[t] = rng.Float64()*2 - 0.5 // may be negative; FromMap drops those
			}
		}
		return FromMap(m)
	}
	for trial := 0; trial < 200; trial++ {
		a, b := randVec(), randVec()
		ca, cb := rng.Float64()*2-1, rng.Float64()*2-1
		got := Combine(a, ca, b, cb)
		wantM := map[string]float64{}
		for tm, w := range a.ToMap() {
			wantM[tm] += ca * w
		}
		for tm, w := range b.ToMap() {
			wantM[tm] += cb * w
		}
		for tm, w := range wantM {
			if w <= 1e-12 {
				delete(wantM, tm)
			}
		}
		gotM := got.ToMap()
		if len(gotM) != len(wantM) {
			t.Fatalf("trial %d: got %v want %v", trial, gotM, wantM)
		}
		for tm, w := range wantM {
			if !almostEqual(gotM[tm], w) {
				t.Fatalf("trial %d term %s: got %v want %v", trial, tm, gotM[tm], w)
			}
		}
		if !got.valid() {
			t.Fatalf("trial %d: invariants violated", trial)
		}
	}
}

func TestTruncated(t *testing.T) {
	v := vec("a", 1.0, "b", 5.0, "c", 3.0, "d", 4.0)
	got := v.Truncated(2)
	want := map[string]float64{"b": 5, "d": 4}
	if !reflect.DeepEqual(got.ToMap(), want) {
		t.Errorf("Truncated = %v, want %v", got.ToMap(), want)
	}
	if !got.valid() {
		t.Error("invariants violated")
	}
	if got := v.Truncated(10); got.Len() != 4 {
		t.Errorf("Truncated(10).Len = %d", got.Len())
	}
}

func TestTopTerms(t *testing.T) {
	v := vec("a", 1.0, "b", 5.0, "c", 3.0)
	got := v.TopTerms(2)
	if !reflect.DeepEqual(got, []string{"b", "c"}) {
		t.Errorf("TopTerms = %v", got)
	}
}

func TestCosineProperties(t *testing.T) {
	// Property: cosine of vectors with non-negative weights is in [0,1] and
	// symmetric.
	type fuzzVec map[uint8]uint16
	toVector := func(f fuzzVec) Vector {
		m := map[string]float64{}
		for k, w := range f {
			if w > 0 {
				m[string(rune('a'+k%16))] = float64(w)
			}
		}
		return FromMap(m)
	}
	f := func(fa, fb fuzzVec) bool {
		a, b := toVector(fa), toVector(fb)
		c1, c2 := Cosine(a, b), Cosine(b, a)
		if !almostEqual(c1, c2) {
			return false
		}
		return c1 >= 0 && c1 <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := vec("x", 1.0)
	b := a.Clone()
	b.Weights[0] = 99
	if a.Weights[0] != 1 {
		t.Error("Clone shares backing array")
	}
}

func TestStringDoesNotPanic(t *testing.T) {
	_ = Vector{}.String()
	_ = vec("a", 1.0, "b", 2.0, "c", 3.0, "d", 4.0, "e", 5.0, "f", 6.0).String()
}
