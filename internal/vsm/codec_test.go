package vsm

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestVectorCodecRoundTrip(t *testing.T) {
	cases := []Vector{
		{},
		vec("a", 1.0),
		vec("alpha", 0.25, "beta", 0.5, "gamma", 1.25),
	}
	for _, v := range cases {
		buf := AppendVector(nil, v)
		got, rest, err := DecodeVector(buf)
		if err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if len(rest) != 0 {
			t.Errorf("decode left %d bytes", len(rest))
		}
		if !reflect.DeepEqual(got.ToMap(), v.ToMap()) {
			t.Errorf("round trip: got %v want %v", got.ToMap(), v.ToMap())
		}
	}
}

func TestVectorCodecConcatenation(t *testing.T) {
	a := vec("x", 1.0)
	b := vec("y", 2.0, "z", 3.0)
	buf := AppendVector(AppendVector(nil, a), b)
	gotA, rest, err := DecodeVector(buf)
	if err != nil {
		t.Fatal(err)
	}
	gotB, rest, err := DecodeVector(rest)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Errorf("%d trailing bytes", len(rest))
	}
	if !reflect.DeepEqual(gotA.ToMap(), a.ToMap()) || !reflect.DeepEqual(gotB.ToMap(), b.ToMap()) {
		t.Error("concatenated vectors corrupted")
	}
}

func TestVectorCodecRejectsCorruption(t *testing.T) {
	buf := AppendVector(nil, vec("alpha", 1.0, "beta", 2.0))
	// Truncations at every length must error, never panic.
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeVector(buf[:cut]); err == nil && cut < len(buf) {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	// Unsorted terms are rejected.
	bad := AppendVector(nil, Vector{Terms: []string{"b", "a"}, Weights: []float64{1, 2}})
	if _, _, err := DecodeVector(bad); err == nil {
		t.Error("unsorted vector accepted")
	}
}

func TestVectorCodecPropertyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(n uint8) bool {
		m := map[string]float64{}
		for i := 0; i < int(n%40); i++ {
			m[randTerm(rng)] = rng.Float64()*10 + 0.001
		}
		v := FromMap(m)
		got, rest, err := DecodeVector(AppendVector(nil, v))
		if err != nil || len(rest) != 0 {
			return false
		}
		return reflect.DeepEqual(got.ToMap(), v.ToMap())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func randTerm(rng *rand.Rand) string {
	b := make([]byte, 1+rng.Intn(10))
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}
