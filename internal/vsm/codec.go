package vsm

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary layout of a Vector (all integers unsigned varints):
//
//	uvarint  term count n
//	n ×      { uvarint len(term), term bytes, 8-byte float64 weight }
//
// The format is self-delimiting so vectors can be concatenated in logs and
// snapshots.

// AppendVector appends v's binary encoding to buf and returns the extended
// slice.
func AppendVector(buf []byte, v Vector) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(v.Terms)))
	for i, t := range v.Terms {
		buf = binary.AppendUvarint(buf, uint64(len(t)))
		buf = append(buf, t...)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Weights[i]))
	}
	return buf
}

// DecodeVector decodes one vector from the front of buf, returning it and
// the remaining bytes.
func DecodeVector(buf []byte) (Vector, []byte, error) {
	n, k := binary.Uvarint(buf)
	if k <= 0 {
		return Vector{}, nil, fmt.Errorf("vsm: corrupt vector header")
	}
	buf = buf[k:]
	if n > 1<<20 {
		return Vector{}, nil, fmt.Errorf("vsm: implausible vector size %d", n)
	}
	v := Vector{
		Terms:   make([]string, 0, n),
		Weights: make([]float64, 0, n),
	}
	for i := uint64(0); i < n; i++ {
		l, k := binary.Uvarint(buf)
		if k <= 0 || uint64(len(buf)) < uint64(k)+l+8 {
			return Vector{}, nil, fmt.Errorf("vsm: truncated vector term %d", i)
		}
		buf = buf[k:]
		v.Terms = append(v.Terms, string(buf[:l]))
		buf = buf[l:]
		w := math.Float64frombits(binary.LittleEndian.Uint64(buf[:8]))
		buf = buf[8:]
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return Vector{}, nil, fmt.Errorf("vsm: non-finite weight in term %d", i)
		}
		v.Weights = append(v.Weights, w)
	}
	for i := 1; i < len(v.Terms); i++ {
		if v.Terms[i-1] >= v.Terms[i] {
			return Vector{}, nil, fmt.Errorf("vsm: vector terms not sorted/unique")
		}
	}
	return v, buf, nil
}
