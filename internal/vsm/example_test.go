package vsm_test

import (
	"fmt"

	"mmprofile/internal/vsm"
)

// Example shows the document-vectorization path: term list → collection
// statistics → weighted, truncated, normalized vector → cosine scoring.
func Example() {
	stats := vsm.NewStats()
	docs := [][]string{
		{"cat", "cat", "dog"},
		{"cat", "fish"},
		{"stock", "bond"},
	}
	for _, terms := range docs {
		stats.Add(terms)
	}
	w := vsm.Bel{Stats: stats}

	a := vsm.DocumentVector(docs[0], w)
	b := vsm.DocumentVector(docs[1], w)
	c := vsm.DocumentVector(docs[2], w)

	fmt.Printf("norm(a) = %.1f\n", a.Norm())
	fmt.Printf("sim(a,b) > sim(a,c): %v\n", vsm.Cosine(a, b) > vsm.Cosine(a, c))
	// Output:
	// norm(a) = 1.0
	// sim(a,b) > sim(a,c): true
}

// ExampleCombine demonstrates linear combination with non-negativity
// clamping, the primitive behind every profile update in the module.
func ExampleCombine() {
	p := vsm.FromMap(map[string]float64{"cat": 0.8, "dog": 0.6})
	d := vsm.FromMap(map[string]float64{"cat": 0.5, "bird": 0.5})
	moved := vsm.Combine(p, 0.8, d, 0.2) // p ← 0.8·p + 0.2·d
	fmt.Printf("cat=%.2f dog=%.2f bird=%.2f\n",
		moved.Weight("cat"), moved.Weight("dog"), moved.Weight("bird"))

	away := vsm.Combine(p, 1, d, -2) // push away hard: cat clamps to 0
	fmt.Printf("after negative move, cat=%.2f dog=%.2f\n",
		away.Weight("cat"), away.Weight("dog"))
	// Output:
	// cat=0.74 dog=0.48 bird=0.10
	// after negative move, cat=0.00 dog=0.60
}
