package vsm

import (
	"math"
	"strings"
	"testing"
)

func buildStats(docs ...string) *Stats {
	s := NewStats()
	for _, d := range docs {
		s.Add(strings.Fields(d))
	}
	return s
}

func TestStatsAccumulation(t *testing.T) {
	s := buildStats("a b b c", "a d")
	if s.N() != 2 {
		t.Errorf("N = %d", s.N())
	}
	if s.DF("a") != 2 || s.DF("b") != 1 || s.DF("z") != 0 {
		t.Errorf("df: a=%d b=%d z=%d", s.DF("a"), s.DF("b"), s.DF("z"))
	}
	if got := s.AvgLen(); !almostEqual(got, 3) {
		t.Errorf("AvgLen = %v", got)
	}
	if s.VocabularySize() != 4 {
		t.Errorf("VocabularySize = %d", s.VocabularySize())
	}
}

func TestStatsClone(t *testing.T) {
	s := buildStats("a b")
	c := s.Clone()
	s.Add([]string{"a", "c"})
	if c.N() != 1 || c.DF("c") != 0 {
		t.Error("Clone not independent")
	}
}

func TestTFIDFWeight(t *testing.T) {
	s := buildStats("cat dog", "cat fish", "cat bird", "owl moth")
	w := TFIDF{Stats: s}
	// df(cat)=3, N=4 → idf=log2(4/3)
	want := 2 * math.Log2(4.0/3.0)
	if got := w.Weight("cat", 2, 10); !almostEqual(got, want) {
		t.Errorf("tfidf = %v, want %v", got, want)
	}
	// A term occurring in every document gets weight 0.
	s2 := buildStats("x", "x")
	if got := (TFIDF{Stats: s2}).Weight("x", 1, 1); got != 0 {
		t.Errorf("ubiquitous term weight = %v, want 0", got)
	}
}

func TestBelWeightFormula(t *testing.T) {
	s := buildStats("cat dog bird", "cat fish owl", "lion tiger bear")
	w := Bel{Stats: s}
	// Hand-compute bel for term "cat", tf=2, docLen=4:
	// avglen=3, N=3, df=2
	tfbel := 2.0 / (2.0 + 0.5 + 1.5*4.0/3.0)
	idf := math.Log(3.5/2.0) / math.Log(4.0)
	want := 0.4 + 0.6*tfbel*idf
	if got := w.Weight("cat", 2, 4); !almostEqual(got, want) {
		t.Errorf("bel = %v, want %v", got, want)
	}
}

func TestBelWeightEdgeCases(t *testing.T) {
	w := Bel{Stats: NewStats()}
	if got := w.Weight("x", 3, 5); got != 0 {
		t.Errorf("empty-collection bel = %v, want 0", got)
	}
	s := buildStats("a b")
	w = Bel{Stats: s}
	if got := w.Weight("a", 0, 2); got != 0 {
		t.Errorf("zero-tf bel = %v, want 0", got)
	}
	// Unseen term must not panic and must get a positive weight (df
	// backfilled to 1).
	if got := w.Weight("unseen", 1, 2); got <= 0 {
		t.Errorf("unseen-term bel = %v, want > 0", got)
	}
}

func TestBelMoreFrequentTermWeighsMore(t *testing.T) {
	s := buildStats("a b c d", "e f g h", "i j k l")
	w := Bel{Stats: s}
	lo := w.Weight("a", 1, 10)
	hi := w.Weight("a", 5, 10)
	if hi <= lo {
		t.Errorf("bel not monotone in tf: tf=1→%v tf=5→%v", lo, hi)
	}
}

func TestBelRarerTermWeighsMore(t *testing.T) {
	s := buildStats("common rare", "common x", "common y", "common z")
	w := Bel{Stats: s}
	c := w.Weight("common", 1, 10)
	r := w.Weight("rare", 1, 10)
	if r <= c {
		t.Errorf("bel not monotone in rarity: common=%v rare=%v", c, r)
	}
}

func TestDocumentVector(t *testing.T) {
	// cat and dog have identical document frequency, so the tf=2 term must
	// outweigh the tf=1 term.
	s := buildStats("cat dog", "cat dog", "bird owl")
	v := DocumentVector([]string{"cat", "cat", "dog"}, Bel{Stats: s})
	if v.IsZero() {
		t.Fatal("empty document vector")
	}
	if !almostEqual(v.Norm(), 1) {
		t.Errorf("document vector not normalized: %v", v.Norm())
	}
	if v.Weight("cat") <= v.Weight("dog") {
		t.Errorf("tf=2 term should outweigh tf=1 term: %v", v.ToMap())
	}
	if v.Weight("fish") != 0 {
		t.Error("absent term has weight")
	}
}

func TestDocumentVectorTruncation(t *testing.T) {
	s := NewStats()
	terms := make([]string, 0, 300)
	for i := 0; i < 300; i++ {
		terms = append(terms, "t"+string(rune('a'+i%26))+string(rune('a'+(i/26)%26)))
	}
	s.Add(terms)
	s.Add([]string{"other"})
	v := DocumentVector(terms, Bel{Stats: s})
	if v.Len() > MaxDocumentTerms {
		t.Errorf("vector has %d terms, cap is %d", v.Len(), MaxDocumentTerms)
	}
	vk := DocumentVectorK(terms, Bel{Stats: s}, 10)
	if vk.Len() != 10 {
		t.Errorf("DocumentVectorK(10) kept %d terms", vk.Len())
	}
}

func TestDocumentVectorEmpty(t *testing.T) {
	v := DocumentVector(nil, Bel{Stats: NewStats()})
	if !v.IsZero() {
		t.Error("expected zero vector for empty document")
	}
}
