package index

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"mmprofile/internal/vsm"
)

// prunePopulation builds an index plus a brute-force mirror that is large
// enough to push the busy posting lists through staged→committed rebuilds,
// so matches exercise the blocked, quantized, impact-ordered hot path (a
// vocabulary of vocab terms over nUsers users with up to three vectors
// each yields several blocks per term).
func prunePopulation(rng *rand.Rand, nUsers, vocab int) (*Index, map[string][]vsm.Vector) {
	terms := make([]string, vocab)
	for i := range terms {
		terms[i] = fmt.Sprintf("t%03d", i)
	}
	randVec := func() vsm.Vector {
		m := map[string]float64{}
		n := 3 + rng.Intn(8)
		for k := 0; k < n; k++ {
			// Zipf-ish skew: low term ids are far more common, giving a mix
			// of long hot lists and short cold ones.
			ti := int(float64(vocab) * rng.Float64() * rng.Float64())
			if ti >= vocab {
				ti = vocab - 1
			}
			m[terms[ti]] = rng.Float64() + 0.01
		}
		return vsm.FromMap(m).Normalized()
	}
	ix := New()
	profiles := map[string][]vsm.Vector{}
	for u := 0; u < nUsers; u++ {
		user := fmt.Sprintf("u%04d", u)
		n := 1 + rng.Intn(3)
		for v := 0; v < n; v++ {
			pv := randVec()
			profiles[user] = append(profiles[user], pv)
			ix.Upsert(user, v, pv)
		}
	}
	return ix, profiles
}

func randProbe(rng *rand.Rand, vocab int) vsm.Vector {
	m := map[string]float64{}
	n := 3 + rng.Intn(10)
	for k := 0; k < n; k++ {
		m[fmt.Sprintf("t%03d", rng.Intn(vocab))] = rng.Float64() + 0.01
	}
	return vsm.FromMap(m).Normalized()
}

// requireHotLists asserts the population actually built blocked lists —
// otherwise the pruning tests would silently run on the cold path only.
func requireHotLists(t *testing.T, ix *Index) {
	t.Helper()
	hot, blocks := 0, 0
	for si := range ix.shards {
		s := &ix.shards[si]
		s.mu.RLock()
		for _, l := range s.lists {
			if len(l.ids) > 0 {
				hot++
				blocks += l.blocks()
			}
		}
		s.mu.RUnlock()
	}
	if hot == 0 || blocks < 8 {
		t.Fatalf("population too small to exercise the hot path: %d hot lists, %d blocks", hot, blocks)
	}
}

// TestQuantizedBoundsNeverUnderestimate pins the structural invariants the
// pruning proofs rest on: for every committed posting the quantized weight
// over-estimates the exact one (qw·scale ≥ w), block maxima dominate their
// blocks, the committed body is impact-ordered, and maxW dominates every
// live weight, staged or committed. A violated bound would surface as a
// false negative at some θ; checking the representation directly covers
// every θ ∈ (0, 1] at once.
func TestQuantizedBoundsNeverUnderestimate(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ix, _ := prunePopulation(rng, 900, 30)
	requireHotLists(t, ix)
	// Adversarial weight spread: one list mixing tiny and near-max weights
	// stresses the shared per-term scale.
	for i := 0; i < 200; i++ {
		w := math.Pow(10, -4*rng.Float64())
		ix.Upsert(fmt.Sprintf("adv%03d", i), 0, vec("t000", w, "t001", 1-w))
	}
	checked := 0
	for si := range ix.shards {
		s := &ix.shards[si]
		s.mu.RLock()
		for term, l := range s.lists {
			s64 := float64(l.scale)
			for i, w := range l.ws {
				if ub := float64(l.qws[i]) * s64; ub < float64(w) {
					t.Fatalf("term %d posting %d: quantized bound %v under-estimates weight %v", term, i, ub, w)
				}
				if i > 0 && l.ws[i-1] < w {
					t.Fatalf("term %d: impact order violated at %d (%v < %v)", term, i, l.ws[i-1], w)
				}
				if w > l.maxW {
					t.Fatalf("term %d: maxW %v < committed weight %v", term, l.maxW, w)
				}
				b := i / blockSize
				if l.bmax[b] < l.qws[i] {
					t.Fatalf("term %d block %d: bmax %d < qw %d", term, b, l.bmax[b], l.qws[i])
				}
				checked++
			}
			for _, w := range l.sws {
				if w > l.maxW {
					t.Fatalf("term %d: maxW %v < staged weight %v", term, l.maxW, w)
				}
				checked++
			}
		}
		s.mu.RUnlock()
	}
	if checked == 0 {
		t.Fatal("no postings checked")
	}
}

// TestMatchPrunedEqualsBruteForceEveryTheta is the pruning property test:
// at every θ on a grid spanning (0, 1], Match and MatchDoc with pruning on
// must return exactly the users, vectors, ordering, and (±1e-9) scores of
// the brute-force registry scorer — pruning plus exact rescore is lossless.
func TestMatchPrunedEqualsBruteForceEveryTheta(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ix, profiles := prunePopulation(rng, 900, 30)
	requireHotLists(t, ix)
	thetas := []float64{0.01, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.4, 0.5, 0.6, 0.75, 0.9, 1.0}
	for trial := 0; trial < 8; trial++ {
		doc := randProbe(rng, 30)
		d := ix.NewDoc(doc)
		for _, theta := range thetas {
			want := bruteMatches(profiles, doc, theta)
			for _, via := range []string{"Match", "MatchDoc"} {
				var got []Match
				if via == "Match" {
					got = ix.Match(doc, theta)
				} else {
					got = ix.MatchDoc(d, theta)
				}
				if len(got) != len(want) {
					t.Fatalf("trial %d θ=%v %s: %d matches, want %d", trial, theta, via, len(got), len(want))
				}
				for i := range got {
					if got[i].User != want[i].User || got[i].Vector != want[i].Vector ||
						math.Abs(got[i].Score-want[i].Score) > 1e-9 {
						t.Fatalf("trial %d θ=%v %s [%d]: got %+v, want %+v", trial, theta, via, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestPruningOffMatchesPruningOn pins the -prune=off escape hatch: the
// toggle changes the work done, never the answer.
func TestPruningOffMatchesPruningOn(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ix, _ := prunePopulation(rng, 600, 25)
	requireHotLists(t, ix)
	if !ix.PruningEnabled() {
		t.Fatal("pruning should default to on")
	}
	for trial := 0; trial < 10; trial++ {
		doc := randProbe(rng, 25)
		theta := 0.05 + 0.6*rng.Float64()
		on := ix.Match(doc, theta)
		ix.SetPruning(false)
		off := ix.Match(doc, theta)
		ix.SetPruning(true)
		if len(on) != len(off) {
			t.Fatalf("trial %d θ=%v: pruned %d matches, unpruned %d", trial, theta, len(on), len(off))
		}
		for i := range on {
			if on[i].User != off[i].User || on[i].Vector != off[i].Vector ||
				math.Abs(on[i].Score-off[i].Score) > 1e-9 {
				t.Fatalf("trial %d θ=%v [%d]: pruned %+v, unpruned %+v", trial, theta, i, on[i], off[i])
			}
		}
	}
}

// TestTopKEqualsMatchPrefix pins the satellite contract: for any θ and k,
// TopK(θ, k) ≡ sort(Match(θ))[:k], even though the heap floor retires
// low-bound candidates before they are ever rescored.
func TestTopKEqualsMatchPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ix, _ := prunePopulation(rng, 700, 25)
	requireHotLists(t, ix)
	for trial := 0; trial < 12; trial++ {
		doc := randProbe(rng, 25)
		theta := 0.5 * rng.Float64() // include θ=0-adjacent and selective cutoffs
		if trial%4 == 0 {
			theta = 0
		}
		k := 1 + rng.Intn(12)
		all := ix.Match(doc, theta)
		topk := ix.TopK(doc, theta, k)
		want := all
		if len(want) > k {
			want = want[:k]
		}
		if len(topk) != len(want) {
			t.Fatalf("trial %d θ=%v k=%d: TopK %d results, want %d (Match returned %d)",
				trial, theta, k, len(topk), len(want), len(all))
		}
		for i := range want {
			if topk[i] != want[i] {
				t.Fatalf("trial %d θ=%v k=%d [%d]: TopK %+v, want %+v", trial, theta, k, i, topk[i], want[i])
			}
		}
	}
}

// TestPruneStatsProgress checks the observability side: pruned matches at a
// selective θ must record skipped blocks or pruned terms, and disabling
// pruning must stop the skip counters while scanning more postings.
func TestPruneStatsProgress(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	ix, _ := prunePopulation(rng, 900, 30)
	requireHotLists(t, ix)
	probes := make([]vsm.Vector, 20)
	for i := range probes {
		probes[i] = randProbe(rng, 30)
	}

	before := ix.PruneStats()
	for _, doc := range probes {
		ix.Match(doc, 0.5)
	}
	after := ix.PruneStats()
	if after.PostingsScanned == before.PostingsScanned {
		t.Error("pruned matches recorded no scanned postings")
	}
	if after.BlocksSkipped == before.BlocksSkipped && after.TermsPruned == before.TermsPruned {
		t.Error("selective θ=0.5 matches skipped no blocks and pruned no terms")
	}

	ix.SetPruning(false)
	defer ix.SetPruning(true)
	b2 := ix.PruneStats()
	for _, doc := range probes {
		ix.Match(doc, 0.5)
	}
	a2 := ix.PruneStats()
	if a2.BlocksSkipped != b2.BlocksSkipped || a2.TermsPruned != b2.TermsPruned || a2.Rescores != b2.Rescores {
		t.Errorf("pruning off still skipped work: %+v vs %+v", a2, b2)
	}
	pruned := after.PostingsScanned - before.PostingsScanned
	full := a2.PostingsScanned - b2.PostingsScanned
	if pruned >= full {
		t.Errorf("pruned matches scanned %d postings, unpruned %d — pruning saved nothing", pruned, full)
	}
}

// TestPruneStressConcurrent is the -race stress for the pruning paths:
// writers churn profiles (forcing staged tails, rebuilds, tombstones, and
// compactions) while readers match at selective thresholds through the
// blocked hot path; a final quiescent sweep must agree with brute force at
// every tested θ.
func TestPruneStressConcurrent(t *testing.T) {
	const (
		writers = 4
		readers = 4
		ops     = 120
		vocab   = 24
	)
	seedRng := rand.New(rand.NewSource(23))
	ix, profiles := prunePopulation(seedRng, 500, vocab)
	requireHotLists(t, ix)
	var mu sync.Mutex // guards profiles

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < ops; i++ {
				// Each writer owns a disjoint user slice so the mirror map
				// stays consistent with the index without cross-writer races.
				user := fmt.Sprintf("u%04d", w+writers*rng.Intn(500/writers))
				switch rng.Intn(5) {
				case 0:
					mu.Lock()
					delete(profiles, user)
					mu.Unlock()
					ix.RemoveUser(user)
				default:
					n := 1 + rng.Intn(3)
					vecs := make([]vsm.Vector, n)
					for v := range vecs {
						vecs[v] = randProbe(rng, vocab)
					}
					mu.Lock()
					profiles[user] = vecs
					mu.Unlock()
					ix.SetUser(user, vecs)
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + r)))
			for i := 0; i < ops; i++ {
				doc := randProbe(rng, vocab)
				theta := 0.1 + 0.5*rng.Float64()
				ms := ix.Match(doc, theta)
				for _, m := range ms {
					if m.Score < theta {
						t.Errorf("match below threshold: %+v < %v", m, theta)
					}
				}
				ix.TopK(doc, theta, 1+rng.Intn(8))
				if i%20 == 0 {
					ix.MatchDoc(ix.NewDoc(doc), theta)
				}
			}
		}(r)
	}
	wg.Wait()

	ix.Compact()
	for _, theta := range []float64{0.05, 0.25, 0.5, 0.75} {
		doc := randProbe(seedRng, vocab)
		got := ix.Match(doc, theta)
		want := bruteMatches(profiles, doc, theta)
		if len(got) != len(want) {
			t.Fatalf("post-stress θ=%v: %d matches, want %d", theta, len(got), len(want))
		}
		for i := range got {
			if got[i].User != want[i].User || math.Abs(got[i].Score-want[i].Score) > 1e-9 {
				t.Fatalf("post-stress θ=%v [%d]: got %+v, want %+v", theta, i, got[i], want[i])
			}
		}
	}
}
