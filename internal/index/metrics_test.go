package index

import (
	"testing"
	"time"

	"mmprofile/internal/metrics"
	"mmprofile/internal/vsm"
)

func TestInstrument(t *testing.T) {
	reg := metrics.NewRegistry()
	ix := New()
	ix.Instrument(reg)

	ix.SetUser("alice", []vsm.Vector{vec("cat", 1.0)})
	ix.SetUser("bob", []vsm.Vector{vec("dog", 1.0)})
	if m := ix.Match(vec("cat", 1.0), 0.3); len(m) != 1 {
		t.Fatalf("matches = %v", m)
	}
	ix.TopK(vec("dog", 1.0), 0.3, 1)

	snap := reg.Snapshot()
	if h := snap["mm_index_match_seconds"].(metrics.HistogramSnapshot); h.Count != 2 {
		t.Errorf("match observations = %d, want 2 (Match + TopK)", h.Count)
	}
	if got := snap["mm_index_live_vectors"].(float64); got != 2 {
		t.Errorf("live vectors = %v, want 2", got)
	}
	if got := snap["mm_index_tombstone_ratio"].(float64); got != 0 {
		t.Errorf("tombstone ratio = %v, want 0 before any removal", got)
	}

	// Removing a user tombstones its postings; the ratio must reflect that
	// until Compact sweeps them and records the compaction.
	ix.RemoveUser("alice")
	if got := reg.Snapshot()["mm_index_tombstone_ratio"].(float64); got <= 0 {
		t.Errorf("tombstone ratio = %v, want > 0 after RemoveUser", got)
	}
	ix.Compact()
	snap = reg.Snapshot()
	if got := snap["mm_index_tombstone_ratio"].(float64); got != 0 {
		t.Errorf("tombstone ratio = %v, want 0 after Compact", got)
	}
	if got := snap["mm_index_compactions_total"].(int64); got == 0 {
		t.Error("Compact did not record any shard compactions")
	}
	if h := snap["mm_index_compaction_seconds"].(metrics.HistogramSnapshot); h.Count == 0 {
		t.Error("compaction duration histogram empty")
	}
	if got := snap["mm_index_live_vectors"].(float64); got != 1 {
		t.Errorf("live vectors = %v, want 1 after RemoveUser", got)
	}
}

// TestCompactSkipsCleanShards pins that per-shard compaction is a strict
// no-op for shards without tombstones: a single-term removal dirties
// exactly one of the 16 shards, so a full Compact() must record exactly
// one compaction — and a second Compact(), with nothing left to sweep,
// must record none.
func TestCompactSkipsCleanShards(t *testing.T) {
	reg := metrics.NewRegistry()
	ix := New()
	ix.Instrument(reg)

	for i := 0; i < 8; i++ {
		ix.Upsert("keeper", i, vec("kept-term", 1.0))
	}
	ix.Upsert("victim", 0, vec("doomed-term", 1.0))
	ix.Remove("victim", 0)

	ix.Compact()
	if got := reg.Snapshot()["mm_index_compactions_total"].(int64); got != 1 {
		t.Errorf("compactions after one dirty shard = %d, want 1 (clean shards must be skipped)", got)
	}
	ix.Compact()
	if got := reg.Snapshot()["mm_index_compactions_total"].(int64); got != 1 {
		t.Errorf("compactions after clean re-run = %d, want still 1", got)
	}
	if h := reg.Snapshot()["mm_index_compaction_seconds"].(metrics.HistogramSnapshot); h.Count != 1 {
		t.Errorf("compaction durations = %d, want 1", h.Count)
	}
}

// TestRecordMatchLatency covers the externally-timed MatchDoc recording
// the broker uses: plain observations land in the histogram, traced ones
// additionally register a per-bucket exemplar, and an uninstrumented index
// ignores the call entirely.
func TestRecordMatchLatency(t *testing.T) {
	reg := metrics.NewRegistry()
	ix := New()
	ix.Instrument(reg)

	base := time.Unix(0, 0)
	ix.RecordMatchLatency(base, base.Add(time.Millisecond), 0)
	ix.RecordMatchLatency(base, base.Add(2*time.Millisecond), 0xabcd)

	h := reg.Snapshot()["mm_index_match_seconds"].(metrics.HistogramSnapshot)
	if h.Count != 2 {
		t.Fatalf("observations = %d, want 2", h.Count)
	}
	if len(h.Exemplars) != 1 || h.Exemplars[0].Trace != "000000000000abcd" {
		t.Fatalf("exemplars = %+v", h.Exemplars)
	}

	New().RecordMatchLatency(base, base.Add(time.Millisecond), 1) // no Instrument: no-op
}

// TestUninstrumentedIndexRecordsNothing pins the zero-cost default: an
// index never handed a registry works identically (broker benchmarks rely
// on the nil check being the only overhead).
func TestUninstrumentedIndexRecordsNothing(t *testing.T) {
	ix := New()
	ix.SetUser("alice", []vsm.Vector{vec("cat", 1.0)})
	if m := ix.Match(vec("cat", 1.0), 0.3); len(m) != 1 {
		t.Fatalf("matches = %v", m)
	}
	ix.RemoveUser("alice")
	ix.Compact()
}
