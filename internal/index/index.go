// Package index implements an inverted index over profile vectors, the
// "well-known indexing technique" the paper appeals to (Section 4.3) for
// making filtering cost sublinear in the number of profile vectors: instead
// of comparing an incoming document against every vector of every user, the
// index walks only the posting lists of the document's terms and
// accumulates dot products for the vectors that share at least one term.
//
// Profile vectors and document vectors are unit-normalized throughout the
// system, so the accumulated dot product IS the cosine similarity.
//
// Hot-path architecture (see DESIGN.md §7):
//
//   - Terms are interned to uint32 ids through a sharded dictionary
//     (internal/intern), so matching compares integers, never strings.
//   - Postings are sharded by term-id hash across independently locked
//     shards; each posting list is a compact []posting slice. Removal
//     tombstones postings lazily (per-shard dead-slot sets) and each shard
//     compacts itself once tombstones exceed a fraction of its postings.
//   - Posting weights are stored as float32: profile weights are already
//     quantized by term truncation and unit normalization, and half-width
//     postings double the number that fit a cache line. Scores therefore
//     match a float64 recomputation only to ~1e-7 relative.
//   - Per-call score accumulators are dense slices indexed by entry slot,
//     drawn from a sync.Pool; a touched-list makes reset O(candidates).
//   - TopK selects through a bounded min-heap instead of sorting every hit.
package index

import (
	"sort"
	"sync"
	"time"

	"mmprofile/internal/intern"
	"mmprofile/internal/metrics"
	"mmprofile/internal/vsm"
)

// NumShards is the posting-shard count, exported for layout introspection
// (pubsub.Broker.Layout).
const NumShards = numShards

const (
	// numShards is the posting-shard count; a power of two so shardOf is a
	// multiply and a shift. 16 shards keep writer collisions rare without
	// bloating the per-index footprint.
	numShards = 16

	// compactMinStale and compactFraction gate shard compaction: a shard
	// rebuilds its lists once it holds more than compactMinStale tombstoned
	// postings and they exceed 1/compactFraction of its total.
	compactMinStale = 64
	compactFraction = 4
)

// shardOf maps a term id to its posting shard (Fibonacci hashing, so the
// dictionary's own shard bits in the low end of the id do not bias the
// distribution).
func shardOf(term uint32) uint32 {
	return (term * 0x9E3779B1) >> (32 - 4) // log2(numShards) == 4
}

// posting credits one profile vector (by entry slot) with a term weight.
type posting struct {
	id uint32
	w  float32
}

// shard is one independently locked slice of the posting space.
type shard struct {
	mu       sync.RWMutex
	postings map[uint32][]posting // term id → posting list
	live     int                  // postings referencing live entries
	stale    int                  // tombstoned postings awaiting compaction
	dead     map[uint32]bool      // entry slots whose postings here are stale
}

// entrySlot is one indexed profile vector. Slots are recycled, but only
// after every shard holding the dead slot's stale postings has compacted
// them away — until then a stale posting can still accumulate score onto
// the slot, which harvest discards via the alive flag.
type entrySlot struct {
	user    string
	vec     int
	uid     uint32
	termIDs []uint32
	alive   bool
}

// userInfo tracks one user's slots and dense user id (uids index the
// pooled best-per-user arrays during harvest).
type userInfo struct {
	uid   uint32
	slots map[int]uint32 // vector slot number → entry slot
}

// Match is one hit of a document against the index: the user's best-scoring
// profile vector and its similarity.
type Match struct {
	User  string
	Score float64
	// Vector is the slot of the user's best-matching profile vector.
	Vector int
}

// Index is a concurrent inverted index over profile vectors. Matching
// walks posting shards under per-shard read locks and consults the entry
// registry once per call; updates stage postings first and then flip entry
// liveness under the registry lock, so a concurrent Match observes a
// user's old vector set or the new one — never an empty in-between.
type Index struct {
	dict   *intern.Dict
	shards [numShards]shard

	mu       sync.RWMutex // registry: everything below
	entries  []entrySlot
	freeEnt  []uint32
	dying    map[uint32]int // dead slot → shards still holding stale postings
	byUser   map[string]*userInfo
	nextUID  uint32
	freeUID  []uint32
	liveVecs int

	pool sync.Pool // *matcher

	// inst is nil until Instrument is called; instrumented paths check it
	// once and fall through at zero cost when monitoring is off.
	inst *instruments
}

// instruments holds the index's metrics (DESIGN.md §8). All fields are
// nil-safe no-ops until Instrument wires them to a registry.
type instruments struct {
	matchLat    *metrics.Histogram
	compactions *metrics.Counter
	compactLat  *metrics.Histogram
}

// Instrument registers the index's metrics with reg and starts recording.
// Call it before the index is shared across goroutines (the broker does so
// at construction). Self-timing covers Match and TopK; MatchDoc is left to
// its caller — the broker's publish path already brackets MatchDoc with
// its own clock reads and re-uses them via RecordMatchLatency, keeping the
// hot path at three time.Now calls total.
func (ix *Index) Instrument(reg *metrics.Registry) {
	ix.inst = &instruments{
		matchLat: reg.Histogram("mm_index_match_seconds",
			"Latency of matching one document through the inverted profile index (Match/TopK entry points)."),
		compactions: reg.Counter("mm_index_compactions_total",
			"Posting-shard compactions performed (tombstone garbage collection)."),
		compactLat: reg.Histogram("mm_index_compaction_seconds",
			"Duration of individual posting-shard compactions."),
	}
	reg.GaugeFunc("mm_index_live_vectors",
		"Profile vectors currently live in the inverted index.",
		func() float64 {
			ix.mu.RLock()
			n := ix.liveVecs
			ix.mu.RUnlock()
			return float64(n)
		})
	reg.GaugeFunc("mm_index_tombstone_ratio",
		"Fraction of postings that are tombstoned and awaiting compaction (0 = fully compact).",
		func() float64 {
			var live, stale int
			for i := range ix.shards {
				s := &ix.shards[i]
				s.mu.RLock()
				live += s.live
				stale += s.stale
				s.mu.RUnlock()
			}
			if live+stale == 0 {
				return 0
			}
			return float64(stale) / float64(live+stale)
		})
}

// New returns an empty index with its own term dictionary.
func New() *Index {
	ix := &Index{
		dying:  make(map[uint32]int),
		byUser: make(map[string]*userInfo),
		dict:   intern.NewDict(),
	}
	for i := range ix.shards {
		ix.shards[i].postings = make(map[uint32][]posting)
		ix.shards[i].dead = make(map[uint32]bool)
	}
	ix.pool.New = func() any { return new(matcher) }
	return ix
}

// Dict exposes the index's term dictionary (shared with callers that want
// to pre-intern document vectors via NewDoc).
func (ix *Index) Dict() *intern.Dict { return ix.dict }

// ---------------------------------------------------------------------------
// Updates

// stagedVec is one profile vector prepared for insertion: interned terms,
// float32 weights, and the entry slot assigned during staging.
type stagedVec struct {
	vec     int
	termIDs []uint32
	ws      []float32
	slot    uint32
}

func (ix *Index) prepare(vec int, v vsm.Vector) stagedVec {
	sv := stagedVec{
		vec:     vec,
		termIDs: make([]uint32, len(v.Terms)),
		ws:      make([]float32, len(v.Terms)),
	}
	for i, t := range v.Terms {
		sv.termIDs[i] = ix.dict.Intern(t)
		sv.ws[i] = float32(v.Weights[i])
	}
	return sv
}

// Upsert installs (or replaces) profile vector slot vec of the given user.
// A zero vector removes the slot.
func (ix *Index) Upsert(user string, vec int, v vsm.Vector) {
	if v.IsZero() {
		ix.Remove(user, vec)
		return
	}
	svs := []stagedVec{ix.prepare(vec, v)}
	ix.stage(user, svs)
	ix.insertPostings(svs)
	ix.commit(user, svs, false)
}

// SetUser replaces every vector of the user with the given set, the common
// operation after a feedback step reshapes a profile. The replacement is
// atomic with respect to Match: the new vectors' postings are staged
// first, then one registry commit retires the old entries and activates
// the new ones, so no concurrent Match can observe the user with zero
// vectors mid-update.
func (ix *Index) SetUser(user string, vecs []vsm.Vector) {
	svs := make([]stagedVec, 0, len(vecs))
	for i, v := range vecs {
		if v.IsZero() {
			continue
		}
		svs = append(svs, ix.prepare(i, v))
	}
	ix.stage(user, svs)
	ix.insertPostings(svs)
	ix.commit(user, svs, true)
}

// stage allocates not-yet-alive entry slots for the vectors.
func (ix *Index) stage(user string, svs []stagedVec) {
	if len(svs) == 0 {
		return
	}
	ix.mu.Lock()
	for i := range svs {
		var slot uint32
		if n := len(ix.freeEnt); n > 0 {
			slot = ix.freeEnt[n-1]
			ix.freeEnt = ix.freeEnt[:n-1]
		} else {
			slot = uint32(len(ix.entries))
			ix.entries = append(ix.entries, entrySlot{})
		}
		ix.entries[slot] = entrySlot{user: user, vec: svs[i].vec, termIDs: svs[i].termIDs}
		svs[i].slot = slot
	}
	ix.mu.Unlock()
}

// insertPostings appends the staged vectors' postings, one lock
// acquisition per affected shard.
func (ix *Index) insertPostings(svs []stagedVec) {
	type ins struct {
		term uint32
		p    posting
	}
	var work [numShards][]ins
	for _, sv := range svs {
		for i, t := range sv.termIDs {
			si := shardOf(t)
			work[si] = append(work[si], ins{term: t, p: posting{id: sv.slot, w: sv.ws[i]}})
		}
	}
	for si := range work {
		if len(work[si]) == 0 {
			continue
		}
		s := &ix.shards[si]
		s.mu.Lock()
		for _, w := range work[si] {
			s.postings[w.term] = append(s.postings[w.term], w.p)
		}
		s.live += len(work[si])
		s.mu.Unlock()
	}
}

// tombShard is the per-shard share of a retirement: which slots died and
// how many of their postings live in the shard.
type tombShard struct {
	slots []uint32
	count int
}

// commit activates the staged vectors and retires the slots they replace
// (every previous slot of the user when replaceAll is set, otherwise only
// same-numbered ones) in a single registry critical section.
func (ix *Index) commit(user string, svs []stagedVec, replaceAll bool) {
	ix.mu.Lock()
	ui := ix.byUser[user]
	if ui == nil {
		if len(svs) == 0 {
			ix.mu.Unlock()
			return
		}
		ui = &userInfo{uid: ix.allocUID(), slots: make(map[int]uint32, len(svs))}
		ix.byUser[user] = ui
	}
	var old []uint32
	if replaceAll {
		for _, slot := range ui.slots {
			old = append(old, slot)
		}
		ui.slots = make(map[int]uint32, len(svs))
	}
	for _, sv := range svs {
		if prev, ok := ui.slots[sv.vec]; ok {
			old = append(old, prev)
		}
		ui.slots[sv.vec] = sv.slot
		e := &ix.entries[sv.slot]
		e.uid = ui.uid
		e.alive = true
		ix.liveVecs++
	}
	tomb := ix.killLocked(old)
	if len(ui.slots) == 0 {
		ix.freeUID = append(ix.freeUID, ui.uid)
		delete(ix.byUser, user)
	}
	ix.mu.Unlock()
	ix.tombstone(tomb)
}

// Remove deletes one profile vector slot.
func (ix *Index) Remove(user string, vec int) {
	ix.mu.Lock()
	ui := ix.byUser[user]
	var tomb *[numShards]tombShard
	if ui != nil {
		if slot, ok := ui.slots[vec]; ok {
			delete(ui.slots, vec)
			tomb = ix.killLocked([]uint32{slot})
			if len(ui.slots) == 0 {
				ix.freeUID = append(ix.freeUID, ui.uid)
				delete(ix.byUser, user)
			}
		}
	}
	ix.mu.Unlock()
	ix.tombstone(tomb)
}

// RemoveUser deletes every vector of the user (unsubscribe).
func (ix *Index) RemoveUser(user string) {
	ix.mu.Lock()
	ui := ix.byUser[user]
	var tomb *[numShards]tombShard
	if ui != nil {
		slots := make([]uint32, 0, len(ui.slots))
		for _, slot := range ui.slots {
			slots = append(slots, slot)
		}
		tomb = ix.killLocked(slots)
		ix.freeUID = append(ix.freeUID, ui.uid)
		delete(ix.byUser, user)
	}
	ix.mu.Unlock()
	ix.tombstone(tomb)
}

func (ix *Index) allocUID() uint32 {
	if n := len(ix.freeUID); n > 0 {
		uid := ix.freeUID[n-1]
		ix.freeUID = ix.freeUID[:n-1]
		return uid
	}
	uid := ix.nextUID
	ix.nextUID++
	return uid
}

// killLocked marks slots dead and plans their tombstoning. Caller holds
// the registry write lock; the returned work is applied by tombstone()
// after the lock is released.
func (ix *Index) killLocked(slots []uint32) *[numShards]tombShard {
	if len(slots) == 0 {
		return nil
	}
	tomb := new([numShards]tombShard)
	for _, slot := range slots {
		e := &ix.entries[slot]
		seen := 0
		var touched [numShards]bool
		for _, t := range e.termIDs {
			si := shardOf(t)
			if !touched[si] {
				touched[si] = true
				seen++
				tomb[si].slots = append(tomb[si].slots, slot)
			}
			tomb[si].count++
		}
		if seen == 0 { // no postings to tombstone: reusable immediately
			ix.freeEnt = append(ix.freeEnt, slot)
		} else {
			ix.dying[slot] = seen
		}
		ix.liveVecs--
		ix.entries[slot] = entrySlot{} // drop term ids and user string
	}
	return tomb
}

// tombstone applies planned retirement to the posting shards, compacting
// any shard whose stale share crossed the threshold, and releases entry
// slots whose postings are fully gone.
func (ix *Index) tombstone(tomb *[numShards]tombShard) {
	if tomb == nil {
		return
	}
	var freed []uint32
	for si := range tomb {
		if len(tomb[si].slots) == 0 {
			continue
		}
		s := &ix.shards[si]
		s.mu.Lock()
		for _, slot := range tomb[si].slots {
			s.dead[slot] = true
		}
		s.stale += tomb[si].count
		s.live -= tomb[si].count
		if s.stale > compactMinStale && s.stale*compactFraction > s.stale+s.live {
			freed = append(freed, ix.compactShard(s)...)
		}
		s.mu.Unlock()
	}
	ix.release(freed)
}

// compactLocked rebuilds every posting list in the shard, dropping stale
// postings, and returns the slots whose postings are now gone from this
// shard. Caller holds the shard write lock.
func (s *shard) compactLocked() []uint32 {
	if len(s.dead) == 0 {
		return nil
	}
	for t, list := range s.postings {
		keep := list[:0]
		for _, p := range list {
			if !s.dead[p.id] {
				keep = append(keep, p)
			}
		}
		if len(keep) == 0 {
			delete(s.postings, t)
		} else {
			s.postings[t] = keep
		}
	}
	freed := make([]uint32, 0, len(s.dead))
	for slot := range s.dead {
		freed = append(freed, slot)
	}
	s.dead = make(map[uint32]bool)
	s.stale = 0
	return freed
}

// release returns fully compacted dead slots to the free list.
func (ix *Index) release(freed []uint32) {
	if len(freed) == 0 {
		return
	}
	ix.mu.Lock()
	for _, slot := range freed {
		if ix.dying[slot]--; ix.dying[slot] <= 0 {
			delete(ix.dying, slot)
			ix.freeEnt = append(ix.freeEnt, slot)
		}
	}
	ix.mu.Unlock()
}

// Compact eagerly rebuilds every shard's posting lists, dropping all
// tombstones. Updates trigger compaction automatically; Compact exists for
// callers that want exact statistics or minimal memory right now.
func (ix *Index) Compact() {
	var freed []uint32
	for si := range ix.shards {
		s := &ix.shards[si]
		s.mu.Lock()
		freed = append(freed, ix.compactShard(s)...)
		s.mu.Unlock()
	}
	ix.release(freed)
}

// compactShard runs one shard's compaction under its (already held) write
// lock, recording the compaction count and duration when instrumented.
// No-op shards (no tombstones) are not counted.
func (ix *Index) compactShard(s *shard) []uint32 {
	if len(s.dead) == 0 {
		return nil
	}
	var t0 time.Time
	if ix.inst != nil {
		t0 = time.Now()
	}
	freed := s.compactLocked()
	if ix.inst != nil {
		ix.inst.compactions.Inc()
		ix.inst.compactLat.ObserveSince(t0)
	}
	return freed
}

// ---------------------------------------------------------------------------
// Matching

// Doc is a document vector resolved against the index's term dictionary:
// terms the index has never seen are dropped (they cannot match), the rest
// carry their interned ids. Build one with NewDoc to score the same
// document several times without re-resolving terms.
type Doc struct {
	ids []uint32
	ws  []float64
}

// Len returns the number of document terms known to the index.
func (d Doc) Len() int { return len(d.ids) }

// NewDoc resolves a unit-normalized document vector against the term
// dictionary once.
func (ix *Index) NewDoc(v vsm.Vector) Doc {
	d := Doc{
		ids: make([]uint32, 0, len(v.Terms)),
		ws:  make([]float64, 0, len(v.Terms)),
	}
	for i, t := range v.Terms {
		if id, ok := ix.dict.Lookup(t); ok {
			d.ids = append(d.ids, id)
			d.ws = append(d.ws, v.Weights[i])
		}
	}
	return d
}

// matcher is the pooled per-call scoring state: a dense accumulator over
// entry slots, a dense best-per-user table over uids, and the touched
// lists that make resetting them O(candidates) instead of O(capacity).
type matcher struct {
	docIDs  []uint32
	docWs   []float64
	scores  []float64
	touched []uint32
	best    []float64
	bestAt  []uint32
	uids    []uint32
}

func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return append(make([]T, 0, n), make([]T, n)...)
	}
	return s[:n]
}

// Match scores the document against every indexed profile vector that
// shares a term with it and returns, per user, the best-scoring vector with
// score ≥ threshold, sorted by descending score (ties by user for
// determinism). doc must be unit-normalized, as all document vectors in
// this system are.
func (ix *Index) Match(doc vsm.Vector, threshold float64) []Match {
	var t0 time.Time
	if ix.inst != nil {
		t0 = time.Now()
	}
	m := ix.pool.Get().(*matcher)
	m.resolve(ix, doc)
	out := ix.matchInto(m, m.docIDs, m.docWs, threshold)
	ix.pool.Put(m)
	sortMatches(out)
	if ix.inst != nil {
		ix.inst.matchLat.ObserveSince(t0)
	}
	return out
}

// MatchDoc is Match for a pre-resolved document.
func (ix *Index) MatchDoc(d Doc, threshold float64) []Match {
	m := ix.pool.Get().(*matcher)
	out := ix.matchInto(m, d.ids, d.ws, threshold)
	ix.pool.Put(m)
	sortMatches(out)
	return out
}

// RecordMatchLatency feeds an externally timed MatchDoc call into
// mm_index_match_seconds. MatchDoc does not self-time (see Instrument);
// the broker brackets it with clock reads it needs anyway and hands them
// here, so the index's histogram still covers the hot path without extra
// time.Now calls. A non-zero trace links the observation to its trace as
// a per-bucket exemplar; pass 0 for unsampled requests (the common case —
// exemplars are only useful for traces that were actually captured).
func (ix *Index) RecordMatchLatency(start, end time.Time, trace uint64) {
	if ix.inst == nil {
		return
	}
	sec := end.Sub(start).Seconds()
	if trace != 0 {
		ix.inst.matchLat.ObserveExemplar(sec, trace)
		return
	}
	ix.inst.matchLat.Observe(sec)
}

// resolve looks every document term up in the dictionary, into the
// matcher's scratch slices.
func (m *matcher) resolve(ix *Index, doc vsm.Vector) {
	m.docIDs = m.docIDs[:0]
	m.docWs = m.docWs[:0]
	for i, t := range doc.Terms {
		if id, ok := ix.dict.Lookup(t); ok {
			m.docIDs = append(m.docIDs, id)
			m.docWs = append(m.docWs, doc.Weights[i])
		}
	}
}

// matchInto accumulates scores and harvests the per-user best matches,
// unsorted. The registry read lock is held for the whole call — freezing
// slot liveness across both phases — with per-shard read locks nested
// inside (registry→shard is the global lock order; no writer acquires the
// registry while holding a shard). Commits therefore appear atomic to a
// match: it scores either a user's old vector set or the new one, never a
// half-replaced mix or a vanished user. Postings inserted concurrently for
// staged slots are harmless: staged slots are not alive, and harvest
// discards them along with stale postings on dead slots.
func (ix *Index) matchInto(m *matcher, ids []uint32, ws []float64, threshold float64) []Match {
	ix.mu.RLock()
	nSlots := len(ix.entries)
	m.scores = grow(m.scores, nSlots)
	m.touched = m.touched[:0]

	for i, t := range ids {
		dw := ws[i]
		s := &ix.shards[shardOf(t)]
		s.mu.RLock()
		for _, p := range s.postings[t] {
			if int(p.id) >= nSlots {
				continue // slot staged after this match began
			}
			if m.scores[p.id] == 0 {
				m.touched = append(m.touched, p.id)
			}
			m.scores[p.id] += float64(p.w) * dw
		}
		s.mu.RUnlock()
	}

	m.best = grow(m.best, int(ix.nextUID))
	m.bestAt = grow(m.bestAt, int(ix.nextUID))
	m.uids = m.uids[:0]
	for _, slot := range m.touched {
		sc := m.scores[slot]
		m.scores[slot] = 0
		if sc < threshold {
			continue
		}
		e := &ix.entries[slot]
		if !e.alive {
			continue
		}
		uid := e.uid
		cur := m.best[uid]
		switch {
		case cur == 0:
			m.uids = append(m.uids, uid)
			fallthrough
		case sc > cur,
			sc == cur && e.vec < ix.entries[m.bestAt[uid]].vec:
			m.best[uid] = sc
			m.bestAt[uid] = slot
		}
	}
	out := make([]Match, 0, len(m.uids))
	for _, uid := range m.uids {
		e := &ix.entries[m.bestAt[uid]]
		out = append(out, Match{User: e.user, Score: m.best[uid], Vector: e.vec})
		m.best[uid] = 0
	}
	ix.mu.RUnlock()
	return out
}

// matchLess is the result order: descending score, ties by user.
func matchLess(a, b Match) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.User < b.User
}

func sortMatches(out []Match) {
	sort.Slice(out, func(i, j int) bool { return matchLess(out[i], out[j]) })
}

// TopK returns the k best matches above the threshold, selected through a
// bounded min-heap so only k of the candidate users are ever sorted.
func (ix *Index) TopK(doc vsm.Vector, threshold float64, k int) []Match {
	if k <= 0 {
		return nil
	}
	var t0 time.Time
	if ix.inst != nil {
		t0 = time.Now()
		defer func() { ix.inst.matchLat.ObserveSince(t0) }()
	}
	m := ix.pool.Get().(*matcher)
	m.resolve(ix, doc)
	all := ix.matchInto(m, m.docIDs, m.docWs, threshold)
	ix.pool.Put(m)
	if len(all) <= k {
		sortMatches(all)
		return all
	}
	// Min-heap of the k best seen so far; the root is the weakest keeper.
	heap := all[:k]
	for i := k/2 - 1; i >= 0; i-- {
		siftDown(heap, i)
	}
	for _, cand := range all[k:] {
		if matchLess(cand, heap[0]) {
			heap[0] = cand
			siftDown(heap, 0)
		}
	}
	out := heap[:k:k]
	sortMatches(out)
	return out
}

// siftDown restores the heap property at i, ordering by "weakest first"
// (the inverse of matchLess).
func siftDown(h []Match, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		weakest := i
		if l < len(h) && matchLess(h[weakest], h[l]) {
			weakest = l
		}
		if r < len(h) && matchLess(h[weakest], h[r]) {
			weakest = r
		}
		if weakest == i {
			return
		}
		h[i], h[weakest] = h[weakest], h[i]
		i = weakest
	}
}

// ---------------------------------------------------------------------------
// Statistics

// Stats reports index size for monitoring.
type Stats struct {
	Users    int
	Vectors  int
	Terms    int
	Postings int
}

// Size returns current index statistics. It compacts first so the term and
// posting counts reflect only live entries.
func (ix *Index) Size() Stats {
	ix.Compact()
	ix.mu.RLock()
	s := Stats{Users: len(ix.byUser), Vectors: ix.liveVecs}
	ix.mu.RUnlock()
	for i := range ix.shards {
		sh := &ix.shards[i]
		sh.mu.RLock()
		s.Terms += len(sh.postings)
		s.Postings += sh.live
		sh.mu.RUnlock()
	}
	return s
}
