// Package index implements an inverted index over profile vectors, the
// "well-known indexing technique" the paper appeals to (Section 4.3) for
// making filtering cost sublinear in the number of profile vectors: instead
// of comparing an incoming document against every vector of every user, the
// index walks only the posting lists of the document's terms and
// accumulates dot products for the vectors that share at least one term.
//
// Profile vectors and document vectors are unit-normalized throughout the
// system, so the accumulated dot product IS the cosine similarity.
package index

import (
	"sort"
	"sync"

	"mmprofile/internal/vsm"
)

// entryID identifies one indexed profile vector internally.
type entryID uint64

// vectorKey addresses a profile vector from outside: a user and the
// vector's slot within that user's profile.
type vectorKey struct {
	user string
	vec  int
}

type entryInfo struct {
	key   vectorKey
	terms []string // for posting removal
}

// Match is one hit of a document against the index: the user's best-scoring
// profile vector and its similarity.
type Match struct {
	User  string
	Score float64
	// Vector is the slot of the user's best-matching profile vector.
	Vector int
}

// Index is a concurrent inverted index over profile vectors. Reads
// (Match/TopK) take a shared lock; updates take an exclusive lock.
type Index struct {
	mu       sync.RWMutex
	nextID   entryID
	postings map[string]map[entryID]float64
	entries  map[entryID]entryInfo
	byKey    map[vectorKey]entryID
	byUser   map[string]map[int]entryID
}

// New returns an empty index.
func New() *Index {
	return &Index{
		postings: make(map[string]map[entryID]float64),
		entries:  make(map[entryID]entryInfo),
		byKey:    make(map[vectorKey]entryID),
		byUser:   make(map[string]map[int]entryID),
	}
}

// Upsert installs (or replaces) profile vector slot vec of the given user.
// A zero vector removes the slot.
func (ix *Index) Upsert(user string, vec int, v vsm.Vector) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	key := vectorKey{user: user, vec: vec}
	if id, ok := ix.byKey[key]; ok {
		ix.dropEntry(id)
	}
	if v.IsZero() {
		return
	}
	id := ix.nextID
	ix.nextID++
	terms := append([]string(nil), v.Terms...)
	ix.entries[id] = entryInfo{key: key, terms: terms}
	ix.byKey[key] = id
	if ix.byUser[user] == nil {
		ix.byUser[user] = make(map[int]entryID)
	}
	ix.byUser[user][vec] = id
	for i, t := range v.Terms {
		m := ix.postings[t]
		if m == nil {
			m = make(map[entryID]float64)
			ix.postings[t] = m
		}
		m[id] = v.Weights[i]
	}
}

// SetUser replaces every vector of the user with the given set, the common
// operation after a feedback step reshapes a profile.
func (ix *Index) SetUser(user string, vecs []vsm.Vector) {
	ix.mu.Lock()
	for _, id := range ix.byUser[user] {
		ix.dropEntry(id)
	}
	ix.mu.Unlock()
	for i, v := range vecs {
		ix.Upsert(user, i, v)
	}
}

// Remove deletes one profile vector slot.
func (ix *Index) Remove(user string, vec int) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if id, ok := ix.byKey[vectorKey{user: user, vec: vec}]; ok {
		ix.dropEntry(id)
	}
}

// RemoveUser deletes every vector of the user (unsubscribe).
func (ix *Index) RemoveUser(user string) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, id := range ix.byUser[user] {
		ix.dropEntry(id)
	}
	delete(ix.byUser, user)
}

// dropEntry removes an entry and its postings. Caller holds the write lock.
func (ix *Index) dropEntry(id entryID) {
	info, ok := ix.entries[id]
	if !ok {
		return
	}
	for _, t := range info.terms {
		if m := ix.postings[t]; m != nil {
			delete(m, id)
			if len(m) == 0 {
				delete(ix.postings, t)
			}
		}
	}
	delete(ix.entries, id)
	delete(ix.byKey, info.key)
	if u := ix.byUser[info.key.user]; u != nil {
		delete(u, info.key.vec)
		if len(u) == 0 {
			delete(ix.byUser, info.key.user)
		}
	}
}

// Match scores the document against every indexed profile vector that
// shares a term with it and returns, per user, the best-scoring vector with
// score ≥ threshold, sorted by descending score (ties by user for
// determinism). doc must be unit-normalized, as all document vectors in
// this system are.
func (ix *Index) Match(doc vsm.Vector, threshold float64) []Match {
	ix.mu.RLock()
	acc := make(map[entryID]float64)
	for i, t := range doc.Terms {
		dw := doc.Weights[i]
		for id, w := range ix.postings[t] {
			acc[id] += w * dw
		}
	}
	best := make(map[string]Match)
	for id, score := range acc {
		if score < threshold {
			continue
		}
		info := ix.entries[id]
		cur, ok := best[info.key.user]
		if !ok || score > cur.Score {
			best[info.key.user] = Match{User: info.key.user, Score: score, Vector: info.key.vec}
		}
	}
	ix.mu.RUnlock()

	out := make([]Match, 0, len(best))
	for _, m := range best {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].User < out[j].User
	})
	return out
}

// TopK returns the k best matches above the threshold.
func (ix *Index) TopK(doc vsm.Vector, threshold float64, k int) []Match {
	all := ix.Match(doc, threshold)
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// Stats reports index size for monitoring.
type Stats struct {
	Users    int
	Vectors  int
	Terms    int
	Postings int
}

// Size returns current index statistics.
func (ix *Index) Size() Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	s := Stats{
		Users:   len(ix.byUser),
		Vectors: len(ix.entries),
		Terms:   len(ix.postings),
	}
	for _, m := range ix.postings {
		s.Postings += len(m)
	}
	return s
}
